// Capacity planning with Peak Energy Efficiency (Sec. II): for a cluster
// operator deciding how hard to pack servers, sweep the packing ceiling and
// show the Fig. 2 'U' curve — plus the Fig. 3 style breakdown for a custom
// data center built from Table I components.
#include <cstdio>

#include "common/table.h"
#include "power/dc_power.h"
#include "power/server_power.h"

int main() {
  using namespace gl;

  PrintBanner("How hard should we pack? (1000-server cluster, Dell-2018)");
  const ServerPowerModel server = ServerPowerModel::Dell2018();
  const double total_load = 1000 * 0.30;  // cluster runs at 30% overall
  Table sweep({"pack-to util", "active servers", "total kW", "headroom"});
  for (int u = 30; u <= 100; u += 10) {
    const double util = u / 100.0;
    const double servers = total_load / util;
    const double kw = servers * server.Power(util) / 1000.0;
    sweep.AddRow({Table::Pct(util, 0), Table::Int(std::llround(servers)),
                  Table::Num(kw, 1), Table::Pct(1.0 - util, 0)});
  }
  sweep.Print();
  std::printf("→ the minimum sits at the PEE point (70%%), not at 100%%.\n");

  PrintBanner("Custom data center: what would task packing buy us?");
  DataCenterSpec custom;
  custom.name = "custom-dc";
  custom.servers = 2048;
  custom.tor_switches = 64;
  custom.fabric_switches = 16;
  custom.server_max_watts = 750.0;     // Dell-2018 class machines
  custom.tor_switch_watts = 315.0;     // Altoline 6940
  custom.fabric_switch_watts = 315.0;
  const auto rows = AnalyzeDataCenter(custom);
  Table t({"configuration", "servers kW", "DCN kW", "total kW",
           "saving"});
  auto add = [&](const char* name, const PowerBreakdown& b) {
    t.AddRow({name, Table::Num(b.server_watts / 1000.0, 1),
              Table::Num(b.dcn_watts() / 1000.0, 1),
              Table::Num(b.total() / 1000.0, 1),
              Table::Pct(1.0 - b.total() / rows.baseline.total())});
  };
  add("baseline (20% util)", rows.baseline);
  add("traffic packing", rows.traffic_packing);
  add("task packing", rows.task_packing);
  t.Print();
  return 0;
}
