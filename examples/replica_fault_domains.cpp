// Failure resilience (Sec. IV-C): replicas of a service are labelled with a
// replica set; Goldilocks gives replica-replica edges negative weight, so
// the min-cut partitioner pushes them into different groups and the groups
// land in different fault domains (racks).
#include <cstdio>

#include "common/table.h"
#include "core/goldilocks.h"
#include "workload/scenarios.h"

int main() {
  using namespace gl;

  const Resource cap{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000};
  const Topology topo = Topology::LeafSpine(8, 2, 2, cap, 1000.0);

  // A replicated key-value service: 3 replicas, each with its own clients.
  Workload w;
  const GroupId replica_set{1};
  std::vector<ContainerId> replicas;
  for (int r = 0; r < 3; ++r) {
    Container c;
    c.id = ContainerId{w.size()};
    c.app = AppType::kCassandra;
    c.demand = {.cpu = 400, .mem_gb = 20, .net_mbps = 60};
    c.replica_set = replica_set;
    c.service = 0;
    w.containers.push_back(c);
    replicas.push_back(c.id);
  }
  // Clients chat with their replica heavily and with the others lightly.
  for (int r = 0; r < 3; ++r) {
    for (int k = 0; k < 8; ++k) {
      Container c;
      c.id = ContainerId{w.size()};
      c.app = AppType::kFrontend;
      c.demand = {.cpu = 80, .mem_gb = 1, .net_mbps = 20};
      c.service = 1 + r;
      w.containers.push_back(c);
      w.edges.push_back({replicas[static_cast<std::size_t>(r)], c.id, 200.0,
                         true});
    }
  }
  // Replication traffic between replicas exists but must NOT colocate them.
  w.edges.push_back({replicas[0], replicas[1], 40.0});
  w.edges.push_back({replicas[1], replicas[2], 40.0});
  w.edges.push_back({replicas[0], replicas[2], 40.0});

  std::vector<Resource> demands;
  for (const auto& c : w.containers) demands.push_back(c.demand);
  std::vector<std::uint8_t> active(w.containers.size(), 1);

  GoldilocksScheduler scheduler;
  SchedulerInput input;
  input.workload = &w;
  input.demands = demands;
  input.active = active;
  input.topology = &topo;
  const Placement p = scheduler.Place(input);

  Table t({"replica", "server", "rack (fault domain)"});
  for (std::size_t r = 0; r < replicas.size(); ++r) {
    const ServerId s = p.of(replicas[r]);
    const NodeId rack = topo.AncestorAt(topo.server_node(s), 1);
    t.AddRow({Table::Int(static_cast<int>(r)), Table::Int(s.value()),
              Table::Int(rack.value())});
  }
  t.Print();

  // Clients should still sit close to their own replica.
  double near = 0, total = 0;
  for (const auto& e : w.edges) {
    if (!e.is_query) continue;
    ++total;
    if (topo.HopDistance(p.of(e.a), p.of(e.b)) <= 2) ++near;
  }
  std::printf("\nClients within one rack of their replica: %.0f%%\n",
              100.0 * near / total);
  return 0;
}
