// Asymmetric provisioning (Sec. IV): heterogeneous servers and a degraded
// pod uplink. Goldilocks abstracts each container group as a Virtual
// Cluster and reserves outbound bandwidth per equations (4)/(5); this
// example shows the placement adapting around the failure.
#include <cstdio>

#include "common/table.h"
#include "core/goldilocks.h"
#include "core/virtual_cluster.h"
#include "workload/scenarios.h"

int main() {
  using namespace gl;

  // A 4-ary fat tree: 16 servers, 4 pods.
  const Resource big{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000};
  Topology topo = Topology::FatTree(4, big, 1000.0);

  // Heterogeneity: every third server is a legacy half-size machine.
  for (int s = 0; s < topo.num_servers(); s += 3) {
    topo.set_server_capacity(ServerId{s}, big * 0.5);
  }
  // Asymmetry: pod 1 lost half of its aggregation uplinks.
  const NodeId degraded_pod = topo.NodesAtLevel(2)[1];
  topo.DegradeUplink(degraded_pod, 0.5);
  std::printf("Topology: %d servers (mixed sizes), pod %d at half uplink\n",
              topo.num_servers(), degraded_pod.value());

  const auto scenario = MakeTwitterCachingScenario();
  const auto demands = scenario->DemandsAt(20);
  const auto active = scenario->ActiveAt(20);

  GoldilocksOptions opts;
  opts.use_virtual_clusters = true;  // the Sec. IV placer
  GoldilocksScheduler scheduler(opts);
  SchedulerInput input;
  input.workload = &scenario->workload();
  input.demands = demands;
  input.active = active;
  input.topology = &topo;
  const Placement p = scheduler.Place(input);

  std::printf("Placed %d/%d containers on %d servers in %d groups\n",
              p.num_placed(), scenario->workload().size(),
              p.NumActiveServers(), scheduler.last_num_groups());

  // Where did the load go? Per-pod breakdown.
  Table t({"pod", "uplink Mbps", "containers", "servers used"});
  for (const auto pod : topo.NodesAtLevel(2)) {
    int containers = 0, servers_used = 0;
    for (const auto s : topo.ServersUnder(pod)) {
      int here = 0;
      for (const auto placed : p.server_of) {
        if (placed == s) ++here;
      }
      containers += here;
      servers_used += here > 0;
    }
    t.AddRow({Table::Int(pod.value()),
              Table::Num(topo.uplink_capacity(pod), 0),
              Table::Int(containers), Table::Int(servers_used)});
  }
  t.Print();

  // The same placement through the raw VC placer exposes reservations.
  VirtualClusterOptions vc_opts;
  VirtualClusterPlacer placer(topo, vc_opts);
  std::vector<std::vector<ContainerId>> one_group_per_server;
  // Reuse Goldilocks' grouping for the demo.
  std::vector<std::vector<ContainerId>> groups(
      static_cast<std::size_t>(scheduler.last_num_groups()));
  for (std::size_t c = 0; c < scheduler.last_grouping().size(); ++c) {
    const int g = scheduler.last_grouping()[c];
    if (g >= 0) {
      groups[static_cast<std::size_t>(g)].push_back(
          ContainerId{static_cast<int>(c)});
    }
  }
  placer.PlaceGroups(groups, demands, scenario->workload().containers.size());
  std::printf(
      "\nVC placement: %d whole, %d split, %d bandwidth violations\n",
      placer.stats().groups_placed_whole, placer.stats().groups_split,
      placer.stats().bandwidth_violations);
  return 0;
}
