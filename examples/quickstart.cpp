// Quickstart: place a container workload with Goldilocks and inspect the
// result.
//
// Builds the paper's 16-server testbed, generates the Twitter content
// caching workload (176 containers), asks the Goldilocks scheduler for a
// placement, and prints the group structure, per-server utilization, and
// the power/latency metrics of the resulting configuration.
#include <cstdio>

#include "common/table.h"
#include "core/goldilocks.h"
#include "power/server_power.h"
#include "sim/latency.h"
#include "netsim/traffic.h"
#include "workload/scenarios.h"

int main() {
  using namespace gl;

  // 1. A topology: 8 racks × 2 servers, 2 spines, 1G links (Sec. V).
  const Topology topo = Topology::Testbed16();
  std::printf("Topology: %d servers, %d switches\n", topo.num_servers(),
              topo.num_switches());

  // 2. A workload: Twitter content caching at mid-trace load.
  const auto scenario = MakeTwitterCachingScenario();
  const int epoch = 30;
  const auto demands = scenario->DemandsAt(epoch);
  const auto active = scenario->ActiveAt(epoch);
  std::printf("Workload: %d containers, %zu communication edges, %.0f RPS\n",
              scenario->workload().size(), scenario->workload().edges.size(),
              scenario->TotalRpsAt(epoch));

  // 3. Place with Goldilocks (70%% PEE ceiling, locality grouping).
  GoldilocksScheduler scheduler;
  SchedulerInput input;
  input.workload = &scenario->workload();
  input.demands = demands;
  input.active = active;
  input.topology = &topo;
  const Placement placement = scheduler.Place(input);

  std::printf("\nGoldilocks made %d groups; %d containers on %d servers\n",
              scheduler.last_num_groups(), placement.num_placed(),
              placement.NumActiveServers());

  // 4. Inspect per-server utilization. The NIC column reports the traffic
  // that actually crosses the server's link — colocated container chatter
  // never leaves the host, which is most of Goldilocks' locality win.
  const auto traffic =
      EstimateTraffic(scenario->workload(), placement, demands, active, topo);
  const auto loads = ServerLoads(placement, demands, topo.num_servers());
  Table t({"server", "cpu%", "mem%", "NIC%", "state"});
  const ServerPowerModel power = ServerPowerModel::Dell2018();
  double total_watts = 0.0;
  for (int s = 0; s < topo.num_servers(); ++s) {
    const auto& cap = topo.server_capacity(ServerId{s});
    const auto& l = loads[static_cast<std::size_t>(s)];
    const bool on = !l.IsZero();
    if (on) total_watts += power.Power(l.cpu / cap.cpu);
    const double nic =
        traffic.UplinkUtilization(topo, topo.server_node(ServerId{s}));
    t.AddRow({Table::Int(s), Table::Pct(l.cpu / cap.cpu),
              Table::Pct(l.mem_gb / cap.mem_gb), Table::Pct(nic),
              on ? "on" : "off"});
  }
  t.Print();

  // 5. Latency of the placement.
  const LatencyModel latency(topo);
  const auto tct =
      latency.ComputeTct(scenario->workload(), placement, demands, active,
                         traffic);
  std::printf("\nServer power: %.0f W   mean TCT: %.2f ms   p99: %.2f ms\n",
              total_watts, tct.mean_ms, tct.p99_ms);
  std::printf("Energy per request: %.4f J\n",
              total_watts / 1000.0 * tct.mean_ms);
  return 0;
}
