// Epoch replay: the management node's view of a day (Sec. V).
//
// Drives the EpochController — scheduler plus phased migration planner —
// over the Wikipedia diurnal pattern and prints, per epoch, what the
// controller decided and what the transition cost: how many containers
// moved, in how many phases, how long the reshuffle took, and how many
// gigabytes of CRIU checkpoints crossed the network.
#include <cstdio>

#include "common/table.h"
#include "core/epoch_controller.h"
#include "core/goldilocks.h"
#include "workload/scenarios.h"

int main() {
  using namespace gl;

  const Topology topo = Topology::Testbed16();
  TwitterScenarioOptions sopts;
  sopts.num_epochs = 30;
  const auto scenario = MakeTwitterCachingScenario(sopts);

  GoldilocksOptions gopts;
  gopts.repartition_interval = 5;  // refresh the grouping every 5 minutes
  EpochController controller(std::make_unique<GoldilocksScheduler>(gopts),
                             topo);

  PrintBanner("Epoch-by-epoch transitions (Goldilocks, 5-min repartition)");
  Table t({"epoch", "RPS", "servers", "moves", "phases", "bounced",
           "reshuffle s", "checkpoint GB"});
  for (int e = 0; e < scenario->num_epochs(); ++e) {
    const auto demands = scenario->DemandsAt(e);
    const auto active = scenario->ActiveAt(e);
    const auto d = controller.Step(scenario->workload(), demands, active);
    if (e % 3 != 0) continue;  // print every third epoch
    t.AddRow({Table::Int(e), Table::Num(scenario->TotalRpsAt(e) / 1000, 0),
              Table::Int(d.placement.NumActiveServers()),
              Table::Int(static_cast<int>(d.plan.steps.size())),
              Table::Int(d.plan.num_phases),
              Table::Int(d.plan.bounced_containers),
              Table::Num(d.plan.makespan_ms / 1000.0, 1),
              Table::Num(d.plan.total_image_gb, 1)});
  }
  t.Print();

  std::printf(
      "\nHalf-hour totals: %.1f s of reshuffling, %.1f GB of checkpoint "
      "traffic across %d epochs.\nEvery transition was realizable: the "
      "planner orders dependent moves into phases and bounces cycles "
      "through scratch capacity instead of deadlocking.\n",
      controller.total_migration_makespan_ms() / 1000.0,
      controller.total_image_gb(), controller.epochs_run());
  return 0;
}
