// Twitter content caching on the Wikipedia diurnal pattern (the Fig. 9
// experiment), comparing Goldilocks against the four published baselines
// over a full 60-epoch run and printing the per-epoch time series.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/table.h"
#include "core/goldilocks.h"
#include "schedulers/borg.h"
#include "schedulers/e_pvm.h"
#include "schedulers/mpp.h"
#include "schedulers/rc_informed.h"
#include "sim/simulator.h"
#include "workload/scenarios.h"

int main() {
  using namespace gl;

  const Topology topo = Topology::Testbed16();
  const auto scenario = MakeTwitterCachingScenario();
  ExperimentRunner runner(*scenario, topo);

  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<EPvmScheduler>());
  schedulers.push_back(std::make_unique<MppScheduler>());
  schedulers.push_back(std::make_unique<BorgScheduler>());
  schedulers.push_back(std::make_unique<RcInformedScheduler>());
  schedulers.push_back(std::make_unique<GoldilocksScheduler>());

  std::vector<ExperimentResult> results;
  for (auto& s : schedulers) results.push_back(runner.Run(*s));

  PrintBanner("Per-epoch time series (every 10 minutes)");
  Table series({"min", "policy", "servers", "power W", "TCT ms", "J/req"});
  for (int e = 0; e < scenario->num_epochs(); e += 10) {
    for (const auto& r : results) {
      const auto& m = r.epochs[static_cast<std::size_t>(e)];
      series.AddRow({Table::Int(e), r.scheduler,
                     Table::Int(m.active_servers),
                     Table::Num(m.total_watts, 0),
                     Table::Num(m.mean_tct_ms, 2),
                     Table::Num(m.energy_per_request_j, 4)});
    }
  }
  series.Print();

  PrintBanner("60-minute averages");
  Table avg({"policy", "servers", "power W", "saving vs E-PVM", "TCT ms",
             "J/req", "migr/epoch"});
  const double epvm_watts = results.front().Average().total_watts;
  for (const auto& r : results) {
    const auto m = r.Average();
    avg.AddRow({r.scheduler, Table::Int(m.active_servers),
                Table::Num(m.total_watts, 0),
                Table::Pct(1.0 - m.total_watts / epvm_watts),
                Table::Num(m.mean_tct_ms, 2),
                Table::Num(m.energy_per_request_j, 4),
                Table::Int(m.migrations)});
  }
  avg.Print();
  return 0;
}
