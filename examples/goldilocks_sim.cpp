// goldilocks_sim — command-line front end for the cluster simulator.
//
//   goldilocks_sim [--scenario twitter|azure|msr] [--policy <name>]
//                  [--epochs N] [--pee 0.70] [--topology testbed|fattree<k>]
//                  [--estimated] [--csv]
//
// Runs one scheduling policy (or all of them with --policy all) over a
// scenario and prints per-epoch metrics plus averages; --csv switches the
// per-epoch output to comma-separated rows for plotting.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/goldilocks.h"
#include "schedulers/borg.h"
#include "schedulers/e_pvm.h"
#include "schedulers/mpp.h"
#include "schedulers/random_scheduler.h"
#include "schedulers/rc_informed.h"
#include "sim/simulator.h"
#include "workload/scenarios.h"

namespace {

struct Args {
  std::string scenario = "twitter";
  std::string policy = "goldilocks";
  std::string topology = "testbed";
  int epochs = -1;
  double pee = 0.70;
  bool estimated = false;
  bool csv = false;
};

[[noreturn]] void Usage() {
  std::fprintf(
      stderr,
      "usage: goldilocks_sim [--scenario twitter|azure|msr]\n"
      "                      [--policy goldilocks|e-pvm|mpp|borg|rc|random|"
      "all]\n"
      "                      [--epochs N] [--pee F] [--topology testbed|"
      "fattree<k>]\n"
      "                      [--estimated] [--csv]\n");
  std::exit(2);
}

Args Parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (flag == "--scenario") {
      a.scenario = value();
    } else if (flag == "--policy") {
      a.policy = value();
    } else if (flag == "--topology") {
      a.topology = value();
    } else if (flag == "--epochs") {
      a.epochs = std::atoi(value().c_str());
    } else if (flag == "--pee") {
      a.pee = std::atof(value().c_str());
    } else if (flag == "--estimated") {
      a.estimated = true;
    } else if (flag == "--csv") {
      a.csv = true;
    } else {
      Usage();
    }
  }
  return a;
}

std::unique_ptr<gl::Scheduler> MakePolicy(const std::string& name,
                                          double pee) {
  using namespace gl;
  if (name == "goldilocks") {
    GoldilocksOptions opts;
    opts.pee_utilization = pee;
    return std::make_unique<GoldilocksScheduler>(opts);
  }
  if (name == "e-pvm") return std::make_unique<EPvmScheduler>();
  if (name == "e-pvm-oc") {
    return std::make_unique<EPvmScheduler>(1.0, EPvmMode::kOpportunityCost);
  }
  if (name == "mpp") return std::make_unique<MppScheduler>();
  if (name == "borg") return std::make_unique<BorgScheduler>();
  if (name == "rc") return std::make_unique<RcInformedScheduler>();
  if (name == "random") return std::make_unique<RandomScheduler>();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gl;
  const Args args = Parse(argc, argv);

  // Topology.
  Topology topo = Topology::Testbed16();
  if (args.topology.rfind("fattree", 0) == 0) {
    const int k = std::atoi(args.topology.c_str() + 7);
    if (k < 2 || k % 2 != 0) Usage();
    topo = Topology::FatTree(
        k, Resource{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000}, 1000.0);
  } else if (args.topology != "testbed") {
    Usage();
  }

  // Scenario.
  std::unique_ptr<Scenario> scenario;
  if (args.scenario == "twitter") {
    TwitterScenarioOptions opts;
    if (args.epochs > 0) opts.num_epochs = args.epochs;
    scenario = MakeTwitterCachingScenario(opts);
  } else if (args.scenario == "azure") {
    AzureScenarioOptions opts;
    if (args.epochs > 0) opts.num_epochs = args.epochs;
    scenario = MakeAzureMixScenario(opts);
  } else if (args.scenario == "msr") {
    MsrScenarioOptions opts;
    opts.trace_vertices = 686;  // laptop-sized slice of the 5488-node trace
    opts.num_epochs = args.epochs > 0 ? args.epochs : 12;
    scenario = MakeMsrLargeScaleScenario(opts);
  } else {
    Usage();
  }

  RunnerOptions ropts;
  ropts.use_estimated_demands = args.estimated;
  ExperimentRunner runner(*scenario, topo, ropts);

  std::vector<std::string> policies;
  if (args.policy == "all") {
    policies = {"e-pvm", "mpp", "borg", "rc", "goldilocks"};
  } else {
    policies = {args.policy};
  }

  Table averages({"policy", "servers", "power W", "TCT ms", "p99 ms",
                  "J/req", "SLA viol", "migr/epoch", "unplaced"});
  for (const auto& name : policies) {
    auto policy = MakePolicy(name, args.pee);
    if (!policy) Usage();
    const auto result = runner.Run(*policy);

    if (args.csv) {
      std::printf(
          "policy,epoch,active_servers,total_watts,mean_tct_ms,p99_tct_ms,"
          "energy_per_request_j,migrations,unplaced\n");
      for (const auto& m : result.epochs) {
        std::printf("%s,%d,%d,%.1f,%.3f,%.3f,%.4f,%d,%d\n",
                    result.scheduler.c_str(), m.epoch, m.active_servers,
                    m.total_watts, m.mean_tct_ms, m.p99_tct_ms,
                    m.energy_per_request_j, m.migrations,
                    m.unplaced_containers);
      }
    }
    const auto avg = result.Average();
    averages.AddRow({result.scheduler, Table::Int(avg.active_servers),
                     Table::Num(avg.total_watts, 0),
                     Table::Num(avg.mean_tct_ms, 2),
                     Table::Num(avg.p99_tct_ms, 2),
                     Table::Num(avg.energy_per_request_j, 4),
                     Table::Pct(avg.sla_violation_rate),
                     Table::Int(avg.migrations),
                     Table::Int(avg.unplaced_containers)});
  }
  PrintBanner("averages over " + std::to_string(scenario->num_epochs()) +
              " epochs — scenario: " + args.scenario +
              (args.estimated ? " (estimated demands)" : " (oracle demands)"));
  averages.Print();
  return 0;
}
