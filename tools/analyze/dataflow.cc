#include "analyze/dataflow.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "analyze/analysis.h"

namespace gl::analyze {

// --- symbol index ----------------------------------------------------------

SymbolIndex::SymbolIndex(const std::vector<FileFacts>& files)
    : files_(&files) {
  for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
    const FileFacts& f = files[static_cast<std::size_t>(fi)];
    for (int gi = 0; gi < static_cast<int>(f.functions.size()); ++gi) {
      const FunctionDef& d = f.functions[static_cast<std::size_t>(gi)];
      by_name_[d.name].push_back({fi, gi});
      by_file_name_[std::to_string(fi) + "/" + d.name].push_back({fi, gi});
      if (!d.class_name.empty()) {
        by_class_[d.class_name].push_back({fi, gi});
        by_class_method_[d.class_name + "::" + d.name].push_back({fi, gi});
      }
    }
  }
}

const FunctionDef& SymbolIndex::Def(const FuncRef& r) const {
  return (*files_)[static_cast<std::size_t>(r.file)]
      .functions[static_cast<std::size_t>(r.func)];
}

std::string SymbolIndex::Display(const FuncRef& r) const {
  const FunctionDef& d = Def(r);
  return d.class_name.empty() ? d.name : d.class_name + "::" + d.name;
}

const std::vector<FuncRef>* SymbolIndex::ByName(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it != by_name_.end() ? &it->second : nullptr;
}

const std::vector<FuncRef>* SymbolIndex::ByClass(const std::string& cls) const {
  const auto it = by_class_.find(cls);
  return it != by_class_.end() ? &it->second : nullptr;
}

const std::vector<FuncRef>* SymbolIndex::Resolve(
    const FuncRef& caller, const std::string& callee) const {
  const FunctionDef& d = Def(caller);
  if (!d.class_name.empty()) {
    const auto it = by_class_method_.find(d.class_name + "::" + callee);
    if (it != by_class_method_.end()) return &it->second;
  }
  const auto fit =
      by_file_name_.find(std::to_string(caller.file) + "/" + callee);
  if (fit != by_file_name_.end()) return &fit->second;
  const auto it = by_name_.find(callee);
  return it != by_name_.end() ? &it->second : nullptr;
}

// --- dimension lattice -----------------------------------------------------

Dim DimFromString(const std::string& s) {
  if (s == "cores") return Dim::kCores;
  if (s == "bytes") return Dim::kBytes;
  if (s == "bits_per_sec") return Dim::kBitsPerSec;
  if (s == "watts") return Dim::kWatts;
  if (s == "ms") return Dim::kMs;
  if (s == "epochs") return Dim::kEpochs;
  if (s == "count") return Dim::kCount;
  if (s == "dimensionless") return Dim::kDimensionless;
  return Dim::kUnknown;
}

const char* DimName(Dim d) {
  switch (d) {
    case Dim::kUnknown: return "unknown";
    case Dim::kCores: return "cores";
    case Dim::kBytes: return "bytes";
    case Dim::kBitsPerSec: return "bits_per_sec";
    case Dim::kWatts: return "watts";
    case Dim::kMs: return "ms";
    case Dim::kEpochs: return "epochs";
    case Dim::kCount: return "count";
    case Dim::kDimensionless: return "dimensionless";
    case Dim::kConflict: return "conflict";
  }
  return "unknown";
}

namespace {

constexpr char kRuleUnits[] = "GL014";
constexpr char kRuleLocks[] = "GL015";
constexpr char kRuleTaint[] = "GL016";

// Callees whose return value keeps its argument's dimension and taint.
const std::unordered_set<std::string_view> kPassthroughCallees = {
    "max", "min", "clamp", "abs", "fabs", "floor", "ceil", "round",
    "move", "nextafter"};

// Callees whose return value is nondeterministic across runs.
const std::unordered_set<std::string_view> kTaintSourceCallees = {
    "rand", "random", "drand48", "lrand48", "mrand48", "random_device",
    "now", "time", "clock", "gettimeofday", "clock_gettime", "getpid",
    "MonotonicMicros", "ElapsedMs", "ElapsedUs"};

// Callees that feed the determinism contract (DESIGN.md §8): state-hash
// mixers and deterministic decision counters.
const std::unordered_set<std::string_view> kTaintSinkCallees = {
    "MixU64", "MixI64", "MixI32", "MixDouble", "MixResource", "MixId",
    "HashAssignment", "HashLoads", "Counter::Add"};

// gl:: synchronization infrastructure: their internal Lock/Unlock bodies
// and annotations would otherwise put one hub node in every lock graph.
const std::unordered_set<std::string_view> kLockInfraClasses = {
    "Mutex", "MutexLock", "CondVar"};

// Callees that return an element/item count regardless of receiver.
[[nodiscard]] bool IsCountCallee(const std::string& name) {
  static const std::unordered_set<std::string_view> kNames = {
      "size", "length", "capacity", "count", "use_count", "distance"};
  return kNames.count(name) > 0 || name.starts_with("num_");
}

struct Val {
  Dim dim = Dim::kUnknown;
  bool tainted = false;
  std::string origin;  // first (lexicographically) taint origin label
};

// Lattice join; returns true when *into changed.
bool Join(Val* into, const Val& from) {
  bool changed = false;
  if (from.dim != Dim::kUnknown && from.dim != into->dim) {
    if (into->dim == Dim::kUnknown) {
      into->dim = from.dim;
      changed = true;
    } else if (into->dim != Dim::kConflict) {
      into->dim = Dim::kConflict;
      changed = true;
    }
  }
  if (from.tainted && !into->tainted) {
    into->tainted = true;
    changed = true;
  }
  if (from.tainted && !from.origin.empty() &&
      (into->origin.empty() || from.origin < into->origin)) {
    into->origin = from.origin;
    changed = true;
  }
  return changed;
}

[[nodiscard]] bool IsTracked(const std::string& term) {
  return term.size() >= 2 && (term[0] == 'v' || term[0] == 'm' ||
                              term[0] == 'c') && term[1] == ':';
}

[[nodiscard]] std::string TermName(const std::string& term) {
  return term.size() > 2 ? term.substr(2) : term;
}

// Call terms are "c:callee@line"; the bare callee name, for display and for
// matching against the passthrough/source/count name sets.
[[nodiscard]] std::string CalleeOf(const std::string& term) {
  std::string name = TermName(term);
  const std::size_t at = name.rfind('@');
  return at == std::string::npos ? name : name.substr(0, at);
}

struct Engine {
  const std::vector<FileFacts>& files;
  const SymbolIndex& index;

  // Declared member dims: "Class::field" -> dim, plus field -> classes.
  std::map<std::string, Dim> member_dims;
  std::map<std::string, std::vector<std::string>> member_classes;

  // Known local/param names per function, from ParamDecl and UnitDecl facts.
  // Bare identifiers in a method body that are NOT known locals resolve to
  // the enclosing class's member node when that field has a declared dim
  // (members are usually accessed without this->, so they lex as "v:" terms).
  std::map<std::pair<int, int>, std::set<std::string>> local_names;

  std::map<std::string, Val> vals;          // node key -> lattice value
  std::set<std::string> declared;           // nodes with a declared dim
  // GL_UNITS(any): deliberately dimension-erased nodes (polymorphic helpers
  // like WithinCap or an EWMA over arbitrary series). Incoming dimensions
  // are dropped instead of joined — the node never conflicts and never
  // resolves — while taint still flows through it.
  std::set<std::string> poly;
  std::set<std::pair<std::string, std::string>> edges;  // src -> dst

  [[nodiscard]] static std::string LocalKey(int file, int func,
                                            const std::string& name) {
    return "L|" + std::to_string(file) + "|" + std::to_string(func) + "|" +
           name;
  }
  [[nodiscard]] static std::string RetKey(const FuncRef& r) {
    return "R|" + std::to_string(r.file) + "|" + std::to_string(r.func);
  }
  [[nodiscard]] static std::string CallKey(int file, int func,
                                           const std::string& callee) {
    return "C|" + std::to_string(file) + "|" + std::to_string(func) + "|" +
           callee;
  }

  // Maps a term in (file, func) context to its node key; "" = untracked.
  [[nodiscard]] std::string NodeOf(int file, int func,
                                   const std::string& term) const {
    if (!IsTracked(term)) return "";
    const std::string name = TermName(term);
    const FunctionDef& d =
        files[static_cast<std::size_t>(file)]
            .functions[static_cast<std::size_t>(func)];
    if (term[0] == 'v') {
      const auto ln = local_names.find({file, func});
      const bool is_local = ln != local_names.end() && ln->second.count(name);
      if (!is_local && !d.class_name.empty() &&
          member_dims.count(d.class_name + "::" + name)) {
        return "M|" + d.class_name + "::" + name;
      }
      return LocalKey(file, func, name);
    }
    if (term[0] == 'c') return CallKey(file, func, name);
    // Member access: prefer the enclosing class's declared field, then a
    // uniquely declared field of that name, then the global field node.
    if (!d.class_name.empty() &&
        member_dims.count(d.class_name + "::" + name)) {
      return "M|" + d.class_name + "::" + name;
    }
    const auto it = member_classes.find(name);
    if (it != member_classes.end() && it->second.size() == 1) {
      return "M|" + it->second[0] + "::" + name;
    }
    return "M|" + name;
  }

  void SeedDim(const std::string& node, Dim dim) {
    if (node.empty() || dim == Dim::kUnknown) return;
    Join(&vals[node], Val{dim, false, ""});
    declared.insert(node);
  }

  void Build() {
    // Local-name sets first: NodeOf consults them to tell apart locals and
    // bare (this-less) member accesses.
    for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
      const FileFacts& f = files[static_cast<std::size_t>(fi)];
      for (const ParamDecl& p : f.params) {
        local_names[{fi, p.func}].insert(p.name);
      }
      for (const UnitDecl& u : f.unit_decls) {
        if (u.func >= 0) local_names[{fi, u.func}].insert(u.var);
      }
    }
    // Member declarations next: term resolution consults them.
    for (const FileFacts& f : files) {
      for (const UnitDecl& u : f.unit_decls) {
        if (u.func >= 0) continue;
        const std::size_t sep = u.var.find("::");
        if (sep == std::string::npos) continue;
        member_dims[u.var] = DimFromString(u.dim);
        if (u.dim == "any") poly.insert("M|" + u.var);
        member_classes[u.var.substr(sep + 2)].push_back(u.var.substr(0, sep));
      }
    }
    for (auto& [field, classes] : member_classes) {
      std::sort(classes.begin(), classes.end());
      classes.erase(std::unique(classes.begin(), classes.end()),
                    classes.end());
    }
    for (const auto& [qual, dim] : member_dims) SeedDim("M|" + qual, dim);
    // A field declared by several classes still seeds the global node when
    // every declaration agrees (m: terms outside any class fall back to it).
    for (const auto& [field, classes] : member_classes) {
      Dim agreed = Dim::kUnknown;
      bool ok = true;
      for (const std::string& cls : classes) {
        const Dim d = member_dims.at(cls + "::" + field);
        if (agreed != Dim::kUnknown && d != agreed) ok = false;
        agreed = d;
      }
      if (ok && agreed != Dim::kUnknown) SeedDim("M|" + field, agreed);
    }
    // Resource field names carry their dimension wherever they appear.
    SeedDim("M|cpu", Dim::kCores);
    SeedDim("M|mem_gb", Dim::kBytes);
    SeedDim("M|net_mbps", Dim::kBitsPerSec);

    // Count-returning callees (size(), num_*(), ...) type their call terms.
    const auto seed_count_call = [this](int fi, int func,
                                        const std::string& term) {
      if (term.size() > 2 && term[0] == 'c' &&
          IsCountCallee(CalleeOf(term))) {
        SeedDim(CallKey(fi, func, term.substr(2)), Dim::kCount);
      }
    };
    for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
      const FileFacts& f = files[static_cast<std::size_t>(fi)];
      for (const UnitBinop& b : f.binops) {
        seed_count_call(fi, b.func, b.lhs);
        seed_count_call(fi, b.func, b.rhs);
      }
      for (const UnitAssign& a : f.assigns) {
        seed_count_call(fi, a.func, a.lhs);
        seed_count_call(fi, a.func, a.rhs);
      }
      for (const CallArg& g : f.call_args) seed_count_call(fi, g.func, g.term);
      for (const ReturnFlow& r : f.returns) seed_count_call(fi, r.func, r.term);
    }

    for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
      const FileFacts& f = files[static_cast<std::size_t>(fi)];
      for (const UnitDecl& u : f.unit_decls) {
        if (u.func < 0) continue;
        if (u.dim == "any") poly.insert(LocalKey(fi, u.func, u.var));
        else SeedDim(LocalKey(fi, u.func, u.var), DimFromString(u.dim));
      }
      for (const ParamDecl& p : f.params) {
        if (p.units.empty()) continue;
        if (p.units == "any") poly.insert(LocalKey(fi, p.func, p.name));
        else SeedDim(LocalKey(fi, p.func, p.name), DimFromString(p.units));
      }
      for (int gi = 0; gi < static_cast<int>(f.functions.size()); ++gi) {
        const FunctionDef& d = f.functions[static_cast<std::size_t>(gi)];
        if (d.ret_units.empty()) continue;
        if (d.ret_units == "any") poly.insert(RetKey({fi, gi}));
        else SeedDim(RetKey({fi, gi}), DimFromString(d.ret_units));
      }
      for (const TaintSeed& sd : f.taint_seeds) {
        const std::string node = NodeOf(fi, sd.func, sd.term);
        if (node.empty()) continue;
        Join(&vals[node],
             Val{Dim::kUnknown, true,
                 sd.kind + " at " + f.path + ":" + std::to_string(sd.line)});
      }

      // Flow edges.
      for (const UnitAssign& a : f.assigns) {
        AddEdge(NodeOf(fi, a.func, a.rhs), NodeOf(fi, a.func, a.lhs));
      }
      for (const ReturnFlow& r : f.returns) {
        AddEdge(NodeOf(fi, r.func, r.term), RetKey({fi, r.func}));
      }
      for (const CallArg& g : f.call_args) {
        const std::string src = NodeOf(fi, g.func, g.term);
        if (src.empty()) continue;
        if (kPassthroughCallees.count(g.callee)) {
          AddEdge(src, CallKey(fi, g.func,
                               g.callee + "@" + std::to_string(g.line)));
          continue;
        }
        const std::vector<FuncRef>* targets =
            index.Resolve({fi, g.func}, g.callee);
        if (targets == nullptr) continue;
        for (const FuncRef& tgt : *targets) {
          const FileFacts& tf = files[static_cast<std::size_t>(tgt.file)];
          for (const ParamDecl& p : tf.params) {
            if (p.func == tgt.func && p.index == g.index) {
              AddEdge(src, LocalKey(tgt.file, tgt.func, p.name));
            }
          }
        }
      }
      for (const CallSite& c : f.calls) {
        if (c.func < 0) continue;
        const std::string key = CallKey(
            fi, c.func, c.callee + "@" + std::to_string(c.line));
        if (kTaintSourceCallees.count(c.callee)) {
          Join(&vals[key],
               Val{Dim::kUnknown, true,
                   c.callee + "() at " + f.path + ":" +
                       std::to_string(c.line)});
          continue;
        }
        const std::vector<FuncRef>* targets =
            index.Resolve({fi, c.func}, c.callee);
        if (targets == nullptr) continue;
        for (const FuncRef& tgt : *targets) {
          AddEdge(RetKey(tgt), key);
        }
      }
    }
  }

  void AddEdge(const std::string& src, const std::string& dst) {
    if (src.empty() || dst.empty() || src == dst) return;
    edges.insert({src, dst});
  }

  void Fixpoint() {
    // The edge set is sorted (std::set), so propagation order — and with it
    // every tie-break in the join — is deterministic.
    for (int pass = 0; pass < 64; ++pass) {
      bool changed = false;
      for (const auto& [src, dst] : edges) {
        const auto it = vals.find(src);
        if (it == vals.end()) continue;
        Val v = it->second;  // copy: vals[dst] may rehash
        // Dimension-erased target: taint flows through, dimensions do not.
        if (poly.count(dst)) v.dim = Dim::kUnknown;
        if (Join(&vals[dst], v)) changed = true;
      }
      if (!changed) return;
    }
  }

  [[nodiscard]] Val ValueOf(const std::string& node) const {
    const auto it = vals.find(node);
    return it != vals.end() ? it->second : Val{};
  }

  [[nodiscard]] static bool Concrete(Dim d) {
    return d != Dim::kUnknown && d != Dim::kConflict;
  }

  void Check(std::vector<Finding>* out, UnitsReport* units) const {
    std::set<std::pair<std::string, int>> binop_hits;  // (path, line)

    std::map<std::string, UnitsReport::FileEntry> report;

    for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
      const FileFacts& f = files[static_cast<std::size_t>(fi)];
      UnitsReport::FileEntry* entry = nullptr;
      if (units != nullptr) {
        entry = &report[f.path];
        entry->path = f.path;
      }

      // GL014: mixed-dimension binary operators.
      for (const UnitBinop& b : f.binops) {
        const std::string ln = NodeOf(fi, b.func, b.lhs);
        const std::string rn = NodeOf(fi, b.func, b.rhs);
        const Dim ld = ln.empty() ? Dim::kUnknown : ValueOf(ln).dim;
        const Dim rd = rn.empty() ? Dim::kUnknown : ValueOf(rn).dim;
        if (entry != nullptr) {
          for (const auto& [term, node, dim] :
               {std::tuple(b.lhs, ln, ld), std::tuple(b.rhs, rn, rd)}) {
            if (node.empty()) continue;  // literal / untracked operand
            if (Concrete(dim) || poly.count(node)) {
              ++entry->resolved_ops;
            } else {
              ++entry->unresolved_ops;
              entry->notes.push_back(
                  f.path + ":" + std::to_string(b.line) + ": operand '" +
                  CalleeOf(term) + "' of '" + b.op + "' has " +
                  (dim == Dim::kConflict ? "conflicting" : "no inferred") +
                  " dimension");
            }
          }
        }
        if (!Concrete(ld) || !Concrete(rd) || ld == rd) continue;
        Finding fd;
        fd.rule_id = kRuleUnits;
        fd.rule_name = "unit-confusion";
        fd.path = f.path;
        fd.line = b.line;
        fd.line_text = b.line_text;
        fd.message = "operands of '" + b.op + "' mix dimensions: '" +
                     CalleeOf(b.lhs) + "' is " + DimName(ld) + ", '" +
                     CalleeOf(b.rhs) + "' is " + DimName(rd);
        binop_hits.insert({f.path, b.line});
        out->push_back(std::move(fd));
      }

      // GL014: assignments that change a declared dimension.
      for (const UnitAssign& a : f.assigns) {
        const std::string ln = NodeOf(fi, a.func, a.lhs);
        if (ln.empty() || !declared.count(ln)) continue;
        if (binop_hits.count({f.path, a.line})) continue;  // += already hit
        const std::string rn = NodeOf(fi, a.func, a.rhs);
        if (rn.empty()) continue;
        const Dim ld = ValueOf(ln).dim;
        const Dim rd = ValueOf(rn).dim;
        if (!Concrete(ld) || !Concrete(rd) || ld == rd) continue;
        Finding fd;
        fd.rule_id = kRuleUnits;
        fd.rule_name = "unit-confusion";
        fd.path = f.path;
        fd.line = a.line;
        fd.line_text = a.line_text;
        fd.message = "assignment changes dimension: '" + CalleeOf(a.lhs) +
                     "' is declared " + DimName(ld) + " but '" +
                     CalleeOf(a.rhs) + "' is " + DimName(rd);
        out->push_back(std::move(fd));
      }

      // GL014: call arguments bound to params with a declared dimension.
      // GL016: tainted terms reaching determinism sinks.
      for (const CallArg& g : f.call_args) {
        const std::string an = NodeOf(fi, g.func, g.term);
        if (an.empty()) continue;
        const Val av = ValueOf(an);
        if (kTaintSinkCallees.count(g.callee) && av.tainted) {
          Finding fd;
          fd.rule_id = kRuleTaint;
          fd.rule_name = "determinism-taint";
          fd.path = f.path;
          fd.line = g.line;
          fd.line_text = g.line_text;
          fd.message =
              "'" + CalleeOf(g.term) + "' reaches determinism sink '" +
              g.callee + "' but carries nondeterministic data (" +
              (av.origin.empty() ? std::string("unknown origin")
                                 : av.origin) +
              "); hash only kDeterministic state (DESIGN.md §8)";
          out->push_back(std::move(fd));
        }
        if (!Concrete(av.dim) || kPassthroughCallees.count(g.callee)) {
          continue;
        }
        const std::vector<FuncRef>* targets =
            index.Resolve({fi, g.func}, g.callee);
        if (targets == nullptr) continue;
        for (const FuncRef& tgt : *targets) {
          const FileFacts& tf = files[static_cast<std::size_t>(tgt.file)];
          for (const ParamDecl& p : tf.params) {
            if (p.func != tgt.func || p.index != g.index ||
                p.units.empty()) {
              continue;
            }
            const Dim pd = DimFromString(p.units);
            if (!Concrete(pd) || pd == av.dim) continue;
            Finding fd;
            fd.rule_id = kRuleUnits;
            fd.rule_name = "unit-confusion";
            fd.path = f.path;
            fd.line = g.line;
            fd.line_text = g.line_text;
            fd.message = "argument " + std::to_string(g.index + 1) +
                         " of '" + index.Display(tgt) + "' binds '" +
                         CalleeOf(g.term) + "' (" + DimName(av.dim) +
                         ") to parameter '" + p.name + "' declared " +
                         DimName(pd);
            out->push_back(std::move(fd));
          }
        }
      }
    }

    if (units != nullptr) {
      for (auto& [path, entry] : report) {
        units->files.push_back(std::move(entry));
      }
    }
  }
};

}  // namespace

// --- GL015: lock-order analysis --------------------------------------------

namespace {

struct LockSite {
  std::string lock;  // qualified name ("Pool::mu_")
  int line = 0;
  int scope_end = 0;
  std::string line_text;
};

struct LockGraph {
  // Edge A -> B: "B acquired while A is held", with human evidence and the
  // site (for the finding's location and baseline fingerprint).
  struct Edge {
    std::string to;
    std::string evidence;
    std::string path;
    int line = 0;
    std::string line_text;
  };
  std::map<std::string, std::vector<Edge>> adj;

  void Add(const std::string& from, Edge e) {
    auto& v = adj[from];
    for (const Edge& existing : v) {
      if (existing.to == e.to) return;  // first evidence wins (deterministic)
    }
    v.push_back(std::move(e));
  }
};

[[nodiscard]] std::string QualifyLock(const FunctionDef& d,
                                      const std::string& lock) {
  if (d.class_name.empty() || lock.find("::") != std::string::npos) {
    return lock;
  }
  // Locals shadow members only if they were declared in the body; the
  // token scanner cannot tell, so member qualification (the common case
  // for `mu_`-style names) wins.
  return d.class_name + "::" + lock;
}

void AnalyzeLockOrder(const std::vector<FileFacts>& files,
                      const SymbolIndex& index, std::vector<Finding>* out) {
  // Direct per-function acquisitions (sites + GL_ACQUIRE annotations).
  std::unordered_map<FuncRef, std::vector<LockSite>, FuncRefHash> direct;
  for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
    const FileFacts& f = files[static_cast<std::size_t>(fi)];
    for (const LockAcquire& l : f.lock_acquires) {
      if (l.func < 0) continue;
      const FunctionDef& d = f.functions[static_cast<std::size_t>(l.func)];
      if (kLockInfraClasses.count(d.class_name)) continue;
      direct[{fi, l.func}].push_back({QualifyLock(d, l.lock), l.line,
                                      l.scope_end_line, l.line_text});
    }
    for (const LockAnno& q : f.lock_annos) {
      if (q.func < 0 || q.kind != "acquire") continue;
      const FunctionDef& d = f.functions[static_cast<std::size_t>(q.func)];
      if (kLockInfraClasses.count(d.class_name)) continue;
      direct[{fi, q.func}].push_back(
          {QualifyLock(d, q.lock), d.line, d.body_end_line, ""});
    }
  }

  // Acquired-lockset closure over the call graph, with one witness chain
  // per (function, lock).
  std::unordered_map<FuncRef, std::map<std::string, std::string>, FuncRefHash>
      closure;
  for (const auto& [ref, sites] : direct) {
    const FileFacts& f = files[static_cast<std::size_t>(ref.file)];
    for (const LockSite& s : sites) {
      auto& slot = closure[ref][s.lock];
      const std::string wit = index.Display(ref) + " acquires " + s.lock +
                              " (" + f.path + ":" + std::to_string(s.line) +
                              ")";
      if (slot.empty() || wit < slot) slot = wit;
    }
  }
  for (int pass = 0; pass < 64; ++pass) {
    bool changed = false;
    for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
      const FileFacts& f = files[static_cast<std::size_t>(fi)];
      for (const CallSite& c : f.calls) {
        if (c.func < 0) continue;
        const FuncRef caller{fi, c.func};
        if (kLockInfraClasses.count(
                f.functions[static_cast<std::size_t>(c.func)].class_name)) {
          continue;
        }
        const std::vector<FuncRef>* targets = index.Resolve(caller, c.callee);
        if (targets == nullptr) continue;
        for (const FuncRef& tgt : *targets) {
          const auto cit = closure.find(tgt);
          if (cit == closure.end()) continue;
          for (const auto& [lock, wit] : cit->second) {
            auto& slot = closure[caller][lock];
            const std::string via = index.Display(caller) + " calls (" +
                                    f.path + ":" + std::to_string(c.line) +
                                    ") -> " + wit;
            if (slot.empty()) {
              slot = via;
              changed = true;
            }
          }
        }
      }
    }
    if (!changed) break;
  }

  // Lock-order graph.
  LockGraph graph;
  for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
    const FileFacts& f = files[static_cast<std::size_t>(fi)];
    for (const auto& [ref, sites] : direct) {
      if (ref.file != fi) continue;
      const std::string fn = index.Display(ref);
      for (const LockSite& a : sites) {
        // (a) another acquisition inside a's scope.
        for (const LockSite& b : sites) {
          if (&a == &b || b.line < a.line || b.line > a.scope_end) continue;
          if (b.lock == a.lock) {
            if (b.line > a.line) {
              Finding fd;
              fd.rule_id = kRuleLocks;
              fd.rule_name = "lock-order-cycle";
              fd.path = f.path;
              fd.line = b.line;
              fd.line_text = b.line_text;
              fd.message = "'" + fn + "' re-acquires non-recursive lock " +
                           a.lock + " already held since line " +
                           std::to_string(a.line) + " (self-deadlock)";
              out->push_back(std::move(fd));
            }
            continue;
          }
          graph.Add(a.lock,
                    {b.lock,
                     fn + " holds " + a.lock + " (" + f.path + ":" +
                         std::to_string(a.line) + "), acquires " + b.lock +
                         " (" + f.path + ":" + std::to_string(b.line) + ")",
                     f.path, b.line, b.line_text});
        }
        // (b) calls made while a is held pull in the callee's lockset.
        for (const CallSite& c : f.calls) {
          if (c.func != ref.func || c.line < a.line || c.line > a.scope_end) {
            continue;
          }
          const std::vector<FuncRef>* targets = index.Resolve(ref, c.callee);
          if (targets == nullptr) continue;
          for (const FuncRef& tgt : *targets) {
            const auto cit = closure.find(tgt);
            if (cit == closure.end()) continue;
            for (const auto& [lock, wit] : cit->second) {
              if (lock == a.lock) continue;
              graph.Add(a.lock,
                        {lock,
                         fn + " holds " + a.lock + " (" + f.path + ":" +
                             std::to_string(a.line) + "), then " + wit,
                         f.path, a.line, a.line_text});
            }
          }
        }
      }
    }
    // (c) GL_REQUIRES: every acquisition in the function (and its callees)
    // is ordered after the required lock.
    for (const LockAnno& q : f.lock_annos) {
      if (q.func < 0 || q.kind != "requires") continue;
      const FunctionDef& d = f.functions[static_cast<std::size_t>(q.func)];
      if (kLockInfraClasses.count(d.class_name)) continue;
      const FuncRef ref{fi, q.func};
      const std::string req = QualifyLock(d, q.lock);
      const auto cit = closure.find(ref);
      if (cit == closure.end()) continue;
      for (const auto& [lock, wit] : cit->second) {
        if (lock == req) continue;
        graph.Add(req,
                  {lock,
                   index.Display(ref) + " requires " + req + "; " + wit,
                   f.path, d.line, ""});
      }
    }
  }

  // Cycle detection: for each edge A -> B, a path B ->* A closes a cycle.
  std::set<std::string> reported;  // canonical node-set keys
  for (const auto& [from, edges] : graph.adj) {
    for (const LockGraph::Edge& e : edges) {
      // BFS from e.to back to `from`, tracking the edge path.
      std::map<std::string, const LockGraph::Edge*> parent_edge;
      std::map<std::string, std::string> parent_node;
      std::vector<std::string> queue = {e.to};
      std::set<std::string> seen = {e.to};
      bool found = e.to == from;
      while (!queue.empty() && !found) {
        std::vector<std::string> next;
        for (const std::string& cur : queue) {
          const auto it = graph.adj.find(cur);
          if (it == graph.adj.end()) continue;
          for (const LockGraph::Edge& back : it->second) {
            if (!seen.insert(back.to).second) continue;
            parent_edge[back.to] = &back;
            parent_node[back.to] = cur;
            if (back.to == from) {
              found = true;
              break;
            }
            next.push_back(back.to);
          }
          if (found) break;
        }
        queue = std::move(next);
      }
      if (!found) continue;
      // Reconstruct the return path's evidence.
      std::vector<const LockGraph::Edge*> back_edges;
      std::string cur = from;
      while (cur != e.to) {
        const LockGraph::Edge* pe = parent_edge.at(cur);
        back_edges.push_back(pe);
        cur = parent_node.at(cur);
      }
      std::reverse(back_edges.begin(), back_edges.end());
      // Canonical cycle key: sorted node set.
      std::set<std::string> nodes = {from, e.to};
      for (const LockGraph::Edge* pe : back_edges) nodes.insert(pe->to);
      std::string key;
      for (const std::string& n : nodes) key += n + "|";
      if (!reported.insert(key).second) continue;

      std::string msg = "lock-order cycle between " + from + " and " + e.to +
                        ": [" + e.evidence + "]";
      for (const LockGraph::Edge* pe : back_edges) {
        msg += " vs [" + pe->evidence + "]";
      }
      Finding fd;
      fd.rule_id = kRuleLocks;
      fd.rule_name = "lock-order-cycle";
      fd.path = e.path;
      fd.line = e.line;
      fd.line_text = e.line_text;
      fd.message = std::move(msg);
      out->push_back(std::move(fd));
    }
  }
}

}  // namespace

void AnalyzeDataflow(const std::vector<FileFacts>& files,
                     const SymbolIndex& index, std::vector<Finding>* out,
                     UnitsReport* units) {
  Engine engine{files, index, {}, {}, {}, {}, {}, {}, {}};
  engine.Build();
  engine.Fixpoint();
  engine.Check(out, units);
  AnalyzeLockOrder(files, index, out);
}

}  // namespace gl::analyze
