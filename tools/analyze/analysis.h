// Cross-file analysis for gl_analyze (DESIGN.md §12).
//
// Per-file facts (tools/analyze/facts.h) merge into a whole-program symbol
// index here: a name-keyed call graph over every function definition seen.
// The rules then resolve:
//
//   GL010 alloc-in-hot-path      allocation sites in any function reachable
//                                from a hot root (default: Bisect,
//                                KWayPartition, every FmEngine method)
//   GL011 unguarded-shared-member  mutable members of mutex-owning classes
//                                lacking GL_GUARDED_BY (facts-level,
//                                surfaced here)
//   GL012 nondet-float-fold      float accumulation into captured locals
//                                inside ParallelFor bodies (facts-level)
//   GL013 stale-suppression      gl-lint allow(...) comments whose rule no
//                                longer fires on the covered lines
//
// Call edges match by bare name, so reachability is an over-approximation —
// the safe direction for GL010: the analyzer can prove "no allocator call is
// reachable", never the reverse.
//
// Findings carry a (rule, trimmed-line-text) fingerprint; the committed
// baseline (tools/analyze/baseline.txt) suppresses known-accepted findings
// by that fingerprint plus a path-suffix match, which survives both
// absolute-path (ctest) and relative-path (check.sh, CI) invocations as
// well as unrelated line drift.
#pragma once

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "analyze/dataflow.h"
#include "analyze/facts.h"

namespace gl::analyze {

struct RuleInfo {
  const char* id;       // "GL010"
  const char* name;     // "alloc-in-hot-path"
  const char* summary;  // one-line description for --list-rules / SARIF
};

// The analyzer rules (GL010–GL021), in id order.
[[nodiscard]] const std::vector<RuleInfo>& Rules();

// Parses a --rule=GL010,GL017 spec into rule ids. Returns false (with *err
// set) when a spec names an id Rules() does not know.
[[nodiscard]] bool ParseRuleFilter(const std::string& spec,
                                   std::set<std::string>* ids,
                                   std::string* err);

struct Finding {
  std::string rule_id;
  std::string rule_name;
  std::string path;
  int line = 0;
  std::string line_text;  // trimmed source line: the baseline fingerprint
  std::string message;
};

struct AnalysisOptions {
  // Hot-path roots for GL010. A plain name matches every function with that
  // bare name; a "Class::" spec matches every method of that class.
  std::vector<std::string> hot_roots = {"Bisect", "KWayPartition",
                                        "FmEngine::"};
};

// Wall-clock per analysis phase (--stats). Lex/facts time lives in LoadFacts
// and is measured by the caller around that call.
struct AnalyzeTimings {
  double callgraph_ms = 0;  // symbol index + hot-root reachability
  double dataflow_ms = 0;   // GL014–GL016 fixpoints
  double cfg_ms = 0;        // GL017–GL021 path walks
};

// Runs all rules over the merged facts. Findings come back sorted by
// (path, line, rule id) so output is stable across runs and platforms.
// The longer overloads also fill the GL014 units coverage report (see
// dataflow.h) and the per-phase timings when non-null.
[[nodiscard]] std::vector<Finding> Analyze(const std::vector<FileFacts>& files,
                                           const AnalysisOptions& opts);
[[nodiscard]] std::vector<Finding> Analyze(const std::vector<FileFacts>& files,
                                           const AnalysisOptions& opts,
                                           UnitsReport* units);
[[nodiscard]] std::vector<Finding> Analyze(const std::vector<FileFacts>& files,
                                           const AnalysisOptions& opts,
                                           UnitsReport* units,
                                           AnalyzeTimings* timings);

// --- baseline --------------------------------------------------------------

struct Baseline {
  struct Entry {
    std::string rule_id;
    std::string path;       // repo-relative; matched as a path suffix
    std::string line_text;  // trimmed source line
    int file_line = 0;      // line in the baseline file (for stale warnings)
  };
  std::vector<Entry> entries;
};

// Parses `RULE|path|line text` lines; '#' and blank lines are comments.
// Returns false (with *err set) on unreadable files or malformed lines.
[[nodiscard]] bool LoadBaseline(const std::string& path, Baseline* out,
                                std::string* err);

struct BaselineResult {
  std::vector<Finding> fresh;           // not covered by any entry
  int suppressed = 0;                   // findings matched by an entry
  std::vector<Baseline::Entry> stale;   // entries that matched nothing
};

[[nodiscard]] BaselineResult ApplyBaseline(const std::vector<Finding>& all,
                                           const Baseline& baseline);

// Renders findings in baseline-file format (for --write-baseline).
[[nodiscard]] std::string FormatBaseline(const std::vector<Finding>& all);

// --- SARIF -----------------------------------------------------------------

// SARIF 2.1.0 document for GitHub code scanning upload.
[[nodiscard]] std::string ToSarif(const std::vector<Finding>& findings);

// --- incremental cache -----------------------------------------------------

struct CacheStats {
  int files_total = 0;
  int files_cached = 0;  // facts reused from the cache
  int files_lexed = 0;   // facts re-extracted from source
};

// Extracts facts for every path, consulting (and rewriting) the cache file
// when `cache_path` is non-empty. A cache entry is reused when mtime+size
// match the stat, or — after an mtime-only change — when the content hash
// still matches. Unreadable source files are reported via *err and skipped.
// `jobs` > 1 extracts cache-missing files on that many threads; results
// (facts order, cache bytes, error text) are byte-identical to jobs == 1 —
// only per-file extraction parallelizes, every merge is in path order.
// `config_hash` fingerprints everything outside the sources that can change
// a verdict (baseline bytes, active rule set, flags); it is written into the
// cache header, so a config change invalidates the whole cache rather than
// serving stale verdicts.
[[nodiscard]] std::vector<FileFacts> LoadFacts(
    const std::vector<std::string>& paths, const std::string& cache_path,
    CacheStats* stats, std::string* err, int jobs = 1,
    std::uint64_t config_hash = 0);

// --- stale-suppression auto-fix (--fix=stale-allows) -----------------------

// Deletes stale rule names from gl-lint allow(...) comments (the GL013
// finding): a rule is dropped when it is unknown or no longer fires on the
// covered lines; an allow() left empty is removed, and a line left holding
// only the comment is deleted. With `apply` false nothing is written — the
// would-be edits are printed to `diff` as "path:line: - old / + new" pairs.
// Returns the number of lines changed (written or would-be), or -1 on I/O
// error (with *err set).
int FixStaleAllows(const std::vector<FileFacts>& files, bool apply,
                   std::ostream& diff, std::string* err);

// --- fixture self-test -----------------------------------------------------

// Runs every *.cc under `fixtures_dir` through single-file analysis and
// compares fired rule ids against the file's `// gl-analyze-expect:` header
// ("clean" or a comma-separated rule-id list). Prints one PASS/FAIL line per
// fixture to `out`; returns the number of failures (>0 also when the corpus
// is empty or a fixture lacks a header).
[[nodiscard]] int RunSelfTest(const std::string& fixtures_dir,
                              const AnalysisOptions& opts, std::ostream& out);

}  // namespace gl::analyze
