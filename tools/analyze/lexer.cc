#include "analyze/lexer.h"

#include <array>
#include <cctype>
#include <unordered_set>

namespace gl::analyze {
namespace {

[[nodiscard]] bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] int CountNewlines(std::string_view s) {
  int n = 0;
  for (const char c : s) n += c == '\n' ? 1 : 0;
  return n;
}

// Longest-match punctuation, longest first within each leading character.
constexpr std::array<std::string_view, 26> kPunct3Plus = {
    "<<=", ">>=", "<=>", "...", "->*",
    // 2-char from here on (scanned after the 3-char ones miss);
    // 1-char punctuation is the fallthrough.
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "&&", "||", "++", "--", "##"};

// Encoding prefixes that may precede a string/char literal.
[[nodiscard]] bool IsLiteralPrefix(std::string_view p) {
  return p == "u8" || p == "u" || p == "U" || p == "L";
}

}  // namespace

bool IsReservedWord(std::string_view ident) {
  static const std::unordered_set<std::string_view> kWords = {
      "alignas",      "alignof",      "and",          "asm",
      "auto",         "bool",         "break",        "case",
      "catch",        "char",         "class",        "co_await",
      "co_return",    "co_yield",     "concept",      "const",
      "const_cast",   "consteval",    "constexpr",    "constinit",
      "continue",     "decltype",     "default",      "delete",
      "do",           "double",       "dynamic_cast", "else",
      "enum",         "explicit",     "export",       "extern",
      "false",        "float",        "for",          "friend",
      "goto",         "if",           "inline",       "int",
      "long",         "mutable",      "namespace",    "new",
      "noexcept",     "not",          "nullptr",      "operator",
      "or",           "private",      "protected",    "public",
      "register",     "reinterpret_cast", "requires", "return",
      "short",        "signed",       "sizeof",       "static",
      "static_assert","static_cast",  "struct",       "switch",
      "template",     "this",         "thread_local", "throw",
      "true",         "try",          "typedef",      "typeid",
      "typename",     "union",        "unsigned",     "using",
      "virtual",      "void",         "volatile",     "while",
  };
  return kWords.count(ident) > 0;
}

std::vector<Token> Lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  const auto push = [&](TokKind kind, std::size_t begin, std::size_t end) {
    out.push_back(Token{kind, std::string(src.substr(begin, end - begin)),
                        line});
    line += CountNewlines(src.substr(begin, end - begin));
  };

  while (i < n) {
    const char c = src[i];

    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor directive: '#' first on its line; swallow continuations.
    if (c == '#' && at_line_start) {
      std::size_t j = i;
      while (j < n) {
        if (src[j] == '\n') {
          // A backslash (optionally with trailing spaces) continues the
          // directive onto the next line.
          std::size_t k = j;
          while (k > i && (src[k - 1] == ' ' || src[k - 1] == '\t' ||
                           src[k - 1] == '\r')) {
            --k;
          }
          if (k > i && src[k - 1] == '\\') {
            ++j;
            continue;
          }
          break;
        }
        ++j;
      }
      push(TokKind::kPreprocessor, i, j);
      i = j;
      at_line_start = true;  // we stopped at (or ran past) a newline
      continue;
    }
    at_line_start = false;

    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      push(TokKind::kComment, i, j);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) ++j;
      j = j + 1 < n ? j + 2 : n;
      push(TokKind::kComment, i, j);
      i = j;
      continue;
    }

    // Identifier — possibly a literal prefix (u8R"(...)", L"...", u'x').
    if (IsIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < n && IsIdentChar(src[j])) ++j;
      const std::string_view word = src.substr(i, j - i);
      if (j < n) {
        const bool raw = word.size() >= 1 && word.back() == 'R' &&
                         (word.size() == 1 ||
                          IsLiteralPrefix(word.substr(0, word.size() - 1)));
        if (raw && src[j] == '"') {
          // Raw string: R"delim( ... )delim".
          std::size_t d = j + 1;
          while (d < n && src[d] != '(' && src[d] != '"' && src[d] != '\n') {
            ++d;
          }
          std::string closer;
          closer.reserve(d - j + 1);
          closer += ')';
          closer += src.substr(j + 1, d - (j + 1));
          closer += '"';
          const std::size_t stop = src.find(closer, d);
          const std::size_t end =
              stop == std::string_view::npos ? n : stop + closer.size();
          push(TokKind::kString, i, end);
          i = end;
          continue;
        }
        if (IsLiteralPrefix(word) && (src[j] == '"' || src[j] == '\'')) {
          // Fall through to the quoted-literal scanner below, keeping the
          // prefix attached.
          const char quote = src[j];
          std::size_t k = j + 1;
          while (k < n && src[k] != quote && src[k] != '\n') {
            k += src[k] == '\\' ? 2 : 1;
          }
          if (k < n && src[k] == quote) ++k;
          push(quote == '"' ? TokKind::kString : TokKind::kChar, i, k);
          i = k;
          continue;
        }
      }
      push(TokKind::kIdent, i, j);
      i = j;
      continue;
    }

    // Number (pp-number): digits, hex/binary, digit separators, exponents,
    // suffixes, and a leading dot as in .5f.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i + 1;
      while (j < n) {
        const char d = src[j];
        if (IsIdentChar(d) || d == '.') {
          // Exponent signs belong to the number: 1e+9, 0x1p-3.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && j + 1 < n &&
              (src[j + 1] == '+' || src[j + 1] == '-')) {
            j += 2;
            continue;
          }
          ++j;
          continue;
        }
        if (d == '\'' && j + 1 < n && IsIdentChar(src[j + 1])) {
          j += 2;  // digit separator
          continue;
        }
        break;
      }
      push(TokKind::kNumber, i, j);
      i = j;
      continue;
    }

    // Plain string / char literal.
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != c && src[j] != '\n') {
        j += src[j] == '\\' ? 2 : 1;
      }
      if (j < n && src[j] == c) ++j;
      push(c == '"' ? TokKind::kString : TokKind::kChar, i, j);
      i = j;
      continue;
    }

    // Punctuation, maximal munch.
    std::size_t len = 1;
    for (const std::string_view p : kPunct3Plus) {
      if (!p.empty() && src.substr(i, p.size()) == p) {
        len = p.size();
        break;
      }
    }
    push(TokKind::kPunct, i, i + len);
    i += len;
  }
  return out;
}

}  // namespace gl::analyze
