// gl_analyze: token-aware, cross-file contract checker (DESIGN.md §12).
//
// Usage:
//   gl_analyze [options] <file-or-dir>...
//   gl_analyze --self-test [--fixtures=DIR]
//   gl_analyze --list-rules
//
// Options:
//   --baseline=FILE        suppress findings recorded in FILE
//   --write-baseline=FILE  write current findings as a new baseline and exit
//   --sarif=FILE           write non-baselined findings as SARIF 2.1.0
//   --cache=FILE           mtime+hash incremental facts cache
//   --hot-root=SPEC        GL010 root (repeatable; replaces the defaults
//                          Bisect, KWayPartition, FmEngine::). A plain name
//                          matches that function anywhere; "Class::" matches
//                          every method of Class.
//   --jobs=N               extract facts for cache-missing files on N
//                          threads (output is byte-identical to --jobs=1)
//   --fix=stale-allows     delete stale gl-lint allow() rules in place;
//                          with --dry-run, print the edits instead
//   --units-report         per-file GL014 dimension-coverage summary
//   --units-strict=SUBSTR  exit 1 if any analyzed file whose path contains
//                          SUBSTR still has unresolved '+'/'-'/comparison
//                          operands (repeatable)
//   --rule=GLNNN[,GLNNN]   report only the named rules (baseline entries for
//                          other rules are ignored, not stale)
//   --format=github        print findings as GitHub workflow ::error
//                          annotations instead of compiler-style lines
//   --stats                per-phase timing summary (lex/facts, callgraph,
//                          dataflow, cfg) and cached/analyzed file counts
//   --quiet                findings only, no summary line
//
// The incremental cache key covers the *configuration* too: baseline bytes,
// the active rule set, --rule/--hot-root/--units-strict flags. Any change
// there invalidates the whole cache (a stale verdict is worse than a cold
// run).
//
// Directories are scanned recursively for *.cc / *.h; directories named
// "fixtures" are skipped (the fixture corpus fires rules on purpose).
// Exit status: 0 clean, 1 non-baselined findings (or a --units-strict
// violation), 2 usage or I/O error.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analysis.h"

#ifndef GL_ANALYZE_FIXTURES_DIR
#define GL_ANALYZE_FIXTURES_DIR "tools/analyze/fixtures"
#endif

namespace {

using gl::analyze::AnalysisOptions;
using gl::analyze::Baseline;
using gl::analyze::BaselineResult;
using gl::analyze::CacheStats;
using gl::analyze::Finding;

int Usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "gl_analyze: %s\n", msg);
  std::fprintf(stderr,
               "usage: gl_analyze [--baseline=F] [--write-baseline=F] "
               "[--sarif=F] [--cache=F]\n"
               "                  [--jobs=N] [--hot-root=SPEC]... "
               "[--units-report] [--units-strict=S]...\n"
               "                  [--rule=GLNNN[,GLNNN]] [--format=github] "
               "[--stats]\n"
               "                  [--fix=stale-allows [--dry-run]] [--quiet] "
               "<file-or-dir>...\n"
               "       gl_analyze --self-test [--fixtures=DIR]\n"
               "       gl_analyze --list-rules\n");
  return 2;
}

void CollectSources(const std::string& root, std::vector<std::string>* out) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    out->push_back(root);  // explicit files are always analyzed
    return;
  }
  for (auto it = fs::recursive_directory_iterator(root, ec);
       !ec && it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory() && it->path().filename() == "fixtures") {
      it.disable_recursion_pending();
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext == ".cc" || ext == ".h") {
      out->push_back(it->path().string());
    }
  }
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return out.good();
}

[[nodiscard]] std::string ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// GitHub workflow-command escaping for ::error annotations: the message
// escapes %, CR, LF; property values additionally escape ',' and ':'.
[[nodiscard]] std::string GithubEscape(const std::string& s, bool property) {
  std::string out;
  for (const char c : s) {
    if (c == '%') out += "%25";
    else if (c == '\r') out += "%0D";
    else if (c == '\n') out += "%0A";
    else if (property && c == ',') out += "%2C";
    else if (property && c == ':') out += "%3A";
    else out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  std::string cache_path;
  std::string fixtures_dir = GL_ANALYZE_FIXTURES_DIR;
  std::vector<std::string> hot_roots;
  std::vector<std::string> strict_substrings;
  std::vector<std::string> inputs;
  std::string rule_spec;
  std::string format;
  int jobs = 1;
  bool self_test = false;
  bool list_rules = false;
  bool quiet = false;
  bool fix_stale_allows = false;
  bool dry_run = false;
  bool units_report = false;
  bool show_stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.starts_with("--baseline=")) {
      baseline_path = value("--baseline=");
    } else if (arg.starts_with("--write-baseline=")) {
      write_baseline_path = value("--write-baseline=");
    } else if (arg.starts_with("--sarif=")) {
      sarif_path = value("--sarif=");
    } else if (arg.starts_with("--cache=")) {
      cache_path = value("--cache=");
    } else if (arg.starts_with("--hot-root=")) {
      hot_roots.push_back(value("--hot-root="));
    } else if (arg.starts_with("--fixtures=")) {
      fixtures_dir = value("--fixtures=");
    } else if (arg.starts_with("--jobs=")) {
      jobs = std::atoi(value("--jobs=").c_str());
      if (jobs < 1) return Usage("--jobs needs a positive integer");
    } else if (arg == "--fix=stale-allows") {
      fix_stale_allows = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--units-report") {
      units_report = true;
    } else if (arg.starts_with("--units-strict=")) {
      strict_substrings.push_back(value("--units-strict="));
    } else if (arg.starts_with("--rule=")) {
      if (!rule_spec.empty()) rule_spec.push_back(',');
      rule_spec += value("--rule=");
    } else if (arg.starts_with("--format=")) {
      format = value("--format=");
      if (format != "github") {
        return Usage(("unknown --format: " + format).c_str());
      }
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.starts_with("--")) {
      return Usage(("unknown option: " + arg).c_str());
    } else {
      inputs.push_back(arg);
    }
  }

  if (list_rules) {
    for (const gl::analyze::RuleInfo& r : gl::analyze::Rules()) {
      std::printf("%s  %-24s  %s\n", r.id, r.name, r.summary);
    }
    return 0;
  }

  AnalysisOptions opts;
  if (!hot_roots.empty()) opts.hot_roots = hot_roots;

  if (self_test) {
    const int failures = gl::analyze::RunSelfTest(fixtures_dir, opts,
                                                  std::cout);
    if (failures == 0) std::printf("gl_analyze self-test: all fixtures pass\n");
    return failures == 0 ? 0 : 1;
  }

  if (inputs.empty()) return Usage("no inputs");

  std::set<std::string> rule_filter;
  if (!rule_spec.empty()) {
    std::string err;
    if (!gl::analyze::ParseRuleFilter(rule_spec, &rule_filter, &err)) {
      return Usage(err.c_str());
    }
  }

  std::vector<std::string> paths;
  for (const std::string& in : inputs) CollectSources(in, &paths);
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  if (paths.empty()) return Usage("inputs matched no .cc/.h files");

  // Configuration fingerprint for the cache key: baseline bytes plus every
  // knob that changes a verdict. '\x1f' separates fields so adjacent values
  // cannot collide by concatenation.
  std::string config;
  config += ReadTextFile(baseline_path);
  for (const gl::analyze::RuleInfo& r : gl::analyze::Rules()) {
    config.push_back('\x1f');
    config += r.id;
  }
  config.push_back('\x1f');
  config += rule_spec;
  for (const std::string& s : opts.hot_roots) {
    config.push_back('\x1f');
    config += s;
  }
  for (const std::string& s : strict_substrings) {
    config.push_back('\x1f');
    config += s;
  }
  const std::uint64_t config_hash = gl::analyze::HashBytes(config);

  using Clock = std::chrono::steady_clock;
  const Clock::time_point load_start = Clock::now();
  CacheStats stats;
  std::string io_err;
  const std::vector<gl::analyze::FileFacts> facts = gl::analyze::LoadFacts(
      paths, cache_path, &stats, &io_err, jobs, config_hash);
  const double load_ms = std::chrono::duration<double, std::milli>(
                             Clock::now() - load_start)
                             .count();
  if (!io_err.empty()) {
    std::fprintf(stderr, "gl_analyze: %s\n", io_err.c_str());
    return 2;
  }

  if (fix_stale_allows) {
    std::string err;
    const int edits =
        gl::analyze::FixStaleAllows(facts, /*apply=*/!dry_run, std::cout, &err);
    if (edits < 0) {
      std::fprintf(stderr, "gl_analyze: %s\n", err.c_str());
      return 2;
    }
    std::printf("gl_analyze: %d stale-allow line(s) %s\n", edits,
                dry_run ? "would change (dry run)" : "rewritten");
    return 0;
  }

  gl::analyze::UnitsReport units;
  gl::analyze::AnalyzeTimings timings;
  const bool want_units = units_report || !strict_substrings.empty();
  std::vector<Finding> all =
      gl::analyze::Analyze(facts, opts, want_units ? &units : nullptr,
                           &timings);
  if (!rule_filter.empty()) {
    std::erase_if(all, [&](const Finding& f) {
      return rule_filter.count(f.rule_id) == 0;
    });
  }

  if (!write_baseline_path.empty()) {
    if (!WriteTextFile(write_baseline_path,
                       gl::analyze::FormatBaseline(all))) {
      std::fprintf(stderr, "gl_analyze: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::printf("wrote %zu baseline entries to %s\n", all.size(),
                write_baseline_path.c_str());
    return 0;
  }

  BaselineResult result;
  if (!baseline_path.empty()) {
    Baseline baseline;
    std::string err;
    if (!gl::analyze::LoadBaseline(baseline_path, &baseline, &err)) {
      std::fprintf(stderr, "gl_analyze: %s\n", err.c_str());
      return 2;
    }
    if (!rule_filter.empty()) {
      // Entries for unselected rules can't match anything this run; drop
      // them instead of reporting them stale.
      std::erase_if(baseline.entries, [&](const Baseline::Entry& e) {
        return rule_filter.count(e.rule_id) == 0;
      });
    }
    result = gl::analyze::ApplyBaseline(all, baseline);
  } else {
    result.fresh = all;
  }

  for (const Finding& f : result.fresh) {
    if (format == "github") {
      std::printf("::error file=%s,line=%d,title=%s %s::%s\n",
                  GithubEscape(f.path, true).c_str(), f.line,
                  f.rule_id.c_str(),
                  GithubEscape(f.rule_name, true).c_str(),
                  GithubEscape(f.message, false).c_str());
    } else {
      std::printf("%s:%d: error [%s/%s] %s\n", f.path.c_str(), f.line,
                  f.rule_id.c_str(), f.rule_name.c_str(), f.message.c_str());
    }
  }
  for (const Baseline::Entry& e : result.stale) {
    std::fprintf(stderr,
                 "gl_analyze: warning: stale baseline entry (%s:%d): "
                 "%s|%s no longer matches any finding\n",
                 baseline_path.c_str(), e.file_line, e.rule_id.c_str(),
                 e.path.c_str());
  }

  if (!sarif_path.empty()) {
    if (!WriteTextFile(sarif_path, gl::analyze::ToSarif(result.fresh))) {
      std::fprintf(stderr, "gl_analyze: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
  }

  bool strict_fail = false;
  if (want_units) {
    for (const auto& fe : units.files) {
      const bool strict_hit =
          std::any_of(strict_substrings.begin(), strict_substrings.end(),
                      [&](const std::string& s) {
                        return fe.path.find(s) != std::string::npos;
                      });
      if (units_report) {
        std::printf("units: %s: %d resolved, %d unresolved\n", fe.path.c_str(),
                    fe.resolved_ops, fe.unresolved_ops);
      }
      if (fe.unresolved_ops == 0) continue;
      if (strict_hit) {
        strict_fail = true;
        for (const std::string& note : fe.notes) {
          std::printf("units: strict: %s\n", note.c_str());
        }
      } else if (units_report) {
        for (const std::string& note : fe.notes) {
          std::printf("units: %s\n", note.c_str());
        }
      }
    }
    if (strict_fail) {
      std::printf(
          "gl_analyze: --units-strict: unresolved dimension operands remain\n");
    }
  }

  if (show_stats) {
    std::printf(
        "stats: lex/facts %.1f ms (%d file(s): %d cached, %d analyzed), "
        "callgraph %.1f ms, dataflow %.1f ms, cfg %.1f ms\n",
        load_ms, stats.files_total, stats.files_cached, stats.files_lexed,
        timings.callgraph_ms, timings.dataflow_ms, timings.cfg_ms);
  }
  if (!quiet) {
    std::printf(
        "gl_analyze: %d file(s) (%d cached, %d lexed), %zu finding(s), "
        "%d baselined, %zu stale baseline entr%s\n",
        stats.files_total, stats.files_cached, stats.files_lexed,
        result.fresh.size(), result.suppressed, result.stale.size(),
        result.stale.size() == 1 ? "y" : "ies");
  }
  return result.fresh.empty() && !strict_fail ? 0 : 1;
}
