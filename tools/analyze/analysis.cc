#include "analyze/analysis.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "analyze/cfg.h"
#include "analyze/dataflow.h"
#include "common/json_writer.h"

namespace gl::analyze {
namespace {

constexpr char kRuleAlloc[] = "GL010";
constexpr char kRuleGuard[] = "GL011";
constexpr char kRuleFold[] = "GL012";
constexpr char kRuleStale[] = "GL013";

[[nodiscard]] std::string AllocKindLabel(AllocKind kind) {
  switch (kind) {
    case AllocKind::kNew:
      return "new expression";
    case AllocKind::kAllocCall:
      return "allocator call";
    case AllocKind::kInducedSubgraph:
      return "materializes an induced subgraph";
    case AllocKind::kLocalInit:
      return "local container constructed with contents";
    case AllocKind::kLocalGrowth:
      return "growth of a local container";
  }
  return "allocation";
}

// True when one path is a '/'-boundary suffix of the other. Findings carry
// whatever path the invoker passed (absolute under ctest, relative under
// check.sh), baseline entries are committed repo-relative; suffix matching
// makes them agree.
[[nodiscard]] bool PathSuffixMatch(const std::string& a,
                                   const std::string& b) {
  if (a == b) return true;
  const std::string& longer = a.size() > b.size() ? a : b;
  const std::string& shorter = a.size() > b.size() ? b : a;
  return longer.size() > shorter.size() + 1 &&
         longer.ends_with(shorter) &&
         longer[longer.size() - shorter.size() - 1] == '/';
}

void AnalyzeHotPath(const std::vector<FileFacts>& files,
                    const SymbolIndex& index, const HotReach& hot,
                    std::vector<Finding>* out) {
  // Reachability (and the parent chain for messages) comes precomputed from
  // ComputeHotReach (cfg.cc) — it is shared with GL019.
  for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
    const FileFacts& f = files[static_cast<std::size_t>(fi)];
    for (const AllocSite& a : f.allocs) {
      const FuncRef ref{fi, a.func};
      if (!hot.Reached(ref)) continue;
      const std::string via = hot.Chain(index, ref);
      Finding fd;
      fd.rule_id = kRuleAlloc;
      fd.rule_name = "alloc-in-hot-path";
      fd.path = f.path;
      fd.line = a.line;
      fd.line_text = a.line_text;
      fd.message = AllocKindLabel(a.kind) + " (" + a.detail +
                   ") on the hot path: " + via;
      out->push_back(std::move(fd));
    }
  }
}

// GL022: a hot-path function whose body spans more than this many source
// lines should open a TraceSpan, or profiles attribute its whole cost to
// the nearest instrumented ancestor. Deliberate leaf kernels (the FM inner
// loops) are blessed in the baseline instead of lowering the threshold.
constexpr int kSpanCoverageMinBodyLines = 40;

void AnalyzeSpanCoverage(const std::vector<FileFacts>& files,
                         const SymbolIndex& index, const HotReach& hot,
                         std::vector<Finding>* out) {
  for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
    const FileFacts& f = files[static_cast<std::size_t>(fi)];
    std::set<int> with_span;
    for (const CallSite& c : f.calls) {
      if (c.callee == "TraceSpan") with_span.insert(c.func);
    }
    for (int fn = 0; fn < static_cast<int>(f.functions.size()); ++fn) {
      const FunctionDef& d = f.functions[static_cast<std::size_t>(fn)];
      const int body_lines = d.body_end_line - d.line;
      if (body_lines <= kSpanCoverageMinBodyLines) continue;
      const FuncRef ref{fi, fn};
      if (!hot.Reached(ref)) continue;
      if (with_span.count(fn) > 0) continue;
      Finding fd;
      fd.rule_id = "GL022";
      fd.rule_name = "missing-span-coverage";
      fd.path = f.path;
      fd.line = d.line;
      fd.line_text = d.line_text;
      fd.message = "hot-path function '" +
                   (d.class_name.empty() ? d.name
                                         : d.class_name + "::" + d.name) +
                   "' spans " + std::to_string(body_lines) +
                   " lines with no TraceSpan (" + hot.Chain(index, ref) +
                   "); open one so profiles can attribute its time";
      out->push_back(std::move(fd));
    }
  }
}

[[nodiscard]] std::string ReadWholeFile(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {kRuleAlloc, "alloc-in-hot-path",
       "allocation reachable from the partitioner hot path (DESIGN.md §11: "
       "zero-allocation steady state)"},
      {kRuleGuard, "unguarded-shared-member",
       "mutable member of a mutex-owning class lacks GL_GUARDED_BY "
       "(DESIGN.md §9)"},
      {kRuleFold, "nondet-float-fold",
       "float accumulation inside a ParallelFor body is schedule-dependent "
       "(DESIGN.md §8: fold in canonical index order)"},
      {kRuleStale, "stale-suppression",
       "gl-lint allow(...) names a rule that no longer fires on the covered "
       "lines"},
      {"GL014", "unit-confusion",
       "mixed physical dimensions in arithmetic, comparison, assignment or "
       "argument binding (DESIGN.md §13: GL_UNITS lattice)"},
      {"GL015", "lock-order-cycle",
       "two locks are acquired in opposite orders somewhere in the call "
       "graph: potential deadlock (DESIGN.md §9)"},
      {"GL016", "determinism-taint",
       "nondeterministic value (clock, rand, unordered iteration) flows "
       "into a state hash or deterministic counter (DESIGN.md §8)"},
      {"GL017", "lock-path-leak",
       "a manual .Lock() can reach function exit without its .Unlock() on "
       "some path (DESIGN.md §14; prefer gl::MutexLock)"},
      {"GL018", "use-after-invalidation",
       "a reference/index obtained from scratch state or a vector is used "
       "after a Clear()/Reset()/growth call on some path (DESIGN.md §14)"},
      {"GL019", "loop-carried-allocation",
       "allocation or container growth inside a loop of a hot-path function "
       "(DESIGN.md §14; sharpens GL010 to per-iteration cost)"},
      {"GL020", "unguarded-narrowing",
       "64-bit value narrowed to a 32-bit vertex-id type with no dominating "
       "bounds check on the path (DESIGN.md §14)"},
      {"GL021", "divergent-parallel-update",
       "deterministic counter or state-hash write guarded by a "
       "thread-varying branch inside a ParallelFor body (DESIGN.md §14)"},
      {"GL022", "missing-span-coverage",
       "hot-path function longer than the span-coverage threshold opens no "
       "TraceSpan, so profiles attribute its time to the caller (DESIGN.md "
       "§15)"},
  };
  return kRules;
}

bool ParseRuleFilter(const std::string& spec, std::set<std::string>* ids,
                     std::string* err) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string id = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (id.empty()) continue;
    const bool known =
        std::any_of(Rules().begin(), Rules().end(),
                    [&](const RuleInfo& r) { return id == r.id; });
    if (!known) {
      *err = "unknown rule id in --rule=: " + id;
      return false;
    }
    ids->insert(id);
  }
  if (ids->empty()) {
    *err = "--rule= selects no rules";
    return false;
  }
  return true;
}

std::vector<Finding> Analyze(const std::vector<FileFacts>& files,
                             const AnalysisOptions& opts) {
  return Analyze(files, opts, nullptr, nullptr);
}

std::vector<Finding> Analyze(const std::vector<FileFacts>& files,
                             const AnalysisOptions& opts,
                             UnitsReport* units) {
  return Analyze(files, opts, units, nullptr);
}

std::vector<Finding> Analyze(const std::vector<FileFacts>& files,
                             const AnalysisOptions& opts, UnitsReport* units,
                             AnalyzeTimings* timings) {
  using Clock = std::chrono::steady_clock;
  const auto ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  std::vector<Finding> out;
  const Clock::time_point t0 = Clock::now();
  const SymbolIndex index(files);
  const HotReach hot = ComputeHotReach(files, index, opts.hot_roots);
  const Clock::time_point t1 = Clock::now();
  AnalyzeHotPath(files, index, hot, &out);
  AnalyzeSpanCoverage(files, index, hot, &out);
  AnalyzeDataflow(files, index, &out, units);
  const Clock::time_point t2 = Clock::now();
  AnalyzeCfg(files, index, hot, &out);
  const Clock::time_point t3 = Clock::now();
  if (timings != nullptr) {
    timings->callgraph_ms = ms(t0, t1);
    timings->dataflow_ms = ms(t1, t2);
    timings->cfg_ms = ms(t2, t3);
  }

  for (const FileFacts& f : files) {
    for (const UnguardedMember& m : f.unguarded) {
      Finding fd;
      fd.rule_id = kRuleGuard;
      fd.rule_name = "unguarded-shared-member";
      fd.path = f.path;
      fd.line = m.line;
      fd.line_text = m.line_text;
      fd.message = "member '" + m.member + "' of mutex-owning class '" +
                   m.class_name +
                   "' has no GL_GUARDED_BY annotation; annotate it or mark "
                   "why it needs none in the baseline";
      out.push_back(std::move(fd));
    }
    for (const FloatFold& x : f.float_folds) {
      Finding fd;
      fd.rule_id = kRuleFold;
      fd.rule_name = "nondet-float-fold";
      fd.path = f.path;
      fd.line = x.line;
      fd.line_text = x.line_text;
      fd.message = "float accumulation into captured '" + x.var +
                   "' inside a ParallelFor body in '" + x.function +
                   "' depends on worker schedule; write per-index slots and "
                   "fold in canonical order";
      out.push_back(std::move(fd));
    }
    for (const Suppression& s : f.suppressions) {
      for (const SuppressedRule& r : s.rules) {
        if (r.known && r.triggered) continue;
        Finding fd;
        fd.rule_id = kRuleStale;
        fd.rule_name = "stale-suppression";
        fd.path = f.path;
        fd.line = s.line;
        fd.line_text = s.line_text;
        fd.message =
            r.known
                ? "suppression for '" + r.rule +
                      "' is stale: the rule no longer fires on the covered "
                      "lines; delete the allow() comment"
                : "suppression names unknown rule '" + r.rule + "'";
        out.push_back(std::move(fd));
      }
    }
  }

  std::sort(out.begin(), out.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule_id != b.rule_id) return a.rule_id < b.rule_id;
              return a.message < b.message;
            });
  // Exact duplicates happen when one source line matches a pattern twice
  // (e.g. nested vector<vector<T>> declarations); report each once.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.path == b.path && a.line == b.line &&
                                 a.rule_id == b.rule_id &&
                                 a.message == b.message;
                        }),
            out.end());
  return out;
}

// --- baseline --------------------------------------------------------------

bool LoadBaseline(const std::string& path, Baseline* out, std::string* err) {
  std::ifstream in(path);
  if (!in) {
    *err = "cannot open baseline file: " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    const std::size_t p1 = line.find('|');
    const std::size_t p2 = p1 == std::string::npos ? p1 : line.find('|', p1 + 1);
    if (p2 == std::string::npos) {
      *err = path + ":" + std::to_string(lineno) +
             ": malformed baseline entry (want RULE|path|line text)";
      return false;
    }
    Baseline::Entry e;
    e.rule_id = line.substr(0, p1);
    e.path = line.substr(p1 + 1, p2 - p1 - 1);
    e.line_text = line.substr(p2 + 1);
    e.file_line = lineno;
    out->entries.push_back(std::move(e));
  }
  return true;
}

BaselineResult ApplyBaseline(const std::vector<Finding>& all,
                             const Baseline& baseline) {
  BaselineResult r;
  std::vector<bool> hit(baseline.entries.size(), false);
  for (const Finding& f : all) {
    bool matched = false;
    for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
      const Baseline::Entry& e = baseline.entries[i];
      if (e.rule_id == f.rule_id && e.line_text == f.line_text &&
          PathSuffixMatch(e.path, f.path)) {
        hit[i] = true;
        matched = true;
      }
    }
    if (matched) {
      ++r.suppressed;
    } else {
      r.fresh.push_back(f);
    }
  }
  for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
    if (!hit[i]) r.stale.push_back(baseline.entries[i]);
  }
  return r;
}

std::string FormatBaseline(const std::vector<Finding>& all) {
  std::string out =
      "# gl_analyze baseline: accepted findings, one per line.\n"
      "# Format: RULE|repo-relative/path|trimmed source line\n"
      "# An entry suppresses every finding with the same rule, path suffix,\n"
      "# and line text. Keep a justification comment above each entry.\n";
  for (const Finding& f : all) {
    out += f.rule_id;
    out.push_back('|');
    out += f.path;
    out.push_back('|');
    out += f.line_text;
    out.push_back('\n');
  }
  return out;
}

// --- SARIF -----------------------------------------------------------------

std::string ToSarif(const std::vector<Finding>& findings) {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("$schema");
  w.String(
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json");
  w.Key("version");
  w.String("2.1.0");
  w.Key("runs");
  w.BeginArray();
  w.BeginObject();
  w.Key("tool");
  w.BeginObject();
  w.Key("driver");
  w.BeginObject();
  w.Key("name");
  w.String("gl_analyze");
  w.Key("informationUri");
  w.String("DESIGN.md");
  w.Key("version");
  w.String("1.0.0");
  w.Key("rules");
  w.BeginArray();
  for (const RuleInfo& r : Rules()) {
    w.BeginObject();
    w.Key("id");
    w.String(r.id);
    w.Key("name");
    w.String(r.name);
    w.Key("shortDescription");
    w.BeginObject();
    w.Key("text");
    w.String(r.summary);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();  // driver
  w.EndObject();  // tool
  w.Key("results");
  w.BeginArray();
  for (const Finding& f : findings) {
    w.BeginObject();
    w.Key("ruleId");
    w.String(f.rule_id);
    w.Key("level");
    w.String("error");
    w.Key("message");
    w.BeginObject();
    w.Key("text");
    w.String(f.message);
    w.EndObject();
    w.Key("locations");
    w.BeginArray();
    w.BeginObject();
    w.Key("physicalLocation");
    w.BeginObject();
    w.Key("artifactLocation");
    w.BeginObject();
    w.Key("uri");
    w.String(f.path);
    w.EndObject();
    w.Key("region");
    w.BeginObject();
    w.Key("startLine");
    w.Int(f.line > 0 ? f.line : 1);
    w.EndObject();
    w.EndObject();  // physicalLocation
    w.EndObject();  // location
    w.EndArray();
    w.EndObject();  // result
  }
  w.EndArray();
  w.EndObject();  // run
  w.EndArray();
  w.EndObject();
  out.push_back('\n');
  return out;
}

// --- incremental cache -----------------------------------------------------

namespace {

struct CacheEntry {
  std::int64_t mtime_ns = 0;
  std::uint64_t size = 0;
  std::uint64_t hash = 0;
  std::string blob;  // serialized FileFacts
};

[[nodiscard]] bool StatFile(const std::string& path, std::int64_t* mtime_ns,
                            std::uint64_t* size) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return false;
  *mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
              st.st_mtim.tv_nsec;
  *size = static_cast<std::uint64_t>(st.st_size);
  return true;
}

// Cache file format (v4 adds the FunctionDef line_text field and the
// TraceSpan call-site fact for GL022; older blobs are rejected by the
// header check and simply re-extracted):
//   glcache v4 <config hash hex>
//   file <path>\t<mtime_ns>\t<size>\t<hash hex>
//   <serialized facts lines>
//   end
// The config hash covers baseline bytes and the active rule/flag set
// (LoadFacts doc): facts themselves are config-independent, but the cached
// *verdict* a CI run restores is not — a baseline edit or rule change must
// not serve a stale pass/fail.
[[nodiscard]] std::string CacheHeader(std::uint64_t config_hash) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(config_hash));
  return std::string("glcache v4 ") + buf;
}

void ParseCacheFile(const std::string& path, const std::string& header_line,
                    std::unordered_map<std::string, CacheEntry>* out) {
  bool ok = false;
  const std::string blob = ReadWholeFile(path, &ok);
  if (!ok) return;
  std::size_t pos = 0;
  const auto next_line = [&](std::string* line) {
    if (pos >= blob.size()) return false;
    std::size_t nl = blob.find('\n', pos);
    if (nl == std::string::npos) nl = blob.size();
    line->assign(blob, pos, nl - pos);
    pos = nl + 1;
    return true;
  };
  std::string line;
  if (!next_line(&line) || line != header_line) return;
  while (next_line(&line)) {
    if (!line.starts_with("file ")) return;  // malformed: drop the rest
    const std::string header = line.substr(5);
    std::vector<std::string> cols;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= header.size(); ++i) {
      if (i == header.size() || header[i] == '\t') {
        cols.push_back(header.substr(start, i - start));
        start = i + 1;
      }
    }
    if (cols.size() != 4) return;
    CacheEntry e;
    char* end = nullptr;
    e.mtime_ns = std::strtoll(cols[1].c_str(), &end, 10);
    e.size = std::strtoull(cols[2].c_str(), &end, 10);
    e.hash = std::strtoull(cols[3].c_str(), &end, 16);
    while (next_line(&line) && line != "end") {
      e.blob += line;
      e.blob.push_back('\n');
    }
    (*out)[cols[0]] = std::move(e);
  }
}

}  // namespace

std::vector<FileFacts> LoadFacts(const std::vector<std::string>& paths,
                                 const std::string& cache_path,
                                 CacheStats* stats, std::string* err,
                                 int jobs, std::uint64_t config_hash) {
  const std::string header = CacheHeader(config_hash);
  std::unordered_map<std::string, CacheEntry> cache;
  if (!cache_path.empty()) ParseCacheFile(cache_path, header, &cache);

  // Per-path slots, filled in two phases: a serial stat+cache-probe pass
  // and a (possibly parallel) read+extract pass over the misses. Every
  // merge below walks the slots in path order, so the facts vector, the
  // cache bytes and the error text are identical for any `jobs`.
  struct Slot {
    std::int64_t mtime_ns = 0;
    std::uint64_t size = 0;
    bool stat_ok = false;
    bool reused = false;
    bool read_failed = false;
    FileFacts facts;
    CacheEntry fresh;
  };
  std::vector<Slot> slots(paths.size());
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    Slot& s = slots[i];
    if (!StatFile(paths[i], &s.mtime_ns, &s.size)) continue;
    s.stat_ok = true;
    const auto it = cache.find(paths[i]);
    if (it != cache.end() && it->second.mtime_ns == s.mtime_ns &&
        it->second.size == s.size &&
        DeserializeFacts(it->second.blob, &s.facts)) {
      s.reused = true;  // stat match: facts reused without reading the file
      s.fresh = it->second;
    } else {
      misses.push_back(i);
    }
  }

  const auto extract_one = [&](std::size_t i) {
    Slot& s = slots[i];
    bool ok = false;
    const std::string source = ReadWholeFile(paths[i], &ok);
    if (!ok) {
      s.read_failed = true;
      return;
    }
    const std::uint64_t hash = HashBytes(source);
    const auto it = cache.find(paths[i]);
    if (it != cache.end() && it->second.hash == hash &&
        DeserializeFacts(it->second.blob, &s.facts)) {
      s.reused = true;  // touched but unchanged: rehash rescued the entry
      s.fresh = it->second;
      s.fresh.mtime_ns = s.mtime_ns;
      s.fresh.size = s.size;
    } else {
      s.facts = ExtractFacts(paths[i], source);
      s.fresh.mtime_ns = s.mtime_ns;
      s.fresh.size = s.size;
      s.fresh.hash = hash;
      SerializeFacts(s.facts, &s.fresh.blob);
    }
  };
  const int workers =
      std::min<int>(std::max(jobs, 1), static_cast<int>(misses.size()));
  if (workers <= 1) {
    for (const std::size_t i : misses) extract_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t k = next.fetch_add(1); k < misses.size();
             k = next.fetch_add(1)) {
          extract_one(misses[k]);
        }
      });
    }
    for (std::thread& th : pool) th.join();
  }

  std::vector<FileFacts> out;
  std::unordered_map<std::string, CacheEntry> fresh_cache;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    Slot& s = slots[i];
    ++stats->files_total;
    if (!s.stat_ok || s.read_failed) {
      if (!err->empty()) err->push_back('\n');
      *err += (s.stat_ok ? "cannot read: " : "cannot stat: ") + paths[i];
      continue;
    }
    fresh_cache[paths[i]] = std::move(s.fresh);
    s.facts.path = paths[i];  // cached blobs may carry a stale path spelling
    ++(s.reused ? stats->files_cached : stats->files_lexed);
    out.push_back(std::move(s.facts));
  }

  if (!cache_path.empty()) {
    std::string blob = header + "\n";
    // Deterministic order: sort by path.
    std::map<std::string, const CacheEntry*> ordered;
    for (const auto& [p, e] : fresh_cache) ordered[p] = &e;
    for (const auto& [p, e] : ordered) {
      blob += "file " + p + "\t" + std::to_string(e->mtime_ns) + "\t" +
              std::to_string(e->size) + "\t";
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(e->hash));
      blob += buf;
      blob.push_back('\n');
      blob += e->blob;
      blob += "end\n";
    }
    std::ofstream outf(cache_path, std::ios::binary | std::ios::trunc);
    if (outf) outf << blob;
  }
  return out;
}

// --- stale-suppression auto-fix (--fix=stale-allows) -----------------------

namespace {

// Rewrites one source line holding a gl-lint allow(...) comment so that only
// the still-live rules remain. Returns false when the whole line should be
// deleted (the comment was the only content). `changed` reports whether the
// line differs from the input.
bool RewriteAllowLine(const std::string& line,
                      const std::unordered_set<std::string>& stale,
                      std::string* out, bool* changed) {
  *changed = false;
  *out = line;
  const std::size_t at = line.find("gl-lint:");
  if (at == std::string::npos) return true;
  const std::size_t open = line.find("allow(", at);
  if (open == std::string::npos) return true;
  const std::size_t close = line.find(')', open);
  if (close == std::string::npos) return true;

  std::vector<std::string> live;
  const std::string list = line.substr(open + 6, close - open - 6);
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    std::string rule = list.substr(pos, comma - pos);
    const auto b = rule.find_first_not_of(" \t");
    const auto e = rule.find_last_not_of(" \t");
    if (b != std::string::npos) {
      rule = rule.substr(b, e - b + 1);
      if (!stale.count(rule)) live.push_back(rule);
    }
    pos = comma + 1;
  }

  if (!live.empty()) {
    std::string joined;
    for (const std::string& r : live) {
      if (!joined.empty()) joined += ", ";
      joined += r;
    }
    *out = line.substr(0, open + 6) + joined + line.substr(close);
    *changed = *out != line;
    return true;
  }

  // Empty allow(): drop the whole comment. Prefer erasing from the '//'
  // that introduces it; fall back to just the gl-lint:...allow(...) text.
  std::size_t cut = line.rfind("//", at);
  std::size_t cut_end = line.size();
  if (cut == std::string::npos) {
    cut = at;
    cut_end = close + 1;
  }
  std::string next = line.substr(0, cut) + line.substr(cut_end);
  const auto last = next.find_last_not_of(" \t");
  next = last == std::string::npos ? std::string() : next.substr(0, last + 1);
  *changed = true;
  if (next.find_first_not_of(" \t") == std::string::npos) return false;
  *out = std::move(next);
  return true;
}

}  // namespace

int FixStaleAllows(const std::vector<FileFacts>& files, bool apply,
                   std::ostream& diff, std::string* err) {
  int edits = 0;
  for (const FileFacts& f : files) {
    // line -> rule names to delete from that line's allow() list.
    std::map<int, std::unordered_set<std::string>> stale_by_line;
    for (const Suppression& s : f.suppressions) {
      for (const SuppressedRule& r : s.rules) {
        if (!(r.known && r.triggered)) stale_by_line[s.line].insert(r.rule);
      }
    }
    if (stale_by_line.empty()) continue;

    std::ifstream in(f.path, std::ios::binary);
    if (!in) {
      *err = "cannot read: " + f.path;
      return -1;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(std::move(line));
    in.close();

    bool file_changed = false;
    std::vector<std::string> out_lines;
    out_lines.reserve(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const int lineno = static_cast<int>(i) + 1;
      const auto it = stale_by_line.find(lineno);
      if (it == stale_by_line.end()) {
        out_lines.push_back(lines[i]);
        continue;
      }
      std::string rewritten;
      bool changed = false;
      const bool keep = RewriteAllowLine(lines[i], it->second, &rewritten,
                                         &changed);
      if (!changed) {
        out_lines.push_back(lines[i]);
        continue;
      }
      ++edits;
      file_changed = true;
      diff << f.path << ":" << lineno << ": - " << lines[i] << "\n";
      if (keep) {
        diff << f.path << ":" << lineno << ": + " << rewritten << "\n";
        out_lines.push_back(std::move(rewritten));
      }
    }

    if (apply && file_changed) {
      std::ofstream outf(f.path, std::ios::binary | std::ios::trunc);
      if (!outf) {
        *err = "cannot write: " + f.path;
        return -1;
      }
      for (const std::string& l : out_lines) outf << l << "\n";
    }
  }
  return edits;
}

// --- fixture self-test -----------------------------------------------------

int RunSelfTest(const std::string& fixtures_dir, const AnalysisOptions& opts,
                std::ostream& os) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(fixtures_dir, ec)) {
    if (entry.path().extension() == ".cc") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    os << "FAIL cannot list fixtures dir: " << fixtures_dir << "\n";
    return 1;
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    os << "FAIL no fixtures found in " << fixtures_dir << "\n";
    return 1;
  }

  int failures = 0;
  for (const std::string& path : paths) {
    const std::string base = fs::path(path).filename().string();
    bool ok = false;
    const std::string source = ReadWholeFile(path, &ok);
    if (!ok) {
      os << "FAIL " << base << ": unreadable\n";
      ++failures;
      continue;
    }
    // Expectation header: the first "// gl-analyze-expect:" comment.
    std::set<std::string> expected;
    bool have_header = false;
    {
      const std::size_t at = source.find("gl-analyze-expect:");
      if (at != std::string::npos) {
        have_header = true;
        std::size_t eol = source.find('\n', at);
        if (eol == std::string::npos) eol = source.size();
        std::string list = source.substr(at + 18, eol - at - 18);
        std::size_t pos = 0;
        while (pos <= list.size()) {
          std::size_t comma = list.find(',', pos);
          if (comma == std::string::npos) comma = list.size();
          std::string item = list.substr(pos, comma - pos);
          const auto b = item.find_first_not_of(" \t\r");
          const auto e = item.find_last_not_of(" \t\r");
          if (b != std::string::npos) {
            item = item.substr(b, e - b + 1);
            if (item != "clean") expected.insert(item);
          }
          pos = comma + 1;
        }
      }
    }
    if (!have_header) {
      os << "FAIL " << base << ": missing // gl-analyze-expect: header\n";
      ++failures;
      continue;
    }

    const std::vector<FileFacts> facts = {ExtractFacts(path, source)};
    const std::vector<Finding> findings = Analyze(facts, opts);
    std::set<std::string> fired;
    for (const Finding& f : findings) fired.insert(f.rule_id);

    const auto join = [](const std::set<std::string>& s) {
      if (s.empty()) return std::string("clean");
      std::string j;
      for (const std::string& x : s) {
        if (!j.empty()) j += ",";
        j += x;
      }
      return j;
    };
    if (fired == expected) {
      os << "PASS " << base << " (" << join(expected) << ")\n";
    } else {
      os << "FAIL " << base << ": expected " << join(expected) << ", got "
         << join(fired) << "\n";
      ++failures;
    }
  }
  return failures;
}

}  // namespace gl::analyze
