// Per-file fact extraction for gl_analyze (DESIGN.md §12).
//
// One pass over the token stream of a single translation unit produces a
// FileFacts record: everything the cross-file analysis needs, and nothing
// else. Facts are self-contained and serializable, which is what makes the
// mtime+hash incremental cache possible — a warm run deserializes facts
// instead of re-lexing, and only the (cheap) cross-file phase re-runs.
//
// Extracted facts:
//   * function definitions (bare name, enclosing/qualifying class, body
//     span) — free functions, methods defined inside class bodies, and
//     out-of-line Class::Method definitions all land in the index;
//   * call sites (caller function → callee name) — receiver types are not
//     resolved, so a call edge is an over-approximation by name, which is
//     the conservative direction for reachability rules;
//   * allocation sites inside function bodies (GL010 raw material): new
//     expressions, allocator calls, InducedSubgraph uses, and local owning
//     containers that are constructed with contents or grown;
//   * per-class member audits (GL011, resolved per file): classes owning a
//     mutex, and their mutable members lacking GL_GUARDED_BY;
//   * float accumulation into captured locals inside ParallelFor lambda
//     bodies (GL012, resolved per file);
//   * gl-lint allow(...) suppression comments together with a per-rule
//     "does the suppressed rule still trigger here" verdict (GL013).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/lexer.h"

namespace gl::analyze {

struct FunctionDef {
  std::string name;        // bare name ("Bisect", "Attach")
  std::string class_name;  // "FmEngine" for methods, "" for free functions
  int line = 0;
};

struct CallSite {
  int func = -1;       // index into FileFacts::functions (the caller)
  std::string callee;  // bare callee name
  int line = 0;
};

enum class AllocKind {
  kNew,             // new expression
  kAllocCall,       // make_unique / make_shared / malloc family
  kInducedSubgraph, // materializes a Graph copy (what PR 5 eliminated)
  kLocalInit,       // local owning container constructed with contents
  kLocalGrowth,     // growth call on a local owning container
};

struct AllocSite {
  int func = -1;  // index into FileFacts::functions
  AllocKind kind = AllocKind::kNew;
  std::string detail;  // token or "name.push_back" style description
  int line = 0;
  std::string line_text;  // trimmed source line (baseline fingerprint)
};

// A mutable member of a mutex-owning class with no GL_GUARDED_BY.
struct UnguardedMember {
  std::string class_name;
  std::string member;
  int line = 0;
  std::string line_text;
};

// Float accumulation into a captured enclosing-scope local inside a
// ParallelFor lambda.
struct FloatFold {
  std::string var;
  std::string function;  // enclosing function, for the message
  int line = 0;
  std::string line_text;
};

// One rule named by a gl-lint allow(...) comment, and whether that rule
// still has anything to suppress on the covered lines.
struct SuppressedRule {
  std::string rule;      // rule *name* as written (e.g. "unordered-iter")
  bool known = false;    // names a rule the checkers understand
  bool triggered = false;
};

struct Suppression {
  int line = 0;           // line of the allow(...) comment
  std::string line_text;  // trimmed source line carrying the comment
  std::vector<SuppressedRule> rules;
};

struct FileFacts {
  std::string path;
  std::vector<FunctionDef> functions;
  std::vector<CallSite> calls;
  std::vector<AllocSite> allocs;
  std::vector<UnguardedMember> unguarded;
  std::vector<FloatFold> float_folds;
  std::vector<Suppression> suppressions;
};

// Lexes + extracts in one go. `path` is recorded verbatim.
[[nodiscard]] FileFacts ExtractFacts(const std::string& path,
                                     std::string_view source);

// Cache serialization: one line per record, tab-separated, text fields
// escaped (\t, \n, \\). Deserialize returns false on any malformed line —
// the caller falls back to re-extraction.
void SerializeFacts(const FileFacts& facts, std::string* out);
[[nodiscard]] bool DeserializeFacts(std::string_view blob, FileFacts* facts);

// FNV-1a over file bytes, the cache's content fingerprint.
[[nodiscard]] std::uint64_t HashBytes(std::string_view bytes);

}  // namespace gl::analyze
