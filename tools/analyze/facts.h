// Per-file fact extraction for gl_analyze (DESIGN.md §12).
//
// One pass over the token stream of a single translation unit produces a
// FileFacts record: everything the cross-file analysis needs, and nothing
// else. Facts are self-contained and serializable, which is what makes the
// mtime+hash incremental cache possible — a warm run deserializes facts
// instead of re-lexing, and only the (cheap) cross-file phase re-runs.
//
// Extracted facts:
//   * function definitions (bare name, enclosing/qualifying class, body
//     span) — free functions, methods defined inside class bodies, and
//     out-of-line Class::Method definitions all land in the index;
//   * call sites (caller function → callee name) — receiver types are not
//     resolved, so a call edge is an over-approximation by name, which is
//     the conservative direction for reachability rules;
//   * allocation sites inside function bodies (GL010 raw material): new
//     expressions, allocator calls, InducedSubgraph uses, and local owning
//     containers that are constructed with contents or grown;
//   * per-class member audits (GL011, resolved per file): classes owning a
//     mutex, and their mutable members lacking GL_GUARDED_BY;
//   * float accumulation into captured locals inside ParallelFor lambda
//     bodies (GL012, resolved per file);
//   * gl-lint allow(...) suppression comments together with a per-rule
//     "does the suppressed rule still trigger here" verdict (GL013);
//   * dataflow raw material (DESIGN.md §13): GL_UNITS dimension
//     declarations, value flows (assignments, call arguments, returns),
//     unit-relevant binary operators, lock acquisition sites, and
//     nondeterminism taint seeds. The dataflow engine (dataflow.h) joins
//     these across files into GL014/GL015/GL016 findings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/lexer.h"

namespace gl::analyze {

struct FunctionDef {
  std::string name;        // bare name ("Bisect", "Attach")
  std::string class_name;  // "FmEngine" for methods, "" for free functions
  int line = 0;
  std::string ret_units;   // GL_UNITS(...) after the signature, "" if none
  int body_end_line = 0;   // line of the closing '}' of the body
  std::string line_text;   // trimmed signature line (baseline fingerprint)
};

struct CallSite {
  int func = -1;       // index into FileFacts::functions (the caller)
  std::string callee;  // bare callee name
  int line = 0;
};

enum class AllocKind {
  kNew,             // new expression
  kAllocCall,       // make_unique / make_shared / malloc family
  kInducedSubgraph, // materializes a Graph copy (what PR 5 eliminated)
  kLocalInit,       // local owning container constructed with contents
  kLocalGrowth,     // growth call on a local owning container
};

struct AllocSite {
  int func = -1;  // index into FileFacts::functions
  AllocKind kind = AllocKind::kNew;
  std::string detail;  // token or "name.push_back" style description
  int line = 0;
  std::string line_text;  // trimmed source line (baseline fingerprint)
};

// A mutable member of a mutex-owning class with no GL_GUARDED_BY.
struct UnguardedMember {
  std::string class_name;
  std::string member;
  int line = 0;
  std::string line_text;
};

// Float accumulation into a captured enclosing-scope local inside a
// ParallelFor lambda.
struct FloatFold {
  std::string var;
  std::string function;  // enclosing function, for the message
  int line = 0;
  std::string line_text;
};

// One rule named by a gl-lint allow(...) comment, and whether that rule
// still has anything to suppress on the covered lines.
struct SuppressedRule {
  std::string rule;      // rule *name* as written (e.g. "unordered-iter")
  bool known = false;    // names a rule the checkers understand
  bool triggered = false;
};

struct Suppression {
  int line = 0;           // line of the allow(...) comment
  std::string line_text;  // trimmed source line carrying the comment
  std::vector<SuppressedRule> rules;
};

// --- dataflow raw material (GL014 / GL015 / GL016) -------------------------
//
// Value flows reference *terms*, a compact encoding of the expressions the
// token scanner can track:
//   "v:name"  local variable or parameter in the enclosing function
//   "m:field" member access (x.field, x->field, this->field): last field
//   "c:name"  call expression (the callee's return value)
//   "k:"      literal constant (polymorphic: joins with anything)
//   "?:"      anything the scanner cannot track (excluded from checks)

// A declared dimension: GL_UNITS(dim) on a local / member, or an int-family
// local auto-seeded as "count".
struct UnitDecl {
  int func = -1;      // index into functions; -1 for class members
  std::string var;    // local name, or "Class::field" for members
  std::string dim;    // "watts", "cores", ... (see dataflow.h Dim)
  int line = 0;
};

// One declared parameter (annotated or not — names are needed to bind call
// arguments interprocedurally).
struct ParamDecl {
  int func = -1;
  int index = 0;
  std::string name;
  std::string units;  // "" when unannotated
};

// A '+', '-', or comparison whose operand terms the scanner could parse.
struct UnitBinop {
  int func = -1;
  std::string op;
  std::string lhs;  // term encoding
  std::string rhs;
  int line = 0;
  std::string line_text;
};

// Value flow rhs -> lhs ('=', one record per additive rhs operand).
struct UnitAssign {
  int func = -1;
  std::string lhs;
  std::string rhs;
  int line = 0;
  std::string line_text;
};

// One trackable argument term at a call site (units param binding + taint
// sink checks).
struct CallArg {
  int func = -1;
  std::string callee;  // bare name, or "Counter::Add" for typed receivers
  int index = 0;       // argument position
  std::string term;
  int line = 0;
  std::string line_text;
};

// A trackable term flowing out through `return`.
struct ReturnFlow {
  int func = -1;
  std::string term;
  int line = 0;
};

// A nondeterministic value born in this function (beyond the intrinsic
// taint-source callees the dataflow engine knows by name).
struct TaintSeed {
  int func = -1;
  std::string term;  // the term the taint lands in, e.g. the loop variable
  std::string kind;  // "unordered-iter", "pointer-key"
  int line = 0;
  std::string line_text;
};

// --- control-flow raw material (GL017–GL021, cfg.h) ------------------------
//
// The extractor builds one basic-block CFG per function body (cfg.cc) and
// stores it with the facts, so warm runs replay cached CFGs instead of
// re-lexing. Blocks carry the path-relevant events in statement order;
// edges point at successor block ids, with -1 meaning "function exit".

enum class CfgEventKind {
  kLock = 0,     // manual base.Lock(); a = lock name
  kUnlock,       // manual base.Unlock(); a = lock name
  kBind,         // a = variable bound to a ref/index/view; b = source chain
  kInvalidate,   // a = object chain whose derived refs die; b = the call
  kUse,          // a = use of a previously bound variable
  kNarrow,       // a = 64-bit term cast to 32 bits; b = the target type
  kCheck,        // a = term a dominating comparison bounds on this path
  kAlloc,        // allocation (GL019 raw material); a = detail, b = kind
  kSink,         // a = deterministic-state sink call (MixU64, Counter::Add)
};

struct CfgEvent {
  CfgEventKind kind = CfgEventKind::kUse;
  std::string a;
  std::string b;
  int line = 0;
  std::string line_text;
};

struct CfgBlock {
  std::vector<int> succ;          // successor block ids; -1 = function exit
  std::vector<CfgEvent> events;   // in statement order
  int loop_depth = 0;             // number of enclosing loops
  bool in_parallel = false;       // inside a ParallelFor lambda body
  int varying_guard = 0;          // line of the innermost thread-varying
                                  // branch guarding this block (0 = none)
};

struct FuncCfg {
  int func = -1;                  // index into FileFacts::functions
  std::vector<CfgBlock> blocks;   // block 0 = entry
  bool budget_exceeded = false;   // builder bailed; path rules skip this fn
};

// A lock acquisition: gl::MutexLock RAII site or an explicit .Lock() call.
struct LockAcquire {
  int func = -1;
  std::string lock;       // identifier the guard was built from ("mu_")
  int line = 0;
  int scope_end_line = 0; // last line the lock is provably held
  std::string line_text;
};

// GL_ACQUIRE / GL_REQUIRES on a function signature.
struct LockAnno {
  int func = -1;
  std::string kind;  // "acquire" | "requires"
  std::string lock;
};

struct FileFacts {
  std::string path;
  std::vector<FunctionDef> functions;
  std::vector<CallSite> calls;
  std::vector<AllocSite> allocs;
  std::vector<UnguardedMember> unguarded;
  std::vector<FloatFold> float_folds;
  std::vector<Suppression> suppressions;
  std::vector<UnitDecl> unit_decls;
  std::vector<ParamDecl> params;
  std::vector<UnitBinop> binops;
  std::vector<UnitAssign> assigns;
  std::vector<CallArg> call_args;
  std::vector<ReturnFlow> returns;
  std::vector<TaintSeed> taint_seeds;
  std::vector<LockAcquire> lock_acquires;
  std::vector<LockAnno> lock_annos;
  std::vector<FuncCfg> cfgs;
};

// Lexes + extracts in one go. `path` is recorded verbatim.
[[nodiscard]] FileFacts ExtractFacts(const std::string& path,
                                     std::string_view source);

// Cache serialization: one line per record, tab-separated, text fields
// escaped (\t, \n, \\). Deserialize returns false on any malformed line —
// the caller falls back to re-extraction.
void SerializeFacts(const FileFacts& facts, std::string* out);
[[nodiscard]] bool DeserializeFacts(std::string_view blob, FileFacts* facts);

// FNV-1a over file bytes, the cache's content fingerprint.
[[nodiscard]] std::uint64_t HashBytes(std::string_view bytes);

}  // namespace gl::analyze
