// CFG construction and the GL017–GL021 abstract interpreters (cfg.h,
// DESIGN.md §14).
//
// The builder is a recursive-descent walk over one function body's
// structural tokens. It never needs to be a full parser: every construct it
// does not recognize degrades into "events stay in the current block", which
// only ever merges paths — the conservative direction for the may-analyses
// (GL017/GL018 may over-report held locks or poisoned refs, both of which a
// fixture pins down) and a plain miss for the must-analysis (GL020).
//
// The interpreters run at analysis time over CFGs that were serialized with
// the per-file facts, so a warm run replays cached graphs and pays only for
// the (cheap) fixpoints.

#include "analyze/cfg.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "analyze/analysis.h"

namespace gl::analyze {
namespace {

// --- token view (mirror of facts.cc's SView over the shared pointer vec) ---

struct TView {
  const std::vector<const Token*>& toks;

  [[nodiscard]] std::size_t size() const { return toks.size(); }
  [[nodiscard]] const std::string& text(std::size_t i) const {
    static const std::string kEmpty;
    return i < toks.size() ? toks[i]->text : kEmpty;
  }
  [[nodiscard]] int line(std::size_t i) const {
    return i < toks.size() ? toks[i]->line : 0;
  }
  [[nodiscard]] bool is(std::size_t i, std::string_view s) const {
    return i < toks.size() && toks[i]->text == s;
  }
  [[nodiscard]] bool IsIdent(std::size_t i) const {
    return i < toks.size() && toks[i]->kind == TokKind::kIdent;
  }
};

std::size_t MatchGroup(const TView& t, std::size_t i, std::string_view open,
                       std::string_view close) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t.is(k, open)) ++depth;
    if (t.is(k, close) && --depth == 0) return k + 1;
  }
  return t.size();
}

// Just past a template argument list opening at `i`, or `i` when the '<' is
// a comparison (same bail heuristics as facts.cc).
std::size_t SkipTemplateArgs(const TView& t, std::size_t i) {
  if (!t.is(i, "<")) return i;
  int depth = 0;
  for (std::size_t k = i; k < t.size() && k < i + 400; ++k) {
    const std::string& s = t.text(k);
    if (s == "<") ++depth;
    else if (s == ">") --depth;
    else if (s == ">>") depth -= 2;
    else if (s == "(") { k = MatchGroup(t, k, "(", ")") - 1; continue; }
    else if (s == ";" || s == "{" || s == "}") return i;
    else if (s == "&&" || s == "||" || s == "=" || s == "==" || s == "+" ||
             s == "-") {
      return i;
    }
    if (depth <= 0) return k + 1;
  }
  return i;
}

// --- name sets -------------------------------------------------------------

// 64-bit declared types: evidence that a static_cast to a 32-bit id type
// actually narrows (GL020). "long" also catches "unsigned long"/"long long".
const std::unordered_set<std::string_view> kWide64Types = {
    "size_t", "ssize_t", "ptrdiff_t", "int64_t", "uint64_t", "intptr_t",
    "uintptr_t", "long"};

// 32-bit vertex-id targets GL020 guards. Deliberately not plain int:
// static_cast<int> is pervasive and mostly benign; the vertex-id types are
// where narrowing corrupts a partition.
const std::unordered_set<std::string_view> kNarrowTargets = {
    "VertexIndex", "int32_t", "uint32_t"};

// Scratch types whose Clear()/Reset() invalidates derived refs (GL018).
const std::unordered_set<std::string_view> kScratchTypes = {
    "PartitionScratch", "GroupAccumulator", "LazyMaxHeap"};

// Containers tracked for GL018/GL019.
const std::unordered_set<std::string_view> kOwningContainers = {
    "vector", "deque", "list", "string", "basic_string", "map", "set",
    "multimap", "multiset", "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset", "queue", "stack",
    "priority_queue"};

// Contiguous containers whose growth/shrink invalidates element refs and
// iterators (GL018's vector half; node containers keep refs stable).
const std::unordered_set<std::string_view> kRefUnstableContainers = {
    "vector", "string", "basic_string", "deque"};

const std::unordered_set<std::string_view> kVecInvalidating = {
    "push_back", "emplace_back", "resize", "insert", "clear", "assign",
    "reserve", "erase", "shrink_to_fit"};

const std::unordered_set<std::string_view> kGrowthCalls = {
    "push_back", "emplace_back", "emplace", "insert", "append", "push_front",
    "resize", "reserve", "assign"};

const std::unordered_set<std::string_view> kAllocCalls = {
    "make_unique", "make_shared", "malloc", "calloc", "realloc", "strdup",
    "aligned_alloc"};

// Calls yielding an iterator/pointer into the receiver: binding their result
// is poisonable even without '&' on the left-hand side.
const std::unordered_set<std::string_view> kIterCalls = {
    "begin", "end", "cbegin", "cend", "rbegin", "rend", "crbegin", "crend",
    "data"};

// Element-view calls: poisonable when bound by reference/pointer.
const std::unordered_set<std::string_view> kViewCalls = {"front", "back",
                                                         "at"};

// Thread-varying condition sources for GL021 (superset of the GL016 taint
// callees: a branch on any of these diverges across workers).
const std::unordered_set<std::string_view> kVaryingCallees = {
    "rand", "random", "drand48", "lrand48", "mrand48", "random_device",
    "now", "time", "clock", "gettimeofday", "clock_gettime", "getpid",
    "MonotonicMicros", "ElapsedMs", "ElapsedUs"};

// Deterministic-state sinks (mirrors dataflow.cc's kTaintSinkCallees; the
// Mix* family is matched by prefix so new mixers stay covered).
const std::unordered_set<std::string_view> kSinkCallees = {"HashAssignment",
                                                           "HashLoads"};

const std::unordered_set<std::string_view> kCounterSinkMethods = {
    "Add", "Increment", "Inc"};

// gl:: synchronization infrastructure is exempt from GL017: Mutex::Lock and
// the MutexLock constructor *are* the acquire sites.
const std::unordered_set<std::string_view> kLockInfraClasses = {
    "Mutex", "MutexLock", "CondVar"};

[[nodiscard]] std::string TrimCopy(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------------
// Builder: one pass over a function body producing a FuncCfg.
// ---------------------------------------------------------------------------

struct Builder {
  Builder(const TView& tv, const std::vector<std::string>& ls)
      : t(tv), lines(ls) {}

  const TView& t;
  const std::vector<std::string>& lines;  // 0-based source lines
  FuncCfg cfg;

  int cur = 0;          // current block; -1 after a terminator (dead code)
  int depth = 0;        // enclosing loop count for new blocks
  bool par = false;     // inside a ParallelFor lambda body
  int guard = 0;        // line of innermost thread-varying branch (0 = none)
  std::vector<int> continue_to;
  std::vector<int> break_to;

  // Function-wide declaration context (prepass; flow-insensitive on
  // purpose — scoping inside one body is not worth modeling here).
  std::set<std::string> wide64;    // 64-bit declared locals and params
  std::set<std::string> scratch;   // PartitionScratch/GroupAccumulator/...
  std::set<std::string> vecs;      // ref-unstable container locals/params
  std::set<std::string> own;       // body-declared owning containers (GL019)
  std::set<std::string> counters;  // Counter-typed locals/params
  std::map<std::string, std::string> alias;  // container alias -> source
  std::set<std::string> bound;     // vars with a kBind seen so far

  [[nodiscard]] std::string LineText(int line) const {
    const std::size_t idx = static_cast<std::size_t>(line) - 1;
    return line >= 1 && idx < lines.size() ? TrimCopy(lines[idx]) : "";
  }

  int NewBlock() {
    if (static_cast<int>(cfg.blocks.size()) >= kCfgBlockBudget) {
      cfg.budget_exceeded = true;
      return cur >= 0 ? cur : 0;
    }
    CfgBlock b;
    b.loop_depth = depth;
    b.in_parallel = par;
    b.varying_guard = guard;
    cfg.blocks.push_back(std::move(b));
    return static_cast<int>(cfg.blocks.size()) - 1;
  }

  void Edge(int from, int to) {
    if (from < 0 || cfg.budget_exceeded) return;
    std::vector<int>& s = cfg.blocks[static_cast<std::size_t>(from)].succ;
    if (std::find(s.begin(), s.end(), to) == s.end()) s.push_back(to);
  }

  void Emit(CfgEventKind kind, std::string a, std::string b, int line) {
    if (cur < 0 || cfg.budget_exceeded) return;
    CfgEvent e;
    e.kind = kind;
    e.a = std::move(a);
    e.b = std::move(b);
    e.line = line;
    e.line_text = LineText(line);
    cfg.blocks[static_cast<std::size_t>(cur)].events.push_back(std::move(e));
  }

  // --- declaration prepass -------------------------------------------------

  // Past any '*', '&', '&&', 'const', '::' decorating a declarator.
  [[nodiscard]] std::size_t SkipDecl(std::size_t k, std::size_t hi) const {
    while (k < hi && (t.is(k, "*") || t.is(k, "&") || t.is(k, "&&") ||
                      t.is(k, "const") || t.is(k, "::"))) {
      ++k;
    }
    return k;
  }

  void CollectDecls(std::size_t lo, std::size_t hi, bool is_sig) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (!t.IsIdent(i)) continue;
      const std::string& s = t.text(i);
      if (kWide64Types.count(s)) {
        std::size_t k = i + 1;
        // "long long x", "unsigned long x": fold the remaining int words.
        while (k < hi && (t.is(k, "long") || t.is(k, "int") ||
                          t.is(k, "unsigned"))) {
          ++k;
        }
        k = SkipDecl(k, hi);
        if (t.IsIdent(k) && !IsReservedWord(t.text(k))) {
          wide64.insert(t.text(k));
        }
        continue;
      }
      if (kScratchTypes.count(s)) {
        const std::size_t k = SkipDecl(i + 1, hi);
        if (t.IsIdent(k) && !IsReservedWord(t.text(k))) {
          scratch.insert(t.text(k));
        }
        continue;
      }
      if (s == "Counter") {
        const std::size_t k = SkipDecl(i + 1, hi);
        if (t.IsIdent(k) && !IsReservedWord(t.text(k))) {
          counters.insert(t.text(k));
        }
        continue;
      }
      if (kOwningContainers.count(s)) {
        std::size_t k = SkipTemplateArgs(t, i + 1);
        if (k == i + 1 && t.is(k, "<")) continue;  // unparsable args
        k = SkipDecl(k, hi);
        if (t.IsIdent(k) && !IsReservedWord(t.text(k))) {
          if (kRefUnstableContainers.count(s)) vecs.insert(t.text(k));
          if (!is_sig) own.insert(t.text(k));
        }
        continue;
      }
      // `const auto n = v.size();` — a deduced 64-bit count.
      if (s == "auto") {
        const std::size_t k = SkipDecl(i + 1, hi);
        if (t.IsIdent(k) && t.is(k + 1, "=")) {
          int d = 0;
          for (std::size_t j = k + 2; j < hi; ++j) {
            const std::string& js = t.text(j);
            if (js == "(" || js == "[" || js == "{") ++d;
            else if (js == ")" || js == "]" || js == "}") --d;
            else if (js == ";" && d == 0) break;
            if (d == 0 && js == "size" && t.is(j + 1, "(") &&
                (t.is(j - 1, ".") || t.is(j - 1, "->"))) {
              wide64.insert(t.text(k));
              break;
            }
          }
        }
      }
    }
  }

  // --- chains and terms ----------------------------------------------------

  // Receiver chain ending at the '.'/'->' at `dot`, alias-substituted at the
  // head. "" when any link is not a plain identifier.
  [[nodiscard]] std::string ChainBefore(std::size_t dot) const {
    std::vector<std::string> parts;
    std::size_t k = dot;
    while (true) {
      if (k < 1 || !t.IsIdent(k - 1)) return "";
      parts.push_back(t.text(k - 1));
      if (k >= 3 && (t.is(k - 2, ".") || t.is(k - 2, "->"))) {
        k -= 2;
        continue;
      }
      break;
    }
    std::reverse(parts.begin(), parts.end());
    std::string chain;
    const auto it = alias.find(parts[0]);
    chain = it != alias.end() ? it->second : parts[0];
    for (std::size_t i = 1; i < parts.size(); ++i) chain += "." + parts[i];
    return chain;
  }

  [[nodiscard]] static std::string HeadOf(const std::string& chain) {
    const std::size_t dot = chain.find('.');
    return dot == std::string::npos ? chain : chain.substr(0, dot);
  }

  // kCheck/kNarrow terms inside [s, e): bare 64-bit identifiers and
  // `chain.size` call chains. `any_ident` relaxes the wide64 requirement
  // (checks bound whatever they compare; narrows need 64-bit evidence).
  template <typename Fn>
  void ForEachTerm(std::size_t s, std::size_t e, bool any_ident,
                   Fn&& fn) const {
    for (std::size_t k = s; k < e; ++k) {
      if (!t.IsIdent(k)) continue;
      const std::string& id = t.text(k);
      if (id == "size" && t.is(k + 1, "(") && k > s &&
          (t.is(k - 1, ".") || t.is(k - 1, "->"))) {
        const std::string chain = ChainBefore(k - 1);
        if (!chain.empty()) fn(chain + ".size");
        continue;
      }
      const bool bare = !(k > 0 && (t.is(k - 1, ".") || t.is(k - 1, "->"))) &&
                        !t.is(k + 1, "(");
      if (!bare || IsReservedWord(id)) continue;
      if (any_ident || wide64.count(id)) fn(id);
    }
  }

  void EmitCheckTerms(std::size_t s, std::size_t e, int line) {
    ForEachTerm(s, e, /*any_ident=*/true,
                [&](const std::string& term) {
                  Emit(CfgEventKind::kCheck, term, "", line);
                });
  }

  [[nodiscard]] bool CondVaries(std::size_t s, std::size_t e) const {
    for (std::size_t k = s; k < e; ++k) {
      const std::string& id = t.text(k);
      if (id == "reinterpret_cast" || id == "uintptr_t" || id == "intptr_t") {
        return true;
      }
      if (!t.IsIdent(k) || !t.is(k + 1, "(")) continue;
      if (kVaryingCallees.count(id) || id.starts_with("Elapsed")) return true;
    }
    return false;
  }

  // --- per-statement event extraction --------------------------------------

  struct BindInfo {
    bool valid = false;
    bool alias_only = false;
    std::string name;
    std::string src;
    std::size_t name_tok = 0;
    int line = 0;
  };

  [[nodiscard]] BindInfo DetectBind(std::size_t s, std::size_t e) const {
    BindInfo out;
    int d = 0;
    std::size_t eq = e;
    for (std::size_t k = s; k < e; ++k) {
      const std::string& ks = t.text(k);
      if (ks == "(" || ks == "[" || ks == "{") ++d;
      else if (ks == ")" || ks == "]" || ks == "}") --d;
      else if (d == 0 && ks == "=") { eq = k; break; }
    }
    if (eq == e || eq == s) return out;
    // Left side: a simple declared/assigned name directly before the '='.
    if (!t.IsIdent(eq - 1) || IsReservedWord(t.text(eq - 1))) return out;
    if (eq >= 2 && (t.is(eq - 2, ".") || t.is(eq - 2, "->"))) return out;
    const std::size_t name_tok = eq - 1;
    bool is_ref = false;
    for (std::size_t k = s; k < name_tok; ++k) {
      if (t.is(k, "&") || t.is(k, "*")) is_ref = true;
    }
    // Right side: optional '&', then ident ('.'|'->' ident)*, then an
    // optional trailing subscript or call.
    std::size_t k = eq + 1;
    bool addr = false;
    if (t.is(k, "&")) { addr = true; ++k; }
    if (!t.IsIdent(k) || IsReservedWord(t.text(k))) return out;
    std::vector<std::string> parts = {t.text(k)};
    ++k;
    while (k + 1 < e && (t.is(k, ".") || t.is(k, "->")) && t.IsIdent(k + 1)) {
      parts.push_back(t.text(k + 1));
      k += 2;
    }
    bool derived = false;
    std::string last_call;
    if (t.is(k, "[")) {
      derived = true;
    } else if (t.is(k, "(") && parts.size() >= 2) {
      last_call = parts.back();
      if (!kIterCalls.count(last_call) && !kViewCalls.count(last_call)) {
        return out;  // value call (size(), Top(), ...) — nothing to dangle
      }
      parts.pop_back();
      derived = true;
    } else if (t.is(k, "(")) {
      return out;  // free call — not a container view
    }
    std::string src;
    {
      const auto it = alias.find(parts[0]);
      src = it != alias.end() ? it->second : parts[0];
      for (std::size_t i = 1; i < parts.size(); ++i) src += "." + parts[i];
    }
    const std::string root = HeadOf(src);
    if (!derived) {
      if ((is_ref || addr) &&
          (scratch.count(root) || vecs.count(root) || own.count(root))) {
        out.alias_only = true;
        out.name = t.text(name_tok);
        out.src = src;
      }
      return out;
    }
    bool track = false;
    if (scratch.count(root)) {
      track = true;  // element, index or view from a scratch object
    } else if (vecs.count(root)) {
      track = is_ref || addr || kIterCalls.count(last_call) ||
              (kViewCalls.count(last_call) && (is_ref || addr));
    }
    if (!track) return out;
    out.valid = true;
    out.name = t.text(name_tok);
    out.src = std::move(src);
    out.name_tok = name_tok;
    out.line = t.line(name_tok);
    return out;
  }

  void ScanEvents(std::size_t s, std::size_t e) {
    if (cur < 0 || cfg.budget_exceeded || s >= e) return;
    const BindInfo bind = DetectBind(s, e);
    if (bind.alias_only) alias[bind.name] = bind.src;

    for (std::size_t k = s; k < e; ++k) {
      if (!t.IsIdent(k)) continue;
      const std::string& id = t.text(k);
      const bool method = k >= 2 && (t.is(k - 1, ".") || t.is(k - 1, "->"));
      const bool call = t.is(k + 1, "(");

      // Manual lock discipline: single-ident receiver only (x.Lock()).
      if ((id == "Lock" || id == "Unlock") && call && t.is(k + 2, ")") &&
          method && t.IsIdent(k - 2) &&
          !(k >= 3 && (t.is(k - 3, ".") || t.is(k - 3, "->")))) {
        Emit(id == "Lock" ? CfgEventKind::kLock : CfgEventKind::kUnlock,
             t.text(k - 2), "", t.line(k));
        continue;
      }

      // Bounds-check macros grant their argument terms.
      if ((id.starts_with("GOLDILOCKS_CHECK") || id == "assert") && call) {
        const std::size_t pc = MatchGroup(t, k + 1, "(", ")");
        EmitCheckTerms(k + 2, pc - 1, t.line(k));
        continue;
      }

      // static_cast<NarrowType>(...64-bit term...).
      if (id == "static_cast" && t.is(k + 1, "<")) {
        int d = 0;
        std::size_t k2 = k + 1;
        bool narrow = false;
        std::string target;
        for (; k2 < e; ++k2) {
          const std::string& ts = t.text(k2);
          if (ts == "<") ++d;
          else if (ts == ">") { if (--d == 0) { ++k2; break; } }
          else if (ts == ">>") { d -= 2; if (d <= 0) { ++k2; break; } }
          else if (t.IsIdent(k2) && kNarrowTargets.count(ts)) {
            narrow = true;
            target = ts;
          }
        }
        if (narrow && t.is(k2, "(")) {
          const std::size_t pc = MatchGroup(t, k2, "(", ")");
          ForEachTerm(k2 + 1, pc - 1, /*any_ident=*/false,
                      [&](const std::string& term) {
                        Emit(CfgEventKind::kNarrow, term, target, t.line(k));
                      });
        }
        continue;
      }

      if (method && call) {
        const std::string chain = ChainBefore(k - 1);
        if (!chain.empty()) {
          const std::string root = HeadOf(chain);
          if ((id == "Clear" || id == "Reset" || id == "clear") &&
              scratch.count(root)) {
            Emit(CfgEventKind::kInvalidate, chain, id, t.line(k));
          } else if (vecs.count(root) && kVecInvalidating.count(id) &&
                     chain == root) {
            Emit(CfgEventKind::kInvalidate, chain, id, t.line(k));
          }
          if (own.count(root) && kGrowthCalls.count(id)) {
            Emit(CfgEventKind::kAlloc, chain + "." + id, "growth", t.line(k));
          }
          if (counters.count(root) && kCounterSinkMethods.count(id)) {
            Emit(CfgEventKind::kSink, "Counter::" + id, "", t.line(k));
          }
        }
      }

      // Deterministic-state sinks: the Mix* family and named hash sinks.
      if (call && (id.starts_with("Mix") || kSinkCallees.count(id))) {
        Emit(CfgEventKind::kSink, id, "", t.line(k));
        continue;
      }

      // Allocation raw material (GL019 pairs these with loop depth).
      if (id == "new" && (t.IsIdent(k + 1) || t.is(k + 1, "("))) {
        Emit(CfgEventKind::kAlloc, "new", "new", t.line(k));
        continue;
      }
      if (call && !method && kAllocCalls.count(id)) {
        Emit(CfgEventKind::kAlloc, id, "call", t.line(k));
        continue;
      }
      if (call && id == "InducedSubgraph") {
        Emit(CfgEventKind::kAlloc, id, "induced", t.line(k));
        continue;
      }
      // Owning container constructed with contents inside this statement.
      if (kOwningContainers.count(id) && !method) {
        std::size_t k2 = SkipTemplateArgs(t, k + 1);
        if (k2 != k + 1 || !t.is(k + 1, "<")) {
          k2 = SkipDecl(k2, e);
          if (t.IsIdent(k2) && !IsReservedWord(t.text(k2)) &&
              ((t.is(k2 + 1, "(") && !t.is(k2 + 2, ")")) ||
               (t.is(k2 + 1, "{") && !t.is(k2 + 2, "}")))) {
            Emit(CfgEventKind::kAlloc, t.text(k2) + " init", "init",
                 t.line(k));
          }
        }
      }

      // Use of a previously bound ref/index/view (bare occurrences only).
      if (bound.count(id) && !method &&
          !(bind.valid && k == bind.name_tok)) {
        Emit(CfgEventKind::kUse, id, "", t.line(k));
      }
    }

    if (bind.valid) {
      Emit(CfgEventKind::kBind, bind.name, bind.src, bind.line);
      bound.insert(bind.name);
    }
  }

  // Condition span: events, then check-grants if it compares anything.
  void ScanCond(std::size_t s, std::size_t e) {
    ScanEvents(s, e);
    int d = 0;
    for (std::size_t k = s; k < e; ++k) {
      const std::string& ks = t.text(k);
      if (ks == "(" || ks == "[" || ks == "{") ++d;
      else if (ks == ")" || ks == "]" || ks == "}") --d;
      else if (d == 0 && (ks == "<" || ks == "<=" || ks == ">" ||
                          ks == ">=" || ks == "==" || ks == "!=")) {
        EmitCheckTerms(s, e, t.line(s));
        return;
      }
    }
  }

  // --- statement structure -------------------------------------------------

  [[nodiscard]] std::size_t StmtEnd(std::size_t i, std::size_t hi) const {
    int d = 0;
    for (std::size_t k = i; k < hi; ++k) {
      const std::string& s = t.text(k);
      if (s == "(" || s == "[" || s == "{") ++d;
      else if (s == ")" || s == "]" || s == "}") --d;
      else if (s == ";" && d <= 0) return k;
    }
    return hi;
  }

  [[nodiscard]] std::size_t SkipPast(std::size_t i, std::size_t hi,
                                     std::string_view stop) const {
    for (std::size_t k = i; k < hi; ++k) {
      if (t.is(k, stop)) return k + 1;
    }
    return hi;
  }

  void ParseRegion(std::size_t lo, std::size_t hi) {
    std::size_t i = lo;
    while (i < hi && !cfg.budget_exceeded) i = ParseStmt(i, hi);
  }

  std::size_t ParseStmt(std::size_t i, std::size_t hi) {
    if (i >= hi) return hi;
    const std::string& s = t.text(i);
    if (s == ";") return i + 1;
    if (s == "{") {
      const std::size_t close = MatchGroup(t, i, "{", "}");
      ParseRegion(i + 1, std::min(close - 1, hi));
      return std::min(close, hi);
    }
    if (s == "if") return ParseIf(i, hi);
    if (s == "while") return ParseWhile(i, hi);
    if (s == "for") return ParseFor(i, hi);
    if (s == "do") return ParseDo(i, hi);
    if (s == "switch") return ParseSwitch(i, hi);
    if (s == "break" || s == "continue") {
      const std::vector<int>& stack = s == "break" ? break_to : continue_to;
      Edge(cur, stack.empty() ? -1 : stack.back());
      cur = -1;
      return SkipPast(i, hi, ";");
    }
    if (s == "return") {
      const std::size_t e = StmtEnd(i, hi);
      ScanEvents(i + 1, e);
      Edge(cur, -1);
      cur = -1;
      return e < hi ? e + 1 : hi;
    }
    if (s == "case" || s == "default") return SkipPast(i, hi, ":");
    if (s == "else") return ParseStmt(i + 1, hi);  // orphan else: merge arms
    return ParseSimple(i, hi);
  }

  std::size_t ParseIf(std::size_t i, std::size_t hi) {
    std::size_t j = i + 1;
    if (t.is(j, "constexpr")) ++j;
    if (!t.is(j, "(")) return ParseSimple(i, hi);
    const std::size_t close = MatchGroup(t, j, "(", ")");
    ScanCond(j + 1, close - 1);
    const int cond_blk = cur;
    const bool varying = par && CondVaries(j + 1, close - 1);
    const int saved_guard = guard;
    if (varying) guard = t.line(i);

    const int then_entry = NewBlock();
    Edge(cond_blk, then_entry);
    cur = then_entry;
    std::size_t next = ParseStmt(close, hi);
    const int then_exit = cur;

    if (t.is(next, "else")) {
      const int else_entry = NewBlock();
      Edge(cond_blk, else_entry);
      cur = else_entry;
      next = ParseStmt(next + 1, hi);
      const int else_exit = cur;
      guard = saved_guard;
      const int join = NewBlock();
      Edge(then_exit, join);
      Edge(else_exit, join);
      cur = join;
    } else {
      guard = saved_guard;
      const int join = NewBlock();
      Edge(cond_blk, join);
      Edge(then_exit, join);
      cur = join;
    }
    return next;
  }

  std::size_t ParseWhile(std::size_t i, std::size_t hi) {
    const std::size_t j = i + 1;
    if (!t.is(j, "(")) return ParseSimple(i, hi);
    const std::size_t close = MatchGroup(t, j, "(", ")");
    const int head = NewBlock();
    Edge(cur, head);
    cur = head;
    ScanCond(j + 1, close - 1);
    const int exit_blk = NewBlock();
    Edge(head, exit_blk);
    ++depth;
    const int body = NewBlock();
    Edge(head, body);
    continue_to.push_back(head);
    break_to.push_back(exit_blk);
    cur = body;
    const std::size_t next = ParseStmt(close, hi);
    Edge(cur, head);
    continue_to.pop_back();
    break_to.pop_back();
    --depth;
    cur = exit_blk;
    return next;
  }

  std::size_t ParseFor(std::size_t i, std::size_t hi) {
    const std::size_t j = i + 1;
    if (!t.is(j, "(")) return ParseSimple(i, hi);
    const std::size_t close = MatchGroup(t, j, "(", ")");
    // Split the head: range-for has a top-level ':'; classic has two ';'s.
    int d = 0;
    std::size_t colon = 0;
    std::vector<std::size_t> semis;
    for (std::size_t k = j + 1; k + 1 < close; ++k) {
      const std::string& ks = t.text(k);
      if (ks == "(" || ks == "[" || ks == "{") ++d;
      else if (ks == ")" || ks == "]" || ks == "}") --d;
      else if (d == 0 && ks == ";") semis.push_back(k);
      else if (d == 0 && ks == ":" && colon == 0 && semis.empty()) colon = k;
    }
    if (semis.size() >= 2) {
      ScanEvents(j + 1, semis[0]);  // init runs once, pre-loop
      const int head = NewBlock();
      Edge(cur, head);
      cur = head;
      ScanCond(semis[0] + 1, semis[1]);
      const int exit_blk = NewBlock();
      Edge(head, exit_blk);
      ++depth;
      const int body = NewBlock();
      Edge(head, body);
      const int latch = NewBlock();  // the step; `continue` lands here
      continue_to.push_back(latch);
      break_to.push_back(exit_blk);
      cur = body;
      const std::size_t next = ParseStmt(close, hi);
      Edge(cur, latch);
      cur = latch;
      ScanEvents(semis[1] + 1, close - 1);
      Edge(latch, head);
      continue_to.pop_back();
      break_to.pop_back();
      --depth;
      cur = exit_blk;
      return next;
    }
    if (colon != 0) {
      ScanEvents(colon + 1, close - 1);  // range expr evaluates once
      const int head = NewBlock();
      Edge(cur, head);
      cur = head;
      const int exit_blk = NewBlock();
      Edge(head, exit_blk);
      ++depth;
      const int body = NewBlock();
      Edge(head, body);
      continue_to.push_back(head);
      break_to.push_back(exit_blk);
      cur = body;
      const std::size_t next = ParseStmt(close, hi);
      Edge(cur, head);
      continue_to.pop_back();
      break_to.pop_back();
      --depth;
      cur = exit_blk;
      return next;
    }
    // Malformed head: treat the whole group as a condition.
    const int head = NewBlock();
    Edge(cur, head);
    cur = head;
    ScanCond(j + 1, close - 1);
    const int exit_blk = NewBlock();
    Edge(head, exit_blk);
    ++depth;
    const int body = NewBlock();
    Edge(head, body);
    continue_to.push_back(head);
    break_to.push_back(exit_blk);
    cur = body;
    const std::size_t next = ParseStmt(close, hi);
    Edge(cur, head);
    continue_to.pop_back();
    break_to.pop_back();
    --depth;
    cur = exit_blk;
    return next;
  }

  std::size_t ParseDo(std::size_t i, std::size_t hi) {
    const int exit_blk = NewBlock();  // outer loop depth
    ++depth;
    const int body = NewBlock();
    const int latch = NewBlock();  // the while(cond); `continue` lands here
    Edge(cur, body);
    continue_to.push_back(latch);
    break_to.push_back(exit_blk);
    cur = body;
    std::size_t next = ParseStmt(i + 1, hi);
    Edge(cur, latch);
    continue_to.pop_back();
    break_to.pop_back();
    if (t.is(next, "while") && t.is(next + 1, "(")) {
      const std::size_t close = MatchGroup(t, next + 1, "(", ")");
      cur = latch;
      ScanCond(next + 2, close - 1);
      next = t.is(close, ";") ? close + 1 : close;
    } else {
      cur = latch;
    }
    Edge(latch, body);
    Edge(latch, exit_blk);
    --depth;
    cur = exit_blk;
    return next;
  }

  std::size_t ParseSwitch(std::size_t i, std::size_t hi) {
    const std::size_t j = i + 1;
    if (!t.is(j, "(")) return ParseSimple(i, hi);
    const std::size_t close = MatchGroup(t, j, "(", ")");
    ScanEvents(j + 1, close - 1);
    const int head = cur;
    const int exit_blk = NewBlock();
    break_to.push_back(exit_blk);
    if (!t.is(close, "{")) {
      break_to.pop_back();
      Edge(head, exit_blk);
      cur = exit_blk;
      return close;
    }
    const std::size_t bclose = MatchGroup(t, close, "{", "}");
    const std::size_t lim = bclose - 1;
    bool have_default = false;
    cur = -1;  // nothing executes before the first label
    std::size_t k = close + 1;
    while (k < lim && !cfg.budget_exceeded) {
      if (t.is(k, "case") || (t.is(k, "default") && t.is(k + 1, ":"))) {
        have_default = have_default || t.is(k, "default");
        int d = 0;
        std::size_t col = k + 1;
        while (col < lim) {
          const std::string& cs = t.text(col);
          if (cs == "(" || cs == "[" || cs == "{") ++d;
          else if (cs == ")" || cs == "]" || cs == "}") --d;
          else if (d == 0 && cs == ":") break;
          ++col;
        }
        const int prev = cur;
        const int case_blk = NewBlock();
        Edge(head, case_blk);
        Edge(prev, case_blk);  // fallthrough from the previous label
        cur = case_blk;
        k = col + 1;
        continue;
      }
      k = ParseStmt(k, lim);
    }
    Edge(cur, exit_blk);
    if (!have_default) Edge(head, exit_blk);
    break_to.pop_back();
    cur = exit_blk;
    return std::min(bclose, hi);
  }

  std::size_t ParseSimple(std::size_t i, std::size_t hi) {
    const std::size_t e = StmtEnd(i, hi);
    // ParallelFor(..., [captures](args) { body }) — the body is a region of
    // its own, marked in_parallel for GL021.
    for (std::size_t k = i; k < e; ++k) {
      if (!t.IsIdent(k) || !t.text(k).starts_with("ParallelFor") ||
          !t.is(k + 1, "(")) {
        continue;
      }
      const std::size_t pc = MatchGroup(t, k + 1, "(", ")");
      std::size_t lb = 0;
      for (std::size_t m = k + 2; m + 1 < pc; ++m) {
        if (t.is(m, "[")) { lb = m; break; }
      }
      if (lb == 0) break;
      const std::size_t rb = MatchGroup(t, lb, "[", "]");
      std::size_t bo = 0;
      for (std::size_t m = rb; m + 1 < pc; ++m) {
        if (t.is(m, "{")) { bo = m; break; }
        if (t.is(m, ";")) break;
      }
      if (bo == 0) break;
      const std::size_t bc = MatchGroup(t, bo, "{", "}");
      ScanEvents(i, bo);  // receiver, bounds and captures
      const bool saved_par = par;
      par = true;
      const int entry = NewBlock();
      Edge(cur, entry);
      cur = entry;
      ParseRegion(bo + 1, bc - 1);
      par = saved_par;
      const int after = NewBlock();
      Edge(cur, after);
      cur = after;
      ScanEvents(bc, e);  // trailing arguments
      return e < hi ? e + 1 : hi;
    }
    // Statement-level ternary: a diamond with one expression per arm.
    int d = 0;
    std::size_t q = 0;
    std::size_t col = 0;
    for (std::size_t k = i; k < e; ++k) {
      const std::string& ks = t.text(k);
      if (ks == "(" || ks == "[" || ks == "{") ++d;
      else if (ks == ")" || ks == "]" || ks == "}") --d;
      else if (d == 0 && ks == "?" && q == 0) q = k;
      else if (d == 0 && ks == ":" && q != 0 && col == 0) col = k;
    }
    if (q != 0 && col != 0) {
      ScanEvents(i, q);
      const int cond_blk = cur;
      const int arm1 = NewBlock();
      Edge(cond_blk, arm1);
      cur = arm1;
      ScanEvents(q + 1, col);
      const int arm2 = NewBlock();
      Edge(cond_blk, arm2);
      cur = arm2;
      ScanEvents(col + 1, e);
      const int join = NewBlock();
      Edge(arm1, join);
      Edge(arm2, join);
      cur = join;
      return e < hi ? e + 1 : hi;
    }
    ScanEvents(i, e);
    return e < hi ? e + 1 : hi;
  }
};

// ---------------------------------------------------------------------------
// Interpreters.
// ---------------------------------------------------------------------------

constexpr int kMaxPasses = 64;

[[nodiscard]] std::vector<char> Reachable(const FuncCfg& cfg) {
  std::vector<char> seen(cfg.blocks.size(), 0);
  if (cfg.blocks.empty()) return seen;
  std::vector<int> stack = {0};
  seen[0] = 1;
  while (!stack.empty()) {
    const int b = stack.back();
    stack.pop_back();
    for (const int s : cfg.blocks[static_cast<std::size_t>(b)].succ) {
      if (s >= 0 && s < static_cast<int>(cfg.blocks.size()) && !seen[s]) {
        seen[static_cast<std::size_t>(s)] = 1;
        stack.push_back(s);
      }
    }
  }
  return seen;
}

[[nodiscard]] std::vector<std::vector<int>> Preds(const FuncCfg& cfg) {
  std::vector<std::vector<int>> preds(cfg.blocks.size());
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (const int s : cfg.blocks[b].succ) {
      if (s >= 0 && s < static_cast<int>(cfg.blocks.size())) {
        preds[static_cast<std::size_t>(s)].push_back(static_cast<int>(b));
      }
    }
  }
  return preds;
}

void PushFinding(std::vector<Finding>* out, const char* id, const char* name,
                 const std::string& path, int line,
                 const std::string& line_text, std::string message) {
  Finding fd;
  fd.rule_id = id;
  fd.rule_name = name;
  fd.path = path;
  fd.line = line;
  fd.line_text = line_text;
  fd.message = std::move(message);
  out->push_back(std::move(fd));
}

// GL017: forward may-held analysis. State: lock -> first acquire site.
void RunLockLeak(const FileFacts& f, const FuncCfg& cfg,
                 const FunctionDef& fn, const std::set<std::string>& exempt,
                 const std::vector<char>& reach, std::vector<Finding>* out) {
  using State = std::map<std::string, std::pair<int, std::string>>;
  bool any = false;
  // Locks whose earliest manual event in the function is an Unlock entered
  // the function already held (the thread_pool drop-and-retake pattern);
  // exiting while holding them is the contract, not a leak. This also
  // covers GL_REQUIRES spelled only on the header declaration, which fact
  // extraction (definitions only) cannot see.
  std::map<std::string, int> first_lock;
  std::map<std::string, int> first_unlock;
  for (const CfgBlock& b : cfg.blocks) {
    for (const CfgEvent& e : b.events) {
      if (e.kind == CfgEventKind::kLock) {
        any = true;
        const auto it = first_lock.find(e.a);
        if (it == first_lock.end() || e.line < it->second) {
          first_lock[e.a] = e.line;
        }
      } else if (e.kind == CfgEventKind::kUnlock) {
        const auto it = first_unlock.find(e.a);
        if (it == first_unlock.end() || e.line < it->second) {
          first_unlock[e.a] = e.line;
        }
      }
    }
  }
  if (!any) return;
  std::set<std::string> entry_held;
  for (const auto& [lock, line] : first_unlock) {
    const auto it = first_lock.find(lock);
    if (it == first_lock.end() || line < it->second) entry_held.insert(lock);
  }

  const auto preds = Preds(cfg);
  const std::size_t n = cfg.blocks.size();
  std::vector<State> outs(n);
  std::vector<char> has(n, 0);
  const auto transfer = [](State st, const CfgBlock& b) {
    for (const CfgEvent& e : b.events) {
      if (e.kind == CfgEventKind::kLock) {
        st.emplace(e.a, std::make_pair(e.line, e.line_text));
      } else if (e.kind == CfgEventKind::kUnlock) {
        st.erase(e.a);
      }
    }
    return st;
  };
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    for (std::size_t b = 0; b < n; ++b) {
      if (!reach[b]) continue;
      State in;
      for (const int p : preds[b]) {
        if (!has[static_cast<std::size_t>(p)]) continue;
        for (const auto& [lock, site] : outs[static_cast<std::size_t>(p)]) {
          const auto it = in.find(lock);
          if (it == in.end() || site.first < it->second.first) {
            in[lock] = site;  // union join, earliest acquire wins
          }
        }
      }
      State next = transfer(std::move(in), cfg.blocks[b]);
      if (!has[b] || next != outs[b]) {
        outs[b] = std::move(next);
        has[b] = 1;
        changed = true;
      }
    }
    if (!changed) break;
  }

  State at_exit;
  for (std::size_t b = 0; b < n; ++b) {
    if (!reach[b] || !has[b]) continue;
    const auto& succ = cfg.blocks[b].succ;
    if (std::find(succ.begin(), succ.end(), -1) == succ.end() &&
        !succ.empty()) {
      continue;
    }
    for (const auto& [lock, site] : outs[b]) {
      const auto it = at_exit.find(lock);
      if (it == at_exit.end() || site.first < it->second.first) {
        at_exit[lock] = site;
      }
    }
  }
  for (const auto& [lock, site] : at_exit) {
    if (exempt.count(lock)) continue;      // GL_REQUIRES / GL_ACQUIRE contract
    if (entry_held.count(lock)) continue;  // unlock-first: held at entry
    PushFinding(out, "GL017", "lock-path-leak", f.path, site.first,
                site.second,
                "manual '" + lock + ".Lock()' in '" + fn.name +
                    "' can reach function exit still holding the lock (some "
                    "path skips the Unlock); use gl::MutexLock or cover "
                    "every exit path");
  }
}

// GL018: forward may-poison analysis over ref/index binds.
void RunUseAfterInval(const FileFacts& f, const FuncCfg& cfg,
                      const std::vector<char>& reach,
                      std::vector<Finding>* out) {
  struct Poison {
    std::string chain;
    std::string call;
    int line = 0;
    bool operator==(const Poison&) const = default;
  };
  struct State {
    std::map<std::string, std::string> bound;   // var -> source chain
    std::map<std::string, Poison> poison;       // var -> invalidation site
    bool operator==(const State&) const = default;
  };
  bool any = false;
  for (const CfgBlock& b : cfg.blocks) {
    for (const CfgEvent& e : b.events) {
      if (e.kind == CfgEventKind::kBind) any = true;
    }
  }
  if (!any) return;

  const auto preds = Preds(cfg);
  const std::size_t n = cfg.blocks.size();
  std::vector<State> outs(n);
  std::vector<char> has(n, 0);
  const auto join_into = [](State* into, const State& from) {
    for (const auto& [v, src] : from.bound) {
      const auto it = into->bound.find(v);
      if (it == into->bound.end() || src < it->second) into->bound[v] = src;
    }
    for (const auto& [v, p] : from.poison) {
      const auto it = into->poison.find(v);
      if (it == into->poison.end() || p.line < it->second.line) {
        into->poison[v] = p;
      }
    }
  };
  const auto transfer = [](State st, const CfgBlock& b) {
    for (const CfgEvent& e : b.events) {
      if (e.kind == CfgEventKind::kBind) {
        st.bound[e.a] = e.b;
        st.poison.erase(e.a);
      } else if (e.kind == CfgEventKind::kInvalidate) {
        for (const auto& [v, src] : st.bound) {
          if (src == e.a || src.starts_with(e.a + ".")) {
            st.poison.emplace(v, Poison{e.a, e.b, e.line});
          }
        }
      }
    }
    return st;
  };
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    for (std::size_t b = 0; b < n; ++b) {
      if (!reach[b]) continue;
      State in;
      for (const int p : preds[b]) {
        if (has[static_cast<std::size_t>(p)]) {
          join_into(&in, outs[static_cast<std::size_t>(p)]);
        }
      }
      State next = transfer(std::move(in), cfg.blocks[b]);
      if (!has[b] || !(next == outs[b])) {
        outs[b] = std::move(next);
        has[b] = 1;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Report pass: walk each block's events against its in-state.
  for (std::size_t b = 0; b < n; ++b) {
    if (!reach[b] || !has[b]) continue;
    State st;
    for (const int p : preds[b]) {
      if (has[static_cast<std::size_t>(p)]) {
        join_into(&st, outs[static_cast<std::size_t>(p)]);
      }
    }
    for (const CfgEvent& e : cfg.blocks[b].events) {
      if (e.kind == CfgEventKind::kBind) {
        st.bound[e.a] = e.b;
        st.poison.erase(e.a);
      } else if (e.kind == CfgEventKind::kInvalidate) {
        for (const auto& [v, src] : st.bound) {
          if (src == e.a || src.starts_with(e.a + ".")) {
            st.poison.emplace(v, Poison{e.a, e.b, e.line});
          }
        }
      } else if (e.kind == CfgEventKind::kUse) {
        const auto it = st.poison.find(e.a);
        if (it == st.poison.end()) continue;
        PushFinding(out, "GL018", "use-after-invalidation", f.path, e.line,
                    e.line_text,
                    "'" + e.a + "' was obtained from '" + it->second.chain +
                        "' but '" + it->second.chain + "." +
                        it->second.call + "()' on line " +
                        std::to_string(it->second.line) +
                        " may invalidate it before this use; re-acquire the "
                        "reference after the invalidation");
      }
    }
  }
}

// GL019: allocation events in blocks with loop_depth > 0 of hot functions.
void RunLoopAlloc(const FileFacts& f, const FuncCfg& cfg, const FuncRef& ref,
                  const SymbolIndex& index, const HotReach& hot,
                  const std::vector<char>& reach, std::vector<Finding>* out) {
  if (!hot.Reached(ref)) return;
  std::string via;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (!reach[b] || cfg.blocks[b].loop_depth <= 0) continue;
    for (const CfgEvent& e : cfg.blocks[b].events) {
      if (e.kind != CfgEventKind::kAlloc) continue;
      if (via.empty()) via = hot.Chain(index, ref);
      PushFinding(out, "GL019", "loop-carried-allocation", f.path, e.line,
                  e.line_text,
                  "allocation ('" + e.a +
                      "') inside a loop on the hot path: " + via +
                      "; the steady state must not allocate per iteration — "
                      "hoist it into scratch or a pre-sized buffer");
    }
  }
}

// GL020: must-checked analysis (intersection at joins, events in order
// within a block, so a check in the same block dominates later casts).
void RunNarrowing(const FileFacts& f, const FuncCfg& cfg,
                  const std::vector<char>& reach, std::vector<Finding>* out) {
  bool any = false;
  for (const CfgBlock& b : cfg.blocks) {
    for (const CfgEvent& e : b.events) {
      if (e.kind == CfgEventKind::kNarrow) any = true;
    }
  }
  if (!any) return;

  const auto preds = Preds(cfg);
  const std::size_t n = cfg.blocks.size();
  std::vector<std::set<std::string>> outs(n);
  std::vector<char> has(n, 0);
  const auto in_of = [&](std::size_t b) {
    std::set<std::string> in;
    bool first = true;
    for (const int p : preds[b]) {
      if (!has[static_cast<std::size_t>(p)]) continue;
      const auto& po = outs[static_cast<std::size_t>(p)];
      if (first) {
        in = po;
        first = false;
      } else {
        std::set<std::string> merged;
        std::set_intersection(in.begin(), in.end(), po.begin(), po.end(),
                              std::inserter(merged, merged.begin()));
        in = std::move(merged);
      }
    }
    return std::make_pair(std::move(in), first);
  };
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    for (std::size_t b = 0; b < n; ++b) {
      if (!reach[b]) continue;
      auto [in, undefined] = in_of(b);
      if (undefined && b != 0) continue;  // optimistic: wait for a pred
      for (const CfgEvent& e : cfg.blocks[b].events) {
        if (e.kind == CfgEventKind::kCheck) in.insert(e.a);
      }
      if (!has[b] || in != outs[b]) {
        outs[b] = std::move(in);
        has[b] = 1;
        changed = true;
      }
    }
    if (!changed) break;
  }

  for (std::size_t b = 0; b < n; ++b) {
    if (!reach[b] || !has[b]) continue;
    auto [st, undefined] = in_of(b);
    if (undefined && b != 0) continue;
    for (const CfgEvent& e : cfg.blocks[b].events) {
      if (e.kind == CfgEventKind::kCheck) {
        st.insert(e.a);
      } else if (e.kind == CfgEventKind::kNarrow && !st.count(e.a)) {
        PushFinding(out, "GL020", "unguarded-narrowing", f.path, e.line,
                    e.line_text,
                    "64-bit value '" + e.a + "' narrowed to '" + e.b +
                        "' with no dominating bounds check on this path; "
                        "GOLDILOCKS_CHECK it against the id range before "
                        "the cast");
      }
    }
  }
}

// GL021: deterministic-state sink inside a thread-varying branch of a
// ParallelFor body. Purely structural — the builder marked the blocks.
void RunDivergent(const FileFacts& f, const FuncCfg& cfg,
                  const FunctionDef& fn, const std::vector<char>& reach,
                  std::vector<Finding>* out) {
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const CfgBlock& blk = cfg.blocks[b];
    if (!reach[b] || !blk.in_parallel || blk.varying_guard == 0) continue;
    for (const CfgEvent& e : blk.events) {
      if (e.kind != CfgEventKind::kSink) continue;
      PushFinding(out, "GL021", "divergent-parallel-update", f.path, e.line,
                  e.line_text,
                  "deterministic-state write ('" + e.a +
                      "') is guarded by a thread-varying branch (line " +
                      std::to_string(blk.varying_guard) +
                      ") inside a ParallelFor body in '" + fn.name +
                      "'; decide on deterministic inputs or record per-index "
                      "and fold canonically");
    }
  }
}

}  // namespace

void BuildFunctionCfg(const std::vector<const Token*>& toks,
                      const std::vector<std::string>& lines, int func,
                      std::size_t sig_begin, std::size_t body_begin,
                      std::size_t body_end, FileFacts* out) {
  const TView view{toks};
  Builder b{view, lines};
  b.cfg.func = func;
  b.cur = b.NewBlock();  // entry block
  b.CollectDecls(sig_begin, body_begin, /*is_sig=*/true);
  b.CollectDecls(body_begin, body_end, /*is_sig=*/false);
  b.ParseRegion(body_begin, body_end);
  b.Edge(b.cur, -1);  // fallthrough off the end is a return
  out->cfgs.push_back(std::move(b.cfg));
}

std::string HotReach::Chain(const SymbolIndex& index, const FuncRef& r) const {
  std::vector<std::string> chain;
  FuncRef walk = r;
  while (walk.file >= 0 && chain.size() < 32) {
    chain.push_back(index.Display(walk));
    const auto it = parent.find(walk);
    if (it == parent.end()) break;
    walk = it->second;
  }
  std::string via;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!via.empty()) via += " -> ";
    via += *it;
  }
  return via;
}

HotReach ComputeHotReach(const std::vector<FileFacts>& files,
                         const SymbolIndex& index,
                         const std::vector<std::string>& roots) {
  HotReach hr;
  std::vector<FuncRef> queue;
  const auto seed = [&](const FuncRef& r) {
    if (hr.parent.emplace(r, FuncRef{}).second) queue.push_back(r);
  };
  for (const std::string& spec : roots) {
    if (spec.ends_with("::")) {
      const std::vector<FuncRef>* refs =
          index.ByClass(spec.substr(0, spec.size() - 2));
      if (refs != nullptr) {
        for (const FuncRef& r : *refs) seed(r);
      }
    } else {
      const std::vector<FuncRef>* refs = index.ByName(spec);
      if (refs != nullptr) {
        for (const FuncRef& r : *refs) seed(r);
      }
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const FuncRef cur = queue[head];
    const FileFacts& f = files[static_cast<std::size_t>(cur.file)];
    for (const CallSite& c : f.calls) {
      if (c.func != cur.func) continue;
      const std::vector<FuncRef>* targets = index.Resolve(cur, c.callee);
      if (targets == nullptr) continue;
      for (const FuncRef& callee : *targets) {
        if (hr.parent.emplace(callee, cur).second) queue.push_back(callee);
      }
    }
  }
  return hr;
}

void AnalyzeCfg(const std::vector<FileFacts>& files, const SymbolIndex& index,
                const HotReach& hot, std::vector<Finding>* out) {
  for (int fi = 0; fi < static_cast<int>(files.size()); ++fi) {
    const FileFacts& f = files[static_cast<std::size_t>(fi)];
    std::map<int, std::set<std::string>> exempt;  // func -> contract locks
    for (const LockAnno& q : f.lock_annos) exempt[q.func].insert(q.lock);
    for (const FuncCfg& cfg : f.cfgs) {
      if (cfg.func < 0 ||
          cfg.func >= static_cast<int>(f.functions.size()) ||
          cfg.budget_exceeded || cfg.blocks.empty()) {
        continue;
      }
      const FunctionDef& fn = f.functions[static_cast<std::size_t>(cfg.func)];
      const std::vector<char> reach = Reachable(cfg);
      if (!kLockInfraClasses.count(fn.class_name)) {
        static const std::set<std::string> kNone;
        const auto it = exempt.find(cfg.func);
        RunLockLeak(f, cfg, fn, it != exempt.end() ? it->second : kNone,
                    reach, out);
      }
      RunUseAfterInval(f, cfg, reach, out);
      RunLoopAlloc(f, cfg, FuncRef{fi, cfg.func}, index, hot, reach, out);
      RunNarrowing(f, cfg, reach, out);
      RunDivergent(f, cfg, fn, reach, out);
    }
  }
}

}  // namespace gl::analyze
