// Flow-insensitive, call-graph-wide dataflow for gl_analyze (DESIGN.md §13).
//
// The per-file facts (facts.h) carry value flows as *terms*; this layer
// joins them into a whole-program term graph and runs a monotone worklist
// to a fixpoint. Three rules read the result:
//
//   GL014 unit-confusion     a dimension lattice (unknown < cores, bytes,
//                            bits_per_sec, watts, ms, epochs, count,
//                            dimensionless < conflict) is seeded from
//                            GL_UNITS(...) declarations, int-family types
//                            ("count") and the Resource field names, then
//                            propagated through assignments, call-argument
//                            binding and returns. Mixed-dimension '+'/'-'/
//                            comparisons, dimension-changing assignments
//                            and mismatched argument bindings are flagged.
//   GL015 lock-order-cycle   per-function acquired locksets (MutexLock
//                            RAII sites, .Lock() calls, GL_ACQUIRE /
//                            GL_REQUIRES annotations) fold over the call
//                            graph into a global lock-order graph; any
//                            cycle is a potential deadlock, reported with
//                            both acquisition chains.
//   GL016 determinism-taint  nondeterminism sources (clock and rand
//                            calls, unordered/pointer-keyed iteration)
//                            propagate interprocedurally; any tainted term
//                            reaching a state-hash or deterministic-counter
//                            sink is flagged with its origin.
//
// Everything is name-based and over-approximate, like the PR 6 call graph:
// the engine can prove "no tracked nondeterminism reaches a digest", never
// the reverse. All orderings are deterministic (sorted node and edge maps),
// so output is byte-stable across runs and platforms.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "analyze/facts.h"

namespace gl::analyze {

struct Finding;  // analysis.h

// Global function id: (file index, function index within that file).
struct FuncRef {
  int file = -1;
  int func = -1;
  bool operator==(const FuncRef& o) const {
    return file == o.file && func == o.func;
  }
};
struct FuncRefHash {
  std::size_t operator()(const FuncRef& r) const {
    return static_cast<std::size_t>(r.file) * 1000003u +
           static_cast<std::size_t>(r.func);
  }
};

// Whole-program symbol index over every function definition seen. Call
// edges resolve the way C++ name lookup leans: a method of the caller's
// own class shadows everything, then file-local definitions, then the
// global name set.
class SymbolIndex {
 public:
  explicit SymbolIndex(const std::vector<FileFacts>& files);

  [[nodiscard]] const FunctionDef& Def(const FuncRef& r) const;
  [[nodiscard]] std::string Display(const FuncRef& r) const;
  [[nodiscard]] const std::vector<FuncRef>* ByName(
      const std::string& name) const;
  [[nodiscard]] const std::vector<FuncRef>* ByClass(
      const std::string& cls) const;
  [[nodiscard]] const std::vector<FuncRef>* Resolve(
      const FuncRef& caller, const std::string& callee) const;

  [[nodiscard]] const std::vector<FileFacts>& files() const { return *files_; }

 private:
  const std::vector<FileFacts>* files_;
  std::unordered_map<std::string, std::vector<FuncRef>> by_name_;
  std::unordered_map<std::string, std::vector<FuncRef>> by_class_;
  std::unordered_map<std::string, std::vector<FuncRef>> by_class_method_;
  std::unordered_map<std::string, std::vector<FuncRef>> by_file_name_;
};

// The GL014 dimension lattice.
enum class Dim {
  kUnknown = 0,   // bottom: no information yet
  kCores,
  kBytes,
  kBitsPerSec,
  kWatts,
  kMs,
  kEpochs,
  kCount,
  kDimensionless,
  kConflict,      // top: joined with contradictory evidence
};

// "watts" -> kWatts; unrecognized strings -> kUnknown.
[[nodiscard]] Dim DimFromString(const std::string& s);
[[nodiscard]] const char* DimName(Dim d);

// Per-file ⊤/unknown accounting for --units-report / --units-strict: how
// many tracked '+'/'-'/comparison operands resolved to a concrete
// dimension, and how many stayed unknown (or hit conflict).
struct UnitsReport {
  struct FileEntry {
    std::string path;
    int resolved_ops = 0;
    int unresolved_ops = 0;
    std::vector<std::string> notes;  // "path:line: term 'x' unresolved"
  };
  std::vector<FileEntry> files;  // sorted by path
};

// Runs the dataflow fixpoint and appends GL014/GL015/GL016 findings.
// `units` may be null when the caller does not need the report.
void AnalyzeDataflow(const std::vector<FileFacts>& files,
                     const SymbolIndex& index, std::vector<Finding>* out,
                     UnitsReport* units);

}  // namespace gl::analyze
