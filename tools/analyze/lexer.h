// C++ token lexer for gl_analyze (DESIGN.md §12).
//
// gl_lint (GL001–GL009) works line-by-line with regexes and a
// comment/string blanking pre-pass; that is fundamentally blind to anything
// spanning statements, and its literal handling has known gaps (raw
// strings, digit separators, multi-line directives). gl_analyze starts one
// level lower: this lexer turns a translation unit into a flat token stream
// with correct handling of
//
//   * line and block comments (kept as tokens — suppression comments and
//     fixture expectations live in them),
//   * string literals incl. encoding prefixes (u8/u/U/L) and raw strings
//     R"delim(...)delim" of any delimiter,
//   * character literals and digit separators (1'000'000 is one number, not
//     a number and an unterminated char),
//   * preprocessor directives incl. backslash continuations (one token, so
//     a macro body can never be mistaken for declarations),
//   * maximal-munch punctuation (>>=, <=>, ->, ::, ...).
//
// Everything downstream (tools/analyze/facts.h) consumes tokens, never raw
// text, which is what eliminates the regex checker's class of
// inside-a-string-literal false positives.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gl::analyze {

enum class TokKind {
  kIdent,         // identifiers and keywords (callers test text for keywords)
  kNumber,        // pp-number: integers, floats, separators, suffixes
  kString,        // any string literal, prefixes and raw form included
  kChar,          // character literal
  kPunct,         // operators and punctuation, maximal munch
  kComment,       // // or /* */; text keeps the delimiters
  kPreprocessor,  // whole directive line(s), continuations folded in
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

// Lexes a whole file. Never fails: unterminated literals and stray bytes
// degenerate into best-effort tokens rather than errors, because an
// analyzer must keep going on code the compiler would reject.
[[nodiscard]] std::vector<Token> Lex(std::string_view source);

// True for C++ keywords that can never be a function or variable name the
// indexer should track (control flow, storage, casts...).
[[nodiscard]] bool IsReservedWord(std::string_view ident);

}  // namespace gl::analyze
