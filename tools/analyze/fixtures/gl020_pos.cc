// gl-analyze-expect: GL020
//
// 64-to-32-bit vertex-id narrowing with no dominating bounds check: a
// straight-line cast of a size_t parameter, and a cast inside a branch
// whose condition checks nothing about the value.

#include <cstdint>

namespace fixture {

using VertexIndex = std::int32_t;

VertexIndex Place(std::size_t p) {
  return static_cast<VertexIndex>(p);  // GL020: p never bounds-checked
}

VertexIndex FirstHalf(std::size_t n, bool low) {
  if (low) {
    return static_cast<VertexIndex>(n / 2);  // GL020: unchecked on this path
  }
  return 0;
}

}  // namespace fixture
