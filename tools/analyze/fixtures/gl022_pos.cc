// gl-analyze-expect: GL022
//
// Span coverage: Refine is reachable from the Bisect hot root and its body
// spans well past the 40-line threshold, but it never opens a TraceSpan —
// in a profile every millisecond it burns is attributed to Bisect, so the
// critical path cannot name the phase that actually carried the time.

namespace fixture {

int Refine(int x) {
  int acc = x;
  acc += 1;
  acc += 2;
  acc += 3;
  acc += 4;
  acc += 5;
  acc += 6;
  acc += 7;
  acc += 8;
  acc += 9;
  acc += 10;
  acc += 11;
  acc += 12;
  acc += 13;
  acc += 14;
  acc += 15;
  acc += 16;
  acc += 17;
  acc += 18;
  acc += 19;
  acc += 20;
  acc += 21;
  acc += 22;
  acc += 23;
  acc += 24;
  acc += 25;
  acc += 26;
  acc += 27;
  acc += 28;
  acc += 29;
  acc += 30;
  acc += 31;
  acc += 32;
  acc += 33;
  acc += 34;
  acc += 35;
  acc += 36;
  acc += 37;
  acc += 38;
  acc += 39;
  acc += 40;
  acc += 41;
  acc += 42;
  return acc;
}

int Bisect(int x) { return Refine(x); }

}  // namespace fixture
