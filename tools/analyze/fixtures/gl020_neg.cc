// gl-analyze-expect: clean
//
// Narrowings GL020 must accept: a GOLDILOCKS_CHECK before the cast, a
// branch condition that compares the value (the cast is dominated by the
// comparison), and a .size() chain checked under the same spelling.

#include <cstdint>
#include <vector>

namespace fixture {

using VertexIndex = std::int32_t;

VertexIndex Place(std::size_t p, std::size_t hi) {
  GOLDILOCKS_CHECK(p < hi);
  return static_cast<VertexIndex>(p);
}

VertexIndex Guarded(std::size_t n) {
  if (n < 100000) {
    return static_cast<VertexIndex>(n);  // dominated by the comparison
  }
  return 0;
}

VertexIndex Count(const std::vector<int>& vals) {
  GOLDILOCKS_CHECK(vals.size() < 1000);
  return static_cast<VertexIndex>(vals.size());
}

}  // namespace fixture
