// gl-analyze-expect: clean
//
// The state hash only sees deterministic data (a container count); the
// clock reading exists but flows to a plain log helper, not a hash or
// deterministic-counter sink.

#include <vector>

namespace fixture {

class StateHash {
 public:
  void MixU64(unsigned long long v);
};

void LogWallTime(unsigned long long t);

unsigned long long TickStamp() {
  const unsigned long long t = clock();
  return t;
}

void Snapshot(StateHash& h, const std::vector<double>& loads) {
  const unsigned long long placed = loads.size();
  h.MixU64(placed);            // count data: deterministic
  LogWallTime(TickStamp());    // tainted, but a log is not a sink
}

}  // namespace fixture
