// gl-analyze-expect: GL013
//
// Two dead suppressions: one names a rule that has nothing to suppress on
// the covered lines (the RNG use it once excused is gone), one names a rule
// that does not exist at all.

#include <vector>

namespace fixture {

int Sum(const std::vector<int>& xs) {
  int total = 0;
  // gl-lint: allow(adhoc-rng)
  for (const int x : xs) total += x;
  return total;
}

// gl-lint: allow(no-such-rule)
int Twice(int v) { return 2 * v; }

}  // namespace fixture
