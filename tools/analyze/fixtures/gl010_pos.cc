// gl-analyze-expect: GL010
//
// Allocation reachable from a hot root through a two-hop call chain:
// Bisect -> RefineLevel -> BuildOrder, where BuildOrder constructs a local
// vector with contents and grows it. Also exercises the direct forms (new,
// make_unique, InducedSubgraph) inside a hot root itself.

#include <memory>
#include <vector>

namespace fixture {

struct Graph {
  int n = 0;
};

std::vector<int> BuildOrder(int n) {
  std::vector<int> order(n, 0);  // kLocalInit: constructed with contents
  order.push_back(n);            // kLocalGrowth on a local container
  return order;
}

void RefineLevel(const Graph& g) { BuildOrder(g.n); }

int Bisect(const Graph& g) {
  RefineLevel(g);                      // chain into the allocating helper
  auto scratch = std::make_unique<Graph>();  // kAllocCall in the root itself
  int* raw = new int(g.n);                   // kNew in the root itself
  const int v = *raw;
  delete raw;
  return v + scratch->n;
}

}  // namespace fixture
