// gl-analyze-expect: clean
//
// Mutex-owning classes where every member is accounted for: annotated,
// const, atomic, a sync primitive, or a borrowed (reference) mutex. Also a
// mutex-free class whose members need no annotations at all.

#include <atomic>

#define GL_GUARDED_BY(x)

namespace fixture {

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class CondVar {};

class Registry {
 public:
  void Set(int v);

 private:
  Mutex mu_;
  CondVar cv_;                              // sync primitive: exempt
  int guarded_ GL_GUARDED_BY(mu_) = 0;      // annotated
  const int limit_ = 16;                    // immutable: exempt
  std::atomic<int> hits_{0};                // atomics synchronize themselves
};

// Holds a borrowed mutex by reference (the MutexLock shape): this class
// does not *own* the mutex, so its members are not audited.
class Lock {
 public:
  explicit Lock(Mutex& mu);

 private:
  Mutex& mu_;
  bool engaged_ = false;
};

class PlainData {
 private:
  int a_ = 0;
  double b_ = 0.0;
};

}  // namespace fixture
