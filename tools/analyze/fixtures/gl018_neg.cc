// gl-analyze-expect: clean
//
// The invalidation patterns GL018 must tolerate: re-binding the reference
// after the Clear() on the same path, and a plain container alias (no
// element ref escapes, so clearing and refilling through it is fine).

#include <vector>

namespace fixture {

struct PartitionScratch {
  std::vector<int> gains;
  std::vector<int> level_chain;
  void Clear();
};

void Reuse(PartitionScratch& scratch, bool flush) {
  int& slot = scratch.gains[0];
  slot = 1;
  if (flush) {
    scratch.Clear();
    slot = scratch.gains[0];  // re-bound after the invalidation
  }
  slot = 2;  // valid on both paths
}

void Levels(PartitionScratch& s) {
  auto& levels = s.level_chain;  // container alias, not an element ref
  levels.clear();
  levels.push_back(1);
}

}  // namespace fixture
