// gl-analyze-expect: clean
//
// Loop allocations GL019 must not flag: the same per-iteration vector in a
// function no hot root reaches, and a hot-path loop that only writes into a
// caller-provided buffer (allocation-free steady state).

#include <vector>

namespace fixture {

void BuildReport(int rounds) {  // not reachable from any hot root
  for (int r = 0; r < rounds; ++r) {
    std::vector<int> tmp(4, 0);
    tmp.push_back(r);
  }
}

void Bisect(std::vector<int>& scratch_buf, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    scratch_buf[r] = r;  // writes only; nothing allocates in the loop
  }
}

}  // namespace fixture
