// gl-analyze-expect: clean
//
// Span coverage satisfied: the same over-threshold hot-path body as
// gl022_pos.cc, but it opens a TraceSpan — profiles can attribute its time
// directly, so GL022 stays quiet. The unreached twin below it is long and
// uninstrumented, which is also fine: only hot-path functions owe a span.

namespace obs {
struct TraceSpan {
  explicit TraceSpan(const char* name);
};
}  // namespace obs

namespace fixture {

int Refine(int x) {
  obs::TraceSpan span("fixture.refine");
  int acc = x;
  acc += 1;
  acc += 2;
  acc += 3;
  acc += 4;
  acc += 5;
  acc += 6;
  acc += 7;
  acc += 8;
  acc += 9;
  acc += 10;
  acc += 11;
  acc += 12;
  acc += 13;
  acc += 14;
  acc += 15;
  acc += 16;
  acc += 17;
  acc += 18;
  acc += 19;
  acc += 20;
  acc += 21;
  acc += 22;
  acc += 23;
  acc += 24;
  acc += 25;
  acc += 26;
  acc += 27;
  acc += 28;
  acc += 29;
  acc += 30;
  acc += 31;
  acc += 32;
  acc += 33;
  acc += 34;
  acc += 35;
  acc += 36;
  acc += 37;
  acc += 38;
  acc += 39;
  acc += 40;
  acc += 41;
  acc += 42;
  return acc;
}

int Bisect(int x) { return Refine(x); }

int ColdHelper(int x) {
  int acc = x;
  acc += 1;
  acc += 2;
  acc += 3;
  acc += 4;
  acc += 5;
  acc += 6;
  acc += 7;
  acc += 8;
  acc += 9;
  acc += 10;
  acc += 11;
  acc += 12;
  acc += 13;
  acc += 14;
  acc += 15;
  acc += 16;
  acc += 17;
  acc += 18;
  acc += 19;
  acc += 20;
  acc += 21;
  acc += 22;
  acc += 23;
  acc += 24;
  acc += 25;
  acc += 26;
  acc += 27;
  acc += 28;
  acc += 29;
  acc += 30;
  acc += 31;
  acc += 32;
  acc += 33;
  acc += 34;
  acc += 35;
  acc += 36;
  acc += 37;
  acc += 38;
  acc += 39;
  acc += 40;
  acc += 41;
  acc += 42;
  return acc;
}

}  // namespace fixture
