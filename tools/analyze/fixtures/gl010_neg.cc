// gl-analyze-expect: clean
//
// The same call shape as gl010_pos.cc, but every allocation lives outside
// the hot set: the allocating helper is only called from Setup(), which no
// hot root reaches, and the hot root itself only reuses preallocated
// scratch (bare declarations without contents are tracked but never
// flagged, and member containers are exempt — the receiver owns them).

#include <vector>

namespace fixture {

struct Graph {
  int n = 0;
};

struct Scratch {
  std::vector<int> order;
  void Reset(int n) {
    order.assign(n, 0);  // member growth: receiver is not a local
  }
};

std::vector<int> BuildOrder(int n) {
  std::vector<int> order(n, 0);  // allocation, but not reachable from a root
  return order;
}

void Setup(const Graph& g) { BuildOrder(g.n); }

int Bisect(const Graph& g, Scratch& scratch) {
  scratch.Reset(g.n);
  std::vector<int> tmp;  // bare local declaration: no contents, never grown
  int acc = 0;
  for (int i = 0; i < g.n; ++i) acc += i;
  return acc + static_cast<int>(tmp.size());
}

}  // namespace fixture
