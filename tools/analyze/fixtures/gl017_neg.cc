// gl-analyze-expect: clean
//
// The three shapes GL017 must not flag: a manual lock balanced on every
// path (including the early return), RAII MutexLock, and a GL_REQUIRES
// function that drops and re-takes the caller's lock (it exits holding the
// lock, but that is its contract).

#include <cstdint>

namespace fixture {

struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex* mu);
};

void Backoff();

class Collector {
 public:
  bool Flush(bool ready) {
    mu_.Lock();
    if (!ready) {
      mu_.Unlock();  // balanced: the early return releases first
      return false;
    }
    count_ = 0;
    mu_.Unlock();
    return true;
  }

  int Read() {
    MutexLock lock(&mu_);  // RAII: exempt by construction
    return count_;
  }

  void WaitForWork() GL_REQUIRES(mu_) {
    mu_.Unlock();  // release while blocked
    Backoff();
    mu_.Lock();  // contract: exit holding the lock, as at entry
  }

 private:
  Mutex mu_;
  int count_ GL_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
