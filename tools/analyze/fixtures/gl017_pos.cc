// gl-analyze-expect: GL017
//
// Manual lock with a leaking path: the early return inside Flush exits the
// function while mu_ is still held. The may-held fixpoint unions the two
// paths at the exit, so the leak is reported even though the fallthrough
// path unlocks correctly.

#include <cstdint>

namespace fixture {

struct Mutex {
  void Lock();
  void Unlock();
};

class Collector {
 public:
  bool Flush(bool ready) {
    mu_.Lock();
    if (!ready) {
      return false;  // leaks mu_: no Unlock on this path
    }
    count_ = 0;
    mu_.Unlock();
    return true;
  }

 private:
  Mutex mu_;
  int count_ GL_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
