// gl-analyze-expect: clean
//
// The deterministic counterparts: workers write disjoint per-index slots
// (folded in canonical order afterwards, on one thread), lambda-local
// accumulators never escape a worker, and sequential accumulation outside
// any ParallelFor body is inherently ordered.

namespace fixture {

struct Pool {
  template <typename F>
  void ParallelFor(int n, F fn);
};

double SumWeights(Pool& pool, int n, const double* w, double* partial) {
  pool.ParallelFor(n, [&](int i) {
    double local = 0.0;   // lambda-local: confined to one worker
    local += w[i];
    partial[i] = local;   // per-index slot, no cross-worker order
  });
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += partial[i];  // canonical order
  return total;
}

}  // namespace fixture
