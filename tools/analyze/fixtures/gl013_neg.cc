// gl-analyze-expect: clean
//
// Load-bearing suppressions: each allow() sits on a line where the named
// rule genuinely fires, so deleting the comment would trip gl_lint. Both
// comment placements (line above, same line) are exercised.

#include <unordered_map>

namespace fixture {

double Total(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  // gl-lint: allow(unordered-iter)
  for (const auto& [key, w] : weights) total += w;
  return total;
}

int Roll() {
  return rand();  // gl-lint: allow(adhoc-rng)
}

}  // namespace fixture
