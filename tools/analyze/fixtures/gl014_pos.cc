// gl-analyze-expect: GL014
//
// Resource arithmetic that mixes dimensions: a watts member added to an ms
// member, and an ms local bound to a watts parameter through the call
// graph. The annotation macro is declared locally (the real one lives in
// src/common/resource.h).

#define GL_UNITS(dim)

namespace fixture {

double Headroom(double budget_w GL_UNITS(watts)) {
  return 300.0 - budget_w;
}

class PowerPlan {
 public:
  double Overshoot() const {
    return idle_w_ + epoch_ms_;  // <-- GL014: watts + ms
  }
  double Slack() const {
    double window GL_UNITS(ms) = epoch_ms_;
    return Headroom(window);  // <-- GL014: ms bound to watts parameter
  }

 private:
  double idle_w_ GL_UNITS(watts) = 90.0;
  double epoch_ms_ GL_UNITS(ms) = 5000.0;
};

}  // namespace fixture
