// gl-analyze-expect: GL010,GL019
//
// Per-iteration allocation in a hot-path loop: RefineLevel is reachable
// from the Bisect root and constructs + grows a vector inside its refinement
// loop. GL010 already flags the allocation sites (hot function); GL019
// sharpens it to "inside a loop" — the steady state pays this every round.

#include <vector>

namespace fixture {

struct Level {
  std::vector<int> order;
};

void RefineLevel(Level& lvl, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    std::vector<int> moved(8, 0);  // GL019: fresh buffer every iteration
    moved.push_back(r);            // GL019: growth inside the loop
    lvl.order.push_back(moved.back());
  }
}

void Bisect(Level& lvl) { RefineLevel(lvl, 4); }

}  // namespace fixture
