// gl-analyze-expect: clean
//
// Both functions take the two member mutexes in the same order, so the
// lock-order graph has a single edge Pool::mu_ -> Pool::nu_ and no cycle.

#define GL_GUARDED_BY(x)

namespace fixture {

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class Pool {
 public:
  void Drain() {
    MutexLock outer(&mu_);
    MutexLock inner(&nu_);
    ++drained_;
  }
  void Refill() {
    MutexLock outer(&mu_);
    MutexLock inner(&nu_);  // same order: no inversion
    --drained_;
  }

 private:
  Mutex mu_;
  Mutex nu_;
  int drained_ GL_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
