// gl-analyze-expect: GL011
//
// A class owning a mutex with a mutable member that carries no
// GL_GUARDED_BY annotation. The analyzer only sees tokens, so the
// annotation macros are declared locally (the real ones live in
// src/common/thread_annotations.h).

#define GL_GUARDED_BY(x)

namespace fixture {

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class Registry {
 public:
  void Set(int v);

 private:
  Mutex mu_;
  int guarded_ GL_GUARDED_BY(mu_) = 0;
  int unguarded_ = 0;  // <-- GL011: shared mutable state, no annotation
};

}  // namespace fixture
