// gl-analyze-expect: clean
//
// The parallel shapes GL021 must accept: a state-hash write in the
// straight-line body (deterministic inputs, no divergent guard), the same
// write under a deterministic branch, and a thread-varying branch that
// guards only non-deterministic-state work.

#include <cstdint>

namespace fixture {

struct Pool {
  template <typename F>
  void ParallelFor(int lo, int hi, F f);
};

std::uint64_t MixU64(std::uint64_t h, std::uint64_t v);
std::int64_t ElapsedMs();
void Backoff(int i);

void AuditClean(Pool& pool, std::uint64_t& hash, int n) {
  pool.ParallelFor(0, n, [&](int i) {
    hash = MixU64(hash, i);  // unguarded: runs for every index
    if (i % 2 == 0) {
      hash = MixU64(hash, i);  // deterministic guard: same set every run
    }
  });
}

void Throttle(Pool& pool, int n) {
  pool.ParallelFor(0, n, [&](int i) {
    if (ElapsedMs() > 5) {
      Backoff(i);  // varying branch, but nothing deterministic written
    }
  });
}

}  // namespace fixture
