// gl-analyze-expect: clean
//
// Dimension-consistent arithmetic, plus a GL_UNITS(any) helper that absorbs
// both watts and ms arguments without a conflict: `any` erases the incoming
// dimension (the value stays tracked for taint) instead of joining to ⊤.

#define GL_UNITS(dim)

namespace fixture {

double FiniteOrZero(double v GL_UNITS(any)) {
  return v < 0.0 ? 0.0 : v;
}

class PowerPlan {
 public:
  double Budget() const {
    return idle_w_ + dynamic_w_;  // watts + watts: consistent
  }
  double Audit() const {
    const double w GL_UNITS(watts) = FiniteOrZero(idle_w_);
    const double t GL_UNITS(ms) = FiniteOrZero(epoch_ms_);
    return w < 1.0 ? t : 0.0;
  }

 private:
  double idle_w_ GL_UNITS(watts) = 90.0;
  double dynamic_w_ GL_UNITS(watts) = 160.0;
  double epoch_ms_ GL_UNITS(ms) = 5000.0;
};

}  // namespace fixture
