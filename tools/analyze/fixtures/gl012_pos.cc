// gl-analyze-expect: GL012
//
// Float accumulation into a captured enclosing-scope local inside a
// ParallelFor lambda: the per-worker interleaving decides the fold order,
// so the sum is schedule-dependent (DESIGN.md §8 forbids this).

namespace fixture {

struct Pool {
  template <typename F>
  void ParallelFor(int n, F fn);
};

double SumWeights(Pool& pool, int n, const double* w) {
  double total = 0.0;
  pool.ParallelFor(n, [&](int i) {
    total += w[i];  // <-- GL012: captured float fold, order not canonical
  });
  return total;
}

}  // namespace fixture
