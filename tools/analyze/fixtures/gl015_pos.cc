// gl-analyze-expect: GL015
//
// Two functions acquire the same two member mutexes in opposite order. The
// global lock-order graph gets Pool::mu_ -> Pool::nu_ (from Drain) and
// Pool::nu_ -> Pool::mu_ (from Refill), closing a cycle: two threads
// running Drain and Refill concurrently can deadlock.

#define GL_GUARDED_BY(x)

namespace fixture {

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class Pool {
 public:
  void Drain() {
    MutexLock outer(&mu_);
    MutexLock inner(&nu_);  // holds mu_, acquires nu_
    ++drained_;
  }
  void Refill() {
    MutexLock outer(&nu_);
    MutexLock inner(&mu_);  // <-- GL015: holds nu_, acquires mu_ (inverted)
    --drained_;
  }

 private:
  Mutex mu_;
  Mutex nu_;
  int drained_ GL_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
