// gl-analyze-expect: GL016
//
// A raw clock reading laundered through a helper still reaches the epoch
// state hash: taint survives the call-return edge of the call graph, so
// hashing the "stamp" makes EpochStateHash differ between identical runs.

namespace fixture {

class StateHash {
 public:
  void MixU64(unsigned long long v);
};

unsigned long long TickStamp() {
  const unsigned long long t = clock();  // nondeterminism source
  return t;
}

void Snapshot(StateHash& h) {
  const unsigned long long stamp = TickStamp();
  h.MixU64(stamp);  // <-- GL016: wall-clock data in the state hash
}

}  // namespace fixture
