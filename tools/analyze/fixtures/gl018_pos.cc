// gl-analyze-expect: GL018
//
// References invalidated on one path and used after the join: a scratch
// element reference crossing a Clear(), and a vector element reference
// crossing a push_back. Both uses are only wrong on the branch-taken path,
// which is exactly what the flow-insensitive rules cannot see.

#include <vector>

namespace fixture {

struct PartitionScratch {
  std::vector<int> gains;
  void Clear();
};

void Consume(PartitionScratch& scratch, bool flush) {
  int& slot = scratch.gains[0];
  if (flush) {
    scratch.Clear();  // invalidates every ref derived from scratch
  }
  slot = 3;  // GL018: dangling when flush was taken
}

int Grow(std::vector<int>& vals, bool add) {
  int& first = vals.front();
  if (add) {
    vals.push_back(7);  // may reallocate
  }
  return first;  // GL018: dangling when add was taken
}

}  // namespace fixture
