// gl-analyze-expect: GL021
//
// A ParallelFor body where a timing-dependent branch guards a state-hash
// write: whether MixU64 runs at all now depends on worker speed, so two
// identical runs can hash different event sets. Flow-insensitive GL016
// cannot flag this — the *data* mixed in is deterministic; only the branch
// is not.

#include <cstdint>

namespace fixture {

struct Pool {
  template <typename F>
  void ParallelFor(int lo, int hi, F f);
};

std::uint64_t MixU64(std::uint64_t h, std::uint64_t v);
std::int64_t ElapsedMs();

void Audit(Pool& pool, std::uint64_t& hash, int n) {
  pool.ParallelFor(0, n, [&](int i) {
    if (ElapsedMs() > 5) {       // thread-varying condition
      hash = MixU64(hash, i);    // GL021: hash input gated on wall time
    }
  });
}

}  // namespace fixture
