#include "analyze/facts.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "analyze/cfg.h"

namespace gl::analyze {
namespace {

// Structural view: comments and preprocessor directives removed, but the
// original token (with its line) still reachable.
struct SView {
  std::vector<const Token*> toks;

  [[nodiscard]] std::size_t size() const { return toks.size(); }
  [[nodiscard]] const std::string& text(std::size_t i) const {
    return i < toks.size() ? toks[i]->text : kEmpty;
  }
  [[nodiscard]] TokKind kind(std::size_t i) const {
    return i < toks.size() ? toks[i]->kind : TokKind::kPunct;
  }
  [[nodiscard]] int line(std::size_t i) const {
    return i < toks.size() ? toks[i]->line : 0;
  }
  [[nodiscard]] bool is(std::size_t i, std::string_view s) const {
    return i < toks.size() && toks[i]->text == s;
  }
  [[nodiscard]] bool IsIdent(std::size_t i) const {
    return kind(i) == TokKind::kIdent;
  }

  static const std::string kEmpty;
};
const std::string SView::kEmpty;

// Index just past the token matching the opener at `i` ("{...}" or "(...)").
std::size_t MatchGroup(const SView& t, std::size_t i, std::string_view open,
                       std::string_view close) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t.is(k, open)) ++depth;
    if (t.is(k, close) && --depth == 0) return k + 1;
  }
  return t.size();
}

// If t[i] opens a template argument list, returns the index just past its
// closing '>'; otherwise returns i. Heuristic: bails (no template) when a
// ';' or brace interrupts, or after 400 tokens.
std::size_t SkipTemplateArgs(const SView& t, std::size_t i) {
  if (!t.is(i, "<")) return i;
  int depth = 0;
  for (std::size_t k = i; k < t.size() && k < i + 400; ++k) {
    const std::string& s = t.text(k);
    if (s == "<") ++depth;
    else if (s == ">") --depth;
    else if (s == ">>") depth -= 2;
    else if (s == "(") { k = MatchGroup(t, k, "(", ")") - 1; continue; }
    else if (s == ";" || s == "{" || s == "}") return i;
    else if (s == "&&" || s == "||" || s == "=" || s == "==" || s == "+" ||
             s == "-") {
      return i;  // expression operators never appear in template args here
    }
    if (depth <= 0) return k + 1;
  }
  return i;
}

const std::unordered_set<std::string_view> kOwningContainers = {
    "vector", "deque", "list", "string", "basic_string", "map", "set",
    "multimap", "multiset", "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset", "queue", "stack",
    "priority_queue"};

const std::unordered_set<std::string_view> kAllocCalls = {
    "make_unique", "make_shared", "malloc", "calloc", "realloc", "strdup",
    "aligned_alloc"};

const std::unordered_set<std::string_view> kGrowthCalls = {
    "push_back", "emplace_back", "emplace", "insert", "append", "push_front",
    "resize", "reserve", "assign"};

const std::unordered_set<std::string_view> kMutexTypes = {
    "Mutex", "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex"};

const std::unordered_set<std::string_view> kCondVarTypes = {
    "CondVar", "condition_variable", "condition_variable_any"};

const std::unordered_set<std::string_view> kBodyIntroducers = {
    "const", "noexcept", "override", "final", "mutable", "try"};

// Int-family type names: locals declared with these default to the "count"
// dimension, so loop counters and sizes never pollute the units lattice.
const std::unordered_set<std::string_view> kIntTypes = {
    "int", "unsigned", "long", "short", "size_t", "ssize_t", "ptrdiff_t",
    "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
    "uint32_t", "uint64_t"};

// Containers whose iteration order is nondeterministic (GL016 seeds).
const std::unordered_set<std::string_view> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

// Operators that terminate an additive flow chunk; a chunk containing one
// of these is untrackable ("?:").
const std::unordered_set<std::string_view> kFlowBreakers = {
    "<<", ">>", "&", "|", "^", "%", "&&", "||"};

// ---------------------------------------------------------------------------
// Extraction context.
// ---------------------------------------------------------------------------
struct Extractor {
  const SView& t;
  const std::vector<std::string>& lines;  // 0-based source lines
  FileFacts& out;

  // Set by WalkStructure for the function whose body is being scanned.
  std::unordered_set<std::string> unordered_params;
  int body_end_line = 0;

  [[nodiscard]] std::string LineText(int line) const {
    if (line < 1 || line > static_cast<int>(lines.size())) return "";
    std::string s = lines[static_cast<std::size_t>(line - 1)];
    const auto b = s.find_first_not_of(" \t");
    const auto e = s.find_last_not_of(" \t\r");
    if (b == std::string::npos) return "";
    return s.substr(b, e - b + 1);
  }

  // --- function bodies -----------------------------------------------------

  void ScanBody(int fidx, std::size_t begin, std::size_t end) {
    // Local owning containers (name -> declaration token index).
    std::unordered_set<std::string> locals;
    CollectLocalContainers(fidx, begin, end, &locals);

    for (std::size_t k = begin; k < end; ++k) {
      // Call sites + allocator calls + new expressions.
      if (t.IsIdent(k)) {
        const std::string& s = t.text(k);
        if (s == "new") {
          out.allocs.push_back({fidx, AllocKind::kNew, "new", t.line(k),
                                LineText(t.line(k))});
          continue;
        }
        if (s == "InducedSubgraph") {
          out.allocs.push_back({fidx, AllocKind::kInducedSubgraph,
                                "InducedSubgraph", t.line(k),
                                LineText(t.line(k))});
          continue;
        }
        const bool called = t.is(k + 1, "(") ||
                            (t.is(k + 1, "<") &&
                             SkipTemplateArgs(t, k + 1) != k + 1 &&
                             t.is(SkipTemplateArgs(t, k + 1), "("));
        if (kAllocCalls.count(s) && called) {
          out.allocs.push_back({fidx, AllocKind::kAllocCall, s, t.line(k),
                                LineText(t.line(k))});
          continue;
        }
        if (t.is(k + 1, "(") && !IsReservedWord(s) && !t.is(k - 1, "new") &&
            !s.starts_with("GL_")) {
          out.calls.push_back({fidx, s, t.line(k)});
        }
        // A TraceSpan declaration — `obs::TraceSpan span(...)` — tokenizes
        // as type + ident + "(", so the generic call pattern above records
        // the *variable* name. Record the type as the callee too: it is the
        // span-coverage fact GL022 keys on.
        if (s == "TraceSpan" && t.IsIdent(k + 1) && t.is(k + 2, "(")) {
          out.calls.push_back({fidx, s, t.line(k)});
        }
        // Growth call on a local container: NAME . grow ( ...
        if (t.is(k + 1, ".") && t.IsIdent(k + 2) && t.is(k + 3, "(") &&
            kGrowthCalls.count(t.text(k + 2)) && locals.count(s) &&
            !(k > begin && (t.is(k - 1, ".") || t.is(k - 1, "->") ||
                            t.is(k - 1, ")") || t.is(k - 1, "]")))) {
          out.allocs.push_back({fidx, AllocKind::kLocalGrowth,
                                s + "." + t.text(k + 2), t.line(k),
                                LineText(t.line(k))});
        }
      }
    }
    ScanParallelForFolds(fidx, begin, end);
    ScanStatements(fidx, begin, end);
  }

  // Declarations of local owning containers; records kLocalInit sites for
  // the ones constructed with contents.
  void CollectLocalContainers(int fidx, std::size_t begin, std::size_t end,
                              std::unordered_set<std::string>* locals) {
    std::size_t stmt_start = begin;
    for (std::size_t k = begin; k < end; ++k) {
      const std::string& s = t.text(k);
      if (s == ";" || s == "{" || s == "}") {
        stmt_start = k + 1;
        continue;
      }
      if (!t.IsIdent(k) || !kOwningContainers.count(s)) continue;
      // Reject member/qualified accesses (x.vector nonsense) but allow a
      // leading std::.
      if (t.is(k - 1, ".") || t.is(k - 1, "->")) continue;
      if (t.is(k - 1, "::") && !t.is(k - 2, "std")) continue;
      // `static` locals allocate once per process, not per call.
      bool is_static = false;
      for (std::size_t b = stmt_start; b < k; ++b) {
        if (t.is(b, "static")) is_static = true;
      }
      std::size_t p = SkipTemplateArgs(t, k + 1);
      if (p == k + 1 && t.is(k + 1, "<")) continue;  // unparsable args
      if (t.is(p, "&") || t.is(p, "*")) continue;    // reference / pointer
      if (!t.IsIdent(p) || IsReservedWord(t.text(p))) continue;
      const std::string name = t.text(p);
      const std::string& nxt = t.text(p + 1);
      bool init = false;
      if (nxt == "=") {
        init = true;
      } else if (nxt == "{") {
        init = !t.is(p + 2, "}");
      } else if (nxt == "(") {
        if (t.is(p + 2, ")")) continue;  // function declaration
        init = true;
      } else if (nxt != ";" && nxt != ",") {
        continue;
      }
      if (is_static) continue;
      locals->insert(name);
      if (init) {
        out.allocs.push_back({fidx, AllocKind::kLocalInit,
                              t.text(k) + " " + name, t.line(p),
                              LineText(t.line(p))});
      }
    }
  }

  // GL012: float accumulation into captured enclosing-scope locals inside
  // ParallelFor lambda bodies.
  void ScanParallelForFolds(int fidx, std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      if (!t.IsIdent(k) ||
          (t.text(k) != "ParallelFor" && t.text(k) != "ParallelForWithRng") ||
          !t.is(k + 1, "(")) {
        continue;
      }
      const std::size_t args_end = MatchGroup(t, k + 1, "(", ")");
      // Find the lambda: first '[' inside the argument list.
      std::size_t lb = k + 2;
      while (lb < args_end && !t.is(lb, "[")) ++lb;
      if (lb >= args_end) continue;
      std::size_t p = MatchGroup(t, lb, "[", "]");
      if (t.is(p, "(")) p = MatchGroup(t, p, "(", ")");
      while (p < args_end && !t.is(p, "{") && p < lb + 64) ++p;  // specifiers
      if (!t.is(p, "{")) continue;
      const std::size_t body_end = MatchGroup(t, p, "{", "}");

      // double/float locals declared outside vs inside the lambda body.
      std::unordered_set<std::string> outer;
      std::unordered_set<std::string> inner;
      for (std::size_t d = begin; d < end; ++d) {
        if (!t.IsIdent(d) ||
            (t.text(d) != "double" && t.text(d) != "float") ||
            !t.IsIdent(d + 1) || IsReservedWord(t.text(d + 1))) {
          continue;
        }
        const std::string& after = t.text(d + 2);
        if (after != "=" && after != ";" && after != "{" && after != ",") {
          continue;
        }
        (d > p && d < body_end ? inner : outer).insert(t.text(d + 1));
      }

      for (std::size_t q = p; q < body_end; ++q) {
        const std::string& op = t.text(q);
        if (op != "+=" && op != "-=" && op != "*=" && op != "/=") continue;
        if (!t.IsIdent(q - 1)) continue;  // excludes arr[i] += (prev is ']')
        if (t.is(q - 2, ".") || t.is(q - 2, "->") || t.is(q - 2, "]") ||
            t.is(q - 2, ")")) {
          continue;  // member/element target, not a captured scalar
        }
        const std::string& var = t.text(q - 1);
        if (outer.count(var) && !inner.count(var)) {
          const std::string fn =
              fidx >= 0 ? out.functions[static_cast<std::size_t>(fidx)].name
                        : std::string("?");
          out.float_folds.push_back(
              {var, fn, t.line(q), LineText(t.line(q))});
        }
      }
      k = args_end - 1;
    }
  }

  // --- dataflow term extraction (GL014/GL015/GL016) ------------------------
  //
  // Statements are the token runs between ';', '{' and '}'. Each statement
  // is scanned for declared dimensions, value flows, unit-relevant binary
  // operators, call arguments, returns, taint seeds and lock sites. Terms
  // use the encoding documented in facts.h.

  // Parses one operand starting at `k`, bounded by `hi`. Returns the term
  // and the index just past the operand ("" when `k` starts no operand).
  [[nodiscard]] std::pair<std::string, std::size_t> OperandFwd(
      std::size_t k, std::size_t hi) const {
    // Unary prefixes are dimension-transparent (or irrelevant to joins).
    while (k < hi && (t.is(k, "-") || t.is(k, "+") || t.is(k, "!") ||
                      t.is(k, "~") || t.is(k, "*") || t.is(k, "&"))) {
      ++k;
    }
    if (k >= hi) return {"", k};
    if (t.kind(k) == TokKind::kNumber) return {"k:", k + 1};
    if (t.kind(k) == TokKind::kString || t.kind(k) == TokKind::kChar) {
      return {"?:", k + 1};
    }
    if (t.is(k, "(")) {  // parenthesized subexpression: single-term or opaque
      const std::size_t close = MatchGroup(t, k, "(", ")");
      std::vector<std::string> inner;
      FlowTerms(k + 1, close - 1, &inner);
      return {inner.size() == 1 ? inner[0] : std::string("?:"), close};
    }
    if (!t.IsIdent(k)) return {"", k};
    const std::string& first = t.text(k);
    if (first == "static_cast" || first == "const_cast" ||
        first == "reinterpret_cast" || first == "dynamic_cast") {
      // Casts are dimension-transparent: recurse into the cast operand.
      std::size_t p = SkipTemplateArgs(t, k + 1);
      if (!t.is(p, "(")) return {"?:", p};
      const std::size_t close = MatchGroup(t, p, "(", ")");
      std::vector<std::string> inner;
      FlowTerms(p + 1, close - 1, &inner);
      return {inner.size() == 1 ? inner[0] : std::string("?:"), close};
    }
    if (first == "sizeof") {
      std::size_t p = k + 1;
      if (t.is(p, "(")) p = MatchGroup(t, p, "(", ")");
      return {"k:", p};
    }
    if (IsReservedWord(first) && first != "this") return {"", k};

    std::string cur = first;
    bool member = false;
    std::size_t pos = k + 1;
    {  // template arguments on the head name (make_foo<T>(...))
      const std::size_t p = SkipTemplateArgs(t, pos);
      if (p != pos && t.is(p, "(")) pos = p;
    }
    while (pos < hi) {
      if (t.is(pos, "(")) {  // call: the term is the callee's return value
        const std::size_t close = MatchGroup(t, pos, "(", ")");
        if (t.is(close, ".") || t.is(close, "->")) {
          if (!t.IsIdent(close + 1)) return {"?:", close};
          cur = t.text(close + 1);
          member = true;
          pos = close + 2;
          continue;
        }
        // The call site's line keys the term: two calls of the same callee
        // in one function must not share a dataflow node (max() over counts
        // would pollute max() over watts). pos-1 is the callee ident, the
        // same token CallSite and CallArg records take their line from.
        return {"c:" + cur + "@" + std::to_string(t.line(pos - 1)), close};
      }
      if (t.is(pos, "[")) {  // subscripts are transparent (element of base)
        pos = MatchGroup(t, pos, "[", "]");
        continue;
      }
      if (t.is(pos, ".") || t.is(pos, "->")) {
        if (!t.IsIdent(pos + 1)) return {"?:", pos};
        cur = t.text(pos + 1);
        member = true;
        pos += 2;
        continue;
      }
      if (t.is(pos, "::")) {  // qualification, not member access
        if (!t.IsIdent(pos + 1)) return {"?:", pos};
        cur = t.text(pos + 1);
        pos += 2;
        continue;
      }
      break;
    }
    if (cur == "this") return {"?:", pos};
    return {(member ? "m:" : "v:") + cur, pos};
  }

  // Finds the start of the operand that ends just before `k`, then parses
  // it forward. Returns "" when nothing parseable precedes `k`.
  [[nodiscard]] std::string OperandBack(std::size_t lo, std::size_t k) const {
    std::size_t j = k;
    while (true) {
      if (j <= lo) return "";
      std::size_t p = j - 1;
      if (t.is(p, ")") || t.is(p, "]")) {
        const std::string_view open = t.is(p, ")") ? "(" : "[";
        const std::string_view close = t.is(p, ")") ? ")" : "]";
        int depth = 0;
        while (true) {
          if (t.is(p, close)) ++depth;
          if (t.is(p, open) && --depth == 0) break;
          if (p == lo) return "";
          --p;
        }
        // A call-ish group: keep the callee name (and its receiver chain).
        if (p > lo && t.IsIdent(p - 1)) {
          if (t.text(p - 1).starts_with("GL_")) {
            // Annotation macro — not part of the operand; keep walking.
            j = p - 1;
            continue;
          }
          j = p - 1;
        } else {
          j = p;
          break;  // plain parenthesized group: operand starts at '('
        }
      } else if (t.IsIdent(p) || t.kind(p) == TokKind::kNumber) {
        j = p;
      } else {
        return "";
      }
      // Extend left over member/qualifier chains: a.b / a->b / a::b.
      if (j > lo + 1 &&
          (t.is(j - 1, ".") || t.is(j - 1, "->") || t.is(j - 1, "::")) &&
          t.IsIdent(j - 2)) {
        j -= 2;
        continue;
      }
      break;
    }
    return OperandFwd(j, k).first;
  }

  // Splits [lo,hi) at top-level additive/ternary boundaries and appends one
  // term per trackable chunk. A chunk with '*' or '/' flows its single
  // non-literal factor (x * 0.5 keeps x's dimension); two tracked factors
  // make a genuinely new dimension, which the scanner cannot represent.
  // The right operand of a binary operator: the first multiplicative chunk
  // after the operator, via FlowTerms. A product of two tracked factors has
  // no single dimension, so `s += cpu / ref.cpu` must NOT flow cpu's
  // dimension into s — the chunk is untracked ("?:") instead. The region is
  // cut at a top-level '?' (the operand is just the ternary condition) and
  // at the enclosing group's close.
  [[nodiscard]] std::string RhsChunk(std::size_t from, std::size_t e) const {
    std::size_t stop = e;
    int depth = 0;
    for (std::size_t k = from; k < e; ++k) {
      if (t.is(k, "(") || t.is(k, "[") || t.is(k, "{")) ++depth;
      if (t.is(k, ")") || t.is(k, "]") || t.is(k, "}")) --depth;
      if (depth < 0 || (depth == 0 && t.is(k, "?"))) {
        stop = k;
        break;
      }
    }
    std::vector<std::string> terms;
    FlowTerms(from, stop, &terms);
    return terms.empty() ? std::string() : terms[0];
  }

  void FlowTerms(std::size_t lo, std::size_t hi,
                 std::vector<std::string>* terms) const {
    std::size_t chunk = lo;
    int depth = 0;
    const auto flush = [&](std::size_t end) {
      if (chunk >= end) return;
      std::vector<std::size_t> factor_starts = {chunk};
      bool opaque = false;
      int d2 = 0;
      for (std::size_t k = chunk; k < end; ++k) {
        if (t.is(k, "(") || t.is(k, "[") || t.is(k, "{")) ++d2;
        if (t.is(k, ")") || t.is(k, "]") || t.is(k, "}")) --d2;
        if (d2 != 0) continue;
        const std::string& s = t.text(k);
        if (s == "*" || s == "/") {
          if (k > chunk && (t.IsIdent(k - 1) ||
                            t.kind(k - 1) == TokKind::kNumber ||
                            t.is(k - 1, ")") || t.is(k - 1, "]"))) {
            factor_starts.push_back(k + 1);  // binary, not deref
          }
        } else if (kFlowBreakers.count(s) || s == "<" || s == ">" ||
                   s == "<=" || s == ">=" || s == "==" || s == "!=" ||
                   s == "=") {
          opaque = true;
        }
      }
      if (opaque) {
        terms->push_back("?:");
      } else if (factor_starts.size() == 1) {
        const std::string term = OperandFwd(chunk, end).first;
        if (!term.empty()) terms->push_back(term);
      } else {
        std::string tracked;
        int non_literal = 0;
        for (std::size_t fs : factor_starts) {
          const std::string f = OperandFwd(fs, end).first;
          if (f.empty() || f == "?:") {
            non_literal = 2;  // untrackable factor: give up
            break;
          }
          if (f != "k:") {
            ++non_literal;
            tracked = f;
          }
        }
        terms->push_back(non_literal == 1 ? tracked : std::string("?:"));
      }
      chunk = end;
    };
    for (std::size_t k = lo; k < hi; ++k) {
      if (t.is(k, "(") || t.is(k, "[") || t.is(k, "{")) ++depth;
      if (t.is(k, ")") || t.is(k, "]") || t.is(k, "}")) --depth;
      if (depth != 0) continue;
      const std::string& s = t.text(k);
      const bool binary_pm =
          (s == "+" || s == "-") && k > lo &&
          ((t.IsIdent(k - 1) && !IsReservedWord(t.text(k - 1))) ||
           t.kind(k - 1) == TokKind::kNumber || t.is(k - 1, ")") ||
           t.is(k - 1, "]"));
      if (binary_pm || s == "?" || s == ":" || s == ",") {
        flush(k);
        chunk = k + 1;
        if (s == "?") {
          // Everything before '?' is the condition, not a flowing value.
          terms->clear();
        }
      }
    }
    flush(hi);
  }

  // The per-statement scanner. `begin`/`end` span the function body.
  void ScanStatements(int fidx, std::size_t begin, std::size_t end) {
    // Prepass: locals with nondeterministic iteration order, and
    // deterministic-counter locals (GL016 receivers).
    std::unordered_set<std::string> unordered_locals = unordered_params;
    std::unordered_set<std::string> ptrkey_locals;
    std::unordered_set<std::string> counter_locals;
    for (std::size_t k = begin; k < end; ++k) {
      if (!t.IsIdent(k)) continue;
      const std::string& s = t.text(k);
      if (kUnorderedContainers.count(s) ||
          ((s == "map" || s == "set" || s == "multimap" || s == "multiset") &&
           t.is(k + 1, "<"))) {
        const std::size_t p = SkipTemplateArgs(t, k + 1);
        if (p != k + 1 && t.IsIdent(p) && !IsReservedWord(t.text(p))) {
          if (kUnorderedContainers.count(s)) {
            unordered_locals.insert(t.text(p));
          } else {
            for (std::size_t q = k + 2; q + 1 < p; ++q) {
              if (t.is(q, "*")) {  // pointer-keyed ordered container
                ptrkey_locals.insert(t.text(p));
                break;
              }
              if (t.is(q, ",")) break;  // only the key type matters
            }
          }
        }
      }
      if (s == "Counter" && t.is(k + 1, "&") && t.IsIdent(k + 2)) {
        for (std::size_t q = k; q < end && !t.is(q, ";"); ++q) {
          if (t.is(q, "kDeterministic")) {
            counter_locals.insert(t.text(k + 2));
            break;
          }
        }
      }
    }

    // Lock scope tracking: innermost open brace inside the body.
    std::vector<std::size_t> braces;

    std::size_t stmt = begin;
    for (std::size_t k = begin; k <= end; ++k) {
      const bool boundary =
          k == end || t.is(k, ";") || t.is(k, "{") || t.is(k, "}");
      if (t.is(k, "{") && k < end) braces.push_back(k);
      if (t.is(k, "}") && !braces.empty()) braces.pop_back();
      if (!boundary) continue;
      ScanOneStatement(fidx, stmt, k, braces, unordered_locals, ptrkey_locals,
                       counter_locals);
      stmt = k + 1;
    }
  }

  [[nodiscard]] int ScopeEndLine(const std::vector<std::size_t>& braces) const {
    if (braces.empty()) return body_end_line;
    const std::size_t close = MatchGroup(t, braces.back(), "{", "}");
    return close > braces.back() + 1 ? t.line(close - 1) : body_end_line;
  }

  void ScanOneStatement(int fidx, std::size_t s, std::size_t e,
                        const std::vector<std::size_t>& braces,
                        const std::unordered_set<std::string>& unordered_locals,
                        const std::unordered_set<std::string>& ptrkey_locals,
                        const std::unordered_set<std::string>& counter_locals) {
    if (s >= e) return;

    // GL_UNITS on a local declaration: `double x GL_UNITS(watts) = ...`.
    for (std::size_t k = s; k < e; ++k) {
      if (t.is(k, "GL_UNITS") && t.is(k + 1, "(") && t.IsIdent(k + 2) &&
          t.IsIdent(k - 1)) {
        out.unit_decls.push_back(
            {fidx, t.text(k - 1), t.text(k + 2), t.line(k)});
      }
    }

    // Int-family declarations default to "count".
    for (std::size_t k = s; k + 1 < e; ++k) {
      if (t.IsIdent(k) && kIntTypes.count(t.text(k)) && t.IsIdent(k + 1) &&
          !IsReservedWord(t.text(k + 1)) && !kIntTypes.count(t.text(k + 1))) {
        const std::string& nxt = t.text(k + 2);
        if (nxt == "=" || nxt == ";" || nxt == "," || nxt == ")" ||
            nxt == ":" || k + 2 >= e) {
          out.unit_decls.push_back({fidx, t.text(k + 1), "count", t.line(k)});
        }
      }
    }

    // Range-for over a nondeterministically ordered container.
    if (t.is(s, "for") && t.is(s + 1, "(")) {
      const std::size_t close = std::min(MatchGroup(t, s + 1, "(", ")"), e);
      for (std::size_t k = s + 2; k < close; ++k) {
        if (!t.is(k, ":") || !t.IsIdent(k - 1)) continue;
        const std::string loop_var = t.text(k - 1);
        std::string container;
        for (std::size_t q = k + 1; q < close; ++q) {
          if (t.IsIdent(q) && !IsReservedWord(t.text(q))) {
            container = t.text(q);
          }
        }
        const bool unordered = unordered_locals.count(container) > 0;
        if (unordered || ptrkey_locals.count(container) > 0) {
          out.taint_seeds.push_back(
              {fidx, "v:" + loop_var,
               unordered ? "unordered-iter" : "pointer-key", t.line(k),
               LineText(t.line(k))});
        }
        break;
      }
    }

    // Lock sites.
    for (std::size_t k = s; k < e; ++k) {
      if (t.is(k, "MutexLock") && t.IsIdent(k + 1) && t.is(k + 2, "(")) {
        const std::size_t close = MatchGroup(t, k + 2, "(", ")");
        std::string lock;
        for (std::size_t q = k + 3; q < close; ++q) {
          if (t.IsIdent(q) && t.text(q) != "this") lock = t.text(q);
        }
        if (!lock.empty()) {
          out.lock_acquires.push_back({fidx, lock, t.line(k),
                                       ScopeEndLine(braces),
                                       LineText(t.line(k))});
        }
      }
      if (t.is(k, "Lock") && t.is(k + 1, "(") && t.is(k + 2, ")") &&
          (t.is(k - 1, ".") || t.is(k - 1, "->")) && t.IsIdent(k - 2)) {
        const std::string base = t.text(k - 2);
        int scope_end = body_end_line;
        for (std::size_t q = k + 3; q < t.size(); ++q) {
          if (t.is(q, "Unlock") && (t.is(q - 1, ".") || t.is(q - 1, "->")) &&
              t.is(q - 2, base)) {
            scope_end = t.line(q);
            break;
          }
        }
        out.lock_acquires.push_back(
            {fidx, base, t.line(k), scope_end, LineText(t.line(k))});
      }
    }

    // Binary operators (any nesting depth); template args are skipped.
    static const std::unordered_set<std::string_view> kUnitOps = {
        "+", "-", "+=", "-=", "<", "<=", ">", ">=", "==", "!="};
    for (std::size_t k = s; k < e; ++k) {
      if (t.IsIdent(k) && t.is(k + 1, "<")) {
        const std::size_t p = SkipTemplateArgs(t, k + 1);
        if (p != k + 1) {
          k = p - 1;  // template argument list, not comparisons
          continue;
        }
      }
      const std::string& op = t.text(k);
      if (t.kind(k) != TokKind::kPunct || !kUnitOps.count(op)) continue;
      if (op == "+" || op == "-") {
        const bool binary =
            k > s && ((t.IsIdent(k - 1) && !IsReservedWord(t.text(k - 1))) ||
                      t.kind(k - 1) == TokKind::kNumber || t.is(k - 1, ")") ||
                      t.is(k - 1, "]"));
        if (!binary) continue;
      }
      const std::string lhs = OperandBack(s, k);
      const std::string rhs = RhsChunk(k + 1, e);
      if (lhs.empty() || rhs.empty()) continue;
      if ((lhs == "?:" || lhs == "k:") && (rhs == "?:" || rhs == "k:")) {
        continue;  // nothing trackable on either side
      }
      out.binops.push_back(
          {fidx, op, lhs, rhs, t.line(k), LineText(t.line(k))});
      if (op == "+=" || op == "-=") {  // also a flow into the target
        if (rhs != "?:" && rhs != "k:" && lhs != "?:" && lhs != "k:") {
          out.assigns.push_back(
              {fidx, lhs, rhs, t.line(k), LineText(t.line(k))});
        }
      }
    }

    // Assignment flow: first top-level '='.
    {
      int depth = 0;
      for (std::size_t k = s; k < e; ++k) {
        if (t.is(k, "(") || t.is(k, "[")) ++depth;
        if (t.is(k, ")") || t.is(k, "]")) --depth;
        if (depth != 0 || !t.is(k, "=")) continue;
        const std::string lhs = OperandBack(s, k);
        if (!lhs.empty() && lhs != "?:" && lhs != "k:") {
          std::vector<std::string> rhs;
          FlowTerms(k + 1, e, &rhs);
          for (const std::string& r : rhs) {
            if (r != "?:" && r != "k:") {
              out.assigns.push_back(
                  {fidx, lhs, r, t.line(k), LineText(t.line(k))});
            }
          }
        }
        break;
      }
    }

    // Return flow.
    if (t.is(s, "return") && s + 1 < e) {
      std::vector<std::string> terms;
      FlowTerms(s + 1, e, &terms);
      for (const std::string& r : terms) {
        if (r != "?:" && r != "k:") {
          out.returns.push_back({fidx, r, t.line(s)});
        }
      }
    }

    // Call arguments.
    for (std::size_t k = s; k < e; ++k) {
      if (!t.IsIdent(k) || !t.is(k + 1, "(") || IsReservedWord(t.text(k)) ||
          t.is(k - 1, "new") || t.text(k).starts_with("GL_")) {
        continue;
      }
      std::string callee = t.text(k);
      if (callee == "MutexLock") continue;
      if ((callee == "Add" || callee == "Increment") &&
          (t.is(k - 1, ".") || t.is(k - 1, "->")) && t.IsIdent(k - 2) &&
          counter_locals.count(t.text(k - 2))) {
        callee = "Counter::" + callee;
      }
      const std::size_t close = MatchGroup(t, k + 1, "(", ")");
      // Split the argument list at top-level commas.
      int depth = 0;
      std::size_t arg_start = k + 2;
      int index = 0;
      for (std::size_t q = k + 2; q <= close - 1 && q < t.size(); ++q) {
        if (t.is(q, "(") || t.is(q, "[") || t.is(q, "{")) ++depth;
        if (t.is(q, ")") || t.is(q, "]") || t.is(q, "}")) --depth;
        const bool last = q == close - 1;
        if ((t.is(q, ",") && depth == 0) || last) {
          const std::size_t arg_end = last ? close - 1 : q;
          if (arg_end > arg_start) {
            std::vector<std::string> terms;
            FlowTerms(arg_start, arg_end, &terms);
            for (const std::string& term : terms) {
              if (term != "?:" && term != "k:") {
                // Line of the callee ident: the same key OperandFwd bakes
                // into "c:callee@line" terms for this call.
                out.call_args.push_back({fidx, callee, index, term, t.line(k),
                                         LineText(t.line(k))});
              }
            }
          }
          arg_start = q + 1;
          ++index;
        }
      }
    }
  }

  // Parses a function signature: the parameter list starting at `paren_tok`
  // and the trailing specifiers up to the body's '{' at `body_open`. Emits
  // ParamDecl records, return-units and lock annotations, and primes
  // `unordered_params` for the body scan.
  void ParseSignature(int fidx, std::size_t paren_tok, std::size_t body_open) {
    unordered_params.clear();
    const std::size_t paren_end = MatchGroup(t, paren_tok, "(", ")");

    int index = 0;
    std::size_t seg = paren_tok + 1;
    int depth = 0;
    for (std::size_t k = paren_tok + 1; k < paren_end && k < t.size(); ++k) {
      if (t.IsIdent(k) && t.is(k + 1, "<")) {
        const std::size_t p = SkipTemplateArgs(t, k + 1);
        if (p != k + 1 && p <= paren_end) {
          k = p - 1;  // commas inside template args are not separators
          continue;
        }
      }
      if (t.is(k, "(") || t.is(k, "[") || t.is(k, "{")) ++depth;
      if (t.is(k, ")") || t.is(k, "]") || t.is(k, "}")) --depth;
      const bool last = k + 1 >= paren_end;
      if ((t.is(k, ",") && depth == 0) || last) {
        const std::size_t seg_end = t.is(k, ",") && depth == 0 ? k : k;
        if (seg_end > seg) EmitParam(fidx, index++, seg, seg_end);
        seg = k + 1;
      }
    }

    // Trailing specifiers: GL_UNITS(dim) / GL_ACQUIRE(l) / GL_REQUIRES(l).
    for (std::size_t k = paren_end; k < body_open; ++k) {
      if (!t.IsIdent(k) || !t.is(k + 1, "(") || !t.IsIdent(k + 2)) continue;
      const std::string& s = t.text(k);
      if (s == "GL_UNITS") {
        out.functions[static_cast<std::size_t>(fidx)].ret_units =
            t.text(k + 2);
      } else if (s == "GL_ACQUIRE" || s == "GL_ACQUIRE_SHARED") {
        out.lock_annos.push_back({fidx, "acquire", t.text(k + 2)});
      } else if (s == "GL_REQUIRES" || s == "GL_REQUIRES_SHARED") {
        out.lock_annos.push_back({fidx, "requires", t.text(k + 2)});
      }
    }
  }

  void EmitParam(int fidx, int index, std::size_t lo, std::size_t hi) {
    std::string units;
    std::string name;
    bool is_int = false;
    bool is_unordered = false;
    for (std::size_t k = lo; k < hi; ++k) {
      const std::string& s = t.text(k);
      if (s == "=") break;  // default argument
      if (s == "GL_UNITS" && t.is(k + 1, "(") && t.IsIdent(k + 2)) {
        units = t.text(k + 2);
        k = MatchGroup(t, k + 1, "(", ")") - 1;
        continue;
      }
      if (t.IsIdent(k) && s.starts_with("GL_")) {
        if (t.is(k + 1, "(")) k = MatchGroup(t, k + 1, "(", ")") - 1;
        continue;
      }
      if (t.IsIdent(k) && kIntTypes.count(s)) is_int = true;
      if (t.IsIdent(k) && kUnorderedContainers.count(s)) is_unordered = true;
      if (t.is(k + 1, "<")) {  // skip template arguments of the type
        const std::size_t p = SkipTemplateArgs(t, k + 1);
        if (p != k + 1) {
          k = p - 1;
          continue;
        }
      }
      if (t.IsIdent(k) && !IsReservedWord(s)) name = s;
    }
    if (name.empty()) return;
    if (units.empty() && is_int) units = "count";
    if (is_unordered) unordered_params.insert(name);
    out.params.push_back({fidx, index, name, units});
  }

  // --- class members (GL011) ----------------------------------------------

  struct MemberInfo {
    std::string name;
    int line = 0;
    bool annotated = false;
    bool exempt = false;    // const / atomic / sync primitive / reference
    bool is_mutex = false;  // owning mutex member
  };

  struct ClassCtx {
    std::string name;
    std::vector<MemberInfo> members;
    bool owns_mutex = false;
  };

  void ProcessMemberStatement(const std::vector<std::size_t>& head,
                              ClassCtx* cls) {
    if (head.empty()) return;
    bool annotated = false;
    bool exempt = false;
    bool is_mutex = false;
    bool is_ref = false;
    bool is_int = false;
    std::string units;
    int angle = 0;
    std::size_t name_tok = t.size();
    for (std::size_t hi = 0; hi < head.size(); ++hi) {
      const std::size_t k = head[hi];
      const std::string& s = t.text(k);
      if (s == "<" && hi > 0 && t.IsIdent(head[hi - 1])) { ++angle; continue; }
      if (s == ">" && angle > 0) { --angle; continue; }
      if (s == ">>" && angle > 0) { angle = std::max(0, angle - 2); continue; }
      if (angle > 0) continue;
      if (s == "using" || s == "typedef" || s == "friend" || s == "static" ||
          s == "template" || s == "static_assert" || s == "operator" ||
          s == "enum" || s == "class" || s == "struct" || s == "union" ||
          s == ":") {
        return;  // not an instance data member (':' = bit-field / base)
      }
      if (s == "GL_GUARDED_BY" || s == "GL_PT_GUARDED_BY" ||
          s == "GL_UNITS") {
        if (s != "GL_UNITS") annotated = true;
        // Skip the annotation's argument list (capturing a GL_UNITS dim).
        if (hi + 1 < head.size() && t.is(head[hi + 1], "(")) {
          if (s == "GL_UNITS" && hi + 2 < head.size() &&
              t.IsIdent(head[hi + 2])) {
            units = t.text(head[hi + 2]);
          }
          int d = 0;
          while (hi < head.size()) {
            if (t.is(head[hi], "(")) ++d;
            if (t.is(head[hi], ")") && --d == 0) break;
            ++hi;
          }
        }
        continue;
      }
      if (s == "(") {
        // A top-level call-ish paren group that is not an annotation:
        // member function declaration (incl. function-pointer members).
        return;
      }
      if (s == "const" || s == "constexpr") exempt = true;
      if (s == "atomic") exempt = true;
      if (t.IsIdent(k) && kIntTypes.count(s)) is_int = true;
      if (s == "&") is_ref = true;
      if (t.IsIdent(k) && kCondVarTypes.count(s)) { exempt = true; }
      if (t.IsIdent(k) && kMutexTypes.count(s)) is_mutex = true;
      if (s == "=" || s == "[" || s == "{") break;
      if (t.IsIdent(k) && !IsReservedWord(s)) name_tok = k;
    }
    if (name_tok == t.size()) return;
    if (is_mutex && is_ref) {
      is_mutex = false;  // borrowed mutex (e.g. MutexLock), not ownership
      exempt = true;
    }
    if (is_mutex) cls->owns_mutex = true;
    if (units.empty() && is_int) units = "count";
    if (!units.empty() && !cls->name.empty()) {
      out.unit_decls.push_back({-1, cls->name + "::" + t.text(name_tok),
                                units, t.line(name_tok)});
    }
    cls->members.push_back({t.text(name_tok), t.line(name_tok), annotated,
                            exempt, is_mutex});
  }

  void FinalizeClass(const ClassCtx& cls) {
    if (!cls.owns_mutex) return;
    for (const MemberInfo& m : cls.members) {
      if (m.is_mutex || m.exempt || m.annotated) continue;
      out.unguarded.push_back(
          {cls.name, m.name, m.line, LineText(m.line)});
    }
  }
};

// ---------------------------------------------------------------------------
// Scope machine: walks namespace/class scope, indexes function definitions,
// skips (and scans) their bodies wholesale.
// ---------------------------------------------------------------------------
void WalkStructure(Extractor& ex) {
  const SView& t = ex.t;
  enum class ScopeType { kNamespace, kClass, kBlock };
  struct Scope {
    ScopeType type;
    Extractor::ClassCtx cls;
  };
  std::vector<Scope> scopes;
  std::vector<std::size_t> head;

  const auto current_class = [&]() -> Extractor::ClassCtx* {
    return !scopes.empty() && scopes.back().type == ScopeType::kClass
               ? &scopes.back().cls
               : nullptr;
  };

  std::size_t i = 0;
  while (i < t.size()) {
    const std::string& s = t.text(i);

    if (t.IsIdent(i) && s == "namespace" && head.empty()) {
      std::size_t j = i + 1;
      while (j < t.size() && !t.is(j, "{") && !t.is(j, ";") && !t.is(j, "=")) {
        ++j;
      }
      if (t.is(j, "{")) {
        scopes.push_back({ScopeType::kNamespace, {}});
        i = j + 1;
      } else if (t.is(j, "=")) {  // namespace alias
        while (j < t.size() && !t.is(j, ";")) ++j;
        i = j + 1;
      } else {
        i = j + 1;
      }
      head.clear();
      continue;
    }

    if (t.IsIdent(i) && s == "enum") {
      std::size_t j = i + 1;
      while (j < t.size() && !t.is(j, "{") && !t.is(j, ";")) ++j;
      i = t.is(j, "{") ? MatchGroup(t, j, "{", "}") : j + 1;
      head.clear();
      continue;
    }

    if (t.IsIdent(i) && (s == "class" || s == "struct" || s == "union")) {
      // Scan ahead for '{' (definition) or ';' (declaration / member).
      std::size_t j = i + 1;
      std::string name;
      bool in_bases = false;
      while (j < t.size() && !t.is(j, "{") && !t.is(j, ";")) {
        if (t.is(j, "(")) { j = MatchGroup(t, j, "(", ")"); continue; }
        if (t.is(j, ":") && !t.is(j + 1, ":") && !t.is(j - 1, ":")) {
          in_bases = true;
        }
        if (!in_bases && t.IsIdent(j) && !IsReservedWord(t.text(j)) &&
            t.text(j) != "final" && !t.text(j).starts_with("GL_")) {
          name = t.text(j);
        }
        ++j;
      }
      if (t.is(j, "{")) {
        Scope sc{ScopeType::kClass, {}};
        sc.cls.name = name;
        scopes.push_back(std::move(sc));
        i = j + 1;
      } else {
        i = j + 1;  // forward declaration or `struct X*` member — skip
      }
      head.clear();
      continue;
    }

    if (t.IsIdent(i) &&
        (s == "public" || s == "private" || s == "protected") &&
        t.is(i + 1, ":") && current_class() != nullptr) {
      i += 2;
      head.clear();
      continue;
    }

    if (s == "{") {
      // extern "C" { ... } keeps namespace-like scope.
      if (head.size() == 2 && t.is(head[0], "extern") &&
          t.kind(head[1]) == TokKind::kString) {
        scopes.push_back({ScopeType::kNamespace, {}});
        ++i;
        head.clear();
        continue;
      }
      // Function body vs brace initializer: a body's '{' follows ')', '}',
      // '>', a reserved type word, or a specifier; an initializer's '{'
      // follows the variable name, '=', ',' or '('.
      const std::string& last = head.empty() ? SView::kEmpty
                                             : t.text(head.back());
      // A ')' closing a GL_ annotation arg list (`double x GL_UNITS(w){}`)
      // still introduces an initializer, not a body — unless the statement
      // also has a parameter list (then it's a function with a trailing
      // annotation, e.g. `double f() const GL_UNITS(watts) { ... }`).
      bool after_annotation = false;
      if (last == ")") {
        int d = 0;
        for (std::size_t hi = head.size(); hi-- > 0;) {
          if (t.is(head[hi], ")")) ++d;
          if (t.is(head[hi], "(") && --d == 0) {
            after_annotation = hi > 0 && t.IsIdent(head[hi - 1]) &&
                               t.text(head[hi - 1]).starts_with("GL_");
            if (after_annotation) {
              for (std::size_t pj = 0; pj + 1 < hi; ++pj) {
                if (t.is(head[pj + 1], "(") && t.IsIdent(head[pj]) &&
                    !t.text(head[pj]).starts_with("GL_")) {
                  after_annotation = false;  // param list → function body
                  break;
                }
              }
            }
            break;
          }
        }
      }
      const bool init_like =
          !head.empty() &&
          (last == "=" || last == "," || last == "(" || last == "[" ||
           after_annotation ||
           (t.IsIdent(head.back()) && !IsReservedWord(last) &&
            !kBodyIntroducers.count(last)));
      if (head.empty() || init_like) {
        // Brace initializer (member/global init) — consume, keep statement
        // open. An empty head is a stray block; skip it the same way.
        const std::size_t close = MatchGroup(t, i, "{", "}");
        if (!head.empty()) head.push_back(close - 1);  // '}' marker
        i = close;
        continue;
      }
      // Function definition: name = identifier before the first top-level
      // paren group; Class::Name qualification wins over lexical scope.
      std::string fname;
      std::string fclass;
      int fline = t.line(i);
      std::size_t paren_tok = t.size();
      int angle = 0;
      for (std::size_t hi = 0; hi < head.size(); ++hi) {
        const std::size_t k = head[hi];
        const std::string& hs = t.text(k);
        if (hs == "<" && hi > 0 && t.IsIdent(head[hi - 1])) { ++angle; continue; }
        if (hs == ">" && angle > 0) { --angle; continue; }
        if (hs == ">>" && angle > 0) { angle = std::max(0, angle - 2); continue; }
        if (angle > 0) continue;
        if (hs == "(" && hi > 0 && t.IsIdent(head[hi - 1]) &&
            !t.text(head[hi - 1]).starts_with("GL_")) {
          fname = t.text(head[hi - 1]);
          fline = t.line(head[hi - 1]);
          paren_tok = k;
          if (hi >= 3 && t.is(head[hi - 2], "::") &&
              t.IsIdent(head[hi - 3])) {
            fclass = t.text(head[hi - 3]);
          }
          break;
        }
        if (hs == "operator") {
          fname = "operator";
          break;
        }
      }
      if (fclass.empty()) {
        const Extractor::ClassCtx* cc = current_class();
        if (cc != nullptr) fclass = cc->name;
      }
      const std::size_t body_end = MatchGroup(t, i, "{", "}");
      if (!fname.empty()) {
        const int fidx = static_cast<int>(ex.out.functions.size());
        FunctionDef def;
        def.name = fname;
        def.class_name = fclass;
        def.line = fline;
        def.body_end_line = t.line(body_end - 1);
        def.line_text = ex.LineText(fline);
        ex.out.functions.push_back(std::move(def));
        ex.body_end_line = t.line(body_end - 1);
        if (paren_tok < t.size()) ex.ParseSignature(fidx, paren_tok, i);
        else ex.unordered_params.clear();
        ex.ScanBody(fidx, i + 1, body_end - 1);
        BuildFunctionCfg(t.toks, ex.lines, fidx,
                         paren_tok < t.size() ? paren_tok : i + 1, i + 1,
                         body_end - 1, &ex.out);
      }
      i = body_end;
      head.clear();
      continue;
    }

    if (s == ";") {
      Extractor::ClassCtx* cc = current_class();
      if (cc != nullptr) ex.ProcessMemberStatement(head, cc);
      head.clear();
      ++i;
      continue;
    }

    if (s == "}") {
      if (!scopes.empty()) {
        if (scopes.back().type == ScopeType::kClass) {
          ex.FinalizeClass(scopes.back().cls);
        }
        scopes.pop_back();
      }
      head.clear();
      ++i;
      continue;
    }

    head.push_back(i);
    ++i;
  }
  // Unterminated class at EOF (truncated file): still report what we saw.
  while (!scopes.empty()) {
    if (scopes.back().type == ScopeType::kClass) {
      ex.FinalizeClass(scopes.back().cls);
    }
    scopes.pop_back();
  }
}

// ---------------------------------------------------------------------------
// GL013: suppression comments and their per-rule trigger verdicts.
// ---------------------------------------------------------------------------
const std::unordered_set<std::string_view> kAnalyzerRuleNames = {
    "alloc-in-hot-path", "unguarded-shared-member", "nondet-float-fold",
    "stale-suppression", "unit-confusion", "lock-order-cycle",
    "determinism-taint", "lock-path-leak", "use-after-invalidation",
    "loop-carried-allocation", "unguarded-narrowing",
    "divergent-parallel-update"};

bool RuleTriggers(const std::string& rule, const SView& t,
                  const std::vector<std::size_t>& span) {
  const auto has_ident = [&](const std::unordered_set<std::string_view>& set) {
    for (const std::size_t k : span) {
      if (t.IsIdent(k) && set.count(t.text(k))) return true;
    }
    return false;
  };
  const auto has_text = [&](std::string_view s) {
    for (const std::size_t k : span) {
      if (t.text(k) == s) return true;
    }
    return false;
  };

  if (rule == "unordered-iter") {
    if (has_text("for") || has_text("begin") || has_text("cbegin")) {
      return true;
    }
    for (const std::size_t k : span) {
      if (t.IsIdent(k) && t.text(k).starts_with("unordered_")) return true;
    }
    return false;
  }
  if (rule == "adhoc-rng") {
    static const std::unordered_set<std::string_view> kRng = {
        "rand", "srand", "mt19937", "mt19937_64", "minstd_rand",
        "minstd_rand0", "default_random_engine", "random_device", "drand48",
        "lrand48", "random_shuffle"};
    if (has_ident(kRng)) return true;
    for (const std::size_t k : span) {
      if (t.IsIdent(k) && t.text(k).ends_with("_distribution")) return true;
    }
    return false;
  }
  if (rule == "time-seed") {
    static const std::unordered_set<std::string_view> kTime = {
        "time", "gettimeofday", "clock_gettime", "getpid", "clock", "now"};
    return has_ident(kTime);
  }
  if (rule == "raw-clock") {
    static const std::unordered_set<std::string_view> kClock = {
        "steady_clock", "high_resolution_clock"};
    return has_ident(kClock);
  }
  if (rule == "pointer-key") {
    static const std::unordered_set<std::string_view> kAssoc = {
        "map", "set", "multimap", "multiset", "unordered_map",
        "unordered_set"};
    return has_ident(kAssoc) && has_text("*");
  }
  if (rule == "float-eq") {
    static const std::unordered_set<std::string_view> kFields = {
        "cpu", "mem_gb", "net_mbps"};
    return (has_text("==") || has_text("!=")) && has_ident(kFields);
  }
  if (rule == "raw-thread") {
    static const std::unordered_set<std::string_view> kThread = {
        "thread", "jthread", "async", "pthread_create", "detach"};
    return has_ident(kThread);
  }
  if (rule == "global-state") {
    if (span.empty()) return false;
    static const std::unordered_set<std::string_view> kConst = {
        "const", "constexpr", "constinit"};
    return (has_text(";") || has_text("=")) && !has_ident(kConst);
  }
  if (rule == "unguarded-mutex") {
    return has_ident(kMutexTypes);
  }
  // Analyzer rule names never suppress via allow() (the baseline file is
  // their mechanism), so such a comment is always dead weight.
  return false;
}

void ScanSuppressions(const std::vector<Token>& all, const SView& structural,
                      Extractor& ex) {
  static const std::unordered_set<std::string_view> kKnown = {
      "unordered-iter", "adhoc-rng", "time-seed", "pointer-key", "float-eq",
      "raw-thread", "global-state", "unguarded-mutex", "raw-clock"};
  for (const Token& tok : all) {
    if (tok.kind != TokKind::kComment) continue;
    const std::string& c = tok.text;
    const std::size_t at = c.find("gl-lint:");
    if (at == std::string::npos) continue;
    const std::size_t open = c.find("allow(", at);
    if (open == std::string::npos) continue;
    const std::size_t close = c.find(')', open);
    if (close == std::string::npos) continue;

    Suppression sup;
    sup.line = tok.line;
    sup.line_text = ex.LineText(tok.line);

    // Structural tokens on the comment's line and the next line.
    std::vector<std::size_t> span;
    for (std::size_t k = 0; k < structural.size(); ++k) {
      const int l = structural.line(k);
      if (l == tok.line || l == tok.line + 1) span.push_back(k);
      if (l > tok.line + 1) break;
    }

    std::string list = c.substr(open + 6, close - open - 6);
    std::size_t pos = 0;
    while (pos <= list.size()) {
      std::size_t comma = list.find(',', pos);
      if (comma == std::string::npos) comma = list.size();
      std::string rule = list.substr(pos, comma - pos);
      const auto b = rule.find_first_not_of(" \t");
      const auto e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) {
        rule = rule.substr(b, e - b + 1);
        SuppressedRule sr;
        sr.rule = rule;
        sr.known = kKnown.count(rule) > 0 || kAnalyzerRuleNames.count(rule) > 0;
        sr.triggered = RuleTriggers(rule, structural, span);
        sup.rules.push_back(std::move(sr));
      }
      pos = comma + 1;
    }
    if (!sup.rules.empty()) ex.out.suppressions.push_back(std::move(sup));
  }
}

// ---------------------------------------------------------------------------
// Serialization (cache format; one escaped record per line).
// ---------------------------------------------------------------------------
void AppendEscaped(const std::string& s, std::string* out) {
  for (const char c : s) {
    if (c == '\\') out->append("\\\\");
    else if (c == '\t') out->append("\\t");
    else if (c == '\n') out->append("\\n");
    else out->push_back(c);
  }
}

[[nodiscard]] std::string Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      const char n = s[++i];
      out.push_back(n == 't' ? '\t' : n == 'n' ? '\n' : n);
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

void AppendRecord(std::string* out, std::initializer_list<std::string> cols) {
  bool first = true;
  for (const std::string& c : cols) {
    if (!first) out->push_back('\t');
    first = false;
    AppendEscaped(c, out);
  }
  out->push_back('\n');
}

[[nodiscard]] std::vector<std::string> SplitRecord(std::string_view line) {
  std::vector<std::string> cols;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    const bool end = i == line.size();
    // A field separator is an unescaped tab; escaped tabs are "\t" pairs.
    if (end || (line[i] == '\t')) {
      cols.push_back(Unescape(line.substr(start, i - start)));
      start = i + 1;
    } else if (line[i] == '\\') {
      ++i;
    }
  }
  return cols;
}

}  // namespace

std::uint64_t HashBytes(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

FileFacts ExtractFacts(const std::string& path, std::string_view source) {
  FileFacts facts;
  facts.path = path;

  const std::vector<Token> all = Lex(source);
  SView structural;
  structural.toks.reserve(all.size());
  for (const Token& tok : all) {
    if (tok.kind != TokKind::kComment && tok.kind != TokKind::kPreprocessor) {
      structural.toks.push_back(&tok);
    }
  }

  std::vector<std::string> lines;
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= source.size(); ++i) {
      if (i == source.size() || source[i] == '\n') {
        lines.emplace_back(source.substr(start, i - start));
        start = i + 1;
      }
    }
  }

  Extractor ex{structural, lines, facts, {}, 0};
  WalkStructure(ex);
  ScanSuppressions(all, structural, ex);
  return facts;
}

void SerializeFacts(const FileFacts& f, std::string* out) {
  AppendRecord(out, {"P", f.path});
  for (const FunctionDef& d : f.functions) {
    AppendRecord(out, {"F", d.name, d.class_name, std::to_string(d.line),
                       d.ret_units, std::to_string(d.body_end_line),
                       d.line_text});
  }
  for (const CallSite& c : f.calls) {
    AppendRecord(out, {"C", std::to_string(c.func), c.callee,
                       std::to_string(c.line)});
  }
  for (const AllocSite& a : f.allocs) {
    AppendRecord(out, {"A", std::to_string(a.func),
                       std::to_string(static_cast<int>(a.kind)), a.detail,
                       std::to_string(a.line), a.line_text});
  }
  for (const UnguardedMember& m : f.unguarded) {
    AppendRecord(out, {"M", m.class_name, m.member, std::to_string(m.line),
                       m.line_text});
  }
  for (const FloatFold& x : f.float_folds) {
    AppendRecord(out, {"X", x.var, x.function, std::to_string(x.line),
                       x.line_text});
  }
  for (const Suppression& s : f.suppressions) {
    std::string rules;
    for (const SuppressedRule& r : s.rules) {
      if (!rules.empty()) rules.push_back(',');
      rules += r.rule;
      rules.push_back(r.known ? 'k' : 'u');
      rules.push_back(r.triggered ? 't' : 'f');
    }
    AppendRecord(out, {"S", std::to_string(s.line), s.line_text, rules});
  }
  for (const UnitDecl& u : f.unit_decls) {
    AppendRecord(out, {"U", std::to_string(u.func), u.var, u.dim,
                       std::to_string(u.line)});
  }
  for (const ParamDecl& p : f.params) {
    AppendRecord(out, {"R", std::to_string(p.func), std::to_string(p.index),
                       p.name, p.units});
  }
  for (const UnitBinop& b : f.binops) {
    AppendRecord(out, {"B", std::to_string(b.func), b.op, b.lhs, b.rhs,
                       std::to_string(b.line), b.line_text});
  }
  for (const UnitAssign& a : f.assigns) {
    AppendRecord(out, {"E", std::to_string(a.func), a.lhs, a.rhs,
                       std::to_string(a.line), a.line_text});
  }
  for (const CallArg& g : f.call_args) {
    AppendRecord(out, {"G", std::to_string(g.func), g.callee,
                       std::to_string(g.index), g.term,
                       std::to_string(g.line), g.line_text});
  }
  for (const ReturnFlow& r : f.returns) {
    AppendRecord(out, {"T", std::to_string(r.func), r.term,
                       std::to_string(r.line)});
  }
  for (const TaintSeed& d : f.taint_seeds) {
    AppendRecord(out, {"D", std::to_string(d.func), d.term, d.kind,
                       std::to_string(d.line), d.line_text});
  }
  for (const LockAcquire& l : f.lock_acquires) {
    AppendRecord(out, {"L", std::to_string(l.func), l.lock,
                       std::to_string(l.line),
                       std::to_string(l.scope_end_line), l.line_text});
  }
  for (const LockAnno& q : f.lock_annos) {
    AppendRecord(out, {"Q", std::to_string(q.func), q.kind, q.lock});
  }
  for (const FuncCfg& g : f.cfgs) {
    AppendRecord(out, {"H", std::to_string(g.func),
                       std::to_string(g.budget_exceeded ? 1 : 0)});
    for (std::size_t b = 0; b < g.blocks.size(); ++b) {
      const CfgBlock& blk = g.blocks[b];
      std::string succ;
      for (const int s : blk.succ) {
        if (!succ.empty()) succ.push_back(',');
        succ += std::to_string(s);
      }
      AppendRecord(out, {"K", std::to_string(blk.loop_depth),
                         std::to_string(blk.in_parallel ? 1 : 0),
                         std::to_string(blk.varying_guard), succ});
      for (const CfgEvent& e : blk.events) {
        AppendRecord(out, {"V", std::to_string(b),
                           std::to_string(static_cast<int>(e.kind)), e.a,
                           e.b, std::to_string(e.line), e.line_text});
      }
    }
  }
}

bool DeserializeFacts(std::string_view blob, FileFacts* f) {
  *f = FileFacts{};
  std::size_t start = 0;
  const auto to_int = [](const std::string& s, int* v) {
    char* end = nullptr;
    const long parsed = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0') return false;
    *v = static_cast<int>(parsed);
    return true;
  };
  while (start < blob.size()) {
    std::size_t nl = blob.find('\n', start);
    if (nl == std::string_view::npos) nl = blob.size();
    const std::string_view line = blob.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    const std::vector<std::string> c = SplitRecord(line);
    if (c.empty()) return false;
    if (c[0] == "P" && c.size() == 2) {
      f->path = c[1];
    } else if (c[0] == "F" && c.size() == 7) {
      FunctionDef d;
      d.name = c[1];
      d.class_name = c[2];
      if (!to_int(c[3], &d.line) || !to_int(c[5], &d.body_end_line)) {
        return false;
      }
      d.ret_units = c[4];
      d.line_text = c[6];
      f->functions.push_back(std::move(d));
    } else if (c[0] == "C" && c.size() == 4) {
      CallSite cs;
      if (!to_int(c[1], &cs.func) || !to_int(c[3], &cs.line)) return false;
      cs.callee = c[2];
      f->calls.push_back(std::move(cs));
    } else if (c[0] == "A" && c.size() == 6) {
      AllocSite a;
      int kind = 0;
      if (!to_int(c[1], &a.func) || !to_int(c[2], &kind) ||
          !to_int(c[4], &a.line)) {
        return false;
      }
      a.kind = static_cast<AllocKind>(kind);
      a.detail = c[3];
      a.line_text = c[5];
      f->allocs.push_back(std::move(a));
    } else if (c[0] == "M" && c.size() == 5) {
      UnguardedMember m;
      m.class_name = c[1];
      m.member = c[2];
      if (!to_int(c[3], &m.line)) return false;
      m.line_text = c[4];
      f->unguarded.push_back(std::move(m));
    } else if (c[0] == "X" && c.size() == 5) {
      FloatFold x;
      x.var = c[1];
      x.function = c[2];
      if (!to_int(c[3], &x.line)) return false;
      x.line_text = c[4];
      f->float_folds.push_back(std::move(x));
    } else if (c[0] == "S" && c.size() == 4) {
      Suppression s;
      if (!to_int(c[1], &s.line)) return false;
      s.line_text = c[2];
      std::size_t pos = 0;
      const std::string& rules = c[3];
      while (pos < rules.size()) {
        std::size_t comma = rules.find(',', pos);
        if (comma == std::string::npos) comma = rules.size();
        const std::string item = rules.substr(pos, comma - pos);
        if (item.size() < 3) return false;
        SuppressedRule r;
        r.rule = item.substr(0, item.size() - 2);
        r.known = item[item.size() - 2] == 'k';
        r.triggered = item[item.size() - 1] == 't';
        s.rules.push_back(std::move(r));
        pos = comma + 1;
      }
      f->suppressions.push_back(std::move(s));
    } else if (c[0] == "U" && c.size() == 5) {
      UnitDecl u;
      if (!to_int(c[1], &u.func) || !to_int(c[4], &u.line)) return false;
      u.var = c[2];
      u.dim = c[3];
      f->unit_decls.push_back(std::move(u));
    } else if (c[0] == "R" && c.size() == 5) {
      ParamDecl p;
      if (!to_int(c[1], &p.func) || !to_int(c[2], &p.index)) return false;
      p.name = c[3];
      p.units = c[4];
      f->params.push_back(std::move(p));
    } else if (c[0] == "B" && c.size() == 7) {
      UnitBinop b;
      if (!to_int(c[1], &b.func) || !to_int(c[5], &b.line)) return false;
      b.op = c[2];
      b.lhs = c[3];
      b.rhs = c[4];
      b.line_text = c[6];
      f->binops.push_back(std::move(b));
    } else if (c[0] == "E" && c.size() == 6) {
      UnitAssign a;
      if (!to_int(c[1], &a.func) || !to_int(c[4], &a.line)) return false;
      a.lhs = c[2];
      a.rhs = c[3];
      a.line_text = c[5];
      f->assigns.push_back(std::move(a));
    } else if (c[0] == "G" && c.size() == 7) {
      CallArg g;
      if (!to_int(c[1], &g.func) || !to_int(c[3], &g.index) ||
          !to_int(c[5], &g.line)) {
        return false;
      }
      g.callee = c[2];
      g.term = c[4];
      g.line_text = c[6];
      f->call_args.push_back(std::move(g));
    } else if (c[0] == "T" && c.size() == 4) {
      ReturnFlow r;
      if (!to_int(c[1], &r.func) || !to_int(c[3], &r.line)) return false;
      r.term = c[2];
      f->returns.push_back(std::move(r));
    } else if (c[0] == "D" && c.size() == 6) {
      TaintSeed d;
      if (!to_int(c[1], &d.func) || !to_int(c[4], &d.line)) return false;
      d.term = c[2];
      d.kind = c[3];
      d.line_text = c[5];
      f->taint_seeds.push_back(std::move(d));
    } else if (c[0] == "L" && c.size() == 6) {
      LockAcquire l;
      if (!to_int(c[1], &l.func) || !to_int(c[3], &l.line) ||
          !to_int(c[4], &l.scope_end_line)) {
        return false;
      }
      l.lock = c[2];
      l.line_text = c[5];
      f->lock_acquires.push_back(std::move(l));
    } else if (c[0] == "Q" && c.size() == 4) {
      LockAnno q;
      if (!to_int(c[1], &q.func)) return false;
      q.kind = c[2];
      q.lock = c[3];
      f->lock_annos.push_back(std::move(q));
    } else if (c[0] == "H" && c.size() == 3) {
      FuncCfg g;
      int exceeded = 0;
      if (!to_int(c[1], &g.func) || !to_int(c[2], &exceeded)) return false;
      g.budget_exceeded = exceeded != 0;
      f->cfgs.push_back(std::move(g));
    } else if (c[0] == "K" && c.size() == 5) {
      if (f->cfgs.empty()) return false;
      CfgBlock blk;
      int par = 0;
      if (!to_int(c[1], &blk.loop_depth) || !to_int(c[2], &par) ||
          !to_int(c[3], &blk.varying_guard)) {
        return false;
      }
      blk.in_parallel = par != 0;
      std::size_t pos = 0;
      const std::string& succ = c[4];
      while (pos < succ.size()) {
        std::size_t comma = succ.find(',', pos);
        if (comma == std::string::npos) comma = succ.size();
        int s = 0;
        if (!to_int(succ.substr(pos, comma - pos), &s)) return false;
        blk.succ.push_back(s);
        pos = comma + 1;
      }
      f->cfgs.back().blocks.push_back(std::move(blk));
    } else if (c[0] == "V" && c.size() == 7) {
      if (f->cfgs.empty()) return false;
      int block = 0;
      int kind = 0;
      CfgEvent e;
      if (!to_int(c[1], &block) || !to_int(c[2], &kind) ||
          !to_int(c[5], &e.line)) {
        return false;
      }
      std::vector<CfgBlock>& blocks = f->cfgs.back().blocks;
      if (block < 0 || block >= static_cast<int>(blocks.size())) return false;
      e.kind = static_cast<CfgEventKind>(kind);
      e.a = c[3];
      e.b = c[4];
      e.line_text = c[6];
      blocks[static_cast<std::size_t>(block)].events.push_back(std::move(e));
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace gl::analyze
