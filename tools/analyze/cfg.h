// Per-function control-flow graphs and path-sensitive rules (DESIGN.md §14).
//
// The flow-insensitive dataflow engine (dataflow.h) joins facts across the
// whole program but cannot see branches, loops or early returns. This layer
// closes that gap: BuildFunctionCfg constructs a basic-block CFG for one
// function body from the structural token stream (if/else, for/while/do,
// switch/case, break/continue, early return, statement-level '?:', and
// ParallelFor lambda bodies), recording the path-relevant events each block
// performs. The CFG is serialized with the per-file facts, so warm runs
// replay cached graphs instead of re-lexing.
//
// AnalyzeCfg then walks every cached CFG with small abstract interpreters —
// monotone fixpoints over per-block states — seeded by the PR 6/7 facts
// (lock annotations, hot roots, the call graph) and reports:
//
//   GL017 lock-path-leak          a manual .Lock() may-held at function exit
//                                 (some path skipped the .Unlock()); RAII
//                                 MutexLock and GL_REQUIRES/GL_ACQUIRE
//                                 contracts are exempt
//   GL018 use-after-invalidation  a ref/index/view bound from a
//                                 PartitionScratch / GroupAccumulator /
//                                 LazyMaxHeap (or a local vector element)
//                                 used after a Clear()/Reset() (or growth
//                                 call) on some path
//   GL019 loop-carried-allocation allocation or container growth inside a
//                                 loop of a hot-path function (sharpens
//                                 GL010: the steady state must not allocate
//                                 per iteration)
//   GL020 unguarded-narrowing     a 64-bit value cast to a 32-bit vertex-id
//                                 type with no dominating bounds check on
//                                 the path (must-analysis: checked on every
//                                 path, intersection at joins)
//   GL021 divergent-parallel-update  inside a ParallelFor body, a branch on
//                                 thread-varying state (timings, rand,
//                                 pointer bits) guards a write to a
//                                 deterministic counter or state-hash input
//
// Soundness trade-offs per rule are documented in DESIGN.md §14. The
// builder keeps a hard block budget per function; a function that exceeds
// it is marked budget_exceeded and skipped by the path rules (never a false
// finding, possibly a miss — the conservative direction for a gate that
// fails the build on findings).
#pragma once

#include <string>
#include <vector>

#include "analyze/dataflow.h"
#include "analyze/facts.h"
#include "analyze/lexer.h"

namespace gl::analyze {

struct Finding;           // analysis.h
struct AnalysisOptions;   // analysis.h

// Hard cap on basic blocks per function. Beyond it the builder stops
// splitting and marks the CFG budget_exceeded.
inline constexpr int kCfgBlockBudget = 512;

// Builds the CFG for the function body spanning structural tokens
// [body_begin, body_end) — the tokens strictly inside the braces — and
// appends it to out->cfgs. `toks` is the comment/preprocessor-free view the
// extractor walks; `lines` are the 0-based source lines (for baseline
// fingerprints). [sig_begin, body_begin) covers the parameter list (and any
// trailing annotations), so 64-bit-typed and scratch-typed parameters feed
// the per-function declaration sets; pass sig_begin == body_begin when the
// signature was not found.
void BuildFunctionCfg(const std::vector<const Token*>& toks,
                      const std::vector<std::string>& lines, int func,
                      std::size_t sig_begin, std::size_t body_begin,
                      std::size_t body_end, FileFacts* out);

// Hot-root reachability (shared by GL010 and GL019): BFS over name-matched
// call edges from the AnalysisOptions roots, recording each function's BFS
// parent so findings can print the call chain.
struct HotReach {
  std::unordered_map<FuncRef, FuncRef, FuncRefHash> parent;  // root: {-1,-1}
  [[nodiscard]] bool Reached(const FuncRef& r) const {
    return parent.count(r) > 0;
  }
  // "Root -> ... -> fn" display chain for a reached function.
  [[nodiscard]] std::string Chain(const SymbolIndex& index,
                                  const FuncRef& r) const;
};

[[nodiscard]] HotReach ComputeHotReach(const std::vector<FileFacts>& files,
                                       const SymbolIndex& index,
                                       const std::vector<std::string>& roots);

// Runs GL017–GL021 over every cached CFG and appends findings.
void AnalyzeCfg(const std::vector<FileFacts>& files, const SymbolIndex& index,
                const HotReach& hot, std::vector<Finding>* out);

}  // namespace gl::analyze
