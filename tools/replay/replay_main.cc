// Seed-replay reproducibility gate.
//
// Runs a scenario through the ExperimentRunner twice with identically-seeded
// schedulers and diffs the per-epoch state-hash streams
// (common/state_hash.h). Bit-identical streams are the determinism
// contract's promise (DESIGN.md §8); any divergence is reported with the
// first offending epoch and subsystem (placement, loads, power, migration,
// rng) so the leak can be traced to a module.
//
//   gl_replay [--scenario=twitter|azure] [--scheduler=<name>|all]
//             [--topology=testbed16|fattree4|leafspine] [--epochs=N]
//             [--seed=N] [--threads=N] [--estimated] [--verbose]
//             [--obs=run.jsonl] [--trace=trace.json]
//
// --scheduler=all (the default) gates every policy: goldilocks, mpp, borg,
// epvm, rc, random. --estimated replays with DemandEstimator predictions in
// the loop, covering the estimator's state as well. --threads=N runs the
// *second* replay with Goldilocks' partitioner fanned out over N threads
// while the first stays serial, so the gate also checks the concurrency
// contract (DESIGN.md §9): parallel execution must be bit-identical to
// serial. --obs= streams JSONL epoch records from the *second* replay only
// while the first stays obs-off — identical hash streams then also prove
// the observability layer is simulation-neutral (DESIGN.md §10). --trace=
// collects spans across the whole gate and writes a Chrome trace. Exit
// status 0 means every replay was bit-identical; 1 means at least one
// divergence; 2 means bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/state_hash.h"
#include "core/scheduler_factory.h"
#include "obs/run_logger.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "workload/scenarios.h"

namespace {

struct Args {
  std::string scenario = "twitter";
  std::string scheduler = "all";
  std::string topology = "testbed16";
  int epochs = -1;  // scenario default
  std::uint64_t seed = 0xfeed;
  int threads = 1;  // partitioner fan-out for the second replay
  bool estimated = false;
  bool verbose = false;
  std::string obs_jsonl;   // JSONL sink for the second replay ("" = off)
  std::string trace_path;  // Chrome trace for the second replay ("" = off)
};

bool ParseFlag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  out = arg + n;
  return true;
}

// One seeded run: fresh scheduler, fresh runner, hashed epochs. `logger`
// (may be null) attaches the observability sink to this run only.
std::vector<gl::EpochStateHash> RunOnce(const std::string& scheduler_name,
                                        const gl::Scenario& scenario,
                                        const gl::Topology& topo,
                                        const Args& args, int threads,
                                        gl::obs::RunLogger* logger) {
  auto scheduler =
      gl::MakeNamedScheduler(scheduler_name, 0.70, args.seed, threads);
  gl::RunnerOptions opts;
  opts.record_state_hashes = true;
  opts.use_estimated_demands = args.estimated;
  opts.obs.logger = logger;
  const gl::ExperimentRunner runner(scenario, topo, opts);
  return runner.Run(*scheduler).state_hashes;
}

// Returns true when the two same-seed runs agree bit-for-bit. The first run
// is always serial and obs-off; the second uses args.threads and carries
// any observability sinks, so --threads>1 also gates serial-vs-parallel
// equivalence and --obs/--trace gate obs-neutrality.
bool ReplayScheduler(const std::string& scheduler_name,
                     const gl::Scenario& scenario, const gl::Topology& topo,
                     const Args& args, gl::obs::RunLogger* logger) {
  const auto first =
      RunOnce(scheduler_name, scenario, topo, args, 1, nullptr);
  const auto second =
      RunOnce(scheduler_name, scenario, topo, args, args.threads, logger);

  if (first.size() != second.size()) {
    std::printf("%-10s FAIL: run lengths differ (%zu vs %zu epochs)\n",
                scheduler_name.c_str(), first.size(), second.size());
    return false;
  }
  for (std::size_t e = 0; e < first.size(); ++e) {
    if (args.verbose) std::puts(first[e].ToString().c_str());
    const char* diverged = gl::FirstDivergentSubsystem(first[e], second[e]);
    if (diverged != nullptr) {
      std::printf("%-10s FAIL: first divergence at epoch %zu in subsystem "
                  "'%s'\n  run 1: %s\n  run 2: %s\n",
                  scheduler_name.c_str(), e, diverged,
                  first[e].ToString().c_str(), second[e].ToString().c_str());
      return false;
    }
  }
  const std::uint64_t digest =
      first.empty() ? 0 : first.back().Combined();
  std::printf("%-10s OK: %zu epochs bit-identical, final digest %016llx\n",
              scheduler_name.c_str(), first.size(),
              static_cast<unsigned long long>(digest));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--scenario=", args.scenario) ||
        ParseFlag(argv[i], "--scheduler=", args.scheduler) ||
        ParseFlag(argv[i], "--topology=", args.topology)) {
      continue;
    }
    if (ParseFlag(argv[i], "--epochs=", value)) {
      args.epochs = std::atoi(value.c_str());
      continue;
    }
    if (ParseFlag(argv[i], "--seed=", value)) {
      args.seed = std::strtoull(value.c_str(), nullptr, 0);
      continue;
    }
    if (ParseFlag(argv[i], "--threads=", value)) {
      args.threads = std::atoi(value.c_str());
      continue;
    }
    if (ParseFlag(argv[i], "--obs=", args.obs_jsonl) ||
        ParseFlag(argv[i], "--trace=", args.trace_path)) {
      continue;
    }
    if (std::strcmp(argv[i], "--estimated") == 0) {
      args.estimated = true;
      continue;
    }
    if (std::strcmp(argv[i], "--verbose") == 0) {
      args.verbose = true;
      continue;
    }
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    return 2;
  }

  gl::Topology topo;
  if (args.topology == "testbed16") {
    topo = gl::Topology::Testbed16();
  } else if (args.topology == "fattree4") {
    topo = gl::Topology::FatTree(
        4, gl::Resource{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000}, 1000.0);
  } else if (args.topology == "leafspine") {
    topo = gl::Topology::LeafSpine(
        8, 4, 2, gl::Resource{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000},
        1000.0);
  } else {
    std::fprintf(stderr, "unknown topology: %s\n", args.topology.c_str());
    return 2;
  }

  std::unique_ptr<gl::Scenario> scenario;
  if (args.scenario == "twitter") {
    gl::TwitterScenarioOptions opts;
    if (args.epochs > 0) opts.num_epochs = args.epochs;
    scenario = gl::MakeTwitterCachingScenario(opts);
  } else if (args.scenario == "azure") {
    gl::AzureScenarioOptions opts;
    if (args.epochs > 0) opts.num_epochs = args.epochs;
    scenario = gl::MakeAzureMixScenario(opts);
  } else {
    std::fprintf(stderr, "unknown scenario: %s\n", args.scenario.c_str());
    return 2;
  }

  std::vector<std::string> schedulers;
  if (args.scheduler == "all") {
    schedulers = gl::NamedSchedulers();
  } else if (gl::MakeNamedScheduler(args.scheduler) != nullptr) {
    schedulers.push_back(args.scheduler);
  } else {
    std::fprintf(stderr, "unknown scheduler: %s\n", args.scheduler.c_str());
    return 2;
  }

  std::printf("seed-replay gate: scenario=%s topology=%s epochs=%d "
              "demands=%s threads=1-vs-%d\n",
              scenario->name().c_str(), args.topology.c_str(),
              scenario->num_epochs(), args.estimated ? "estimated" : "oracle",
              args.threads);
  std::unique_ptr<gl::obs::RunLogger> logger;
  if (!args.obs_jsonl.empty()) {
    logger = std::make_unique<gl::obs::RunLogger>(args.obs_jsonl);
    if (!logger->ok()) return 2;
  }
  gl::obs::Trace trace;
  if (!args.trace_path.empty()) trace.Activate();

  int failures = 0;
  for (const auto& name : schedulers) {
    failures +=
        ReplayScheduler(name, *scenario, topo, args, logger.get()) ? 0 : 1;
  }

  if (!args.trace_path.empty()) {
    trace.Deactivate();
    if (trace.WriteChromeJson(args.trace_path)) {
      std::printf("wrote Chrome trace to %s\n", args.trace_path.c_str());
    }
  }
  if (logger != nullptr) {
    std::printf("wrote %llu JSONL records to %s\n",
                static_cast<unsigned long long>(logger->lines_written()),
                args.obs_jsonl.c_str());
  }
  if (failures > 0) {
    std::printf("%d of %zu scheduler replays diverged\n", failures,
                schedulers.size());
    return 1;
  }
  std::printf("all %zu scheduler replays bit-identical\n", schedulers.size());
  return 0;
}
