// Observability report tool for "gl.epoch.v1" JSONL run logs.
//
//   gl_report run    [--scenario=twitter|azure] [--schedulers=a,b,...]
//                    [--epochs=N] [--seed=N] [--jsonl=PATH] [--trace=PATH]
//   gl_report tables  FILE.jsonl
//   gl_report check   A.jsonl B.jsonl
//   gl_report profile TRACE.json [--root=NAME] [--top=N]
//   gl_report flame   TRACE.json [--out=PATH]
//   gl_report diff    A B [--threshold=FRACTION]
//
// `run` executes the named policies (default: goldilocks,borg) over the
// scenario with observability enabled: it streams one JSONL record per
// epoch, collects a trace of every instrumented phase, prints the flat
// per-phase timing table plus per-policy averages, and — with --trace= —
// writes a Chrome trace loadable at chrome://tracing.
//
// `tables` re-derives the timing and counter tables from an existing JSONL
// file, so a logged run can be summarized later without re-running it.
//
// `check` diffs two JSONL streams under the determinism contract: every
// byte outside the informational "timings" section must match (DESIGN.md
// §10). It also validates the schema tag on every line. Exit 0 = identical,
// 1 = divergent/invalid, 2 = bad usage.
//
// `profile` re-reads a Chrome trace written by --trace= (or gl_replay
// --trace=) and prints the attribution the flat tables cannot: top self-time
// frames and the critical path through the parallel span forest, including
// how much of the root's wall is serial (width-1) — the Amdahl bound on the
// t8 speedup (DESIGN.md §15).
//
// `flame` emits the same trace as collapsed stacks ("a;b;c N", N in µs) for
// flamegraph.pl / speedscope.
//
// `diff` compares two runs metric-by-metric: two gl.epoch.v1 JSONL streams
// (per-scheduler metric/counter sums; deterministic mismatches flagged DIFF,
// informational drift beyond --threshold flagged DRIFT) or two bench --json
// arrays (per-configuration median wall / efficiency / peak bytes drift).
// Unlike `check` it always exits 0 when both inputs parse — it is a report,
// not a gate.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/scheduler_factory.h"
#include "obs/profile.h"
#include "obs/run_logger.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "workload/scenarios.h"

namespace {

constexpr const char* kTimingsMarker = ",\"timings\":";
constexpr const char* kSchemaPrefix = "{\"schema\":\"gl.epoch.v1\"";

bool ParseFlag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  out = arg + n;
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) parts.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

bool ReadLines(const std::string& path, std::vector<std::string>& lines) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "gl_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return true;
}

// --- mini extractors for the fixed "gl.epoch.v1" line layout ---------------
// The emitter is our own JsonWriter with a fixed key order, so targeted
// substring scans are exact — this is not a general JSON parser.

// Value of a `"key":"string"` pair, or "" when absent.
std::string ExtractString(const std::string& line, const char* key) {
  std::string pat = "\"";
  pat += key;
  pat += "\":\"";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + pat.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

// Value of a `"key":number` pair at/after `from`, or fallback when absent.
double ExtractNumber(const std::string& line, const char* key, double fallback,
                     std::size_t from = 0) {
  std::string pat = "\"";
  pat += key;
  pat += "\":";
  const std::size_t at = line.find(pat, from);
  if (at == std::string::npos) return fallback;
  return std::strtod(line.c_str() + at + pat.size(), nullptr);
}

// All `"name":number` pairs of the flat object following `"section":{`.
std::vector<std::pair<std::string, double>> ExtractSection(
    const std::string& line, const char* section) {
  std::vector<std::pair<std::string, double>> pairs;
  std::string pat = "\"";
  pat += section;
  pat += "\":{";
  std::size_t at = line.find(pat);
  if (at == std::string::npos) return pairs;
  at += pat.size();
  while (at < line.size() && line[at] != '}') {
    if (line[at] == ',') {
      ++at;
      continue;
    }
    if (line[at] != '"') break;
    const std::size_t name_end = line.find('"', at + 1);
    if (name_end == std::string::npos || name_end + 1 >= line.size() ||
        line[name_end + 1] != ':') {
      break;
    }
    char* after = nullptr;
    const double v = std::strtod(line.c_str() + name_end + 2, &after);
    pairs.emplace_back(line.substr(at + 1, name_end - at - 1), v);
    at = static_cast<std::size_t>(after - line.c_str());
  }
  return pairs;
}

// --- check -----------------------------------------------------------------

// The deterministic prefix of a record: everything before the trailing
// ,"timings":{...} section, re-closed. Empty string = malformed line.
std::string DeterministicPrefix(const std::string& line) {
  const std::size_t at = line.find(kTimingsMarker);
  if (at == std::string::npos || line.back() != '}') return "";
  return line.substr(0, at) + "}";
}

int Check(const std::string& path_a, const std::string& path_b) {
  std::vector<std::string> a, b;
  if (!ReadLines(path_a, a) || !ReadLines(path_b, b)) return 1;
  if (a.size() != b.size()) {
    std::printf("CHECK FAIL: %s has %zu records, %s has %zu\n", path_a.c_str(),
                a.size(), path_b.c_str(), b.size());
    return 1;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (const auto* line : {&a[i], &b[i]}) {
      if (line->rfind(kSchemaPrefix, 0) != 0) {
        std::printf("CHECK FAIL: record %zu is not a gl.epoch.v1 line\n", i);
        return 1;
      }
    }
    const std::string na = DeterministicPrefix(a[i]);
    const std::string nb = DeterministicPrefix(b[i]);
    if (na.empty() || nb.empty()) {
      std::printf("CHECK FAIL: record %zu has no timings section\n", i);
      return 1;
    }
    if (na != nb) {
      std::printf("CHECK FAIL: record %zu differs outside timings\n  a: %s\n"
                  "  b: %s\n",
                  i, na.c_str(), nb.c_str());
      return 1;
    }
  }
  std::printf("CHECK OK: %zu records, deterministic sections byte-identical "
              "(timings ignored)\n",
              a.size());
  return 0;
}

// --- tables ----------------------------------------------------------------

void PrintTables(const std::vector<std::string>& lines) {
  struct PerScheduler {
    int epochs = 0;
    double wall_ms = 0.0;
    std::map<std::string, double> phase_ms;
    std::map<std::string, double> counters;
  };
  std::map<std::string, PerScheduler> by_scheduler;
  for (const auto& line : lines) {
    if (line.rfind(kSchemaPrefix, 0) != 0) continue;
    auto& agg = by_scheduler[ExtractString(line, "scheduler")];
    ++agg.epochs;
    const std::size_t timings_at = line.find(kTimingsMarker);
    agg.wall_ms += ExtractNumber(line, "wall_ms", 0.0,
                                 timings_at == std::string::npos ? 0
                                                                 : timings_at);
    for (const auto& [name, ms] : ExtractSection(line, "phases")) {
      agg.phase_ms[name] += ms;
    }
    for (const auto& [name, v] : ExtractSection(line, "counters")) {
      agg.counters[name] += v;
    }
  }
  if (by_scheduler.empty()) {
    std::printf("no gl.epoch.v1 records found\n");
    return;
  }

  gl::PrintBanner("per-policy epoch phase timings (total ms, informational)");
  for (const auto& [scheduler, agg] : by_scheduler) {
    gl::Table t({"phase", "total ms", "ms/epoch", "share"});
    for (const auto& [name, ms] : agg.phase_ms) {
      t.AddRow({name, gl::Table::Num(ms, 2),
                gl::Table::Num(ms / agg.epochs, 3),
                gl::Table::Pct(agg.wall_ms > 0 ? ms / agg.wall_ms : 0.0)});
    }
    t.AddRow({"(epoch wall)", gl::Table::Num(agg.wall_ms, 2),
              gl::Table::Num(agg.wall_ms / agg.epochs, 3), ""});
    std::printf("%s — %d epochs\n", scheduler.c_str(), agg.epochs);
    t.Print();
  }

  gl::PrintBanner("deterministic counter totals (sum of per-epoch deltas)");
  for (const auto& [scheduler, agg] : by_scheduler) {
    if (agg.counters.empty()) {
      std::printf("%s: no counters section (parallel run?)\n",
                  scheduler.c_str());
      continue;
    }
    gl::Table t({"counter", "total"});
    for (const auto& [name, v] : agg.counters) {
      t.AddRow({name, gl::Table::Int(static_cast<long long>(v))});
    }
    std::printf("%s\n", scheduler.c_str());
    t.Print();
  }
}

// --- profile / flame -------------------------------------------------------

// A Chrome trace re-read into TraceEvents. Owns the interned span names
// (TraceEvent carries const char*); the deque keeps their addresses stable.
struct ParsedTrace {
  std::deque<std::string> names;
  std::vector<gl::obs::TraceEvent> events;
};

// Re-parses a chrome://tracing JSON file written by Trace::WriteChromeJson
// (tolerating other writers' "X" complete events too). The export drops the
// per-thread nesting depth, so it is reconstructed per tid from interval
// containment: sorted by (start asc, dur desc), a span's depth is the number
// of still-open spans that contain it.
bool ParseChromeTrace(const std::string& path, ParsedTrace& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "gl_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::map<std::string, const std::string*> interned;
  const std::string pat = "{\"name\":\"";
  std::size_t at = text.find(pat);
  while (at != std::string::npos) {
    const std::size_t next = text.find(pat, at + pat.size());
    const std::string chunk =
        text.substr(at, (next == std::string::npos ? text.size() : next) - at);
    at = next;
    if (chunk.find("\"ph\":\"X\"") == std::string::npos) continue;
    gl::obs::TraceEvent ev;
    const std::string name = ExtractString(chunk, "name");
    auto it = interned.find(name);
    if (it == interned.end()) {
      out.names.push_back(name);
      it = interned.emplace(name, &out.names.back()).first;
    }
    ev.name = it->second->c_str();
    ev.start_us = ExtractNumber(chunk, "ts", 0.0);
    ev.dur_us = ExtractNumber(chunk, "dur", 0.0);
    ev.cpu_us = ExtractNumber(chunk, "cpu", -1.0);
    ev.parallel_lane = ExtractNumber(chunk, "lane", 0.0) != 0.0;
    ev.tid = static_cast<int>(ExtractNumber(chunk, "tid", 0.0));
    ev.arg = static_cast<std::int64_t>(ExtractNumber(
        chunk, "arg", static_cast<double>(gl::obs::TraceEvent::kNoArg)));
    out.events.push_back(ev);
  }
  if (out.events.empty()) {
    std::fprintf(stderr, "gl_report: no complete (\"ph\":\"X\") events in %s\n",
                 path.c_str());
    return false;
  }
  // Depth reconstruction: per tid, (start asc, dur desc) visits containers
  // before their contents; the stack of still-open end times is the depth.
  std::sort(out.events.begin(), out.events.end(),
            [](const gl::obs::TraceEvent& a, const gl::obs::TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.dur_us > b.dur_us;
            });
  constexpr double kTolUs = 1e-6;
  std::vector<double> open_ends;
  int tid = std::numeric_limits<int>::min();
  for (auto& ev : out.events) {
    if (ev.tid != tid) {
      tid = ev.tid;
      open_ends.clear();
    }
    while (!open_ends.empty() &&
           ev.start_us + ev.dur_us > open_ends.back() + kTolUs) {
      open_ends.pop_back();
    }
    ev.depth = static_cast<int>(open_ends.size());
    open_ends.push_back(ev.start_us + ev.dur_us);
  }
  return true;
}

int ProfileCmd(const std::string& path, const std::string& root_name,
               int top_n) {
  ParsedTrace trace;
  if (!ParseChromeTrace(path, trace)) return 1;
  const gl::obs::Profile prof = gl::obs::BuildProfile(trace.events);

  gl::PrintBanner("top self-time frames (informational)");
  gl::Table flat({"frame", "count", "self ms", "total ms", "self share"});
  double self_total_us = 0.0;
  for (const auto& e : prof.flat) self_total_us += e.self_us;
  int shown = 0;
  for (const auto& e : prof.flat) {
    if (shown++ >= top_n) break;
    flat.AddRow({e.name, gl::Table::Int(static_cast<long long>(e.count)),
                 gl::Table::Num(e.self_us / 1000.0, 3),
                 gl::Table::Num(e.total_us / 1000.0, 3),
                 gl::Table::Pct(self_total_us > 0 ? e.self_us / self_total_us
                                                  : 0.0)});
  }
  flat.Print();

  const gl::obs::CriticalPathResult cp =
      gl::obs::ComputeCriticalPath(trace.events, root_name);
  if (cp.root_name.empty()) {
    std::printf("no root span%s%s found for a critical path\n",
                root_name.empty() ? "" : " named ", root_name.c_str());
    return 0;
  }
  gl::PrintBanner("critical path (longest non-overlappable chain)");
  gl::Table steps({"step", "arg", "ms", "width"});
  for (const auto& s : cp.steps) {
    steps.AddRow({s.name,
                  s.arg == gl::obs::TraceEvent::kNoArg
                      ? std::string("-")
                      : gl::Table::Int(static_cast<long long>(s.arg)),
                  gl::Table::Num(s.ms, 3), gl::Table::Int(s.width)});
  }
  steps.Print();
  std::printf(
      "root %s: %.3f ms wall; critical path %.3f ms; serial (width-1) steps "
      "%.3f ms = %.1f%% of root wall\n",
      cp.root_name.c_str(), cp.root_ms, cp.path_ms, cp.serial_ms,
      cp.root_ms > 0 ? 100.0 * cp.serial_ms / cp.root_ms : 0.0);
  return 0;
}

int FlameCmd(const std::string& path, const std::string& out_path) {
  ParsedTrace trace;
  if (!ParseChromeTrace(path, trace)) return 1;
  const std::string collapsed =
      gl::obs::CollapsedStacks(gl::obs::BuildProfile(trace.events));
  if (out_path.empty()) {
    std::fwrite(collapsed.data(), 1, collapsed.size(), stdout);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "gl_report: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  out << collapsed;
  std::printf("wrote %zu collapsed-stack bytes to %s\n", collapsed.size(),
              out_path.c_str());
  return 0;
}

// --- diff ------------------------------------------------------------------

// Relative drift of b against a, on a scale where 0.1 = 10%.
double Drift(double a, double b) {
  const double base = std::max(std::fabs(a), 1e-12);
  return std::fabs(b - a) / base;
}

struct DiffCounts {
  int determ_diffs = 0;
  int drift_flags = 0;
};

// One comparison row. Deterministic rows flag any difference at all; the
// informational ones flag only drift beyond the threshold.
void DiffRow(gl::Table& t, const std::string& name, double a, double b,
             bool deterministic, double threshold, DiffCounts& counts) {
  std::string flag;
  if (deterministic) {
    if (a != b) {
      flag = "DIFF";
      ++counts.determ_diffs;
    }
  } else if (Drift(a, b) > threshold) {
    flag = "DRIFT";
    ++counts.drift_flags;
  }
  t.AddRow({name, gl::Table::Num(a, 3), gl::Table::Num(b, 3),
            gl::Table::Num(b - a, 3), flag});
}

// Per-scheduler aggregate of one gl.epoch.v1 stream.
struct SchedulerAgg {
  int epochs = 0;
  std::map<std::string, double> metrics;   // deterministic sums
  std::map<std::string, double> counters;  // deterministic sums
  double wall_ms = 0.0;                    // informational sum
  std::map<std::string, double> gauges;    // informational sums
};

std::map<std::string, SchedulerAgg> AggregateJsonl(
    const std::vector<std::string>& lines) {
  std::map<std::string, SchedulerAgg> by_scheduler;
  for (const auto& line : lines) {
    if (line.rfind(kSchemaPrefix, 0) != 0) continue;
    auto& agg = by_scheduler[ExtractString(line, "scheduler")];
    ++agg.epochs;
    for (const auto& [name, v] : ExtractSection(line, "metrics")) {
      agg.metrics[name] += v;
    }
    for (const auto& [name, v] : ExtractSection(line, "counters")) {
      agg.counters[name] += v;
    }
    const std::size_t timings_at = line.find(kTimingsMarker);
    agg.wall_ms += ExtractNumber(
        line, "wall_ms", 0.0,
        timings_at == std::string::npos ? 0 : timings_at);
    for (const auto& [name, v] : ExtractSection(line, "gauges")) {
      agg.gauges[name] += v;
    }
  }
  return by_scheduler;
}

int DiffJsonl(const std::vector<std::string>& a,
              const std::vector<std::string>& b, double threshold) {
  const auto aggs_a = AggregateJsonl(a);
  const auto aggs_b = AggregateJsonl(b);
  DiffCounts counts;
  for (const auto& [scheduler, agg_a] : aggs_a) {
    const auto it = aggs_b.find(scheduler);
    if (it == aggs_b.end()) {
      std::printf("%s: only in A\n", scheduler.c_str());
      continue;
    }
    const auto& agg_b = it->second;
    std::printf("%s — %d vs %d epochs\n", scheduler.c_str(), agg_a.epochs,
                agg_b.epochs);
    gl::Table t({"metric", "A", "B", "delta", "flag"});
    DiffRow(t, "epochs", agg_a.epochs, agg_b.epochs, true, threshold, counts);
    for (const auto& [name, va] : agg_a.metrics) {
      const auto vb = agg_b.metrics.find(name);
      DiffRow(t, name, va, vb == agg_b.metrics.end() ? 0.0 : vb->second, true,
              threshold, counts);
    }
    for (const auto& [name, va] : agg_a.counters) {
      const auto vb = agg_b.counters.find(name);
      DiffRow(t, "counter " + name, va,
              vb == agg_b.counters.end() ? 0.0 : vb->second, true, threshold,
              counts);
    }
    DiffRow(t, "wall_ms (info)", agg_a.wall_ms, agg_b.wall_ms, false,
            threshold, counts);
    for (const auto& [name, va] : agg_a.gauges) {
      const auto vb = agg_b.gauges.find(name);
      if (vb == agg_b.gauges.end()) continue;
      DiffRow(t, "gauge " + name + " (info)", va / agg_a.epochs,
              vb->second / agg_b.epochs, false, threshold, counts);
    }
    t.Print();
  }
  for (const auto& [scheduler, agg_b] : aggs_b) {
    if (aggs_a.find(scheduler) == aggs_a.end()) {
      std::printf("%s: only in B\n", scheduler.c_str());
    }
  }
  std::printf("diff: %d deterministic difference(s), %d informational "
              "drift flag(s) beyond %.0f%%\n",
              counts.determ_diffs, counts.drift_flags, 100.0 * threshold);
  // Deterministic sections must match byte-for-meaning between same-seed
  // runs (DESIGN.md §8); drift in the informational tail never fails the
  // diff — shared CI runners make wall time an unreliable signal.
  return counts.determ_diffs > 0 ? 1 : 0;
}

// One bench --json record; the telemetry fields are optional (older files
// omit them) and compare only when present in both inputs.
struct BenchRecord {
  double wall_ms = 0.0;
  double median_wall_ms = 0.0;
  double parallel_efficiency = -1.0;  // < 0 = absent
  double critical_path_ms = -1.0;
  double peak_bytes = -1.0;
};

std::map<std::string, BenchRecord> ParseBenchJson(const std::string& text) {
  std::map<std::string, BenchRecord> records;
  const std::string pat = "{\"name\":\"";
  std::size_t at = text.find(pat);
  while (at != std::string::npos) {
    const std::size_t next = text.find(pat, at + pat.size());
    const std::string chunk =
        text.substr(at, (next == std::string::npos ? text.size() : next) - at);
    at = next;
    const std::string key =
        ExtractString(chunk, "name") + " t" +
        std::to_string(static_cast<int>(ExtractNumber(chunk, "threads", 0.0)));
    BenchRecord r;
    r.wall_ms = ExtractNumber(chunk, "wall_ms", 0.0);
    r.median_wall_ms = ExtractNumber(chunk, "median_wall_ms", 0.0);
    r.parallel_efficiency = ExtractNumber(chunk, "parallel_efficiency", -1.0);
    r.critical_path_ms = ExtractNumber(chunk, "critical_path_ms", -1.0);
    r.peak_bytes = ExtractNumber(chunk, "peak_bytes", -1.0);
    records[key] = r;
  }
  return records;
}

int DiffBench(const std::string& text_a, const std::string& text_b,
              double threshold) {
  const auto recs_a = ParseBenchJson(text_a);
  const auto recs_b = ParseBenchJson(text_b);
  DiffCounts counts;
  gl::Table t({"configuration / metric", "A", "B", "delta", "flag"});
  for (const auto& [key, ra] : recs_a) {
    const auto it = recs_b.find(key);
    if (it == recs_b.end()) {
      std::printf("%s: only in A\n", key.c_str());
      continue;
    }
    const auto& rb = it->second;
    DiffRow(t, key + " median_wall_ms", ra.median_wall_ms, rb.median_wall_ms,
            false, threshold, counts);
    if (ra.parallel_efficiency >= 0 && rb.parallel_efficiency >= 0) {
      DiffRow(t, key + " parallel_efficiency", ra.parallel_efficiency,
              rb.parallel_efficiency, false, threshold, counts);
    }
    if (ra.critical_path_ms >= 0 && rb.critical_path_ms >= 0) {
      DiffRow(t, key + " critical_path_ms", ra.critical_path_ms,
              rb.critical_path_ms, false, threshold, counts);
    }
    if (ra.peak_bytes >= 0 && rb.peak_bytes >= 0) {
      DiffRow(t, key + " peak_bytes", ra.peak_bytes, rb.peak_bytes, false,
              threshold, counts);
    }
  }
  for (const auto& [key, rb] : recs_b) {
    if (recs_a.find(key) == recs_a.end()) {
      std::printf("%s: only in B\n", key.c_str());
    }
  }
  t.Print();
  std::printf("diff: %d informational drift flag(s) beyond %.0f%%\n",
              counts.drift_flags, 100.0 * threshold);
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b,
         double threshold) {
  std::vector<std::string> lines_a, lines_b;
  if (!ReadLines(path_a, lines_a) || !ReadLines(path_b, lines_b)) return 2;
  if (lines_a.empty() || lines_b.empty()) {
    std::fprintf(stderr, "gl_report diff: empty input\n");
    return 2;
  }
  const bool jsonl_a = lines_a.front().rfind(kSchemaPrefix, 0) == 0;
  const bool jsonl_b = lines_b.front().rfind(kSchemaPrefix, 0) == 0;
  if (jsonl_a != jsonl_b) {
    std::fprintf(stderr,
                 "gl_report diff: inputs are different kinds (one gl.epoch.v1 "
                 "stream, one bench JSON)\n");
    return 2;
  }
  if (jsonl_a) return DiffJsonl(lines_a, lines_b, threshold);
  std::string text_a, text_b;
  for (const auto& l : lines_a) text_a += l;
  for (const auto& l : lines_b) text_b += l;
  if (text_a.find('[') == std::string::npos ||
      text_b.find('[') == std::string::npos) {
    std::fprintf(stderr, "gl_report diff: inputs are neither gl.epoch.v1 "
                         "streams nor bench JSON arrays\n");
    return 2;
  }
  return DiffBench(text_a, text_b, threshold);
}

// --- run -------------------------------------------------------------------

struct RunArgs {
  std::string scenario = "twitter";
  std::string schedulers = "goldilocks,borg";
  int epochs = -1;
  std::uint64_t seed = 0xfeed;
  std::string jsonl;  // empty = keep in memory only
  std::string trace;  // empty = no Chrome trace file
};

int Run(const RunArgs& args) {
  std::unique_ptr<gl::Scenario> scenario;
  if (args.scenario == "twitter") {
    gl::TwitterScenarioOptions opts;
    if (args.epochs > 0) opts.num_epochs = args.epochs;
    scenario = gl::MakeTwitterCachingScenario(opts);
  } else if (args.scenario == "azure") {
    gl::AzureScenarioOptions opts;
    if (args.epochs > 0) opts.num_epochs = args.epochs;
    scenario = gl::MakeAzureMixScenario(opts);
  } else {
    std::fprintf(stderr, "unknown scenario: %s\n", args.scenario.c_str());
    return 2;
  }
  const auto names = SplitCommas(args.schedulers);
  if (names.empty()) {
    std::fprintf(stderr, "no schedulers given\n");
    return 2;
  }
  for (const auto& name : names) {
    if (gl::MakeNamedScheduler(name) == nullptr) {
      std::fprintf(stderr, "unknown scheduler: %s\n", name.c_str());
      return 2;
    }
  }

  std::string sink;
  std::unique_ptr<gl::obs::RunLogger> logger;
  if (args.jsonl.empty()) {
    logger = std::make_unique<gl::obs::RunLogger>(&sink);
  } else {
    logger = std::make_unique<gl::obs::RunLogger>(args.jsonl);
  }
  if (!logger->ok()) return 1;

  gl::obs::Trace trace;
  trace.Activate();

  const gl::Topology topo = gl::Topology::Testbed16();
  gl::RunnerOptions opts;
  opts.record_state_hashes = true;
  opts.obs.logger = logger.get();
  const gl::ExperimentRunner runner(*scenario, topo, opts);

  std::printf("gl_report run: scenario=%s epochs=%d schedulers=%s\n",
              scenario->name().c_str(), scenario->num_epochs(),
              args.schedulers.c_str());
  std::vector<gl::ExperimentResult> results;
  for (const auto& name : names) {
    auto scheduler = gl::MakeNamedScheduler(name, 0.70, args.seed);
    results.push_back(runner.Run(*scheduler));
  }
  trace.Deactivate();

  gl::PrintBanner("per-policy averages");
  gl::Table avg({"policy", "servers", "power W", "TCT ms", "J/req",
                 "epoch ms"});
  for (const auto& r : results) {
    const auto m = r.Average();
    avg.AddRow({r.scheduler, gl::Table::Int(m.active_servers),
                gl::Table::Num(m.total_watts, 0),
                gl::Table::Num(m.mean_tct_ms, 2),
                gl::Table::Num(m.energy_per_request_j, 4),
                gl::Table::Num(m.wall_ms, 3)});
  }
  avg.Print();

  gl::PrintBanner("trace phase summary (inclusive ms, informational)");
  gl::Table phases({"span", "count", "total ms", "max ms"});
  for (const auto& s : trace.Summary()) {
    phases.AddRow({s.name, gl::Table::Int(static_cast<long long>(s.count)),
                   gl::Table::Num(s.total_ms, 2), gl::Table::Num(s.max_ms, 3)});
  }
  phases.Print();

  if (args.jsonl.empty()) {
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < sink.size()) {
      const std::size_t nl = sink.find('\n', start);
      const std::size_t end = nl == std::string::npos ? sink.size() : nl;
      if (end > start) lines.push_back(sink.substr(start, end - start));
      start = end + 1;
    }
    PrintTables(lines);
  } else {
    std::printf("wrote %llu JSONL records to %s\n",
                static_cast<unsigned long long>(logger->lines_written()),
                args.jsonl.c_str());
  }
  if (!args.trace.empty()) {
    if (!trace.WriteChromeJson(args.trace)) return 1;
    std::printf("wrote Chrome trace to %s (load at chrome://tracing)\n",
                args.trace.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gl_report run   [--scenario=twitter|azure] [--schedulers=a,b,...]\n"
      "                  [--epochs=N] [--seed=N] [--jsonl=PATH] "
      "[--trace=PATH]\n"
      "  gl_report tables FILE.jsonl\n"
      "  gl_report check  A.jsonl B.jsonl\n"
      "  gl_report profile TRACE.json [--root=NAME] [--top=N]\n"
      "  gl_report flame  TRACE.json [--out=PATH]\n"
      "  gl_report diff   A B [--threshold=FRACTION]   (two gl.epoch.v1\n"
      "                   streams or two bench --json files; default 0.10)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string mode = argv[1];

  if (mode == "check") {
    if (argc != 4) return Usage();
    return Check(argv[2], argv[3]);
  }
  if (mode == "tables") {
    if (argc != 3) return Usage();
    std::vector<std::string> lines;
    if (!ReadLines(argv[2], lines)) return 1;
    PrintTables(lines);
    return 0;
  }
  if (mode == "profile") {
    if (argc < 3) return Usage();
    std::string root, value;
    int top_n = 15;
    for (int i = 3; i < argc; ++i) {
      if (ParseFlag(argv[i], "--root=", root)) continue;
      if (ParseFlag(argv[i], "--top=", value)) {
        top_n = std::max(1, std::atoi(value.c_str()));
        continue;
      }
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
    return ProfileCmd(argv[2], root, top_n);
  }
  if (mode == "flame") {
    if (argc < 3) return Usage();
    std::string out_path;
    for (int i = 3; i < argc; ++i) {
      if (ParseFlag(argv[i], "--out=", out_path)) continue;
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
    return FlameCmd(argv[2], out_path);
  }
  if (mode == "diff") {
    if (argc < 4) return Usage();
    double threshold = 0.10;
    std::string value;
    for (int i = 4; i < argc; ++i) {
      if (ParseFlag(argv[i], "--threshold=", value)) {
        threshold = std::strtod(value.c_str(), nullptr);
        continue;
      }
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
    return Diff(argv[2], argv[3], threshold);
  }
  if (mode == "run") {
    RunArgs args;
    for (int i = 2; i < argc; ++i) {
      std::string value;
      if (ParseFlag(argv[i], "--scenario=", args.scenario) ||
          ParseFlag(argv[i], "--schedulers=", args.schedulers) ||
          ParseFlag(argv[i], "--jsonl=", args.jsonl) ||
          ParseFlag(argv[i], "--trace=", args.trace)) {
        continue;
      }
      if (ParseFlag(argv[i], "--epochs=", value)) {
        args.epochs = std::atoi(value.c_str());
        continue;
      }
      if (ParseFlag(argv[i], "--seed=", value)) {
        args.seed = std::strtoull(value.c_str(), nullptr, 0);
        continue;
      }
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
    return Run(args);
  }
  return Usage();
}
