// Observability report tool for "gl.epoch.v1" JSONL run logs.
//
//   gl_report run   [--scenario=twitter|azure] [--schedulers=a,b,...]
//                   [--epochs=N] [--seed=N] [--jsonl=PATH] [--trace=PATH]
//   gl_report tables FILE.jsonl
//   gl_report check  A.jsonl B.jsonl
//
// `run` executes the named policies (default: goldilocks,borg) over the
// scenario with observability enabled: it streams one JSONL record per
// epoch, collects a trace of every instrumented phase, prints the flat
// per-phase timing table plus per-policy averages, and — with --trace= —
// writes a Chrome trace loadable at chrome://tracing.
//
// `tables` re-derives the timing and counter tables from an existing JSONL
// file, so a logged run can be summarized later without re-running it.
//
// `check` diffs two JSONL streams under the determinism contract: every
// byte outside the informational "timings" section must match (DESIGN.md
// §10). It also validates the schema tag on every line. Exit 0 = identical,
// 1 = divergent/invalid, 2 = bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/scheduler_factory.h"
#include "obs/run_logger.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "workload/scenarios.h"

namespace {

constexpr const char* kTimingsMarker = ",\"timings\":";
constexpr const char* kSchemaPrefix = "{\"schema\":\"gl.epoch.v1\"";

bool ParseFlag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  out = arg + n;
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) parts.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

bool ReadLines(const std::string& path, std::vector<std::string>& lines) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "gl_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return true;
}

// --- mini extractors for the fixed "gl.epoch.v1" line layout ---------------
// The emitter is our own JsonWriter with a fixed key order, so targeted
// substring scans are exact — this is not a general JSON parser.

// Value of a `"key":"string"` pair, or "" when absent.
std::string ExtractString(const std::string& line, const char* key) {
  std::string pat = "\"";
  pat += key;
  pat += "\":\"";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + pat.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

// Value of a `"key":number` pair at/after `from`, or fallback when absent.
double ExtractNumber(const std::string& line, const char* key, double fallback,
                     std::size_t from = 0) {
  std::string pat = "\"";
  pat += key;
  pat += "\":";
  const std::size_t at = line.find(pat, from);
  if (at == std::string::npos) return fallback;
  return std::strtod(line.c_str() + at + pat.size(), nullptr);
}

// All `"name":number` pairs of the flat object following `"section":{`.
std::vector<std::pair<std::string, double>> ExtractSection(
    const std::string& line, const char* section) {
  std::vector<std::pair<std::string, double>> pairs;
  std::string pat = "\"";
  pat += section;
  pat += "\":{";
  std::size_t at = line.find(pat);
  if (at == std::string::npos) return pairs;
  at += pat.size();
  while (at < line.size() && line[at] != '}') {
    if (line[at] == ',') {
      ++at;
      continue;
    }
    if (line[at] != '"') break;
    const std::size_t name_end = line.find('"', at + 1);
    if (name_end == std::string::npos || name_end + 1 >= line.size() ||
        line[name_end + 1] != ':') {
      break;
    }
    char* after = nullptr;
    const double v = std::strtod(line.c_str() + name_end + 2, &after);
    pairs.emplace_back(line.substr(at + 1, name_end - at - 1), v);
    at = static_cast<std::size_t>(after - line.c_str());
  }
  return pairs;
}

// --- check -----------------------------------------------------------------

// The deterministic prefix of a record: everything before the trailing
// ,"timings":{...} section, re-closed. Empty string = malformed line.
std::string DeterministicPrefix(const std::string& line) {
  const std::size_t at = line.find(kTimingsMarker);
  if (at == std::string::npos || line.back() != '}') return "";
  return line.substr(0, at) + "}";
}

int Check(const std::string& path_a, const std::string& path_b) {
  std::vector<std::string> a, b;
  if (!ReadLines(path_a, a) || !ReadLines(path_b, b)) return 1;
  if (a.size() != b.size()) {
    std::printf("CHECK FAIL: %s has %zu records, %s has %zu\n", path_a.c_str(),
                a.size(), path_b.c_str(), b.size());
    return 1;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (const auto* line : {&a[i], &b[i]}) {
      if (line->rfind(kSchemaPrefix, 0) != 0) {
        std::printf("CHECK FAIL: record %zu is not a gl.epoch.v1 line\n", i);
        return 1;
      }
    }
    const std::string na = DeterministicPrefix(a[i]);
    const std::string nb = DeterministicPrefix(b[i]);
    if (na.empty() || nb.empty()) {
      std::printf("CHECK FAIL: record %zu has no timings section\n", i);
      return 1;
    }
    if (na != nb) {
      std::printf("CHECK FAIL: record %zu differs outside timings\n  a: %s\n"
                  "  b: %s\n",
                  i, na.c_str(), nb.c_str());
      return 1;
    }
  }
  std::printf("CHECK OK: %zu records, deterministic sections byte-identical "
              "(timings ignored)\n",
              a.size());
  return 0;
}

// --- tables ----------------------------------------------------------------

void PrintTables(const std::vector<std::string>& lines) {
  struct PerScheduler {
    int epochs = 0;
    double wall_ms = 0.0;
    std::map<std::string, double> phase_ms;
    std::map<std::string, double> counters;
  };
  std::map<std::string, PerScheduler> by_scheduler;
  for (const auto& line : lines) {
    if (line.rfind(kSchemaPrefix, 0) != 0) continue;
    auto& agg = by_scheduler[ExtractString(line, "scheduler")];
    ++agg.epochs;
    const std::size_t timings_at = line.find(kTimingsMarker);
    agg.wall_ms += ExtractNumber(line, "wall_ms", 0.0,
                                 timings_at == std::string::npos ? 0
                                                                 : timings_at);
    for (const auto& [name, ms] : ExtractSection(line, "phases")) {
      agg.phase_ms[name] += ms;
    }
    for (const auto& [name, v] : ExtractSection(line, "counters")) {
      agg.counters[name] += v;
    }
  }
  if (by_scheduler.empty()) {
    std::printf("no gl.epoch.v1 records found\n");
    return;
  }

  gl::PrintBanner("per-policy epoch phase timings (total ms, informational)");
  for (const auto& [scheduler, agg] : by_scheduler) {
    gl::Table t({"phase", "total ms", "ms/epoch", "share"});
    for (const auto& [name, ms] : agg.phase_ms) {
      t.AddRow({name, gl::Table::Num(ms, 2),
                gl::Table::Num(ms / agg.epochs, 3),
                gl::Table::Pct(agg.wall_ms > 0 ? ms / agg.wall_ms : 0.0)});
    }
    t.AddRow({"(epoch wall)", gl::Table::Num(agg.wall_ms, 2),
              gl::Table::Num(agg.wall_ms / agg.epochs, 3), ""});
    std::printf("%s — %d epochs\n", scheduler.c_str(), agg.epochs);
    t.Print();
  }

  gl::PrintBanner("deterministic counter totals (sum of per-epoch deltas)");
  for (const auto& [scheduler, agg] : by_scheduler) {
    if (agg.counters.empty()) {
      std::printf("%s: no counters section (parallel run?)\n",
                  scheduler.c_str());
      continue;
    }
    gl::Table t({"counter", "total"});
    for (const auto& [name, v] : agg.counters) {
      t.AddRow({name, gl::Table::Int(static_cast<long long>(v))});
    }
    std::printf("%s\n", scheduler.c_str());
    t.Print();
  }
}

// --- run -------------------------------------------------------------------

struct RunArgs {
  std::string scenario = "twitter";
  std::string schedulers = "goldilocks,borg";
  int epochs = -1;
  std::uint64_t seed = 0xfeed;
  std::string jsonl;  // empty = keep in memory only
  std::string trace;  // empty = no Chrome trace file
};

int Run(const RunArgs& args) {
  std::unique_ptr<gl::Scenario> scenario;
  if (args.scenario == "twitter") {
    gl::TwitterScenarioOptions opts;
    if (args.epochs > 0) opts.num_epochs = args.epochs;
    scenario = gl::MakeTwitterCachingScenario(opts);
  } else if (args.scenario == "azure") {
    gl::AzureScenarioOptions opts;
    if (args.epochs > 0) opts.num_epochs = args.epochs;
    scenario = gl::MakeAzureMixScenario(opts);
  } else {
    std::fprintf(stderr, "unknown scenario: %s\n", args.scenario.c_str());
    return 2;
  }
  const auto names = SplitCommas(args.schedulers);
  if (names.empty()) {
    std::fprintf(stderr, "no schedulers given\n");
    return 2;
  }
  for (const auto& name : names) {
    if (gl::MakeNamedScheduler(name) == nullptr) {
      std::fprintf(stderr, "unknown scheduler: %s\n", name.c_str());
      return 2;
    }
  }

  std::string sink;
  std::unique_ptr<gl::obs::RunLogger> logger;
  if (args.jsonl.empty()) {
    logger = std::make_unique<gl::obs::RunLogger>(&sink);
  } else {
    logger = std::make_unique<gl::obs::RunLogger>(args.jsonl);
  }
  if (!logger->ok()) return 1;

  gl::obs::Trace trace;
  trace.Activate();

  const gl::Topology topo = gl::Topology::Testbed16();
  gl::RunnerOptions opts;
  opts.record_state_hashes = true;
  opts.obs.logger = logger.get();
  const gl::ExperimentRunner runner(*scenario, topo, opts);

  std::printf("gl_report run: scenario=%s epochs=%d schedulers=%s\n",
              scenario->name().c_str(), scenario->num_epochs(),
              args.schedulers.c_str());
  std::vector<gl::ExperimentResult> results;
  for (const auto& name : names) {
    auto scheduler = gl::MakeNamedScheduler(name, 0.70, args.seed);
    results.push_back(runner.Run(*scheduler));
  }
  trace.Deactivate();

  gl::PrintBanner("per-policy averages");
  gl::Table avg({"policy", "servers", "power W", "TCT ms", "J/req",
                 "epoch ms"});
  for (const auto& r : results) {
    const auto m = r.Average();
    avg.AddRow({r.scheduler, gl::Table::Int(m.active_servers),
                gl::Table::Num(m.total_watts, 0),
                gl::Table::Num(m.mean_tct_ms, 2),
                gl::Table::Num(m.energy_per_request_j, 4),
                gl::Table::Num(m.wall_ms, 3)});
  }
  avg.Print();

  gl::PrintBanner("trace phase summary (inclusive ms, informational)");
  gl::Table phases({"span", "count", "total ms", "max ms"});
  for (const auto& s : trace.Summary()) {
    phases.AddRow({s.name, gl::Table::Int(static_cast<long long>(s.count)),
                   gl::Table::Num(s.total_ms, 2), gl::Table::Num(s.max_ms, 3)});
  }
  phases.Print();

  if (args.jsonl.empty()) {
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < sink.size()) {
      const std::size_t nl = sink.find('\n', start);
      const std::size_t end = nl == std::string::npos ? sink.size() : nl;
      if (end > start) lines.push_back(sink.substr(start, end - start));
      start = end + 1;
    }
    PrintTables(lines);
  } else {
    std::printf("wrote %llu JSONL records to %s\n",
                static_cast<unsigned long long>(logger->lines_written()),
                args.jsonl.c_str());
  }
  if (!args.trace.empty()) {
    if (!trace.WriteChromeJson(args.trace)) return 1;
    std::printf("wrote Chrome trace to %s (load at chrome://tracing)\n",
                args.trace.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gl_report run   [--scenario=twitter|azure] [--schedulers=a,b,...]\n"
      "                  [--epochs=N] [--seed=N] [--jsonl=PATH] "
      "[--trace=PATH]\n"
      "  gl_report tables FILE.jsonl\n"
      "  gl_report check  A.jsonl B.jsonl\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string mode = argv[1];

  if (mode == "check") {
    if (argc != 4) return Usage();
    return Check(argv[2], argv[3]);
  }
  if (mode == "tables") {
    if (argc != 3) return Usage();
    std::vector<std::string> lines;
    if (!ReadLines(argv[2], lines)) return 1;
    PrintTables(lines);
    return 0;
  }
  if (mode == "run") {
    RunArgs args;
    for (int i = 2; i < argc; ++i) {
      std::string value;
      if (ParseFlag(argv[i], "--scenario=", args.scenario) ||
          ParseFlag(argv[i], "--schedulers=", args.schedulers) ||
          ParseFlag(argv[i], "--jsonl=", args.jsonl) ||
          ParseFlag(argv[i], "--trace=", args.trace)) {
        continue;
      }
      if (ParseFlag(argv[i], "--epochs=", value)) {
        args.epochs = std::atoi(value.c_str());
        continue;
      }
      if (ParseFlag(argv[i], "--seed=", value)) {
        args.seed = std::strtoull(value.c_str(), nullptr, 0);
        continue;
      }
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
    return Run(args);
  }
  return Usage();
}
