#!/usr/bin/env python3
"""perf_check -- compare a fresh bench run against BENCH_partitioner.json.

CI's perf-smoke job runs bench_partitioner_scale --json on the PR build and
feeds the result here together with the committed reference at the repo
root. Each fresh record is matched to the reference's "current" records by
(name, threads) and the medians are compared. A median more than
--threshold (default 15%) slower than the reference emits a GitHub Actions
::warning:: annotation -- CI runners are shared and noisy, so a regression
warns rather than fails; a real regression shows up as a persistent warning
across pushes and is investigated by re-measuring locally (EXPERIMENTS.md,
"Partitioner scalability").

Exit status is always 0 unless the inputs are unreadable or no records
matched (exit 2), so the job cannot silently pass on a malformed run.

Usage:
    tools/perf_check.py --reference BENCH_partitioner.json \
                        --fresh fresh.json [--threshold 0.15]
"""

import argparse
import json
import sys


def load_records(path, *, reference):
    """Returns {(name, threads): record} from either file shape.

    The committed reference wraps its records under current.records; a raw
    bench --json output is a flat list.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if reference:
        records = doc["current"]["records"]
    else:
        records = doc
    return {(r["name"], r["threads"]): r for r in records}


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--reference", required=True,
                    help="committed BENCH_partitioner.json")
    ap.add_argument("--fresh", required=True,
                    help="bench_partitioner_scale --json output to check")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="warn when fresh median exceeds reference by this "
                         "fraction (default 0.15)")
    args = ap.parse_args(argv)

    try:
        ref = load_records(args.reference, reference=True)
        fresh = load_records(args.fresh, reference=False)
    except (OSError, KeyError, json.JSONDecodeError) as e:
        print(f"perf_check: cannot load inputs: {e}", file=sys.stderr)
        return 2

    matched = 0
    regressions = 0
    for key, fr in sorted(fresh.items()):
        rr = ref.get(key)
        if rr is None:
            print(f"perf_check: no reference for {key[0]} threads={key[1]}; "
                  "skipping")
            continue
        matched += 1
        ref_med = rr["median_wall_ms"]
        fresh_med = fr["median_wall_ms"]
        ratio = fresh_med / ref_med if ref_med > 0 else float("inf")
        line = (f"{key[0]} threads={key[1]}: median {fresh_med:.1f} ms "
                f"vs reference {ref_med:.1f} ms ({ratio:.2f}x)")
        if ratio > 1.0 + args.threshold:
            regressions += 1
            print(f"::warning title=partitioner perf regression::{line}")
        else:
            print(f"perf_check: OK {line}")

    if matched == 0:
        print("perf_check: no records matched the reference", file=sys.stderr)
        return 2
    print(f"perf_check: {matched} configs checked, "
          f"{regressions} above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
