#!/usr/bin/env python3
"""perf_check -- compare a fresh bench run against BENCH_partitioner.json.

CI's perf-smoke job runs bench_partitioner_scale --json on the PR build and
feeds the result here together with the committed reference at the repo
root. Each fresh record is matched to the reference's "current" records by
(name, threads) and the medians are compared. A median more than
--threshold (default 15%) slower than the reference emits a GitHub Actions
::warning:: annotation -- CI runners are shared and noisy, so a regression
warns rather than fails; a real regression shows up as a persistent warning
across pushes and is investigated by re-measuring locally (EXPERIMENTS.md,
"Partitioner scalability").

Beyond per-config medians, the thread sweep is checked for *scaling*
regressions: for every bench name present at both threads=1 and threads=8,
the fresh t8/t1 wall-ms ratio is compared to the reference's. A fresh ratio
more than --threshold above the reference's means parallel efficiency was
lost even if absolute times look fine (e.g. both got faster but the t8
speedup evaporated); that also warns rather than fails.

One check IS a hard gate: --serial-share-max. serial_share is the width-1
share of the instrumented run's critical path (serial_ms / path_ms, from
bench_partitioner_scale's cpu-time attribution) -- the Amdahl wall. Unlike
wall-clock medians it is a structural property of the trace, not of runner
load, so shared-runner noise is no excuse: when the flag is given, the
largest parallel configuration of the FRESH run (highest thread count,
then largest reference median) must keep serial_share at or below the
bound or the check exits 1 with a ::error:: annotation. Passing the flag
against a fresh run whose parallel records lack serial_share exits 2 --
the gate cannot silently pass on a bench too old to measure it.

Exit status is 0 unless the serial-share gate fails (exit 1) or the
inputs are unreadable, malformed, or no records matched (exit 2), so the
job cannot silently pass on a broken run.
Malformed inputs -- wrong top-level shape, records that are not objects,
missing or non-numeric fields -- produce a one-line error naming the file
and the offending record, never a traceback.

Usage:
    tools/perf_check.py --reference BENCH_partitioner.json \
                        --fresh fresh.json [--threshold 0.15] \
                        [--serial-share-max 0.5]
    tools/perf_check.py --self-test
"""

import argparse
import contextlib
import io
import json
import numbers
import os
import sys
import tempfile


class MalformedInput(Exception):
    """Input file exists and is JSON, but not bench-record shaped."""


#: Optional parallel-efficiency telemetry (ISSUE-9). Reported side by side
#: when a field is present and numeric in both the reference and the fresh
#: record, silently ignored otherwise -- older baselines predate them, and
#: they are informational (never a warning, never a gate).
TELEMETRY_FIELDS = ("parallel_efficiency", "critical_path_ms", "peak_bytes")


def _numeric(value):
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def _validate_records(records, path):
    """Returns {(name, threads): record}; raises MalformedInput otherwise."""
    if not isinstance(records, list):
        raise MalformedInput(f"{path}: records are {type(records).__name__}, "
                             "expected a list")
    if not records:
        raise MalformedInput(f"{path}: record list is empty")
    out = {}
    for i, r in enumerate(records):
        if not isinstance(r, dict):
            raise MalformedInput(f"{path}: record #{i} is "
                                 f"{type(r).__name__}, expected an object")
        for field in ("name", "threads", "median_wall_ms"):
            if field not in r:
                raise MalformedInput(f"{path}: record #{i} lacks '{field}'")
        if not isinstance(r["median_wall_ms"], numbers.Real) or \
                isinstance(r["median_wall_ms"], bool):
            raise MalformedInput(
                f"{path}: record #{i} ('{r['name']}') has non-numeric "
                f"median_wall_ms: {r['median_wall_ms']!r}")
        out[(r["name"], r["threads"])] = r
    return out


def load_records(path, *, reference):
    """Returns {(name, threads): record} from either file shape.

    The committed reference wraps its records under current.records; a raw
    bench --json output is a flat list.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if reference:
        if not isinstance(doc, dict) or \
                not isinstance(doc.get("current"), dict) or \
                "records" not in doc["current"]:
            raise MalformedInput(f"{path}: reference file lacks the "
                                 "current.records structure")
        records = doc["current"]["records"]
    else:
        records = doc
    return _validate_records(records, path)


def scaling_ratios(records):
    """Returns {name: t8_median / t1_median} for names with both configs."""
    out = {}
    for (name, threads), r in records.items():
        if threads == 1 and (name, 8) in records:
            t1 = r["median_wall_ms"]
            t8 = records[(name, 8)]["median_wall_ms"]
            if t1 > 0:
                out[name] = t8 / t1
    return out


def check_scaling(ref, fresh, threshold):
    """Warns when a fresh t8/t1 ratio exceeds the reference's by threshold.

    Returns (checked, warned). Warning-only, like the median check: shared
    runners make one-off wobble common, and a real scaling loss persists.
    """
    ref_ratios = scaling_ratios(ref)
    checked = warned = 0
    for name, fresh_ratio in sorted(scaling_ratios(fresh).items()):
        ref_ratio = ref_ratios.get(name)
        if ref_ratio is None:
            continue
        checked += 1
        line = (f"{name}: t8/t1 wall ratio {fresh_ratio:.2f} "
                f"vs reference {ref_ratio:.2f}")
        if fresh_ratio > ref_ratio * (1.0 + threshold):
            warned += 1
            print(f"::warning title=partitioner thread-scaling "
                  f"regression::{line}")
        else:
            print(f"perf_check: OK scaling {line}")
    return checked, warned


def check_serial_share(fresh, limit):
    """HARD gate: serial_share at the largest parallel config vs `limit`.

    The gated record is the fresh run's highest-thread-count configuration
    (ties broken by the larger median, i.e. the biggest problem), because
    that is where the Amdahl wall binds: a small-n config is allowed to be
    mostly serial, the flagship sweep point is not. Returns an exit code:
    0 pass, 1 gate failure, 2 when no parallel record carries a numeric
    serial_share (a bench too old to measure it must not pass the gate).
    """
    candidates = [r for r in fresh.values()
                  if r["threads"] > 1 and _numeric(r.get("serial_share"))]
    if not candidates:
        print("perf_check: --serial-share-max given but no parallel record "
              "has a numeric serial_share", file=sys.stderr)
        return 2
    gated = max(candidates,
                key=lambda r: (r["threads"], r["median_wall_ms"]))
    share = gated["serial_share"]
    line = (f"{gated['name']} threads={gated['threads']}: serial_share "
            f"{share:.3f} (limit {limit:.3f})")
    if share > limit:
        print(f"::error title=partitioner serial-share gate::{line}")
        return 1
    print(f"perf_check: OK serial-share {line}")
    return 0


def run(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--reference", required=True,
                    help="committed BENCH_partitioner.json")
    ap.add_argument("--fresh", required=True,
                    help="bench_partitioner_scale --json output to check")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="warn when fresh median exceeds reference by this "
                         "fraction (default 0.15)")
    ap.add_argument("--serial-share-max", type=float, default=None,
                    help="HARD gate: fail (exit 1) when serial_share at the "
                         "fresh run's largest parallel config exceeds this")
    args = ap.parse_args(argv)

    try:
        ref = load_records(args.reference, reference=True)
        fresh = load_records(args.fresh, reference=False)
    except (OSError, json.JSONDecodeError, MalformedInput) as e:
        print(f"perf_check: cannot load inputs: {e}", file=sys.stderr)
        return 2

    matched = 0
    regressions = 0
    for key, fr in sorted(fresh.items()):
        rr = ref.get(key)
        if rr is None:
            print(f"perf_check: no reference for {key[0]} threads={key[1]}; "
                  "skipping")
            continue
        matched += 1
        ref_med = rr["median_wall_ms"]
        fresh_med = fr["median_wall_ms"]
        ratio = fresh_med / ref_med if ref_med > 0 else float("inf")
        line = (f"{key[0]} threads={key[1]}: median {fresh_med:.1f} ms "
                f"vs reference {ref_med:.1f} ms ({ratio:.2f}x)")
        if ratio > 1.0 + args.threshold:
            regressions += 1
            print(f"::warning title=partitioner perf regression::{line}")
        else:
            print(f"perf_check: OK {line}")
        for field in TELEMETRY_FIELDS:
            fresh_v, ref_v = fr.get(field), rr.get(field)
            if _numeric(fresh_v) and _numeric(ref_v):
                print(f"perf_check: info {key[0]} threads={key[1]} "
                      f"{field} {fresh_v:.3f} vs reference {ref_v:.3f}")

    if matched == 0:
        print("perf_check: no records matched the reference", file=sys.stderr)
        return 2
    scaled, scale_warned = check_scaling(ref, fresh, args.threshold)
    gate_status = 0
    if args.serial_share_max is not None:
        gate_status = check_serial_share(fresh, args.serial_share_max)
    print(f"perf_check: {matched} configs checked, "
          f"{regressions} above threshold; {scaled} scaling ratios checked, "
          f"{scale_warned} above threshold")
    return gate_status


def self_test():
    """End-to-end checks through run(): good inputs pass, each malformed
    shape exits 2 with a message instead of a traceback."""
    good_rec = {"name": "bench", "threads": 1, "median_wall_ms": 10.0}
    good_ref = {"current": {"records": [good_rec]}}

    cases = [
        ("matching inputs pass", good_ref, [good_rec], 0),
        ("regressed fresh still exits 0 (warn-only)", good_ref,
         [dict(good_rec, median_wall_ms=100.0)], 0),
        ("empty fresh list", good_ref, [], 2),
        ("fresh is an object, not a list", good_ref, {"oops": 1}, 2),
        ("fresh record is not an object", good_ref, ["oops"], 2),
        ("fresh record lacks median", good_ref,
         [{"name": "bench", "threads": 1}], 2),
        ("fresh median is a string", good_ref,
         [dict(good_rec, median_wall_ms="fast")], 2),
        ("reference lacks current.records", {"current": {}}, [good_rec], 2),
        ("no key overlap", good_ref,
         [dict(good_rec, name="other")], 2),
    ]

    failures = 0
    with tempfile.TemporaryDirectory(prefix="perf_check_selftest_") as tmp:
        bad_json = os.path.join(tmp, "bad.json")
        with open(bad_json, "w", encoding="utf-8") as f:
            f.write("{not json")
        ref_path = os.path.join(tmp, "ref.json")
        fresh_path = os.path.join(tmp, "fresh.json")

        for label, ref_doc, fresh_doc, want in cases:
            with open(ref_path, "w", encoding="utf-8") as f:
                json.dump(ref_doc, f)
            with open(fresh_path, "w", encoding="utf-8") as f:
                json.dump(fresh_doc, f)
            got = run(["--reference", ref_path, "--fresh", fresh_path])
            status = "PASS" if got == want else "FAIL"
            failures += got != want
            print(f"{status} {label} (exit {got}, want {want})")

        for label, argv, want in [
            ("fresh file missing", ["--reference", ref_path, "--fresh",
                                    os.path.join(tmp, "nope.json")], 2),
            ("fresh file is not JSON", ["--reference", ref_path, "--fresh",
                                        bad_json], 2),
        ]:
            got = run(argv)
            status = "PASS" if got == want else "FAIL"
            failures += got != want
            print(f"{status} {label} (exit {got}, want {want})")

        # Thread-scaling check: the t8/t1 ratio regressing warns even when
        # every per-config median stays inside the threshold, and a uniform
        # slowdown (both configs +14%) leaves the ratio alone.
        def sweep(name, t1, t8):
            return [{"name": name, "threads": 1, "median_wall_ms": t1},
                    {"name": name, "threads": 8, "median_wall_ms": t8}]

        scale_ref = {"current": {"records": sweep("bench", 100.0, 50.0)}}
        scale_cases = [
            ("scaling ratio regression warns, exits 0",
             sweep("bench", 100.0, 60.0), True, 0),
            ("uniform slowdown keeps the ratio, no scaling warning",
             sweep("bench", 114.0, 57.0), False, 0),
            ("matching sweep is clean",
             sweep("bench", 100.0, 50.0), False, 0),
        ]
        for label, fresh_doc, want_warn, want in scale_cases:
            with open(ref_path, "w", encoding="utf-8") as f:
                json.dump(scale_ref, f)
            with open(fresh_path, "w", encoding="utf-8") as f:
                json.dump(fresh_doc, f)
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                got = run(["--reference", ref_path, "--fresh", fresh_path])
            warned = "thread-scaling" in out.getvalue()
            ok = got == want and warned == want_warn
            failures += not ok
            print(f"{'PASS' if ok else 'FAIL'} {label} "
                  f"(exit {got}, warn={warned})")

        # Telemetry carry-through: reported when present in both records,
        # silently ignored when either side lacks it (older baselines), and
        # a non-numeric value on one side never crashes or warns.
        telem = {"parallel_efficiency": 0.8, "critical_path_ms": 40.0,
                 "peak_bytes": 1024}
        telem_cases = [
            ("telemetry in both sides is reported",
             {"current": {"records": [dict(good_rec, **telem)]}},
             [dict(good_rec, **telem)], True, 0),
            ("telemetry only in fresh is ignored", good_ref,
             [dict(good_rec, **telem)], False, 0),
            ("telemetry only in reference is ignored",
             {"current": {"records": [dict(good_rec, **telem)]}},
             [good_rec], False, 0),
            ("non-numeric telemetry is ignored",
             {"current": {"records": [dict(good_rec, **telem)]}},
             [dict(good_rec, parallel_efficiency="broken")], False, 0),
        ]
        for label, ref_doc, fresh_doc, want_info, want in telem_cases:
            with open(ref_path, "w", encoding="utf-8") as f:
                json.dump(ref_doc, f)
            with open(fresh_path, "w", encoding="utf-8") as f:
                json.dump(fresh_doc, f)
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                got = run(["--reference", ref_path, "--fresh", fresh_path])
            has_info = "perf_check: info" in out.getvalue()
            ok = got == want and has_info == want_info
            failures += not ok
            print(f"{'PASS' if ok else 'FAIL'} {label} "
                  f"(exit {got}, info={has_info})")

        # Serial-share hard gate: exceeding the bound at the largest
        # parallel config exits 1 with an ::error::; a smaller parallel
        # config over the bound is NOT gated (only the flagship point is);
        # parallel records without the field exit 2 so an old bench binary
        # cannot slip past the gate; no flag means no gate.
        def share_rec(name, threads, median, share=None):
            r = {"name": name, "threads": threads, "median_wall_ms": median}
            if share is not None:
                r["serial_share"] = share
            return r

        share_ref = {"current": {"records": [
            share_rec("small", 8, 10.0), share_rec("big", 8, 100.0)]}}
        share_cases = [
            ("serial share under the bound passes",
             [share_rec("big", 8, 100.0, 0.4)], ["0.5"], False, 0),
            ("serial share over the bound fails hard",
             [share_rec("big", 8, 100.0, 0.6)], ["0.5"], True, 1),
            ("only the largest parallel config is gated",
             [share_rec("small", 8, 10.0, 0.9),
              share_rec("big", 8, 100.0, 0.4)], ["0.5"], False, 0),
            ("higher thread count outranks a larger median",
             [share_rec("small", 8, 10.0, 0.6),
              share_rec("big", 2, 100.0, 0.1)], ["0.5"], True, 1),
            ("missing serial_share cannot pass the gate",
             [share_rec("big", 8, 100.0)], ["0.5"], False, 2),
            ("no flag means no gate",
             [share_rec("big", 8, 100.0, 0.9)], [], False, 0),
        ]
        for label, fresh_doc, limit, want_error, want in share_cases:
            with open(ref_path, "w", encoding="utf-8") as f:
                json.dump(share_ref, f)
            with open(fresh_path, "w", encoding="utf-8") as f:
                json.dump(fresh_doc, f)
            argv = ["--reference", ref_path, "--fresh", fresh_path]
            if limit:
                argv += ["--serial-share-max", limit[0]]
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                got = run(argv)
            errored = "serial-share gate" in out.getvalue()
            ok = got == want and errored == want_error
            failures += not ok
            print(f"{'PASS' if ok else 'FAIL'} {label} "
                  f"(exit {got}, error={errored})")

    if failures == 0:
        print("perf_check self-test: all cases pass")
    return 0 if failures == 0 else 1


def main(argv):
    if argv and argv[0] == "--self-test":
        return self_test()
    return run(argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
