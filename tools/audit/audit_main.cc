// Standalone invariant-audit runner.
//
// Replays a scenario through an EpochController with the InvariantAuditor
// enabled and prints every finding, plus an upfront audit of the topology
// and the shipped power models. Exit status 0 means no errors (warnings are
// reported but tolerated); 1 means at least one error-severity finding; 2
// means bad usage.
//
//   gl_audit [--scenario=twitter|azure] [--scheduler=goldilocks|epvm|mpp|
//             borg|rc|random] [--topology=testbed16|fattree4|leafspine]
//             [--epochs=N] [--pee=0.70] [--pee-strict] [--fail-fast]
//
// The PEE cap defaults to a warning (overcommit policies violate it by
// design); --pee-strict promotes it to an error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "analysis/invariant_auditor.h"
#include "core/epoch_controller.h"
#include "core/scheduler_factory.h"
#include "power/server_power.h"
#include "topology/topology.h"
#include "workload/scenarios.h"

namespace {

struct Args {
  std::string scenario = "twitter";
  std::string scheduler = "goldilocks";
  std::string topology = "testbed16";
  int epochs = -1;  // scenario default
  double pee = 0.70;
  bool pee_strict = false;
  bool fail_fast = false;
};

bool ParseFlag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  out = arg + n;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--scenario=", args.scenario) ||
        ParseFlag(argv[i], "--scheduler=", args.scheduler) ||
        ParseFlag(argv[i], "--topology=", args.topology)) {
      continue;
    }
    if (ParseFlag(argv[i], "--epochs=", value)) {
      args.epochs = std::atoi(value.c_str());
      continue;
    }
    if (ParseFlag(argv[i], "--pee=", value)) {
      args.pee = std::atof(value.c_str());
      continue;
    }
    if (std::strcmp(argv[i], "--pee-strict") == 0) {
      args.pee_strict = true;
      continue;
    }
    if (std::strcmp(argv[i], "--fail-fast") == 0) {
      args.fail_fast = true;
      continue;
    }
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    return 2;
  }

  gl::Topology topo;
  if (args.topology == "testbed16") {
    topo = gl::Topology::Testbed16();
  } else if (args.topology == "fattree4") {
    topo = gl::Topology::FatTree(
        4, gl::Resource{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000}, 1000.0);
  } else if (args.topology == "leafspine") {
    topo = gl::Topology::LeafSpine(
        8, 4, 2, gl::Resource{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000},
        1000.0);
  } else {
    std::fprintf(stderr, "unknown topology: %s\n", args.topology.c_str());
    return 2;
  }

  std::unique_ptr<gl::Scenario> scenario;
  if (args.scenario == "twitter") {
    gl::TwitterScenarioOptions opts;
    if (args.epochs > 0) opts.num_epochs = args.epochs;
    scenario = gl::MakeTwitterCachingScenario(opts);
  } else if (args.scenario == "azure") {
    gl::AzureScenarioOptions opts;
    if (args.epochs > 0) opts.num_epochs = args.epochs;
    scenario = gl::MakeAzureMixScenario(opts);
  } else {
    std::fprintf(stderr, "unknown scenario: %s\n", args.scenario.c_str());
    return 2;
  }

  auto scheduler = gl::MakeNamedScheduler(args.scheduler, args.pee);
  if (scheduler == nullptr) {
    std::fprintf(stderr, "unknown scheduler: %s\n", args.scheduler.c_str());
    return 2;
  }

  gl::AuditOptions audit_opts;
  audit_opts.pee_utilization = args.pee;
  audit_opts.pee_cap_is_error = args.pee_strict;
  const gl::InvariantAuditor auditor(audit_opts);

  // Static state first: the topology tree and the shipped power models are
  // audited once, before any placement runs.
  gl::AuditReport static_report;
  auditor.AuditTopology(topo, static_report);
  auditor.AuditBandwidth(topo, static_report);
  const gl::ServerPowerModel models[] = {
      gl::ServerPowerModel::Dell2018(), gl::ServerPowerModel::DellR940(),
      gl::ServerPowerModel::Linear2010(), gl::ServerPowerModel::Facebook1S(),
      gl::ServerPowerModel::MicrosoftBlade()};
  for (const auto& model : models) {
    auditor.AuditPowerModel(model, static_report);
  }
  std::printf("static audit (%s, %d servers): %d error(s), %d warning(s)\n",
              args.topology.c_str(), topo.num_servers(),
              static_report.errors(), static_report.warnings());
  if (!static_report.clean()) std::fputs(static_report.ToString().c_str(), stdout);

  gl::EpochController controller(std::move(scheduler), topo);
  controller.EnableAudit(audit_opts, args.fail_fast);

  const gl::Workload& workload = scenario->workload();
  for (int epoch = 0; epoch < scenario->num_epochs(); ++epoch) {
    const auto demands = scenario->DemandsAt(epoch);
    const auto active = scenario->ActiveAt(epoch);
    const auto decision = controller.Step(workload, demands, active);
    std::printf("epoch %3d: placed %4d  migrations %zu  findings so far %zu\n",
                epoch, decision.containers_placed, decision.plan.steps.size(),
                controller.audit_report().findings.size());
  }

  const gl::AuditReport& report = controller.audit_report();
  std::printf("\n%s — %s over %d epochs: %d error(s), %d warning(s)\n",
              args.scheduler.c_str(), args.scenario.c_str(),
              scenario->num_epochs(), report.errors(), report.warnings());
  if (!report.clean()) std::fputs(report.ToString().c_str(), stdout);
  return (report.errors() > 0 || static_report.errors() > 0) ? 1 : 0;
}
