#!/usr/bin/env bash
# Full correctness gate: warnings-as-errors Release build + tier-1 ctest,
# then the same suite under AddressSanitizer + UndefinedBehaviorSanitizer.
# This is what CI runs; run it locally before sending a change.
#
#   tools/check.sh            # lint + release + asan stages
#   tools/check.sh lint       # determinism linter only (no build needed)
#   tools/check.sh analyze    # gl_analyze contract checker (builds the tool)
#   tools/check.sh release    # Release stage + seed-replay gate only
#   tools/check.sh asan       # ASan+UBSan stage only
#   tools/check.sh tsan       # ThreadSanitizer stage (parallel paths)
#   tools/check.sh tidy       # clang-tidy over src/ (needs clang-tidy)
#
# Build trees go to build-check-<stage>/ so they never collide with the
# default build/ directory.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
STAGE="${1:-all}"

case "${STAGE}" in
  all|lint|analyze|release|asan|tsan|tidy) ;;
  *)
    echo "unknown stage: ${STAGE} (expected all, lint, analyze, release, asan, tsan or tidy)" >&2
    exit 2
    ;;
esac

run_stage() {
  local name="$1" dir="$2"
  shift 2
  echo "==> configure ${name}"
  cmake -B "${dir}" -S . "$@"
  echo "==> build ${name}"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> test ${name}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

# Static half of the determinism contract (DESIGN.md §8): rule fixtures,
# then a clean pass over the production tree.
if [[ "${STAGE}" == "all" || "${STAGE}" == "lint" ]]; then
  echo "==> gl_lint self-test"
  python3 tools/gl_lint --self-test
  echo "==> gl_lint src/"
  python3 tools/gl_lint src
fi

# Token-aware cross-file contract checker (DESIGN.md §12–§14): fixture
# corpus, then the whole tree (src/, bench/, tools/ — fixture dirs are
# skipped by the scanner) must be clean modulo the committed baseline, and
# src/power/ must keep full GL014 dimension coverage.
if [[ "${STAGE}" == "all" || "${STAGE}" == "analyze" ]]; then
  echo "==> build gl_analyze"
  cmake -B build-check-analyze -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-check-analyze -j "${JOBS}" --target gl_analyze
  echo "==> gl_analyze self-test"
  ./build-check-analyze/tools/analyze/gl_analyze --self-test
  echo "==> gl_analyze src/ bench/ tools/"
  ./build-check-analyze/tools/analyze/gl_analyze \
    --baseline=tools/analyze/baseline.txt \
    --cache=build-check-analyze/gl_analyze.cache \
    --units-strict=src/power \
    --jobs="${JOBS}" \
    --stats \
    src bench tools
fi

if [[ "${STAGE}" == "all" || "${STAGE}" == "release" ]]; then
  run_stage "Release (-Werror)" build-check-release \
    -DCMAKE_BUILD_TYPE=Release -DGOLDILOCKS_WERROR=ON
  # Runtime half of the determinism contract: every scheduler replayed twice
  # from the same seed must produce bit-identical per-epoch state hashes.
  echo "==> seed-replay gate"
  ./build-check-release/tools/gl_replay --epochs=12
  # Observability smoke (DESIGN.md §10): an instrumented two-policy run must
  # produce a valid JSONL stream and a Chrome trace, a second same-seed run
  # must match byte-for-byte outside the "timings" sections, and the replay
  # gate with --obs proves enabling observability changes no state hash.
  echo "==> observability smoke (gl_report + obs-neutral replay)"
  OBS_DIR=build-check-release/obs-smoke
  mkdir -p "${OBS_DIR}"
  ./build-check-release/tools/gl_report run --epochs=8 \
    --jsonl="${OBS_DIR}/run1.jsonl" --trace="${OBS_DIR}/trace.json"
  ./build-check-release/tools/gl_report run --epochs=8 \
    --jsonl="${OBS_DIR}/run2.jsonl" > /dev/null
  ./build-check-release/tools/gl_report check \
    "${OBS_DIR}/run1.jsonl" "${OBS_DIR}/run2.jsonl"
  ./build-check-release/tools/gl_replay --scheduler=goldilocks --epochs=8 \
    --obs="${OBS_DIR}/replay.jsonl"
  # Profiling smoke (DESIGN.md §15): the trace just captured must render a
  # critical-path profile and collapsed stacks, and the same-seed streams
  # must show zero deterministic differences under the run-diff (exit 1
  # otherwise). The parallel replay proves profiling stays obs-neutral at
  # threads=8 too.
  echo "==> profiling smoke (gl_report profile/flame/diff)"
  ./build-check-release/tools/gl_report profile "${OBS_DIR}/trace.json" \
    > /dev/null
  ./build-check-release/tools/gl_report flame "${OBS_DIR}/trace.json" \
    --out="${OBS_DIR}/stacks.txt"
  ./build-check-release/tools/gl_report diff \
    "${OBS_DIR}/run1.jsonl" "${OBS_DIR}/run2.jsonl"
  ./build-check-release/tools/gl_replay --scheduler=goldilocks --epochs=8 \
    --threads=8 --obs="${OBS_DIR}/replay-t8.jsonl"
fi

if [[ "${STAGE}" == "all" || "${STAGE}" == "asan" ]]; then
  # abort_on_error makes any ASan report kill the test immediately;
  # detect_leaks stays on where supported (Linux).
  export ASAN_OPTIONS="abort_on_error=1:check_initialization_order=1:strict_init_order=1"
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  run_stage "ASan+UBSan" build-check-asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGOLDILOCKS_WERROR=ON \
    "-DGOLDILOCKS_SANITIZE=address;undefined"
fi

if [[ "${STAGE}" == "tsan" ]]; then
  # Dynamic half of the concurrency contract (DESIGN.md §9): the thread
  # pool, the parallel partitioner and RunMany raced under TSan. The
  # parallel determinism tests drive every parallel path at threads up to 8
  # -- including the intra-bisection ones (chunked matching/contraction and
  # concurrent FM trials, via LargeBisectionIsExactlyThreadCountInvariant's
  # n=6000 graph above the parallel_min_vertices gate) -- so a data race
  # fails this stage even when it happens not to corrupt the state hashes.
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  run_stage "TSan" build-check-tsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGOLDILOCKS_WERROR=ON \
    "-DGOLDILOCKS_SANITIZE=thread"
  echo "==> seed-replay gate (parallel, under TSan)"
  ./build-check-tsan/tools/gl_replay --epochs=8 --threads=8
fi

if [[ "${STAGE}" == "tidy" ]]; then
  if ! command -v clang-tidy >/dev/null; then
    # Local machines often lack clang-tidy; warn and move on. CI installs
    # it, and there the absence must stay a hard failure.
    if [[ "${CI:-}" == "true" ]]; then
      echo "clang-tidy not found on PATH" >&2
      exit 1
    fi
    echo "warning: clang-tidy not found on PATH; skipping tidy stage" >&2
    exit 0
  fi
  cmake -B build-check-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  # Headers are covered via the .cc files that include them. The analyzer
  # fixture corpus is token-stream test data, not production code; some
  # fixtures do not even compile.
  find src tools -name '*.cc' -not -path 'tools/analyze/fixtures/*' -print0 |
    xargs -0 -P "${JOBS}" -n 8 clang-tidy -p build-check-tidy --quiet
fi

echo "==> all requested stages passed"
