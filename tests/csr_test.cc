// Tests for the flat CSR partitioning kernel (DESIGN.md §11): CsrGraph
// equivalence against Graph, arena storage reuse, the lazy-deletion heap,
// the FM incremental-gain engine, and the zero-copy recursion contract
// (no InducedSubgraph materialization on the partitioning path).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/csr.h"
#include "graph/fm.h"
#include "graph/graph.h"
#include "graph/partitioner.h"
#include "graph/scratch.h"
#include "obs/metrics.h"

namespace gl {
namespace {

// Random graph with clusters, sparse inter-cluster edges, and a sprinkle of
// negative (anti-affinity) edges. Integer weights so FM's delta updates are
// exact and the equivalence checks below can use exact comparisons.
Graph RandomGraph(int n, std::uint64_t seed, bool with_negative) {
  Rng rng(seed);
  Graph g;
  for (int i = 0; i < n; ++i) {
    g.AddVertex(Resource{.cpu = 10, .mem_gb = 1, .net_mbps = 1},
                1.0 + static_cast<double>(rng.NextBelow(3)));
  }
  for (int s = 0; s + 4 <= n; s += 4) {
    for (int i = 1; i < 4; ++i) {
      g.AddEdge(s, s + i, static_cast<double>(1 + rng.NextBelow(9)));
    }
  }
  for (int e = 0; e < n; ++e) {
    const auto a = static_cast<VertexIndex>(rng.NextBelow(n));
    const auto b = static_cast<VertexIndex>(rng.NextBelow(n));
    if (a == b) continue;
    double w = static_cast<double>(1 + rng.NextBelow(5));
    if (with_negative && rng.NextBelow(4) == 0) w = -w;
    g.AddEdge(a, b, w);
  }
  return g;
}

std::vector<std::uint8_t> RandomSide(VertexIndex n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n));
  for (auto& s : side) s = static_cast<std::uint8_t>(rng.NextBelow(2));
  return side;
}

// --- CsrGraph vs Graph equivalence ----------------------------------------

TEST(CsrGraphTest, BuildFromMatchesGraphExactly) {
  for (const bool with_negative : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const Graph g = RandomGraph(64, seed, with_negative);
      CsrGraph csr;
      csr.BuildFrom(g);

      ASSERT_EQ(csr.num_vertices(), g.num_vertices());
      ASSERT_EQ(csr.num_arcs(), 2 * g.num_edges());
      EXPECT_DOUBLE_EQ(csr.total_balance_weight(), g.total_balance_weight());

      for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
        EXPECT_DOUBLE_EQ(csr.balance_weight(v), g.balance_weight(v));
        EXPECT_DOUBLE_EQ(csr.degree_weight(v), g.degree_weight(v));
        // Neighbor order must match the Graph adjacency list exactly:
        // tie-breaking in matching and refinement follows iteration order.
        const auto nbrs = g.neighbors(v);
        const auto [to, ws] = csr.arc_range(v);
        ASSERT_EQ(to.size(), nbrs.size());
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          EXPECT_EQ(to[i], nbrs[i].to);
          EXPECT_DOUBLE_EQ(ws[i], nbrs[i].weight);
        }
      }

      const auto side = RandomSide(g.num_vertices(), seed ^ 0xABCD);
      EXPECT_DOUBLE_EQ(csr.CutWeight(side), g.CutWeight(side));
      double w0 = 0.0;
      for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
        if (side[static_cast<std::size_t>(v)] == 0) w0 += g.balance_weight(v);
      }
      EXPECT_DOUBLE_EQ(csr.SideWeight0(side), w0);
    }
  }
}

TEST(CsrGraphTest, ArenaReuseKeepsStorageAndResults) {
  const Graph g = RandomGraph(128, 7, true);
  CsrGraph csr;
  csr.BuildFrom(g);
  const auto side = RandomSide(g.num_vertices(), 99);
  const double first_cut = csr.CutWeight(side);
  const VertexIndex* storage = csr.arc_data();

  // Clear + rebuild of an equal-or-smaller graph must reuse the arc array
  // (no allocation) and reproduce bit-identical results.
  for (int round = 0; round < 3; ++round) {
    csr.Clear();
    csr.BuildFrom(g);
    EXPECT_EQ(csr.arc_data(), storage);
    EXPECT_DOUBLE_EQ(csr.CutWeight(side), first_cut);
  }
}

// --- LazyMaxHeap -----------------------------------------------------------

TEST(LazyMaxHeapTest, PopsMaxAndSkipsStaleEntries) {
  LazyMaxHeap heap;
  heap.Reset(4);
  heap.Push(0, 1.0);
  heap.Push(1, 5.0);
  heap.Push(2, 3.0);
  // Re-push vertex 1 with a lower priority: the old 5.0 entry is stale and
  // must be skipped even though it sits on top of the heap.
  heap.Push(1, 2.0);

  VertexIndex v = -1;
  double p = 0.0;
  ASSERT_TRUE(heap.Pop(&v, &p));
  EXPECT_EQ(v, 2);
  EXPECT_DOUBLE_EQ(p, 3.0);
  ASSERT_TRUE(heap.Pop(&v, &p));
  EXPECT_EQ(v, 1);
  EXPECT_DOUBLE_EQ(p, 2.0);
  ASSERT_TRUE(heap.Pop(&v, &p));
  EXPECT_EQ(v, 0);
  EXPECT_FALSE(heap.Pop(&v, &p));  // only stale entries remain
}

TEST(LazyMaxHeapTest, InvalidateRemovesAndResetReuses) {
  LazyMaxHeap heap;
  heap.Reset(3);
  heap.Push(0, 10.0);
  heap.Push(1, 20.0);
  EXPECT_TRUE(heap.Contains(1));
  heap.Invalidate(1);
  EXPECT_FALSE(heap.Contains(1));

  VertexIndex v = -1;
  double p = 0.0;
  ASSERT_TRUE(heap.Pop(&v, &p));
  EXPECT_EQ(v, 0);
  EXPECT_FALSE(heap.Pop(&v, &p));

  heap.Reset(3);  // reused storage must start empty
  EXPECT_FALSE(heap.Pop(&v, &p));
}

// --- FmEngine: incremental gains -------------------------------------------

TEST(FmEngineTest, DeltaGainsMatchFullRecompute) {
  const Graph g = RandomGraph(48, 11, true);
  CsrGraph csr;
  csr.BuildFrom(g);
  auto side = RandomSide(csr.num_vertices(), 3);
  std::vector<double> gain;
  FmEngine engine;
  engine.Attach(csr, &side, &gain);

  Rng rng(17);
  for (int move = 0; move < 64; ++move) {
    const auto v = static_cast<VertexIndex>(
        rng.NextBelow(static_cast<std::size_t>(csr.num_vertices())));
    engine.Flip(v);
    for (VertexIndex u = 0; u < csr.num_vertices(); ++u) {
      // Integer weights: delta maintenance must be exactly the from-scratch
      // value, not just close.
      ASSERT_DOUBLE_EQ(engine.gain(u), engine.RecomputeGain(u))
          << "after move " << move << " vertex " << u;
    }
  }
}

TEST(FmEngineTest, ReverseFlipsRollBackToInitialState) {
  const Graph g = RandomGraph(48, 23, true);
  CsrGraph csr;
  csr.BuildFrom(g);
  auto side = RandomSide(csr.num_vertices(), 5);
  const auto side0 = side;
  std::vector<double> gain;
  FmEngine engine;
  engine.Attach(csr, &side, &gain);
  const std::vector<double> gain0 = gain;

  Rng rng(29);
  std::vector<VertexIndex> moves;
  for (int i = 0; i < 40; ++i) {
    moves.push_back(static_cast<VertexIndex>(
        rng.NextBelow(static_cast<std::size_t>(csr.num_vertices()))));
    engine.Flip(moves.back());
  }
  // Reverse-order flips must restore sides and (with integer weights) every
  // gain exactly — this is what makes FM's rollback-to-best-prefix free of
  // an O(arcs) recompute.
  for (std::size_t i = moves.size(); i > 0; --i) engine.Flip(moves[i - 1]);

  EXPECT_EQ(side, side0);
  for (VertexIndex v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(gain[static_cast<std::size_t>(v)],
                     gain0[static_cast<std::size_t>(v)]);
  }
}

TEST(FmEngineTest, InitialCutMatchesCutWeight) {
  for (std::uint64_t seed = 31; seed <= 35; ++seed) {
    const Graph g = RandomGraph(64, seed, true);
    CsrGraph csr;
    csr.BuildFrom(g);
    auto side = RandomSide(csr.num_vertices(), seed);
    std::vector<double> gain;
    FmEngine engine;
    engine.Attach(csr, &side, &gain);
    EXPECT_NEAR(engine.initial_cut(), csr.CutWeight(side), 1e-9);
  }
}

// --- GroupAccumulator -------------------------------------------------------

TEST(GroupAccumulatorTest, SumsPerIdInFirstTouchOrder) {
  GroupAccumulator acc;
  acc.Reset(8);
  acc.Add(5, 1.5);
  acc.Add(2, 1.0);
  acc.Add(5, 0.5);
  acc.Add(7, -2.0);

  ASSERT_EQ(acc.touched().size(), 3u);
  EXPECT_EQ(acc.touched()[0], 5);
  EXPECT_EQ(acc.touched()[1], 2);
  EXPECT_EQ(acc.touched()[2], 7);
  EXPECT_DOUBLE_EQ(acc.Get(5), 2.0);
  EXPECT_DOUBLE_EQ(acc.Get(2), 1.0);
  EXPECT_DOUBLE_EQ(acc.Get(7), -2.0);
  EXPECT_DOUBLE_EQ(acc.Get(0), 0.0);  // untouched reads as zero

  acc.Reset(8);  // O(1) epoch bump must forget everything
  EXPECT_TRUE(acc.touched().empty());
  EXPECT_DOUBLE_EQ(acc.Get(5), 0.0);
}

TEST(GroupAccumulatorTest, EpochWrapNeverResurrectsOldSums) {
  GroupAccumulator acc;
  acc.Reset(4);     // epoch 1
  acc.Add(2, 5.0);  // stamp[2] = 1
  acc.Add(0, 3.0);

  // Drive the counter to its max; the next Reset wraps to 0 and must clear
  // every stamp — otherwise the post-wrap epoch value 1 would alias the
  // stamps written in the original epoch 1 and Get(2) would read 5.0.
  acc.set_epoch_for_test(0xFFFFFFFFu);
  acc.Reset(4);
  EXPECT_TRUE(acc.touched().empty());
  EXPECT_DOUBLE_EQ(acc.Get(2), 0.0);
  EXPECT_DOUBLE_EQ(acc.Get(0), 0.0);

  // The accumulator keeps working normally after the wrap.
  acc.Add(2, 1.0);
  acc.Add(2, 0.5);
  EXPECT_DOUBLE_EQ(acc.Get(2), 1.5);
  ASSERT_EQ(acc.touched().size(), 1u);
  EXPECT_EQ(acc.touched()[0], 2);

  // And the epoch after the wrap still invalidates cleanly.
  acc.Reset(4);
  EXPECT_DOUBLE_EQ(acc.Get(2), 0.0);
}

// --- Zero-copy recursion contract -------------------------------------------

TEST(CsrRecursionTest, RecursivePartitionBuildsNoInducedSubgraphs) {
  auto& builds = obs::MetricsRegistry::Global().GetCounter(
      "graph.induced_subgraph_builds", obs::MetricKind::kDeterministic);
  auto& views = obs::MetricsRegistry::Global().GetCounter(
      "partition.subgraph_views", obs::MetricKind::kDeterministic);

  const Graph g = RandomGraph(400, 41, true);
  const Resource ceiling{.cpu = 100, .mem_gb = 10, .net_mbps = 10};
  const auto builds_before = builds.value();
  const auto views_before = views.value();
  const auto r = RecursivePartition(
      g, [&](const Resource& d, int) { return d.FitsIn(ceiling); }, {});
  EXPECT_GT(r.num_groups, 1);

  // The recursion must run entirely on zero-copy CSR views: many views
  // extracted, zero Graph copies materialized.
  EXPECT_EQ(builds.value() - builds_before, 0u);
  EXPECT_GT(views.value() - views_before, 0u);
}

}  // namespace
}  // namespace gl
