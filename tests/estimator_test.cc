#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "sim/estimator.h"

namespace gl {
namespace {

std::vector<Resource> Uniform(std::size_t n, double cpu) {
  return std::vector<Resource>(n, Resource{.cpu = cpu, .mem_gb = 1,
                                           .net_mbps = 10});
}

TEST(Estimator, FallbackBeforeAnyObservation) {
  DemandEstimator est(3);
  const auto fallback = Uniform(3, 123.0);
  const auto pred = est.Predict(fallback);
  for (const auto& p : pred) EXPECT_DOUBLE_EQ(p.cpu, 123.0);
}

TEST(Estimator, ConvergesOnSteadyDemand) {
  DemandEstimator est(2);
  for (int i = 0; i < 20; ++i) est.Observe(Uniform(2, 50.0));
  const auto pred = est.Predict(Uniform(2, 0.0));
  // Steady input → zero variance → prediction equals the mean.
  EXPECT_NEAR(pred[0].cpu, 50.0, 1e-6);
  EXPECT_NEAR(pred[1].cpu, 50.0, 1e-6);
}

TEST(Estimator, HeadroomCoversVariance) {
  EstimatorOptions opts;
  opts.headroom_stddevs = 2.0;
  DemandEstimator est(1, opts);
  Rng rng(5);
  RunningStats seen;
  for (int i = 0; i < 200; ++i) {
    const double x = std::max(0.0, rng.Gaussian(100.0, 20.0));
    seen.Add(x);
    est.Observe(Uniform(1, x));
  }
  const auto pred = est.Predict(Uniform(1, 0.0));
  // mean + 2σ must sit clearly above the mean and cover most samples.
  EXPECT_GT(pred[0].cpu, 110.0);
  EXPECT_LT(pred[0].cpu, 180.0);
}

TEST(Estimator, TracksDemandShift) {
  DemandEstimator est(1);
  for (int i = 0; i < 10; ++i) est.Observe(Uniform(1, 10.0));
  for (int i = 0; i < 10; ++i) est.Observe(Uniform(1, 100.0));
  const auto pred = est.Predict(Uniform(1, 0.0));
  EXPECT_GT(pred[0].cpu, 80.0);  // the EWMA has mostly moved to 100
}

TEST(Estimator, ZeroObservationsAreSkipped) {
  DemandEstimator est(1);
  est.Observe(Uniform(1, 40.0));
  est.Observe(std::vector<Resource>(1));  // container paused this epoch
  est.Observe(Uniform(1, 40.0));
  const auto pred = est.Predict(Uniform(1, 0.0));
  EXPECT_NEAR(pred[0].cpu, 40.0, 1e-6);
}

TEST(Estimator, PredictionsNeverNegative) {
  EstimatorOptions opts;
  opts.headroom_stddevs = -5.0;  // adversarial: pessimistic headroom
  DemandEstimator est(1, opts);
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    est.Observe(Uniform(1, rng.Uniform(0.0, 5.0)));
  }
  const auto pred = est.Predict(Uniform(1, 0.0));
  EXPECT_GE(pred[0].cpu, 0.0);
}

TEST(Estimator, PerContainerIndependence) {
  DemandEstimator est(2);
  for (int i = 0; i < 10; ++i) {
    std::vector<Resource> obs{{.cpu = 10, .mem_gb = 1, .net_mbps = 1},
                              {.cpu = 90, .mem_gb = 2, .net_mbps = 5}};
    est.Observe(obs);
  }
  const auto pred = est.Predict(Uniform(2, 0.0));
  EXPECT_NEAR(pred[0].cpu, 10.0, 1e-6);
  EXPECT_NEAR(pred[1].cpu, 90.0, 1e-6);
  EXPECT_NEAR(pred[1].mem_gb, 2.0, 1e-6);
}

}  // namespace
}  // namespace gl
