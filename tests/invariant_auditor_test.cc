// Corruption-injection tests for the InvariantAuditor.
//
// The contract under test: a clean system state produces zero findings, and
// every invariant class the auditor claims to check is actually detected
// when that class is violated on purpose. Each corruption is injected
// through public mutation APIs (placement vectors, Topology::Reserve /
// set_server_capacity, Graph::AddEdge, custom power curves); graph
// self-loops and asymmetric adjacency cannot be constructed through the
// Graph API (AddEdge is symmetric and drops self-loops), so those auditor
// checks are defense-in-depth and not exercised here.
#include "analysis/invariant_auditor.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/epoch_controller.h"
#include "core/goldilocks.h"
#include "core/graph_builder.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "workload/scenarios.h"

namespace gl {
namespace {

struct TestState {
  Topology topo;
  Workload workload;
  std::vector<Resource> demands;
  std::vector<std::uint8_t> active;
  Placement placement;
};

// A comfortably-fitting workload on the 16-server testbed, placed by the
// real Goldilocks scheduler: two memcached/front-end services plus one
// three-way replica set spread across fault domains.
TestState MakePlacedState(std::uint64_t seed = 0) {
  TestState st;
  st.topo = Topology::Testbed16();
  AppendService(st.workload, AppType::kMemcached, 4, /*service_id=*/0);
  AppendService(st.workload, AppType::kFrontend, 4, /*service_id=*/1);
  const auto replicas =
      AppendService(st.workload, AppType::kCassandra, 3, /*service_id=*/2);
  for (const auto id : replicas) {
    st.workload.containers[static_cast<std::size_t>(id.value())].replica_set =
        GroupId{7};
  }
  if (seed != 0) {
    // Shake demands a little so the randomized property test sees many
    // distinct (still valid) states.
    Rng rng(seed);
    for (auto& c : st.workload.containers) {
      c.demand = c.demand * rng.Uniform(0.5, 1.0);
    }
  }
  for (const auto& c : st.workload.containers) st.demands.push_back(c.demand);
  st.active.assign(st.workload.containers.size(), 1);

  GoldilocksScheduler scheduler;
  SchedulerInput input;
  input.workload = &st.workload;
  input.demands = st.demands;
  input.active = st.active;
  input.topology = &st.topo;
  st.placement = scheduler.Place(input);
  return st;
}

SystemView ViewOf(const TestState& st) {
  SystemView view;
  view.topology = &st.topo;
  view.workload = &st.workload;
  view.demands = st.demands;
  view.active = st.active;
  view.placement = &st.placement;
  return view;
}

TEST(InvariantAuditor, CleanStateHasNoFindings) {
  const TestState st = MakePlacedState();
  ASSERT_EQ(st.placement.num_placed(), st.workload.size());
  const InvariantAuditor auditor;
  const AuditReport report = auditor.AuditAll(ViewOf(st));
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(InvariantAuditor, CleanStateWithGraphAndPowerModel) {
  const TestState st = MakePlacedState();
  const ContainerGraph cg =
      BuildContainerGraph(st.workload, st.demands, st.active,
                          st.topo.average_server_capacity());
  const ServerPowerModel power = ServerPowerModel::Dell2018();
  SystemView view = ViewOf(st);
  view.container_graph = &cg.graph;
  view.server_power = &power;
  const InvariantAuditor auditor;
  const AuditReport report = auditor.AuditAll(view);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(InvariantAuditor, DetectsOutOfRangeServer) {
  TestState st = MakePlacedState();
  st.placement.server_of[0] = ServerId{9999};
  const AuditReport report = InvariantAuditor().AuditAll(ViewOf(st));
  EXPECT_TRUE(report.Has(AuditClass::kConservation)) << report.ToString();
  EXPECT_GT(report.errors(), 0);
}

TEST(InvariantAuditor, DetectsPhantomPlacementOfInactiveContainer) {
  TestState st = MakePlacedState();
  st.active[2] = 0;  // still placed: a phantom consuming capacity
  const AuditReport report = InvariantAuditor().AuditAll(ViewOf(st));
  EXPECT_TRUE(report.Has(AuditClass::kConservation)) << report.ToString();
  EXPECT_GT(report.errors(), 0);
}

TEST(InvariantAuditor, DetectsNegativeAndNonFiniteDemand) {
  TestState st = MakePlacedState();
  st.demands[1].cpu = -5.0;
  st.demands[3].mem_gb = std::numeric_limits<double>::quiet_NaN();
  const AuditReport report = InvariantAuditor().AuditAll(ViewOf(st));
  EXPECT_GE(report.CountFor(AuditClass::kConservation), 2)
      << report.ToString();
}

TEST(InvariantAuditor, WarnsOnUnplacedActiveContainer) {
  TestState st = MakePlacedState();
  st.placement.server_of[4] = ServerId::invalid();
  const AuditReport report = InvariantAuditor().AuditAll(ViewOf(st));
  EXPECT_TRUE(report.Has(AuditClass::kConservation)) << report.ToString();
  EXPECT_EQ(report.errors(), 0) << report.ToString();
  EXPECT_GT(report.warnings(), 0);
}

TEST(InvariantAuditor, DetectsCapacityOverflow) {
  TestState st = MakePlacedState();
  // Pile everything onto one server at 20× demand: far past a 32-core
  // testbed machine.
  for (auto& d : st.demands) d = d * 20.0;
  for (auto& s : st.placement.server_of) s = ServerId{0};
  const AuditReport report = InvariantAuditor().AuditAll(ViewOf(st));
  EXPECT_TRUE(report.Has(AuditClass::kCapacity)) << report.ToString();
  EXPECT_GT(report.errors(), 0);
}

TEST(InvariantAuditor, DetectsPeeCapViolationAsWarning) {
  TestState st;
  st.topo = Topology::Testbed16();
  Container c;
  c.id = ContainerId{0};
  // 80% of every dimension: above the 70% PEE cap, below capacity.
  c.demand = st.topo.server_capacity(ServerId{0}) * 0.80;
  st.workload.containers.push_back(c);
  st.demands.push_back(c.demand);
  st.active.assign(1, 1);
  st.placement.server_of.assign(1, ServerId{0});

  const AuditReport report = InvariantAuditor().AuditAll(ViewOf(st));
  EXPECT_FALSE(report.Has(AuditClass::kCapacity)) << report.ToString();
  EXPECT_EQ(report.CountFor(AuditClass::kPeeCap), 1) << report.ToString();
  EXPECT_EQ(report.errors(), 0);
  EXPECT_EQ(report.warnings(), 1);

  AuditOptions strict;
  strict.pee_cap_is_error = true;
  const AuditReport strict_report =
      InvariantAuditor(strict).AuditAll(ViewOf(st));
  EXPECT_EQ(strict_report.errors(), 1) << strict_report.ToString();
}

TEST(InvariantAuditor, DetectsOverReservedUplink) {
  TestState st = MakePlacedState();
  const NodeId leaf = st.topo.NodesAtLevel(1).front();
  st.topo.Reserve(leaf, st.topo.uplink_capacity(leaf) + 100.0);
  const AuditReport report = InvariantAuditor().AuditAll(ViewOf(st));
  EXPECT_TRUE(report.Has(AuditClass::kBandwidth)) << report.ToString();
  EXPECT_GT(report.errors(), 0);
}

TEST(InvariantAuditor, DetectsOverReservationAfterLinkDegradation) {
  // Eq. (4)/(5) reservations that were feasible become infeasible when the
  // uplink loses half its physical links — the auditor must notice.
  TestState st = MakePlacedState();
  const NodeId leaf = st.topo.NodesAtLevel(1).front();
  st.topo.Reserve(leaf, 0.9 * st.topo.uplink_capacity(leaf));
  ASSERT_TRUE(InvariantAuditor().AuditAll(ViewOf(st)).clean());
  st.topo.DegradeUplink(leaf, 0.5);
  const AuditReport report = InvariantAuditor().AuditAll(ViewOf(st));
  EXPECT_TRUE(report.Has(AuditClass::kBandwidth)) << report.ToString();
}

TEST(InvariantAuditor, DetectsCoLocatedReplicas) {
  TestState st = MakePlacedState();
  // Force two members of replica set 7 onto one server.
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < st.workload.containers.size(); ++i) {
    if (st.workload.containers[i].replica_set.valid()) members.push_back(i);
  }
  ASSERT_GE(members.size(), 2u);
  st.placement.server_of[members[1]] = st.placement.server_of[members[0]];
  const AuditReport report = InvariantAuditor().AuditAll(ViewOf(st));
  EXPECT_TRUE(report.Has(AuditClass::kReplicaDomains)) << report.ToString();
  EXPECT_GT(report.errors(), 0);
}

TEST(InvariantAuditor, ReplicaDomainLevelControlsGranularity) {
  TestState st = MakePlacedState();
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < st.workload.containers.size(); ++i) {
    if (st.workload.containers[i].replica_set.valid()) members.push_back(i);
  }
  ASSERT_GE(members.size(), 3u);
  // Testbed16 leaves hold two servers each: servers 0 and 1 share a rack
  // but are distinct servers; server 8 is in a different rack entirely.
  st.placement.server_of[members[0]] = ServerId{0};
  st.placement.server_of[members[1]] = ServerId{1};
  st.placement.server_of[members[2]] = ServerId{8};
  ASSERT_FALSE(
      InvariantAuditor().AuditAll(ViewOf(st)).Has(AuditClass::kReplicaDomains));

  AuditOptions rack_level;
  rack_level.replica_domain_level = 1;
  const AuditReport report =
      InvariantAuditor(rack_level).AuditAll(ViewOf(st));
  EXPECT_TRUE(report.Has(AuditClass::kReplicaDomains)) << report.ToString();
}

TEST(InvariantAuditor, DetectsGraphCorruption) {
  const InvariantAuditor auditor;

  Graph nan_edge;
  const auto a = nan_edge.AddVertex(Resource{1, 1, 1});
  const auto b = nan_edge.AddVertex(Resource{1, 1, 1});
  nan_edge.AddEdge(a, b, std::numeric_limits<double>::quiet_NaN());
  AuditReport r1;
  auditor.AuditGraph(nan_edge, r1);
  EXPECT_TRUE(r1.Has(AuditClass::kGraph)) << r1.ToString();

  Graph bad_vertex;
  bad_vertex.AddVertex(Resource{.cpu = -3.0, .mem_gb = 1.0, .net_mbps = 0.0});
  AuditReport r2;
  auditor.AuditGraph(bad_vertex, r2);
  EXPECT_TRUE(r2.Has(AuditClass::kGraph)) << r2.ToString();

  // Negative (anti-affinity) edges are legal in container graphs but not in
  // capacity graphs.
  Graph negative;
  const auto u = negative.AddVertex(Resource{1, 1, 1});
  const auto v = negative.AddVertex(Resource{1, 1, 1});
  negative.AddEdge(u, v, -1.0e5);
  AuditReport lax;
  auditor.AuditGraph(negative, lax);
  EXPECT_FALSE(lax.Has(AuditClass::kGraph)) << lax.ToString();
  AuditOptions strict;
  strict.allow_negative_edges = false;
  AuditReport r3;
  InvariantAuditor(strict).AuditGraph(negative, r3);
  EXPECT_TRUE(r3.Has(AuditClass::kGraph)) << r3.ToString();
}

TEST(InvariantAuditor, DetectsTopologyCorruption) {
  const InvariantAuditor auditor;

  Topology negative_capacity = Topology::Testbed16();
  negative_capacity.set_server_capacity(
      ServerId{3}, Resource{.cpu = -100.0, .mem_gb = 64.0, .net_mbps = 1000.0});
  AuditReport r1;
  auditor.AuditTopology(negative_capacity, r1);
  EXPECT_TRUE(r1.Has(AuditClass::kTopology)) << r1.ToString();

  Topology negative_uplink;
  const NodeId root =
      negative_uplink.AddSwitchNode(NodeId::invalid(), 2, 0.0, 1, 0);
  negative_uplink.AddSwitchNode(root, 1, -500.0, 1, 1);
  AuditReport r2;
  auditor.AuditTopology(negative_uplink, r2);
  EXPECT_TRUE(r2.Has(AuditClass::kTopology)) << r2.ToString();
}

TEST(InvariantAuditor, ShippedPowerModelsAreClean) {
  const InvariantAuditor auditor;
  const ServerPowerModel models[] = {
      ServerPowerModel::Dell2018(), ServerPowerModel::DellR940(),
      ServerPowerModel::Linear2010(), ServerPowerModel::Facebook1S(),
      ServerPowerModel::MicrosoftBlade(),
      ServerPowerModel::WithPeePoint(0.40)};
  for (const auto& m : models) {
    AuditReport report;
    auditor.AuditPowerModel(m, report);
    EXPECT_TRUE(report.clean()) << m.name() << ": " << report.ToString();
  }
}

TEST(InvariantAuditor, DetectsCorruptPowerCurves) {
  const InvariantAuditor auditor;

  AuditReport nonmono;
  auditor.AuditPowerCurve(
      [](double u) { return 100.0 - 50.0 * u; }, 100.0, "decreasing",
      nonmono);
  EXPECT_TRUE(nonmono.Has(AuditClass::kPowerModel)) << nonmono.ToString();

  AuditReport negative;
  auditor.AuditPowerCurve([](double u) { return 50.0 * u - 25.0; }, 100.0,
                          "negative-idle", negative);
  EXPECT_TRUE(negative.Has(AuditClass::kPowerModel)) << negative.ToString();

  AuditReport overmax;
  auditor.AuditPowerCurve([](double u) { return 120.0 * u; }, 100.0,
                          "exceeds-max", overmax);
  EXPECT_TRUE(overmax.Has(AuditClass::kPowerModel)) << overmax.ToString();

  AuditReport nan;
  auditor.AuditPowerCurve(
      [](double u) {
        return u > 0.5 ? std::numeric_limits<double>::quiet_NaN() : 10.0;
      },
      100.0, "nan", nan);
  EXPECT_TRUE(nan.Has(AuditClass::kPowerModel)) << nan.ToString();
}

TEST(InvariantAuditor, ReportCapsFindingsPerClass) {
  TestState st = MakePlacedState();
  AuditOptions opts;
  opts.max_findings_per_class = 2;
  for (auto& s : st.placement.server_of) s = ServerId{4242};  // all invalid
  const AuditReport report = InvariantAuditor(opts).AuditAll(ViewOf(st));
  EXPECT_EQ(report.CountFor(AuditClass::kConservation), 2)
      << report.ToString();
}

TEST(InvariantAuditor, ReportToStringMentionsClassAndSeverity) {
  TestState st = MakePlacedState();
  st.placement.server_of[0] = ServerId{9999};
  const AuditReport report = InvariantAuditor().AuditAll(ViewOf(st));
  const std::string text = report.ToString();
  EXPECT_NE(text.find("error"), std::string::npos) << text;
  EXPECT_NE(text.find("conservation"), std::string::npos) << text;
}

// The randomized property: valid states audit clean; a randomly chosen
// corruption from each class is always caught, and always attributed to the
// right invariant class.
TEST(InvariantAuditorProperty, RandomCorruptionsAreAlwaysCaught) {
  Rng rng(0xad17);
  for (int round = 0; round < 40; ++round) {
    TestState st = MakePlacedState(rng.NextU64() | 1);
    const InvariantAuditor auditor;
    const AuditReport clean = auditor.AuditAll(ViewOf(st));
    ASSERT_EQ(clean.errors(), 0) << clean.ToString();

    const auto pick = static_cast<int>(rng.NextBelow(5));
    AuditClass expected = AuditClass::kConservation;
    switch (pick) {
      case 0: {  // out-of-range server
        const auto i = rng.NextBelow(st.placement.server_of.size());
        st.placement.server_of[i] =
            ServerId{st.topo.num_servers() + static_cast<int>(rng.NextBelow(50))};
        expected = AuditClass::kConservation;
        break;
      }
      case 1: {  // phantom placement
        const auto i = rng.NextBelow(st.active.size());
        st.active[i] = 0;
        expected = AuditClass::kConservation;
        break;
      }
      case 2: {  // negative demand
        const auto i = rng.NextBelow(st.demands.size());
        st.demands[i].net_mbps = -1.0 - rng.Uniform(0.0, 10.0);
        expected = AuditClass::kConservation;
        break;
      }
      case 3: {  // capacity overflow
        for (auto& d : st.demands) d = d * 20.0;
        for (auto& s : st.placement.server_of) s = ServerId{0};
        expected = AuditClass::kCapacity;
        break;
      }
      case 4: {  // over-reserved uplink
        const auto leaves = st.topo.NodesAtLevel(1);
        const NodeId leaf = leaves[rng.NextBelow(leaves.size())];
        st.topo.Reserve(leaf, st.topo.uplink_capacity(leaf) +
                                  rng.Uniform(1.0, 1000.0));
        expected = AuditClass::kBandwidth;
        break;
      }
    }
    const AuditReport corrupted = auditor.AuditAll(ViewOf(st));
    EXPECT_TRUE(corrupted.Has(expected))
        << "round " << round << " corruption " << pick << ":\n"
        << corrupted.ToString();
    EXPECT_GT(corrupted.errors(), 0);
  }
}

// --- integration hooks ------------------------------------------------------

TEST(AuditHooks, EpochControllerAccumulatesCleanReport) {
  TestState st = MakePlacedState();
  EpochController controller(std::make_unique<GoldilocksScheduler>(),
                             st.topo);
  controller.EnableAudit();
  controller.Step(st.workload, st.demands, st.active);
  controller.Step(st.workload, st.demands, st.active);
  EXPECT_EQ(controller.audit_report().errors(), 0)
      << controller.audit_report().ToString();
}

TEST(AuditHooks, ExperimentRunnerAuditsEveryEpoch) {
  TwitterScenarioOptions scenario_opts;
  scenario_opts.num_containers = 48;
  scenario_opts.num_epochs = 4;
  const auto scenario = MakeTwitterCachingScenario(scenario_opts);
  const Topology topo = Topology::Testbed16();
  RunnerOptions opts;
  opts.audit = true;
  const ExperimentRunner runner(*scenario, topo, opts);
  GoldilocksScheduler scheduler;
  const ExperimentResult result = runner.Run(scheduler);
  ASSERT_EQ(result.epochs.size(), 4u);
  // Goldilocks' stability ceiling deliberately lets groups drift past the
  // 0.70 packing ceiling between re-placements, so PEE-cap *warnings* are
  // legitimate; errors are not.
  EXPECT_EQ(result.audit.errors(), 0) << result.audit.ToString();
  std::size_t per_epoch_total = 0;
  for (const auto& epoch : result.epochs) {
    per_epoch_total += static_cast<std::size_t>(epoch.audit_findings);
  }
  EXPECT_EQ(per_epoch_total, result.audit.findings.size());
}

}  // namespace
}  // namespace gl
