#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "graph/partitioner.h"
#include "graph/refine.h"

namespace gl {
namespace {

// Two dense cliques joined by one weak edge — the canonical min-cut case.
Graph TwoCliques(int clique_size, double intra_w = 10.0,
                 double bridge_w = 1.0) {
  Graph g;
  for (int i = 0; i < 2 * clique_size; ++i) {
    g.AddVertex(Resource{.cpu = 10, .mem_gb = 1, .net_mbps = 1}, 1.0);
  }
  for (int c = 0; c < 2; ++c) {
    const int base = c * clique_size;
    for (int i = 0; i < clique_size; ++i) {
      for (int j = i + 1; j < clique_size; ++j) {
        g.AddEdge(base + i, base + j, intra_w);
      }
    }
  }
  g.AddEdge(0, clique_size, bridge_w);
  return g;
}

// Ring of `n` vertices with unit weights.
Graph Ring(int n) {
  Graph g;
  for (int i = 0; i < n; ++i) {
    g.AddVertex(Resource{.cpu = 1, .mem_gb = 1, .net_mbps = 1}, 1.0);
  }
  for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n, 1.0);
  return g;
}

Graph RandomGraph(int n, double degree, std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  for (int i = 0; i < n; ++i) {
    g.AddVertex(Resource{.cpu = rng.Uniform(1, 20), .mem_gb = 1,
                         .net_mbps = 1},
                rng.Uniform(0.5, 2.0));
  }
  const int edges = static_cast<int>(n * degree / 2);
  for (int e = 0; e < edges; ++e) {
    const auto a = static_cast<VertexIndex>(rng.NextBelow(n));
    const auto b = static_cast<VertexIndex>(rng.NextBelow(n));
    if (a != b) g.AddEdge(a, b, rng.Uniform(0.5, 5.0));
  }
  return g;
}

[[maybe_unused]] double BalanceRatio(const Bisection& b, const Graph& g) {
  const double total = g.total_balance_weight();
  return std::max(b.side_weight[0], b.side_weight[1]) / (total / 2.0);
}

// --- Bisect --------------------------------------------------------------------

TEST(Bisect, FindsTheObviousCut) {
  const Graph g = TwoCliques(8);
  const auto b = Bisect(g, {});
  EXPECT_DOUBLE_EQ(b.cut_weight, 1.0);  // only the bridge crosses
  EXPECT_TRUE(b.balanced);
  // Each clique must be wholly on one side.
  for (int i = 1; i < 8; ++i) EXPECT_EQ(b.side[i], b.side[0]);
  for (int i = 9; i < 16; ++i) EXPECT_EQ(b.side[i], b.side[8]);
  EXPECT_NE(b.side[0], b.side[8]);
}

TEST(Bisect, RingCutsExactlyTwoEdges) {
  const Graph g = Ring(32);
  const auto b = Bisect(g, {});
  EXPECT_DOUBLE_EQ(b.cut_weight, 2.0);
  EXPECT_TRUE(b.balanced);
}

TEST(Bisect, SingleVertex) {
  Graph g;
  g.AddVertex({}, 1.0);
  const auto b = Bisect(g, {});
  EXPECT_EQ(b.side.size(), 1u);
  EXPECT_DOUBLE_EQ(b.cut_weight, 0.0);
}

TEST(Bisect, EmptyGraph) {
  Graph g;
  const auto b = Bisect(g, {});
  EXPECT_TRUE(b.side.empty());
  EXPECT_TRUE(b.balanced);
}

TEST(Bisect, TwoVertices) {
  Graph g;
  g.AddVertex({}, 1.0);
  g.AddVertex({}, 1.0);
  g.AddEdge(0, 1, 3.0);
  const auto b = Bisect(g, {});
  EXPECT_NE(b.side[0], b.side[1]);
  EXPECT_DOUBLE_EQ(b.cut_weight, 3.0);
}

TEST(Bisect, CutMatchesReportedWeight) {
  const Graph g = RandomGraph(200, 6.0, 99);
  const auto b = Bisect(g, {});
  EXPECT_NEAR(g.CutWeight(b.side), b.cut_weight, 1e-9);
}

TEST(Bisect, DeterministicGivenSeed) {
  const Graph g = RandomGraph(150, 5.0, 7);
  PartitionOptions opts;
  opts.seed = 42;
  const auto b1 = Bisect(g, opts);
  const auto b2 = Bisect(g, opts);
  EXPECT_EQ(b1.side, b2.side);
  EXPECT_DOUBLE_EQ(b1.cut_weight, b2.cut_weight);
}

TEST(Bisect, AsymmetricTargetFraction) {
  const Graph g = RandomGraph(300, 4.0, 3);
  PartitionOptions opts;
  opts.balance_tolerance = 0.08;
  const auto b = Bisect(g, opts, 0.25);
  const double total = g.total_balance_weight();
  EXPECT_NEAR(b.side_weight[0] / total, 0.25, 0.08);
}

TEST(Bisect, NegativeEdgeSeparatesReplicas) {
  // Two hub-and-spoke stars whose hubs are replicas (negative edge).
  Graph g;
  for (int i = 0; i < 12; ++i) {
    g.AddVertex(Resource{.cpu = 1, .mem_gb = 1, .net_mbps = 1}, 1.0);
  }
  for (int i = 1; i < 6; ++i) g.AddEdge(0, i, 5.0);
  for (int i = 7; i < 12; ++i) g.AddEdge(6, i, 5.0);
  g.AddEdge(0, 6, -1000.0);
  const auto b = Bisect(g, {});
  EXPECT_NE(b.side[0], b.side[6]);
}

TEST(Bisect, BetterThanRandomOnStructuredGraph) {
  const Graph g = TwoCliques(20, 8.0, 2.0);
  const auto b = Bisect(g, {});
  // A random balanced cut of two 20-cliques crosses ~half the intra edges;
  // the partitioner must find the 2.0 bridge.
  EXPECT_LE(b.cut_weight, 2.0 + 1e-9);
}

// Parameterized balance sweep: the bisection respects the tolerance across
// graph shapes and sizes.
class BisectBalanceTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BisectBalanceTest, WithinTolerance) {
  const auto [n, tol] = GetParam();
  const Graph g = RandomGraph(n, 6.0, static_cast<std::uint64_t>(n) * 31 + 1);
  PartitionOptions opts;
  opts.balance_tolerance = tol;
  const auto b = Bisect(g, opts);
  // Tolerance plus one max-weight vertex of slack (vertices are atomic).
  double max_bw = 0.0;
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    max_bw = std::max(max_bw, g.balance_weight(v));
  }
  const double limit =
      (1.0 + tol) * g.total_balance_weight() / 2.0 + max_bw;
  EXPECT_LE(b.side_weight[0], limit);
  EXPECT_LE(b.side_weight[1], limit);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BisectBalanceTest,
    ::testing::Combine(::testing::Values(50, 200, 1000),
                       ::testing::Values(0.05, 0.10, 0.20)));

// --- KWayPartition ---------------------------------------------------------------

TEST(KWay, ProducesExactlyKGroups) {
  const Graph g = RandomGraph(120, 5.0, 11);
  for (const int k : {2, 3, 5, 8}) {
    const auto r = KWayPartition(g, k, {});
    std::set<int> groups(r.group_of.begin(), r.group_of.end());
    EXPECT_EQ(static_cast<int>(groups.size()), k) << "k=" << k;
    for (const int gi : r.group_of) {
      EXPECT_GE(gi, 0);
      EXPECT_LT(gi, k);
    }
  }
}

TEST(KWay, CutMatchesAssignment) {
  const Graph g = RandomGraph(150, 6.0, 13);
  const auto r = KWayPartition(g, 4, {});
  EXPECT_NEAR(g.CutWeightKWay(r.group_of), r.cut_weight, 1e-9);
}

TEST(KWay, KEqualsOneIsWholeGraph) {
  const Graph g = Ring(10);
  const auto r = KWayPartition(g, 1, {});
  for (const int gi : r.group_of) EXPECT_EQ(gi, 0);
  EXPECT_DOUBLE_EQ(r.cut_weight, 0.0);
}

TEST(KWay, BalancedAcrossGroups) {
  const Graph g = RandomGraph(400, 5.0, 17);
  const int k = 5;
  const auto r = KWayPartition(g, k, {});
  std::vector<double> weight(static_cast<std::size_t>(k), 0.0);
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    weight[static_cast<std::size_t>(
        r.group_of[static_cast<std::size_t>(v)])] += g.balance_weight(v);
  }
  const double target = g.total_balance_weight() / k;
  for (const double w : weight) {
    EXPECT_LT(w, target * 1.6);
    EXPECT_GT(w, target * 0.4);
  }
}

TEST(KWayRefine, ImprovesASwappedAssignment) {
  // Two cliques assigned correctly except two swapped vertices: refinement
  // must send them home and report the gain.
  const Graph g = TwoCliques(8);
  std::vector<int> group(16);
  for (int v = 0; v < 16; ++v) group[static_cast<std::size_t>(v)] = v / 8;
  std::swap(group[1], group[9]);
  const double before = g.CutWeightKWay(group);
  const double gain = RefineKWay(g, group, 2, {});
  const double after = g.CutWeightKWay(group);
  EXPECT_GT(gain, 0.0);
  EXPECT_LT(after, before);
  EXPECT_EQ(group[1], group[0]);
  EXPECT_EQ(group[9], group[8]);
}

TEST(KWayRefine, RespectsBalanceCap) {
  // A star: every leaf wants to join the hub's group, but balance forbids
  // collapsing everything into one side.
  Graph g;
  for (int i = 0; i < 16; ++i) {
    g.AddVertex(Resource{.cpu = 1, .mem_gb = 1, .net_mbps = 1}, 1.0);
  }
  for (int i = 1; i < 16; ++i) g.AddEdge(0, i, 5.0);
  std::vector<int> group(16);
  for (int v = 0; v < 16; ++v) group[static_cast<std::size_t>(v)] = v % 2;
  PartitionOptions opts;
  opts.balance_tolerance = 0.10;
  RefineKWay(g, group, 2, opts);
  int side0 = 0;
  for (const int gi : group) side0 += gi == 0;
  EXPECT_GE(side0, 7);
  EXPECT_LE(side0, 9);
}

TEST(KWayRefine, NoopOnOptimal) {
  const Graph g = TwoCliques(8);
  std::vector<int> group(16);
  for (int v = 0; v < 16; ++v) group[static_cast<std::size_t>(v)] = v / 8;
  EXPECT_DOUBLE_EQ(RefineKWay(g, group, 2, {}), 0.0);
}

TEST(KWayRefine, NeverEmptiesAGroup) {
  const Graph g = Ring(12);
  std::vector<int> group(12, 0);
  group[5] = 1;  // a lone vertex that refinement would love to absorb
  RefineKWay(g, group, 2, {});
  int side1 = 0;
  for (const int gi : group) side1 += gi == 1;
  EXPECT_GE(side1, 1);
}

TEST(KWayRefine, KWayPartitionUsesIt) {
  // With refinement on, the k-way cut must be no worse than without.
  const Graph g = RandomGraph(300, 6.0, 77);
  PartitionOptions with;
  PartitionOptions without;
  without.kway_refine_passes = 0;
  const auto a = KWayPartition(g, 6, with);
  const auto b = KWayPartition(g, 6, without);
  EXPECT_LE(a.cut_weight, b.cut_weight + 1e-9);
}

// --- RecursivePartition -----------------------------------------------------------

TEST(RecursivePartition, StopsWhenEverythingFits) {
  const Graph g = Ring(16);
  const auto r = RecursivePartition(
      g, [](const Resource&, int) { return true; }, {});
  EXPECT_EQ(r.num_groups, 1);
  EXPECT_TRUE(r.oversized_groups.empty());
}

TEST(RecursivePartition, SplitsUntilFit) {
  const Graph g = Ring(64);  // total cpu 64
  const auto r = RecursivePartition(
      g, [](const Resource& d, int) { return d.cpu <= 10.0; }, {});
  EXPECT_GE(r.num_groups, 7);  // 64/10 → at least 7 groups
  for (int gi = 0; gi < r.num_groups; ++gi) {
    EXPECT_LE(r.group_demand[static_cast<std::size_t>(gi)].cpu, 10.0 + 1e-9);
  }
  EXPECT_TRUE(r.oversized_groups.empty());
}

TEST(RecursivePartition, EveryVertexAssigned) {
  const Graph g = RandomGraph(300, 5.0, 23);
  const auto r = RecursivePartition(
      g, [](const Resource& d, int) { return d.cpu <= 100.0; }, {});
  for (const int gi : r.group_of) {
    EXPECT_GE(gi, 0);
    EXPECT_LT(gi, r.num_groups);
  }
  // Group sizes sum to the vertex count.
  int total = 0;
  for (const int s : r.group_size) total += s;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(RecursivePartition, GroupDemandsConsistent) {
  const Graph g = RandomGraph(200, 4.0, 29);
  const auto r = RecursivePartition(
      g, [](const Resource& d, int) { return d.cpu <= 150.0; }, {});
  std::vector<Resource> recomputed(static_cast<std::size_t>(r.num_groups));
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    recomputed[static_cast<std::size_t>(
        r.group_of[static_cast<std::size_t>(v)])] += g.demand(v);
  }
  for (int gi = 0; gi < r.num_groups; ++gi) {
    EXPECT_NEAR(recomputed[static_cast<std::size_t>(gi)].cpu,
                r.group_demand[static_cast<std::size_t>(gi)].cpu, 1e-6);
  }
}

TEST(RecursivePartition, OversizedSingletonFlagged) {
  Graph g;
  g.AddVertex(Resource{.cpu = 1000, .mem_gb = 1, .net_mbps = 1}, 1.0);
  g.AddVertex(Resource{.cpu = 1, .mem_gb = 1, .net_mbps = 1}, 1.0);
  g.AddEdge(0, 1, 1.0);
  const auto r = RecursivePartition(
      g, [](const Resource& d, int) { return d.cpu <= 10.0; }, {});
  EXPECT_EQ(r.oversized_groups.size(), 1u);
}

TEST(RecursivePartition, PathsEncodeHierarchy) {
  const Graph g = Ring(32);
  const auto r = RecursivePartition(
      g, [](const Resource& d, int) { return d.cpu <= 8.0; }, {});
  EXPECT_EQ(static_cast<int>(r.group_path.size()), r.num_groups);
  // Paths must be distinct and none may be a prefix of another (they are
  // leaves of the recursion tree).
  for (int i = 0; i < r.num_groups; ++i) {
    for (int j = i + 1; j < r.num_groups; ++j) {
      const auto& a = r.group_path[static_cast<std::size_t>(i)];
      const auto& b = r.group_path[static_cast<std::size_t>(j)];
      EXPECT_NE(a, b);
      EXPECT_FALSE(a.size() < b.size() && b.compare(0, a.size(), a) == 0);
      EXPECT_FALSE(b.size() < a.size() && a.compare(0, b.size(), b) == 0);
    }
  }
}

TEST(RecursivePartition, LocalityOrderSortsByPath) {
  const Graph g = Ring(32);
  const auto r = RecursivePartition(
      g, [](const Resource& d, int) { return d.cpu <= 8.0; }, {});
  const auto order = GroupsInLocalityOrder(r);
  ASSERT_EQ(static_cast<int>(order.size()), r.num_groups);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(r.group_path[static_cast<std::size_t>(order[i - 1])],
              r.group_path[static_cast<std::size_t>(order[i])]);
  }
}

TEST(RecursivePartition, CliquesStayTogether) {
  // 4 cliques of 8 (cpu 80 each), fit threshold 100: each clique is one
  // group; the weak bridges are the only cut edges.
  Graph g;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 8; ++i) {
      g.AddVertex(Resource{.cpu = 10, .mem_gb = 1, .net_mbps = 1}, 1.0);
    }
    const int base = c * 8;
    for (int i = 0; i < 8; ++i) {
      for (int j = i + 1; j < 8; ++j) g.AddEdge(base + i, base + j, 10.0);
    }
  }
  for (int c = 0; c < 3; ++c) g.AddEdge(c * 8, (c + 1) * 8, 1.0);
  const auto r = RecursivePartition(
      g, [](const Resource& d, int) { return d.cpu <= 100.0; }, {});
  for (int c = 0; c < 4; ++c) {
    const int expected = r.group_of[static_cast<std::size_t>(c * 8)];
    for (int i = 1; i < 8; ++i) {
      EXPECT_EQ(r.group_of[static_cast<std::size_t>(c * 8 + i)], expected)
          << "clique " << c << " split";
    }
  }
}

// Parameterized scalability/sanity sweep.
class RecursivePartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(RecursivePartitionSweep, HandlesSize) {
  const int n = GetParam();
  const Graph g = RandomGraph(n, 8.0, static_cast<std::uint64_t>(n));
  const double cap = g.total_demand().cpu / 20.0;
  const auto r = RecursivePartition(
      g, [cap](const Resource& d, int) { return d.cpu <= cap; }, {});
  EXPECT_GE(r.num_groups, 15);
  EXPECT_NEAR(g.CutWeightKWay(r.group_of), r.cut_weight, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RecursivePartitionSweep,
                         ::testing::Values(100, 1000, 5000));

// --- multi-trial FM winner fold (graph/refine.h) ----------------------------

TEST(PickFmWinnerTest, SmallerViolationBeatsSmallerCut) {
  const std::vector<FmTrialOutcome> trials = {
      {.violation = 2.0, .cut = 1.0},   // best cut, infeasible
      {.violation = 0.0, .cut = 50.0},  // feasible
      {.violation = 0.0, .cut = 40.0},  // feasible, best feasible cut
  };
  EXPECT_EQ(PickFmWinner(trials), 2u);
}

TEST(PickFmWinnerTest, TiesKeepTheSmallestTrialId) {
  const std::vector<FmTrialOutcome> trials = {
      {.violation = 0.0, .cut = 10.0},
      {.violation = 0.0, .cut = 10.0},
      {.violation = 0.0, .cut = 10.0 + 1e-13},  // inside tolerance: a tie
  };
  EXPECT_EQ(PickFmWinner(trials), 0u);
}

TEST(PickFmWinnerTest, FoldIsInvariantToOutcomePermutationModuloIds) {
  // The fold must be a pure function of the outcome *vector* — the same
  // outcomes in a different trial order may name a different id, but the
  // winning (violation, cut) value must be identical. That is exactly the
  // property the multi-trial refinement relies on: trial results are
  // gathered into trial-id order before folding, so completion order can
  // never leak in.
  std::vector<FmTrialOutcome> trials = {
      {.violation = 0.0, .cut = 31.0},
      {.violation = 1.0, .cut = 7.0},
      {.violation = 0.0, .cut = 29.0},
      {.violation = 0.0, .cut = 33.0},
  };
  const auto base = trials[PickFmWinner(trials)];
  std::vector<std::size_t> perm = {3, 0, 2, 1};
  std::vector<FmTrialOutcome> shuffled;
  for (const auto i : perm) shuffled.push_back(trials[i]);
  const auto alt = shuffled[PickFmWinner(shuffled)];
  EXPECT_DOUBLE_EQ(alt.violation, base.violation);
  EXPECT_DOUBLE_EQ(alt.cut, base.cut);
}

TEST(BisectTest, MultiTrialRefinementNeverLosesToSingleTrial) {
  // Trial 0 replays the classic single-trial trajectory and the fold keeps
  // the best (violation, cut), so enabling trials can only improve the cut
  // for a feasible result.
  Rng rng(123);
  Graph g;
  constexpr int kN = 6000;  // above parallel_min_vertices: trials engage
  for (int i = 0; i < kN; ++i) {
    g.AddVertex(Resource{.cpu = 10, .mem_gb = 1, .net_mbps = 1}, 1.0);
  }
  for (int s = 0; s + 8 <= kN; s += 8) {
    for (int i = 1; i < 8; ++i) g.AddEdge(s, s + i, rng.Uniform(100, 5000));
  }
  for (int e = 0; e < kN / 2; ++e) {
    const auto a = static_cast<VertexIndex>(rng.NextBelow(kN));
    const auto b = static_cast<VertexIndex>(rng.NextBelow(kN));
    if (a != b) g.AddEdge(a, b, rng.Uniform(1, 50));
  }
  PartitionOptions single;
  single.fm_trials = 1;
  const Bisection base = Bisect(g, single);
  PartitionOptions multi;
  ASSERT_GE(multi.fm_trials, 2) << "default must exercise the trial fold";
  const Bisection best = Bisect(g, multi);
  EXPECT_LE(best.cut_weight, base.cut_weight + 1e-9);
}

}  // namespace
}  // namespace gl
