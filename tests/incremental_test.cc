#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "graph/incremental.h"

namespace gl {
namespace {

// Clustered graph: `k` cliques of `size`, weak ring between cliques.
Graph Cliques(int k, int size, double intra = 10.0, double inter = 0.5) {
  Graph g;
  for (int c = 0; c < k; ++c) {
    for (int i = 0; i < size; ++i) {
      g.AddVertex(Resource{.cpu = 10, .mem_gb = 1, .net_mbps = 1}, 1.0);
    }
  }
  for (int c = 0; c < k; ++c) {
    const int base = c * size;
    for (int i = 0; i < size; ++i) {
      for (int j = i + 1; j < size; ++j) g.AddEdge(base + i, base + j, intra);
    }
    g.AddEdge(base, ((c + 1) % k) * size, inter);
  }
  return g;
}

FitPredicate CpuFit(double limit) {
  return [limit](const Resource& d, int) { return d.cpu <= limit; };
}

TEST(Incremental, NoChangeNoMoves) {
  const Graph g = Cliques(4, 8);  // clique cpu = 80
  std::vector<int> previous(32);
  for (int v = 0; v < 32; ++v) previous[static_cast<std::size_t>(v)] = v / 8;
  const auto r = IncrementalRepartition(g, previous, CpuFit(100.0), {});
  EXPECT_EQ(r.moved_vertices, 0);
  EXPECT_EQ(r.num_groups, 4);
  EXPECT_EQ(r.infeasible_groups, 0);
}

TEST(Incremental, NewVerticesJoinTheirClique) {
  Graph g = Cliques(2, 6);
  // Two newcomers, each attached to one clique.
  const auto n1 = g.AddVertex({.cpu = 10, .mem_gb = 1, .net_mbps = 1}, 1.0);
  const auto n2 = g.AddVertex({.cpu = 10, .mem_gb = 1, .net_mbps = 1}, 1.0);
  g.AddEdge(n1, 0, 20.0);
  g.AddEdge(n2, 6, 20.0);
  std::vector<int> previous(static_cast<std::size_t>(g.num_vertices()), -1);
  for (int v = 0; v < 12; ++v) previous[static_cast<std::size_t>(v)] = v / 6;
  const auto r = IncrementalRepartition(g, previous, CpuFit(100.0), {});
  EXPECT_EQ(r.moved_vertices, 0);  // old vertices stay put
  EXPECT_EQ(r.group_of[static_cast<std::size_t>(n1)], r.group_of[0]);
  EXPECT_EQ(r.group_of[static_cast<std::size_t>(n2)], r.group_of[6]);
}

TEST(Incremental, OverfullGroupIsRepaired) {
  const Graph g = Cliques(2, 8);  // clique cpu 80
  // Previous assignment crams everything into one group.
  std::vector<int> previous(16, 0);
  const auto r = IncrementalRepartition(g, previous, CpuFit(100.0), {});
  EXPECT_EQ(r.infeasible_groups, 0);
  EXPECT_GE(r.num_groups, 2);
  // Repair should split along the clique boundary, not across it.
  EXPECT_LE(r.cut_weight, 2.0 * 0.5 + 1e-9);
}

TEST(Incremental, MovesStayBounded) {
  Rng rng(9);
  Graph g = Cliques(8, 8);
  // Previous matches cliques; one group is mildly overfull after a demand
  // bump on two vertices.
  std::vector<int> previous(64);
  for (int v = 0; v < 64; ++v) previous[static_cast<std::size_t>(v)] = v / 8;
  const auto r = IncrementalRepartition(g, previous, CpuFit(85.0), {});
  EXPECT_EQ(r.infeasible_groups, 0);
  // Feasible everywhere already (clique cpu 80 ≤ 85): nothing must move
  // beyond the refinement budget.
  IncrementalOptions opts;
  EXPECT_LE(r.moved_vertices,
            static_cast<int>(opts.migration_budget_fraction * 64) + 1);
}

TEST(Incremental, FarFewerMovesThanFreshPartition) {
  const Graph g = Cliques(16, 8);
  std::vector<int> previous(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) {
    previous[static_cast<std::size_t>(v)] = v / 8;
  }
  // Tighten the limit slightly: 80-cpu cliques no longer fit 75.
  const auto inc = IncrementalRepartition(g, previous, CpuFit(75.0), {});
  EXPECT_EQ(inc.infeasible_groups, 0);

  // A fresh recursive partition relabels arbitrarily; measure its diff.
  const auto fresh = RecursivePartition(
      g, [](const Resource& d, int) { return d.cpu <= 75.0; }, {});
  int fresh_moves = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    // Any vertex whose fresh group differs in membership from its previous
    // clique counts; approximate via group-of-first-clique-member.
    const int rep = (v / 8) * 8;
    if (fresh.group_of[static_cast<std::size_t>(v)] !=
        fresh.group_of[static_cast<std::size_t>(rep)]) {
      ++fresh_moves;
    }
  }
  // The incremental repair moves at most ~2 vertices per overfull clique.
  EXPECT_LE(inc.moved_vertices, 16 * 3);
  EXPECT_GT(inc.num_groups, 16);
}

TEST(Incremental, CutQualityStaysReasonable) {
  const Graph g = Cliques(8, 8, 10.0, 1.0);
  std::vector<int> previous(64);
  for (int v = 0; v < 64; ++v) previous[static_cast<std::size_t>(v)] = v / 8;
  const auto r = IncrementalRepartition(g, previous, CpuFit(90.0), {});
  // Previous was optimal (cut = 8 ring edges × 1.0); incremental must not
  // degrade it.
  EXPECT_LE(r.cut_weight, 8.0 + 1e-9);
}

TEST(Incremental, RefinementImprovesBadAssignments) {
  // Previous assignment swaps two vertices across cliques; refinement
  // should send them home.
  const Graph g = Cliques(2, 8);
  std::vector<int> previous(16);
  for (int v = 0; v < 16; ++v) previous[static_cast<std::size_t>(v)] = v / 8;
  std::swap(previous[0], previous[8]);
  const auto r = IncrementalRepartition(g, previous, CpuFit(100.0), {});
  EXPECT_EQ(r.group_of[0], r.group_of[1]);
  EXPECT_EQ(r.group_of[8], r.group_of[9]);
  EXPECT_LE(r.cut_weight, 1.0 + 1e-9);
}

TEST(Incremental, SparseOldIdsAreAccepted) {
  const Graph g = Cliques(2, 4);
  std::vector<int> previous{7, 7, 7, 7, 1000, 1000, 1000, 1000};
  const auto r = IncrementalRepartition(g, previous, CpuFit(100.0), {});
  EXPECT_EQ(r.num_groups, 2);
  EXPECT_EQ(r.moved_vertices, 0);
}

TEST(Incremental, AllNewVerticesStillWork) {
  const Graph g = Cliques(3, 6);
  std::vector<int> previous(18, -1);
  const auto r = IncrementalRepartition(g, previous, CpuFit(70.0), {});
  EXPECT_EQ(r.infeasible_groups, 0);
  int placed = 0;
  for (const int gi : r.group_of) placed += gi >= 0;
  EXPECT_EQ(placed, 18);
}

}  // namespace
}  // namespace gl
