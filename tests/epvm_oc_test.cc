// Tests for the opportunity-cost E-PVM mode and the new topology factories.
#include <gtest/gtest.h>

#include "schedulers/e_pvm.h"
#include "workload/scenarios.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000};

TEST(EPvmOpportunityCost, PlacesEverything) {
  const Topology topo = Topology::LeafSpine(8, 2, 2, kCap, 1000.0);
  const auto scenario = MakeTwitterCachingScenario();
  const auto demands = scenario->DemandsAt(30);
  const auto active = scenario->ActiveAt(30);
  SchedulerInput input;
  input.workload = &scenario->workload();
  input.demands = demands;
  input.active = active;
  input.topology = &topo;
  EPvmScheduler sched(1.0, EPvmMode::kOpportunityCost);
  const auto p = sched.Place(input);
  EXPECT_EQ(p.num_placed(), 176);
}

TEST(EPvmOpportunityCost, BalancesLikeLeastUtilized) {
  const Topology topo = Topology::LeafSpine(8, 2, 2, kCap, 1000.0);
  const auto scenario = MakeTwitterCachingScenario();
  const auto demands = scenario->DemandsAt(30);
  const auto active = scenario->ActiveAt(30);
  SchedulerInput input;
  input.workload = &scenario->workload();
  input.demands = demands;
  input.active = active;
  input.topology = &topo;
  EPvmScheduler oc(1.0, EPvmMode::kOpportunityCost);
  const auto p = oc.Place(input);
  // Exponential marginal cost spreads load: every machine ends up active
  // and the utilization spread stays narrow.
  EXPECT_EQ(p.NumActiveServers(), 16);
  const auto loads = ServerLoads(p, demands, topo.num_servers());
  double lo = 1e18, hi = 0.0;
  for (int s = 0; s < 16; ++s) {
    const double u = loads[static_cast<std::size_t>(s)].DominantShare(kCap);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(hi - lo, 0.3);
}

TEST(EPvmOpportunityCost, AvoidsLoadingHotDimension) {
  // Server 0 is CPU-hot; the next CPU-heavy container should go elsewhere
  // even though server 0 has plenty of memory.
  Topology topo = Topology::LeafSpine(2, 1, 1, kCap, 1000.0);
  Workload w;
  for (int i = 0; i < 2; ++i) {
    Container c;
    c.id = ContainerId{i};
    w.containers.push_back(c);
  }
  std::vector<Resource> demands{
      {.cpu = 2500, .mem_gb = 2, .net_mbps = 10},   // hot CPU item
      {.cpu = 500, .mem_gb = 2, .net_mbps = 10}};
  std::vector<std::uint8_t> active(2, 1);
  SchedulerInput input;
  input.workload = &w;
  input.demands = demands;
  input.active = active;
  input.topology = &topo;
  EPvmScheduler oc(1.0, EPvmMode::kOpportunityCost);
  const auto p = oc.Place(input);
  EXPECT_NE(p.server_of[0], p.server_of[1]);
}

// --- new topology factories -------------------------------------------------

TEST(ThreeTier, CountsMatchSpec) {
  Topology::ThreeTierSpec spec;
  spec.pods = 3;
  spec.racks_per_pod = 4;
  spec.servers_per_rack = 5;
  spec.agg_per_pod = 2;
  spec.core_switches = 4;
  const Topology t = Topology::ThreeTier(spec);
  EXPECT_EQ(t.num_servers(), 3 * 4 * 5);
  // switches: 4 core + 3×2 agg + 12 ToR
  EXPECT_EQ(t.num_switches(), 4 + 6 + 12);
  EXPECT_EQ(t.num_levels(), 4);
}

TEST(ThreeTier, UplinkCapacities) {
  Topology::ThreeTierSpec spec;
  spec.rack_uplinks = 2;
  spec.pod_uplinks = 4;
  spec.fabric_link_mbps = 40000.0;
  const Topology t = Topology::ThreeTier(spec);
  const NodeId rack = t.AncestorAt(t.server_node(ServerId{0}), 1);
  const NodeId pod = t.AncestorAt(t.server_node(ServerId{0}), 2);
  EXPECT_DOUBLE_EQ(t.uplink_capacity(rack), 80000.0);
  EXPECT_DOUBLE_EQ(t.uplink_capacity(pod), 160000.0);
}

TEST(Vl2Factory, TwentyServersPerTor) {
  const Topology t = Topology::Vl2(16, kCap);
  EXPECT_EQ(t.num_servers(), 16 * 20);
  const NodeId rack = t.AncestorAt(t.server_node(ServerId{0}), 1);
  EXPECT_EQ(t.ServersUnder(rack).size(), 20u);
  // Dual-homed ToR: 2 × 40G uplinks.
  EXPECT_DOUBLE_EQ(t.uplink_capacity(rack), 80000.0);
}

TEST(Vl2Factory, HopDistancesAreClos) {
  const Topology t = Topology::Vl2(16, kCap);
  EXPECT_EQ(t.HopDistance(ServerId{0}, ServerId{1}), 2);    // same ToR
  EXPECT_EQ(t.HopDistance(ServerId{0}, ServerId{21}), 4);   // same pod
  EXPECT_EQ(t.HopDistance(ServerId{0}, ServerId{300}), 6);  // cross pod
}

}  // namespace
}  // namespace gl
