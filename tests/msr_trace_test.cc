#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "common/stats.h"
#include "workload/calibration.h"
#include "workload/msr_trace.h"

namespace gl {
namespace {

MsrTraceOptions SmallOptions() {
  MsrTraceOptions opts;
  opts.num_vertices = 500;
  return opts;
}

TEST(MsrTrace, PaperScaleShape) {
  MsrTraceOptions opts;  // 5488 vertices
  Rng rng(1);
  const auto trace = GenerateMsrSearchTrace(opts, rng);
  EXPECT_EQ(trace.workload.size(), 5488);
  // Paper: 128538 edges; the configuration model lands close after dedup.
  EXPECT_GT(trace.workload.edges.size(), 90000u);
  EXPECT_LT(trace.workload.edges.size(), 160000u);
  // Mean distinct connections per VM ≈ 45 [19].
  const double mean_degree =
      2.0 * static_cast<double>(trace.workload.edges.size()) / 5488.0;
  EXPECT_NEAR(mean_degree, 45.0, 12.0);
}

TEST(MsrTrace, SearchVerticesHoldTheIndex) {
  Rng rng(2);
  const auto trace = GenerateMsrSearchTrace(SmallOptions(), rng);
  for (int v = 0; v < trace.workload.size(); ++v) {
    const auto& c = trace.workload.containers[static_cast<std::size_t>(v)];
    if (!trace.is_background[static_cast<std::size_t>(v)]) {
      // Fig 5(b): every search vertex pins 12 GB of in-memory index.
      EXPECT_DOUBLE_EQ(c.demand.mem_gb, kSolrIndexMemoryGb);
      EXPECT_EQ(c.app, AppType::kSolr);
    } else {
      EXPECT_EQ(c.app, AppType::kHadoop);
    }
  }
}

TEST(MsrTrace, BackgroundFractionRespected) {
  Rng rng(3);
  const auto trace = GenerateMsrSearchTrace(SmallOptions(), rng);
  int bg = 0;
  for (const auto b : trace.is_background) bg += b;
  EXPECT_NEAR(bg / 500.0, 0.10, 0.02);
}

TEST(MsrTrace, FlowSizesMatchPaperRanges) {
  Rng rng(4);
  const auto trace = GenerateMsrSearchTrace(SmallOptions(), rng);
  ASSERT_FALSE(trace.query_flow_kb.empty());
  ASSERT_FALSE(trace.background_flow_mb.empty());
  for (const double kb : trace.query_flow_kb) {
    EXPECT_GE(kb, 1.6);
    EXPECT_LE(kb, 2.0);
  }
  for (const double mb : trace.background_flow_mb) {
    EXPECT_GE(mb, 1.0);
    EXPECT_LE(mb, 50.0);
  }
}

TEST(MsrTrace, EdgeWeightsAreBoundedFlowCounts) {
  Rng rng(5);
  const auto trace = GenerateMsrSearchTrace(SmallOptions(), rng);
  for (const auto& e : trace.workload.edges) {
    EXPECT_GE(e.flows, 1.0);
    EXPECT_LE(e.flows, 120.0);  // per-ISN connection cap
  }
}

TEST(MsrTrace, QueryEdgesAreSearchToSearch) {
  Rng rng(6);
  const auto trace = GenerateMsrSearchTrace(SmallOptions(), rng);
  for (const auto& e : trace.workload.edges) {
    const bool bg =
        trace.is_background[static_cast<std::size_t>(e.a.value())] ||
        trace.is_background[static_cast<std::size_t>(e.b.value())];
    EXPECT_EQ(e.is_query, !bg);
  }
}

TEST(MsrTrace, DeterministicGivenSeed) {
  Rng r1(9), r2(9);
  const auto t1 = GenerateMsrSearchTrace(SmallOptions(), r1);
  const auto t2 = GenerateMsrSearchTrace(SmallOptions(), r2);
  ASSERT_EQ(t1.workload.edges.size(), t2.workload.edges.size());
  for (std::size_t i = 0; i < t1.workload.edges.size(); i += 17) {
    EXPECT_EQ(t1.workload.edges[i].a, t2.workload.edges[i].a);
    EXPECT_DOUBLE_EQ(t1.workload.edges[i].flows, t2.workload.edges[i].flows);
  }
}

TEST(MsrTrace, HeavyTailedEdgeWeights) {
  Rng rng(10);
  const auto trace = GenerateMsrSearchTrace(SmallOptions(), rng);
  RunningStats s;
  for (const auto& e : trace.workload.edges) s.Add(e.flows);
  // Fig 5(b): edge weights span orders of magnitude.
  EXPECT_GT(s.max() / s.min(), 20.0);
}

// --- expansion (Fig 13 setup) -------------------------------------------------------

TEST(ExpandTrace, CountsMultiply) {
  Rng rng(11);
  const auto trace = GenerateMsrSearchTrace(SmallOptions(), rng);
  const Workload expanded = ExpandTraceToContainers(trace, 9);
  EXPECT_EQ(expanded.size(), 500 * 9);
  // Intra-service stars add (per_vertex-1) edges per vertex.
  EXPECT_EQ(expanded.edges.size(),
            trace.workload.edges.size() + 500u * 8u);
}

TEST(ExpandTrace, PaperContainerCount) {
  MsrTraceOptions opts;
  Rng rng(12);
  const auto trace = GenerateMsrSearchTrace(opts, rng);
  const Workload expanded = ExpandTraceToContainers(trace, 9);
  EXPECT_EQ(expanded.size(), 49392);  // 5488 × 9, the Fig. 13 count
}

TEST(ExpandTrace, ReplicasInheritProfile) {
  Rng rng(13);
  const auto trace = GenerateMsrSearchTrace(SmallOptions(), rng);
  const Workload expanded = ExpandTraceToContainers(trace, 3);
  for (int v = 0; v < trace.workload.size(); ++v) {
    const auto& proto =
        trace.workload.containers[static_cast<std::size_t>(v)];
    for (int r = 0; r < 3; ++r) {
      const auto& c =
          expanded.containers[static_cast<std::size_t>(v * 3 + r)];
      EXPECT_EQ(c.app, proto.app);
      EXPECT_DOUBLE_EQ(c.demand.cpu, proto.demand.cpu);
      EXPECT_EQ(c.service, v);
    }
  }
}

TEST(ExpandTrace, PerVertexOneIsIdentityPlusNothing) {
  Rng rng(14);
  const auto trace = GenerateMsrSearchTrace(SmallOptions(), rng);
  const Workload expanded = ExpandTraceToContainers(trace, 1);
  EXPECT_EQ(expanded.size(), trace.workload.size());
  EXPECT_EQ(expanded.edges.size(), trace.workload.edges.size());
}

}  // namespace
}  // namespace gl
