// Tests for the epoch controller (scheduler + migration planner loop) and
// the workload CSV round-trip.
#include <gtest/gtest.h>

#include <sstream>

#include "core/epoch_controller.h"
#include "core/goldilocks.h"
#include "workload/scenarios.h"
#include "workload/workload_io.h"

namespace gl {
namespace {

// --- epoch controller --------------------------------------------------------

TEST(EpochController, FirstEpochIsAllStartsNoMigrations) {
  const Topology topo = Topology::Testbed16();
  const auto scenario = MakeTwitterCachingScenario();
  EpochController ctl(std::make_unique<GoldilocksScheduler>(), topo);
  const auto demands = scenario->DemandsAt(0);
  const auto active = scenario->ActiveAt(0);
  const auto d = ctl.Step(scenario->workload(), demands, active);
  EXPECT_EQ(d.epoch, 0);
  EXPECT_EQ(d.containers_placed, 176);
  EXPECT_EQ(d.containers_started, 176);
  EXPECT_TRUE(d.plan.steps.empty());
  EXPECT_DOUBLE_EQ(ctl.total_migration_makespan_ms(), 0.0);
}

TEST(EpochController, PlansTransitionsBetweenEpochs) {
  const Topology topo = Topology::Testbed16();
  const auto scenario = MakeTwitterCachingScenario();
  GoldilocksOptions opts;
  opts.repartition_interval = 1;  // force per-epoch re-planning
  EpochController ctl(std::make_unique<GoldilocksScheduler>(opts), topo);
  for (int e = 0; e < 4; ++e) {
    const auto demands = scenario->DemandsAt(e * 15);  // big jumps
    const auto active = scenario->ActiveAt(e * 15);
    const auto d = ctl.Step(scenario->workload(), demands, active);
    // Whatever moves the scheduler wants, the plan must realize them all.
    EXPECT_TRUE(d.plan.stuck.empty()) << "epoch " << e;
    if (e > 0 && !d.plan.steps.empty()) {
      EXPECT_GT(d.plan.makespan_ms, 0.0);
    }
  }
  EXPECT_EQ(ctl.epochs_run(), 4);
}

TEST(EpochController, TracksStartsAndStopsUnderChurn) {
  const Topology topo = Topology::Testbed16();
  const auto scenario = MakeAzureMixScenario();
  EpochController ctl(std::make_unique<GoldilocksScheduler>(), topo);
  int total_started = 0, total_stopped = 0;
  for (int e = 0; e < 12; ++e) {
    const auto demands = scenario->DemandsAt(e);
    const auto active = scenario->ActiveAt(e);
    const auto d = ctl.Step(scenario->workload(), demands, active);
    total_started += d.containers_started;
    total_stopped += d.containers_stopped;
  }
  // The Azure trace churns containers, so both counters move.
  EXPECT_GT(total_started, 0);
  EXPECT_GT(total_stopped, 0);
}

TEST(EpochController, AccumulatesTransitionCosts) {
  const Topology topo = Topology::Testbed16();
  const auto scenario = MakeTwitterCachingScenario();
  GoldilocksOptions opts;
  opts.repartition_interval = 1;
  EpochController ctl(std::make_unique<GoldilocksScheduler>(opts), topo);
  for (int e = 0; e < 3; ++e) {
    const auto demands = scenario->DemandsAt(e * 20);
    const auto active = scenario->ActiveAt(e * 20);
    ctl.Step(scenario->workload(), demands, active);
  }
  EXPECT_GE(ctl.total_image_gb(), 0.0);
}

// --- workload CSV round-trip ---------------------------------------------------

TEST(WorkloadIo, RoundTripPreservesEverything) {
  const auto scenario = MakeAzureMixScenario();
  const Workload& original = scenario->workload();

  std::stringstream containers, edges;
  WriteContainersCsv(original, containers);
  WriteEdgesCsv(original, edges);
  const auto loaded = ReadWorkloadCsv(containers, edges);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.workload.size(), original.size());
  ASSERT_EQ(loaded.workload.edges.size(), original.edges.size());
  for (int i = 0; i < original.size(); ++i) {
    const auto& a = original.containers[static_cast<std::size_t>(i)];
    const auto& b = loaded.workload.containers[static_cast<std::size_t>(i)];
    EXPECT_EQ(a.app, b.app);
    EXPECT_DOUBLE_EQ(a.demand.cpu, b.demand.cpu);
    EXPECT_DOUBLE_EQ(a.demand.mem_gb, b.demand.mem_gb);
    EXPECT_EQ(a.service, b.service);
    EXPECT_EQ(a.replica_set, b.replica_set);
  }
  for (std::size_t i = 0; i < original.edges.size(); ++i) {
    EXPECT_EQ(original.edges[i].a, loaded.workload.edges[i].a);
    EXPECT_DOUBLE_EQ(original.edges[i].flows, loaded.workload.edges[i].flows);
    EXPECT_EQ(original.edges[i].is_query, loaded.workload.edges[i].is_query);
  }
}

TEST(WorkloadIo, ReplicaSetsSurviveRoundTrip) {
  Workload w;
  Container c;
  c.id = ContainerId{0};
  c.app = AppType::kCassandra;
  c.demand = {.cpu = 10, .mem_gb = 1, .net_mbps = 2};
  c.replica_set = GroupId{42};
  w.containers.push_back(c);
  std::stringstream cs, es;
  WriteContainersCsv(w, cs);
  WriteEdgesCsv(w, es);
  const auto loaded = ReadWorkloadCsv(cs, es);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.workload.containers[0].replica_set, GroupId{42});
}

TEST(WorkloadIo, RejectsNonDenseIds) {
  std::stringstream cs("id,app,cpu,mem_gb,net_mbps,service,replica_set\n"
                       "5,Memcached,1,1,1,0,\n");
  std::stringstream es("a,b,flows,is_query\n");
  const auto loaded = ReadWorkloadCsv(cs, es);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("line 2"), std::string::npos);
}

TEST(WorkloadIo, RejectsDanglingEdges) {
  std::stringstream cs("id,app,cpu,mem_gb,net_mbps,service,replica_set\n"
                       "0,Memcached,1,1,1,0,\n");
  std::stringstream es("a,b,flows,is_query\n0,7,3,1\n");
  const auto loaded = ReadWorkloadCsv(cs, es);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("out of range"), std::string::npos);
}

TEST(WorkloadIo, RejectsNegativeDemand) {
  std::stringstream cs("id,app,cpu,mem_gb,net_mbps,service,replica_set\n"
                       "0,Memcached,-5,1,1,0,\n");
  std::stringstream es("a,b,flows,is_query\n");
  const auto loaded = ReadWorkloadCsv(cs, es);
  EXPECT_FALSE(loaded.ok);
}

TEST(WorkloadIo, UnknownAppMapsToGeneric) {
  std::stringstream cs("id,app,cpu,mem_gb,net_mbps,service,replica_set\n"
                       "0,SomethingNew,1,1,1,0,\n");
  std::stringstream es("a,b,flows,is_query\n");
  const auto loaded = ReadWorkloadCsv(cs, es);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.workload.containers[0].app, AppType::kCassandra);
}

TEST(WorkloadIo, FileRoundTrip) {
  const auto scenario = MakeTwitterCachingScenario();
  const std::string cpath = "/tmp/gl_containers_test.csv";
  const std::string epath = "/tmp/gl_edges_test.csv";
  ASSERT_TRUE(SaveWorkload(scenario->workload(), cpath, epath));
  const auto loaded = LoadWorkload(cpath, epath);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.workload.size(), scenario->workload().size());
}

}  // namespace
}  // namespace gl
