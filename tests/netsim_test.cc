#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "netsim/flowsim.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 1600, .mem_gb = 64, .net_mbps = 1000};

TEST(FlowSim, SingleFlowGetsLineRate) {
  const Topology topo = Topology::LeafSpine(2, 2, 2, kCap, 1000.0);
  FlowSimulator sim(topo);
  sim.AddFlow(ServerId{0}, ServerId{2}, 1e6);
  sim.ComputeMaxMinRates();
  EXPECT_DOUBLE_EQ(sim.flow(0).rate_mbps, 1000.0);  // NIC limited
}

TEST(FlowSim, TwoFlowsShareTheNic) {
  const Topology topo = Topology::LeafSpine(2, 2, 2, kCap, 1000.0);
  FlowSimulator sim(topo);
  // Both flows leave server 0: its 1G NIC is the bottleneck.
  sim.AddFlow(ServerId{0}, ServerId{2}, 1e6);
  sim.AddFlow(ServerId{0}, ServerId{3}, 1e6);
  sim.ComputeMaxMinRates();
  EXPECT_DOUBLE_EQ(sim.flow(0).rate_mbps, 500.0);
  EXPECT_DOUBLE_EQ(sim.flow(1).rate_mbps, 500.0);
}

TEST(FlowSim, MaxMinIsWaterFilling) {
  const Topology topo = Topology::LeafSpine(2, 2, 2, kCap, 1000.0);
  FlowSimulator sim(topo);
  // Flows 0,1 share server 0's NIC; flow 2 has server 1 to itself but
  // shares the destination NIC of server 2 with flow 0.
  sim.AddFlow(ServerId{0}, ServerId{2}, 1e6);
  sim.AddFlow(ServerId{0}, ServerId{3}, 1e6);
  sim.AddFlow(ServerId{1}, ServerId{2}, 1e6);
  sim.ComputeMaxMinRates();
  // Fair shares: flows 0,1 get 500 at the source NIC; flow 2 then gets the
  // remaining 500 headroom... but dst NIC of 2 allows 1000 total: flow 0
  // fixed at 500 → flow 2 can take 500. All 500.
  EXPECT_NEAR(sim.flow(0).rate_mbps, 500.0, 1.0);
  EXPECT_NEAR(sim.flow(1).rate_mbps, 500.0, 1.0);
  EXPECT_NEAR(sim.flow(2).rate_mbps, 500.0, 1.0);
}

TEST(FlowSim, RatesRespectEveryLinkCapacity) {
  const Topology topo = Topology::FatTree(4, kCap, 1000.0);
  FlowSimulator sim(topo);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto a = static_cast<int>(rng.NextBelow(16));
    const auto b = static_cast<int>(rng.NextBelow(16));
    if (a != b) sim.AddFlow(ServerId{a}, ServerId{b}, 1e6);
  }
  sim.ComputeMaxMinRates();
  // Re-derive per-link usage and check it against capacity.
  for (int n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_LE(sim.PeakUplinkUtilization(NodeId{n}), 1.0 + 1e-6);
  }
}

TEST(FlowSim, IntraServerFlowCompletesInstantly) {
  const Topology topo = Topology::LeafSpine(2, 2, 2, kCap, 1000.0);
  FlowSimulator sim(topo);
  sim.AddFlow(ServerId{0}, ServerId{0}, 1e9);
  sim.RunToCompletion(0.01);
  EXPECT_DOUBLE_EQ(sim.flow(0).completion_ms, 0.01);
}

TEST(FlowSim, CompletionTimeMatchesSizeOverRate) {
  const Topology topo = Topology::LeafSpine(2, 2, 2, kCap, 1000.0);
  FlowSimulator sim(topo);
  // 1 MB at 1000 Mbps = 8e6 bits / 1e9 bps = 8 ms.
  sim.AddFlow(ServerId{0}, ServerId{2}, 1e6);
  sim.RunToCompletion();
  EXPECT_NEAR(sim.flow(0).completion_ms, 8.0, 0.01);
}

TEST(FlowSim, ShortFlowsFinishBeforeLongOnes) {
  const Topology topo = Topology::LeafSpine(2, 2, 2, kCap, 1000.0);
  FlowSimulator sim(topo);
  sim.AddFlow(ServerId{0}, ServerId{2}, 2e3);   // a 2 KB query flow
  sim.AddFlow(ServerId{0}, ServerId{3}, 50e6);  // a 50 MB background flow
  sim.RunToCompletion();
  EXPECT_LT(sim.flow(0).completion_ms, sim.flow(1).completion_ms / 100.0);
}

TEST(FlowSim, BandwidthFreedAfterCompletionSpeedsSurvivors) {
  const Topology topo = Topology::LeafSpine(2, 2, 2, kCap, 1000.0);
  FlowSimulator sim(topo);
  sim.AddFlow(ServerId{0}, ServerId{2}, 1e6);  // finishes first
  sim.AddFlow(ServerId{0}, ServerId{3}, 2e6);
  sim.RunToCompletion();
  // Flow 1: 1 MB at 500 (16ms) + 1 MB at 1000 (8ms) = 24 ms.
  EXPECT_NEAR(sim.flow(1).completion_ms, 24.0, 0.5);
  EXPECT_NEAR(sim.flow(0).completion_ms, 16.0, 0.5);
}

TEST(FlowSim, LocalityShortensPath) {
  const Topology topo = Topology::FatTree(4, kCap, 1000.0);
  // Same-rack flow contends with nothing above the ToR.
  FlowSimulator sim(topo);
  sim.AddFlow(ServerId{0}, ServerId{1}, 1e6);
  sim.RunToCompletion();
  const NodeId rack = topo.AncestorAt(topo.server_node(ServerId{0}), 1);
  EXPECT_DOUBLE_EQ(sim.PeakUplinkUtilization(rack), 0.0);
}

TEST(FlowSim, CrossPodLoadsTheFabric) {
  const Topology topo = Topology::FatTree(4, kCap, 1000.0);
  FlowSimulator sim(topo);
  sim.AddFlow(ServerId{0}, ServerId{15}, 1e6);
  sim.ComputeMaxMinRates();
  const NodeId pod = topo.AncestorAt(topo.server_node(ServerId{0}), 2);
  EXPECT_GT(sim.PeakUplinkUtilization(pod), 0.0);
}

TEST(FlowSim, ClearResets) {
  const Topology topo = Topology::LeafSpine(2, 2, 2, kCap, 1000.0);
  FlowSimulator sim(topo);
  sim.AddFlow(ServerId{0}, ServerId{2}, 1e6);
  sim.RunToCompletion();
  sim.Clear();
  EXPECT_EQ(sim.num_flows(), 0);
  for (int n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(sim.PeakUplinkUtilization(NodeId{n}), 0.0);
  }
}

TEST(FlowSim, MeanFct) {
  const Topology topo = Topology::LeafSpine(2, 2, 2, kCap, 1000.0);
  FlowSimulator sim(topo);
  sim.AddFlow(ServerId{0}, ServerId{2}, 1e6);
  sim.AddFlow(ServerId{1}, ServerId{3}, 1e6);
  sim.RunToCompletion();
  EXPECT_NEAR(sim.MeanFctMs(), 8.0, 0.5);
}

}  // namespace
}  // namespace gl
