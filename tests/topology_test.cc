#include <gtest/gtest.h>

#include <set>

#include "topology/datacenters.h"
#include "topology/topology.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 1600, .mem_gb = 64, .net_mbps = 1000};

// --- fat-tree ------------------------------------------------------------------

TEST(FatTree, PaperScaleCounts) {
  // The Fig. 13 topology: 28-ary fat tree → 5488 servers, 980 switches.
  const Topology t = Topology::FatTree(28, kCap, 10000.0);
  EXPECT_EQ(t.num_servers(), 5488);
  EXPECT_EQ(t.num_switches(), 980);
}

TEST(FatTree, SmallCounts) {
  const Topology t = Topology::FatTree(4, kCap, 1000.0);
  EXPECT_EQ(t.num_servers(), 16);     // k^3/4
  EXPECT_EQ(t.num_switches(), 20);    // 5k^2/4
  EXPECT_EQ(t.num_levels(), 4);
}

TEST(FatTree, HopDistances) {
  const Topology t = Topology::FatTree(4, kCap, 1000.0);
  // Servers 0,1 share a rack; 0,2 share a pod; 0,8 are cross-pod.
  EXPECT_EQ(t.HopDistance(ServerId{0}, ServerId{0}), 0);
  EXPECT_EQ(t.HopDistance(ServerId{0}, ServerId{1}), 2);
  EXPECT_EQ(t.HopDistance(ServerId{0}, ServerId{2}), 4);
  EXPECT_EQ(t.HopDistance(ServerId{0}, ServerId{8}), 6);
  // Symmetry.
  EXPECT_EQ(t.HopDistance(ServerId{8}, ServerId{0}), 6);
}

TEST(FatTree, UplinkCapacities) {
  const Topology t = Topology::FatTree(4, kCap, 1000.0);
  // Rack uplink: k/2 × link = 2000; pod uplink: (k/2)^2 × link = 4000.
  const NodeId rack = t.AncestorAt(t.server_node(ServerId{0}), 1);
  const NodeId pod = t.AncestorAt(t.server_node(ServerId{0}), 2);
  EXPECT_DOUBLE_EQ(t.uplink_capacity(rack), 2000.0);
  EXPECT_DOUBLE_EQ(t.uplink_capacity(pod), 4000.0);
  // Server NIC equals the link rate.
  EXPECT_DOUBLE_EQ(t.server_capacity(ServerId{0}).net_mbps, 1000.0);
}

TEST(FatTree, ServersUnderSubtrees) {
  const Topology t = Topology::FatTree(4, kCap, 1000.0);
  EXPECT_EQ(t.ServersUnder(t.root()).size(), 16u);
  const NodeId rack = t.AncestorAt(t.server_node(ServerId{0}), 1);
  const auto rack_servers = t.ServersUnder(rack);
  EXPECT_EQ(rack_servers.size(), 2u);
  const NodeId pod = t.AncestorAt(t.server_node(ServerId{0}), 2);
  EXPECT_EQ(t.ServersUnder(pod).size(), 4u);
}

TEST(FatTree, ServersInOrderAreContiguous) {
  const Topology t = Topology::FatTree(4, kCap, 1000.0);
  const auto servers = t.ServersUnder(t.root());
  std::set<int> seen;
  for (const auto s : servers) seen.insert(s.value());
  EXPECT_EQ(seen.size(), 16u);
  // Left-most ordering: adjacent entries share racks pairwise.
  EXPECT_EQ(t.HopDistance(servers[0], servers[1]), 2);
}

TEST(FatTree, NodesAtLevel) {
  const Topology t = Topology::FatTree(4, kCap, 1000.0);
  EXPECT_EQ(t.NodesAtLevel(1).size(), 8u);  // k^2/2 racks
  EXPECT_EQ(t.NodesAtLevel(2).size(), 4u);  // pods
  EXPECT_EQ(t.NodesAtLevel(3).size(), 1u);  // core root
  EXPECT_EQ(t.NodesAtLevel(0).size(), 16u);
}

// --- leaf-spine -----------------------------------------------------------------

TEST(LeafSpine, Counts) {
  const Topology t = Topology::LeafSpine(8, 2, 2, kCap, 1000.0);
  EXPECT_EQ(t.num_servers(), 16);
  EXPECT_EQ(t.num_switches(), 10);  // 8 leaves + 2 spines
  EXPECT_EQ(t.num_levels(), 3);
}

TEST(LeafSpine, HopDistances) {
  const Topology t = Topology::LeafSpine(8, 2, 2, kCap, 1000.0);
  EXPECT_EQ(t.HopDistance(ServerId{0}, ServerId{1}), 2);  // same leaf
  EXPECT_EQ(t.HopDistance(ServerId{0}, ServerId{2}), 4);  // cross leaf
}

TEST(LeafSpine, UplinkIsSpineMesh) {
  const Topology t = Topology::LeafSpine(8, 2, 2, kCap, 1000.0);
  const NodeId leaf = t.AncestorAt(t.server_node(ServerId{0}), 1);
  EXPECT_DOUBLE_EQ(t.uplink_capacity(leaf), 2000.0);  // 2 spines × 1G
}

TEST(Testbed16, MatchesPaperSpec) {
  const Topology t = Topology::Testbed16();
  EXPECT_EQ(t.num_servers(), 16);
  const auto& cap = t.server_capacity(ServerId{0});
  EXPECT_DOUBLE_EQ(cap.cpu, 3200.0);   // 32 cores
  EXPECT_DOUBLE_EQ(cap.mem_gb, 64.0);
  EXPECT_DOUBLE_EQ(cap.net_mbps, 1000.0);
}

// --- capacity bookkeeping ---------------------------------------------------------

TEST(TopologyCapacity, TotalsAndAverages) {
  const Topology t = Topology::LeafSpine(2, 2, 1, kCap, 1000.0);
  Resource expect_cap = kCap;
  expect_cap.net_mbps = 1000.0;
  EXPECT_DOUBLE_EQ(t.total_server_capacity().cpu, 4 * expect_cap.cpu);
  EXPECT_DOUBLE_EQ(t.average_server_capacity().cpu, expect_cap.cpu);
}

TEST(TopologyCapacity, Heterogeneity) {
  Topology t = Topology::LeafSpine(2, 2, 1, kCap, 1000.0);
  Resource small = kCap * 0.5;
  t.set_server_capacity(ServerId{0}, small);
  EXPECT_DOUBLE_EQ(t.server_capacity(ServerId{0}).cpu, kCap.cpu * 0.5);
  EXPECT_DOUBLE_EQ(t.average_server_capacity().cpu, kCap.cpu * 0.875);
}

// --- reservations & failures -------------------------------------------------------

TEST(TopologyBandwidth, ReserveRelease) {
  Topology t = Topology::LeafSpine(2, 2, 2, kCap, 1000.0);
  const NodeId leaf = t.AncestorAt(t.server_node(ServerId{0}), 1);
  EXPECT_DOUBLE_EQ(t.uplink_residual(leaf), 2000.0);
  t.Reserve(leaf, 500.0);
  EXPECT_DOUBLE_EQ(t.uplink_residual(leaf), 1500.0);
  t.Release(leaf, 200.0);
  EXPECT_DOUBLE_EQ(t.uplink_residual(leaf), 1700.0);
  t.ClearReservations();
  EXPECT_DOUBLE_EQ(t.uplink_residual(leaf), 2000.0);
}

TEST(TopologyBandwidth, ReleaseClampsAtZero) {
  Topology t = Topology::LeafSpine(2, 2, 2, kCap, 1000.0);
  const NodeId leaf = t.AncestorAt(t.server_node(ServerId{0}), 1);
  t.Reserve(leaf, 100.0);
  t.Release(leaf, 500.0);
  EXPECT_DOUBLE_EQ(t.uplink_reserved(leaf), 0.0);
}

TEST(TopologyFailure, DegradeUplink) {
  Topology t = Topology::FatTree(4, kCap, 1000.0);
  const NodeId pod = t.AncestorAt(t.server_node(ServerId{0}), 2);
  const double before = t.uplink_capacity(pod);
  t.DegradeUplink(pod, 0.5);
  EXPECT_DOUBLE_EQ(t.uplink_capacity(pod), before * 0.5);
}

// --- Table I data -----------------------------------------------------------------

TEST(TableOne, FiveDataCenters) {
  const auto& dcs = TableOneDataCenters();
  ASSERT_EQ(dcs.size(), 5u);
  EXPECT_EQ(dcs[0].servers, 98304);   // Google
  EXPECT_EQ(dcs[1].servers, 184320);  // Facebook
  EXPECT_EQ(dcs[2].servers, 46080);   // VL2
  EXPECT_EQ(dcs[3].servers, 32768);   // Fat-tree(32)
  EXPECT_EQ(dcs[4].servers, 93312);   // Fat-tree(72)
  for (const auto& dc : dcs) {
    EXPECT_GT(dc.tor_switches, 0);
    EXPECT_GT(dc.server_max_watts, 0.0);
    EXPECT_GT(dc.tor_switch_watts, 0.0);
  }
}

}  // namespace
}  // namespace gl
