// Tests for the deterministic parallel coarsening kernels (DESIGN.md §16):
// heavy-edge matching must be bit-identical at every thread width, produce
// only structurally valid pairings on adversarial shapes (stars, paths,
// cliques), and contraction must reproduce the exact cluster-quotient graph.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/coarsen.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/scratch.h"

namespace gl {
namespace {

// Clustered random graph in the bench shape: services of ~4 with heavy
// intra edges plus sparse light inter edges. Positive weights only —
// matching ignores anti-affinity edges, which MatchingSkipsNegativeEdges
// covers separately.
CsrGraph RandomCsr(int n, std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  for (int i = 0; i < n; ++i) {
    g.AddVertex(Resource{.cpu = 10, .mem_gb = 1, .net_mbps = 1},
                1.0 + static_cast<double>(rng.NextBelow(3)));
  }
  for (int s = 0; s + 4 <= n; s += 4) {
    for (int i = 1; i < 4; ++i) {
      g.AddEdge(s, s + i, static_cast<double>(1 + rng.NextBelow(9)));
    }
  }
  for (int e = 0; e < n; ++e) {
    const auto a = static_cast<VertexIndex>(rng.NextBelow(n));
    const auto b = static_cast<VertexIndex>(rng.NextBelow(n));
    if (a != b) g.AddEdge(a, b, static_cast<double>(1 + rng.NextBelow(5)));
  }
  CsrGraph csr;
  csr.BuildFrom(g);
  return csr;
}

CsrGraph FromGraph(const Graph& g) {
  CsrGraph csr;
  csr.BuildFrom(g);
  return csr;
}

// Runs matching + contraction with a fresh Rng(seed) on `threads` workers
// (nullptr pool when threads == 1, like the partitioner's serial path).
struct CoarsenRun {
  std::vector<VertexIndex> match;
  std::vector<VertexIndex> absorb;
  std::vector<VertexIndex> fine_to_coarse;
  CsrGraph coarse;
};

CoarsenRun RunCoarsen(const CsrGraph& g, int threads, std::uint64_t seed) {
  CoarsenRun run;
  PartitionScratch s;
  Rng rng(seed);
  if (threads == 1) {
    HeavyEdgeMatch(g, nullptr, rng, s);
    run.match = s.match;
    run.absorb = s.absorb;
    ContractByMatching(g, nullptr, run.coarse, run.fine_to_coarse, s);
  } else {
    ThreadPool pool(threads);
    HeavyEdgeMatch(g, &pool, rng, s);
    run.match = s.match;
    run.absorb = s.absorb;
    ContractByMatching(g, &pool, run.coarse, run.fine_to_coarse, s);
  }
  return run;
}

// Structural invariants every matching must satisfy: match is a settled
// involution (pairs are mutual, singletons self-matched), every pair spans
// a real positive edge, and absorption only folds singletons into paired
// vertices (no absorption chains by construction).
void CheckMatchingInvariants(const CsrGraph& g, const CoarsenRun& run) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  ASSERT_EQ(run.match.size(), n);
  ASSERT_EQ(run.absorb.size(), n);
  for (std::size_t sv = 0; sv < n; ++sv) {
    const auto v = static_cast<VertexIndex>(sv);
    const auto m = run.match[sv];
    ASSERT_GE(m, 0);
    ASSERT_LT(m, g.num_vertices());
    EXPECT_EQ(run.match[static_cast<std::size_t>(m)], v)
        << "pair must be mutual at v=" << v;
    if (m != v) {
      // The pair must be a real positive-weight edge.
      bool found = false;
      const auto [to, ws] = g.arc_range(v);
      for (std::size_t i = 0; i < to.size(); ++i) {
        if (to[i] == m && ws[i] > 0.0) found = true;
      }
      EXPECT_TRUE(found) << "matched non-edge " << v << "-" << m;
      EXPECT_EQ(run.absorb[sv], -1) << "paired vertex absorbed at " << v;
    } else if (run.absorb[sv] != -1) {
      const auto a = static_cast<std::size_t>(run.absorb[sv]);
      ASSERT_LT(a, n);
      // Absorbers are paired — never another singleton.
      EXPECT_NE(run.match[a], run.absorb[sv])
          << "absorber " << run.absorb[sv] << " is itself a singleton";
    }
  }
}

// Brute-force quotient of `fine` by fine_to_coarse: per coarse pair the
// summed crossing weight, per coarse vertex the summed balance weight.
void CheckContractionFaithful(const CsrGraph& fine, const CoarsenRun& run) {
  const auto n = static_cast<std::size_t>(fine.num_vertices());
  ASSERT_EQ(run.fine_to_coarse.size(), n);
  const auto nc = run.coarse.num_vertices();
  std::map<std::pair<VertexIndex, VertexIndex>, double> want_arcs;
  std::vector<double> want_balance(static_cast<std::size_t>(nc), 0.0);
  for (std::size_t sv = 0; sv < n; ++sv) {
    const auto v = static_cast<VertexIndex>(sv);
    const auto cv = run.fine_to_coarse[sv];
    ASSERT_GE(cv, 0);
    ASSERT_LT(cv, nc);
    want_balance[static_cast<std::size_t>(cv)] += fine.balance_weight(v);
    const auto [to, ws] = fine.arc_range(v);
    for (std::size_t i = 0; i < to.size(); ++i) {
      const auto cu = run.fine_to_coarse[static_cast<std::size_t>(to[i])];
      if (cu != cv) want_arcs[{cv, cu}] += ws[i];
    }
  }
  double total_balance = 0.0;
  std::size_t total_arcs = 0;
  for (VertexIndex c = 0; c < nc; ++c) {
    EXPECT_DOUBLE_EQ(run.coarse.balance_weight(c),
                     want_balance[static_cast<std::size_t>(c)]);
    const auto [to, ws] = run.coarse.arc_range(c);
    total_arcs += to.size();
    for (std::size_t i = 0; i < to.size(); ++i) {
      const auto it = want_arcs.find({c, to[i]});
      ASSERT_NE(it, want_arcs.end())
          << "coarse arc " << c << "->" << to[i] << " not in quotient";
      EXPECT_DOUBLE_EQ(ws[i], it->second);
    }
    total_balance += run.coarse.balance_weight(c);
  }
  // Every quotient arc present exactly once (no duplicates dropped/added).
  EXPECT_EQ(total_arcs, want_arcs.size());
  EXPECT_DOUBLE_EQ(total_balance, fine.total_balance_weight());
}

// --- determinism across thread widths --------------------------------------

TEST(CoarsenTest, MatchAndContractionAreBitIdenticalAtWidths128) {
  for (const std::uint64_t seed : {1ull, 42ull, 1234ull}) {
    const CsrGraph g = RandomCsr(600, seed);
    const CoarsenRun serial = RunCoarsen(g, 1, seed);
    CheckMatchingInvariants(g, serial);
    CheckContractionFaithful(g, serial);
    for (const int threads : {2, 8}) {
      const CoarsenRun run = RunCoarsen(g, threads, seed);
      // Exact vector equality — the whole §9 contract, not just same cost.
      EXPECT_EQ(run.match, serial.match) << "threads=" << threads;
      EXPECT_EQ(run.absorb, serial.absorb) << "threads=" << threads;
      EXPECT_EQ(run.fine_to_coarse, serial.fine_to_coarse)
          << "threads=" << threads;
      ASSERT_EQ(run.coarse.num_vertices(), serial.coarse.num_vertices());
      ASSERT_EQ(run.coarse.num_arcs(), serial.coarse.num_arcs());
      for (VertexIndex c = 0; c < serial.coarse.num_vertices(); ++c) {
        EXPECT_DOUBLE_EQ(run.coarse.balance_weight(c),
                         serial.coarse.balance_weight(c));
        const auto [to_a, ws_a] = run.coarse.arc_range(c);
        const auto [to_b, ws_b] = serial.coarse.arc_range(c);
        ASSERT_EQ(to_a.size(), to_b.size());
        for (std::size_t i = 0; i < to_a.size(); ++i) {
          EXPECT_EQ(to_a[i], to_b[i]);
          EXPECT_DOUBLE_EQ(ws_a[i], ws_b[i]);
        }
      }
    }
  }
}

TEST(CoarsenTest, DifferentSeedsDecorrelateTheMatching) {
  // The per-level salt exists to vary pairings level-to-level; two seeds
  // must not produce the same matching on a graph with many near-equal
  // choices.
  const CsrGraph g = RandomCsr(600, 99);
  EXPECT_NE(RunCoarsen(g, 1, 5).match, RunCoarsen(g, 1, 6).match);
}

// --- adversarial shapes ------------------------------------------------------

TEST(CoarsenTest, StarCollapsesToOneCoarseVertexViaAbsorption) {
  // Hub + 16 leaves: pairwise matching strands 15 leaves; absorption must
  // fold them all into the hub's cluster in this single level.
  Graph g;
  constexpr int kLeaves = 16;
  for (int i = 0; i <= kLeaves; ++i) {
    g.AddVertex(Resource{.cpu = 1, .mem_gb = 1, .net_mbps = 1}, 1.0);
  }
  for (int leaf = 1; leaf <= kLeaves; ++leaf) g.AddEdge(0, leaf, 10.0);
  const CsrGraph csr = FromGraph(g);
  for (const int threads : {1, 8}) {
    const CoarsenRun run = RunCoarsen(csr, threads, 7);
    CheckMatchingInvariants(csr, run);
    CheckContractionFaithful(csr, run);
    EXPECT_EQ(run.coarse.num_vertices(), 1) << "threads=" << threads;
    EXPECT_EQ(run.coarse.num_arcs(), 0u) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(run.coarse.balance_weight(0),
                     static_cast<double>(kLeaves + 1));
  }
}

TEST(CoarsenTest, PathMatchesOnlyAdjacentPairs) {
  Graph g;
  constexpr int kN = 33;  // odd: at least one singleton/absorbee
  for (int i = 0; i < kN; ++i) {
    g.AddVertex(Resource{.cpu = 1, .mem_gb = 1, .net_mbps = 1}, 1.0);
  }
  for (int i = 0; i + 1 < kN; ++i) {
    g.AddEdge(i, i + 1, static_cast<double>(1 + (i % 3)));
  }
  const CsrGraph csr = FromGraph(g);
  const CoarsenRun run = RunCoarsen(csr, 1, 11);
  CheckMatchingInvariants(csr, run);
  CheckContractionFaithful(csr, run);
  for (VertexIndex v = 0; v < csr.num_vertices(); ++v) {
    const auto m = run.match[static_cast<std::size_t>(v)];
    if (m != v) {
      EXPECT_EQ(std::abs(m - v), 1) << "non-adjacent pair at " << v;
    }
  }
  // A path shrinks by at least a third per level even on the odd tail.
  EXPECT_LE(run.coarse.num_vertices(), (2 * kN) / 3);
  EXPECT_EQ(RunCoarsen(csr, 8, 11).match, run.match);
}

TEST(CoarsenTest, CliquesMatchPerfectlyEvenAndAbsorbTheOddVertex) {
  for (const int kN : {8, 7}) {
    Graph g;
    for (int i = 0; i < kN; ++i) {
      g.AddVertex(Resource{.cpu = 1, .mem_gb = 1, .net_mbps = 1}, 1.0);
    }
    for (int a = 0; a < kN; ++a) {
      for (int b = a + 1; b < kN; ++b) g.AddEdge(a, b, 5.0);
    }
    const CsrGraph csr = FromGraph(g);
    const CoarsenRun run = RunCoarsen(csr, 1, 3);
    CheckMatchingInvariants(csr, run);
    CheckContractionFaithful(csr, run);
    // Everyone is adjacent to everyone: the cleanup sweep leaves at most
    // one singleton (odd kN), and absorption folds it into some pair.
    EXPECT_EQ(run.coarse.num_vertices(), kN / 2);
    EXPECT_EQ(RunCoarsen(csr, 8, 3).match, run.match);
  }
}

TEST(CoarsenTest, MatchingSkipsNegativeEdges) {
  // Two anti-affine replicas bridged by negative weight: they must never
  // merge, even though the negative edge is their heaviest in magnitude.
  Graph g;
  for (int i = 0; i < 4; ++i) {
    g.AddVertex(Resource{.cpu = 1, .mem_gb = 1, .net_mbps = 1}, 1.0);
  }
  g.AddEdge(0, 1, -100.0);  // replicas
  g.AddEdge(0, 2, 1.0);
  g.AddEdge(1, 3, 1.0);
  const CsrGraph csr = FromGraph(g);
  const CoarsenRun run = RunCoarsen(csr, 1, 17);
  CheckMatchingInvariants(csr, run);
  CheckContractionFaithful(csr, run);
  EXPECT_NE(run.fine_to_coarse[0], run.fine_to_coarse[1]);
}

}  // namespace
}  // namespace gl
