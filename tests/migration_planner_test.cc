#include <gtest/gtest.h>

#include "sim/migration_planner.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 1000, .mem_gb = 10, .net_mbps = 1000};

struct Fixture {
  explicit Fixture(int servers = 4)
      : topo(Topology::LeafSpine(servers, 1, 1, kCap, 1000.0)) {}

  ContainerId AddContainer(const Resource& d) {
    Container c;
    c.id = ContainerId{workload.size()};
    workload.containers.push_back(c);
    demands.push_back(d);
    before.server_of.push_back(ServerId::invalid());
    after.server_of.push_back(ServerId::invalid());
    return c.id;
  }
  void At(ContainerId c, int from, int to) {
    before.server_of[static_cast<std::size_t>(c.value())] =
        from >= 0 ? ServerId{from} : ServerId::invalid();
    after.server_of[static_cast<std::size_t>(c.value())] =
        to >= 0 ? ServerId{to} : ServerId::invalid();
  }

  Topology topo;
  Workload workload;
  std::vector<Resource> demands;
  Placement before, after;
};

TEST(MigrationPlanner, NoMovesEmptyPlan) {
  Fixture f;
  const auto c = f.AddContainer({.cpu = 100, .mem_gb = 2, .net_mbps = 10});
  f.At(c, 0, 0);
  const auto plan =
      PlanMigrations(f.before, f.after, f.workload, f.demands, f.topo);
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_EQ(plan.num_phases, 0);
  EXPECT_TRUE(plan.stuck.empty());
  EXPECT_DOUBLE_EQ(plan.makespan_ms, 0.0);
}

TEST(MigrationPlanner, SimpleMoveIsOnePhase) {
  Fixture f;
  const auto c = f.AddContainer({.cpu = 100, .mem_gb = 2, .net_mbps = 10});
  f.At(c, 0, 1);
  const auto plan =
      PlanMigrations(f.before, f.after, f.workload, f.demands, f.topo);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.num_phases, 1);
  EXPECT_EQ(plan.steps[0].from, ServerId{0});
  EXPECT_EQ(plan.steps[0].to, ServerId{1});
  EXPECT_FALSE(plan.steps[0].bounce);
  EXPECT_GT(plan.makespan_ms, 0.0);
}

TEST(MigrationPlanner, DependentMovesAreOrdered) {
  // B occupies A's destination almost fully; A can only land after B left.
  Fixture f;
  const auto a = f.AddContainer({.cpu = 100, .mem_gb = 6, .net_mbps = 10});
  const auto b = f.AddContainer({.cpu = 100, .mem_gb = 6, .net_mbps = 10});
  f.At(a, 0, 1);
  f.At(b, 1, 2);
  const auto plan =
      PlanMigrations(f.before, f.after, f.workload, f.demands, f.topo);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_TRUE(plan.stuck.empty());
  int phase_a = -1, phase_b = -1;
  for (const auto& s : plan.steps) {
    if (s.container == a) phase_a = s.phase;
    if (s.container == b) phase_b = s.phase;
  }
  EXPECT_LT(phase_b, phase_a);  // b clears the way first
}

TEST(MigrationPlanner, SwapCycleGetsBounced) {
  // A and B swap servers; both servers are too full to host two at once —
  // but a third server has scratch room.
  Fixture f(3);
  const auto a = f.AddContainer({.cpu = 100, .mem_gb = 7, .net_mbps = 10});
  const auto b = f.AddContainer({.cpu = 100, .mem_gb = 7, .net_mbps = 10});
  f.At(a, 0, 1);
  f.At(b, 1, 0);
  const auto plan =
      PlanMigrations(f.before, f.after, f.workload, f.demands, f.topo);
  EXPECT_TRUE(plan.stuck.empty());
  EXPECT_EQ(plan.bounced_containers, 1);
  // The bounced container takes two hops; everyone ends where `after` says.
  std::vector<ServerId> final_pos(2, ServerId::invalid());
  for (const auto& s : plan.steps) {
    final_pos[static_cast<std::size_t>(s.container.value())] = s.to;
  }
  EXPECT_EQ(final_pos[static_cast<std::size_t>(a.value())], ServerId{1});
  EXPECT_EQ(final_pos[static_cast<std::size_t>(b.value())], ServerId{0});
}

TEST(MigrationPlanner, StuckWhenNowhereToGo) {
  // Swap with zero scratch anywhere.
  Fixture f(2);
  const auto a = f.AddContainer({.cpu = 100, .mem_gb = 9, .net_mbps = 10});
  const auto b = f.AddContainer({.cpu = 100, .mem_gb = 9, .net_mbps = 10});
  f.At(a, 0, 1);
  f.At(b, 1, 0);
  const auto plan =
      PlanMigrations(f.before, f.after, f.workload, f.demands, f.topo);
  EXPECT_EQ(plan.stuck.size(), 2u);
}

TEST(MigrationPlanner, StopsFreeRoomForArrivals) {
  // Destination is full of a container that is stopping this epoch.
  Fixture f(2);
  const auto mover = f.AddContainer({.cpu = 100, .mem_gb = 8, .net_mbps = 1});
  const auto stopper =
      f.AddContainer({.cpu = 100, .mem_gb = 8, .net_mbps = 1});
  f.At(mover, 0, 1);
  f.At(stopper, 1, -1);  // stops
  const auto plan =
      PlanMigrations(f.before, f.after, f.workload, f.demands, f.topo);
  EXPECT_TRUE(plan.stuck.empty());
  EXPECT_EQ(plan.num_phases, 1);
}

TEST(MigrationPlanner, MakespanAccountsForServerSerialization) {
  // Two migrations out of the same source must serialize on its NIC.
  Fixture f(3);
  const auto a = f.AddContainer({.cpu = 10, .mem_gb = 4, .net_mbps = 1});
  const auto b = f.AddContainer({.cpu = 10, .mem_gb = 4, .net_mbps = 1});
  f.At(a, 0, 1);
  f.At(b, 0, 2);
  const auto serialized =
      PlanMigrations(f.before, f.after, f.workload, f.demands, f.topo);

  Fixture g(4);
  const auto a2 = g.AddContainer({.cpu = 10, .mem_gb = 4, .net_mbps = 1});
  const auto b2 = g.AddContainer({.cpu = 10, .mem_gb = 4, .net_mbps = 1});
  g.At(a2, 0, 1);
  g.At(b2, 2, 3);  // disjoint servers → parallel
  const auto parallel =
      PlanMigrations(g.before, g.after, g.workload, g.demands, g.topo);

  EXPECT_GT(serialized.makespan_ms, parallel.makespan_ms * 1.5);
}

TEST(MigrationPlanner, TransitionCeilingRespected) {
  // With a 50% transition ceiling the destination cannot take the incoming
  // container while the resident one is still there → ordered into phases.
  Fixture f(3);
  const auto a = f.AddContainer({.cpu = 100, .mem_gb = 4, .net_mbps = 10});
  const auto b = f.AddContainer({.cpu = 100, .mem_gb = 4, .net_mbps = 10});
  f.At(a, 0, 1);
  f.At(b, 1, 2);
  MigrationPlannerOptions opts;
  opts.transition_ceiling = 0.5;
  const auto plan = PlanMigrations(f.before, f.after, f.workload, f.demands,
                                   f.topo, opts);
  EXPECT_TRUE(plan.stuck.empty());
  EXPECT_GE(plan.num_phases, 2);
}

TEST(MigrationPlanner, ImageBytesTotalled) {
  Fixture f;
  const auto c = f.AddContainer({.cpu = 10, .mem_gb = 4, .net_mbps = 1});
  f.At(c, 0, 1);
  MigrationPlannerOptions opts;
  const auto plan = PlanMigrations(f.before, f.after, f.workload, f.demands,
                                   f.topo, opts);
  EXPECT_NEAR(plan.total_image_gb, 4.0 * opts.cost.image_overhead, 1e-9);
}

}  // namespace
}  // namespace gl
