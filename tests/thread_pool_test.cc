#include "common/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gl {
namespace {

TEST(ThreadPool, ClampsToAtLeastOneThread) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.ParallelFor(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, EmptyLoopIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ResultSlotsMatchSerialAtAnyThreadCount) {
  constexpr std::size_t kCount = 257;
  auto task = [](std::size_t i) {
    return static_cast<std::uint64_t>(i) * 2654435761u + 17;
  };
  std::vector<std::uint64_t> expected(kCount);
  for (std::size_t i = 0; i < kCount; ++i) expected[i] = task(i);

  for (const int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> got(kCount, 0);
    pool.ParallelFor(kCount, [&](std::size_t i) { got[i] = task(i); });
    EXPECT_EQ(got, expected) << "threads " << threads;
  }
}

TEST(ThreadPool, PoolIsReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(10, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 45) << "round " << round;
  }
}

TEST(ThreadPool, ParallelForWithRngMatchesKeyedForks) {
  const Rng base(0x5eed);
  constexpr std::size_t kCount = 64;
  // Expected: task i draws from base.Fork(i), regardless of thread count.
  std::vector<std::uint64_t> expected(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    Rng sub = base.Fork(i);
    expected[i] = sub.NextU64();
  }
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> got(kCount, 0);
    pool.ParallelForWithRng(kCount, base, [&](std::size_t i, Rng& rng) {
      got[i] = rng.NextU64();
    });
    EXPECT_EQ(got, expected) << "threads " << threads;
  }
}

TEST(ThreadPool, ParallelForWithRngLeavesBaseUntouched) {
  Rng base(0xabc);
  const auto before = base.StateHash();
  ThreadPool pool(4);
  pool.ParallelForWithRng(100, base, [](std::size_t, Rng& rng) {
    (void)rng.NextDouble();
  });
  EXPECT_EQ(base.StateHash(), before);
}

TEST(ThreadPool, StatsAccountForEveryBatchAndTask) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sink{0};
  pool.ParallelFor(100, [&](std::size_t i) {
    std::uint64_t h = i * 2654435761u;
    for (int r = 0; r < 200; ++r) h = h * 6364136223846793005u + 1;
    sink.fetch_add(h, std::memory_order_relaxed);
  });
  pool.ParallelFor(50, [&](std::size_t i) {
    sink.fetch_add(i, std::memory_order_relaxed);
  });

  const ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.workers, 4);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.tasks, 150u);
  ASSERT_EQ(stats.per_thread_busy_us.size(), 4u);
  // Per-thread busy partitions total busy: same elapsed values, summed per
  // slot instead of chronologically — equal up to FP addition order.
  const double per_thread_sum =
      std::accumulate(stats.per_thread_busy_us.begin(),
                      stats.per_thread_busy_us.end(), 0.0);
  EXPECT_NEAR(per_thread_sum, stats.busy_us,
              1e-9 * stats.busy_us + 1e-6);
  EXPECT_GE(stats.queue_wait_us, 0.0);
  EXPECT_GE(stats.batch_wall_us, 0.0);
  EXPECT_GE(stats.ParallelEfficiency(), 0.0);
  EXPECT_GE(stats.IdleUs(), 0.0);
}

TEST(ThreadPool, SerialFastPathHasUnitEfficiency) {
  ThreadPool pool(1);
  volatile std::uint64_t sink = 0;
  pool.ParallelFor(10, [&](std::size_t i) {
    std::uint64_t h = i;
    for (int r = 0; r < 1000; ++r) h = h * 6364136223846793005u + 1;
    sink = h;
  });
  const ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.tasks, 10u);
  // The inline path times the whole run as one bracket, so busy == wall
  // bitwise and the ratio is exactly 1 (and 1 by convention when wall
  // rounds to zero microseconds).
  EXPECT_DOUBLE_EQ(stats.ParallelEfficiency(), 1.0);
  EXPECT_DOUBLE_EQ(stats.IdleUs(), 0.0);
  EXPECT_DOUBLE_EQ(stats.queue_wait_us, 0.0);
}

TEST(ThreadPool, FreshPoolReportsUnitEfficiencyNotNan) {
  ThreadPool pool(8);
  const ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_DOUBLE_EQ(stats.ParallelEfficiency(), 1.0);  // 0/0 convention
  EXPECT_DOUBLE_EQ(stats.IdleUs(), 0.0);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  constexpr std::size_t kCount = 10000;
  std::vector<std::uint8_t> hit(kCount, 0);
  pool.ParallelFor(kCount, [&](std::size_t i) { hit[i] = 1; });
  const auto total = std::accumulate(hit.begin(), hit.end(), std::size_t{0});
  EXPECT_EQ(total, kCount);
}

}  // namespace
}  // namespace gl
