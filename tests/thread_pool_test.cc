#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gl {
namespace {

TEST(ThreadPool, ClampsToAtLeastOneThread) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.ParallelFor(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, EmptyLoopIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ResultSlotsMatchSerialAtAnyThreadCount) {
  constexpr std::size_t kCount = 257;
  auto task = [](std::size_t i) {
    return static_cast<std::uint64_t>(i) * 2654435761u + 17;
  };
  std::vector<std::uint64_t> expected(kCount);
  for (std::size_t i = 0; i < kCount; ++i) expected[i] = task(i);

  for (const int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> got(kCount, 0);
    pool.ParallelFor(kCount, [&](std::size_t i) { got[i] = task(i); });
    EXPECT_EQ(got, expected) << "threads " << threads;
  }
}

TEST(ThreadPool, PoolIsReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(10, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 45) << "round " << round;
  }
}

TEST(ThreadPool, ParallelForWithRngMatchesKeyedForks) {
  const Rng base(0x5eed);
  constexpr std::size_t kCount = 64;
  // Expected: task i draws from base.Fork(i), regardless of thread count.
  std::vector<std::uint64_t> expected(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    Rng sub = base.Fork(i);
    expected[i] = sub.NextU64();
  }
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> got(kCount, 0);
    pool.ParallelForWithRng(kCount, base, [&](std::size_t i, Rng& rng) {
      got[i] = rng.NextU64();
    });
    EXPECT_EQ(got, expected) << "threads " << threads;
  }
}

TEST(ThreadPool, ParallelForWithRngLeavesBaseUntouched) {
  Rng base(0xabc);
  const auto before = base.StateHash();
  ThreadPool pool(4);
  pool.ParallelForWithRng(100, base, [](std::size_t, Rng& rng) {
    (void)rng.NextDouble();
  });
  EXPECT_EQ(base.StateHash(), before);
}

TEST(ThreadPool, StatsAccountForEveryBatchAndTask) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sink{0};
  pool.ParallelFor(100, [&](std::size_t i) {
    std::uint64_t h = i * 2654435761u;
    for (int r = 0; r < 200; ++r) h = h * 6364136223846793005u + 1;
    sink.fetch_add(h, std::memory_order_relaxed);
  });
  pool.ParallelFor(50, [&](std::size_t i) {
    sink.fetch_add(i, std::memory_order_relaxed);
  });

  const ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.workers, 4);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.tasks, 150u);
  ASSERT_EQ(stats.per_thread_busy_us.size(), 4u);
  // Per-thread busy partitions total busy: same elapsed values, summed per
  // slot instead of chronologically — equal up to FP addition order.
  const double per_thread_sum =
      std::accumulate(stats.per_thread_busy_us.begin(),
                      stats.per_thread_busy_us.end(), 0.0);
  EXPECT_NEAR(per_thread_sum, stats.busy_us,
              1e-9 * stats.busy_us + 1e-6);
  EXPECT_GE(stats.queue_wait_us, 0.0);
  EXPECT_GE(stats.batch_wall_us, 0.0);
  EXPECT_GE(stats.ParallelEfficiency(), 0.0);
  EXPECT_GE(stats.IdleUs(), 0.0);
}

TEST(ThreadPool, ChunkedStatsAccountForEveryChunkAndCoverTheRange) {
  ThreadPool pool(4);
  constexpr std::size_t kTotal = 10000;
  constexpr std::size_t kGrain = 256;
  constexpr std::size_t kChunks = (kTotal + kGrain - 1) / kGrain;
  std::vector<std::atomic<int>> hit(kTotal);
  for (auto& h : hit) h.store(0, std::memory_order_relaxed);
  pool.ParallelForChunked(kTotal, kGrain,
                          [&](int slot, std::size_t begin, std::size_t end) {
                            EXPECT_GE(slot, 0);
                            EXPECT_LT(slot, 4);
                            EXPECT_EQ(begin % kGrain, 0u);
                            EXPECT_LE(end, kTotal);
                            for (std::size_t i = begin; i < end; ++i) {
                              hit[i].fetch_add(1, std::memory_order_relaxed);
                            }
                          });
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(hit[i].load(std::memory_order_relaxed), 1) << "index " << i;
  }
  // A chunked batch counts one batch and one task per chunk, so pool
  // telemetry (and the parallel_efficiency gauge built on it) prices
  // chunked and per-index batches identically.
  const ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.tasks, kChunks);
  EXPECT_GT(stats.busy_us, 0.0);
  EXPECT_GE(stats.ParallelEfficiency(), 0.0);
}

TEST(ThreadPool, ChunkedInlinePathMatchesPooledChunkDecomposition) {
  // The serial fast path must present the identical (slot=0) chunk
  // sequence the pooled path distributes — fixed-grain chunking is part of
  // the determinism contract (DESIGN.md §9), not a scheduling detail.
  const auto run = [](int threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.ParallelForChunked(1000, 128,
                            [&](int, std::size_t begin, std::size_t end) {
                              std::lock_guard<std::mutex> lock(mu);
                              chunks.emplace_back(begin, end);
                            });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = run(1);
  ASSERT_EQ(serial.size(), 8u);
  EXPECT_EQ(serial.front().first, 0u);
  EXPECT_EQ(serial.back().second, 1000u);
  EXPECT_EQ(run(4), serial);
}

TEST(ThreadPool, SerialFastPathHasUnitEfficiency) {
  ThreadPool pool(1);
  volatile std::uint64_t sink = 0;
  pool.ParallelFor(10, [&](std::size_t i) {
    std::uint64_t h = i;
    for (int r = 0; r < 1000; ++r) h = h * 6364136223846793005u + 1;
    sink = h;
  });
  const ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.tasks, 10u);
  // The inline path times the whole run as one bracket, so busy == wall
  // bitwise and the ratio is exactly 1 (and 1 by convention when wall
  // rounds to zero microseconds).
  EXPECT_DOUBLE_EQ(stats.ParallelEfficiency(), 1.0);
  EXPECT_DOUBLE_EQ(stats.IdleUs(), 0.0);
  EXPECT_DOUBLE_EQ(stats.queue_wait_us, 0.0);
}

TEST(ThreadPool, FreshPoolReportsUnitEfficiencyNotNan) {
  ThreadPool pool(8);
  const ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_DOUBLE_EQ(stats.ParallelEfficiency(), 1.0);  // 0/0 convention
  EXPECT_DOUBLE_EQ(stats.IdleUs(), 0.0);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  constexpr std::size_t kCount = 10000;
  std::vector<std::uint8_t> hit(kCount, 0);
  pool.ParallelFor(kCount, [&](std::size_t i) { hit[i] = 1; });
  const auto total = std::accumulate(hit.begin(), hit.end(), std::size_t{0});
  EXPECT_EQ(total, kCount);
}

}  // namespace
}  // namespace gl
