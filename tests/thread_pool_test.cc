#include "common/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gl {
namespace {

TEST(ThreadPool, ClampsToAtLeastOneThread) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.ParallelFor(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, EmptyLoopIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ResultSlotsMatchSerialAtAnyThreadCount) {
  constexpr std::size_t kCount = 257;
  auto task = [](std::size_t i) {
    return static_cast<std::uint64_t>(i) * 2654435761u + 17;
  };
  std::vector<std::uint64_t> expected(kCount);
  for (std::size_t i = 0; i < kCount; ++i) expected[i] = task(i);

  for (const int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> got(kCount, 0);
    pool.ParallelFor(kCount, [&](std::size_t i) { got[i] = task(i); });
    EXPECT_EQ(got, expected) << "threads " << threads;
  }
}

TEST(ThreadPool, PoolIsReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(10, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 45) << "round " << round;
  }
}

TEST(ThreadPool, ParallelForWithRngMatchesKeyedForks) {
  const Rng base(0x5eed);
  constexpr std::size_t kCount = 64;
  // Expected: task i draws from base.Fork(i), regardless of thread count.
  std::vector<std::uint64_t> expected(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    Rng sub = base.Fork(i);
    expected[i] = sub.NextU64();
  }
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> got(kCount, 0);
    pool.ParallelForWithRng(kCount, base, [&](std::size_t i, Rng& rng) {
      got[i] = rng.NextU64();
    });
    EXPECT_EQ(got, expected) << "threads " << threads;
  }
}

TEST(ThreadPool, ParallelForWithRngLeavesBaseUntouched) {
  Rng base(0xabc);
  const auto before = base.StateHash();
  ThreadPool pool(4);
  pool.ParallelForWithRng(100, base, [](std::size_t, Rng& rng) {
    (void)rng.NextDouble();
  });
  EXPECT_EQ(base.StateHash(), before);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  constexpr std::size_t kCount = 10000;
  std::vector<std::uint8_t> hit(kCount, 0);
  pool.ParallelFor(kCount, [&](std::size_t i) { hit[i] = 1; });
  const auto total = std::accumulate(hit.begin(), hit.end(), std::size_t{0});
  EXPECT_EQ(total, kCount);
}

}  // namespace
}  // namespace gl
