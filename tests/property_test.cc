// Property-based suites: invariants that must hold for every policy, every
// scenario, and arbitrary seeds — the harness the unit tests can't provide.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "common/rng.h"
#include "core/goldilocks.h"
#include "graph/partitioner.h"
#include "schedulers/borg.h"
#include "schedulers/e_pvm.h"
#include "schedulers/mpp.h"
#include "schedulers/random_scheduler.h"
#include "schedulers/rc_informed.h"
#include "workload/scenarios.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000};

std::unique_ptr<Scheduler> MakePolicy(const std::string& name) {
  if (name == "goldilocks") return std::make_unique<GoldilocksScheduler>();
  if (name == "e-pvm") return std::make_unique<EPvmScheduler>();
  if (name == "e-pvm-oc") {
    return std::make_unique<EPvmScheduler>(1.0, EPvmMode::kOpportunityCost);
  }
  if (name == "mpp") return std::make_unique<MppScheduler>();
  if (name == "borg") return std::make_unique<BorgScheduler>();
  if (name == "rc") return std::make_unique<RcInformedScheduler>();
  return std::make_unique<RandomScheduler>();
}

// ---------------------------------------------------------------------------
// Placement invariants across (policy × scenario × epoch).
// ---------------------------------------------------------------------------
class PlacementInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, std::string,
                                                 int>> {};

TEST_P(PlacementInvariants, Hold) {
  const auto [policy_name, scenario_name, epoch] = GetParam();
  std::unique_ptr<Scenario> scenario;
  if (scenario_name == "twitter") {
    scenario = MakeTwitterCachingScenario();
  } else {
    scenario = MakeAzureMixScenario();
  }
  const Topology topo = Topology::Testbed16();
  const auto demands = scenario->DemandsAt(epoch);
  const auto active = scenario->ActiveAt(epoch);
  SchedulerInput input;
  input.workload = &scenario->workload();
  input.demands = demands;
  input.active = active;
  input.topology = &topo;

  auto policy = MakePolicy(policy_name);
  const Placement p = policy->Place(input);

  // 1. Inactive containers are never placed.
  for (std::size_t i = 0; i < p.server_of.size(); ++i) {
    if (!active[i]) {
      EXPECT_FALSE(p.server_of[i].valid())
          << policy_name << " placed inactive container " << i;
    }
  }
  // 2. Server ids are in range.
  for (const auto s : p.server_of) {
    if (s.valid()) {
      EXPECT_GE(s.value(), 0);
      EXPECT_LT(s.value(), topo.num_servers());
    }
  }
  // 3. No server exceeds its full physical capacity by more than float
  //    noise in CPU or memory. Two deliberate exceptions: RC-Informed
  //    packs against *reservations*, so live CPU may overshoot (the
  //    oversubscription risk the paper criticizes); and network demand is
  //    a hose-model estimate (colocated traffic never reaches the NIC).
  const auto loads = ServerLoads(p, demands, topo.num_servers());
  for (int s = 0; s < topo.num_servers(); ++s) {
    const auto& cap = topo.server_capacity(ServerId{s});
    const auto& l = loads[static_cast<std::size_t>(s)];
    if (policy_name != "rc") {
      EXPECT_LE(l.cpu, cap.cpu * 1.001) << policy_name << " server " << s;
    }
    EXPECT_LE(l.mem_gb, cap.mem_gb * 1.001)
        << policy_name << " server " << s;
  }
  // 4. Determinism: a fresh instance of the policy reproduces the result.
  auto policy2 = MakePolicy(policy_name);
  const Placement p2 = policy2->Place(input);
  EXPECT_EQ(p.server_of, p2.server_of) << policy_name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementInvariants,
    ::testing::Combine(::testing::Values("goldilocks", "e-pvm", "e-pvm-oc",
                                         "mpp", "borg", "rc", "random"),
                       ::testing::Values("twitter", "azure"),
                       ::testing::Values(0, 29, 55)));

// ---------------------------------------------------------------------------
// Partitioner invariants on random graphs.
// ---------------------------------------------------------------------------
class PartitionerInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerInvariants, Hold) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Graph g;
  const int n = 64 + static_cast<int>(rng.NextBelow(400));
  for (int i = 0; i < n; ++i) {
    g.AddVertex(Resource{.cpu = rng.Uniform(1, 50),
                         .mem_gb = rng.Uniform(0.5, 8),
                         .net_mbps = rng.Uniform(1, 40)},
                rng.Uniform(0.2, 3.0));
  }
  const int edges = n * 4;
  for (int e = 0; e < edges; ++e) {
    const auto a = static_cast<VertexIndex>(rng.NextBelow(n));
    const auto b = static_cast<VertexIndex>(rng.NextBelow(n));
    if (a != b) g.AddEdge(a, b, rng.Uniform(0.1, 20.0));
  }

  const Resource ceiling{.cpu = g.total_demand().cpu / 7.0,
                         .mem_gb = g.total_demand().mem_gb / 7.0,
                         .net_mbps = 1e12};
  const auto fits = [&](const Resource& d, int) { return d.FitsIn(ceiling); };
  const auto r = RecursivePartition(g, fits, {});

  // Every vertex assigned, demands consistent, cut matches assignment.
  std::vector<Resource> sums(static_cast<std::size_t>(r.num_groups));
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    const int gid = r.group_of[static_cast<std::size_t>(v)];
    ASSERT_GE(gid, 0);
    ASSERT_LT(gid, r.num_groups);
    sums[static_cast<std::size_t>(gid)] += g.demand(v);
  }
  for (int gid = 0; gid < r.num_groups; ++gid) {
    EXPECT_NEAR(sums[static_cast<std::size_t>(gid)].cpu,
                r.group_demand[static_cast<std::size_t>(gid)].cpu, 1e-6);
    // Terminal groups satisfy the predicate unless they are singletons.
    if (r.group_size[static_cast<std::size_t>(gid)] > 1) {
      EXPECT_TRUE(fits(r.group_demand[static_cast<std::size_t>(gid)], 0));
    }
  }
  EXPECT_NEAR(g.CutWeightKWay(r.group_of), r.cut_weight, 1e-6);

  // Locality order is a permutation of the groups.
  const auto order = GroupsInLocalityOrder(r);
  std::vector<bool> seen(static_cast<std::size_t>(r.num_groups), false);
  for (const int gid : order) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(gid)]);
    seen[static_cast<std::size_t>(gid)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionerInvariants,
                         ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Topology invariants across factories.
// ---------------------------------------------------------------------------
class TopologyInvariants : public ::testing::TestWithParam<std::string> {};

TEST_P(TopologyInvariants, Hold) {
  const std::string kind = GetParam();
  Topology topo = kind == "fattree"     ? Topology::FatTree(6, kCap, 1000.0)
                  : kind == "leafspine" ? Topology::LeafSpine(6, 3, 2, kCap,
                                                              1000.0)
                  : kind == "vl2"       ? Topology::Vl2(16, kCap)
                                        : Topology::Testbed16();

  // Hop distance: identity, symmetry, bounded by 2×levels.
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const ServerId a{static_cast<int>(rng.NextBelow(topo.num_servers()))};
    const ServerId b{static_cast<int>(rng.NextBelow(topo.num_servers()))};
    const int d = topo.HopDistance(a, b);
    EXPECT_EQ(d, topo.HopDistance(b, a));
    EXPECT_GE(d, a == b ? 0 : 2);
    EXPECT_LE(d, 2 * (topo.num_levels() - 1));
    EXPECT_EQ(topo.HopDistance(a, a), 0);
  }
  // ServersUnder(root) covers every server exactly once.
  const auto servers = topo.ServersUnder(topo.root());
  EXPECT_EQ(static_cast<int>(servers.size()), topo.num_servers());
  std::vector<bool> seen(static_cast<std::size_t>(topo.num_servers()), false);
  for (const auto s : servers) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(s.value())]);
    seen[static_cast<std::size_t>(s.value())] = true;
  }
  // Every server's leaf node chains to the root.
  for (int s = 0; s < topo.num_servers(); ++s) {
    NodeId cur = topo.server_node(ServerId{s});
    int steps = 0;
    while (topo.node(cur).parent.valid() && steps < 16) {
      cur = topo.node(cur).parent;
      ++steps;
    }
    EXPECT_EQ(cur, topo.root());
  }
  // Level partition: counts of nodes at each level sum to num_nodes.
  int total = 0;
  for (int level = 0; level < topo.num_levels(); ++level) {
    total += static_cast<int>(topo.NodesAtLevel(level).size());
  }
  EXPECT_EQ(total, topo.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(Kinds, TopologyInvariants,
                         ::testing::Values("fattree", "leafspine", "vl2",
                                           "testbed"));

// ---------------------------------------------------------------------------
// Power-model invariants across the preset zoo.
// ---------------------------------------------------------------------------
class PowerInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PowerInvariants, Hold) {
  const int which = GetParam();
  const ServerPowerModel m =
      which == 0   ? ServerPowerModel::Linear2010()
      : which == 1 ? ServerPowerModel::Dell2018()
      : which == 2 ? ServerPowerModel::DellR940()
      : which == 3 ? ServerPowerModel::Facebook1S()
      : which == 4 ? ServerPowerModel::MicrosoftBlade()
                   : ServerPowerModel::WithPeePoint(0.55 + 0.05 * which);
  // Monotone, bounded, endpoints sane.
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double p = m.Power(i / 100.0);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, m.max_watts() * 1.0001);
    prev = p;
  }
  EXPECT_NEAR(m.Power(1.0), m.max_watts(), 1e-9);
  // Efficiency is unimodal with the peak at the declared PEE point.
  EXPECT_NEAR(m.PeakEfficiencyUtilization(), m.pee_utilization(), 0.011);
}

INSTANTIATE_TEST_SUITE_P(Models, PowerInvariants, ::testing::Range(0, 9));

}  // namespace
}  // namespace gl
