#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "workload/calibration.h"
#include "workload/container.h"
#include "workload/scenarios.h"
#include "workload/traces.h"

namespace gl {
namespace {

// --- Table II profiles ----------------------------------------------------------

TEST(AppProfiles, TableTwoValues) {
  const auto& mc = GetAppProfile(AppType::kMemcached);
  EXPECT_DOUBLE_EQ(mc.demand.cpu, 33.0);
  EXPECT_DOUBLE_EQ(mc.demand.mem_gb, 4.0);
  EXPECT_DOUBLE_EQ(mc.demand.net_mbps, 24.0);
  EXPECT_DOUBLE_EQ(mc.flow_count, 4944.0);

  const auto& solr = GetAppProfile(AppType::kSolr);
  EXPECT_DOUBLE_EQ(solr.demand.cpu, 32.0);
  EXPECT_DOUBLE_EQ(solr.demand.mem_gb, 12.0);
  EXPECT_DOUBLE_EQ(solr.demand.net_mbps, 1.0);
  EXPECT_DOUBLE_EQ(solr.flow_count, 50.0);

  const auto& hadoop = GetAppProfile(AppType::kHadoop);
  EXPECT_DOUBLE_EQ(hadoop.demand.cpu, 376.0);
  EXPECT_DOUBLE_EQ(hadoop.demand.mem_gb, 2.0);
  EXPECT_DOUBLE_EQ(hadoop.demand.net_mbps, 328.0);
  EXPECT_DOUBLE_EQ(hadoop.flow_count, 2.0);

  const auto& nginx = GetAppProfile(AppType::kNginx);
  EXPECT_DOUBLE_EQ(nginx.demand.cpu, 54.0);
  EXPECT_DOUBLE_EQ(nginx.demand.mem_gb, 57.0);
  EXPECT_DOUBLE_EQ(nginx.demand.net_mbps, 320.0);
  EXPECT_DOUBLE_EQ(nginx.flow_count, 25.0);
}

TEST(AppProfiles, AllHaveNamesAndPositiveDemands) {
  for (const auto& p : AllAppProfiles()) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.demand.cpu, 0.0);
    EXPECT_GT(p.base_service_ms, 0.0);
    EXPECT_STREQ(AppTypeName(p.type), AppTypeName(p.type));
  }
}

// --- calibration (Fig 12) ---------------------------------------------------------

TEST(Calibration, SolrCpuMonotone) {
  double prev = -1.0;
  for (int rps = 0; rps <= 120; rps += 5) {
    const double cpu = SolrCpuForRps(rps);
    EXPECT_GT(cpu, prev);
    prev = cpu;
  }
}

TEST(Calibration, SolrSuperlinearTail) {
  // Fig 12a: rises faster near saturation.
  const double low = SolrCpuForRps(40) - SolrCpuForRps(20);
  const double high = SolrCpuForRps(120) - SolrCpuForRps(100);
  EXPECT_GT(high, low);
}

TEST(Calibration, HadoopTrendLinear) {
  EXPECT_NEAR(HadoopCpuTrend(100) - HadoopCpuTrend(0), 85.0, 1e-9);
}

TEST(Calibration, HadoopScatterAroundTrend) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 2000; ++i) {
    s.Add(HadoopCpuForTrafficMbps(200.0, rng));
  }
  EXPECT_NEAR(s.mean(), HadoopCpuTrend(200.0), 12.0);
  EXPECT_GT(s.stddev(), 10.0);  // it is a scatter, not a line
}

TEST(Calibration, MemcachedScalesWithRps) {
  const Resource at_ref = MemcachedDemandForRps(2000.0);
  EXPECT_DOUBLE_EQ(at_ref.cpu, 33.0);
  const Resource doubled = MemcachedDemandForRps(4000.0);
  EXPECT_DOUBLE_EQ(doubled.cpu, 66.0);
  EXPECT_DOUBLE_EQ(doubled.mem_gb, 4.0);  // cache stays resident
  EXPECT_DOUBLE_EQ(doubled.net_mbps, 48.0);
}

TEST(Calibration, MemcachedHasDemandFloor) {
  const Resource idle = MemcachedDemandForRps(0.0);
  EXPECT_GT(idle.cpu, 0.0);
}

// --- traces -----------------------------------------------------------------------

TEST(WikipediaTraceTest, StaysInRange) {
  const WikipediaTrace trace(44000, 440000);
  for (double t = 0; t <= 60.0; t += 0.5) {
    const double rps = trace.RpsAt(t);
    EXPECT_GE(rps, 44000.0 * 0.99);
    EXPECT_LE(rps, 440000.0 * 1.01);
  }
}

TEST(WikipediaTraceTest, ActuallyVaries) {
  const WikipediaTrace trace(44000, 440000);
  double lo = 1e18, hi = 0;
  for (double t = 0; t <= 60.0; t += 0.25) {
    lo = std::min(lo, trace.RpsAt(t));
    hi = std::max(hi, trace.RpsAt(t));
  }
  EXPECT_GT(hi / lo, 3.0);  // a real diurnal swing
}

TEST(WikipediaTraceTest, Deterministic) {
  const WikipediaTrace a(44000, 440000, 60.0, 1);
  const WikipediaTrace b(44000, 440000, 60.0, 1);
  EXPECT_DOUBLE_EQ(a.RpsAt(17.3), b.RpsAt(17.3));
}

TEST(AzureTraceTest, CountWithinBounds) {
  const AzureContainerTrace trace(149, 221);
  int lo = 1 << 30, hi = 0;
  for (double t = 0; t <= 60.0; t += 0.5) {
    const int c = trace.CountAt(t);
    EXPECT_GE(c, 149);
    EXPECT_LE(c, 221);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  // Touches (near) both extremes over a full period.
  EXPECT_LE(lo, 155);
  EXPECT_GE(hi, 215);
}

TEST(CorrelatedDemand, PairwisePearsonInPaperBand) {
  // Sec. II: 99.8% of pairwise correlations between 0.6 and 0.8.
  const CorrelatedDemandModel model(40, 200, 77);
  RunningStats corr;
  for (int a = 0; a < 20; ++a) {
    for (int b = a + 1; b < 20; ++b) {
      corr.Add(model.Correlation(a, b));
    }
  }
  EXPECT_GT(corr.mean(), 0.55);
  EXPECT_LT(corr.mean(), 0.85);
}

TEST(CorrelatedDemand, MultipliersBounded) {
  const CorrelatedDemandModel model(10, 100);
  for (int s = 0; s < 10; ++s) {
    for (int t = 0; t < 100; ++t) {
      const double m = model.Multiplier(s, t);
      EXPECT_GE(m, 0.3);
      EXPECT_LE(m, 2.2);
    }
  }
}

// --- scenarios ---------------------------------------------------------------------

TEST(TwitterScenario, StructureMatchesPaper) {
  const auto s = MakeTwitterCachingScenario();
  EXPECT_EQ(s->workload().size(), 176);
  EXPECT_EQ(s->num_epochs(), 60);
  // Half front-ends, half Memcached.
  int fe = 0, mc = 0;
  for (const auto& c : s->workload().containers) {
    fe += c.app == AppType::kFrontend;
    mc += c.app == AppType::kMemcached;
  }
  EXPECT_EQ(fe, 88);
  EXPECT_EQ(mc, 88);
}

TEST(TwitterScenario, QueryEdgesPresent) {
  const auto s = MakeTwitterCachingScenario();
  int query_edges = 0;
  for (const auto& e : s->workload().edges) query_edges += e.is_query;
  EXPECT_GT(query_edges, 100);
  // The heavy primary edges carry the Table II flow count.
  double max_flows = 0;
  for (const auto& e : s->workload().edges) {
    max_flows = std::max(max_flows, e.flows);
  }
  EXPECT_DOUBLE_EQ(max_flows, 4944.0);
}

TEST(TwitterScenario, DemandsTrackTrace) {
  const auto s = MakeTwitterCachingScenario();
  // Total CPU demand must co-move with total RPS across epochs.
  std::vector<double> rps, cpu;
  for (int e = 0; e < s->num_epochs(); ++e) {
    rps.push_back(s->TotalRpsAt(e));
    const auto d = s->DemandsAt(e);
    double sum = 0;
    for (const auto& r : d) sum += r.cpu;
    cpu.push_back(sum);
  }
  EXPECT_GT(PearsonCorrelation(rps, cpu), 0.9);
}

TEST(TwitterScenario, AllContainersAlwaysActive) {
  const auto s = MakeTwitterCachingScenario();
  for (const auto a : s->ActiveAt(30)) EXPECT_EQ(a, 1);
}

TEST(AzureScenario, ContainerCountVaries) {
  const auto s = MakeAzureMixScenario();
  EXPECT_EQ(s->workload().size(), 221);
  int lo = 1 << 30, hi = 0;
  for (int e = 0; e < s->num_epochs(); ++e) {
    const auto active = s->ActiveAt(e);
    int count = 0;
    for (const auto a : active) count += a;
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  EXPECT_GE(lo, 149);
  EXPECT_LE(hi, 221);
  EXPECT_GT(hi - lo, 20);  // the Azure pattern actually fluctuates
}

TEST(AzureScenario, MixesApplications) {
  const auto s = MakeAzureMixScenario();
  std::set<AppType> kinds;
  for (const auto& c : s->workload().containers) kinds.insert(c.app);
  EXPECT_GE(kinds.size(), 7u);
}

TEST(AzureScenario, InactiveContainersHaveZeroDemand) {
  const auto s = MakeAzureMixScenario();
  for (int e = 0; e < s->num_epochs(); e += 7) {
    const auto demands = s->DemandsAt(e);
    const auto active = s->ActiveAt(e);
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (!active[i]) {
        EXPECT_TRUE(demands[i].IsZero());
      }
    }
  }
}

TEST(AppendServiceTest, WiresStarTopology) {
  Workload w;
  const auto ids = AppendService(w, AppType::kHadoop, 5, 0);
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_EQ(w.size(), 5);
  // Star: 4 hub edges; chain: 3 more.
  EXPECT_EQ(w.edges.size(), 7u);
  EXPECT_DOUBLE_EQ(w.TotalDemand().cpu, 5 * 376.0);
}

}  // namespace
}  // namespace gl
