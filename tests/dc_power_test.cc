#include <gtest/gtest.h>

#include "power/dc_power.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 1600, .mem_gb = 64, .net_mbps = 1000};

// --- Fig 3 closed-form analysis -----------------------------------------------------

TEST(Fig3Analysis, DcnShareIsModerate) {
  // Paper: the DCN contributes around 20% of total power.
  double share_sum = 0.0;
  for (const auto& dc : TableOneDataCenters()) {
    const auto rows = AnalyzeDataCenter(dc);
    share_sum += rows.baseline.dcn_share();
    EXPECT_GT(rows.baseline.dcn_share(), 0.05) << dc.name;
    EXPECT_LT(rows.baseline.dcn_share(), 0.55) << dc.name;
  }
  EXPECT_NEAR(share_sum / 5.0, 0.22, 0.10);  // ~20% on average
}

TEST(Fig3Analysis, TaskPackingBeatsTrafficPacking) {
  for (const auto& dc : TableOneDataCenters()) {
    const auto rows = AnalyzeDataCenter(dc);
    const double traffic_saving =
        1.0 - rows.traffic_packing.total() / rows.baseline.total();
    const double task_saving =
        1.0 - rows.task_packing.total() / rows.baseline.total();
    EXPECT_GT(task_saving, traffic_saving * 2.0) << dc.name;
    EXPECT_GT(task_saving, 0.30) << dc.name;   // paper: ~53% on average
    EXPECT_LT(traffic_saving, 0.30) << dc.name;  // paper: ~8% on average
  }
}

TEST(Fig3Analysis, TrafficPackingOnlyTouchesNetwork) {
  const auto rows = AnalyzeDataCenter(TableOneDataCenters()[2]);  // VL2
  EXPECT_DOUBLE_EQ(rows.traffic_packing.server_watts,
                   rows.baseline.server_watts);
  EXPECT_LT(rows.traffic_packing.fabric_watts, rows.baseline.fabric_watts);
}

TEST(Fig3Analysis, TaskPackingSavesServersAndRacks) {
  const auto rows = AnalyzeDataCenter(TableOneDataCenters()[1]);  // Facebook
  EXPECT_LT(rows.task_packing.server_watts, rows.baseline.server_watts);
  EXPECT_LT(rows.task_packing.tor_watts, rows.baseline.tor_watts);
}

TEST(Fig3Analysis, AverageTaskPackingSavingNearPaper) {
  double saving = 0.0;
  for (const auto& dc : TableOneDataCenters()) {
    const auto rows = AnalyzeDataCenter(dc);
    saving += 1.0 - rows.task_packing.total() / rows.baseline.total();
  }
  EXPECT_NEAR(saving / 5.0, 0.53, 0.15);
}

// --- topology-based gating -----------------------------------------------------------

class GatingTest : public ::testing::Test {
 protected:
  GatingTest() : topo_(Topology::FatTree(4, kCap, 1000.0)) {
    models_.assign(static_cast<std::size_t>(topo_.num_levels()),
                   SwitchPowerModel("sw", 100.0, 0.3));
  }
  Topology topo_;
  std::vector<SwitchPowerModel> models_;
};

TEST_F(GatingTest, AllIdleMeansAllOff) {
  std::vector<std::uint8_t> active(16, 0);
  const auto r = ComputeNetworkPower(topo_, active, {}, models_, {});
  EXPECT_DOUBLE_EQ(r.watts, 0.0);
  EXPECT_EQ(r.active_switches, 0);
  EXPECT_EQ(r.total_switches, 20);
}

TEST_F(GatingTest, AllActiveMeansEverythingOn) {
  std::vector<std::uint8_t> active(16, 1);
  GatingOptions opts;
  opts.backup_fraction = 1.0;  // force full fabric
  const auto r = ComputeNetworkPower(topo_, active, {}, models_, opts);
  EXPECT_EQ(r.active_switches, 20);
}

TEST_F(GatingTest, GatingDisabledKeepsEverythingOn) {
  std::vector<std::uint8_t> active(16, 0);
  GatingOptions opts;
  opts.gate_idle_switches = false;
  const auto r = ComputeNetworkPower(topo_, active, {}, models_, opts);
  EXPECT_EQ(r.active_switches, 20);
  EXPECT_DOUBLE_EQ(r.watts, 20 * 100.0);
}

TEST_F(GatingTest, SingleRackKeepsItsPathOnly) {
  std::vector<std::uint8_t> active(16, 0);
  active[0] = active[1] = 1;  // one rack (servers 0,1)
  const auto r = ComputeNetworkPower(topo_, active, {}, models_, {});
  // 1 ToR + ≥1 agg (in the pod) + ≥1 core must be on; far pods dark.
  EXPECT_GE(r.active_switches, 3);
  EXPECT_LE(r.active_switches, 6);
  EXPECT_GT(r.watts, 0.0);
}

TEST_F(GatingTest, MoreActiveServersMorePower) {
  std::vector<std::uint8_t> few(16, 0), many(16, 0);
  few[0] = 1;
  for (int i = 0; i < 8; ++i) many[static_cast<std::size_t>(i)] = 1;
  const auto r_few = ComputeNetworkPower(topo_, few, {}, models_, {});
  const auto r_many = ComputeNetworkPower(topo_, many, {}, models_, {});
  EXPECT_GT(r_many.watts, r_few.watts);
}

TEST_F(GatingTest, TrafficAwareFabricScaling) {
  std::vector<std::uint8_t> active(16, 1);
  // Light traffic everywhere → fabric mostly gated.
  std::vector<double> light(static_cast<std::size_t>(topo_.num_nodes()), 0.0);
  std::vector<double> heavy(static_cast<std::size_t>(topo_.num_nodes()), 0.0);
  for (int i = 0; i < topo_.num_nodes(); ++i) {
    const auto& n = topo_.node(NodeId{i});
    if (n.uplink_capacity_mbps > 0.0) {
      light[static_cast<std::size_t>(i)] = 0.05 * n.uplink_capacity_mbps;
      heavy[static_cast<std::size_t>(i)] = 0.95 * n.uplink_capacity_mbps;
    }
  }
  const auto r_light =
      ComputeNetworkPower(topo_, active, light, models_, {});
  const auto r_heavy =
      ComputeNetworkPower(topo_, active, heavy, models_, {});
  EXPECT_LT(r_light.watts, r_heavy.watts);
}

}  // namespace
}  // namespace gl
