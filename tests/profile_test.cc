// Tests for obs/profile.h (span-stream attribution) and the memory
// observability seams it reports on (obs/memory.h, graph/scratch.h).
//
// The determinism angle throughout: a profile's *shape* — names and counts —
// must be identical at every thread count even though the times differ,
// because aggregation keys on span names and the span set per run is fixed
// by the work, not the schedule (DESIGN.md §15).
#include "obs/profile.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "graph/scratch.h"
#include "obs/memory.h"
#include "obs/trace.h"

namespace gl {
namespace {

// --- hand-built DAG --------------------------------------------------------
//
// One root on tid 0 with a serial prefix, two parallel worker lanes (one
// carrying a nested span), and a serial tail (times in µs):
//
//   root  [0 ....................................... 100000]   tid 0
//     prep   [0 .. 20000]                                       tid 0
//     worker A      [20000 ........ 60000]                      tid 1
//       inner          [25000 .. 35000]                         tid 1
//     worker B        [25000 ............ 66000]                tid 2
//     tail                              [70000 .... 100000]     tid 0
//
// Worker lanes open at depth 0 on their own threads; the forest builder must
// adopt them under root by time containment. The two workers overlap without
// either containing the other (B starts after A starts and ends after A
// ends), so neither can be mis-adopted under its sibling — both land under
// root, in one overlap cluster spanning [20000, 66000].
std::vector<obs::TraceEvent> HandBuiltDag() {
  // Sorted by (tid, start_us, depth), as Trace::Events() guarantees.
  // cpu_us stays at its default (-1, unknown) so the critical path uses the
  // wall-time fallback these expectations were written against.
  return {
      {.name = "root", .tid = 0, .depth = 0, .start_us = 0.0,
       .dur_us = 100000.0},
      {.name = "prep", .tid = 0, .depth = 1, .start_us = 0.0,
       .dur_us = 20000.0},
      {.name = "tail", .tid = 0, .depth = 1, .start_us = 70000.0,
       .dur_us = 30000.0},
      {.name = "worker", .tid = 1, .depth = 0, .start_us = 20000.0,
       .dur_us = 40000.0, .arg = 1},
      {.name = "inner", .tid = 1, .depth = 1, .start_us = 25000.0,
       .dur_us = 10000.0},
      {.name = "worker", .tid = 2, .depth = 0, .start_us = 25000.0,
       .dur_us = 41000.0, .arg = 2},
  };
}

TEST(ProfileTest, AggregatesHandBuiltDagWithCrossThreadAdoption) {
  const obs::Profile p = obs::BuildProfile(HandBuiltDag());

  // Tree: (root synthetic) -> root -> {prep, tail, worker -> inner}.
  ASSERT_EQ(p.root.children.size(), 1u);
  const obs::ProfileNode& root = p.root.children[0];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.count, 1u);
  EXPECT_DOUBLE_EQ(root.total_us, 100000.0);
  // Direct children sum to 131000 µs (parallel lanes oversubscribe the
  // parent's wall), so root's self time clamps to zero.
  EXPECT_DOUBLE_EQ(root.self_us, 0.0);
  ASSERT_EQ(root.children.size(), 3u);  // sorted by name
  EXPECT_EQ(root.children[0].name, "prep");
  EXPECT_EQ(root.children[1].name, "tail");
  EXPECT_EQ(root.children[2].name, "worker");
  const obs::ProfileNode& worker = root.children[2];
  EXPECT_EQ(worker.count, 2u);
  EXPECT_DOUBLE_EQ(worker.total_us, 81000.0);
  EXPECT_DOUBLE_EQ(worker.self_us, 71000.0);  // 30000 (A) + 41000 (B)
  ASSERT_EQ(worker.children.size(), 1u);
  EXPECT_EQ(worker.children[0].name, "inner");
  EXPECT_EQ(worker.children[0].count, 1u);

  // Flat: self-time descending.
  ASSERT_EQ(p.flat.size(), 5u);
  EXPECT_EQ(p.flat[0].name, "worker");
  EXPECT_DOUBLE_EQ(p.flat[0].self_us, 71000.0);
  EXPECT_EQ(p.flat[1].name, "tail");
  EXPECT_EQ(p.flat[2].name, "prep");
  EXPECT_EQ(p.flat[3].name, "inner");
  EXPECT_EQ(p.flat[4].name, "root");
  EXPECT_DOUBLE_EQ(p.flat[4].self_us, 0.0);
}

TEST(ProfileTest, CollapsedStacksAreCanonical) {
  const std::string collapsed =
      obs::CollapsedStacks(obs::BuildProfile(HandBuiltDag()));
  EXPECT_EQ(collapsed,
            "root;prep 20000\n"
            "root;tail 30000\n"
            "root;worker 71000\n"
            "root;worker;inner 10000\n");
}

TEST(CriticalPathTest, HandBuiltDagHasExactPathAndSerialShare) {
  const obs::CriticalPathResult cp =
      obs::ComputeCriticalPath(HandBuiltDag(), "root");
  EXPECT_EQ(cp.root_name, "root");
  EXPECT_DOUBLE_EQ(cp.root_ms, 100.0);

  // Clusters under root: [prep] , [worker A | worker B] , [tail]. The
  // worker cluster's critical path is worker B (41 ms > A's 40 ms, inner
  // included), walked with width 2; root keeps 4 ms of uncovered self (the
  // 66000..70000 gap between the worker cluster and tail).
  ASSERT_EQ(cp.steps.size(), 4u);
  EXPECT_EQ(cp.steps[0].name, "root");
  EXPECT_DOUBLE_EQ(cp.steps[0].ms, 4.0);
  EXPECT_EQ(cp.steps[0].width, 1);
  EXPECT_EQ(cp.steps[1].name, "prep");
  EXPECT_DOUBLE_EQ(cp.steps[1].ms, 20.0);
  EXPECT_EQ(cp.steps[1].width, 1);
  EXPECT_EQ(cp.steps[2].name, "worker");
  EXPECT_EQ(cp.steps[2].arg, 2);  // worker B carries the path
  EXPECT_DOUBLE_EQ(cp.steps[2].ms, 41.0);
  EXPECT_EQ(cp.steps[2].width, 2);
  EXPECT_EQ(cp.steps[3].name, "tail");
  EXPECT_DOUBLE_EQ(cp.steps[3].ms, 30.0);
  EXPECT_EQ(cp.steps[3].width, 1);

  // The path is shorter than root's wall: the cluster extent (46 ms) covers
  // more wall than its best member contributes (41 ms).
  EXPECT_DOUBLE_EQ(cp.path_ms, 95.0);
  // Serial share: everything except the width-2 worker step.
  EXPECT_DOUBLE_EQ(cp.serial_ms, 54.0);
}

TEST(CriticalPathTest, CpuTimeOverridesWallFallbackWhenPresent) {
  // On an oversubscribed machine span wall time includes timesliced-out
  // periods; when cpu_us is recorded the path must charge each step its CPU
  // self time (own cpu minus same-tid direct children's cpu) instead of the
  // wall remainder. Here every span is stretched 2x in wall terms: the wall
  // fallback would report a 100 ms path, the cpu costs say 50 ms.
  const std::vector<obs::TraceEvent> events = {
      {.name = "root", .tid = 0, .depth = 0, .start_us = 0.0,
       .dur_us = 100000.0, .cpu_us = 50000.0},
      {.name = "a", .tid = 0, .depth = 1, .start_us = 10000.0,
       .dur_us = 80000.0, .cpu_us = 30000.0},
      {.name = "b", .tid = 0, .depth = 2, .start_us = 20000.0,
       .dur_us = 30000.0, .cpu_us = 20000.0},
  };
  const obs::CriticalPathResult cp = obs::ComputeCriticalPath(events, "root");
  ASSERT_EQ(cp.steps.size(), 3u);
  EXPECT_EQ(cp.steps[0].name, "root");
  EXPECT_DOUBLE_EQ(cp.steps[0].ms, 20.0);  // 50000 - a's 30000
  EXPECT_EQ(cp.steps[1].name, "a");
  EXPECT_DOUBLE_EQ(cp.steps[1].ms, 10.0);  // 30000 - b's 20000
  EXPECT_EQ(cp.steps[2].name, "b");
  EXPECT_DOUBLE_EQ(cp.steps[2].ms, 20.0);
  EXPECT_DOUBLE_EQ(cp.path_ms, 50.0);
  EXPECT_DOUBLE_EQ(cp.serial_ms, 50.0);
}

TEST(CriticalPathTest, ParallelLanesClusterWithoutWallOverlap) {
  // Three same-name lanes of a data-parallel batch, machine-serialized onto
  // one thread (no wall overlap). Declared parallel_lane, they must merge
  // into one width-3 cluster charged at its best member — not a 90 ms
  // serial chain.
  const std::vector<obs::TraceEvent> events = {
      {.name = "root", .tid = 0, .depth = 0, .start_us = 0.0,
       .dur_us = 100000.0},
      {.name = "trial", .tid = 0, .depth = 1, .start_us = 0.0,
       .dur_us = 30000.0, .parallel_lane = true, .arg = 0},
      {.name = "trial", .tid = 0, .depth = 1, .start_us = 30000.0,
       .dur_us = 30000.0, .parallel_lane = true, .arg = 1},
      {.name = "trial", .tid = 0, .depth = 1, .start_us = 60000.0,
       .dur_us = 30000.0, .parallel_lane = true, .arg = 2},
  };
  const obs::CriticalPathResult cp = obs::ComputeCriticalPath(events, "root");
  ASSERT_EQ(cp.steps.size(), 2u);
  EXPECT_EQ(cp.steps[0].name, "root");
  EXPECT_DOUBLE_EQ(cp.steps[0].ms, 10.0);  // 100000 - 90000 lane extent
  EXPECT_EQ(cp.steps[1].name, "trial");
  EXPECT_DOUBLE_EQ(cp.steps[1].ms, 30.0);
  EXPECT_EQ(cp.steps[1].width, 3);
  EXPECT_DOUBLE_EQ(cp.path_ms, 40.0);
  EXPECT_DOUBLE_EQ(cp.serial_ms, 10.0);

  // The same shape without the lane flag is a serial chain: each span is
  // its own singleton cluster and every millisecond lands on the path.
  std::vector<obs::TraceEvent> plain = events;
  for (auto& ev : plain) ev.parallel_lane = false;
  const obs::CriticalPathResult serial =
      obs::ComputeCriticalPath(plain, "root");
  EXPECT_DOUBLE_EQ(serial.serial_ms, serial.path_ms);
  EXPECT_DOUBLE_EQ(serial.path_ms, 100.0);  // 10 self + 3 x 30
}

TEST(CriticalPathTest, DefaultRootIsLongestTopLevelSpan) {
  const obs::CriticalPathResult cp = obs::ComputeCriticalPath(HandBuiltDag());
  EXPECT_EQ(cp.root_name, "root");
  const obs::CriticalPathResult none =
      obs::ComputeCriticalPath(HandBuiltDag(), "no-such-span");
  EXPECT_TRUE(none.root_name.empty());
  EXPECT_TRUE(none.steps.empty());
}

// --- shape invariance across thread counts ---------------------------------

// Name-keyed (name, count) profile of a traced workload. Counts are the
// schedule-independent part of a profile: the span set per run is fixed by
// the work, so they must match at every thread count even though times (and
// which lane a span landed on) differ. Exact nesting under races is pinned
// by the deterministic hand-built DAG tests above, not re-asserted here.
std::vector<std::pair<std::string, std::uint64_t>> TracedWorkloadCounts(
    int threads) {
  obs::Trace trace;
  trace.Activate();
  {
    obs::TraceSpan outer("outer");
    ThreadPool pool(threads);
    pool.ParallelFor(8, [](std::size_t i) {
      obs::TraceSpan work("work", static_cast<std::int64_t>(i));
      obs::TraceSpan inner("work.inner");
    });
  }
  trace.Deactivate();
  const obs::Profile p = obs::BuildProfile(trace.Events());
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  for (const auto& e : p.flat) counts.emplace_back(e.name, e.count);
  std::sort(counts.begin(), counts.end());
  return counts;
}

TEST(ProfileTest, SpanCountsAreIdenticalAtEveryThreadCount) {
  const std::vector<std::pair<std::string, std::uint64_t>> expected = {
      {"outer", 1}, {"work", 8}, {"work.inner", 8}};
  EXPECT_EQ(TracedWorkloadCounts(1), expected);
  EXPECT_EQ(TracedWorkloadCounts(2), expected);
  EXPECT_EQ(TracedWorkloadCounts(8), expected);
}

TEST(ProfileTest, SerialRunNestsSpansUnderTheOuterSpan) {
  obs::Trace trace;
  trace.Activate();
  {
    obs::TraceSpan outer("outer");
    ThreadPool pool(1);
    pool.ParallelFor(4, [](std::size_t) {
      obs::TraceSpan work("work");
      obs::TraceSpan inner("work.inner");
    });
  }
  trace.Deactivate();
  // Serial execution is a single lane: nesting comes straight from the span
  // stack, with no adoption involved — (root) -> outer -> work -> work.inner.
  const obs::Profile p = obs::BuildProfile(trace.Events());
  ASSERT_EQ(p.root.children.size(), 1u);
  const obs::ProfileNode& outer = p.root.children[0];
  EXPECT_EQ(outer.name, "outer");
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0].name, "work");
  EXPECT_EQ(outer.children[0].count, 4u);
  ASSERT_EQ(outer.children[0].children.size(), 1u);
  EXPECT_EQ(outer.children[0].children[0].name, "work.inner");
  EXPECT_EQ(outer.children[0].children[0].count, 4u);
}

// --- memory observability ---------------------------------------------------

TEST(MemoryObsTest, VectorFootprintTracksCapacityNotSize) {
  std::vector<double> v;
  EXPECT_EQ(obs::VectorFootprintBytes(v), 0u);
  v.reserve(100);
  EXPECT_EQ(obs::VectorFootprintBytes(v), 100 * sizeof(double));
  v.resize(10);
  EXPECT_EQ(obs::VectorFootprintBytes(v), v.capacity() * sizeof(double));
}

TEST(MemoryObsTest, ScratchHighWaterIsMonotoneAcrossShrinkingProblems) {
  PartitionScratch s;
  EXPECT_EQ(s.peak_bytes, 0u);
  s.gain.reserve(4096);
  ASSERT_TRUE(s.NoteHighWater());
  const std::size_t after_big = s.peak_bytes;
  EXPECT_GE(after_big, 4096 * sizeof(double));

  // A smaller follow-up problem (capacities retained, nothing grows): the
  // mark must not move, and must never decrease.
  s.gain.clear();
  EXPECT_FALSE(s.NoteHighWater());
  EXPECT_EQ(s.peak_bytes, after_big);

  // Growth moves it again.
  s.side.reserve(1 << 16);
  ASSERT_TRUE(s.NoteHighWater());
  EXPECT_GT(s.peak_bytes, after_big);
}

TEST(MemoryObsTest, GroupAccumulatorCountsOnlyGrowingResets) {
  GroupAccumulator acc;
  EXPECT_EQ(acc.grow_events(), 0u);
  acc.Reset(64);
  EXPECT_EQ(acc.grow_events(), 1u);
  acc.Reset(32);  // smaller universe: reuse, no growth
  acc.Reset(64);  // equal to capacity: reuse, no growth
  EXPECT_EQ(acc.grow_events(), 1u);
  acc.Reset(128);
  EXPECT_EQ(acc.grow_events(), 2u);
  EXPECT_GE(acc.ApproxBytes(),
            128 * (sizeof(double) + sizeof(std::uint32_t)));
}

TEST(MemoryObsTest, PeakRssIsPositiveOnSupportedPlatforms) {
#if defined(__linux__) || defined(__APPLE__)
  EXPECT_GT(obs::PeakRssBytes(), 0u);
#else
  SUCCEED();
#endif
}

}  // namespace
}  // namespace gl
