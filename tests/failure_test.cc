#include <gtest/gtest.h>

#include "core/goldilocks.h"
#include "sim/failure.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000};

// A replicated service (3 replicas) plus filler containers on a leaf-spine.
struct Fixture {
  Fixture() : topo(Topology::LeafSpine(6, 2, 2, kCap, 1000.0)) {
    for (int r = 0; r < 3; ++r) {
      Container c;
      c.id = ContainerId{workload.size()};
      c.app = AppType::kCassandra;
      c.demand = {.cpu = 300, .mem_gb = 8, .net_mbps = 30};
      c.replica_set = GroupId{1};
      workload.containers.push_back(c);
    }
    for (int i = 0; i < 12; ++i) {
      Container c;
      c.id = ContainerId{workload.size()};
      c.app = AppType::kFrontend;
      c.demand = {.cpu = 150, .mem_gb = 2, .net_mbps = 20};
      workload.containers.push_back(c);
      workload.edges.push_back(
          {ContainerId{i % 3}, c.id, 100.0, true});
    }
    for (const auto& c : workload.containers) demands.push_back(c.demand);
    active.assign(workload.containers.size(), 1);
  }

  Placement Place() {
    SchedulerInput input;
    input.workload = &workload;
    input.demands = demands;
    input.active = active;
    input.topology = &topo;
    GoldilocksScheduler sched;
    return sched.Place(input);
  }

  Topology topo;
  Workload workload;
  std::vector<Resource> demands;
  std::vector<std::uint8_t> active;
};

TEST(Failure, ServerFailureDisplacesItsContainers) {
  Fixture f;
  const Placement p = f.Place();
  const ServerId victim = p.server_of[0];
  ASSERT_TRUE(victim.valid());
  const auto impact = InjectFailure(p, f.workload, f.topo,
                                    FailureDomain::kServer, victim);
  EXPECT_EQ(impact.failed_servers, 1);
  EXPECT_FALSE(impact.displaced.empty());
  for (const auto c : impact.displaced) {
    EXPECT_EQ(p.server_of[static_cast<std::size_t>(c.value())], victim);
  }
}

TEST(Failure, AntiAffinityKeepsServiceAvailableThroughRackLoss) {
  Fixture f;
  const Placement p = f.Place();
  // Kill the rack of replica 0. Goldilocks' fault domains must have kept
  // at least one replica elsewhere.
  const auto impact = InjectFailure(p, f.workload, f.topo,
                                    FailureDomain::kRack, p.server_of[0]);
  EXPECT_TRUE(impact.unavailable_sets.empty())
      << "a replica set went fully dark despite anti-affinity";
}

TEST(Failure, ColocatedReplicasGoDarkTogether) {
  // The negative result: place all replicas on one server by hand and kill
  // it — the set must be reported unavailable.
  Fixture f;
  Placement p;
  p.server_of.assign(f.workload.containers.size(), ServerId{1});
  for (int r = 0; r < 3; ++r) {
    p.server_of[static_cast<std::size_t>(r)] = ServerId{0};
  }
  const auto impact = InjectFailure(p, f.workload, f.topo,
                                    FailureDomain::kServer, ServerId{0});
  ASSERT_EQ(impact.unavailable_sets.size(), 1u);
  EXPECT_EQ(impact.unavailable_sets[0], GroupId{1});
  EXPECT_TRUE(impact.degraded_sets.empty());
}

TEST(Failure, PartialLossIsDegradedNotUnavailable) {
  Fixture f;
  Placement p;
  p.server_of.assign(f.workload.containers.size(), ServerId{4});
  p.server_of[0] = ServerId{0};  // one replica on the victim
  p.server_of[1] = ServerId{2};
  p.server_of[2] = ServerId{4};
  const auto impact = InjectFailure(p, f.workload, f.topo,
                                    FailureDomain::kServer, ServerId{0});
  ASSERT_EQ(impact.degraded_sets.size(), 1u);
  EXPECT_TRUE(impact.unavailable_sets.empty());
}

TEST(Failure, RecoveryFindsNewHomes) {
  Fixture f;
  const Placement p = f.Place();
  const auto impact = InjectFailure(p, f.workload, f.topo,
                                    FailureDomain::kRack, p.server_of[0]);
  const auto recovery =
      PlanRecovery(p, impact, f.workload, f.demands, f.topo);
  EXPECT_EQ(recovery.unrecoverable, 0);
  EXPECT_EQ(recovery.recovered, static_cast<int>(impact.displaced.size()));
  EXPECT_GT(recovery.recovery_makespan_ms, 0.0);
  // Nothing may land back on the dead rack.
  const NodeId dead_rack =
      f.topo.AncestorAt(f.topo.server_node(p.server_of[0]), 1);
  for (const auto c : impact.displaced) {
    const ServerId s =
        recovery.placement.server_of[static_cast<std::size_t>(c.value())];
    ASSERT_TRUE(s.valid());
    EXPECT_NE(f.topo.AncestorAt(f.topo.server_node(s), 1), dead_rack);
  }
}

TEST(Failure, UntouchedContainersStayPut) {
  Fixture f;
  const Placement p = f.Place();
  const auto impact = InjectFailure(p, f.workload, f.topo,
                                    FailureDomain::kServer, p.server_of[0]);
  const auto recovery =
      PlanRecovery(p, impact, f.workload, f.demands, f.topo);
  for (std::size_t i = 0; i < p.server_of.size(); ++i) {
    const bool was_displaced =
        std::find(impact.displaced.begin(), impact.displaced.end(),
                  ContainerId{static_cast<int>(i)}) != impact.displaced.end();
    if (!was_displaced) {
      EXPECT_EQ(recovery.placement.server_of[i], p.server_of[i]);
    }
  }
}

TEST(Failure, RecoveryCapacityExhaustion) {
  // Tiny cluster: 2 servers nearly full; killing one leaves nowhere to go.
  Topology topo = Topology::LeafSpine(2, 1, 1, kCap, 1000.0);
  Workload w;
  for (int i = 0; i < 2; ++i) {
    Container c;
    c.id = ContainerId{i};
    c.demand = {.cpu = 2800, .mem_gb = 50, .net_mbps = 100};
    w.containers.push_back(c);
  }
  std::vector<Resource> demands{w.containers[0].demand,
                                w.containers[1].demand};
  Placement p;
  p.server_of = {ServerId{0}, ServerId{1}};
  const auto impact =
      InjectFailure(p, w, topo, FailureDomain::kServer, ServerId{0});
  const auto recovery = PlanRecovery(p, impact, w, demands, topo);
  EXPECT_EQ(recovery.unrecoverable, 1);
  EXPECT_FALSE(recovery.placement.server_of[0].valid());
}

}  // namespace
}  // namespace gl
