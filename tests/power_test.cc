#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "power/server_power.h"
#include "power/spec_population.h"

namespace gl {
namespace {

// --- server power curve -----------------------------------------------------------

TEST(ServerPower, MonotoneIncreasing) {
  const auto m = ServerPowerModel::Dell2018();
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double p = m.Power(i / 100.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(ServerPower, IdleAndMaxEndpoints) {
  const auto m = ServerPowerModel::Dell2018(1000.0);
  EXPECT_DOUBLE_EQ(m.Power(0.0), 350.0);   // 35% idle
  EXPECT_DOUBLE_EQ(m.Power(1.0), 1000.0);  // max at full load
  EXPECT_DOUBLE_EQ(m.max_watts(), 1000.0);
}

TEST(ServerPower, ClampsUtilization) {
  const auto m = ServerPowerModel::Dell2018();
  EXPECT_DOUBLE_EQ(m.Power(-0.5), m.Power(0.0));
  EXPECT_DOUBLE_EQ(m.Power(1.5), m.Power(1.0));
}

TEST(ServerPower, LinearBelowPee) {
  const auto m = ServerPowerModel::Dell2018(1000.0);
  // Below the PEE point increments are constant (pure frequency scaling).
  const double d1 = m.Power(0.2) - m.Power(0.1);
  const double d2 = m.Power(0.6) - m.Power(0.5);
  EXPECT_NEAR(d1, d2, 1e-9);
}

TEST(ServerPower, SuperlinearAbovePee) {
  const auto m = ServerPowerModel::Dell2018(1000.0);
  // Beyond PEE the marginal power grows (V and f both scale).
  const double d_low = m.Power(0.75) - m.Power(0.70);
  const double d_high = m.Power(1.00) - m.Power(0.95);
  EXPECT_GT(d_high, d_low * 1.5);
}

TEST(ServerPower, FasterThanLinearBeyondPee) {
  const auto m = ServerPowerModel::Dell2018(1000.0);
  // Paper Fig 1(a): the modern curve crosses above the proportional line
  // beyond the PEE point.
  const double at_pee = m.Power(0.7);
  const double slope_to_max = (m.Power(1.0) - at_pee) / 0.3;
  const double slope_before = (at_pee - m.Power(0.0)) / 0.7;
  EXPECT_GT(slope_to_max, slope_before);
}

TEST(ServerPower, PeakEfficiencyAtSeventyPercent) {
  const auto m = ServerPowerModel::Dell2018();
  EXPECT_NEAR(m.PeakEfficiencyUtilization(), 0.70, 0.011);
}

TEST(ServerPower, LinearModelPeaksAtFullLoad) {
  const auto m = ServerPowerModel::Linear2010();
  EXPECT_NEAR(m.PeakEfficiencyUtilization(), 1.0, 1e-9);
}

TEST(ServerPower, EfficiencyShapeAroundPee) {
  const auto m = ServerPowerModel::Dell2018();
  // Strictly increasing up to the PEE point, strictly decreasing after.
  EXPECT_LT(m.EfficiencyPerWatt(0.3), m.EfficiencyPerWatt(0.5));
  EXPECT_LT(m.EfficiencyPerWatt(0.5), m.EfficiencyPerWatt(0.7));
  EXPECT_GT(m.EfficiencyPerWatt(0.7), m.EfficiencyPerWatt(0.85));
  EXPECT_GT(m.EfficiencyPerWatt(0.85), m.EfficiencyPerWatt(1.0));
}

TEST(ServerPower, Presets) {
  EXPECT_DOUBLE_EQ(ServerPowerModel::Facebook1S().max_watts(), 96.0);
  EXPECT_DOUBLE_EQ(ServerPowerModel::MicrosoftBlade().max_watts(), 250.0);
  EXPECT_DOUBLE_EQ(ServerPowerModel::DellR940().max_watts(), 1100.0);
}

// The WithPeePoint factory must actually put the efficiency peak where it
// claims, across the whole ablation range.
class PeePointTest : public ::testing::TestWithParam<double> {};

TEST_P(PeePointTest, PeakMatchesRequestedPoint) {
  const double pee = GetParam();
  const auto m = ServerPowerModel::WithPeePoint(pee);
  EXPECT_NEAR(m.PeakEfficiencyUtilization(), pee, 0.011);
}

TEST_P(PeePointTest, CurveStaysMonotone) {
  const auto m = ServerPowerModel::WithPeePoint(GetParam());
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double p = m.Power(i / 100.0);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PeePointTest,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9, 1.0));

// --- switch power -------------------------------------------------------------------

TEST(SwitchPower, FullAndPartialPorts) {
  const SwitchPowerModel m("sw", 300.0, 0.3);
  EXPECT_DOUBLE_EQ(m.Power(1.0), 300.0);
  EXPECT_DOUBLE_EQ(m.Power(0.0), 210.0);  // chassis only
  EXPECT_DOUBLE_EQ(m.Power(0.5), 255.0);
}

TEST(SwitchPower, Presets) {
  EXPECT_DOUBLE_EQ(SwitchPowerModel::FacebookWedge().Power(1.0), 282.0);
  EXPECT_DOUBLE_EQ(SwitchPowerModel::Facebook6Pack().Power(1.0), 1400.0);
  EXPECT_DOUBLE_EQ(SwitchPowerModel::Altoline6940().Power(1.0), 315.0);
}

// --- SPEC population (Fig 1b) --------------------------------------------------------

TEST(SpecPopulation, SharesSumToOne) {
  for (const auto& d : SpecPeeDistributions()) {
    double sum = 0.0;
    for (const double s : d.share) sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-9) << "year " << d.year;
  }
}

TEST(SpecPopulation, DriftTowardLowerPee) {
  const auto y2010 = PeeSharesForYear(2010);
  const auto y2018 = PeeSharesForYear(2018);
  // Share of servers peaking at 100% collapses; 60–80% band dominates.
  EXPECT_GT(y2010[0], 0.7);
  EXPECT_LT(y2018[0], 0.1);
  EXPECT_GT(y2018[2] + y2018[3] + y2018[4], 0.8);
}

TEST(SpecPopulation, SampleMatchesDistribution) {
  Rng rng(99);
  const auto fleet = SampleSpecPopulation(419, rng);
  EXPECT_EQ(fleet.size(), 419u);
  int low_pee = 0;
  for (const auto& s : fleet) {
    EXPECT_GE(s.pee_utilization, 0.6);
    EXPECT_LE(s.pee_utilization, 1.0);
    if (s.pee_utilization <= 0.8) ++low_pee;
  }
  // A decade-mixed fleet has a substantial sub-80% contingent.
  EXPECT_GT(low_pee, 419 / 5);
}

TEST(SpecPopulation, SampledModelsAreConsistent) {
  Rng rng(7);
  const auto fleet = SampleSpecPopulation(50, rng);
  for (const auto& s : fleet) {
    EXPECT_NEAR(s.model.PeakEfficiencyUtilization(), s.pee_utilization,
                0.011);
  }
}

}  // namespace
}  // namespace gl
