// Hand-computed checks of the paper's equations (4) and (5): the bandwidth
// reserved on a subtree's outbound uplink for a container group must equal
//
//   R_Gk(T) = min( Σ_{q∈Gka} B_q,                      [inside component]
//                  Σ_{r∈Gkb} B_r                        [own outside]
//                + Σ_{y≠k placed} Σ_{r∈Gyb} B_r         [others' outside]
//                + Σ_{z pending} Σ_{s∈Gz} B_s )         [pending, all out]
//
// These scenarios are small enough to evaluate the formula by hand and
// compare against VirtualClusterPlacer::ReservationOn.
#include <gtest/gtest.h>

#include <unordered_map>

#include "core/virtual_cluster.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 3200, .mem_gb = 64, .net_mbps = 10000};

std::vector<Resource> Demands(std::initializer_list<double> net) {
  std::vector<Resource> out;
  for (const double n : net) {
    out.push_back(Resource{.cpu = 100, .mem_gb = 1, .net_mbps = n});
  }
  return out;
}

TEST(Equation45, WholeGroupInOneRackReservesItsBandwidthBound) {
  // One group of two containers (B = 100 each) lands wholly in rack 0; no
  // other groups exist. Component b is empty and there is no inter-group
  // traffic, so Eq. (4) gives R = min(ΣB_a, 0) = 0 on the rack uplink.
  Topology topo = Topology::LeafSpine(4, 4, 2, kCap, 10000.0);
  VirtualClusterPlacer placer(topo, {});
  const std::vector<std::vector<ContainerId>> groups{
      {ContainerId{0}, ContainerId{1}}};
  const auto demands = Demands({100, 100});
  placer.PlaceGroups(groups, demands, 2);
  const NodeId rack = topo.AncestorAt(topo.server_node(ServerId{0}), 1);
  EXPECT_NEAR(placer.ReservationOn(rack), 0.0, 1e-9);
}

TEST(Equation45, PendingGroupsCountAsFullyOutside) {
  // Group 0 (2×100) placed in rack 0 while group 1 (2×40) is still pending
  // (all of it outside). Eq. (5) for group 0 on rack 0's uplink:
  //   min(ΣB_in = 200, own outside 0 + pending 80) = 80.
  // We freeze the placer mid-flight by placing group 0 alone first with
  // group 1 declared but empty-handed — emulated by asking for the
  // reservation right after the first commit via a 2-group call where the
  // second group cannot fit rack 0 (forced to rack 1 by capacity).
  Topology topo = Topology::LeafSpine(4, 1, 2, kCap, 10000.0);
  // One server per rack: group 0 fills server 0's rack; group 1 must go to
  // rack 1, making group-0-inside / group-1-outside exact.
  Resource small = kCap;
  small.cpu = 250;  // a server fits at most two 100-cpu containers at 70%
  for (int s = 0; s < topo.num_servers(); ++s) {
    topo.set_server_capacity(ServerId{s}, small);
  }
  VirtualClusterPlacer placer(topo, {});
  const std::vector<std::vector<ContainerId>> groups{
      {ContainerId{0}},  // B = 100
      {ContainerId{1}}   // B = 40
  };
  const auto demands = Demands({100, 40});
  placer.PlaceGroups(groups, demands, 2);
  // After both are placed in different racks:
  // rack(g0): R_g0 = min(100, 0 + outside_others 40) = 40
  //           (g1 has no members here, contributes nothing directly)
  // rack(g1): R_g1 = min(40, 0 + outside_others 100) = 40.
  const NodeId rack0 = topo.AncestorAt(topo.server_node(ServerId{0}), 1);
  const NodeId rack1 = topo.AncestorAt(topo.server_node(ServerId{1}), 1);
  EXPECT_NEAR(placer.ReservationOn(rack0), 40.0, 1e-9);
  EXPECT_NEAR(placer.ReservationOn(rack1), 40.0, 1e-9);
}

TEST(Equation45, SplitGroupReservesMinOfInsideAndOutside) {
  // A 3-container group (B = 100 each) forced to split 2-in / 1-out of a
  // rack. For the rack holding the 2-component:
  //   R = min(ΣB_in = 200, own outside = 100) = 100.
  Topology topo = Topology::LeafSpine(4, 1, 2, kCap, 10000.0);
  Resource small = kCap;
  small.cpu = 300;  // two 100-cpu containers at 70% = 210 ≤ 210 ✓; three no
  for (int s = 0; s < topo.num_servers(); ++s) {
    topo.set_server_capacity(ServerId{s}, small);
  }
  VirtualClusterPlacer placer(topo, {});
  const std::vector<std::vector<ContainerId>> groups{
      {ContainerId{0}, ContainerId{1}, ContainerId{2}}};
  const auto demands = Demands({100, 100, 100});
  const auto p = placer.PlaceGroups(groups, demands, 3);
  // Find the rack with two members.
  std::unordered_map<int, int> per_rack;
  for (int i = 0; i < 3; ++i) {
    const NodeId rack = topo.AncestorAt(
        topo.server_node(p.server_of[static_cast<std::size_t>(i)]), 1);
    ++per_rack[rack.value()];
  }
  for (const auto& [rack_value, count] : per_rack) {
    const double r = placer.ReservationOn(NodeId{rack_value});
    if (count == 2) {
      EXPECT_NEAR(r, 100.0, 1e-9);  // min(200, 100)
    } else {
      EXPECT_NEAR(r, 100.0, 1e-9);  // min(100, 200)
    }
  }
}

TEST(Equation45, ReservationNeverExceedsInsideBandwidth) {
  // Whatever the configuration, R_Gk ≤ Σ B over the inside component — the
  // "could never be larger than the total bandwidth of component a" bound.
  Topology topo = Topology::FatTree(4, kCap, 10000.0);
  VirtualClusterPlacer placer(topo, {});
  std::vector<std::vector<ContainerId>> groups;
  std::vector<Resource> demands;
  int next = 0;
  for (int g = 0; g < 6; ++g) {
    std::vector<ContainerId> members;
    for (int i = 0; i < 4; ++i) {
      members.push_back(ContainerId{next++});
      demands.push_back(Resource{.cpu = 200, .mem_gb = 2,
                                 .net_mbps = 50.0 + 25.0 * g});
    }
    groups.push_back(std::move(members));
  }
  const auto p = placer.PlaceGroups(groups, demands, demands.size());
  for (const auto rack : topo.NodesAtLevel(1)) {
    double inside = 0.0;
    for (const auto s : topo.ServersUnder(rack)) {
      for (std::size_t c = 0; c < demands.size(); ++c) {
        if (p.server_of[c] == s) inside += demands[c].net_mbps;
      }
    }
    EXPECT_LE(placer.ReservationOn(rack), inside + 1e-9);
  }
}

}  // namespace
}  // namespace gl
