// Tests for the determinism subsystem (DESIGN.md §8): the FNV state hasher,
// the stable-iteration adapters, the shared epsilon helpers, and the golden
// seed-replay guarantee — every scheduler, run twice from the same seed, must
// produce bit-identical per-epoch state-hash streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/resource.h"
#include "common/rng.h"
#include "common/stable_map.h"
#include "common/state_hash.h"
#include "core/epoch_controller.h"
#include "core/scheduler_factory.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "workload/scenarios.h"

namespace gl {
namespace {

// --- StateHasher --------------------------------------------------------------

TEST(StateHasher, EmptyDigestIsFnvOffsetBasis) {
  StateHasher h;
  EXPECT_EQ(h.digest(), 0xcbf29ce484222325ULL);
}

TEST(StateHasher, MatchesKnownFnv1aVector) {
  // FNV-1a of the byte 0x61 ('a'), fed through MixU64's little-endian byte
  // stream: only the low byte is 'a', the remaining seven are zero.
  StateHasher h;
  h.MixU64(0x61);
  std::uint64_t expect = 0xcbf29ce484222325ULL;
  std::uint64_t v = 0x61;
  for (int i = 0; i < 8; ++i) {
    expect = (expect ^ (v & 0xff)) * 0x100000001b3ULL;
    v >>= 8;
  }
  EXPECT_EQ(h.digest(), expect);
}

TEST(StateHasher, OrderSensitive) {
  StateHasher ab, ba;
  ab.MixU64(1);
  ab.MixU64(2);
  ba.MixU64(2);
  ba.MixU64(1);
  EXPECT_NE(ab.digest(), ba.digest());
}

TEST(StateHasher, NegativeZeroCanonicalized) {
  StateHasher pos, neg;
  pos.MixDouble(0.0);
  neg.MixDouble(-0.0);
  EXPECT_EQ(pos.digest(), neg.digest());
  StateHasher one;
  one.MixDouble(1.0);
  EXPECT_NE(pos.digest(), one.digest());
}

TEST(StateHasher, PlacementHashSensitivity) {
  const std::vector<ServerId> a = {ServerId(0), ServerId(1), ServerId(2)};
  std::vector<ServerId> b = a;
  EXPECT_EQ(HashAssignment(a), HashAssignment(b));
  b[1] = ServerId(7);
  EXPECT_NE(HashAssignment(a), HashAssignment(b));
  // A container parked on an invalid server still contributes.
  std::vector<ServerId> c = a;
  c[2] = ServerId();
  EXPECT_NE(HashAssignment(a), HashAssignment(c));
}

TEST(StateHasher, RngStateHashTracksDraws) {
  Rng a(42), b(42);
  EXPECT_EQ(a.StateHash(), b.StateHash());
  (void)a.NextDouble();
  EXPECT_NE(a.StateHash(), b.StateHash());
  (void)b.NextDouble();
  EXPECT_EQ(a.StateHash(), b.StateHash());
}

TEST(StateHasher, FirstDivergentSubsystemOrdering) {
  EpochStateHash a;
  a.epoch = 3;
  a.placement = 1;
  a.loads = 2;
  a.power = 3;
  a.migration = 4;
  a.rng = 5;
  EpochStateHash b = a;
  EXPECT_EQ(FirstDivergentSubsystem(a, b), nullptr);
  b.rng = 99;
  EXPECT_STREQ(FirstDivergentSubsystem(a, b), "rng");
  b.placement = 98;  // placement outranks rng in the report
  EXPECT_STREQ(FirstDivergentSubsystem(a, b), "placement");
  b = a;
  b.epoch = 4;
  EXPECT_STREQ(FirstDivergentSubsystem(a, b), "epoch");
}

// --- stable iteration adapters ------------------------------------------------

TEST(StableMap, SortedItemsYieldsKeyOrder) {
  std::unordered_map<int, double> m = {{7, 0.7}, {1, 0.1}, {3, 0.3}};
  const auto items = SortedItems(m);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, 1);
  EXPECT_EQ(items[1].first, 3);
  EXPECT_EQ(items[2].first, 7);
  EXPECT_DOUBLE_EQ(items[2].second, 0.7);
}

TEST(StableMap, SortedKeysWorksForSetsAndMaps) {
  std::unordered_set<int> s = {5, 2, 9};
  EXPECT_EQ(SortedKeys(s), (std::vector<int>{2, 5, 9}));
  std::unordered_map<int, int> m = {{4, 0}, {0, 0}};
  EXPECT_EQ(SortedKeys(m), (std::vector<int>{0, 4}));
}

TEST(StableMap, ValueOrLooksUpSortedItems) {
  std::unordered_map<int, double> m = {{2, 2.5}, {8, 8.5}};
  const auto items = SortedItems(m);
  EXPECT_DOUBLE_EQ(ValueOr(items, 2, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(ValueOr(items, 5, -1.0), -1.0);
}

// --- shared epsilon helpers ---------------------------------------------------

TEST(ResourceEps, WithinCapToleratesAccumulationNoise) {
  EXPECT_TRUE(WithinCap(1.0, 1.0));
  EXPECT_TRUE(WithinCap(1.0 + 0.5 * kResourceEps, 1.0));
  EXPECT_FALSE(WithinCap(1.01, 1.0));
  // FitsIn routes through the shared helper.
  const Resource cap{.cpu = 100, .mem_gb = 10, .net_mbps = 1000};
  Resource use = cap;
  use.cpu += 20 * kResourceEps;  // below the relative tolerance at cpu=100
  EXPECT_TRUE(use.FitsIn(cap));
  use.cpu = 101;
  EXPECT_FALSE(use.FitsIn(cap));
}

TEST(ResourceEps, ApproxEqIsSymmetricAndScaled) {
  EXPECT_TRUE(ApproxEq(0.0, 0.0));
  EXPECT_TRUE(ApproxEq(1e9, 1e9 * (1.0 + 0.5 * kResourceEps)));
  EXPECT_FALSE(ApproxEq(1.0, 1.1));
  EXPECT_TRUE(ApproxEq(-3.0, -3.0));
}

// --- golden seed replay -------------------------------------------------------

std::vector<EpochStateHash> RunHashed(const std::string& name,
                                      const Scenario& scenario,
                                      const Topology& topo) {
  auto scheduler = MakeNamedScheduler(name, 0.70, 0xfeed);
  RunnerOptions opts;
  opts.record_state_hashes = true;
  const ExperimentRunner runner(scenario, topo, opts);
  return runner.Run(*scheduler).state_hashes;
}

TEST(SeedReplay, AllSchedulersBitIdenticalAcrossRuns) {
  const Topology topo = Topology::Testbed16();
  TwitterScenarioOptions sopts;
  sopts.num_epochs = 8;
  const auto scenario = MakeTwitterCachingScenario(sopts);
  for (const auto& name : NamedSchedulers()) {
    SCOPED_TRACE(name);
    const auto first = RunHashed(name, *scenario, topo);
    const auto second = RunHashed(name, *scenario, topo);
    ASSERT_EQ(first.size(), second.size());
    ASSERT_EQ(first.size(), 8u);
    for (std::size_t e = 0; e < first.size(); ++e) {
      EXPECT_EQ(FirstDivergentSubsystem(first[e], second[e]), nullptr)
          << "epoch " << e << ": " << first[e].ToString() << " vs "
          << second[e].ToString();
    }
  }
}

TEST(SeedReplay, DifferentSeedsDivergeForRandomScheduler) {
  const Topology topo = Topology::Testbed16();
  TwitterScenarioOptions sopts;
  sopts.num_epochs = 4;
  const auto scenario = MakeTwitterCachingScenario(sopts);
  RunnerOptions opts;
  opts.record_state_hashes = true;
  const ExperimentRunner runner(*scenario, topo, opts);
  auto a = MakeNamedScheduler("random", 0.70, 1);
  auto b = MakeNamedScheduler("random", 0.70, 2);
  const auto ha = runner.Run(*a).state_hashes;
  const auto hb = runner.Run(*b).state_hashes;
  ASSERT_EQ(ha.size(), hb.size());
  bool any_diff = false;
  for (std::size_t e = 0; e < ha.size(); ++e) {
    any_diff = any_diff || FirstDivergentSubsystem(ha[e], hb[e]) != nullptr;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SeedReplay, EpochControllerStreamsMatch) {
  const Topology topo = Topology::Testbed16();
  TwitterScenarioOptions sopts;
  sopts.num_epochs = 6;
  const auto scenario = MakeTwitterCachingScenario(sopts);
  auto run = [&] {
    EpochController ctl(MakeNamedScheduler("goldilocks"), topo);
    ctl.EnableStateHash();
    for (int e = 0; e < scenario->num_epochs(); ++e) {
      (void)ctl.Step(scenario->workload(), scenario->DemandsAt(e),
                     scenario->ActiveAt(e));
    }
    return ctl.state_hashes();
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), 6u);
  ASSERT_EQ(second.size(), 6u);
  for (std::size_t e = 0; e < first.size(); ++e) {
    EXPECT_EQ(FirstDivergentSubsystem(first[e], second[e]), nullptr)
        << first[e].ToString() << " vs " << second[e].ToString();
  }
  // The stream is not degenerate: successive epochs hash differently.
  EXPECT_NE(first[0].Combined(), first[1].Combined());
}

TEST(SeedReplay, HashesOffByDefault) {
  const Topology topo = Topology::Testbed16();
  TwitterScenarioOptions sopts;
  sopts.num_epochs = 2;
  const auto scenario = MakeTwitterCachingScenario(sopts);
  const ExperimentRunner runner(*scenario, topo, RunnerOptions{});
  auto scheduler = MakeNamedScheduler("mpp");
  EXPECT_TRUE(runner.Run(*scheduler).state_hashes.empty());
}

}  // namespace
}  // namespace gl
