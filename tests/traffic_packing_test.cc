#include <gtest/gtest.h>

#include "netsim/traffic_packing.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 1600, .mem_gb = 64, .net_mbps = 1000};

struct Fixture {
  Fixture()
      : topo(Topology::FatTree(4, kCap, 1000.0)),
        models(static_cast<std::size_t>(topo.num_levels()),
               SwitchPowerModel("sw", 100.0, 0.3)) {
    traffic.node_uplink_mbps.assign(
        static_cast<std::size_t>(topo.num_nodes()), 0.0);
  }

  void LoadUplink(NodeId n, double mbps) {
    traffic.node_uplink_mbps[static_cast<std::size_t>(n.value())] = mbps;
  }

  Topology topo;
  std::vector<SwitchPowerModel> models;
  TrafficEstimate traffic;
};

TEST(TrafficPacking, AllIdleEverythingOff) {
  Fixture f;
  std::vector<std::uint8_t> active(16, 0);
  const auto plan = PackTraffic(f.topo, active, f.traffic, f.models);
  EXPECT_EQ(plan.total_active_switches, 0);
  EXPECT_EQ(plan.total_active_links, 0);
  EXPECT_DOUBLE_EQ(plan.watts, 0.0);
  EXPECT_FALSE(plan.overloaded);
  EXPECT_EQ(plan.total_switches, 20);
}

TEST(TrafficPacking, IdleButActiveKeepsConnectivity) {
  Fixture f;
  std::vector<std::uint8_t> active(16, 1);
  // Zero traffic: every bundle still keeps its backup/connectivity links.
  const auto plan = PackTraffic(f.topo, active, f.traffic, f.models);
  EXPECT_GT(plan.total_active_switches, 0);
  for (int i = 0; i < f.topo.num_nodes(); ++i) {
    const auto& node = f.topo.node(NodeId{i});
    if (node.physical_uplinks > 0) {
      EXPECT_GE(plan.active_uplinks[static_cast<std::size_t>(i)], 1);
    }
  }
}

TEST(TrafficPacking, LinksScaleWithLoad) {
  Fixture f;
  std::vector<std::uint8_t> active(16, 1);
  const NodeId rack = f.topo.AncestorAt(f.topo.server_node(ServerId{0}), 1);
  // Rack uplink bundle: 2 links × 1G.
  f.LoadUplink(rack, 100.0);
  const auto light = PackTraffic(f.topo, active, f.traffic, f.models);
  f.LoadUplink(rack, 1700.0);
  const auto heavy = PackTraffic(f.topo, active, f.traffic, f.models);
  EXPECT_LT(light.active_uplinks[static_cast<std::size_t>(rack.value())],
            heavy.active_uplinks[static_cast<std::size_t>(rack.value())]);
  EXPECT_EQ(heavy.active_uplinks[static_cast<std::size_t>(rack.value())], 2);
}

TEST(TrafficPacking, OverloadFlagged) {
  Fixture f;
  std::vector<std::uint8_t> active(16, 1);
  const NodeId rack = f.topo.AncestorAt(f.topo.server_node(ServerId{0}), 1);
  f.LoadUplink(rack, 5000.0);  // 2 G bundle cannot carry 5 G
  const auto plan = PackTraffic(f.topo, active, f.traffic, f.models);
  EXPECT_TRUE(plan.overloaded);
}

TEST(TrafficPacking, PackedNetworkCheaperThanFull) {
  Fixture f;
  std::vector<std::uint8_t> active(16, 1);
  // Light traffic everywhere (10% — the paper's baseline link load).
  for (int i = 0; i < f.topo.num_nodes(); ++i) {
    const auto& node = f.topo.node(NodeId{i});
    if (node.uplink_capacity_mbps > 0.0) {
      f.LoadUplink(NodeId{i}, 0.1 * node.uplink_capacity_mbps);
    }
  }
  const auto plan = PackTraffic(f.topo, active, f.traffic, f.models);
  const double full_watts = f.topo.num_switches() * 100.0;
  EXPECT_LT(plan.watts, full_watts);
  EXPECT_GT(plan.watts, 0.0);
  // Fig 3's point: traffic packing saves a modest share of network power.
  EXPECT_LT(plan.watts / full_watts, 0.95);
}

TEST(TrafficPacking, GatedRacksDropSwitches) {
  Fixture f;
  std::vector<std::uint8_t> half(16, 0);
  for (int i = 0; i < 8; ++i) half[static_cast<std::size_t>(i)] = 1;
  std::vector<std::uint8_t> all(16, 1);
  const auto plan_half = PackTraffic(f.topo, half, f.traffic, f.models);
  const auto plan_all = PackTraffic(f.topo, all, f.traffic, f.models);
  EXPECT_LT(plan_half.total_active_switches, plan_all.total_active_switches);
}

TEST(TrafficPacking, BackupFractionAddsLinks) {
  Fixture f;
  std::vector<std::uint8_t> active(16, 1);
  TrafficPackingOptions no_backup;
  no_backup.backup_fraction = 0.0;
  TrafficPackingOptions with_backup;
  with_backup.backup_fraction = 0.5;
  const auto a = PackTraffic(f.topo, active, f.traffic, f.models, no_backup);
  const auto b =
      PackTraffic(f.topo, active, f.traffic, f.models, with_backup);
  EXPECT_GT(b.total_active_links, a.total_active_links);
}

}  // namespace
}  // namespace gl
