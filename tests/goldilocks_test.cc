#include <gtest/gtest.h>

#include <set>

#include "core/goldilocks.h"
#include "schedulers/borg.h"
#include "schedulers/e_pvm.h"
#include "workload/scenarios.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000};

struct Fixture {
  explicit Fixture(int epoch = 30)
      : topo(Topology::LeafSpine(8, 2, 2, kCap, 1000.0)),
        scenario(MakeTwitterCachingScenario()) {
    demands = scenario->DemandsAt(epoch);
    active = scenario->ActiveAt(epoch);
    input.workload = &scenario->workload();
    input.demands = demands;
    input.active = active;
    input.topology = &topo;
  }
  Topology topo;
  std::unique_ptr<Scenario> scenario;
  std::vector<Resource> demands;
  std::vector<std::uint8_t> active;
  SchedulerInput input;
};

// --- graph builder ------------------------------------------------------------------

TEST(GraphBuilder, OneVertexPerActiveContainer) {
  Fixture f;
  const auto cg = BuildContainerGraph(*f.input.workload, f.demands, f.active,
                                      kCap);
  EXPECT_EQ(cg.graph.num_vertices(), 176);
  EXPECT_EQ(cg.vertex_to_container.size(), 176u);
  for (int i = 0; i < 176; ++i) {
    const auto v = cg.container_to_vertex[static_cast<std::size_t>(i)];
    ASSERT_GE(v, 0);
    EXPECT_EQ(cg.vertex_to_container[static_cast<std::size_t>(v)].value(), i);
  }
}

TEST(GraphBuilder, InactiveContainersSkipped) {
  Fixture f;
  f.active[0] = 0;
  f.active[5] = 0;
  const auto cg = BuildContainerGraph(*f.input.workload, f.demands, f.active,
                                      kCap);
  EXPECT_EQ(cg.graph.num_vertices(), 174);
  EXPECT_EQ(cg.container_to_vertex[0], -1);
}

TEST(GraphBuilder, EdgeWeightsAreFlowCounts) {
  Fixture f;
  const auto cg = BuildContainerGraph(*f.input.workload, f.demands, f.active,
                                      kCap);
  double max_w = 0.0;
  for (VertexIndex v = 0; v < cg.graph.num_vertices(); ++v) {
    for (const auto& e : cg.graph.neighbors(v)) {
      max_w = std::max(max_w, e.weight);
    }
  }
  EXPECT_DOUBLE_EQ(max_w, 4944.0);
}

TEST(GraphBuilder, ReplicaAntiAffinityEdges) {
  Workload w;
  for (int i = 0; i < 3; ++i) {
    Container c;
    c.id = ContainerId{i};
    c.demand = {.cpu = 10, .mem_gb = 1, .net_mbps = 1};
    c.replica_set = GroupId{1};
    w.containers.push_back(c);
  }
  std::vector<Resource> demands(3, {.cpu = 10, .mem_gb = 1, .net_mbps = 1});
  std::vector<std::uint8_t> active(3, 1);
  const auto cg = BuildContainerGraph(w, demands, active, kCap);
  // A negative clique over the 3 replicas.
  EXPECT_EQ(cg.graph.num_edges(), 3u);
  for (const auto& e : cg.graph.neighbors(0)) EXPECT_LT(e.weight, 0.0);
}

TEST(GraphBuilder, CapacityGraphShape) {
  const Topology topo = Topology::FatTree(4, kCap, 1000.0);
  const Graph g = BuildCapacityGraph(topo);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 16u * 15u / 2u);
  // Same-rack pairs have the shortest edges.
  bool found2 = false, found6 = false;
  for (const auto& e : g.neighbors(0)) {
    if (e.weight == 2.0) found2 = true;
    if (e.weight == 6.0) found6 = true;
  }
  EXPECT_TRUE(found2);
  EXPECT_TRUE(found6);
}

// --- Goldilocks placement --------------------------------------------------------------

TEST(Goldilocks, PlacesAllActiveContainers) {
  Fixture f;
  GoldilocksScheduler sched;
  const auto p = sched.Place(f.input);
  for (std::size_t i = 0; i < p.server_of.size(); ++i) {
    EXPECT_EQ(p.server_of[i].valid(), f.active[i] != 0);
  }
}

TEST(Goldilocks, RespectsPeeCeiling) {
  Fixture f;
  GoldilocksOptions opts;
  GoldilocksScheduler sched(opts);
  const auto p = sched.Place(f.input);
  const auto loads = ServerLoads(p, f.demands, f.topo.num_servers());
  for (int s = 0; s < f.topo.num_servers(); ++s) {
    const auto& cap = f.topo.server_capacity(ServerId{s});
    const auto& l = loads[static_cast<std::size_t>(s)];
    EXPECT_LE(l.cpu, cap.cpu * opts.pee_utilization * 1.02);
    EXPECT_LE(l.mem_gb, cap.mem_gb * opts.memory_ceiling * 1.02);
  }
}

TEST(Goldilocks, ColocatesCommunicatingPairs) {
  Fixture f;
  GoldilocksScheduler sched;
  const auto p = sched.Place(f.input);
  const auto& w = f.scenario->workload();
  // Weighted cut: heavy FE↔MC pairs should overwhelmingly be colocated or
  // same-rack.
  double colocated_flows = 0.0, total_flows = 0.0;
  for (const auto& e : w.edges) {
    total_flows += e.flows;
    const auto sa = p.of(e.a);
    const auto sb = p.of(e.b);
    if (sa.valid() && sb.valid() &&
        f.topo.HopDistance(sa, sb) <= 2) {
      colocated_flows += e.flows;
    }
  }
  EXPECT_GT(colocated_flows / total_flows, 0.7);
}

TEST(Goldilocks, BetterLocalityThanEPvm) {
  Fixture f;
  GoldilocksScheduler gold;
  EPvmScheduler epvm;
  const auto pg = gold.Place(f.input);
  const auto pe = epvm.Place(f.input);
  const auto& w = f.scenario->workload();
  auto mean_hops = [&](const Placement& p) {
    double hops = 0.0, weight = 0.0;
    for (const auto& e : w.edges) {
      const auto sa = p.of(e.a);
      const auto sb = p.of(e.b);
      if (sa.valid() && sb.valid()) {
        hops += f.topo.HopDistance(sa, sb) * e.flows;
        weight += e.flows;
      }
    }
    return hops / weight;
  };
  EXPECT_LT(mean_hops(pg), mean_hops(pe) * 0.6);
}

TEST(Goldilocks, UsesFarFewerServersThanEPvm) {
  Fixture f;
  GoldilocksScheduler gold;
  EPvmScheduler epvm;
  const int ng = gold.Place(f.input).NumActiveServers();
  const int ne = epvm.Place(f.input).NumActiveServers();
  // Paper Fig 9(a): E-PVM keeps all 16 on; Goldilocks needs ~9.
  EXPECT_EQ(ne, 16);
  EXPECT_LT(ng, ne);
  // ...but not fewer than the memory lower bound (440 GB over 57.6 GB
  // usable per server → at least 8).
  EXPECT_GE(ng, 8);
}

TEST(Goldilocks, GroupingExposedAndConsistent) {
  Fixture f;
  GoldilocksScheduler sched;
  const auto p = sched.Place(f.input);
  const auto& grouping = sched.last_grouping();
  EXPECT_EQ(grouping.size(), 176u);
  EXPECT_GT(sched.last_num_groups(), 1);
  // Containers of the same group share a server under the symmetric path.
  for (std::size_t i = 0; i < grouping.size(); ++i) {
    for (std::size_t j = i + 1; j < grouping.size(); ++j) {
      if (grouping[i] >= 0 && grouping[i] == grouping[j]) {
        EXPECT_EQ(p.server_of[i], p.server_of[j]);
      }
    }
  }
}

TEST(Goldilocks, PeeCeilingSweepChangesActiveServers) {
  Fixture f;
  auto servers_at = [&](double pee) {
    GoldilocksOptions opts;
    opts.pee_utilization = pee;
    GoldilocksScheduler sched(opts);
    return sched.Place(f.input).NumActiveServers();
  };
  // Lower ceiling → more servers.
  EXPECT_GE(servers_at(0.5), servers_at(0.7));
  EXPECT_GE(servers_at(0.7), servers_at(0.95));
}

TEST(Goldilocks, RepartitionIntervalIsStable) {
  Fixture f;
  GoldilocksOptions opts;
  opts.repartition_interval = 10;
  GoldilocksScheduler sched(opts);
  const auto p1 = sched.Place(f.input);
  // Second epoch, slightly different demands, same actives: grouping reused
  // → placement identical (no migrations).
  auto d2 = f.scenario->DemandsAt(31);
  SchedulerInput in2 = f.input;
  in2.demands = d2;
  const auto p2 = sched.Place(in2);
  EXPECT_EQ(p2.MigrationsFrom(p1), 0);
}

TEST(Goldilocks, ReplicasLandOnDifferentServers) {
  // 4 replicas of a service plus filler traffic.
  Workload w;
  for (int i = 0; i < 4; ++i) {
    Container c;
    c.id = ContainerId{w.size()};
    c.demand = {.cpu = 100, .mem_gb = 2, .net_mbps = 10};
    c.replica_set = GroupId{7};
    w.containers.push_back(c);
  }
  // Each replica has a retinue of 3 clients talking to it heavily.
  for (int r = 0; r < 4; ++r) {
    for (int k = 0; k < 3; ++k) {
      Container c;
      c.id = ContainerId{w.size()};
      c.demand = {.cpu = 50, .mem_gb = 1, .net_mbps = 5};
      w.containers.push_back(c);
      w.edges.push_back({ContainerId{r}, c.id, 100.0});
    }
  }
  std::vector<Resource> demands;
  for (const auto& c : w.containers) demands.push_back(c.demand);
  std::vector<std::uint8_t> active(w.containers.size(), 1);
  Topology topo = Topology::LeafSpine(4, 2, 2, kCap, 1000.0);
  SchedulerInput input;
  input.workload = &w;
  input.demands = demands;
  input.active = active;
  input.topology = &topo;

  GoldilocksOptions opts;
  // Force fine groups so replicas cannot hide in one big group.
  opts.pee_utilization = 0.70;
  GoldilocksScheduler sched(opts);
  const auto p = sched.Place(input);
  std::set<int> servers;
  for (int r = 0; r < 4; ++r) {
    ASSERT_TRUE(p.server_of[static_cast<std::size_t>(r)].valid());
    servers.insert(p.server_of[static_cast<std::size_t>(r)].value());
  }
  // Min-cut must separate the negative clique: ≥ 2 distinct servers, and
  // the retinues follow their replica.
  EXPECT_GE(servers.size(), 2u);
}

TEST(Goldilocks, LocalityAblationKeepsPackingChangesAdjacency) {
  Fixture f;
  GoldilocksOptions with;
  GoldilocksOptions without;
  without.locality_order = false;
  GoldilocksScheduler a(with), b(without);
  const auto pa = a.Place(f.input);
  const auto pb = b.Place(f.input);
  EXPECT_NEAR(pa.NumActiveServers(), pb.NumActiveServers(), 2);
}

TEST(Goldilocks, IncrementalModeStillPlacesEverything) {
  Fixture f;
  GoldilocksOptions opts;
  opts.incremental_repartition = true;
  GoldilocksScheduler sched(opts);
  // First call: no cache → full partition. Second call with shifted
  // demands: incremental repair path.
  const auto p1 = sched.Place(f.input);
  auto d2 = f.scenario->DemandsAt(45);
  SchedulerInput in2 = f.input;
  in2.demands = d2;
  const auto p2 = sched.Place(in2);
  for (std::size_t i = 0; i < p2.server_of.size(); ++i) {
    EXPECT_TRUE(p2.server_of[i].valid()) << i;
  }
  EXPECT_GT(p1.num_placed(), 0);
}

TEST(Goldilocks, IncrementalModeMigratesLessThanFresh) {
  Fixture f;
  auto total_migrations = [&](bool incremental) {
    GoldilocksOptions opts;
    opts.incremental_repartition = incremental;
    opts.repartition_interval = 1;  // re-plan every epoch
    GoldilocksScheduler sched(opts);
    Placement prev;
    int total = 0;
    for (int e = 20; e <= 40; e += 5) {
      auto d = f.scenario->DemandsAt(e);
      SchedulerInput in = f.input;
      in.demands = d;
      in.previous = prev.server_of.empty() ? nullptr : &prev;
      const auto p = sched.Place(in);
      if (!prev.server_of.empty()) total += p.MigrationsFrom(prev);
      prev = p;
    }
    return total;
  };
  const int fresh = total_migrations(false);
  const int incremental = total_migrations(true);
  EXPECT_LT(incremental, fresh);
}

TEST(Goldilocks, HandlesAzureChurn) {
  const auto scenario = MakeAzureMixScenario();
  Topology topo = Topology::LeafSpine(8, 2, 2, kCap, 1000.0);
  GoldilocksScheduler sched;
  for (int e = 0; e < 10; ++e) {
    const auto demands = scenario->DemandsAt(e);
    const auto active = scenario->ActiveAt(e);
    SchedulerInput input;
    input.workload = &scenario->workload();
    input.demands = demands;
    input.active = active;
    input.topology = &topo;
    const auto p = sched.Place(input);
    for (std::size_t i = 0; i < p.server_of.size(); ++i) {
      EXPECT_EQ(p.server_of[i].valid(), active[i] != 0) << "epoch " << e;
    }
  }
}

}  // namespace
}  // namespace gl
