// Tests for gl_analyze (tools/analyze/): the lexer, the fixture corpus, the
// cross-file GL010 reachability, the baseline machinery, SARIF shape, and
// the incremental cache's invalidation behavior.
//
// The fixture corpus itself is exercised two ways: RunSelfTest (the same
// code path `gl_analyze --self-test` uses) and per-fixture assertions that
// positives fire exactly their rule and negatives stay clean.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analysis.h"
#include "analyze/facts.h"
#include "analyze/lexer.h"
#include "gtest/gtest.h"

namespace gl::analyze {
namespace {

namespace fs = std::filesystem;

#ifndef GL_ANALYZE_FIXTURES_DIR
#error "tests/CMakeLists.txt must define GL_ANALYZE_FIXTURES_DIR"
#endif

std::string FixturesDir() { return GL_ANALYZE_FIXTURES_DIR; }

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << content;
}

std::set<std::string> FiredRules(const std::string& path) {
  const std::string source = ReadFileOrDie(path);
  const std::vector<FileFacts> facts = {ExtractFacts(path, source)};
  std::set<std::string> fired;
  for (const Finding& f : Analyze(facts, AnalysisOptions{})) {
    fired.insert(f.rule_id);
  }
  return fired;
}

// A scratch directory unique to this test binary run.
class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("gl_analyze_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  fs::path dir_;
};

// --- lexer -----------------------------------------------------------------

TEST(Lexer, RawStringsAndCommentsAreSingleTokens) {
  const std::vector<Token> toks = Lex(
      "auto s = R\"x(push_back( // not a comment)x\";\n"
      "// a real comment with new in it\n"
      "int n = 1'000'000;\n");
  int strings = 0;
  int comments = 0;
  int numbers = 0;
  for (const Token& t : toks) {
    strings += t.kind == TokKind::kString ? 1 : 0;
    comments += t.kind == TokKind::kComment ? 1 : 0;
    numbers += t.kind == TokKind::kNumber ? 1 : 0;
  }
  EXPECT_EQ(strings, 1);
  EXPECT_EQ(comments, 1);
  EXPECT_EQ(numbers, 1);  // digit separators stay inside one number token
  // Nothing inside the raw string or the comment leaks out as an ident.
  for (const Token& t : toks) {
    EXPECT_NE(t.text, "push_back");
    if (t.kind == TokKind::kIdent) {
      EXPECT_NE(t.text, "new");
    }
  }
}

TEST(Lexer, PreprocessorContinuationsFoldIntoOneToken) {
  const std::vector<Token> toks = Lex(
      "#define GROW(v) \\\n  (v).push_back(0)\nint x;\n");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks[0].kind, TokKind::kPreprocessor);
  EXPECT_NE(toks[0].text.find("push_back"), std::string::npos);
  // The macro body never reads as structural tokens.
  const FileFacts facts = ExtractFacts("m.cc", "#define GROW(v) \\\n  (v).push_back(0)\nint x;\n");
  EXPECT_TRUE(facts.allocs.empty());
}

TEST(Lexer, TracksLinesAcrossMultilineTokens) {
  const std::vector<Token> toks = Lex("/* a\n b */\nint x;\n");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::kComment);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].text, "int");
  EXPECT_EQ(toks[1].line, 3);
}

// --- fixture corpus --------------------------------------------------------

TEST(Fixtures, SelfTestPasses) {
  std::ostringstream out;
  const int failures = RunSelfTest(FixturesDir(), AnalysisOptions{}, out);
  EXPECT_EQ(failures, 0) << out.str();
}

TEST(Fixtures, PositivesFireExactlyTheirRules) {
  const std::vector<std::pair<std::string, std::set<std::string>>> cases = {
      {"gl010_pos.cc", {"GL010"}},
      {"gl011_pos.cc", {"GL011"}},
      {"gl012_pos.cc", {"GL012"}},
      {"gl013_pos.cc", {"GL013"}},
      {"gl014_pos.cc", {"GL014"}},
      {"gl015_pos.cc", {"GL015"}},
      {"gl016_pos.cc", {"GL016"}},
      {"gl017_pos.cc", {"GL017"}},
      {"gl018_pos.cc", {"GL018"}},
      // gl019's hot loop allocates, so the flow-insensitive GL010 fires on
      // the same site the loop-carried rule refines.
      {"gl019_pos.cc", {"GL010", "GL019"}},
      {"gl020_pos.cc", {"GL020"}},
      {"gl021_pos.cc", {"GL021"}},
  };
  for (const auto& [file, rules] : cases) {
    const std::set<std::string> fired =
        FiredRules(FixturesDir() + "/" + file);
    EXPECT_EQ(fired, rules) << file;
  }
}

TEST(Fixtures, NegativesAreClean) {
  for (const char* file :
       {"gl010_neg.cc", "gl011_neg.cc", "gl012_neg.cc", "gl013_neg.cc",
        "gl014_neg.cc", "gl015_neg.cc", "gl016_neg.cc", "gl017_neg.cc",
        "gl018_neg.cc", "gl019_neg.cc", "gl020_neg.cc", "gl021_neg.cc"}) {
    EXPECT_TRUE(FiredRules(FixturesDir() + std::string("/") + file).empty())
        << file;
  }
}

// --- cross-file reachability (GL010) ---------------------------------------

TEST(HotPath, AllocationReachableAcrossFilesIsFound) {
  // Root in one file, allocation two hops away in another.
  const std::string a =
      "namespace x {\n"
      "void Helper(int n);\n"
      "int Bisect(int n) { Helper(n); return n; }\n"
      "}  // namespace x\n";
  const std::string b =
      "#include <vector>\n"
      "namespace x {\n"
      "void Leaf(int n) { std::vector<int> v(n, 0); (void)v; }\n"
      "void Helper(int n) { Leaf(n); }\n"
      "}  // namespace x\n";
  const std::vector<FileFacts> facts = {ExtractFacts("a.cc", a),
                                        ExtractFacts("b.cc", b)};
  const std::vector<Finding> findings = Analyze(facts, AnalysisOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "GL010");
  EXPECT_EQ(findings[0].path, "b.cc");
  // The message carries the whole chain from the root.
  EXPECT_NE(findings[0].message.find("Bisect -> Helper -> Leaf"),
            std::string::npos)
      << findings[0].message;
}

TEST(HotPath, FileLocalDefinitionShadowsForeignNameCollision) {
  // a.cc's root calls its own file-local Step(); c.cc has an unrelated
  // allocating Step(). Scoped resolution must not fuse the two graphs.
  const std::string a =
      "namespace x {\n"
      "void Step(int) {}\n"
      "int Bisect(int n) { Step(n); return n; }\n"
      "}  // namespace x\n";
  const std::string c =
      "#include <vector>\n"
      "namespace y {\n"
      "void Step(int n) { std::vector<int> v(n, 1); (void)v; }\n"
      "}  // namespace y\n";
  const std::vector<FileFacts> facts = {ExtractFacts("a.cc", a),
                                        ExtractFacts("c.cc", c)};
  EXPECT_TRUE(Analyze(facts, AnalysisOptions{}).empty());
}

TEST(HotPath, CustomRootSpecs) {
  const std::string src =
      "#include <vector>\n"
      "struct Engine {\n"
      "  void Run(int n) { std::vector<int> v(n, 0); (void)v; }\n"
      "};\n";
  AnalysisOptions opts;
  opts.hot_roots = {"Engine::"};
  const std::vector<FileFacts> facts = {ExtractFacts("e.cc", src)};
  const std::vector<Finding> findings = Analyze(facts, opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "GL010");
}

// --- baseline --------------------------------------------------------------

TEST(Baseline, SuppressesByFingerprintAndReportsStale) {
  const std::string fixture = FixturesDir() + "/gl010_pos.cc";
  const std::vector<FileFacts> facts = {
      ExtractFacts(fixture, ReadFileOrDie(fixture))};
  const std::vector<Finding> all = Analyze(facts, AnalysisOptions{});
  ASSERT_GT(all.size(), 1u);

  // Baseline the first finding by its (rule, line text) fingerprint with a
  // bare-filename path — the finding carries the full fixture path, so this
  // exercises the '/'-boundary suffix match and the absence of line numbers
  // from the key. The second entry matches nothing and must come back stale.
  TempDir tmp;
  const std::string bl = tmp.Path("baseline.txt");
  WriteFileOrDie(bl, "# justification\n" + all[0].rule_id + "|gl010_pos.cc|" +
                         all[0].line_text +
                         "\nGL010|some/other/file.cc|int* p = new int;\n");
  Baseline baseline;
  std::string err;
  ASSERT_TRUE(LoadBaseline(bl, &baseline, &err)) << err;
  ASSERT_EQ(baseline.entries.size(), 2u);

  const BaselineResult r = ApplyBaseline(all, baseline);
  EXPECT_EQ(r.suppressed, 1);
  EXPECT_EQ(r.fresh.size(), all.size() - 1);
  ASSERT_EQ(r.stale.size(), 1u);
  EXPECT_EQ(r.stale[0].path, "some/other/file.cc");
}

TEST(Baseline, MalformedLinesAreRejected) {
  TempDir tmp;
  const std::string bl = tmp.Path("bad.txt");
  WriteFileOrDie(bl, "GL010 no pipes here\n");
  Baseline baseline;
  std::string err;
  EXPECT_FALSE(LoadBaseline(bl, &baseline, &err));
  EXPECT_NE(err.find("malformed"), std::string::npos);
}

// --- SARIF -----------------------------------------------------------------

TEST(Sarif, CarriesRuleIdsAndLocations) {
  const std::string fixture = FixturesDir() + "/gl011_pos.cc";
  const std::vector<FileFacts> facts = {
      ExtractFacts(fixture, ReadFileOrDie(fixture))};
  const std::string sarif = ToSarif(Analyze(facts, AnalysisOptions{}));
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"GL011\""), std::string::npos);
  EXPECT_NE(sarif.find("gl011_pos.cc"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":"), std::string::npos);
  // All four rules are declared in the driver even when fewer fire.
  for (const RuleInfo& r : Rules()) {
    EXPECT_NE(sarif.find(r.id), std::string::npos);
  }
}

// --- facts serialization round-trip ----------------------------------------

TEST(Facts, SerializationRoundTrips) {
  const std::string fixture = FixturesDir() + "/gl010_pos.cc";
  const FileFacts facts = ExtractFacts(fixture, ReadFileOrDie(fixture));
  std::string blob;
  SerializeFacts(facts, &blob);
  FileFacts back;
  ASSERT_TRUE(DeserializeFacts(blob, &back));
  std::string blob2;
  SerializeFacts(back, &blob2);
  EXPECT_EQ(blob, blob2);
  EXPECT_EQ(back.functions.size(), facts.functions.size());
  EXPECT_EQ(back.allocs.size(), facts.allocs.size());
  EXPECT_EQ(back.calls.size(), facts.calls.size());
}

TEST(Facts, DeserializeRejectsGarbage) {
  FileFacts f;
  EXPECT_FALSE(DeserializeFacts("Z\tnot\ta\trecord\n", &f));
  EXPECT_FALSE(DeserializeFacts("F\tonly_two\tcols\n", &f));
}

// --- incremental cache -----------------------------------------------------

TEST(Cache, WarmRunReusesFactsAndEditInvalidates) {
  TempDir tmp;
  const std::string src_path = tmp.Path("unit.cc");
  const std::string cache = tmp.Path("cache");
  WriteFileOrDie(src_path,
                 "#include <vector>\n"
                 "int Bisect(int n) { std::vector<int> v(n, 0); return n; }\n");

  CacheStats cold;
  std::string err;
  std::vector<FileFacts> facts =
      LoadFacts({src_path}, cache, &cold, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(cold.files_lexed, 1);
  EXPECT_EQ(cold.files_cached, 0);
  EXPECT_EQ(Analyze(facts, AnalysisOptions{}).size(), 1u);

  CacheStats warm;
  facts = LoadFacts({src_path}, cache, &warm, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(warm.files_lexed, 0);
  EXPECT_EQ(warm.files_cached, 1);
  EXPECT_EQ(Analyze(facts, AnalysisOptions{}).size(), 1u);

  // Touch without change: rewriting identical bytes bumps the mtime, but
  // the content hash rescues the cache entry.
  WriteFileOrDie(src_path,
                 "#include <vector>\n"
                 "int Bisect(int n) { std::vector<int> v(n, 0); return n; }\n");
  CacheStats touched;
  facts = LoadFacts({src_path}, cache, &touched, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(touched.files_lexed, 0);
  EXPECT_EQ(touched.files_cached, 1);

  // Content edit: the hash changes, the entry is re-extracted, and the new
  // facts reflect the fix.
  WriteFileOrDie(src_path,
                 "#include <vector>\n"
                 "int Bisect(int n) { std::vector<int> w; (void)w; return n; }\n");
  CacheStats edited;
  facts = LoadFacts({src_path}, cache, &edited, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(edited.files_lexed, 1);
  EXPECT_TRUE(Analyze(facts, AnalysisOptions{}).empty());
}

TEST(Cache, MissingFileIsReportedNotFatal) {
  TempDir tmp;
  CacheStats stats;
  std::string err;
  const std::vector<FileFacts> facts =
      LoadFacts({tmp.Path("nope.cc")}, "", &stats, &err);
  EXPECT_TRUE(facts.empty());
  EXPECT_NE(err.find("nope.cc"), std::string::npos);
}

// --- GL013 trigger evaluation on real-shaped code --------------------------

TEST(StaleSuppression, LoadBearingAllowIsKeptDeadAllowIsFlagged) {
  const std::string src =
      "#include <unordered_map>\n"
      "namespace x {\n"
      "double Total(const std::unordered_map<int, double>& m) {\n"
      "  double t = 0.0;\n"
      "  // gl-lint: allow(unordered-iter)\n"
      "  for (const auto& [k, v] : m) t += v;\n"
      "  // gl-lint: allow(adhoc-rng)\n"
      "  t += 1.0;\n"
      "  return t;\n"
      "}\n"
      "}  // namespace x\n";
  const std::vector<FileFacts> facts = {ExtractFacts("s.cc", src)};
  const std::vector<Finding> findings = Analyze(facts, AnalysisOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "GL013");
  EXPECT_NE(findings[0].message.find("adhoc-rng"), std::string::npos);
}

// --- GL014: units-of-measure dataflow --------------------------------------

std::vector<Finding> AnalyzeSources(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  std::vector<FileFacts> facts;
  facts.reserve(sources.size());
  for (const auto& [path, src] : sources) {
    facts.push_back(ExtractFacts(path, src));
  }
  return Analyze(facts, AnalysisOptions{});
}

TEST(Units, CrossFileCallBindingMixesDimensions) {
  const std::string callee =
      "#define GL_UNITS(d)\n"
      "namespace x {\n"
      "double Headroom(double budget_w GL_UNITS(watts)) {\n"
      "  return 300.0 - budget_w;\n"
      "}\n"
      "}  // namespace x\n";
  const std::string caller =
      "#define GL_UNITS(d)\n"
      "namespace x {\n"
      "double Headroom(double budget_w);\n"
      "double Slack() {\n"
      "  double window GL_UNITS(ms) = 5000.0;\n"
      "  return Headroom(window);\n"
      "}\n"
      "}  // namespace x\n";
  const std::vector<Finding> findings =
      AnalyzeSources({{"callee.cc", callee}, {"caller.cc", caller}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "GL014");
  EXPECT_EQ(findings[0].path, "caller.cc");
  EXPECT_NE(findings[0].message.find("declared watts"), std::string::npos);
}

TEST(Units, ConsistentArithmeticIsClean) {
  const std::string src =
      "#define GL_UNITS(d)\n"
      "namespace x {\n"
      "double Total(double idle_w GL_UNITS(watts)) {\n"
      "  double dynamic_w GL_UNITS(watts) = 40.0;\n"
      "  return idle_w + dynamic_w;\n"
      "}\n"
      "}  // namespace x\n";
  EXPECT_TRUE(AnalyzeSources({{"s.cc", src}}).empty());
}

TEST(Units, MixedDimensionBinopFires) {
  const std::string src =
      "#define GL_UNITS(d)\n"
      "namespace x {\n"
      "double Bad(double idle_w GL_UNITS(watts),\n"
      "           double epoch_ms GL_UNITS(ms)) {\n"
      "  return idle_w + epoch_ms;\n"
      "}\n"
      "}  // namespace x\n";
  const std::vector<Finding> findings = AnalyzeSources({{"s.cc", src}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "GL014");
  EXPECT_NE(findings[0].message.find("mix dimensions"), std::string::npos);
}

TEST(Units, AnyParamAbsorbsAllDimensionsWithoutConflict) {
  // The GL_UNITS(any) helper takes watts in one caller and ms in another;
  // `any` erases the dimension instead of joining to conflict, so neither
  // the bindings nor downstream uses of the return value fire.
  const std::string src =
      "#define GL_UNITS(d)\n"
      "namespace x {\n"
      "double FiniteOrZero(double v GL_UNITS(any)) {\n"
      "  return v < 0.0 ? 0.0 : v;\n"
      "}\n"
      "double CheckW(double idle_w GL_UNITS(watts)) {\n"
      "  return FiniteOrZero(idle_w);\n"
      "}\n"
      "double CheckT(double epoch_ms GL_UNITS(ms)) {\n"
      "  return FiniteOrZero(epoch_ms);\n"
      "}\n"
      "}  // namespace x\n";
  EXPECT_TRUE(AnalyzeSources({{"s.cc", src}}).empty());
}

// --- GL015: lock-order cycles ----------------------------------------------

TEST(LockOrder, InterproceduralInversionIsACycle) {
  // Drain holds mu_ and calls a helper that takes nu_; Refill holds nu_ and
  // calls a helper that takes mu_. Neither function shows both locks
  // directly — the cycle only exists after folding locksets over the call
  // graph.
  const std::string src =
      "namespace x {\n"
      "class Pool {\n"
      " public:\n"
      "  void Drain() {\n"
      "    MutexLock l(&mu_);\n"
      "    TakeNu();\n"
      "  }\n"
      "  void Refill() {\n"
      "    MutexLock l(&nu_);\n"
      "    TakeMu();\n"
      "  }\n"
      " private:\n"
      "  void TakeNu() { MutexLock l(&nu_); }\n"
      "  void TakeMu() { MutexLock l(&mu_); }\n"
      "  Mutex mu_;\n"
      "  Mutex nu_;\n"
      "};\n"
      "}  // namespace x\n";
  const std::vector<Finding> findings = AnalyzeSources({{"s.cc", src}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "GL015");
  EXPECT_NE(findings[0].message.find("Pool::mu_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Pool::nu_"), std::string::npos);
  // Both chains of evidence are part of the message.
  EXPECT_NE(findings[0].message.find(" vs ["), std::string::npos);
}

TEST(LockOrder, ConsistentOrderIsClean) {
  const std::string src =
      "namespace x {\n"
      "class Pool {\n"
      " public:\n"
      "  void Drain() {\n"
      "    MutexLock a(&mu_);\n"
      "    MutexLock b(&nu_);\n"
      "  }\n"
      "  void Refill() {\n"
      "    MutexLock a(&mu_);\n"
      "    MutexLock b(&nu_);\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  Mutex nu_;\n"
      "};\n"
      "}  // namespace x\n";
  EXPECT_TRUE(AnalyzeSources({{"s.cc", src}}).empty());
}

// --- GL016: determinism taint ----------------------------------------------

TEST(Taint, ClockThroughCrossFileHelperReachesHash) {
  const std::string helper =
      "namespace x {\n"
      "unsigned long long TickStamp() {\n"
      "  const unsigned long long t = clock();\n"
      "  return t;\n"
      "}\n"
      "}  // namespace x\n";
  const std::string snapshot =
      "namespace x {\n"
      "unsigned long long TickStamp();\n"
      "void Snapshot(StateHash& h) {\n"
      "  const unsigned long long stamp = TickStamp();\n"
      "  h.MixU64(stamp);\n"
      "}\n"
      "}  // namespace x\n";
  const std::vector<Finding> findings =
      AnalyzeSources({{"helper.cc", helper}, {"snapshot.cc", snapshot}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "GL016");
  EXPECT_EQ(findings[0].path, "snapshot.cc");
  EXPECT_NE(findings[0].message.find("MixU64"), std::string::npos);
}

TEST(Taint, DeterministicDataAtSinkIsClean) {
  const std::string src =
      "#include <vector>\n"
      "namespace x {\n"
      "void Snapshot(StateHash& h, const std::vector<double>& loads) {\n"
      "  const unsigned long long placed = loads.size();\n"
      "  h.MixU64(placed);\n"
      "}\n"
      "}  // namespace x\n";
  EXPECT_TRUE(AnalyzeSources({{"s.cc", src}}).empty());
}

// --- --jobs=N parallel extraction ------------------------------------------

TEST(Jobs, ParallelExtractionIsByteIdentical) {
  TempDir tmp;
  std::vector<std::string> paths;
  for (int i = 0; i < 8; ++i) {
    const std::string idx = std::to_string(i);
    const std::string p = tmp.Path("f" + idx + ".cc");
    std::string src = "#define GL_UNITS(d)\n";
    src += "namespace x { double V" + idx;
    src += "(double w GL_UNITS(watts)) { return w + " + idx + ".0; } }\n";
    WriteFileOrDie(p, src);
    paths.push_back(p);
  }
  const std::string cache1 = tmp.Path("cache1");
  const std::string cache8 = tmp.Path("cache8");
  CacheStats s1, s8;
  std::string err1, err8;
  const std::vector<FileFacts> f1 = LoadFacts(paths, cache1, &s1, &err1, 1);
  const std::vector<FileFacts> f8 = LoadFacts(paths, cache8, &s8, &err8, 8);
  EXPECT_TRUE(err1.empty()) << err1;
  EXPECT_TRUE(err8.empty()) << err8;
  ASSERT_EQ(f1.size(), f8.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    std::string b1, b8;
    SerializeFacts(f1[i], &b1);
    SerializeFacts(f8[i], &b8);
    EXPECT_EQ(b1, b8) << paths[i];
  }
  EXPECT_EQ(ReadFileOrDie(cache1), ReadFileOrDie(cache8));
}

// --- --fix=stale-allows ------------------------------------------------------

TEST(FixStaleAllows, DryRunPrintsDiffApplyRewritesInPlace) {
  TempDir tmp;
  const std::string path = tmp.Path("mixed.cc");
  const std::string original =
      "#include <unordered_map>\n"
      "namespace x {\n"
      "double Total(const std::unordered_map<int, double>& m) {\n"
      "  double t = 0.0;\n"
      "  // gl-lint: allow(unordered-iter)\n"
      "  for (const auto& [k, v] : m) t += v;\n"
      "  // gl-lint: allow(adhoc-rng)\n"
      "  t += 1.0;\n"
      "  return t;\n"
      "}\n"
      "}  // namespace x\n";
  WriteFileOrDie(path, original);

  // Dry run: one stale allow line reported, file untouched.
  std::vector<FileFacts> facts = {ExtractFacts(path, ReadFileOrDie(path))};
  std::ostringstream diff;
  std::string err;
  EXPECT_EQ(FixStaleAllows(facts, /*apply=*/false, diff, &err), 1) << err;
  EXPECT_NE(diff.str().find("allow(adhoc-rng)"), std::string::npos);
  EXPECT_EQ(ReadFileOrDie(path), original);

  // Apply: the dead allow line is deleted, the load-bearing one survives,
  // and the rewritten file analyzes clean.
  std::ostringstream diff2;
  EXPECT_EQ(FixStaleAllows(facts, /*apply=*/true, diff2, &err), 1) << err;
  const std::string fixed = ReadFileOrDie(path);
  EXPECT_EQ(fixed.find("adhoc-rng"), std::string::npos);
  EXPECT_NE(fixed.find("allow(unordered-iter)"), std::string::npos);
  facts = {ExtractFacts(path, fixed)};
  EXPECT_TRUE(Analyze(facts, AnalysisOptions{}).empty());
}

// --- facts round-trip of the dataflow records --------------------------------

TEST(Facts, DataflowRecordsRoundTrip) {
  for (const char* name :
       {"/gl014_pos.cc", "/gl015_pos.cc", "/gl016_pos.cc"}) {
    const std::string fixture = FixturesDir() + name;
    const FileFacts facts = ExtractFacts(fixture, ReadFileOrDie(fixture));
    std::string blob;
    SerializeFacts(facts, &blob);
    FileFacts back;
    ASSERT_TRUE(DeserializeFacts(blob, &back)) << name;
    std::string blob2;
    SerializeFacts(back, &blob2);
    EXPECT_EQ(blob, blob2) << name;
    EXPECT_EQ(back.unit_decls.size(), facts.unit_decls.size()) << name;
    EXPECT_EQ(back.binops.size(), facts.binops.size()) << name;
    EXPECT_EQ(back.call_args.size(), facts.call_args.size()) << name;
    EXPECT_EQ(back.lock_acquires.size(), facts.lock_acquires.size()) << name;
  }
  // The new record kinds are actually present in the corpus.
  const FileFacts units = ExtractFacts(
      FixturesDir() + "/gl014_pos.cc",
      ReadFileOrDie(FixturesDir() + "/gl014_pos.cc"));
  EXPECT_FALSE(units.unit_decls.empty());
  EXPECT_FALSE(units.binops.empty());
  const FileFacts locks = ExtractFacts(
      FixturesDir() + "/gl015_pos.cc",
      ReadFileOrDie(FixturesDir() + "/gl015_pos.cc"));
  EXPECT_FALSE(locks.lock_acquires.empty());
}

// --- facts round-trip of the CFG records -------------------------------------

TEST(Facts, CfgRecordsRoundTrip) {
  for (const char* name : {"/gl017_pos.cc", "/gl018_pos.cc", "/gl019_pos.cc",
                           "/gl020_pos.cc", "/gl021_pos.cc"}) {
    const std::string fixture = FixturesDir() + name;
    const FileFacts facts = ExtractFacts(fixture, ReadFileOrDie(fixture));
    EXPECT_FALSE(facts.cfgs.empty()) << name;
    std::string blob;
    SerializeFacts(facts, &blob);
    FileFacts back;
    ASSERT_TRUE(DeserializeFacts(blob, &back)) << name;
    std::string blob2;
    SerializeFacts(back, &blob2);
    EXPECT_EQ(blob, blob2) << name;
    ASSERT_EQ(back.cfgs.size(), facts.cfgs.size()) << name;
    for (std::size_t i = 0; i < facts.cfgs.size(); ++i) {
      ASSERT_EQ(back.cfgs[i].blocks.size(), facts.cfgs[i].blocks.size());
      for (std::size_t b = 0; b < facts.cfgs[i].blocks.size(); ++b) {
        EXPECT_EQ(back.cfgs[i].blocks[b].succ, facts.cfgs[i].blocks[b].succ);
        EXPECT_EQ(back.cfgs[i].blocks[b].events.size(),
                  facts.cfgs[i].blocks[b].events.size());
      }
    }
  }
}

// --- path-sensitive rules on inline sources ----------------------------------

TEST(Cfg, LockLeakOnOnePathOnly) {
  const std::string src =
      "struct Mutex { void Lock(); void Unlock(); };\n"
      "class C {\n"
      " public:\n"
      "  bool Step(bool ok) {\n"
      "    mu_.Lock();\n"
      "    if (!ok) return false;\n"  // leaks mu_
      "    mu_.Unlock();\n"
      "    return true;\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "};\n";
  const std::vector<Finding> findings = AnalyzeSources({{"s.cc", src}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "GL017");
  EXPECT_NE(findings[0].message.find("mu_"), std::string::npos);
}

TEST(Cfg, UnlockFirstLockIsCallerHeldContract) {
  // The thread_pool drop-and-retake shape: the function's first manual
  // event is an Unlock, so it entered holding the lock and exits the same
  // way by contract — even when the GL_REQUIRES lives only on a header
  // declaration the extractor never sees.
  const std::string src =
      "struct Mutex { void Lock(); void Unlock(); };\n"
      "void Backoff();\n"
      "class C {\n"
      " public:\n"
      "  void Wait() {\n"
      "    mu_.Unlock();\n"
      "    Backoff();\n"
      "    mu_.Lock();\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "};\n";
  EXPECT_TRUE(AnalyzeSources({{"s.cc", src}}).empty());
}

TEST(Cfg, UseAfterClearOnSomePathFires) {
  const std::string src =
      "#include <vector>\n"
      "struct PartitionScratch { std::vector<int> gains; void Clear(); };\n"
      "int Peek(PartitionScratch& s, bool reset) {\n"
      "  int& g = s.gains[0];\n"
      "  if (reset) s.Clear();\n"
      "  return g;\n"  // dangles when reset
      "}\n";
  const std::vector<Finding> findings = AnalyzeSources({{"s.cc", src}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "GL018");
}

TEST(Cfg, RebindAfterClearIsClean) {
  const std::string src =
      "#include <vector>\n"
      "struct PartitionScratch { std::vector<int> gains; void Clear(); };\n"
      "int Peek(PartitionScratch& s) {\n"
      "  int& g = s.gains[0];\n"
      "  (void)g;\n"
      "  s.Clear();\n"
      "  int& h = s.gains[0];\n"  // fresh reference after the Clear
      "  return h;\n"
      "}\n";
  EXPECT_TRUE(AnalyzeSources({{"s.cc", src}}).empty());
}

TEST(Cfg, LoopAllocInsideHotLoopFires) {
  const std::string src =
      "#include <vector>\n"
      "int Bisect(int n) {\n"
      "  int acc = 0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    std::vector<int> tmp(8, 0);\n"  // allocates every iteration
      "    acc += tmp[0] + i;\n"
      "  }\n"
      "  return acc;\n"
      "}\n";
  std::set<std::string> fired;
  for (const Finding& f : AnalyzeSources({{"s.cc", src}})) {
    fired.insert(f.rule_id);
  }
  EXPECT_TRUE(fired.count("GL019")) << "loop-carried allocation not flagged";
}

TEST(Cfg, NarrowingNeedsADominatingCheck) {
  const std::string unchecked =
      "#include <cstdint>\n"
      "using VertexIndex = std::int32_t;\n"
      "VertexIndex Id(std::size_t p) {\n"
      "  return static_cast<VertexIndex>(p);\n"
      "}\n";
  const std::vector<Finding> findings =
      AnalyzeSources({{"s.cc", unchecked}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "GL020");

  const std::string checked =
      "#include <cstdint>\n"
      "using VertexIndex = std::int32_t;\n"
      "VertexIndex Id(std::size_t p, std::size_t hi) {\n"
      "  GOLDILOCKS_CHECK(p < hi);\n"
      "  return static_cast<VertexIndex>(p);\n"
      "}\n";
  EXPECT_TRUE(AnalyzeSources({{"s.cc", checked}}).empty());
}

TEST(Cfg, CheckOnOneBranchDoesNotDominateTheOther) {
  // The check sits in the taken branch; the fall-through path still narrows
  // unchecked, and the must-analysis join has to catch that.
  const std::string src =
      "#include <cstdint>\n"
      "using VertexIndex = std::int32_t;\n"
      "VertexIndex Id(std::size_t p, bool fast) {\n"
      "  if (fast) {\n"
      "    GOLDILOCKS_CHECK(p < 100);\n"
      "  }\n"
      "  return static_cast<VertexIndex>(p);\n"
      "}\n";
  const std::vector<Finding> findings = AnalyzeSources({{"s.cc", src}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "GL020");
}

TEST(Cfg, DivergentGuardOverHashWriteFires) {
  const std::string src =
      "#include <cstdint>\n"
      "struct Pool { template <typename F> void ParallelFor(int, int, F); };\n"
      "std::uint64_t MixU64(std::uint64_t h, std::uint64_t v);\n"
      "std::int64_t ElapsedMs();\n"
      "void Run(Pool& pool, std::uint64_t& hash, int n) {\n"
      "  pool.ParallelFor(0, n, [&](int i) {\n"
      "    if (ElapsedMs() > 5) {\n"
      "      hash = MixU64(hash, i);\n"
      "    }\n"
      "  });\n"
      "}\n";
  const std::vector<Finding> findings = AnalyzeSources({{"s.cc", src}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "GL021");

  // The same write with a deterministic guard is fine.
  const std::string det =
      "#include <cstdint>\n"
      "struct Pool { template <typename F> void ParallelFor(int, int, F); };\n"
      "std::uint64_t MixU64(std::uint64_t h, std::uint64_t v);\n"
      "void Run(Pool& pool, std::uint64_t& hash, int n) {\n"
      "  pool.ParallelFor(0, n, [&](int i) {\n"
      "    if (i % 2 == 0) {\n"
      "      hash = MixU64(hash, i);\n"
      "    }\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(AnalyzeSources({{"s.cc", det}}).empty());
}

// --- --rule filter ------------------------------------------------------------

TEST(RuleFilter, ParsesListsAndRejectsUnknownIds) {
  std::set<std::string> ids;
  std::string err;
  ASSERT_TRUE(ParseRuleFilter("GL020", &ids, &err)) << err;
  EXPECT_EQ(ids, (std::set<std::string>{"GL020"}));

  ids.clear();
  ASSERT_TRUE(ParseRuleFilter("GL017,GL021", &ids, &err)) << err;
  EXPECT_EQ(ids, (std::set<std::string>{"GL017", "GL021"}));

  ids.clear();
  EXPECT_FALSE(ParseRuleFilter("GL999", &ids, &err));
  EXPECT_NE(err.find("GL999"), std::string::npos);
  EXPECT_FALSE(ParseRuleFilter("", &ids, &err));
}

// --- cache invalidation on config change --------------------------------------

TEST(Cache, ConfigHashChangeInvalidatesWholeCache) {
  TempDir tmp;
  const std::string src_path = tmp.Path("unit.cc");
  const std::string cache = tmp.Path("cache");
  WriteFileOrDie(src_path,
                 "#include <vector>\n"
                 "int Bisect(int n) { std::vector<int> v(n, 0); return n; }\n");

  CacheStats cold;
  std::string err;
  (void)LoadFacts({src_path}, cache, &cold, &err, 1, /*config_hash=*/7);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(cold.files_lexed, 1);

  // Same config: warm.
  CacheStats warm;
  (void)LoadFacts({src_path}, cache, &warm, &err, 1, /*config_hash=*/7);
  EXPECT_EQ(warm.files_cached, 1);
  EXPECT_EQ(warm.files_lexed, 0);

  // Different config (new baseline bytes, rule filter, flags...): the
  // whole cache is stale even though no source changed.
  CacheStats changed;
  (void)LoadFacts({src_path}, cache, &changed, &err, 1, /*config_hash=*/8);
  EXPECT_EQ(changed.files_cached, 0);
  EXPECT_EQ(changed.files_lexed, 1);

  // And the new config re-warms on the next run.
  CacheStats rewarm;
  (void)LoadFacts({src_path}, cache, &rewarm, &err, 1, /*config_hash=*/8);
  EXPECT_EQ(rewarm.files_cached, 1);
}

}  // namespace
}  // namespace gl::analyze
