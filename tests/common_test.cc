#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/ids.h"
#include "common/resource.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace gl {
namespace {

// --- ids ---------------------------------------------------------------------

TEST(Ids, DefaultIsInvalid) {
  ContainerId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, ContainerId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  ServerId s{42};
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.value(), 42);
}

TEST(Ids, Ordering) {
  EXPECT_LT(ServerId{1}, ServerId{2});
  EXPECT_EQ(ServerId{3}, ServerId{3});
  EXPECT_NE(ServerId{3}, ServerId{4});
}

TEST(Ids, Hashable) {
  std::hash<ServerId> h;
  EXPECT_EQ(h(ServerId{7}), h(ServerId{7}));
}

// --- resource ------------------------------------------------------------------

TEST(Resource, Arithmetic) {
  Resource a{.cpu = 10, .mem_gb = 2, .net_mbps = 100};
  Resource b{.cpu = 5, .mem_gb = 1, .net_mbps = 50};
  const Resource sum = a + b;
  EXPECT_DOUBLE_EQ(sum.cpu, 15);
  EXPECT_DOUBLE_EQ(sum.mem_gb, 3);
  EXPECT_DOUBLE_EQ(sum.net_mbps, 150);
  const Resource diff = sum - b;
  EXPECT_DOUBLE_EQ(diff.cpu, a.cpu);
  const Resource scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.cpu, 20);
}

TEST(Resource, FitsIn) {
  Resource demand{.cpu = 50, .mem_gb = 4, .net_mbps = 100};
  Resource cap{.cpu = 100, .mem_gb = 8, .net_mbps = 1000};
  EXPECT_TRUE(demand.FitsIn(cap));
  demand.mem_gb = 9.0;
  EXPECT_FALSE(demand.FitsIn(cap));
}

TEST(Resource, FitsInToleratesFloatNoise) {
  Resource demand{.cpu = 100.0 + 1e-9, .mem_gb = 0, .net_mbps = 0};
  Resource cap{.cpu = 100, .mem_gb = 8, .net_mbps = 100};
  EXPECT_TRUE(demand.FitsIn(cap));
}

TEST(Resource, WithinCapExactEpsilonBoundary) {
  // The sanctioned threshold is cap*(1+eps) + eps, computed here exactly
  // the way WithinCap computes it: at the threshold a value fits, one ulp
  // above it does not.
  const double cap = 1.0;
  const double limit = cap * (1.0 + kResourceEps) + kResourceEps;
  EXPECT_TRUE(WithinCap(limit, cap));
  EXPECT_TRUE(WithinCap(std::nextafter(limit, 0.0), cap));
  EXPECT_FALSE(WithinCap(std::nextafter(limit, 2.0), cap));
}

TEST(Resource, WithinCapZeroCapacity) {
  // With cap = 0 only the absolute slack remains: kResourceEps of demand
  // still "fits", anything above it does not.
  EXPECT_TRUE(WithinCap(0.0, 0.0));
  EXPECT_TRUE(WithinCap(kResourceEps, 0.0));
  EXPECT_FALSE(WithinCap(std::nextafter(kResourceEps, 1.0), 0.0));
  EXPECT_FALSE(WithinCap(2.0 * kResourceEps, 0.0));
}

TEST(Resource, WithinCapNegativeCapacity) {
  // A negative capacity shrinks the relative slack instead of growing it
  // (cap*(1+eps) moves away from zero), so the boundary still sits exactly
  // where the formula puts it — values below fit, values above do not.
  const double cap = -1.0;
  const double limit = cap * (1.0 + kResourceEps) + kResourceEps;
  EXPECT_TRUE(WithinCap(limit, cap));
  EXPECT_FALSE(WithinCap(std::nextafter(limit, 0.0), cap));
  EXPECT_TRUE(WithinCap(-1.5, cap));   // deeper deficit is "within"
  EXPECT_FALSE(WithinCap(-0.5, cap));  // less deficit is not
}

TEST(Resource, ApproxEqEpsilonBoundary) {
  // diff <= mag*eps + eps with mag = max(|a|, |b|). Near zero the absolute
  // term alone governs; at large magnitudes the relative term dominates.
  EXPECT_TRUE(ApproxEq(0.0, kResourceEps));
  EXPECT_FALSE(ApproxEq(0.0, 2.0 * kResourceEps));
  EXPECT_TRUE(ApproxEq(1.0, std::nextafter(1.0, 2.0)));
  const double big = 1e9;
  EXPECT_TRUE(ApproxEq(big, big * (1.0 + kResourceEps)));
  EXPECT_FALSE(ApproxEq(big, big * (1.0 + 3.0 * kResourceEps)));
  // Symmetric in its arguments, and sign-mirrored.
  EXPECT_TRUE(ApproxEq(kResourceEps, 0.0));
  EXPECT_FALSE(ApproxEq(2.0 * kResourceEps, 0.0));
  EXPECT_TRUE(ApproxEq(-big, -big * (1.0 + kResourceEps)));
  EXPECT_FALSE(ApproxEq(-big, -big * (1.0 + 3.0 * kResourceEps)));
  // Values straddling zero inside the absolute slack compare equal.
  EXPECT_TRUE(ApproxEq(-kResourceEps / 2.0, kResourceEps / 2.0));
}

TEST(Resource, DominantShare) {
  Resource demand{.cpu = 50, .mem_gb = 6, .net_mbps = 100};
  Resource cap{.cpu = 100, .mem_gb = 8, .net_mbps = 1000};
  EXPECT_DOUBLE_EQ(demand.DominantShare(cap), 0.75);  // memory dominates
}

TEST(Resource, DominantShareZeroCapacityDemanded) {
  Resource demand{.cpu = 1, .mem_gb = 0, .net_mbps = 0};
  Resource cap{.cpu = 0, .mem_gb = 8, .net_mbps = 100};
  EXPECT_GT(demand.DominantShare(cap), 1.0);
}

TEST(Resource, NormalizedL1) {
  Resource demand{.cpu = 50, .mem_gb = 4, .net_mbps = 500};
  Resource ref{.cpu = 100, .mem_gb = 8, .net_mbps = 1000};
  EXPECT_DOUBLE_EQ(demand.NormalizedL1(ref), 1.5);
}

TEST(Resource, IsZero) {
  EXPECT_TRUE(Resource{}.IsZero());
  EXPECT_FALSE((Resource{.cpu = 1, .mem_gb = 0, .net_mbps = 0}).IsZero());
}

TEST(Resource, MaxComponentwise) {
  Resource a{.cpu = 10, .mem_gb = 8, .net_mbps = 1};
  Resource b{.cpu = 5, .mem_gb = 9, .net_mbps = 2};
  const Resource m = Max(a, b);
  EXPECT_DOUBLE_EQ(m.cpu, 10);
  EXPECT_DOUBLE_EQ(m.mem_gb, 9);
  EXPECT_DOUBLE_EQ(m.net_mbps, 2);
}

// --- rng ------------------------------------------------------------------------

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.Uniform(2.0, 4.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.02);
  EXPECT_GE(s.min(), 2.0);
  EXPECT_LT(s.max(), 4.0);
}

TEST(Rng, NextBelowRange) {
  Rng rng(13);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++seen[static_cast<std::size_t>(rng.NextBelow(10))];
  }
  for (const int c : seen) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.Add(rng.Gaussian(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.Add(rng.Exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
}

TEST(Rng, LogNormalPositive) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
}

TEST(Rng, ChanceProbability) {
  Rng rng(37);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkIndependence) {
  Rng parent(41);
  Rng child = parent.Fork();
  // The fork and the parent should not produce identical streams.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, KeyedForkDoesNotAdvanceParent) {
  Rng forked(43), untouched(43);
  const auto before = forked.StateHash();
  (void)forked.Fork(0);
  (void)forked.Fork(17);
  EXPECT_EQ(forked.StateHash(), before);
  // The forked parent's future stream is byte-for-byte the untouched one's.
  for (int i = 0; i < 64; ++i) EXPECT_EQ(forked.NextU64(), untouched.NextU64());
}

TEST(Rng, KeyedForkIsReplayStable) {
  Rng parent(47);
  Rng a = parent.Fork(5);
  Rng b = parent.Fork(5);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, KeyedForkStreamsAreIndependent) {
  Rng parent(53);
  // Pairwise: neighbouring ids, id 0 vs parent, and a far-apart pair.
  const std::uint64_t ids[] = {0, 1, 2, 1ULL << 40};
  std::vector<std::vector<std::uint64_t>> streams;
  for (const auto id : ids) {
    Rng s = parent.Fork(id);
    std::vector<std::uint64_t> draws;
    for (int i = 0; i < 64; ++i) draws.push_back(s.NextU64());
    streams.push_back(std::move(draws));
  }
  std::vector<std::uint64_t> parent_draws;
  for (int i = 0; i < 64; ++i) parent_draws.push_back(parent.NextU64());
  streams.push_back(std::move(parent_draws));
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      int equal = 0;
      for (int k = 0; k < 64; ++k) {
        if (streams[i][k] == streams[j][k]) ++equal;
      }
      EXPECT_LT(equal, 2) << "streams " << i << " and " << j;
    }
  }
}

// --- stats ---------------------------------------------------------------------

TEST(RunningStats, Basics) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Gaussian();
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceIsZero) {
  std::vector<double> xs{1, 1, 1};
  std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, ys), 0.0);
}

TEST(HistogramTest, BinsAndShares) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.count(b), 1u);
    EXPECT_DOUBLE_EQ(h.share(b), 0.1);
  }
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 4.0);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(9.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(EmpiricalCdfTest, MonotoneAndComplete) {
  std::vector<double> xs{3, 1, 2, 2};
  const auto cdf = EmpiricalCdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.front().first, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
}

// --- table ----------------------------------------------------------------------

TEST(TableTest, RendersAligned) {
  Table t({"name", "value"});
  t.AddRow({"alpha", Table::Num(1.5)});
  t.AddRow({"b", Table::Int(42)});
  const std::string out = t.Render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Int(7), "7");
  EXPECT_EQ(Table::Pct(0.25, 1), "25.0%");
}

}  // namespace
}  // namespace gl
