#include <gtest/gtest.h>

#include "graph/graph.h"

namespace gl {
namespace {

Graph TriangleWithTail() {
  // 0-1-2 triangle (weights 1,2,3) with a tail 2-3 (weight 0.5).
  Graph g;
  for (int i = 0; i < 4; ++i) {
    g.AddVertex(Resource{.cpu = 10.0 * (i + 1), .mem_gb = 1, .net_mbps = 5},
                1.0);
  }
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(0, 2, 3.0);
  g.AddEdge(2, 3, 0.5);
  return g;
}

TEST(GraphTest, VertexAccounting) {
  const Graph g = TriangleWithTail();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_DOUBLE_EQ(g.total_demand().cpu, 100.0);
  EXPECT_DOUBLE_EQ(g.total_balance_weight(), 4.0);
  EXPECT_DOUBLE_EQ(g.demand(2).cpu, 30.0);
}

TEST(GraphTest, NeighborsAndDegree) {
  const Graph g = TriangleWithTail();
  EXPECT_EQ(g.neighbors(2).size(), 3u);
  EXPECT_DOUBLE_EQ(g.degree_weight(2), 5.5);
  EXPECT_DOUBLE_EQ(g.degree_weight(3), 0.5);
}

TEST(GraphTest, ParallelEdgesMerge) {
  Graph g;
  g.AddVertex({}, 1.0);
  g.AddVertex({}, 1.0);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 1, 2.5);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 3.5);
  EXPECT_DOUBLE_EQ(g.neighbors(1)[0].weight, 3.5);
}

TEST(GraphTest, SelfLoopsIgnored) {
  Graph g;
  g.AddVertex({}, 1.0);
  g.AddEdge(0, 0, 5.0);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(GraphTest, TotalPositiveEdgeWeightSkipsNegative) {
  Graph g;
  for (int i = 0; i < 3; ++i) g.AddVertex({}, 1.0);
  g.AddEdge(0, 1, 4.0);
  g.AddEdge(1, 2, -100.0);
  EXPECT_DOUBLE_EQ(g.total_positive_edge_weight(), 4.0);
}

TEST(GraphTest, CutWeightTwoWay) {
  const Graph g = TriangleWithTail();
  // Cut {0,1} vs {2,3}: edges 1-2 (2) and 0-2 (3) cross → 5.
  std::vector<std::uint8_t> side{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(g.CutWeight(side), 5.0);
}

TEST(GraphTest, CutWeightKWay) {
  const Graph g = TriangleWithTail();
  std::vector<int> group{0, 1, 2, 2};
  // Crossing: 0-1 (1), 1-2 (2), 0-2 (3) → 6; 2-3 internal.
  EXPECT_DOUBLE_EQ(g.CutWeightKWay(group), 6.0);
}

TEST(GraphTest, InducedSubgraph) {
  const Graph g = TriangleWithTail();
  std::vector<VertexIndex> keep{0, 1, 2};
  std::vector<VertexIndex> map;
  const Graph sub = g.InducedSubgraph(keep, &map);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 3u);  // triangle preserved, tail dropped
  EXPECT_EQ(map[3], -1);
  EXPECT_DOUBLE_EQ(sub.total_demand().cpu, 60.0);
}

TEST(GraphTest, InducedSubgraphPreservesWeights) {
  const Graph g = TriangleWithTail();
  std::vector<VertexIndex> keep{0, 2};
  const Graph sub = g.InducedSubgraph(keep);
  ASSERT_EQ(sub.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(sub.neighbors(0)[0].weight, 3.0);
}

TEST(GraphTest, ConnectedComponents) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddVertex({}, 1.0);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(2, 3, 1.0);
  const auto [comp, n] = g.ConnectedComponents();
  EXPECT_EQ(n, 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
}

TEST(GraphTest, NegativeEdgesDoNotConnectComponents) {
  Graph g;
  g.AddVertex({}, 1.0);
  g.AddVertex({}, 1.0);
  g.AddEdge(0, 1, -5.0);
  const auto [comp, n] = g.ConnectedComponents();
  EXPECT_EQ(n, 2);
  EXPECT_NE(comp[0], comp[1]);
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.total_positive_edge_weight(), 0.0);
  const auto [comp, n] = g.ConnectedComponents();
  EXPECT_EQ(n, 0);
  EXPECT_TRUE(comp.empty());
}

}  // namespace
}  // namespace gl
