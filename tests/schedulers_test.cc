#include <gtest/gtest.h>

#include <set>

#include "schedulers/borg.h"
#include "schedulers/e_pvm.h"
#include "schedulers/mpp.h"
#include "schedulers/random_scheduler.h"
#include "schedulers/rc_informed.h"
#include "workload/scenarios.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000};

struct Fixture {
  Fixture()
      : topo(Topology::LeafSpine(8, 2, 2, kCap, 1000.0)),
        scenario(MakeTwitterCachingScenario()) {
    demands = scenario->DemandsAt(30);
    active = scenario->ActiveAt(30);
    input.workload = &scenario->workload();
    input.demands = demands;
    input.active = active;
    input.topology = &topo;
  }
  Topology topo;
  std::unique_ptr<Scenario> scenario;
  std::vector<Resource> demands;
  std::vector<std::uint8_t> active;
  SchedulerInput input;
};

void ExpectValidPlacement(const Placement& p, const Fixture& f,
                          double max_util) {
  // Every active container placed; capacity respected at the policy's cap.
  int placed = 0;
  for (std::size_t i = 0; i < p.server_of.size(); ++i) {
    if (f.active[i]) {
      EXPECT_TRUE(p.server_of[i].valid()) << "container " << i;
      ++placed;
    } else {
      EXPECT_FALSE(p.server_of[i].valid());
    }
  }
  EXPECT_EQ(placed, 176);
  const auto loads = ServerLoads(p, f.demands, f.topo.num_servers());
  for (int s = 0; s < f.topo.num_servers(); ++s) {
    const double u = loads[static_cast<std::size_t>(s)].DominantShare(
        f.topo.server_capacity(ServerId{s}));
    EXPECT_LE(u, max_util + 0.01) << "server " << s;
  }
}

// --- E-PVM ------------------------------------------------------------------------

TEST(EPvm, PlacesAllAndRespectsCapacity) {
  Fixture f;
  EPvmScheduler sched;
  const auto p = sched.Place(f.input);
  ExpectValidPlacement(p, f, 1.0);
}

TEST(EPvm, SpreadsAcrossAllServers) {
  Fixture f;
  EPvmScheduler sched;
  const auto p = sched.Place(f.input);
  // Least-utilized-first keeps every machine busy (paper: all 16 active).
  EXPECT_EQ(p.NumActiveServers(), 16);
}

TEST(EPvm, LoadIsBalanced) {
  Fixture f;
  EPvmScheduler sched;
  const auto p = sched.Place(f.input);
  const auto loads = ServerLoads(p, f.demands, f.topo.num_servers());
  double lo = 1e18, hi = 0.0;
  for (int s = 0; s < 16; ++s) {
    const double u = loads[static_cast<std::size_t>(s)].DominantShare(kCap);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(hi - lo, 0.25);
}

TEST(EPvm, NameIsStable) {
  EPvmScheduler sched;
  EXPECT_EQ(sched.name(), "E-PVM");
}

// --- mPP --------------------------------------------------------------------------

TEST(Mpp, PlacesAllAndRespectsCap) {
  Fixture f;
  MppScheduler sched;
  const auto p = sched.Place(f.input);
  ExpectValidPlacement(p, f, 0.95);
}

TEST(Mpp, PacksIntoFewerServersThanEPvm) {
  Fixture f;
  MppScheduler mpp;
  EPvmScheduler epvm;
  const auto p_mpp = mpp.Place(f.input);
  const auto p_epvm = epvm.Place(f.input);
  EXPECT_LT(p_mpp.NumActiveServers(), p_epvm.NumActiveServers());
}

TEST(Mpp, HigherCapMeansFewerServers) {
  Fixture f;
  MppScheduler tight(ServerPowerModel::Dell2018(), 0.95);
  MppScheduler loose(ServerPowerModel::Dell2018(), 0.60);
  EXPECT_LE(tight.Place(f.input).NumActiveServers(),
            loose.Place(f.input).NumActiveServers());
}

// --- Borg -------------------------------------------------------------------------

TEST(Borg, PlacesAllAndRespectsCap) {
  Fixture f;
  BorgScheduler sched;
  const auto p = sched.Place(f.input);
  ExpectValidPlacement(p, f, 0.95);
}

TEST(Borg, PacksComparablyToMpp) {
  Fixture f;
  BorgScheduler borg;
  MppScheduler mpp;
  const int nb = borg.Place(f.input).NumActiveServers();
  const int nm = mpp.Place(f.input).NumActiveServers();
  EXPECT_LE(std::abs(nb - nm), 3);
}

TEST(Borg, ReducesStranding) {
  // Two server types of demand: CPU-heavy and memory-heavy. Borg should
  // co-locate complementary shapes instead of stranding memory.
  Topology topo = Topology::LeafSpine(4, 2, 1, kCap, 1000.0);
  Workload w;
  for (int i = 0; i < 8; ++i) {
    Container c;
    c.id = ContainerId{w.size()};
    c.app = AppType::kHadoop;  // CPU-heavy profile shape
    c.demand = i % 2 == 0
                   ? Resource{.cpu = 1500, .mem_gb = 4, .net_mbps = 50}
                   : Resource{.cpu = 100, .mem_gb = 28, .net_mbps = 50};
    w.containers.push_back(c);
  }
  std::vector<Resource> demands;
  for (const auto& c : w.containers) demands.push_back(c.demand);
  std::vector<std::uint8_t> active(w.containers.size(), 1);
  SchedulerInput input;
  input.workload = &w;
  input.demands = demands;
  input.active = active;
  input.topology = &topo;
  BorgScheduler borg;
  const auto p = borg.Place(input);
  // Complementary pairs fit 2-per-server → 4 servers; stranding-blind
  // same-shape packing would need more.
  EXPECT_LE(p.NumActiveServers(), 5);
}

// --- RC-Informed --------------------------------------------------------------------

TEST(RcInformed, PlacesAll) {
  Fixture f;
  RcInformedScheduler sched;
  const auto p = sched.Place(f.input);
  int placed = 0;
  for (std::size_t i = 0; i < p.server_of.size(); ++i) {
    if (f.active[i] && p.server_of[i].valid()) ++placed;
  }
  EXPECT_EQ(placed, 176);
}

TEST(RcInformed, ActiveServersTrackReservationsNotLoad) {
  // The same container set at wildly different instantaneous load must land
  // on the same number of servers (reservation-driven buckets).
  Fixture f;
  RcInformedScheduler sched;
  const auto p_high = sched.Place(f.input);

  auto low_demands = f.scenario->DemandsAt(0);
  for (auto& d : low_demands) d = d * 0.2;
  SchedulerInput low = f.input;
  low.demands = low_demands;
  RcInformedScheduler sched2;
  const auto p_low = sched2.Place(low);
  EXPECT_EQ(p_high.NumActiveServers(), p_low.NumActiveServers());
}

TEST(RcInformed, OversubscriptionPacksTighter) {
  Fixture f;
  RcInformedScheduler with_over(1.25);
  RcInformedScheduler without(1.0);
  EXPECT_LE(with_over.Place(f.input).NumActiveServers(),
            without.Place(f.input).NumActiveServers());
}

TEST(RcInformed, SeparatesServiceComponents) {
  // Bucketing by size class scatters each FE/MC pair — the behaviour that
  // costs RC-Informed locality in the paper.
  Fixture f;
  RcInformedScheduler sched;
  const auto p = sched.Place(f.input);
  const auto& w = f.scenario->workload();
  int colocated = 0, total = 0;
  for (const auto& e : w.edges) {
    if (!e.is_query || e.flows < 4000.0) continue;  // primary pairs only
    ++total;
    const auto sa = p.of(e.a);
    const auto sb = p.of(e.b);
    if (sa.valid() && sa == sb) ++colocated;
  }
  ASSERT_GT(total, 0);
  EXPECT_LT(static_cast<double>(colocated) / total, 0.5);
}

// --- Random ------------------------------------------------------------------------

TEST(RandomSched, PlacesAllFeasible) {
  Fixture f;
  RandomScheduler sched(42);
  const auto p = sched.Place(f.input);
  ExpectValidPlacement(p, f, 0.95);
}

TEST(RandomSched, DeterministicPerSeed) {
  Fixture f;
  RandomScheduler a(7), b(7);
  EXPECT_EQ(a.Place(f.input).server_of, b.Place(f.input).server_of);
}

// --- Placement utilities -------------------------------------------------------------

TEST(PlacementUtil, MigrationsFrom) {
  Placement before, after;
  before.server_of = {ServerId{0}, ServerId{1}, ServerId{2},
                      ServerId::invalid()};
  after.server_of = {ServerId{0}, ServerId{2}, ServerId::invalid(),
                     ServerId{3}};
  // Container 1 moved; container 2 stopped (no migration); container 3 is
  // new (no migration).
  EXPECT_EQ(after.MigrationsFrom(before), 1);
}

TEST(PlacementUtil, NumActiveServers) {
  Placement p;
  p.server_of = {ServerId{0}, ServerId{0}, ServerId{3}, ServerId::invalid()};
  EXPECT_EQ(p.NumActiveServers(), 2);
  EXPECT_EQ(p.num_placed(), 3);
}

TEST(PlacementUtil, ServerLoadsAggregates) {
  Placement p;
  p.server_of = {ServerId{0}, ServerId{0}, ServerId{1}};
  std::vector<Resource> demands{{.cpu = 10, .mem_gb = 1, .net_mbps = 5},
                                {.cpu = 20, .mem_gb = 2, .net_mbps = 5},
                                {.cpu = 5, .mem_gb = 1, .net_mbps = 1}};
  const auto loads = ServerLoads(p, demands, 3);
  EXPECT_DOUBLE_EQ(loads[0].cpu, 30.0);
  EXPECT_DOUBLE_EQ(loads[1].cpu, 5.0);
  EXPECT_TRUE(loads[2].IsZero());
}

}  // namespace
}  // namespace gl
