// Serial-vs-parallel equivalence gate (DESIGN.md §9).
//
// The concurrency contract promises that the `threads` knobs never change
// results: the same seed must produce bit-identical EpochStateHash streams
// and final placements at threads=1, 2 and 8. These tests are the contract's
// executable form, and CI runs them under TSan so a data race in the
// parallel paths fails the build even when it happens not to corrupt the
// hashes.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/state_hash.h"
#include "core/scheduler_factory.h"
#include "graph/partitioner.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "workload/scenarios.h"

namespace gl {
namespace {

constexpr int kEpochs = 10;
const int kThreadCounts[] = {1, 2, 8};

std::vector<EpochStateHash> RunHashed(const std::string& scheduler_name,
                                      const Scenario& scenario,
                                      const Topology& topo,
                                      int partition_threads) {
  auto scheduler =
      MakeNamedScheduler(scheduler_name, 0.70, 0xfeed, partition_threads);
  RunnerOptions opts;
  opts.record_state_hashes = true;
  const ExperimentRunner runner(scenario, topo, opts);
  return runner.Run(*scheduler).state_hashes;
}

void ExpectIdenticalAcrossThreadCounts(const std::string& scheduler_name) {
  const auto scenario = MakeTwitterCachingScenario({.num_epochs = kEpochs});
  const auto topo = Topology::Testbed16();
  const auto serial = RunHashed(scheduler_name, *scenario, topo, 1);
  ASSERT_EQ(serial.size(), static_cast<std::size_t>(kEpochs));
  for (const int threads : kThreadCounts) {
    const auto parallel = RunHashed(scheduler_name, *scenario, topo, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (std::size_t e = 0; e < serial.size(); ++e) {
      const char* diverged = FirstDivergentSubsystem(serial[e], parallel[e]);
      EXPECT_EQ(diverged, nullptr)
          << "threads=" << threads << " diverged at epoch " << e << " in '"
          << (diverged ? diverged : "") << "'\n  serial:   "
          << serial[e].ToString() << "\n  parallel: "
          << parallel[e].ToString();
      if (diverged != nullptr) return;
    }
  }
}

// Goldilocks exercises the parallel partitioner every epoch.
TEST(ParallelDeterminism, GoldilocksHashStreamIsThreadCountInvariant) {
  ExpectIdenticalAcrossThreadCounts("goldilocks");
}

// A baseline without a partitioner still crosses RunMany and the estimator;
// its hashes must be untouched by the threading knobs too.
TEST(ParallelDeterminism, BorgHashStreamIsThreadCountInvariant) {
  ExpectIdenticalAcrossThreadCounts("borg");
}

// RunMany must equal per-scheduler Run() calls — same objects, same order —
// at every fan-out width.
TEST(ParallelDeterminism, RunManyMatchesSequentialRuns) {
  const auto scenario = MakeTwitterCachingScenario({.num_epochs = kEpochs});
  const auto topo = Topology::Testbed16();
  const std::vector<std::string> names = {"goldilocks", "borg"};

  std::vector<std::vector<EpochStateHash>> sequential;
  for (const auto& name : names) {
    sequential.push_back(RunHashed(name, *scenario, topo, 1));
  }

  for (const int threads : kThreadCounts) {
    RunnerOptions opts;
    opts.record_state_hashes = true;
    opts.threads = threads;
    const ExperimentRunner runner(*scenario, topo, opts);
    std::vector<std::unique_ptr<Scheduler>> schedulers;
    std::vector<Scheduler*> ptrs;
    for (const auto& name : names) {
      schedulers.push_back(MakeNamedScheduler(name, 0.70, 0xfeed, 1));
      ptrs.push_back(schedulers.back().get());
    }
    const auto results = runner.RunMany(ptrs);
    ASSERT_EQ(results.size(), names.size());
    for (std::size_t s = 0; s < results.size(); ++s) {
      ASSERT_EQ(results[s].state_hashes.size(), sequential[s].size());
      for (std::size_t e = 0; e < sequential[s].size(); ++e) {
        EXPECT_EQ(FirstDivergentSubsystem(sequential[s][e],
                                          results[s].state_hashes[e]),
                  nullptr)
            << names[s] << " threads=" << threads << " epoch " << e;
      }
    }
  }
}

// Partitioner-level check: every field of the result — group numbering,
// recursion paths, demands, sizes and the float cut weight — is exactly
// equal, not merely hash-equal, at every thread count.
TEST(ParallelDeterminism, RecursivePartitionIsExactlyThreadCountInvariant) {
  // Clustered graph shaped like a container graph: services of ~8 with
  // heavy intra edges, sparse light inter-service edges.
  Rng rng(7);
  Graph g;
  constexpr int kVertices = 800;
  for (int i = 0; i < kVertices; ++i) {
    g.AddVertex(Resource{.cpu = rng.Uniform(20, 60), .mem_gb = 4,
                         .net_mbps = rng.Uniform(5, 50)},
                1.0);
  }
  for (int s = 0; s + 8 <= kVertices; s += 8) {
    for (int i = 1; i < 8; ++i) g.AddEdge(s, s + i, rng.Uniform(100, 5000));
  }
  for (int e = 0; e < kVertices / 2; ++e) {
    const auto a = static_cast<VertexIndex>(rng.NextBelow(kVertices));
    const auto b = static_cast<VertexIndex>(rng.NextBelow(kVertices));
    if (a != b) g.AddEdge(a, b, rng.Uniform(1, 50));
  }
  const Resource ceiling{.cpu = 2240, .mem_gb = 57, .net_mbps = 700};
  const auto fits = [&](const Resource& demand, int) {
    return demand.FitsIn(ceiling);
  };

  PartitionOptions opts;
  const auto serial = RecursivePartition(g, fits, opts);
  EXPECT_GT(serial.num_groups, 1);
  for (const int threads : kThreadCounts) {
    PartitionOptions popts;
    popts.threads = threads;
    const auto parallel = RecursivePartition(g, fits, popts);
    EXPECT_EQ(parallel.group_of, serial.group_of) << "threads=" << threads;
    EXPECT_EQ(parallel.num_groups, serial.num_groups);
    EXPECT_EQ(parallel.group_path, serial.group_path);
    EXPECT_EQ(parallel.group_size, serial.group_size);
    EXPECT_EQ(parallel.oversized_groups, serial.oversized_groups);
    ASSERT_EQ(parallel.group_demand.size(), serial.group_demand.size());
    for (std::size_t i = 0; i < serial.group_demand.size(); ++i) {
      EXPECT_EQ(parallel.group_demand[i].cpu, serial.group_demand[i].cpu);
      EXPECT_EQ(parallel.group_demand[i].mem_gb,
                serial.group_demand[i].mem_gb);
      EXPECT_EQ(parallel.group_demand[i].net_mbps,
                serial.group_demand[i].net_mbps);
    }
    // Bit-equality, not tolerance: the parallel fold replays the serial
    // summation order.
    EXPECT_EQ(parallel.cut_weight, serial.cut_weight) << "threads=" << threads;
  }
}

// Intra-bisection check above the multi-trial gate (parallel_min_vertices):
// one Bisect call large enough that the parallel coarsening chunks, the
// pooled FM trials and the projection recomputation all engage. The side
// vector and the float cut must be bit-identical at every width — and under
// TSan this is the test that drives the chunked matching/contraction and
// concurrent FM trials hard enough to surface a data race.
TEST(ParallelDeterminism, LargeBisectionIsExactlyThreadCountInvariant) {
  Rng rng(21);
  Graph g;
  constexpr int kVertices = 6000;  // > PartitionOptions::parallel_min_vertices
  for (int i = 0; i < kVertices; ++i) {
    g.AddVertex(Resource{.cpu = rng.Uniform(20, 60), .mem_gb = 4,
                         .net_mbps = rng.Uniform(5, 50)},
                1.0);
  }
  for (int s = 0; s + 8 <= kVertices; s += 8) {
    for (int i = 1; i < 8; ++i) g.AddEdge(s, s + i, rng.Uniform(100, 5000));
  }
  for (int e = 0; e < kVertices / 2; ++e) {
    const auto a = static_cast<VertexIndex>(rng.NextBelow(kVertices));
    const auto b = static_cast<VertexIndex>(rng.NextBelow(kVertices));
    if (a != b) g.AddEdge(a, b, rng.Uniform(1, 50));
  }

  PartitionOptions serial_opts;
  ASSERT_LT(serial_opts.parallel_min_vertices, kVertices);
  ASSERT_GE(serial_opts.fm_trials, 2);
  const Bisection serial = Bisect(g, serial_opts);
  EXPECT_GT(serial.cut_weight, 0.0);
  for (const int threads : kThreadCounts) {
    PartitionOptions popts;
    popts.threads = threads;
    const Bisection parallel = Bisect(g, popts);
    EXPECT_EQ(parallel.side, serial.side) << "threads=" << threads;
    EXPECT_EQ(parallel.cut_weight, serial.cut_weight)
        << "threads=" << threads;
    EXPECT_EQ(parallel.side_weight[0], serial.side_weight[0]);
    EXPECT_EQ(parallel.side_weight[1], serial.side_weight[1]);
  }
}

}  // namespace
}  // namespace gl
