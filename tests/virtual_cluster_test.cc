#include <gtest/gtest.h>

#include <set>

#include "core/goldilocks.h"
#include "core/virtual_cluster.h"
#include "workload/scenarios.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000};

std::vector<Resource> UniformDemands(int n, const Resource& d) {
  return std::vector<Resource>(static_cast<std::size_t>(n), d);
}

std::vector<std::vector<ContainerId>> MakeGroups(
    const std::vector<int>& sizes) {
  std::vector<std::vector<ContainerId>> groups;
  int next = 0;
  for (const int s : sizes) {
    std::vector<ContainerId> g;
    for (int i = 0; i < s; ++i) g.push_back(ContainerId{next++});
    groups.push_back(std::move(g));
  }
  return groups;
}

TEST(VirtualCluster, PlacesSmallGroupOnOneRack) {
  Topology topo = Topology::FatTree(4, kCap, 1000.0);
  VirtualClusterPlacer placer(topo, {});
  const auto groups = MakeGroups({2});
  const Resource d{.cpu = 500, .mem_gb = 8, .net_mbps = 100};
  const auto p = placer.PlaceGroups(groups, UniformDemands(2, d), 2);
  ASSERT_TRUE(p.server_of[0].valid());
  ASSERT_TRUE(p.server_of[1].valid());
  EXPECT_LE(topo.HopDistance(p.server_of[0], p.server_of[1]), 2);
  EXPECT_EQ(placer.stats().groups_placed_whole, 1);
  EXPECT_EQ(placer.stats().bandwidth_violations, 0);
}

TEST(VirtualCluster, RespectsServerCeilings) {
  Topology topo = Topology::LeafSpine(4, 2, 2, kCap, 1000.0);
  VirtualClusterOptions opts;
  VirtualClusterPlacer placer(topo, opts);
  const Resource d{.cpu = 1000, .mem_gb = 10, .net_mbps = 100};
  const auto groups = MakeGroups({8});
  const auto p = placer.PlaceGroups(groups, UniformDemands(8, d), 8);
  std::vector<Resource> loads(static_cast<std::size_t>(topo.num_servers()));
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(p.server_of[i].valid());
    loads[static_cast<std::size_t>(p.server_of[i].value())] +=
        d;
  }
  for (int s = 0; s < topo.num_servers(); ++s) {
    EXPECT_LE(loads[static_cast<std::size_t>(s)].cpu,
              kCap.cpu * opts.pee_utilization + 1e-6);
  }
}

TEST(VirtualCluster, GroupTooBigForRackIsSplit) {
  // Each rack holds 2 servers; with cpu 2240 ceiling (70% of 3200) a server
  // fits 2 containers of cpu 1000 → a rack fits 4. A 10-container group
  // must span racks.
  Topology topo = Topology::LeafSpine(4, 2, 2, kCap, 10000.0);
  VirtualClusterPlacer placer(topo, {});
  const Resource d{.cpu = 1000, .mem_gb = 4, .net_mbps = 100};
  const auto groups = MakeGroups({10});
  const auto p = placer.PlaceGroups(groups, UniformDemands(10, d), 10);
  std::set<int> racks;
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(p.server_of[i].valid());
    racks.insert(
        topo.AncestorAt(topo.server_node(p.server_of[i]), 1).value());
  }
  EXPECT_GE(racks.size(), 2u);
}

TEST(VirtualCluster, BandwidthConstraintForcesSpread) {
  // Tiny rack uplinks: 100 Mbps. A group pushing 80 Mbps per container
  // cannot put many containers behind one rack once inter-group traffic is
  // accounted; the placer must spread or record violations.
  Topology topo = Topology::LeafSpine(8, 2, 1, kCap, 100.0);
  VirtualClusterPlacer placer(topo, {});
  const Resource d{.cpu = 100, .mem_gb = 2, .net_mbps = 40};
  const auto groups = MakeGroups({4, 4});
  const auto p = placer.PlaceGroups(groups, UniformDemands(8, d), 8);
  int placed = 0;
  for (const auto s : p.server_of) placed += s.valid();
  EXPECT_EQ(placed, 8);
  // Reservations on every leaf uplink must respect Eq. 4/5 bookkeeping
  // within capacity unless explicitly counted as violations.
  int over = 0;
  for (const auto leaf : topo.NodesAtLevel(1)) {
    if (placer.ReservationOn(leaf) > topo.uplink_capacity(leaf) + 1e-6) {
      ++over;
    }
  }
  EXPECT_LE(over, placer.stats().bandwidth_violations);
}

TEST(VirtualCluster, HeterogeneousServersUsed) {
  Topology topo = Topology::LeafSpine(4, 2, 2, kCap, 1000.0);
  // Shrink half of the servers.
  for (int s = 0; s < topo.num_servers(); s += 2) {
    topo.set_server_capacity(ServerId{s}, kCap * 0.25);
  }
  VirtualClusterPlacer placer(topo, {});
  const Resource d{.cpu = 1500, .mem_gb = 8, .net_mbps = 50};
  const auto groups = MakeGroups({4});
  const auto p = placer.PlaceGroups(groups, UniformDemands(4, d), 4);
  // cpu 1500 fits only the big servers (small ceiling = 0.25·3200·0.7=560).
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(p.server_of[i].valid());
    EXPECT_EQ(p.server_of[i].value() % 2, 1) << "landed on a small server";
  }
}

TEST(VirtualCluster, DegradedUplinkAvoided) {
  Topology topo = Topology::FatTree(4, kCap, 1000.0);
  // Cripple the first pod's uplink so cross-pod groups avoid it.
  const NodeId pod0 = topo.NodesAtLevel(2).front();
  topo.DegradeUplink(pod0, 0.01);
  VirtualClusterPlacer placer(topo, {});
  // Two groups that talk across: every container sends 300 Mbps.
  const Resource d{.cpu = 200, .mem_gb = 2, .net_mbps = 300};
  const auto groups = MakeGroups({4, 4});
  const auto p = placer.PlaceGroups(groups, UniformDemands(8, d), 8);
  // Placement succeeds; the heavily-communicating groups should not be
  // split across the degraded pod boundary without a violation record.
  int placed = 0;
  for (const auto s : p.server_of) placed += s.valid();
  EXPECT_EQ(placed, 8);
}

TEST(VirtualCluster, LocalitySiblingsShareSubtree) {
  Topology topo = Topology::FatTree(4, kCap, 10000.0);
  VirtualClusterPlacer placer(topo, {});
  const Resource d{.cpu = 1000, .mem_gb = 4, .net_mbps = 10};
  // Groups sized one-per-server; consecutive groups should fill nearby
  // servers (left-most subtree first).
  const auto groups = MakeGroups({2, 2, 2, 2});
  const auto p = placer.PlaceGroups(groups, UniformDemands(8, d), 8);
  // First two groups land in the first rack(s) of the first pod.
  const NodeId pod_of_0 =
      topo.AncestorAt(topo.server_node(p.server_of[0]), 2);
  const NodeId pod_of_2 =
      topo.AncestorAt(topo.server_node(p.server_of[2]), 2);
  EXPECT_EQ(pod_of_0, pod_of_2);
}

TEST(VirtualCluster, EmptyGroupsAreSkipped) {
  Topology topo = Topology::LeafSpine(2, 2, 1, kCap, 1000.0);
  VirtualClusterPlacer placer(topo, {});
  std::vector<std::vector<ContainerId>> groups{{}, {ContainerId{0}}};
  const Resource d{.cpu = 100, .mem_gb = 1, .net_mbps = 10};
  const auto p = placer.PlaceGroups(groups, UniformDemands(1, d), 1);
  EXPECT_TRUE(p.server_of[0].valid());
}

TEST(VirtualCluster, GoldilocksEndToEndOnAsymmetricTopology) {
  // Full pipeline: heterogeneous servers + degraded link via the scheduler.
  Topology topo = Topology::FatTree(4, kCap, 1000.0);
  for (int s = 0; s < topo.num_servers(); s += 3) {
    topo.set_server_capacity(ServerId{s}, kCap * 0.5);
  }
  topo.DegradeUplink(topo.NodesAtLevel(2)[1], 0.5);

  const auto scenario = MakeTwitterCachingScenario();
  const auto demands = scenario->DemandsAt(10);
  const auto active = scenario->ActiveAt(10);
  SchedulerInput input;
  input.workload = &scenario->workload();
  input.demands = demands;
  input.active = active;
  input.topology = &topo;

  GoldilocksOptions opts;
  opts.use_virtual_clusters = true;
  GoldilocksScheduler sched(opts);
  const auto p = sched.Place(input);
  int placed = 0;
  for (const auto s : p.server_of) placed += s.valid();
  EXPECT_EQ(placed, 176);
  // Ceilings hold per heterogeneous capacity.
  const auto loads = ServerLoads(p, demands, topo.num_servers());
  for (int s = 0; s < topo.num_servers(); ++s) {
    const auto& cap = topo.server_capacity(ServerId{s});
    EXPECT_LE(loads[static_cast<std::size_t>(s)].cpu,
              cap.cpu * opts.pee_utilization * 1.02);
  }
}

}  // namespace
}  // namespace gl
