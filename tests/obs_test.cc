// Observability layer tests (src/obs): JsonWriter bytes, TraceSpan nesting
// under ParallelFor, counter determinism across thread counts, histogram
// quantile edge cases, JSONL round-trip, and the central neutrality claim:
// enabling observability changes no EpochStateHash (DESIGN.md §10).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/thread_pool.h"
#include "core/scheduler_factory.h"
#include "obs/metrics.h"
#include "obs/run_logger.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "workload/scenarios.h"

namespace gl {
namespace {

// --- JsonWriter ------------------------------------------------------------

TEST(JsonWriterTest, ObjectsArraysAndScalars) {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("i");
  w.Int(-42);
  w.Key("u");
  w.UInt(std::uint64_t{1} << 63);
  w.Key("b");
  w.Bool(true);
  w.Key("n");
  w.Null();
  w.Key("a");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(out,
            "{\"i\":-42,\"u\":9223372036854775808,\"b\":true,\"n\":null,"
            "\"a\":[1,2]}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  std::string out;
  JsonWriter w(&out);
  w.String("a\"b\\c\nd\te\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWriterTest, DoublesRoundTripAndNonFiniteBecomesNull) {
  std::string out;
  JsonWriter w(&out);
  w.BeginArray();
  w.Double(0.1);
  w.Double(1.0 / 0.0);
  w.Double(-1.0 / 0.0);
  w.EndArray();
  EXPECT_EQ(out, "[0.10000000000000001,null,null]");
  // %.17g is the shortest representation that parses back bit-identically.
  EXPECT_EQ(std::strtod("0.10000000000000001", nullptr), 0.1);
}

TEST(JsonWriterTest, Hex64CarriesAllBits) {
  std::string out;
  JsonWriter w(&out);
  w.Hex64(0xdeadbeefcafef00dULL);
  EXPECT_EQ(out, "\"deadbeefcafef00d\"");
}

// --- TraceSpan nesting -----------------------------------------------------

TEST(TraceTest, SpanIsNoOpWithoutActiveTrace) {
  ASSERT_EQ(obs::Trace::Active(), nullptr);
  { obs::TraceSpan span("orphan"); }
  obs::Trace trace;
  EXPECT_TRUE(trace.Events().empty());
}

TEST(TraceTest, RecordsNestedSpansWithDepths) {
  obs::Trace trace;
  trace.Activate();
  {
    obs::TraceSpan outer("outer");
    { obs::TraceSpan inner("inner", 7); }
    { obs::TraceSpan inner("inner", 8); }
  }
  trace.Deactivate();
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 3u);
  int outer_depth = -1;
  for (const auto& ev : events) {
    if (std::string(ev.name) == "outer") outer_depth = ev.depth;
  }
  ASSERT_GE(outer_depth, 0);
  for (const auto& ev : events) {
    if (std::string(ev.name) == "inner") {
      EXPECT_EQ(ev.depth, outer_depth + 1);
      EXPECT_TRUE(ev.arg == 7 || ev.arg == 8);
    }
  }
}

// Under ParallelFor each worker keeps its own span stack: every worker span
// lands at depth 0 of its own thread lane, never under another worker.
TEST(TraceTest, ParallelForWorkersGetIndependentStacks) {
  for (const int threads : {1, 2, 8}) {
    obs::Trace trace;
    trace.Activate();
    constexpr std::size_t kTasks = 32;
    {
      ThreadPool pool(threads);
      pool.ParallelFor(kTasks, [](std::size_t i) {
        obs::TraceSpan span("work", static_cast<std::int64_t>(i));
        obs::TraceSpan nested("work.inner");
      });
    }
    trace.Deactivate();
    const auto events = trace.Events();
    std::size_t outer = 0, inner = 0;
    for (const auto& ev : events) {
      const std::string name = ev.name;
      if (name == "work") {
        ++outer;
        EXPECT_EQ(ev.depth, 0) << "threads=" << threads;
      } else if (name == "work.inner") {
        ++inner;
        EXPECT_EQ(ev.depth, 1) << "threads=" << threads;
      }
    }
    EXPECT_EQ(outer, kTasks) << "threads=" << threads;
    EXPECT_EQ(inner, kTasks) << "threads=" << threads;
  }
}

TEST(TraceTest, SummaryAggregatesByName) {
  obs::Trace trace;
  trace.Activate();
  { obs::TraceSpan a("phase.a"); }
  { obs::TraceSpan a("phase.a"); }
  { obs::TraceSpan b("phase.b"); }
  trace.Deactivate();
  const auto summary = trace.Summary();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].name, "phase.a");
  EXPECT_EQ(summary[0].count, 2u);
  EXPECT_EQ(summary[1].name, "phase.b");
  EXPECT_EQ(summary[1].count, 1u);
}

// --- metrics ---------------------------------------------------------------

// Relaxed-atomic adds are commutative, so totals are exact and identical at
// every thread count even though the schedule differs.
TEST(MetricsTest, CounterTotalsAreThreadCountInvariant) {
  std::vector<std::uint64_t> totals;
  for (const int threads : {1, 2, 8}) {
    obs::MetricsRegistry registry;
    obs::Counter& c =
        registry.GetCounter("test.events", obs::MetricKind::kDeterministic);
    ThreadPool pool(threads);
    pool.ParallelFor(1000, [&](std::size_t i) { c.Add(i % 7); });
    totals.push_back(c.value());
  }
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[0], totals[2]);
}

TEST(MetricsTest, RegistryHandlesAreIdempotentAndSnapshotsSorted) {
  obs::MetricsRegistry registry;
  obs::Counter& a =
      registry.GetCounter("z.second", obs::MetricKind::kDeterministic);
  obs::Counter& b =
      registry.GetCounter("a.first", obs::MetricKind::kDeterministic);
  registry.GetCounter("m.informational", obs::MetricKind::kInformational);
  EXPECT_EQ(&a, &registry.GetCounter("z.second",
                                     obs::MetricKind::kDeterministic));
  a.Add(2);
  b.Add(1);
  const auto snap =
      registry.SnapshotCounters(obs::MetricKind::kDeterministic);
  ASSERT_EQ(snap.size(), 2u);  // informational excluded
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[0].value, 1u);
  EXPECT_EQ(snap[1].name, "z.second");
  EXPECT_EQ(snap[1].value, 2u);
}

TEST(MetricsTest, DeltaCountersDiffsAgainstMissingNamesAsZero) {
  const std::vector<obs::CounterValue> before = {{"b", 5}};
  const std::vector<obs::CounterValue> now = {{"a", 3}, {"b", 9}};
  const auto delta = obs::MetricsRegistry::DeltaCounters(before, now);
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0].name, "a");
  EXPECT_EQ(delta[0].value, 3u);
  EXPECT_EQ(delta[1].name, "b");
  EXPECT_EQ(delta[1].value, 4u);
}

TEST(MetricsTest, HistogramQuantileEdgeCases) {
  obs::MetricsRegistry registry;
  obs::Histogram& h =
      registry.GetHistogram("test.lat", obs::MetricKind::kInformational);
  // Empty histogram: everything is 0.
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);

  // Single sample: every quantile is that sample.
  h.Observe(3.5);
  EXPECT_EQ(h.Quantile(0.0), 3.5);
  EXPECT_EQ(h.Quantile(0.5), 3.5);
  EXPECT_EQ(h.Quantile(1.0), 3.5);

  // Out-of-range q clamps; extremes stay exact with more samples.
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  EXPECT_EQ(h.Quantile(-1.0), h.min());
  EXPECT_EQ(h.Quantile(2.0), h.max());
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 100.0);
  // Interpolated mid quantile lands inside the sample range, and quantiles
  // are monotone in q.
  const double p50 = h.Quantile(0.5);
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_LE(p50, p99);

  // Non-positive and tiny samples land in the bottom bucket, not UB.
  h.Observe(0.0);
  h.Observe(-5.0);
  EXPECT_EQ(h.min(), -5.0);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

// --- RunLogger -------------------------------------------------------------

obs::EpochRecord MakeRecord() {
  obs::EpochRecord rec;
  rec.scheduler = "Goldilocks";
  rec.scenario = "unit";
  rec.epoch = 3;
  rec.active_servers = 12;
  rec.total_watts = 5451.25;
  rec.counters = {{"partition.cut_edges_evaluated", 123}};
  rec.has_hash = true;
  rec.hash_placement = 0x1111;
  rec.hash_rng = 0xffeeddccbbaa9988ULL;
  rec.wall_ms = 21.5;
  rec.phases = {{"schedule", 20.0}, {"tct", 1.5}};
  return rec;
}

TEST(RunLoggerTest, EpochLineLayout) {
  const std::string line = obs::RunLogger::EpochLine(MakeRecord());
  EXPECT_EQ(line.rfind("{\"schema\":\"gl.epoch.v1\"", 0), 0u);
  EXPECT_NE(line.find("\"scheduler\":\"Goldilocks\""), std::string::npos);
  EXPECT_NE(line.find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(line.find("\"counters\":{\"partition.cut_edges_evaluated\":123}"),
            std::string::npos);
  EXPECT_NE(line.find("\"rng\":\"ffeeddccbbaa9988\""), std::string::npos);
  // The informational tail is one strippable trailing section.
  const std::size_t timings = line.find(",\"timings\":");
  ASSERT_NE(timings, std::string::npos);
  EXPECT_NE(line.find("\"phases\":{\"schedule\":20,\"tct\":1.5}", timings),
            std::string::npos);
  EXPECT_EQ(line.back(), '}');
}

TEST(RunLoggerTest, GaugesLiveInsideTheStrippableTail) {
  obs::EpochRecord rec = MakeRecord();
  rec.info_gauges = {{"partition.pool.parallel_efficiency", 0.75},
                     {"process.peak_rss_bytes", 1024.0}};
  const std::string with = obs::RunLogger::EpochLine(rec);
  const std::string without = obs::RunLogger::EpochLine(MakeRecord());

  // Gauges serialize after the timings marker, never before it.
  const std::size_t timings = with.find(",\"timings\":");
  ASSERT_NE(timings, std::string::npos);
  const std::size_t gauges = with.find(
      "\"gauges\":{\"partition.pool.parallel_efficiency\":0.75,"
      "\"process.peak_rss_bytes\":1024}");
  ASSERT_NE(gauges, std::string::npos);
  EXPECT_GT(gauges, timings);

  // Adding gauges must not perturb a single deterministic-prefix byte.
  const auto strip = [](const std::string& line) {
    return line.substr(0, line.find(",\"timings\":")) + "}";
  };
  EXPECT_EQ(strip(with), strip(without));
  // And a record with no gauges emits no gauges key at all.
  EXPECT_EQ(without.find("\"gauges\""), std::string::npos);
}

TEST(RunLoggerTest, SinkRoundTripAndLineCount) {
  std::string sink;
  obs::RunLogger logger(&sink);
  ASSERT_TRUE(logger.ok());
  logger.WriteEpoch(MakeRecord());
  logger.WriteEpoch(MakeRecord());
  EXPECT_EQ(logger.lines_written(), 2u);
  const std::string line = obs::RunLogger::EpochLine(MakeRecord());
  EXPECT_EQ(sink, line + "\n" + line + "\n");
}

TEST(RunLoggerTest, DeterministicSectionIsByteStableAcrossSerializations) {
  const obs::EpochRecord rec = MakeRecord();
  obs::EpochRecord jittered = rec;
  jittered.wall_ms = 99.0;  // informational-only change
  const std::string a = obs::RunLogger::EpochLine(rec);
  const std::string b = obs::RunLogger::EpochLine(jittered);
  const auto strip = [](const std::string& line) {
    return line.substr(0, line.find(",\"timings\":")) + "}";
  };
  EXPECT_NE(a, b);
  EXPECT_EQ(strip(a), strip(b));
}

// --- obs neutrality --------------------------------------------------------

// The acceptance bar for the whole subsystem: same-seed runs with obs fully
// enabled (logger + active trace) and fully disabled produce identical
// EpochStateHash streams — observability observes, it never steers.
TEST(ObsNeutralityTest, StateHashesIdenticalWithObsOnAndOff) {
  TwitterScenarioOptions sopts;
  sopts.num_epochs = 4;
  const auto scenario = MakeTwitterCachingScenario(sopts);
  const Topology topo = Topology::Testbed16();

  const auto run = [&](obs::RunLogger* logger) {
    RunnerOptions opts;
    opts.record_state_hashes = true;
    opts.obs.logger = logger;
    const ExperimentRunner runner(*scenario, topo, opts);
    const auto scheduler = MakeNamedScheduler("goldilocks");
    return runner.Run(*scheduler).state_hashes;
  };

  const auto plain = run(nullptr);

  std::string sink1, sink2;
  obs::Trace trace;
  trace.Activate();
  obs::RunLogger logger1(&sink1);
  const auto logged1 = run(&logger1);
  obs::RunLogger logger2(&sink2);
  const auto logged2 = run(&logger2);
  trace.Deactivate();

  ASSERT_EQ(plain.size(), logged1.size());
  for (std::size_t e = 0; e < plain.size(); ++e) {
    EXPECT_EQ(FirstDivergentSubsystem(plain[e], logged1[e]), nullptr)
        << "obs-on diverged from obs-off at epoch " << e;
  }

  // Two obs-on runs: byte-identical JSONL outside the timings sections.
  ASSERT_FALSE(sink1.empty());
  const auto strip_timings = [](const std::string& text) {
    std::string out;
    std::size_t start = 0;
    while (start < text.size()) {
      const std::size_t nl = text.find('\n', start);
      const std::size_t end = nl == std::string::npos ? text.size() : nl;
      const std::string line = text.substr(start, end - start);
      out += line.substr(0, line.find(",\"timings\":"));
      out += "}\n";
      start = end + 1;
    }
    return out;
  };
  EXPECT_EQ(strip_timings(sink1), strip_timings(sink2));
  EXPECT_FALSE(trace.Events().empty());
}

}  // namespace
}  // namespace gl
