// End-to-end shape checks: the headline comparisons of the paper's
// evaluation, run on the testbed topology with short scenario horizons.
#include <gtest/gtest.h>

#include "core/goldilocks.h"
#include "schedulers/borg.h"
#include "schedulers/e_pvm.h"
#include "schedulers/mpp.h"
#include "schedulers/rc_informed.h"
#include "sim/simulator.h"
#include "workload/scenarios.h"

namespace gl {
namespace {

struct Results {
  ExperimentResult goldilocks, epvm, mpp, borg, rc;
};

Results RunAll(const Scenario& scenario, const Topology& topo) {
  ExperimentRunner runner(scenario, topo);
  Results r;
  {
    GoldilocksScheduler s;
    r.goldilocks = runner.Run(s);
  }
  {
    EPvmScheduler s;
    r.epvm = runner.Run(s);
  }
  {
    MppScheduler s;
    r.mpp = runner.Run(s);
  }
  {
    BorgScheduler s;
    r.borg = runner.Run(s);
  }
  {
    RcInformedScheduler s;
    r.rc = runner.Run(s);
  }
  return r;
}

class WikiIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TwitterScenarioOptions opts;
    opts.num_epochs = 12;
    scenario_ = MakeTwitterCachingScenario(opts).release();
    topo_ = new Topology(Topology::Testbed16());
    results_ = new Results(RunAll(*scenario_, *topo_));
  }
  static void TearDownTestSuite() {
    delete results_;
    delete topo_;
    delete scenario_;
    results_ = nullptr;
    topo_ = nullptr;
    scenario_ = nullptr;
  }
  static Scenario* scenario_;
  static Topology* topo_;
  static Results* results_;
};

Scenario* WikiIntegration::scenario_ = nullptr;
Topology* WikiIntegration::topo_ = nullptr;
Results* WikiIntegration::results_ = nullptr;

TEST_F(WikiIntegration, EveryPolicyPlacesEverything) {
  for (const auto* r : {&results_->goldilocks, &results_->epvm,
                        &results_->mpp, &results_->borg, &results_->rc}) {
    for (const auto& m : r->epochs) {
      EXPECT_EQ(m.unplaced_containers, 0) << r->scheduler;
    }
  }
}

TEST_F(WikiIntegration, GoldilocksSavesPowerVsEPvm) {
  // Fig 11(a): Goldilocks saves ~22.7% vs E-PVM on the wiki pattern.
  const double saving = 1.0 - results_->goldilocks.Average().total_watts /
                                  results_->epvm.Average().total_watts;
  EXPECT_GT(saving, 0.08);
  EXPECT_LT(saving, 0.55);
}

TEST_F(WikiIntegration, GoldilocksConsumesLeastPower) {
  // Goldilocks strictly beats E-PVM/mPP/Borg. RC-Informed's idealized
  // buckets pack the memory-bound trough perfectly (4 GB Memcached images
  // tile the 64 GB servers), so it lands within a few percent — the paper's
  // strict ordering holds in the CPU-bound regime (see the Azure test).
  const double g = results_->goldilocks.Average().total_watts;
  EXPECT_LE(g, results_->epvm.Average().total_watts);
  EXPECT_LE(g, results_->mpp.Average().total_watts * 1.02);
  EXPECT_LE(g, results_->borg.Average().total_watts * 1.02);
  EXPECT_LE(g, results_->rc.Average().total_watts * 1.05);
}

TEST_F(WikiIntegration, GoldilocksHasShortestTct) {
  // Fig 9(c)/11(b): Goldilocks' TCT beats every alternative.
  const double g = results_->goldilocks.Average().mean_tct_ms;
  EXPECT_LT(g, results_->epvm.Average().mean_tct_ms);
  EXPECT_LT(g, results_->mpp.Average().mean_tct_ms);
  EXPECT_LT(g, results_->borg.Average().mean_tct_ms);
  EXPECT_LT(g, results_->rc.Average().mean_tct_ms);
}

TEST_F(WikiIntegration, PackersUseFewestServers) {
  // Fig 9(a): the packing policies consolidate while E-PVM keeps all 16
  // on. (In our reproduction Goldilocks' effective-network accounting lets
  // it pack as tight as Borg despite the lower CPU ceiling, so we assert
  // consolidation and closeness rather than a strict ordering.)
  EXPECT_EQ(results_->epvm.Average().active_servers, 16);
  EXPECT_LT(results_->goldilocks.Average().active_servers, 16);
  EXPECT_LT(results_->borg.Average().active_servers, 16);
  EXPECT_NEAR(results_->goldilocks.Average().active_servers,
              results_->borg.Average().active_servers, 3);
}

TEST_F(WikiIntegration, GoldilocksBestEnergyPerRequest) {
  const double g = results_->goldilocks.Average().energy_per_request_j;
  EXPECT_LT(g, results_->rc.Average().energy_per_request_j);
  EXPECT_LT(g, results_->borg.Average().energy_per_request_j);
  EXPECT_LT(g, results_->mpp.Average().energy_per_request_j);
  EXPECT_LT(g, results_->epvm.Average().energy_per_request_j);
}

TEST_F(WikiIntegration, HighPackersSufferTctPenalty) {
  // Packing to 95% costs latency: Borg/mPP are the slow end (Fig 9c).
  const double g = results_->goldilocks.Average().mean_tct_ms;
  EXPECT_GT(results_->borg.Average().mean_tct_ms, g * 1.5);
  EXPECT_GT(results_->mpp.Average().mean_tct_ms, g * 1.5);
}

class AzureIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AzureScenarioOptions opts;
    opts.num_epochs = 12;
    scenario_ = MakeAzureMixScenario(opts).release();
    topo_ = new Topology(Topology::Testbed16());
    results_ = new Results(RunAll(*scenario_, *topo_));
  }
  static void TearDownTestSuite() {
    delete results_;
    delete topo_;
    delete scenario_;
    results_ = nullptr;
    topo_ = nullptr;
    scenario_ = nullptr;
  }
  static Scenario* scenario_;
  static Topology* topo_;
  static Results* results_;
};

Scenario* AzureIntegration::scenario_ = nullptr;
Topology* AzureIntegration::topo_ = nullptr;
Results* AzureIntegration::results_ = nullptr;

TEST_F(AzureIntegration, GoldilocksLowestPower) {
  const double g = results_->goldilocks.Average().total_watts;
  EXPECT_LT(g, results_->epvm.Average().total_watts);
}

TEST_F(AzureIntegration, GoldilocksShortTctUnderChurn) {
  const double g = results_->goldilocks.Average().mean_tct_ms;
  EXPECT_LT(g, results_->mpp.Average().mean_tct_ms);
  EXPECT_LT(g, results_->borg.Average().mean_tct_ms);
  EXPECT_LT(g, results_->rc.Average().mean_tct_ms);
}

TEST_F(AzureIntegration, MostContainersPlacedEachEpoch) {
  // E-PVM (balanced spread), RC-Informed (reservations) and Goldilocks
  // (balanced min-cut groups) place essentially everything. The 95%-target
  // packers may strand a handful of containers at the worst epoch — the
  // flip side of aggressive consolidation under multi-dimensional load.
  for (const auto* r :
       {&results_->goldilocks, &results_->epvm, &results_->rc}) {
    for (const auto& m : r->epochs) {
      EXPECT_LE(m.unplaced_containers, 2) << r->scheduler;
    }
  }
  for (const auto* r : {&results_->mpp, &results_->borg}) {
    for (const auto& m : r->epochs) {
      EXPECT_LE(m.unplaced_containers, 12) << r->scheduler;
    }
  }
}

TEST_F(AzureIntegration, ChurnCausesBoundedMigrations) {
  // Container arrivals/departures should not thrash the whole cluster.
  for (const auto& m : results_->goldilocks.epochs) {
    EXPECT_LE(m.migrations, scenario_->workload().size());
  }
}

}  // namespace
}  // namespace gl
