#include <gtest/gtest.h>

#include "core/goldilocks.h"
#include "schedulers/e_pvm.h"
#include "sim/latency.h"
#include "sim/migration.h"
#include "sim/simulator.h"
#include "netsim/traffic.h"
#include "workload/scenarios.h"

namespace gl {
namespace {

const Resource kCap{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000};

// --- traffic estimation --------------------------------------------------------------

TEST(Traffic, IntraServerTrafficStaysLocal) {
  Topology topo = Topology::LeafSpine(2, 2, 1, kCap, 1000.0);
  Workload w;
  for (int i = 0; i < 2; ++i) {
    Container c;
    c.id = ContainerId{i};
    c.demand = {.cpu = 10, .mem_gb = 1, .net_mbps = 100};
    w.containers.push_back(c);
  }
  w.edges.push_back({ContainerId{0}, ContainerId{1}, 10.0});
  std::vector<Resource> demands(2, {.cpu = 10, .mem_gb = 1, .net_mbps = 100});
  std::vector<std::uint8_t> active(2, 1);
  Placement p;
  p.server_of = {ServerId{0}, ServerId{0}};
  const auto t = EstimateTraffic(w, p, demands, active, topo);
  EXPECT_GT(t.edge_mbps[0], 0.0);
  for (const double load : t.node_uplink_mbps) EXPECT_DOUBLE_EQ(load, 0.0);
}

TEST(Traffic, CrossServerTrafficLoadsPath) {
  Topology topo = Topology::LeafSpine(2, 2, 1, kCap, 1000.0);
  Workload w;
  for (int i = 0; i < 2; ++i) {
    Container c;
    c.id = ContainerId{i};
    c.demand = {.cpu = 10, .mem_gb = 1, .net_mbps = 100};
    w.containers.push_back(c);
  }
  w.edges.push_back({ContainerId{0}, ContainerId{1}, 10.0});
  std::vector<Resource> demands(2, {.cpu = 10, .mem_gb = 1, .net_mbps = 100});
  std::vector<std::uint8_t> active(2, 1);
  Placement p;
  p.server_of = {ServerId{0}, ServerId{2}};  // different leaves
  const auto t = EstimateTraffic(w, p, demands, active, topo);
  // The single edge carries the full 100 Mbps of each endpoint.
  EXPECT_NEAR(t.edge_mbps[0], 100.0, 1e-9);
  // Leaf uplinks of both racks are loaded.
  const NodeId leaf0 = topo.AncestorAt(topo.server_node(ServerId{0}), 1);
  const NodeId leaf1 = topo.AncestorAt(topo.server_node(ServerId{2}), 1);
  EXPECT_NEAR(t.node_uplink_mbps[static_cast<std::size_t>(leaf0.value())],
              100.0, 1e-9);
  EXPECT_NEAR(t.node_uplink_mbps[static_cast<std::size_t>(leaf1.value())],
              100.0, 1e-9);
}

TEST(Traffic, SplitsDemandByFlowWeights) {
  Topology topo = Topology::LeafSpine(4, 2, 1, kCap, 1000.0);
  Workload w;
  for (int i = 0; i < 3; ++i) {
    Container c;
    c.id = ContainerId{i};
    c.demand = {.cpu = 10, .mem_gb = 1, .net_mbps = 90};
    w.containers.push_back(c);
  }
  // Container 0 talks to 1 (weight 2) and 2 (weight 1): 60/30 split.
  w.edges.push_back({ContainerId{0}, ContainerId{1}, 2.0});
  w.edges.push_back({ContainerId{0}, ContainerId{2}, 1.0});
  std::vector<Resource> demands(3, {.cpu = 10, .mem_gb = 1, .net_mbps = 90});
  std::vector<std::uint8_t> active(3, 1);
  Placement p;
  p.server_of = {ServerId{0}, ServerId{2}, ServerId{4}};
  const auto t = EstimateTraffic(w, p, demands, active, topo);
  EXPECT_GT(t.edge_mbps[0], t.edge_mbps[1]);
}

TEST(Traffic, InactiveEdgesCarryNothing) {
  Topology topo = Topology::LeafSpine(2, 2, 1, kCap, 1000.0);
  Workload w;
  for (int i = 0; i < 2; ++i) {
    Container c;
    c.id = ContainerId{i};
    w.containers.push_back(c);
  }
  w.edges.push_back({ContainerId{0}, ContainerId{1}, 10.0});
  std::vector<Resource> demands(2, {.cpu = 10, .mem_gb = 1, .net_mbps = 100});
  std::vector<std::uint8_t> active{1, 0};
  Placement p;
  p.server_of = {ServerId{0}, ServerId{2}};
  const auto t = EstimateTraffic(w, p, demands, active, topo);
  EXPECT_DOUBLE_EQ(t.edge_mbps[0], 0.0);
}

// --- latency model --------------------------------------------------------------------

TEST(Latency, QueueFactorShape) {
  Topology topo = Topology::Testbed16();
  LatencyModel m(topo);
  EXPECT_NEAR(m.QueueFactor(0.0), 1.0, 1e-9);
  EXPECT_LT(m.QueueFactor(0.3), m.QueueFactor(0.7));
  EXPECT_LT(m.QueueFactor(0.7), m.QueueFactor(0.95));
  // Cap holds even at overload.
  LatencyOptions opts;
  EXPECT_LE(m.QueueFactor(1.5), opts.max_queue_factor);
}

TEST(Latency, CongestionFactorShape) {
  Topology topo = Topology::Testbed16();
  LatencyModel m(topo);
  EXPECT_NEAR(m.CongestionFactor(0.0), 1.0, 1e-9);
  EXPECT_GT(m.CongestionFactor(0.8), 2.0);
  LatencyOptions opts;
  EXPECT_LE(m.CongestionFactor(2.0), opts.max_congestion_factor);
}

TEST(Latency, ColocationBeatsCrossFabric) {
  Topology topo = Topology::LeafSpine(8, 2, 2, kCap, 1000.0);
  Workload w;
  for (int i = 0; i < 2; ++i) {
    Container c;
    c.id = ContainerId{i};
    c.app = i == 0 ? AppType::kFrontend : AppType::kMemcached;
    c.demand = {.cpu = 30, .mem_gb = 4, .net_mbps = 20};
    w.containers.push_back(c);
  }
  w.edges.push_back({ContainerId{0}, ContainerId{1}, 100.0, true});
  std::vector<Resource> demands(2, {.cpu = 30, .mem_gb = 4, .net_mbps = 20});
  std::vector<std::uint8_t> active(2, 1);

  LatencyModel m(topo);
  Placement together, apart;
  together.server_of = {ServerId{0}, ServerId{0}};
  apart.server_of = {ServerId{0}, ServerId{14}};
  const auto t1 = EstimateTraffic(w, together, demands, active, topo);
  const auto t2 = EstimateTraffic(w, apart, demands, active, topo);
  const auto r1 = m.ComputeTct(w, together, demands, active, t1);
  const auto r2 = m.ComputeTct(w, apart, demands, active, t2);
  EXPECT_LT(r1.mean_ms, r2.mean_ms);
  EXPECT_EQ(r1.query_edges, 1);
}

TEST(Latency, OverloadedServerHurts) {
  Topology topo = Topology::LeafSpine(2, 2, 1, kCap, 1000.0);
  Workload w;
  for (int i = 0; i < 2; ++i) {
    Container c;
    c.id = ContainerId{i};
    c.app = i == 0 ? AppType::kFrontend : AppType::kMemcached;
    w.containers.push_back(c);
  }
  w.edges.push_back({ContainerId{0}, ContainerId{1}, 10.0, true});
  std::vector<std::uint8_t> active(2, 1);
  Placement p;
  p.server_of = {ServerId{0}, ServerId{0}};
  LatencyModel m(topo);

  std::vector<Resource> light(2, {.cpu = 160, .mem_gb = 1, .net_mbps = 5});
  std::vector<Resource> heavy(2, {.cpu = 1550, .mem_gb = 1, .net_mbps = 5});
  const auto tl = EstimateTraffic(w, p, light, active, topo);
  const auto th = EstimateTraffic(w, p, heavy, active, topo);
  EXPECT_LT(m.ComputeTct(w, p, light, active, tl).mean_ms,
            m.ComputeTct(w, p, heavy, active, th).mean_ms);
}

TEST(Latency, NonQueryEdgesIgnored) {
  Topology topo = Topology::LeafSpine(2, 2, 1, kCap, 1000.0);
  Workload w;
  for (int i = 0; i < 2; ++i) {
    Container c;
    c.id = ContainerId{i};
    w.containers.push_back(c);
  }
  w.edges.push_back({ContainerId{0}, ContainerId{1}, 10.0, false});
  std::vector<Resource> demands(2, {.cpu = 10, .mem_gb = 1, .net_mbps = 5});
  std::vector<std::uint8_t> active(2, 1);
  Placement p;
  p.server_of = {ServerId{0}, ServerId{1}};
  LatencyModel m(topo);
  const auto t = EstimateTraffic(w, p, demands, active, topo);
  const auto r = m.ComputeTct(w, p, demands, active, t);
  EXPECT_EQ(r.query_edges, 0);
  EXPECT_DOUBLE_EQ(r.mean_ms, 0.0);
}

// --- migration cost --------------------------------------------------------------------

TEST(Migration, CountsOnlyMoves) {
  Workload w;
  for (int i = 0; i < 3; ++i) {
    Container c;
    c.id = ContainerId{i};
    w.containers.push_back(c);
  }
  std::vector<Resource> demands(3, {.cpu = 10, .mem_gb = 4, .net_mbps = 5});
  Placement before, after;
  before.server_of = {ServerId{0}, ServerId{1}, ServerId{2}};
  after.server_of = {ServerId{0}, ServerId{5}, ServerId{2}};
  const auto cost = ComputeMigrationCost(before, after, w, demands);
  EXPECT_EQ(cost.migrations, 1);
  EXPECT_GT(cost.total_downtime_ms, 0.0);
  EXPECT_GT(cost.traffic_gb, 4.0);  // ≥ the 4 GB image
}

TEST(Migration, DowntimeScalesWithMemory) {
  Workload w;
  for (int i = 0; i < 2; ++i) {
    Container c;
    c.id = ContainerId{i};
    w.containers.push_back(c);
  }
  Placement before, after;
  before.server_of = {ServerId{0}, ServerId{0}};
  after.server_of = {ServerId{1}, ServerId{1}};
  std::vector<Resource> small(2, {.cpu = 10, .mem_gb = 1, .net_mbps = 5});
  std::vector<Resource> big(2, {.cpu = 10, .mem_gb = 32, .net_mbps = 5});
  const auto c_small = ComputeMigrationCost(before, after, w, small);
  const auto c_big = ComputeMigrationCost(before, after, w, big);
  EXPECT_GT(c_big.total_downtime_ms, c_small.total_downtime_ms * 5.0);
}

TEST(Migration, NoMovesNoCost) {
  Workload w;
  Container c;
  c.id = ContainerId{0};
  w.containers.push_back(c);
  Placement p;
  p.server_of = {ServerId{3}};
  std::vector<Resource> demands(1, {.cpu = 1, .mem_gb = 1, .net_mbps = 1});
  const auto cost = ComputeMigrationCost(p, p, w, demands);
  EXPECT_EQ(cost.migrations, 0);
  EXPECT_DOUBLE_EQ(cost.total_downtime_ms, 0.0);
}

// --- experiment runner -------------------------------------------------------------------

TEST(Runner, ProducesPerEpochMetrics) {
  TwitterScenarioOptions sopts;
  sopts.num_epochs = 5;
  const auto scenario = MakeTwitterCachingScenario(sopts);
  const Topology topo = Topology::Testbed16();
  ExperimentRunner runner(*scenario, topo);
  EPvmScheduler sched;
  const auto result = runner.Run(sched);
  ASSERT_EQ(result.epochs.size(), 5u);
  for (const auto& m : result.epochs) {
    EXPECT_EQ(m.unplaced_containers, 0);
    EXPECT_GT(m.total_watts, 0.0);
    EXPECT_GT(m.mean_tct_ms, 0.0);
    EXPECT_GT(m.rps, 0.0);
    EXPECT_GT(m.energy_per_request_j, 0.0);
  }
  EXPECT_EQ(result.scheduler, "E-PVM");
}

TEST(Runner, EPvmKeepsAllServersActive) {
  TwitterScenarioOptions sopts;
  sopts.num_epochs = 3;
  const auto scenario = MakeTwitterCachingScenario(sopts);
  const Topology topo = Topology::Testbed16();
  ExperimentRunner runner(*scenario, topo);
  EPvmScheduler sched;
  const auto result = runner.Run(sched);
  for (const auto& m : result.epochs) EXPECT_EQ(m.active_servers, 16);
}

TEST(Runner, AverageAggregates) {
  TwitterScenarioOptions sopts;
  sopts.num_epochs = 4;
  const auto scenario = MakeTwitterCachingScenario(sopts);
  const Topology topo = Topology::Testbed16();
  ExperimentRunner runner(*scenario, topo);
  GoldilocksScheduler sched;
  const auto result = runner.Run(sched);
  const auto avg = result.Average();
  double watts = 0;
  for (const auto& m : result.epochs) watts += m.total_watts;
  EXPECT_NEAR(avg.total_watts, watts / 4.0, 1e-6);
  EXPECT_GT(avg.active_servers, 0);
}

TEST(Runner, MigrationsTrackedAcrossEpochs) {
  // A long repartition interval reuses groupings (and their servers) while
  // demands still fit, so it migrates far less than per-epoch re-planning.
  // It cannot be zero: a group that outgrows its server forces a refresh.
  TwitterScenarioOptions sopts;
  sopts.num_epochs = 8;
  const auto scenario = MakeTwitterCachingScenario(sopts);
  const Topology topo = Topology::Testbed16();
  ExperimentRunner runner(*scenario, topo);

  auto total_migrations = [&](int interval) {
    GoldilocksOptions gopts;
    gopts.repartition_interval = interval;
    GoldilocksScheduler sched(gopts);
    const auto result = runner.Run(sched);
    EXPECT_EQ(result.epochs[0].migrations, 0);  // nothing before epoch 0
    int total = 0;
    for (const auto& m : result.epochs) total += m.migrations;
    return total;
  };
  const int stable = total_migrations(100);
  const int churny = total_migrations(1);
  EXPECT_LT(stable, churny / 2 + 1);
}

TEST(Runner, IdleServersDrawNothingWhenGated) {
  TwitterScenarioOptions sopts;
  sopts.num_epochs = 2;
  const auto scenario = MakeTwitterCachingScenario(sopts);
  const Topology topo = Topology::Testbed16();

  RunnerOptions on;
  RunnerOptions off;
  off.power_off_idle_servers = false;
  ExperimentRunner gated(*scenario, topo, on);
  ExperimentRunner ungated(*scenario, topo, off);
  GoldilocksScheduler s1, s2;
  const double gated_watts = gated.Run(s1).Average().server_watts;
  const double ungated_watts = ungated.Run(s2).Average().server_watts;
  EXPECT_LT(gated_watts, ungated_watts);
}

}  // namespace
}  // namespace gl
