// Lightweight invariant checking used across the Goldilocks libraries.
//
// GOLDILOCKS_CHECK is for conditions that indicate a programming error (a
// violated precondition or invariant). It is active in all build types: a
// resource-provisioning decision made on corrupted state is worse than a
// crash, and the checks are cheap relative to placement work.
//
// The comparison forms (GOLDILOCKS_CHECK_LE and friends) print both operand
// values on failure, so a violated bound reports *how far* it was violated,
// not just that it was.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

namespace gl {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::abort();
}

namespace internal {

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

// Best-effort value rendering for failure messages. Anything streamable is
// printed through operator<<; everything else degrades to a placeholder so
// the macros stay usable with arbitrary types.
template <typename T>
std::string CheckValueString(const T& v) {
  if constexpr (IsStreamable<T>::value) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

[[noreturn]] inline void CheckOpFailed(const char* file, int line,
                                       const char* expr,
                                       const std::string& lhs,
                                       const std::string& rhs) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s (lhs=%s, rhs=%s)\n", file,
               line, expr, lhs.c_str(), rhs.c_str());
  std::abort();
}

}  // namespace internal

}  // namespace gl

#define GOLDILOCKS_CHECK(expr)                                \
  do {                                                        \
    if (!(expr)) ::gl::CheckFailed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define GOLDILOCKS_CHECK_MSG(expr, msg)                            \
  do {                                                             \
    if (!(expr)) ::gl::CheckFailed(__FILE__, __LINE__, #expr, msg); \
  } while (0)

// Comparison checks that report both operands. Operands are evaluated once.
#define GOLDILOCKS_CHECK_OP_(lhs, op, rhs)                                  \
  do {                                                                      \
    auto&& gl_check_lhs_ = (lhs);                                           \
    auto&& gl_check_rhs_ = (rhs);                                           \
    if (!(gl_check_lhs_ op gl_check_rhs_)) {                                \
      ::gl::internal::CheckOpFailed(                                        \
          __FILE__, __LINE__, #lhs " " #op " " #rhs,                        \
          ::gl::internal::CheckValueString(gl_check_lhs_),                  \
          ::gl::internal::CheckValueString(gl_check_rhs_));                 \
    }                                                                       \
  } while (0)

#define GOLDILOCKS_CHECK_EQ(lhs, rhs) GOLDILOCKS_CHECK_OP_(lhs, ==, rhs)
#define GOLDILOCKS_CHECK_NE(lhs, rhs) GOLDILOCKS_CHECK_OP_(lhs, !=, rhs)
#define GOLDILOCKS_CHECK_LE(lhs, rhs) GOLDILOCKS_CHECK_OP_(lhs, <=, rhs)
#define GOLDILOCKS_CHECK_LT(lhs, rhs) GOLDILOCKS_CHECK_OP_(lhs, <, rhs)
#define GOLDILOCKS_CHECK_GE(lhs, rhs) GOLDILOCKS_CHECK_OP_(lhs, >=, rhs)
#define GOLDILOCKS_CHECK_GT(lhs, rhs) GOLDILOCKS_CHECK_OP_(lhs, >, rhs)
