// Lightweight invariant checking used across the Goldilocks libraries.
//
// GOLDILOCKS_CHECK is for conditions that indicate a programming error (a
// violated precondition or invariant). It is active in all build types: a
// resource-provisioning decision made on corrupted state is worse than a
// crash, and the checks are cheap relative to placement work.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gl {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace gl

#define GOLDILOCKS_CHECK(expr)                                \
  do {                                                        \
    if (!(expr)) ::gl::CheckFailed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define GOLDILOCKS_CHECK_MSG(expr, msg)                            \
  do {                                                             \
    if (!(expr)) ::gl::CheckFailed(__FILE__, __LINE__, #expr, msg); \
  } while (0)
