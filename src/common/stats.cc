#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gl {

void RunningStats::Add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void RunningStats::Merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(o.n_);
  m2_ += o.m2_ + delta * delta * n * m / (n + m);
  mean_ = (n * mean_ + m * o.mean_) / (n + m);
  n_ += o.n_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void RunningStats::Reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::span<const double> xs, double p) {
  GOLDILOCKS_CHECK(p >= 0.0 && p <= 100.0);
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys) {
  GOLDILOCKS_CHECK(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  GOLDILOCKS_CHECK(hi > lo && bins > 0);
}

void Histogram::Add(double x) {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / w);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  GOLDILOCKS_CHECK_LT(bin, counts_.size());
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin + 1);
}

double Histogram::share(std::size_t bin) const {
  return total_ ? static_cast<double>(count(bin)) /
                      static_cast<double>(total_)
                : 0.0;
}

std::vector<std::pair<double, double>> EmpiricalCdf(
    std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  std::vector<std::pair<double, double>> cdf;
  const auto n = static_cast<double>(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const bool last_of_value = (i + 1 == v.size()) || (v[i + 1] != v[i]);
    if (last_of_value) {
      cdf.emplace_back(v[i], static_cast<double>(i + 1) / n);
    }
  }
  return cdf;
}

}  // namespace gl
