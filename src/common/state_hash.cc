#include "common/state_hash.h"

#include <cstdio>

namespace gl {

std::uint64_t HashAssignment(std::span<const ServerId> server_of) {
  StateHasher h;
  h.MixU64(server_of.size());
  for (const auto s : server_of) h.MixId(s);
  return h.digest();
}

std::uint64_t HashLoads(std::span<const Resource> loads) {
  StateHasher h;
  h.MixU64(loads.size());
  for (const auto& r : loads) h.MixResource(r);
  return h.digest();
}

std::uint64_t EpochStateHash::Combined() const {
  StateHasher h;
  h.MixI32(epoch);
  h.MixU64(placement);
  h.MixU64(loads);
  h.MixU64(power);
  h.MixU64(migration);
  h.MixU64(rng);
  return h.digest();
}

std::string EpochStateHash::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "epoch %4d: combined=%016llx placement=%016llx loads=%016llx "
                "power=%016llx migration=%016llx rng=%016llx",
                epoch, static_cast<unsigned long long>(Combined()),
                static_cast<unsigned long long>(placement),
                static_cast<unsigned long long>(loads),
                static_cast<unsigned long long>(power),
                static_cast<unsigned long long>(migration),
                static_cast<unsigned long long>(rng));
  return buf;
}

const char* FirstDivergentSubsystem(const EpochStateHash& a,
                                    const EpochStateHash& b) {
  if (a.epoch != b.epoch) return "epoch";
  if (a.placement != b.placement) return "placement";
  if (a.loads != b.loads) return "loads";
  if (a.power != b.power) return "power";
  if (a.migration != b.migration) return "migration";
  if (a.rng != b.rng) return "rng";
  return nullptr;
}

}  // namespace gl
