#include "common/table.h"

#include <cstdio>

#include "common/check.h"

namespace gl {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  GOLDILOCKS_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (const auto w : widths) {
    sep.append(w + 2, '-');
    sep += '|';
  }
  out += sep + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

void PrintBanner(const std::string& title) {
  std::string bar(title.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

}  // namespace gl
