#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"
#include "obs/clock.h"

namespace gl {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  {
    MutexLock lock(mu_);
    per_thread_busy_us_.assign(static_cast<std::size_t>(num_threads_), 0.0);
  }
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this, slot = i + 1] { WorkerLoop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    // No ParallelFor / ParallelForChunked may be in flight.
    GOLDILOCKS_CHECK(fn_ == nullptr && cfn_ == nullptr);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (num_threads_ == 1 || count == 1) {
    // Inline fast path: no locks or queues around the tasks themselves;
    // one timing bracket for the whole run (busy == wall, efficiency 1).
    const std::int64_t t0 = obs::MonotonicMicros();
    for (std::size_t i = 0; i < count; ++i) fn(i);
    const auto elapsed =
        static_cast<double>(obs::MonotonicMicros() - t0);
    MutexLock lock(mu_);
    ++batches_;
    tasks_ += count;
    busy_us_ += elapsed;
    batch_wall_us_ += elapsed;
    per_thread_busy_us_[0] += elapsed;
    return;
  }

  mu_.Lock();
  // Re-entrant use would deadlock.
  GOLDILOCKS_CHECK(fn_ == nullptr && cfn_ == nullptr);
  fn_ = &fn;
  count_ = count;
  next_ = 0;
  in_flight_ = 0;
  batch_post_us_ = obs::MonotonicMicros();
  mu_.Unlock();
  work_cv_.NotifyAll();

  mu_.Lock();
  RunBatchTasks(0);  // the calling thread participates
  while (in_flight_ > 0) done_cv_.Wait(mu_);
  fn_ = nullptr;
  count_ = 0;
  ++batches_;
  batch_wall_us_ +=
      static_cast<double>(obs::MonotonicMicros() - batch_post_us_);
  mu_.Unlock();
}

void ThreadPool::ParallelForChunked(
    std::size_t total, std::size_t grain,
    const std::function<void(int, std::size_t, std::size_t)>& fn) {
  if (total == 0) return;
  GOLDILOCKS_CHECK(grain > 0);
  const std::size_t chunks = (total + grain - 1) / grain;
  if (num_threads_ == 1 || chunks == 1) {
    // Inline fast path, mirroring ParallelFor: the caller runs every chunk
    // in index order under one timing bracket (busy == wall).
    const std::int64_t t0 = obs::MonotonicMicros();
    for (std::size_t c = 0; c < chunks; ++c) {
      fn(0, c * grain, std::min(total, (c + 1) * grain));
    }
    const auto elapsed = static_cast<double>(obs::MonotonicMicros() - t0);
    MutexLock lock(mu_);
    ++batches_;
    tasks_ += chunks;
    busy_us_ += elapsed;
    batch_wall_us_ += elapsed;
    per_thread_busy_us_[0] += elapsed;
    return;
  }

  mu_.Lock();
  GOLDILOCKS_CHECK(fn_ == nullptr && cfn_ == nullptr);  // no re-entrancy
  cfn_ = &fn;
  grain_ = grain;
  total_ = total;
  count_ = chunks;
  next_ = 0;
  in_flight_ = 0;
  batch_post_us_ = obs::MonotonicMicros();
  mu_.Unlock();
  work_cv_.NotifyAll();

  mu_.Lock();
  RunBatchTasks(0);  // the calling thread participates
  while (in_flight_ > 0) done_cv_.Wait(mu_);
  cfn_ = nullptr;
  count_ = 0;
  ++batches_;
  batch_wall_us_ +=
      static_cast<double>(obs::MonotonicMicros() - batch_post_us_);
  mu_.Unlock();
}

void ThreadPool::ParallelForWithRng(
    std::size_t count, const Rng& base,
    const std::function<void(std::size_t, Rng&)>& fn) {
  ParallelFor(count, [&base, &fn](std::size_t i) {
    Rng rng = base.Fork(static_cast<std::uint64_t>(i));
    fn(i, rng);
  });
}

ThreadPoolStats ThreadPool::Stats() const {
  ThreadPoolStats stats;
  stats.workers = num_threads_;
  MutexLock lock(mu_);
  stats.batches = batches_;
  stats.tasks = tasks_;
  stats.busy_us = busy_us_;
  stats.queue_wait_us = queue_wait_us_;
  stats.batch_wall_us = batch_wall_us_;
  stats.per_thread_busy_us = per_thread_busy_us_;
  return stats;
}

void ThreadPool::WorkerLoop(int slot) {
  mu_.Lock();
  while (!shutdown_) {
    if ((fn_ != nullptr || cfn_ != nullptr) && next_ < count_) {
      RunBatchTasks(slot);
    } else {
      work_cv_.Wait(mu_);
    }
  }
  mu_.Unlock();
}

void ThreadPool::RunBatchTasks(int slot) {
  while ((fn_ != nullptr || cfn_ != nullptr) && next_ < count_) {
    const std::size_t i = next_++;
    ++in_flight_;
    const auto* fn = fn_;
    const auto* cfn = cfn_;
    const std::size_t grain = grain_;
    const std::size_t total = total_;
    // queue wait = posted-to-claimed: how long the task index sat in the
    // batch before a thread picked it up.
    const std::int64_t claim_us = obs::MonotonicMicros();
    queue_wait_us_ += static_cast<double>(claim_us - batch_post_us_);
    ++tasks_;
    mu_.Unlock();
    if (fn != nullptr) {
      (*fn)(i);
    } else {
      (*cfn)(slot, i * grain, std::min(total, (i + 1) * grain));
    }
    mu_.Lock();
    const auto elapsed =
        static_cast<double>(obs::MonotonicMicros() - claim_us);
    busy_us_ += elapsed;
    per_thread_busy_us_[static_cast<std::size_t>(slot)] += elapsed;
    --in_flight_;
    if (in_flight_ == 0 && next_ >= count_) done_cv_.NotifyAll();
  }
}

}  // namespace gl
