#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace gl {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    GOLDILOCKS_CHECK(fn_ == nullptr);  // no ParallelFor may be in flight
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (num_threads_ == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  mu_.Lock();
  GOLDILOCKS_CHECK(fn_ == nullptr);  // re-entrant use would deadlock
  fn_ = &fn;
  count_ = count;
  next_ = 0;
  in_flight_ = 0;
  mu_.Unlock();
  work_cv_.NotifyAll();

  mu_.Lock();
  RunBatchTasks();  // the calling thread participates
  while (in_flight_ > 0) done_cv_.Wait(mu_);
  fn_ = nullptr;
  count_ = 0;
  mu_.Unlock();
}

void ThreadPool::ParallelForWithRng(
    std::size_t count, const Rng& base,
    const std::function<void(std::size_t, Rng&)>& fn) {
  ParallelFor(count, [&base, &fn](std::size_t i) {
    Rng rng = base.Fork(static_cast<std::uint64_t>(i));
    fn(i, rng);
  });
}

void ThreadPool::WorkerLoop() {
  mu_.Lock();
  while (!shutdown_) {
    if (fn_ != nullptr && next_ < count_) {
      RunBatchTasks();
    } else {
      work_cv_.Wait(mu_);
    }
  }
  mu_.Unlock();
}

void ThreadPool::RunBatchTasks() {
  while (fn_ != nullptr && next_ < count_) {
    const std::size_t i = next_++;
    ++in_flight_;
    const auto* fn = fn_;
    mu_.Unlock();
    (*fn)(i);
    mu_.Lock();
    --in_flight_;
    if (in_flight_ == 0 && next_ >= count_) done_cv_.NotifyAll();
  }
}

}  // namespace gl
