// Deterministic pseudo-random number generation.
//
// Every stochastic component (trace generators, workload jitter, tie-breaking
// in partitioning) takes an explicit Rng so that simulations are reproducible
// from a single seed. The generator is xoshiro256**, seeded via SplitMix64 —
// fast, high quality, and independent of libstdc++'s unspecified
// distributions (we implement the few distributions we need ourselves so the
// bit-stream is identical across standard libraries).
#pragma once

#include <cstdint>

namespace gl {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  std::uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t NextBelow(std::uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Standard normal via polar Box–Muller (caches the spare deviate).
  double Gaussian();
  double Gaussian(double mean, double stddev);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Pareto with shape alpha (> 0) and scale xmin (> 0); classic heavy tail
  // used for flow sizes.
  double Pareto(double xmin, double alpha);

  // Log-normal parameterised by the mean/stddev of the underlying normal.
  double LogNormal(double mu, double sigma);

  // Bernoulli trial.
  bool Chance(double p);

  // Fork an independent stream (e.g., one per trace vertex). Advances this
  // generator by one draw, so successive calls yield distinct streams —
  // which also means a Fork() on a generator reachable from two code paths
  // perturbs both. Single-owner use only.
  Rng Fork();

  // Keyed fork: the `stream_id`-th sub-stream of this generator's current
  // state, derived WITHOUT advancing the parent. Same state + same id gives
  // the same stream (replay-stable); distinct ids give statistically
  // independent streams. This is the sanctioned way to hand randomness to
  // parallel tasks (ThreadPool::ParallelForWithRng): the parent cursor — and
  // therefore StateHash() and every replay digest — is untouched, and a
  // const parent may be forked concurrently from any number of threads.
  [[nodiscard]] Rng Fork(std::uint64_t stream_id) const;

  // Digest of the full generator state — stream position plus the cached
  // Gaussian spare. Two generators with equal digests produce identical
  // futures; the reproducibility gate hashes this per epoch to pin RNG
  // cursors across replays.
  [[nodiscard]] std::uint64_t StateHash() const;

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace gl
