// Deterministic iteration over unordered containers.
//
// std::unordered_map/set are the right tool for O(1) membership and
// accumulation, but their *iteration order* is a function of the hash
// function, the bucket count and the insertion history — none of which the
// language pins down. Any decision-making loop (picking a "best" group,
// emitting findings, breaking ties) that ranges over an unordered container
// can therefore silently change behaviour across standard libraries,
// compiler versions, or even runs. The determinism contract (DESIGN.md §8)
// bans such loops in src/; `tools/gl_lint` enforces the ban.
//
// This header is the sanctioned escape hatch: keep the unordered container
// for accumulation, then iterate a sorted snapshot. The snapshot copies keys
// (and optionally values), which is fine at the sizes these maps reach in
// decision paths (tens to a few thousand entries) and is dwarfed by the work
// done per element.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace gl {

// All keys of an associative container, sorted ascending. Works for any map
// or set whose key type is totally ordered (ints, strong Ids, strings).
template <typename Container>
[[nodiscard]] std::vector<typename Container::key_type> SortedKeys(
    const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  for (const auto& entry : c) {  // gl-lint: allow(unordered-iter)
    if constexpr (requires { entry.first; }) {
      keys.push_back(entry.first);
    } else {
      keys.push_back(entry);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// All (key, value) pairs of a map, as a vector sorted by key ascending.
// Values are copied; use SortedKeys + lookup when values are heavy.
template <typename Map>
[[nodiscard]] std::vector<
    std::pair<typename Map::key_type, typename Map::mapped_type>>
SortedItems(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items;
  items.reserve(m.size());
  for (const auto& [k, v] : m) {  // gl-lint: allow(unordered-iter)
    items.emplace_back(k, v);
  }
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

// Lookup in a SortedItems() snapshot: the value for `key`, or `fallback`.
template <typename Key, typename Value>
[[nodiscard]] Value ValueOr(const std::vector<std::pair<Key, Value>>& items,
                            const Key& key, Value fallback) {
  const auto it = std::lower_bound(
      items.begin(), items.end(), key,
      [](const auto& item, const Key& k) { return item.first < k; });
  return (it != items.end() && it->first == key) ? it->second : fallback;
}

}  // namespace gl
