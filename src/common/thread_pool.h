// Fixed-size thread pool with deterministic, index-slotted parallel loops.
//
// Parallelism in this tree must never change results (DESIGN.md §9): the
// same seed has to produce bit-identical epochs at threads=1 and threads=N.
// The pool's only primitive is therefore ParallelFor(count, fn): task i is
// fn(i), every index is claimed exactly once, and each task writes only its
// own caller-owned result slot. Merging happens on the calling thread, in
// index order, after the loop — so the output never depends on which worker
// ran which index or in what order tasks finished.
//
// Stochastic tasks take their randomness from a keyed sub-stream,
// base.Fork(i) (common/rng.h): the parent cursor is never advanced, so
// replay hashes are unchanged and no Rng is ever shared across threads.
//
// The pool owns num_threads-1 workers; the calling thread participates in
// every loop, so ThreadPool(1) spawns nothing and runs inline — the serial
// path and the parallel path are the same code. Tasks must not throw
// (failures in this codebase abort via GOLDILOCKS_CHECK) and must not call
// ParallelFor on the same pool re-entrantly; create a nested pool instead.
//
// This file is the sanctioned home for raw std::thread (gl_lint GL006):
// everything else fans out through a ThreadPool.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace gl {

class ThreadPool {
 public:
  // Clamped to >= 1. The pool spawns num_threads-1 workers; a pool of one
  // is a plain loop with no threads, locks or queues touched.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  // Runs fn(0) .. fn(count-1), each index exactly once, and returns when
  // all calls have finished. The calling thread executes tasks too. fn must
  // be safe to invoke concurrently from multiple threads for distinct
  // indices; writes should go to per-index slots owned by the caller.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn)
      GL_EXCLUDES(mu_);

  // ParallelFor that hands task i the replay-stable sub-stream base.Fork(i).
  // `base` is read-only: forking is keyed and does not advance the parent.
  void ParallelForWithRng(std::size_t count, const Rng& base,
                          const std::function<void(std::size_t, Rng&)>& fn)
      GL_EXCLUDES(mu_);

 private:
  void WorkerLoop() GL_EXCLUDES(mu_);
  // Claims and runs tasks of the current batch until none remain unclaimed.
  // Drops the lock around each fn(i) call.
  void RunBatchTasks() GL_REQUIRES(mu_);

  const int num_threads_;

  Mutex mu_;
  CondVar work_cv_;  // signalled when a batch is posted or on shutdown
  CondVar done_cv_;  // signalled when the last in-flight task finishes

  // One batch at a time: the active loop's bounds and claim cursor.
  const std::function<void(std::size_t)>* fn_ GL_GUARDED_BY(mu_) = nullptr;
  std::size_t count_ GL_GUARDED_BY(mu_) = 0;
  std::size_t next_ GL_GUARDED_BY(mu_) = 0;       // first unclaimed index
  std::size_t in_flight_ GL_GUARDED_BY(mu_) = 0;  // claimed, not yet done
  bool shutdown_ GL_GUARDED_BY(mu_) = false;

  // Only touched by the owning thread (constructor / destructor).
  std::vector<std::thread> workers_;
};

}  // namespace gl
