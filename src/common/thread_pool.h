// Fixed-size thread pool with deterministic, index-slotted parallel loops.
//
// Parallelism in this tree must never change results (DESIGN.md §9): the
// same seed has to produce bit-identical epochs at threads=1 and threads=N.
// The pool's only primitive is therefore ParallelFor(count, fn): task i is
// fn(i), every index is claimed exactly once, and each task writes only its
// own caller-owned result slot. Merging happens on the calling thread, in
// index order, after the loop — so the output never depends on which worker
// ran which index or in what order tasks finished.
//
// Stochastic tasks take their randomness from a keyed sub-stream,
// base.Fork(i) (common/rng.h): the parent cursor is never advanced, so
// replay hashes are unchanged and no Rng is ever shared across threads.
//
// The pool owns num_threads-1 workers; the calling thread participates in
// every loop, so ThreadPool(1) spawns nothing and runs inline — the serial
// path and the parallel path are the same code. Tasks must not throw
// (failures in this codebase abort via GOLDILOCKS_CHECK) and must not call
// ParallelFor on the same pool re-entrantly; create a nested pool instead.
//
// This file is the sanctioned home for raw std::thread (gl_lint GL006):
// everything else fans out through a ThreadPool.
//
// The pool also keeps per-worker utilization telemetry (busy / queue-wait /
// batch wall), aggregated under the pool mutex and exposed via Stats().
// All of it is wall-clock derived and therefore informational only
// (DESIGN.md §10): callers may publish it on the kInformational side of the
// metrics registry, but it must never be hashed or steer a decision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace gl {

// Cumulative utilization snapshot over every ParallelFor a pool has run.
// Slot 0 of per_thread_busy_us is the calling thread (it participates in
// every loop); slots 1..workers-1 are the pool's own worker threads.
struct ThreadPoolStats {
  int workers = 1;
  std::uint64_t batches = 0;  // ParallelFor invocations (incl. inline runs)
  std::uint64_t tasks = 0;    // fn(i) calls
  double busy_us = 0.0;       // total time inside fn(i), all threads
  double queue_wait_us = 0.0; // posted-to-claimed latency, summed over tasks
  double batch_wall_us = 0.0; // per-batch wall (post to last completion)
  std::vector<double> per_thread_busy_us;

  // busy / (workers × wall): 1.0 = every thread busy for every batch's
  // whole duration. The serial fast path is 1.0 by construction.
  [[nodiscard]] double ParallelEfficiency() const {
    const double denom = static_cast<double>(workers) * batch_wall_us;
    return denom > 0.0 ? busy_us / denom : 1.0;
  }
  // Thread-time inside batches not spent running tasks.
  [[nodiscard]] double IdleUs() const {
    const double idle =
        static_cast<double>(workers) * batch_wall_us - busy_us;
    return idle > 0.0 ? idle : 0.0;
  }
};

class ThreadPool {
 public:
  // Clamped to >= 1. The pool spawns num_threads-1 workers; a pool of one
  // is a plain loop with no threads, locks or queues touched.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  // Runs fn(0) .. fn(count-1), each index exactly once, and returns when
  // all calls have finished. The calling thread executes tasks too. fn must
  // be safe to invoke concurrently from multiple threads for distinct
  // indices; writes should go to per-index slots owned by the caller.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn)
      GL_EXCLUDES(mu_);

  // ParallelFor that hands task i the replay-stable sub-stream base.Fork(i).
  // `base` is read-only: forking is keyed and does not advance the parent.
  void ParallelForWithRng(std::size_t count, const Rng& base,
                          const std::function<void(std::size_t, Rng&)>& fn)
      GL_EXCLUDES(mu_);

  // Chunked variant for fine-grained loops: the index space [0, total) is
  // cut into fixed runs of `grain` indices (the last run may be short) and
  // each task is one run, so per-index loops stop paying a claim/retire
  // round-trip per element. Chunk boundaries depend only on `total` and
  // `grain` — never on the worker count — so per-chunk partial results keyed
  // by chunk index fold deterministically at every width (DESIGN.md §9).
  // fn receives the participation slot (0 = caller) alongside the chunk's
  // [begin, end); slot-keyed scratch is safe only for state the body fully
  // re-initializes per chunk, because the slot→chunk mapping is
  // scheduling-dependent.
  void ParallelForChunked(
      std::size_t total, std::size_t grain,
      const std::function<void(int slot, std::size_t begin, std::size_t end)>&
          fn) GL_EXCLUDES(mu_);

  // Utilization accumulated over every loop this pool has run so far.
  // Informational only — never hashed, never a decision input.
  [[nodiscard]] ThreadPoolStats Stats() const GL_EXCLUDES(mu_);

 private:
  // `slot` is the thread's index into per_thread_busy_us (0 = caller).
  void WorkerLoop(int slot) GL_EXCLUDES(mu_);
  // Claims and runs tasks of the current batch until none remain unclaimed.
  // Drops the lock around each fn(i) call.
  void RunBatchTasks(int slot) GL_REQUIRES(mu_);

  const int num_threads_;

  mutable Mutex mu_;
  CondVar work_cv_;  // signalled when a batch is posted or on shutdown
  CondVar done_cv_;  // signalled when the last in-flight task finishes

  // One batch at a time: the active loop's bounds and claim cursor. Exactly
  // one of fn_/cfn_ is set while a batch runs; count_ is the task count
  // (indices for fn_, chunks for cfn_).
  const std::function<void(std::size_t)>* fn_ GL_GUARDED_BY(mu_) = nullptr;
  const std::function<void(int, std::size_t, std::size_t)>* cfn_
      GL_GUARDED_BY(mu_) = nullptr;
  std::size_t grain_ GL_GUARDED_BY(mu_) = 0;
  std::size_t total_ GL_GUARDED_BY(mu_) = 0;
  std::size_t count_ GL_GUARDED_BY(mu_) = 0;
  std::size_t next_ GL_GUARDED_BY(mu_) = 0;       // first unclaimed index
  std::size_t in_flight_ GL_GUARDED_BY(mu_) = 0;  // claimed, not yet done
  bool shutdown_ GL_GUARDED_BY(mu_) = false;

  // Telemetry (informational). Accumulated under mu_ at points that already
  // hold it, so the task fast path pays one clock read per claim/retire.
  std::int64_t batch_post_us_ GL_GUARDED_BY(mu_) = 0;
  std::uint64_t batches_ GL_GUARDED_BY(mu_) = 0;
  std::uint64_t tasks_ GL_GUARDED_BY(mu_) = 0;
  double busy_us_ GL_GUARDED_BY(mu_) = 0.0;
  double queue_wait_us_ GL_GUARDED_BY(mu_) = 0.0;
  double batch_wall_us_ GL_GUARDED_BY(mu_) = 0.0;
  std::vector<double> per_thread_busy_us_ GL_GUARDED_BY(mu_);

  // Only touched by the owning thread (constructor / destructor).
  std::vector<std::thread> workers_;
};

}  // namespace gl
