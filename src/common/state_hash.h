// Order-sensitive state digests for the reproducibility gate.
//
// A Goldilocks experiment is trustworthy only if the same seed yields
// bit-identical epochs; the paper's power/TCT curves are cross-policy
// comparisons that a silent nondeterminism (hash-order iteration, an
// unseeded RNG, an uninitialised double) would quietly invalidate. The
// StateHasher turns the simulation state after each epoch into a small
// fixed digest so two runs can be compared cheaply — online by
// EpochController/ExperimentRunner (opt-in, like the InvariantAuditor) and
// offline by the `tools/gl_replay` CLI, which runs a scenario twice and
// reports the first divergent epoch and subsystem.
//
// The hash is FNV-1a over a canonical byte stream: 64-bit little-endian
// words, doubles by IEEE-754 bit pattern with -0.0 canonicalised to +0.0
// (they compare equal but differ in bits). NaNs are hashed as their bit
// pattern — a NaN in simulation state is itself a bug the digest should
// expose, not mask.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>

#include "common/ids.h"
#include "common/resource.h"

namespace gl {

class StateHasher {
 public:
  static constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

  void MixU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
    }
  }
  void MixI64(std::int64_t v) { MixU64(static_cast<std::uint64_t>(v)); }
  void MixI32(std::int32_t v) {
    MixU64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  void MixDouble(double v GL_UNITS(any)) {
    if (v == 0.0) v = 0.0;  // canonicalise -0.0
    MixU64(std::bit_cast<std::uint64_t>(v));
  }
  void MixResource(const Resource& r) {
    MixDouble(r.cpu);
    MixDouble(r.mem_gb);
    MixDouble(r.net_mbps);
  }
  template <typename Tag>
  void MixId(Id<Tag> id) {
    MixI32(id.value());
  }

  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

// Digest of a full container → server assignment (Placement::server_of:
// length + every slot, so swapped, truncated and extended placements all
// hash differently).
[[nodiscard]] std::uint64_t HashAssignment(std::span<const ServerId> server_of);

// Digest of per-server aggregated demand vectors.
[[nodiscard]] std::uint64_t HashLoads(std::span<const Resource> loads);

// Per-epoch digest split by subsystem so a replay diff can name what
// diverged first, not just that something did.
struct EpochStateHash {
  int epoch = 0;
  std::uint64_t placement = 0;  // container → server map
  std::uint64_t loads = 0;      // per-server aggregated demand
  std::uint64_t power = 0;      // server/network/total watt totals
  std::uint64_t migration = 0;  // migration plan (steps, makespan, bytes)
  std::uint64_t rng = 0;        // scheduler RNG cursors (Scheduler::StateDigest)

  [[nodiscard]] std::uint64_t Combined() const;
  friend bool operator==(const EpochStateHash&, const EpochStateHash&) =
      default;
  // "epoch 12: combined=0123456789abcdef placement=... ..." (hex).
  [[nodiscard]] std::string ToString() const;
};

// Name of the first subsystem whose digest differs between `a` and `b`
// ("placement", "loads", "power", "migration", "rng"), or nullptr when the
// two records are identical. Checked in causal order: a placement divergence
// explains every downstream one.
[[nodiscard]] const char* FirstDivergentSubsystem(const EpochStateHash& a,
                                                  const EpochStateHash& b);

}  // namespace gl
