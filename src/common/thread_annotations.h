// Compile-time race-safety annotations (Clang thread-safety analysis).
//
// The determinism contract (DESIGN.md §8) makes nondeterminism a build
// failure; this header extends the same idea to data races. Every mutex in
// the tree names the state it guards with GL_GUARDED_BY, every function
// that needs a lock held declares it with GL_REQUIRES, and Clang's
// -Wthread-safety (an error on Clang builds, see the top-level
// CMakeLists.txt) proves at compile time that no annotated field is touched
// without its lock. GCC compiles the macros away; the analysis runs in the
// dedicated Clang CI job.
//
// Only the subset this codebase uses is defined. The vocabulary follows
// Clang's capability model:
//   GL_CAPABILITY      — marks a type as a lockable capability (mutexes).
//   GL_GUARDED_BY(m)   — field may only be read/written with m held.
//   GL_PT_GUARDED_BY(m)— pointee of a pointer field is guarded by m.
//   GL_REQUIRES(m)     — caller must hold m before calling.
//   GL_ACQUIRE(m)      — function acquires m and does not release it.
//   GL_RELEASE(m)      — function releases m.
//   GL_EXCLUDES(m)     — caller must NOT hold m (deadlock prevention).
//   GL_SCOPED_CAPABILITY— RAII lock guard types.
//   GL_RETURN_CAPABILITY(m) — function returns a reference to capability m.
//   GL_NO_THREAD_SAFETY_ANALYSIS — sanctioned escape hatch; must carry a
//                                  comment justifying why analysis is off.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define GL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define GL_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

#define GL_CAPABILITY(x) GL_THREAD_ANNOTATION_(capability(x))
#define GL_SCOPED_CAPABILITY GL_THREAD_ANNOTATION_(scoped_lockable)
#define GL_GUARDED_BY(x) GL_THREAD_ANNOTATION_(guarded_by(x))
#define GL_PT_GUARDED_BY(x) GL_THREAD_ANNOTATION_(pt_guarded_by(x))
#define GL_ACQUIRED_BEFORE(...) \
  GL_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define GL_ACQUIRED_AFTER(...) \
  GL_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define GL_REQUIRES(...) \
  GL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define GL_REQUIRES_SHARED(...) \
  GL_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define GL_ACQUIRE(...) \
  GL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define GL_ACQUIRE_SHARED(...) \
  GL_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define GL_RELEASE(...) \
  GL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define GL_RELEASE_SHARED(...) \
  GL_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define GL_EXCLUDES(...) GL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define GL_RETURN_CAPABILITY(x) GL_THREAD_ANNOTATION_(lock_returned(x))
#define GL_NO_THREAD_SAFETY_ANALYSIS \
  GL_THREAD_ANNOTATION_(no_thread_safety_analysis)
