// Minimal streaming JSON writer (header-only, no dependencies).
//
// One escaping implementation for everything in the tree that emits JSON:
// the obs RunLogger (JSONL epoch records), the Chrome-trace exporter, and
// the --json bench records that previously hand-rolled fprintf emission in
// bench_common.h. The writer appends to a caller-owned std::string; commas
// and key/value alternation are handled internally, so call sites read as a
// flat sequence of Key()/value calls.
//
// Doubles are written with %.17g (shortest form that round-trips an IEEE
// double), so a deterministic value serializes identically on every run —
// a requirement for the byte-identical JSONL streams DESIGN.md §10 promises.
// Non-finite doubles have no JSON representation and are emitted as null.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace gl {

class JsonWriter {
 public:
  explicit JsonWriter(std::string* out) : out_(out) {
    GOLDILOCKS_CHECK(out != nullptr);
  }

  void BeginObject() {
    Separate();
    out_->push_back('{');
    first_.push_back(true);
  }
  void EndObject() { Close('}'); }
  void BeginArray() {
    Separate();
    out_->push_back('[');
    first_.push_back(true);
  }
  void EndArray() { Close(']'); }

  // Must alternate with a value inside an object.
  void Key(std::string_view k) {
    Separate();
    AppendQuoted(k);
    out_->push_back(':');
    pending_key_ = true;
  }

  void String(std::string_view v) {
    Separate();
    AppendQuoted(v);
  }
  void Int(std::int64_t v) {
    Separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out_->append(buf);
  }
  void UInt(std::uint64_t v) {
    Separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_->append(buf);
  }
  void Double(double v) {
    Separate();
    if (v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
      out_->append("null");  // NaN / ±inf have no JSON spelling
      return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_->append(buf);
  }
  void Bool(bool v) {
    Separate();
    out_->append(v ? "true" : "false");
  }
  void Null() {
    Separate();
    out_->append("null");
  }

  // 64-bit hash as a fixed-width hex string (JSON numbers are doubles and
  // cannot carry 64 bits losslessly).
  void Hex64(std::uint64_t v) {
    Separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "\"%016" PRIx64 "\"", v);
    out_->append(buf);
  }

  static void AppendEscaped(std::string* out, std::string_view sv) {
    for (const char c : sv) {
      switch (c) {
        case '"':
          out->append("\\\"");
          break;
        case '\\':
          out->append("\\\\");
          break;
        case '\n':
          out->append("\\n");
          break;
        case '\r':
          out->append("\\r");
          break;
        case '\t':
          out->append("\\t");
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out->append(buf);
          } else {
            out->push_back(c);
          }
      }
    }
  }

 private:
  // Emits the separating comma for the current container, unless this value
  // completes a pending "key":.
  void Separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (first_.empty()) return;  // top-level value
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_->push_back(',');
    }
  }

  void Close(char c) {
    GOLDILOCKS_CHECK(!first_.empty());
    first_.pop_back();
    out_->push_back(c);
  }

  void AppendQuoted(std::string_view s) {
    out_->push_back('"');
    AppendEscaped(out_, s);
    out_->push_back('"');
  }

  std::string* out_;
  std::vector<bool> first_;   // per open container: no element emitted yet
  bool pending_key_ = false;  // a Key() awaits its value
};

}  // namespace gl
