// Strong integer identifier types.
//
// Servers, switches, containers, links and partition groups all have integer
// ids; mixing them up silently is a classic source of placement bugs. Each id
// kind is a distinct type with no implicit conversions between kinds.
#pragma once

#include <cstdint>
#include <functional>

namespace gl {

// Tag-parameterised strong id. Comparable, hashable, printable via value().
template <typename Tag>
class Id {
 public:
  using underlying_type = std::int32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

  static constexpr Id invalid() { return Id{-1}; }

 private:
  underlying_type value_ = -1;
};

struct ContainerTag {};
struct ServerTag {};
struct SwitchTag {};
struct LinkTag {};
struct GroupTag {};
struct NodeTag {};  // generic topology node (server or switch)

using ContainerId = Id<ContainerTag>;
using ServerId = Id<ServerTag>;
using SwitchId = Id<SwitchTag>;
using LinkId = Id<LinkTag>;
using GroupId = Id<GroupTag>;
using NodeId = Id<NodeTag>;

}  // namespace gl

namespace std {
template <typename Tag>
struct hash<gl::Id<Tag>> {
  size_t operator()(gl::Id<Tag> id) const noexcept {
    return std::hash<typename gl::Id<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
