// Multi-dimensional resource vectors.
//
// Following Sec. III-A of the paper, every container demand and server
// capacity is a 3-vector ⟨CPU, Memory, Network⟩:
//   * cpu      — CPU utilization in "core-percent" units. One fully-busy core
//                is 100.0; a 24-core server has capacity 2400.0. Table II's
//                "33%" for a Memcached container is cpu = 33.0.
//   * mem_gb   — resident memory in GiB.
//   * net_mbps — NIC bandwidth in Mbit/s.
// Disk is deliberately not modelled (the paper assumes it is not limiting).
#pragma once

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"

// Dimension annotation for gl_analyze's GL014 unit-confusion rule
// (DESIGN.md §13). Compiles to nothing; the analyzer's token scanner reads
// it off declarations to seed the dimension lattice:
//
//   double budget_w GL_UNITS(watts) = 0.0;   // local or member
//   double Power(double u GL_UNITS(dimensionless)) GL_UNITS(watts);
//
// Recognized dimensions: cores, bytes, bits_per_sec, watts, ms, epochs,
// count, dimensionless. The special dimension `any` marks a deliberately
// polymorphic value (a tolerance helper or statistic over arbitrary
// series): every incoming dimension is accepted without conflict.
#ifndef GL_UNITS
#define GL_UNITS(dim)
#endif

namespace gl {

// Shared floating-point tolerance for resource arithmetic. Demands and loads
// are sums of many doubles, so comparisons against capacity must absorb
// accumulation error. Every component that checks "does this fit" —
// Resource::FitsIn, the InvariantAuditor, the Virtual Cluster placer — uses
// this one constant, so the checker and the checked code cannot drift apart.
inline constexpr double kResourceEps = 1e-6;

// Sanctioned epsilon comparison: value <= cap with kResourceEps relative
// (scaled by cap) plus kResourceEps absolute slack.
[[nodiscard]] constexpr bool WithinCap(double value GL_UNITS(any),
                                       double cap GL_UNITS(any)) {
  return value <= cap * (1.0 + kResourceEps) + kResourceEps;
}

// Sanctioned epsilon equality for accumulated doubles.
[[nodiscard]] constexpr bool ApproxEq(double a GL_UNITS(any),
                                      double b GL_UNITS(any)) {
  const double diff = a < b ? b - a : a - b;
  const double mag = std::max(a < 0.0 ? -a : a, b < 0.0 ? -b : b);
  return diff <= mag * kResourceEps + kResourceEps;
}

struct Resource {
  double cpu GL_UNITS(cores) = 0.0;
  double mem_gb GL_UNITS(bytes) = 0.0;
  double net_mbps GL_UNITS(bits_per_sec) = 0.0;

  constexpr Resource& operator+=(const Resource& o) {
    cpu += o.cpu;
    mem_gb += o.mem_gb;
    net_mbps += o.net_mbps;
    return *this;
  }
  constexpr Resource& operator-=(const Resource& o) {
    cpu -= o.cpu;
    mem_gb -= o.mem_gb;
    net_mbps -= o.net_mbps;
    return *this;
  }
  friend constexpr Resource operator+(Resource a, const Resource& b) {
    return a += b;
  }
  friend constexpr Resource operator-(Resource a, const Resource& b) {
    return a -= b;
  }
  friend constexpr Resource operator*(Resource a, double s) {
    a.cpu *= s;
    a.mem_gb *= s;
    a.net_mbps *= s;
    return a;
  }
  friend constexpr bool operator==(const Resource&, const Resource&) = default;

  // Component-wise "fits into": every dimension of *this must be <= cap.
  // kResourceEps absorbs floating-point accumulation error; a demand that
  // exceeds capacity by less than one part in a million is considered to fit.
  [[nodiscard]] constexpr bool FitsIn(const Resource& cap) const {
    return WithinCap(cpu, cap.cpu) && WithinCap(mem_gb, cap.mem_gb) &&
           WithinCap(net_mbps, cap.net_mbps);
  }

  // Largest utilization fraction across dimensions when placed on `cap`.
  // Dimensions with zero capacity contribute only if demanded.
  [[nodiscard]] double DominantShare(const Resource& cap) const
      GL_UNITS(dimensionless) {
    double worst GL_UNITS(dimensionless) = 0.0;
    auto dim = [&worst](double demand, double capacity) {
      if (capacity > 0.0) {
        worst = std::max(worst, demand / capacity);
      } else if (demand > 0.0) {
        worst = std::max(worst, 1e9);  // demanded but unavailable
      }
    };
    dim(cpu, cap.cpu);
    dim(mem_gb, cap.mem_gb);
    dim(net_mbps, cap.net_mbps);
    return worst;
  }

  // Scalar magnitude used for size-ordering in FFD-style packers (mPP).
  // Uses the L1 norm of the demand normalised by a reference capacity so the
  // three dimensions are commensurable.
  [[nodiscard]] double NormalizedL1(const Resource& ref) const
      GL_UNITS(dimensionless) {
    double s GL_UNITS(dimensionless) = 0.0;
    if (ref.cpu > 0) s += cpu / ref.cpu;
    if (ref.mem_gb > 0) s += mem_gb / ref.mem_gb;
    if (ref.net_mbps > 0) s += net_mbps / ref.net_mbps;
    return s;
  }

  [[nodiscard]] constexpr bool IsZero() const {
    return cpu == 0.0 && mem_gb == 0.0 && net_mbps == 0.0;
  }

  [[nodiscard]] std::string ToString() const;
};

inline std::string Resource::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "<cpu=%.1f, mem=%.1fG, net=%.1fMbps>", cpu,
                mem_gb, net_mbps);
  return buf;
}

// Component-wise max, used when sizing capacity headroom.
[[nodiscard]] constexpr Resource Max(const Resource& a, const Resource& b) {
  return Resource{std::max(a.cpu, b.cpu), std::max(a.mem_gb, b.mem_gb),
                  std::max(a.net_mbps, b.net_mbps)};
}

}  // namespace gl
