// Plain-text table rendering for the benchmark harness.
//
// Every bench binary reproduces a paper table or figure by printing rows; this
// helper keeps the output aligned and uniform so EXPERIMENTS.md can quote it
// directly.
#pragma once

#include <string>
#include <vector>

namespace gl {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; each cell is already formatted. Row width must match headers.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(long long v);
  static std::string Pct(double fraction, int precision = 1);

  [[nodiscard]] std::string Render() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner for bench output.
void PrintBanner(const std::string& title);

}  // namespace gl
