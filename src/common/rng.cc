#include "common/rng.h"

#include <cmath>

#include "common/check.h"
#include "common/state_hash.h"

namespace gl {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits → uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextBelow(std::uint64_t n) {
  GOLDILOCKS_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  GOLDILOCKS_CHECK_LE(lo, hi);
  return lo + static_cast<std::int64_t>(
                  NextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  has_spare_ = true;
  return u * m;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double mean) {
  GOLDILOCKS_CHECK_GT(mean, 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::Pareto(double xmin, double alpha) {
  GOLDILOCKS_CHECK(xmin > 0.0 && alpha > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return xmin / std::pow(u, 1.0 / alpha);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

bool Rng::Chance(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

Rng Rng::Fork(std::uint64_t stream_id) const {
  // Golden-ratio odd multiplier keeps distinct ids at distinct seeds; the
  // constructor's SplitMix64 stages decorrelate neighbouring ids. +1 keeps
  // stream 0 from collapsing onto the bare state digest.
  return Rng(StateHash() ^ ((stream_id + 1) * 0x9e3779b97f4a7c15ULL));
}

std::uint64_t Rng::StateHash() const {
  StateHasher h;
  for (const auto s : s_) h.MixU64(s);
  h.MixDouble(has_spare_ ? spare_ : 0.0);
  h.MixU64(has_spare_ ? 1 : 0);
  return h.digest();
}

}  // namespace gl
