// Annotated mutex and condition-variable wrappers.
//
// Clang's thread-safety analysis only tracks locks whose type carries the
// `capability` attribute. libstdc++'s std::mutex is unannotated, so
// GL_GUARDED_BY(some_std_mutex) would be rejected under -Wthread-safety;
// these thin wrappers attach the attributes without changing behaviour.
// All concurrent code in the tree uses gl::Mutex / gl::MutexLock /
// gl::CondVar — gl_lint's GL008 rule enforces that every class holding a
// mutex names the state it guards with GL_GUARDED_BY.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace gl {

class CondVar;

// Exclusive lock. Non-recursive, non-copyable, same cost as std::mutex.
class GL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GL_ACQUIRE() { mu_.lock(); }
  void Unlock() GL_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII guard, scoped-capability annotated so the analysis knows the lock is
// held for the guard's lifetime.
class GL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GL_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() GL_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to gl::Mutex. Wait atomically releases the mutex
// while sleeping and reacquires it before returning; the GL_REQUIRES
// contract makes call-without-lock a compile error on Clang.
class CondVar {
 public:
  void Wait(Mutex& mu) GL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the (reacquired) mutex
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gl
