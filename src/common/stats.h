// Streaming and batch statistics used across the simulator and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gl {

// Welford's online algorithm: numerically stable mean/variance without
// storing samples.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& o);
  void Reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile of a sample set with linear interpolation between order
// statistics; p in [0, 100]. Copies and sorts internally.
double Percentile(std::span<const double> xs, double p);

// Pearson correlation coefficient of two equal-length series. Returns 0 for
// degenerate inputs (length < 2 or zero variance).
double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

// Histogram with fixed-width bins over [lo, hi); values outside are clamped
// to the edge bins. Used to reproduce the distribution plots (Fig 1b, Fig 5).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  // Fraction of mass in the bin, 0 if empty histogram.
  [[nodiscard]] double share(std::size_t bin) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Empirical CDF points (x, F(x)) of a sample, one point per distinct value.
std::vector<std::pair<double, double>> EmpiricalCdf(
    std::span<const double> xs);

}  // namespace gl
