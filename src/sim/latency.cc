#include "sim/latency.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace gl {

LatencyModel::LatencyModel(const Topology& topo, LatencyOptions opts)
    : topo_(topo), opts_(opts) {}

double LatencyModel::QueueFactor(double utilization GL_UNITS(dimensionless))
    const GL_UNITS(dimensionless) {
  const double u GL_UNITS(dimensionless) =
      std::min(utilization * (1.0 + opts_.burst_amplification), 0.999);
  if (u <= 0.0) return 1.0;
  // Multi-core servers behave like M/M/c, not M/M/1: queueing delay is
  // negligible until high utilization, then rises sharply. The u⁴ factor
  // approximates the Erlang-C probability-of-wait for a many-core box —
  // this is what makes the PEE point (70%) a *safe* operating point while
  // 95% packing is not.
  const double u4 GL_UNITS(dimensionless) = u * u * u * u;
  return std::min(1.0 + u4 / (1.0 - u), opts_.max_queue_factor);
}

double LatencyModel::CongestionFactor(
    double link_utilization GL_UNITS(dimensionless)) const
    GL_UNITS(dimensionless) {
  const double rho GL_UNITS(dimensionless) =
      std::min(std::max(link_utilization, 0.0), 0.999);
  return std::min(1.0 / (1.0 - rho), opts_.max_congestion_factor);
}

TctResult LatencyModel::ComputeTct(const Workload& workload,
                                   const Placement& placement,
                                   std::span<const Resource> demands,
                                   std::span<const std::uint8_t> active,
                                   const TrafficEstimate& traffic) const {
  // Server busyness: CPU share and NIC share (cross-server traffic only —
  // colocated chatter costs no NIC), whichever dominates.
  const int num_servers = topo_.num_servers();
  std::vector<double> cpu_load GL_UNITS(cores)(static_cast<std::size_t>(num_servers), 0.0);
  for (std::size_t i = 0; i < workload.containers.size(); ++i) {
    const auto s = placement.server_of.size() > i ? placement.server_of[i]
                                                  : ServerId::invalid();
    if (!s.valid() || !active[i]) continue;
    cpu_load[static_cast<std::size_t>(s.value())] += demands[i].cpu;
  }
  auto server_utilization = [&](ServerId s) {
    const auto& cap = topo_.server_capacity(s);
    const double cpu_u =
        cap.cpu > 0.0 ? cpu_load[static_cast<std::size_t>(s.value())] / cap.cpu
                      : 0.0;
    const NodeId leaf = topo_.server_node(s);
    const double nic_u = traffic.UplinkUtilization(topo_, leaf);
    return std::max(cpu_u, nic_u);
  };

  TctResult result;
  std::vector<double> samples GL_UNITS(ms);
  double weighted_sum = 0.0;
  double weight_total GL_UNITS(count) = 0.0;
  int violations = 0;

  for (const auto& e : workload.edges) {
    if (!e.is_query || e.flows <= 0.0) continue;
    const auto ia = static_cast<std::size_t>(e.a.value());
    const auto ib = static_cast<std::size_t>(e.b.value());
    if (!active[ia] || !active[ib]) continue;
    const ServerId sa = placement.server_of[ia];
    const ServerId sb = placement.server_of[ib];
    if (!sa.valid() || !sb.valid()) continue;

    const AppProfile& responder = GetAppProfile(workload.containers[ib].app);
    const double u GL_UNITS(dimensionless) =
        std::max(server_utilization(sa), server_utilization(sb));
    double tct GL_UNITS(ms) = responder.base_service_ms * QueueFactor(u);

    // Network round trip: hop latency inflated by per-link congestion.
    if (sa != sb) {
      NodeId na = topo_.server_node(sa);
      NodeId nb = topo_.server_node(sb);
      auto depth = [&](NodeId id) {
        int d = 0;
        for (NodeId cur = id; topo_.node(cur).parent.valid();
             cur = topo_.node(cur).parent) {
          ++d;
        }
        return d;
      };
      int da = depth(na), db = depth(nb);
      double one_way GL_UNITS(ms) = 0.0;
      auto hop = [&](NodeId n) {
        one_way += opts_.per_hop_ms *
                   CongestionFactor(traffic.UplinkUtilization(topo_, n));
      };
      while (da > db) {
        hop(na);
        na = topo_.node(na).parent;
        --da;
      }
      while (db > da) {
        hop(nb);
        nb = topo_.node(nb).parent;
        --db;
      }
      while (na != nb) {
        hop(na);
        hop(nb);
        na = topo_.node(na).parent;
        nb = topo_.node(nb).parent;
      }
      tct += 2.0 * one_way;
    }

    samples.push_back(tct);
    weighted_sum += tct * e.flows;
    weight_total += e.flows;
    if (tct > opts_.sla_ms) ++violations;
  }

  result.query_edges = static_cast<int>(samples.size());
  if (!samples.empty()) {
    result.mean_ms = weighted_sum / weight_total;
    result.p99_ms = Percentile(samples, 99.0);
    result.sla_violation_rate =
        static_cast<double>(violations) / static_cast<double>(samples.size());
  }
  return result;
}

}  // namespace gl
