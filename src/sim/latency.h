// Task-completion-time model.
//
// A query on edge (a → b) completes in
//
//   TCT = S_b · Q(u) + 2 · Σ_{links on path} h · C(ρ_link)
//
// where S_b is the responder application's unloaded service time, Q the
// queueing inflation of the busier endpoint server, h the per-hop one-way
// latency (switching + VxLAN encap/decap on the testbed software overlay),
// and C the per-link congestion inflation. Both inflations are M/M/1-shaped
// (1/(1-u)) with a cap, and server utilization is amplified by an
// intra-epoch burst factor: the paper's core argument is that policies that
// pack to ~95% leave no headroom, so correlated bursts push them into the
// saturated regime while Goldilocks' PEE ceiling absorbs them.
#pragma once

#include <span>
#include <vector>

#include "schedulers/placement.h"
#include "netsim/traffic.h"
#include "topology/topology.h"
#include "workload/container.h"

namespace gl {

struct LatencyOptions {
  // One-way per-link latency: switching plus software VxLAN overlay cost.
  double per_hop_ms GL_UNITS(ms) = 0.4;
  // Intra-epoch bursts above the epoch-mean utilization (Azure VMs burst
  // together: pairwise correlation 0.6–0.8).
  double burst_amplification GL_UNITS(dimensionless) = 0.15;
  // Caps for the queueing / congestion inflation factors.
  double max_queue_factor GL_UNITS(dimensionless) = 12.0;
  double max_congestion_factor GL_UNITS(dimensionless) = 4.0;
  // A query slower than this violates the SLA.
  double sla_ms GL_UNITS(ms) = 30.0;
};

struct TctResult {
  double mean_ms GL_UNITS(ms) = 0.0;        // flow-weighted mean over query edges
  double p99_ms GL_UNITS(ms) = 0.0;         // unweighted p99 over query edges
  int query_edges = 0;
  double sla_violation_rate GL_UNITS(dimensionless) = 0.0;
};

class LatencyModel {
 public:
  LatencyModel(const Topology& topo, LatencyOptions opts = {});

  [[nodiscard]] TctResult ComputeTct(const Workload& workload,
                                     const Placement& placement,
                                     std::span<const Resource> demands,
                                     std::span<const std::uint8_t> active,
                                     const TrafficEstimate& traffic) const;

  // Effective queueing factor for a server at `utilization` (exposed for
  // tests and the ablation benches).
  [[nodiscard]] double QueueFactor(double utilization GL_UNITS(dimensionless)) const
      GL_UNITS(dimensionless);
  [[nodiscard]] double CongestionFactor(
      double link_utilization GL_UNITS(dimensionless)) const GL_UNITS(dimensionless);

 private:
  const Topology& topo_;
  LatencyOptions opts_;
};

}  // namespace gl
