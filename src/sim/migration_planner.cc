#include "sim/migration_planner.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gl {
namespace {

struct PendingMove {
  ContainerId container;
  ServerId from;
  ServerId to;
  bool bounce = false;
};

double StepDuration(const Resource& demand, const MigrationCostOptions& c)
    GL_UNITS(ms) {
  const double image_gb GL_UNITS(bytes) = demand.mem_gb * c.image_overhead;
  const double transfer_ms GL_UNITS(ms) =
      image_gb * 8.0 / (c.transfer_mbps / 1000.0) * 1000.0;
  return c.freeze_ms + transfer_ms + c.restore_ms;
}

}  // namespace

MigrationPlan PlanMigrations(const Placement& before, const Placement& after,
                             const Workload& workload,
                             std::span<const Resource> demands,
                             const Topology& topo,
                             const MigrationPlannerOptions& opts) {
  obs::TraceSpan span("migration.plan");
  MigrationPlan plan;
  const std::size_t n =
      std::min({before.server_of.size(), after.server_of.size(),
                workload.containers.size()});

  // Current loads: containers at their `before` spot; pure stops free their
  // room immediately (they shut down before the reshuffle starts).
  std::vector<Resource> load(static_cast<std::size_t>(topo.num_servers()));
  std::vector<PendingMove> pending;
  for (std::size_t i = 0; i < n; ++i) {
    const ServerId src = before.server_of[i];
    const ServerId dst = after.server_of[i];
    if (!src.valid()) continue;  // new start, not a migration
    if (!dst.valid()) continue;  // stop: never occupies anything here
    load[static_cast<std::size_t>(src.value())] += demands[i];
    if (src != dst) {
      pending.push_back({ContainerId{static_cast<int>(i)}, src, dst, false});
    }
  }

  auto fits_on = [&](ServerId s, const Resource& d) {
    const Resource cap = topo.server_capacity(s) * opts.transition_ceiling;
    return (load[static_cast<std::size_t>(s.value())] + d).FitsIn(cap);
  };

  for (int phase = 0; phase < opts.max_phases && !pending.empty(); ++phase) {
    // Commit every move whose destination currently has room. Source room
    // frees only at the end of the phase (the container exists on both
    // sides during the transfer), so releases are batched.
    std::vector<PendingMove> next;
    std::vector<std::pair<ServerId, Resource>> releases;
    bool progressed = false;
    for (const auto& mv : pending) {
      const auto ci = static_cast<std::size_t>(mv.container.value());
      if (fits_on(mv.to, demands[ci])) {
        load[static_cast<std::size_t>(mv.to.value())] += demands[ci];
        releases.emplace_back(mv.from, demands[ci]);
        plan.steps.push_back({mv.container, mv.from, mv.to, phase, mv.bounce,
                              StepDuration(demands[ci], opts.cost)});
        plan.total_image_gb +=
            demands[ci].mem_gb * opts.cost.image_overhead;
        progressed = true;
      } else {
        next.push_back(mv);
      }
    }
    for (const auto& [s, d] : releases) {
      load[static_cast<std::size_t>(s.value())] -= d;
    }

    if (progressed) {
      plan.num_phases = phase + 1;
      pending = std::move(next);
      continue;
    }

    // Deadlock: every pending destination is full — a cycle (or a genuinely
    // oversubscribed transition). Bounce the smallest-memory pending
    // container through any server with scratch room to break it.
    std::sort(next.begin(), next.end(),
              [&](const PendingMove& a, const PendingMove& b) {
                return demands[static_cast<std::size_t>(a.container.value())]
                           .mem_gb <
                       demands[static_cast<std::size_t>(b.container.value())]
                           .mem_gb;
              });
    bool bounced = false;
    for (auto& mv : next) {
      const auto ci = static_cast<std::size_t>(mv.container.value());
      for (int s = 0; s < topo.num_servers() && !bounced; ++s) {
        const ServerId spare{s};
        if (spare == mv.from || spare == mv.to) continue;
        if (!fits_on(spare, demands[ci])) continue;
        // Hop 1 this phase: from → spare.
        load[static_cast<std::size_t>(spare.value())] += demands[ci];
        load[static_cast<std::size_t>(mv.from.value())] -= demands[ci];
        plan.steps.push_back({mv.container, mv.from, spare, phase, true,
                              StepDuration(demands[ci], opts.cost)});
        plan.total_image_gb +=
            demands[ci].mem_gb * opts.cost.image_overhead;
        ++plan.bounced_containers;
        mv.from = spare;
        mv.bounce = true;
        bounced = true;
      }
      if (bounced) break;
    }
    if (!bounced) {
      // Nothing can move at all: record the survivors as stuck.
      for (const auto& mv : next) plan.stuck.push_back(mv.container);
      pending.clear();
      break;
    }
    plan.num_phases = phase + 1;
    pending = std::move(next);
  }
  for (const auto& mv : pending) plan.stuck.push_back(mv.container);

  // Makespan: phases are sequential; within a phase a server (as source or
  // destination) handles one image transfer at a time.
  std::vector<double> busy(static_cast<std::size_t>(topo.num_servers()));
  for (int phase = 0; phase < plan.num_phases; ++phase) {
    std::fill(busy.begin(), busy.end(), 0.0);
    double phase_span = 0.0;
    for (const auto& step : plan.steps) {
      if (step.phase != phase) continue;
      const auto from = static_cast<std::size_t>(step.from.value());
      const auto to = static_cast<std::size_t>(step.to.value());
      const double start = std::max(busy[from], busy[to]);
      const double end = start + step.transfer_ms;
      busy[from] = end;
      busy[to] = end;
      phase_span = std::max(phase_span, end);
    }
    plan.makespan_ms += phase_span;
  }
  static obs::Counter& planned = obs::MetricsRegistry::Global().GetCounter(
      "migration.steps_planned", obs::MetricKind::kDeterministic);
  static obs::Counter& bounces = obs::MetricsRegistry::Global().GetCounter(
      "migration.bounces", obs::MetricKind::kDeterministic);
  static obs::Counter& stuck = obs::MetricsRegistry::Global().GetCounter(
      "migration.stuck", obs::MetricKind::kDeterministic);
  planned.Add(plan.steps.size());
  bounces.Add(static_cast<std::uint64_t>(plan.bounced_containers));
  stuck.Add(plan.stuck.size());
  return plan;
}

}  // namespace gl
