#include "sim/simulator.h"

#include "common/check.h"
#include "common/thread_pool.h"
#include "netsim/traffic.h"
#include "obs/clock.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gl {

EpochMetrics ExperimentResult::Average() const {
  EpochMetrics avg;
  if (epochs.empty()) return avg;
  const auto n = static_cast<double>(epochs.size());
  for (const auto& e : epochs) {
    avg.active_servers += e.active_servers;
    avg.active_switches += e.active_switches;
    avg.server_watts += e.server_watts;
    avg.network_watts += e.network_watts;
    avg.total_watts += e.total_watts;
    avg.avg_active_utilization += e.avg_active_utilization;
    avg.mean_tct_ms += e.mean_tct_ms;
    avg.p99_tct_ms += e.p99_tct_ms;
    avg.sla_violation_rate += e.sla_violation_rate;
    avg.rps += e.rps;
    avg.energy_per_request_j += e.energy_per_request_j;
    avg.watts_per_krps += e.watts_per_krps;
    avg.migrations += e.migrations;
    avg.migration_downtime_ms += e.migration_downtime_ms;
    avg.placed_containers += e.placed_containers;
    avg.unplaced_containers += e.unplaced_containers;
    avg.audit_findings += e.audit_findings;
    avg.wall_ms += e.wall_ms;
  }
  avg.active_servers = static_cast<int>(avg.active_servers / n);
  avg.active_switches = static_cast<int>(avg.active_switches / n);
  avg.server_watts /= n;
  avg.network_watts /= n;
  avg.total_watts /= n;
  avg.avg_active_utilization /= n;
  avg.mean_tct_ms /= n;
  avg.p99_tct_ms /= n;
  avg.sla_violation_rate /= n;
  avg.rps /= n;
  avg.energy_per_request_j /= n;
  avg.watts_per_krps /= n;
  avg.migrations = static_cast<int>(avg.migrations / n);
  avg.migration_downtime_ms /= n;
  avg.placed_containers = static_cast<int>(avg.placed_containers / n);
  avg.unplaced_containers = static_cast<int>(avg.unplaced_containers / n);
  avg.audit_findings = static_cast<int>(avg.audit_findings / n);
  avg.wall_ms /= n;
  return avg;
}

ExperimentRunner::ExperimentRunner(const Scenario& scenario,
                                   const Topology& topo, RunnerOptions opts)
    : scenario_(scenario), topo_(topo), opts_(std::move(opts)) {
  if (opts_.switch_models.empty()) {
    opts_.switch_models.assign(static_cast<std::size_t>(topo.num_levels()),
                               SwitchPowerModel::Hpe3800());
  }
  GOLDILOCKS_CHECK_GE(static_cast<int>(opts_.switch_models.size()),
                      topo.num_levels());
}

ExperimentResult ExperimentRunner::Run(Scheduler& scheduler) const {
  // Wall timing only: wall_ms is informational and never feeds a decision
  // or a hash (the obs clock is the sanctioned home for steady_clock).
  const obs::WallTimer run_timer;
  obs::TraceSpan run_span("runner.run");
  // Per-epoch counter deltas only attribute correctly when this run has the
  // process-wide registry to itself (DESIGN.md §10).
  const bool log_counters =
      opts_.obs.logger != nullptr && opts_.threads <= 1;
  ExperimentResult result;
  result.scheduler = scheduler.name();
  result.scenario = scenario_.name();

  const Workload& workload = scenario_.workload();
  const LatencyModel latency(topo_, opts_.latency);
  Placement previous;
  DemandEstimator estimator(workload.containers.size(), opts_.estimator);
  std::vector<Resource> reservations;
  if (opts_.use_estimated_demands) {
    reservations.reserve(workload.containers.size());
    for (const auto& c : workload.containers) {
      reservations.push_back(GetAppProfile(c.app).reserved);
    }
  }

  for (int epoch = 0; epoch < scenario_.num_epochs(); ++epoch) {
    const obs::WallTimer epoch_timer;
    obs::TraceSpan epoch_span("runner.epoch", epoch);
    std::vector<obs::CounterValue> counters_before;
    if (log_counters) {
      counters_before = obs::MetricsRegistry::Global().SnapshotCounters(
          obs::MetricKind::kDeterministic);
    }
    double schedule_ms = 0.0;
    double audit_ms = 0.0;
    double power_ms = 0.0;
    double network_ms = 0.0;
    double tct_ms = 0.0;
    double migration_ms = 0.0;

    const auto demands = scenario_.DemandsAt(epoch);
    const auto active = scenario_.ActiveAt(epoch);
    // What the scheduler believes: the oracle, or predictions from history.
    std::vector<Resource> believed;
    if (opts_.use_estimated_demands) {
      believed = estimator.observations() > 0 ? estimator.Predict(reservations)
                                              : reservations;
    }

    SchedulerInput input;
    input.workload = &workload;
    input.demands = opts_.use_estimated_demands ? believed : demands;
    input.active = active;
    input.topology = &topo_;
    input.previous = previous.server_of.empty() ? nullptr : &previous;

    Placement placement;
    {
      obs::TraceSpan span("epoch.schedule");
      const obs::WallTimer t;
      placement = scheduler.Place(input);
      schedule_ms = t.ElapsedMs();
    }
    if (opts_.use_estimated_demands) estimator.Observe(demands);

    EpochMetrics m;
    m.epoch = epoch;

    if (opts_.audit) {
      obs::TraceSpan span("epoch.audit");
      const obs::WallTimer t;
      const InvariantAuditor auditor(opts_.audit_opts);
      SystemView view;
      view.topology = &topo_;
      view.workload = &workload;
      // Audit against what the scheduler acted on: with estimated demands a
      // true-demand overflow is a prediction miss, not a placement bug.
      view.demands = input.demands;
      view.active = active;
      view.placement = &placement;
      view.server_power = &opts_.server_power;
      AuditReport report = auditor.AuditAll(view);
      m.audit_findings = static_cast<int>(report.findings.size());
      if (opts_.audit_fail_fast && report.errors() > 0) {
        GOLDILOCKS_CHECK_MSG(false, report.ToString().c_str());
      }
      result.audit.Append(report);
      audit_ms = t.ElapsedMs();
    }

    // Placement accounting.
    int expected = 0;
    for (const auto a : active) expected += a;
    m.placed_containers = placement.num_placed();
    m.unplaced_containers = expected - m.placed_containers;

    // Server power.
    std::vector<Resource> loads;
    std::vector<std::uint8_t> server_active(
        static_cast<std::size_t>(topo_.num_servers()), 0);
    {
      obs::TraceSpan span("epoch.server_power");
      const obs::WallTimer t;
      loads = ServerLoads(placement, demands, topo_.num_servers());
      double util_sum = 0.0;
      for (int s = 0; s < topo_.num_servers(); ++s) {
        const auto si = static_cast<std::size_t>(s);
        const bool on = !loads[si].IsZero();
        server_active[si] = on || !opts_.power_off_idle_servers;
        if (!server_active[si]) continue;
        const auto& cap = topo_.server_capacity(ServerId{s});
        const double cpu_util = cap.cpu > 0.0 ? loads[si].cpu / cap.cpu : 0.0;
        m.server_watts += opts_.server_power.Power(cpu_util);
        if (on) {
          ++m.active_servers;
          util_sum += loads[si].DominantShare(cap);
        }
      }
      m.avg_active_utilization =
          m.active_servers > 0 ? util_sum / m.active_servers : 0.0;
      power_ms = t.ElapsedMs();
    }

    // Network traffic, gating and power.
    TrafficEstimate traffic;
    {
      obs::TraceSpan span("epoch.network");
      const obs::WallTimer t;
      traffic = EstimateTraffic(workload, placement, demands, active, topo_);
      const NetworkPowerResult net = ComputeNetworkPower(
          topo_, server_active, traffic.node_uplink_mbps, opts_.switch_models,
          opts_.gating);
      m.network_watts = net.watts;
      m.active_switches = net.active_switches;
      m.total_watts = m.server_watts + m.network_watts;
      network_ms = t.ElapsedMs();
    }

    // Task completion time and energy per request.
    {
      obs::TraceSpan span("epoch.tct");
      const obs::WallTimer t;
      const TctResult tct =
          latency.ComputeTct(workload, placement, demands, active, traffic);
      m.mean_tct_ms = tct.mean_ms;
      m.p99_tct_ms = tct.p99_ms;
      m.sla_violation_rate = tct.sla_violation_rate;
      m.rps = scenario_.TotalRpsAt(epoch);
      m.energy_per_request_j = (m.total_watts / 1000.0) * m.mean_tct_ms;
      m.watts_per_krps = m.rps > 0.0 ? m.total_watts / (m.rps / 1000.0) : 0.0;
      tct_ms = t.ElapsedMs();
    }

    // Migration cost vs the previous epoch.
    if (!previous.server_of.empty()) {
      obs::TraceSpan span("epoch.migration");
      const obs::WallTimer t;
      const MigrationCost mig = ComputeMigrationCost(
          previous, placement, workload, demands, opts_.migration);
      m.migrations = mig.migrations;
      m.migration_downtime_ms = mig.total_downtime_ms;
      migration_ms = t.ElapsedMs();
    }

    if (opts_.record_state_hashes) {
      EpochStateHash h;
      h.epoch = epoch;
      h.placement = HashAssignment(placement.server_of);
      h.loads = HashLoads(loads);
      StateHasher power;
      power.MixDouble(m.server_watts);
      power.MixDouble(m.network_watts);
      power.MixDouble(m.total_watts);
      power.MixI32(m.active_servers);
      power.MixI32(m.active_switches);
      h.power = power.digest();
      StateHasher mig;
      mig.MixI32(m.migrations);
      mig.MixDouble(m.migration_downtime_ms);
      h.migration = mig.digest();
      h.rng = scheduler.StateDigest();
      result.state_hashes.push_back(h);
    }

    m.wall_ms = epoch_timer.ElapsedMs();
    result.epochs.push_back(m);

    if (opts_.obs.logger != nullptr) {
      obs::EpochRecord rec;
      rec.scheduler = result.scheduler;
      rec.scenario = result.scenario;
      rec.epoch = m.epoch;
      rec.active_servers = m.active_servers;
      rec.active_switches = m.active_switches;
      rec.server_watts = m.server_watts;
      rec.network_watts = m.network_watts;
      rec.total_watts = m.total_watts;
      rec.mean_tct_ms = m.mean_tct_ms;
      rec.p99_tct_ms = m.p99_tct_ms;
      rec.energy_per_request_j = m.energy_per_request_j;
      rec.migrations = m.migrations;
      rec.placed_containers = m.placed_containers;
      rec.unplaced_containers = m.unplaced_containers;
      rec.audit_findings = m.audit_findings;
      if (log_counters) {
        rec.counters = obs::MetricsRegistry::DeltaCounters(
            counters_before, obs::MetricsRegistry::Global().SnapshotCounters(
                                 obs::MetricKind::kDeterministic));
      }
      if (opts_.record_state_hashes) {
        const EpochStateHash& h = result.state_hashes.back();
        rec.has_hash = true;
        rec.hash_placement = h.placement;
        rec.hash_loads = h.loads;
        rec.hash_power = h.power;
        rec.hash_migration = h.migration;
        rec.hash_rng = h.rng;
      }
      rec.wall_ms = m.wall_ms;
      rec.phases = {{"schedule", schedule_ms}, {"audit", audit_ms},
                    {"server_power", power_ms}, {"network", network_ms},
                    {"tct", tct_ms},           {"migration", migration_ms}};
      // Informational gauges ride the strippable "timings" tail: sample
      // peak RSS here (obs/memory.h), then snapshot everything the epoch's
      // instrumentation published (pool utilization, arena peaks, ...).
      static obs::Gauge& rss_gauge = obs::MetricsRegistry::Global().GetGauge(
          "process.peak_rss_bytes", obs::MetricKind::kInformational);
      rss_gauge.Set(static_cast<double>(obs::PeakRssBytes()));
      rec.info_gauges = obs::MetricsRegistry::Global().SnapshotGauges(
          obs::MetricKind::kInformational);
      opts_.obs.logger->WriteEpoch(rec);
    }

    previous = placement;
  }
  result.wall_ms = run_timer.ElapsedMs();
  return result;
}

std::vector<ExperimentResult> ExperimentRunner::RunMany(
    const std::vector<Scheduler*>& schedulers) const {
  obs::TraceSpan span("runner.run_many",
                      static_cast<std::int64_t>(schedulers.size()));
  std::vector<ExperimentResult> results(schedulers.size());
  ThreadPool pool(opts_.threads);
  // Each task touches only its own scheduler and result slot; the runner
  // itself is read-only during Run().
  pool.ParallelFor(schedulers.size(), [&](std::size_t i) {
    GOLDILOCKS_CHECK(schedulers[i] != nullptr);
    results[i] = Run(*schedulers[i]);
  });
  return results;
}

}  // namespace gl
