// Failure injection and recovery analysis (Sec. IV-C).
//
// The paper places replicas of a service in different fault domains (racks)
// via negative container-graph edges, so that a server, ToR, or power-rail
// failure [48]-[50] never takes out every copy. This module makes that
// claim measurable:
//
//   * InjectFailure — knock out a server or a whole rack; report which
//     containers are displaced and which replica sets lost every member
//     (service unavailable) versus kept at least one (degraded but up).
//   * PlanRecovery — re-place the displaced containers on the surviving
//     servers (best-fit, leaving the untouched containers in place — no
//     gratuitous reshuffle during an outage) and estimate the time to
//     restore full replication from checkpoints/replicas.
#pragma once

#include <span>
#include <vector>

#include "schedulers/placement.h"
#include "sim/migration.h"
#include "workload/container.h"

namespace gl {

enum class FailureDomain {
  kServer,  // one machine dies
  kRack,    // ToR / power rail: every server under the rack dies
};

struct FailureImpact {
  std::vector<ContainerId> displaced;
  // Replica sets that still have at least one member on a healthy server.
  std::vector<GroupId> degraded_sets;
  // Replica sets whose every member was on the failed domain: an outage.
  std::vector<GroupId> unavailable_sets;
  int failed_servers = 0;
};

// What fails: `victim` is a ServerId for kServer, or any server under the
// doomed rack for kRack.
FailureImpact InjectFailure(const Placement& placement,
                            const Workload& workload, const Topology& topo,
                            FailureDomain domain, ServerId victim);

struct RecoveryResult {
  Placement placement;      // after re-placing the displaced containers
  int recovered = 0;        // displaced containers that found a new home
  int unrecoverable = 0;    // no healthy capacity left for them
  // Time to ship the displaced containers' state to their new homes
  // (restore-from-checkpoint/replica semantics).
  double recovery_makespan_ms GL_UNITS(ms) = 0.0;
};

// Re-places the displaced containers on the healthy servers (best-fit by
// dominant share). Containers that were not displaced stay where they are.
RecoveryResult PlanRecovery(const Placement& placement,
                            const FailureImpact& impact,
                            const Workload& workload,
                            std::span<const Resource> demands,
                            const Topology& topo,
                            const MigrationCostOptions& cost = {});

}  // namespace gl
