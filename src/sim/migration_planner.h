// Migration plan construction (the Sec. V migration controller).
//
// Moving from one epoch's placement to the next is not a single atomic step:
// a container can only be restored on its destination server if the
// destination has room *at that moment*. Moves can depend on each other —
// A's destination frees only after B departs — and dependencies can form
// cycles (A→B's slot, B→A's slot), which need a bounce through a spare
// server. This planner orders the moves into phases:
//
//   phase k = the set of migrations whose destination has room given the
//             state after phases 0..k-1; cycles are broken by bouncing the
//             smallest-memory container of the cycle through a server with
//             scratch capacity (two moves instead of one).
//
// It also estimates the makespan: within a phase, migrations run in
// parallel subject to a per-server transfer-concurrency limit (the NIC is
// the bottleneck: rsync streams share it).
#pragma once

#include <span>
#include <vector>

#include "schedulers/placement.h"
#include "sim/migration.h"
#include "workload/container.h"

namespace gl {

struct MigrationStep {
  ContainerId container;
  ServerId from;
  ServerId to;
  int phase = 0;
  bool bounce = false;  // part of a cycle break (extra hop via a spare)
  double transfer_ms GL_UNITS(ms) = 0.0;
};

struct MigrationPlan {
  std::vector<MigrationStep> steps;
  int num_phases = 0;
  int bounced_containers = 0;
  // Containers whose move could not be scheduled (no room anywhere even
  // with bounce). Empty in any sane reconfiguration.
  std::vector<ContainerId> stuck;
  // Wall-clock estimate: phases run sequentially; within a phase, each
  // server transfers one image at a time.
  double makespan_ms GL_UNITS(ms) = 0.0;
  double total_image_gb GL_UNITS(bytes) = 0.0;
};

struct MigrationPlannerOptions {
  MigrationCostOptions cost;
  // Utilization ceiling the *destination* must respect mid-transition
  // (containers briefly exist on both sides; keeping a margin avoids
  // overload while the old copy drains).
  double transition_ceiling GL_UNITS(dimensionless) = 1.0;
  int max_phases = 16;
};

// Builds the phased plan that transforms `before` into `after` for the
// given demands. Containers present only in `after` (new starts) and only
// in `before` (stops) are not migrations and are ignored.
MigrationPlan PlanMigrations(const Placement& before, const Placement& after,
                             const Workload& workload,
                             std::span<const Resource> demands,
                             const Topology& topo,
                             const MigrationPlannerOptions& opts = {});

}  // namespace gl
