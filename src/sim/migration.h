// CRIU-style container migration cost model (Sec. V).
//
// Moving a container between epochs checkpoint-freezes the process tree,
// ships the image (≈ resident memory) plus volume delta over the network
// (rsync in the testbed), and restores at the destination. Costs scale with
// the container's memory footprint and the available transfer bandwidth.
#pragma once

#include <span>

#include "schedulers/placement.h"
#include "workload/container.h"

namespace gl {

struct MigrationCostOptions {
  double freeze_ms GL_UNITS(ms) = 250.0;     // CRIU checkpoint freeze
  double restore_ms GL_UNITS(ms) = 300.0;    // restore + re-attach (VxLAN)
  double transfer_mbps GL_UNITS(bits_per_sec) = 800.0;  // rsync throughput
  double image_overhead GL_UNITS(dimensionless) = 1.10;  // image vs RSS
};

struct MigrationCost {
  int migrations = 0;
  double total_downtime_ms GL_UNITS(ms) = 0.0;  // Σ freeze+transfer+restore
  double max_downtime_ms GL_UNITS(ms) = 0.0;  // worst single container
  double traffic_gb GL_UNITS(bytes) = 0.0;  // checkpoint bytes moved
};

MigrationCost ComputeMigrationCost(const Placement& before,
                                   const Placement& after,
                                   const Workload& workload,
                                   std::span<const Resource> demands,
                                   const MigrationCostOptions& opts = {});

}  // namespace gl
