#include "sim/migration.h"

#include <algorithm>

namespace gl {

MigrationCost ComputeMigrationCost(const Placement& before,
                                   const Placement& after,
                                   const Workload& workload,
                                   std::span<const Resource> demands,
                                   const MigrationCostOptions& opts) {
  MigrationCost cost;
  const std::size_t n =
      std::min(before.server_of.size(), after.server_of.size());
  for (std::size_t i = 0; i < n && i < workload.containers.size(); ++i) {
    const auto from = before.server_of[i];
    const auto to = after.server_of[i];
    if (!from.valid() || !to.valid() || from == to) continue;

    const double image_gb GL_UNITS(bytes) =
        demands[i].mem_gb * opts.image_overhead;
    // GB → Gbit: ×8; Mbps → Gbit/s: ÷1000; seconds → ms: ×1000.
    const double transfer_ms GL_UNITS(ms) =
        image_gb * 8.0 / (opts.transfer_mbps / 1000.0) * 1000.0;
    const double downtime GL_UNITS(ms) =
        opts.freeze_ms + transfer_ms + opts.restore_ms;
    ++cost.migrations;
    cost.total_downtime_ms += downtime;
    cost.max_downtime_ms = std::max(cost.max_downtime_ms, downtime);
    cost.traffic_gb += image_gb;
  }
  return cost;
}

}  // namespace gl
