// Epoch-driven cluster experiment runner.
//
// Replays a Scenario against one Scheduler on one Topology and records the
// paper's per-epoch metrics: active servers, server/network power, task
// completion time, energy per request, migrations, SLA violations. This is
// the engine behind the Fig. 9 / Fig. 10 / Fig. 13 benches.
//
// Energy-per-request definition: the energy a request consumes while in the
// system, E = P_total · TCT (kW · ms = J). This couples power *and* latency,
// matching the paper's observation that policies with similar power can
// differ 3.5× in energy per request.
#pragma once

#include <string>
#include <vector>

#include "analysis/invariant_auditor.h"
#include "common/state_hash.h"
#include "obs/run_logger.h"
#include "power/dc_power.h"
#include "power/server_power.h"
#include "schedulers/scheduler.h"
#include "sim/estimator.h"
#include "sim/latency.h"
#include "sim/migration.h"
#include "workload/scenarios.h"

namespace gl {

struct RunnerOptions {
  ServerPowerModel server_power = ServerPowerModel::Dell2018();
  // Switch model per hierarchy level (index 0 unused; defaulted by the
  // constructor to HPE 3800 testbed switches when left empty).
  std::vector<SwitchPowerModel> switch_models;
  GatingOptions gating;
  LatencyOptions latency;
  MigrationCostOptions migration;
  // Idle servers are powered off (all policies in the paper gate servers;
  // E-PVM simply never has an idle server).
  bool power_off_idle_servers = true;
  // When true, the scheduler sees DemandEstimator predictions built from
  // the previous epochs' measurements instead of the oracle demands
  // (metrics are always evaluated against the true demands). First-epoch
  // fallback is the owner's reservation.
  bool use_estimated_demands = false;
  EstimatorOptions estimator;
  // Opt-in invariant audit (src/analysis): after every epoch the auditor
  // checks the placement, the bandwidth reservations and the topology
  // against the demands the scheduler acted on. Findings accumulate in
  // ExperimentResult::audit; with audit_fail_fast any *error* aborts the
  // run via GOLDILOCKS_CHECK instead.
  bool audit = false;
  bool audit_fail_fast = false;
  AuditOptions audit_opts;
  // Opt-in reproducibility gate (common/state_hash.h): record a per-epoch
  // digest of the placement, server loads, power totals, migration cost and
  // the scheduler's RNG cursors in ExperimentResult::state_hashes. Two
  // same-seed runs must produce identical streams; tools/gl_replay diffs
  // them and reports the first divergent epoch and subsystem.
  bool record_state_hashes = false;
  // Opt-in observability (src/obs): when obs.logger is set the runner
  // streams one "gl.epoch.v1" JSONL record per epoch — metrics, per-epoch
  // deterministic-counter deltas, state hashes (when recorded) and phase
  // timings. Purely additive: enabling it changes no simulation state, no
  // placement, and no EpochStateHash (tested by obs_test). Counter deltas
  // are attributed per epoch only when threads == 1; a parallel RunMany
  // shares the process-wide registry across experiments, so the runner
  // omits the counters section rather than log cross-contaminated deltas.
  obs::ObsOptions obs;
  // Worker threads for RunMany's scheduler fan-out (1 = serial). Each
  // scheduler's run is fully independent — shared state (scenario, topology,
  // options) is read-only — so every thread count produces bit-identical
  // results, state hashes included (DESIGN.md §9).
  int threads = 1;
};

struct EpochMetrics {
  int epoch = 0;
  int active_servers = 0;
  int active_switches = 0;
  double server_watts = 0.0;
  double network_watts = 0.0;
  double total_watts = 0.0;
  double avg_active_utilization = 0.0;  // dominant-share, active servers
  double mean_tct_ms = 0.0;
  double p99_tct_ms = 0.0;
  double sla_violation_rate = 0.0;
  double rps = 0.0;
  double energy_per_request_j = 0.0;  // P_total(kW) × mean TCT(ms)
  double watts_per_krps = 0.0;        // plain power per throughput
  int migrations = 0;
  double migration_downtime_ms = 0.0;
  int placed_containers = 0;
  int unplaced_containers = 0;
  int audit_findings = 0;  // 0 unless RunnerOptions::audit is set
  // Wall-clock duration of this epoch's control-loop iteration.
  // Informational only: never hashed, never averaged into decisions — it
  // exists so gl_report can plot epoch-time trends (ISSUE-4 satellite).
  double wall_ms = 0.0;
};

struct ExperimentResult {
  std::string scheduler;
  std::string scenario;
  std::vector<EpochMetrics> epochs;
  // Merged findings across all epochs (empty unless RunnerOptions::audit).
  AuditReport audit;
  // One digest per epoch (empty unless RunnerOptions::record_state_hashes).
  std::vector<EpochStateHash> state_hashes;
  // Wall-clock duration of this run. Informational only — never hashed, so
  // it does not participate in the determinism contract.
  double wall_ms = 0.0;

  [[nodiscard]] EpochMetrics Average() const;
};

class ExperimentRunner {
 public:
  ExperimentRunner(const Scenario& scenario, const Topology& topo,
                   RunnerOptions opts = {});

  ExperimentResult Run(Scheduler& scheduler) const;

  // Runs every scheduler over the same scenario/topology, fanning out over
  // RunnerOptions::threads, and returns results in input order. Each entry
  // must point at a distinct scheduler object (schedulers are stateful);
  // results are bit-identical to calling Run() on each in sequence.
  std::vector<ExperimentResult> RunMany(
      const std::vector<Scheduler*>& schedulers) const;

 private:
  const Scenario& scenario_;
  const Topology& topo_;
  RunnerOptions opts_;
};

}  // namespace gl
