// Online demand estimation (Sec. V: "prior to mapping containers to
// servers, the real-time server and network utilization have to be
// measured" — Docker metric pseudo-files and IPTraf in the testbed).
//
// A deployed scheduler never sees the next epoch's true demands; it sees
// the history of measured utilization and must provision for what comes.
// The estimator keeps per-container, per-dimension EWMA mean and variance
// and predicts mean + k·σ — the headroom multiplier k plays the same role
// as Resource Central's percentile predictions. The estimator-vs-oracle
// ablation (bench_ablations) quantifies what imperfect prediction costs.
#pragma once

#include <span>
#include <vector>

#include "common/resource.h"

namespace gl {

struct EstimatorOptions {
  // Smoothing factor: weight of the newest observation.
  double ewma_alpha = 0.4;
  // Prediction = mean + headroom_stddevs × σ, per dimension.
  double headroom_stddevs = 1.0;
};

class DemandEstimator {
 public:
  explicit DemandEstimator(std::size_t num_containers,
                           EstimatorOptions opts = {});

  // Feeds one epoch of measured utilization (indexed by ContainerId).
  void Observe(std::span<const Resource> measured);

  // Predicted demand for the next epoch. Containers with no observations
  // yet fall back to the given per-container values (e.g. reservations).
  [[nodiscard]] std::vector<Resource> Predict(
      std::span<const Resource> fallback) const;

  [[nodiscard]] int observations() const { return observations_; }

 private:
  struct Dim {
    double mean = 0.0;
    double var = 0.0;
  };
  struct Entry {
    Dim cpu, mem, net;
    bool seen = false;
  };

  EstimatorOptions opts_;
  std::vector<Entry> entries_;
  int observations_ = 0;
};

}  // namespace gl
