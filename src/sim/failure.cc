#include "sim/failure.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/stable_map.h"

namespace gl {

FailureImpact InjectFailure(const Placement& placement,
                            const Workload& workload, const Topology& topo,
                            FailureDomain domain, ServerId victim) {
  GOLDILOCKS_CHECK(victim.valid() && victim.value() < topo.num_servers());
  FailureImpact impact;

  // The set of dead servers.
  std::unordered_set<int> dead;
  if (domain == FailureDomain::kServer) {
    dead.insert(victim.value());
  } else {
    const NodeId rack = topo.AncestorAt(topo.server_node(victim), 1);
    for (const auto s : topo.ServersUnder(rack)) dead.insert(s.value());
  }
  impact.failed_servers = static_cast<int>(dead.size());

  // Displaced containers and replica-set survival accounting.
  std::unordered_map<GroupId, std::pair<int, int>> sets;  // lost, alive
  for (const auto& c : workload.containers) {
    const auto i = static_cast<std::size_t>(c.id.value());
    if (i >= placement.server_of.size()) break;
    const ServerId s = placement.server_of[i];
    if (!s.valid()) continue;
    const bool lost = dead.count(s.value()) > 0;
    if (lost) impact.displaced.push_back(c.id);
    if (c.replica_set.valid()) {
      auto& [lost_n, alive_n] = sets[c.replica_set];
      (lost ? lost_n : alive_n) += 1;
    }
  }
  // Sorted snapshot: the replica-set partition into degraded/unavailable
  // must come out in set-id order, not hash-bucket order.
  for (const auto& [set_id, counts] : SortedItems(sets)) {
    const auto& [lost_n, alive_n] = counts;
    if (lost_n == 0) continue;  // untouched
    (alive_n > 0 ? impact.degraded_sets : impact.unavailable_sets)
        .push_back(set_id);
  }
  return impact;
}

RecoveryResult PlanRecovery(const Placement& placement,
                            const FailureImpact& impact,
                            const Workload& workload,
                            std::span<const Resource> demands,
                            const Topology& topo,
                            const MigrationCostOptions& cost) {
  RecoveryResult result;
  result.placement = placement;

  // Healthy-server loads after the failure (displaced containers removed).
  std::unordered_set<int> displaced(impact.displaced.size());
  for (const auto c : impact.displaced) displaced.insert(c.value());
  std::unordered_set<int> dead_servers;
  for (const auto c : impact.displaced) {
    dead_servers.insert(
        placement.server_of[static_cast<std::size_t>(c.value())].value());
  }
  std::vector<Resource> load(static_cast<std::size_t>(topo.num_servers()));
  for (const auto& c : workload.containers) {
    const auto i = static_cast<std::size_t>(c.id.value());
    if (i >= placement.server_of.size()) break;
    const ServerId s = placement.server_of[i];
    if (s.valid() && !displaced.count(c.id.value())) {
      load[static_cast<std::size_t>(s.value())] += demands[i];
    }
  }

  // Best-fit the displaced containers onto healthy machines, biggest first
  // so large items are not stranded.
  std::vector<ContainerId> order = impact.displaced;
  const Resource ref = topo.average_server_capacity();
  std::sort(order.begin(), order.end(), [&](ContainerId a, ContainerId b) {
    return demands[static_cast<std::size_t>(a.value())].NormalizedL1(ref) >
           demands[static_cast<std::size_t>(b.value())].NormalizedL1(ref);
  });

  // Per-destination serialized restore (images stream over each NIC).
  std::vector<double> busy_ms GL_UNITS(ms)(static_cast<std::size_t>(topo.num_servers()),
                              0.0);
  for (const auto c : order) {
    const auto ci = static_cast<std::size_t>(c.value());
    const Resource& d = demands[ci];
    ServerId best = ServerId::invalid();
    double best_slack GL_UNITS(dimensionless) = 0.0;
    for (int s = 0; s < topo.num_servers(); ++s) {
      if (dead_servers.count(s)) continue;
      const ServerId sid{s};
      const Resource& cap = topo.server_capacity(sid);
      if (!(load[static_cast<std::size_t>(s)] + d).FitsIn(cap)) continue;
      const double slack GL_UNITS(dimensionless) =
          1.0 - (load[static_cast<std::size_t>(s)] + d).DominantShare(cap);
      // Best fit: tightest remaining slack.
      if (!best.valid() || slack < best_slack) {
        best = sid;
        best_slack = slack;
      }
    }
    if (!best.valid()) {
      ++result.unrecoverable;
      result.placement.server_of[ci] = ServerId::invalid();
      continue;
    }
    load[static_cast<std::size_t>(best.value())] += d;
    result.placement.server_of[ci] = best;
    ++result.recovered;
    const double image_gb GL_UNITS(bytes) = d.mem_gb * cost.image_overhead;
    const double restore_ms GL_UNITS(ms) =
        cost.restore_ms +
        image_gb * 8.0 / (cost.transfer_mbps / 1000.0) * 1000.0;
    busy_ms[static_cast<std::size_t>(best.value())] += restore_ms;
    result.recovery_makespan_ms =
        std::max(result.recovery_makespan_ms,
                 busy_ms[static_cast<std::size_t>(best.value())]);
  }
  return result;
}

}  // namespace gl
