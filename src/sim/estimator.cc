#include "sim/estimator.h"

#include <cmath>

#include "common/check.h"

namespace gl {
namespace {

void Update(double x GL_UNITS(any), double alpha GL_UNITS(dimensionless),
            bool first, double& mean GL_UNITS(any),
            double& var GL_UNITS(any)) {
  if (first) {
    mean = x;
    var = 0.0;
    return;
  }
  const double delta = x - mean;
  mean += alpha * delta;
  // EWMA variance (West 1979): blend of old variance and the new squared
  // deviation measured against the updated mean.
  var = (1.0 - alpha) * (var + alpha * delta * delta);
}

double Forecast(const double mean GL_UNITS(any), const double var GL_UNITS(any),
                double k GL_UNITS(dimensionless)) GL_UNITS(any) {
  return std::max(0.0, mean + k * std::sqrt(std::max(0.0, var)));
}

}  // namespace

DemandEstimator::DemandEstimator(std::size_t num_containers,
                                 EstimatorOptions opts)
    : opts_(opts), entries_(num_containers) {
  GOLDILOCKS_CHECK(opts.ewma_alpha > 0.0 && opts.ewma_alpha <= 1.0);
}

void DemandEstimator::Observe(std::span<const Resource> measured) {
  GOLDILOCKS_CHECK(measured.size() == entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    auto& e = entries_[i];
    const bool first = !e.seen;
    // A zero vector means "not running this epoch": forgetting the history
    // would make restarts look like brand-new containers, so skip instead.
    if (measured[i].IsZero()) continue;
    Update(measured[i].cpu, opts_.ewma_alpha, first, e.cpu.mean, e.cpu.var);
    Update(measured[i].mem_gb, opts_.ewma_alpha, first, e.mem.mean,
           e.mem.var);
    Update(measured[i].net_mbps, opts_.ewma_alpha, first, e.net.mean,
           e.net.var);
    e.seen = true;
  }
  ++observations_;
}

std::vector<Resource> DemandEstimator::Predict(
    std::span<const Resource> fallback) const {
  GOLDILOCKS_CHECK(fallback.size() == entries_.size());
  std::vector<Resource> out(entries_.size());
  const double k = opts_.headroom_stddevs;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& e = entries_[i];
    if (!e.seen) {
      out[i] = fallback[i];
      continue;
    }
    out[i] = Resource{.cpu = Forecast(e.cpu.mean, e.cpu.var, k),
                      .mem_gb = Forecast(e.mem.mean, e.mem.var, k),
                      .net_mbps = Forecast(e.net.mean, e.net.var, k)};
  }
  return out;
}

}  // namespace gl
