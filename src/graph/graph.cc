#include "graph/graph.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"

namespace gl {

void Graph::Reserve(VertexIndex expected_vertices) {
  const auto n = static_cast<std::size_t>(
      expected_vertices > 0 ? expected_vertices : 0);
  demands_.reserve(n);
  balance_.reserve(n);
  adj_.reserve(n);
}

VertexIndex Graph::AddVertex(const Resource& demand,
                             double balance_weight GL_UNITS(dimensionless)) {
  demands_.push_back(demand);
  balance_.push_back(balance_weight);
  adj_.emplace_back();
  GOLDILOCKS_CHECK(demands_.size() <=
                   static_cast<std::size_t>(
                       std::numeric_limits<VertexIndex>::max()));
  total_demand_ += demand;
  total_balance_ += balance_weight;
  return num_vertices() - 1;
}

void Graph::AddEdge(VertexIndex u, VertexIndex v, double weight) {
  if (u == v) return;
  const auto su = Checked(u);
  const auto sv = Checked(v);
  // Merge with an existing parallel edge if present.
  for (auto& e : adj_[su]) {
    if (e.to == v) {
      e.weight += weight;
      for (auto& r : adj_[sv]) {
        if (r.to == u) {
          r.weight += weight;
          break;
        }
      }
      return;
    }
  }
  adj_[su].push_back({v, weight});
  adj_[sv].push_back({u, weight});
  ++num_edges_;
}

double Graph::degree_weight(VertexIndex v) const {
  double s = 0.0;
  for (const auto& e : adj_[Checked(v)]) s += e.weight;
  return s;
}

double Graph::total_positive_edge_weight() const {
  double s = 0.0;
  for (VertexIndex v = 0; v < num_vertices(); ++v) {
    for (const auto& e : adj_[static_cast<std::size_t>(v)]) {
      if (e.to > v && e.weight > 0.0) s += e.weight;
    }
  }
  return s;
}

double Graph::CutWeight(std::span<const std::uint8_t> side) const {
  GOLDILOCKS_CHECK(side.size() == static_cast<std::size_t>(num_vertices()));
  double cut = 0.0;
  for (VertexIndex v = 0; v < num_vertices(); ++v) {
    for (const auto& e : adj_[static_cast<std::size_t>(v)]) {
      if (e.to > v && side[static_cast<std::size_t>(v)] !=
                          side[static_cast<std::size_t>(e.to)]) {
        cut += e.weight;
      }
    }
  }
  return cut;
}

double Graph::CutWeightKWay(std::span<const int> group) const {
  GOLDILOCKS_CHECK(group.size() == static_cast<std::size_t>(num_vertices()));
  double cut = 0.0;
  for (VertexIndex v = 0; v < num_vertices(); ++v) {
    for (const auto& e : adj_[static_cast<std::size_t>(v)]) {
      if (e.to > v && group[static_cast<std::size_t>(v)] !=
                          group[static_cast<std::size_t>(e.to)]) {
        cut += e.weight;
      }
    }
  }
  return cut;
}

Graph Graph::InducedSubgraph(std::span<const VertexIndex> vertices,
                             std::vector<VertexIndex>* old_to_new) const {
  // The partitioner's recursion works on zero-copy CSR views and must never
  // land here; the scratch-arena test pins this counter at zero across
  // RecursivePartition (DESIGN.md §11).
  static obs::Counter& builds = obs::MetricsRegistry::Global().GetCounter(
      "graph.induced_subgraph_builds", obs::MetricKind::kDeterministic);
  builds.Increment();
  std::vector<VertexIndex> map(static_cast<std::size_t>(num_vertices()), -1);
  Graph sub;
  GOLDILOCKS_CHECK(vertices.size() <=
                   static_cast<std::size_t>(
                       std::numeric_limits<VertexIndex>::max()));
  sub.Reserve(static_cast<VertexIndex>(vertices.size()));
  for (const auto v : vertices) {
    map[Checked(v)] = sub.AddVertex(demand(v), balance_weight(v));
  }
  for (const auto v : vertices) {
    for (const auto& e : adj_[Checked(v)]) {
      const auto nu = map[static_cast<std::size_t>(v)];
      const auto nv = map[static_cast<std::size_t>(e.to)];
      if (nv >= 0 && e.to > v) sub.AddEdge(nu, nv, e.weight);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return sub;
}

std::pair<std::vector<int>, int> Graph::ConnectedComponents() const {
  std::vector<int> comp(static_cast<std::size_t>(num_vertices()), -1);
  int num = 0;
  std::vector<VertexIndex> stack;
  for (VertexIndex s = 0; s < num_vertices(); ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    stack.push_back(s);
    comp[static_cast<std::size_t>(s)] = num;
    while (!stack.empty()) {
      const auto v = stack.back();
      stack.pop_back();
      for (const auto& e : adj_[static_cast<std::size_t>(v)]) {
        if (e.weight > 0.0 && comp[static_cast<std::size_t>(e.to)] < 0) {
          comp[static_cast<std::size_t>(e.to)] = num;
          stack.push_back(e.to);
        }
      }
    }
    ++num;
  }
  return {std::move(comp), num};
}

}  // namespace gl
