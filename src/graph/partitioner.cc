#include "graph/partitioner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/coarsen.h"
#include "graph/csr.h"
#include "graph/fm.h"
#include "graph/refine.h"
#include "graph/scratch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// The kernel runs entirely on flat CSR storage (graph/csr.h) with reusable
// scratch arenas (graph/scratch.h): coarse levels are written into arena
// storage, the recursion partitions index ranges of one global permutation
// instead of materializing InducedSubgraph copies, and FM maintains gains
// incrementally across passes (graph/fm.h). DESIGN.md §11 documents the
// layout and why determinism survives the rewrite.

namespace gl {
namespace {

// Deterministic decision counters (DESIGN.md §10). Totals are exact at any
// thread count — addition commutes — and hot loops batch into locals so the
// atomic is touched once per call, not per edge.
obs::Counter& CutEdgesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "partition.cut_edges_evaluated", obs::MetricKind::kDeterministic);
  return c;
}

obs::Counter& FmRejectionsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "partition.bisection_rejections", obs::MetricKind::kDeterministic);
  return c;
}

obs::Counter& DegenerateSplitsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "partition.degenerate_splits", obs::MetricKind::kDeterministic);
  return c;
}

// Zero-copy subgraph views extracted into scratch (one per recursion split);
// the recursion path builds no Graph objects at all, which the arena test
// checks against graph.induced_subgraph_builds.
obs::Counter& SubgraphViewsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "partition.subgraph_views", obs::MetricKind::kDeterministic);
  return c;
}

// Arena growth events: Resets/splits that actually enlarged a scratch
// buffer. Informational — growth depends on the subproblem schedule, which
// varies with the thread count (each worker warms its own arena).
obs::Counter& ScratchGrowthCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "partition.scratch_grow_events", obs::MetricKind::kInformational);
  return c;
}

// Publishes the memory and pool-utilization telemetry of one partition call
// on the informational side of the registry (never hashed, DESIGN.md §10).
void PublishScratchPeak(std::size_t peak_bytes) {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "partition.scratch_peak_bytes", obs::MetricKind::kInformational);
  g.Set(static_cast<double>(peak_bytes));
}

void PublishPoolStats(const ThreadPoolStats& stats) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Gauge& eff = reg.GetGauge("partition.pool.parallel_efficiency",
                                        obs::MetricKind::kInformational);
  static obs::Gauge& busy = reg.GetGauge("partition.pool.busy_ms",
                                         obs::MetricKind::kInformational);
  static obs::Gauge& idle = reg.GetGauge("partition.pool.idle_ms",
                                         obs::MetricKind::kInformational);
  static obs::Gauge& wait = reg.GetGauge("partition.pool.queue_wait_ms",
                                         obs::MetricKind::kInformational);
  eff.Set(stats.ParallelEfficiency());
  busy.Set(stats.busy_us / 1000.0);
  idle.Set(stats.IdleUs() / 1000.0);
  wait.Set(stats.queue_wait_us / 1000.0);
}

// Coarsening lives in graph/coarsen.{h,cc}: deterministic propose/resolve
// heavy-edge matching plus staged parallel contraction, bit-identical at
// every thread width.

// ---------------------------------------------------------------------------
// Balance bookkeeping for an asymmetric split: side 0 should carry
// `target_fraction` of the total weight, within (1 + tolerance).
// ---------------------------------------------------------------------------
struct BalanceBounds {
  double total = 0.0;
  double target0 = 0.0;
  double lo0 = 0.0;
  double hi0 = 0.0;

  BalanceBounds(double total_weight, double target_fraction, double tol) {
    total = total_weight;
    target0 = total * target_fraction;
    const double hi1 = total * (1.0 - target_fraction) * (1.0 + tol);
    hi0 = std::min(total, total * target_fraction * (1.0 + tol));
    lo0 = std::max(0.0, total - hi1);
    if (lo0 > hi0) lo0 = hi0;  // degenerate tolerance; collapse to a point
  }

  [[nodiscard]] bool Feasible(double w0) const {
    return w0 >= lo0 - 1e-9 && w0 <= hi0 + 1e-9;
  }
  // Distance from the feasible interval (0 when inside).
  [[nodiscard]] double Violation(double w0) const {
    if (w0 < lo0) return lo0 - w0;
    if (w0 > hi0) return w0 - hi0;
    return 0.0;
  }
};

// ---------------------------------------------------------------------------
// Initial partition on the coarsest graph: greedy graph growing. Grows side 0
// from a random seed, always absorbing the frontier vertex that most reduces
// the eventual cut, until side 0 reaches its target weight.
// ---------------------------------------------------------------------------
// Reports the grown region's balance weight through `w0_out` (summed in
// absorption order), so callers skip an O(n) SideWeight0 rescan per trial.
void GrowInitialPartition(const CsrGraph& g, const BalanceBounds& bounds,
                          Rng& rng, PartitionScratch& s,
                          std::vector<std::uint8_t>& side, double* w0_out) {
  const auto n = g.num_vertices();
  const auto sn = static_cast<std::size_t>(n);
  side.assign(sn, 1);
  *w0_out = 0.0;
  if (n == 0) return;

  s.heap.Reset(sn);
  s.in_region.assign(sn, 0);
  s.grow_key.resize(sn);
  double w0 = 0.0;

  const auto absorb = [&](VertexIndex v) {
    s.in_region[static_cast<std::size_t>(v)] = 1;
    side[static_cast<std::size_t>(v)] = 0;
    w0 += g.balance_weight(v);
    s.heap.Invalidate(v);
    const auto [to, ws] = g.arc_range(v);
    for (std::size_t i = 0; i < to.size(); ++i) {
      const auto u = static_cast<std::size_t>(to[i]);
      if (s.in_region[u]) continue;
      // Edge i flips from region-external to region-internal for to[i].
      s.grow_key[u] += 2.0 * ws[i];
      s.heap.Push(to[i], s.grow_key[u]);
    }
  };

  const auto seed_new_component = [&]() -> bool {
    // All frontier exhausted: jump to a random vertex outside the region.
    s.outside.clear();
    for (VertexIndex v = 0; v < n; ++v) {
      if (!s.in_region[static_cast<std::size_t>(v)]) s.outside.push_back(v);
    }
    if (s.outside.empty()) return false;
    absorb(s.outside[rng.NextBelow(s.outside.size())]);
    return true;
  };

  // Initial gain of v if absorbed = -(its total external weight); seed with
  // that so the heap ordering is correct from the start.
  for (VertexIndex v = 0; v < n; ++v) {
    s.grow_key[static_cast<std::size_t>(v)] = -g.degree_weight(v);
  }

  if (!seed_new_component()) return;
  while (w0 < bounds.target0) {
    VertexIndex v;
    double priority;
    if (s.heap.Pop(&v, &priority)) {
      if (s.in_region[static_cast<std::size_t>(v)]) continue;
      absorb(v);
    } else if (!seed_new_component()) {
      break;
    }
  }
  *w0_out = w0;
}

// ---------------------------------------------------------------------------
// Fiduccia–Mattheyses refinement with rollback to the best prefix. Also
// restores balance when the incoming partition is infeasible (moves that
// reduce the balance violation are allowed regardless of gain).
//
// Gains are computed once (FmEngine::Attach, O(arcs)) and maintained
// incrementally from then on: each move delta-updates only the moved
// vertex's neighborhood, and the rollback replays Flip in reverse, which
// restores the prefix-state gains — so later passes start from maintained
// gains instead of an O(arcs) recompute.
// ---------------------------------------------------------------------------
// Per-vertex multiplicative heap-priority perturbation for FM trials:
// a pure hash of (vertex, trial salt) mapped into [0.9, 1.1). Popping by
// perturbed priority sends each trial down a different hill-climb while the
// engine still prices every move with exact gains — the rollback keeps the
// best prefix by exact cut, so perturbation reorders exploration and never
// mis-prices it. Additive tie-jitter is useless here: continuous edge
// weights make exact gain ties vanishingly rare, so perturbing anything
// less than the relative order of distinct gains leaves every trial walking
// the same trajectory.
double FmPriorityFactor(VertexIndex v, std::uint64_t salt) {
  std::uint64_t x = salt ^ (static_cast<std::uint64_t>(v) *
                            0x9E3779B97F4A7C15ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return 0.9 + 0.2 * (static_cast<double>(x >> 11) * 0x1.0p-53);
}

// The pass loop proper, on caller-supplied working state so the classic
// single-stream path and every concurrent multi-trial instance share one
// implementation. `seed_order` reorders the seeding scan (null = ascending
// ids) and `perturb_salt`, when set, scales every heap priority by
// FmPriorityFactor — move bookkeeping always uses the engine's exact gains,
// so trials explore different move orders while pricing every cut
// identically.
void FmPassLoop(const CsrGraph& g, const BalanceBounds& bounds,
                const PartitionOptions& opts, int max_passes,
                FmEngine& engine, std::vector<std::uint8_t>& side,
                double& cut, double& w0, LazyMaxHeap& heap,
                std::vector<std::uint8_t>& moved,
                std::vector<VertexIndex>& move_seq,
                const std::vector<VertexIndex>* seed_order,
                const std::uint64_t* perturb_salt,
                std::uint64_t* moves_rejected) {
  obs::TraceSpan span("partition.refine.fm",
                      static_cast<std::int64_t>(g.num_vertices()));
  const auto n = g.num_vertices();
  const auto sn = static_cast<std::size_t>(n);

  // Cost controls engage only above the coarsening threshold: small graphs
  // are cheap enough to explore exhaustively, and their relative cut swings
  // are large enough that cutting exploration short costs real quality.
  const bool big = n > 2 * opts.coarsen_target;

  for (int pass = 0; pass < max_passes; ++pass) {
    // Boundary seeding: when the balance is feasible, only candidates with
    // positive gain or cut adjacency are worth queueing — the classic
    // boundary-FM move set. A vertex with cross-cut weight has
    // gain(v) + degree(v) = 2*w_cross > 0; one whose move strictly improves
    // the cut has gain(v) > 0. Everything else is interior with nothing to
    // offer at seed time — it enters the heap the moment a neighbor's move
    // makes it relevant. An infeasible balance needs arbitrary vertices to
    // restore it, so restoration passes seed everyone.
    const bool seed_all = bounds.Violation(w0) > 1e-12;
    heap.Reset(sn);
    const auto push = [&](VertexIndex v, double gv) {
      heap.Push(v, perturb_salt != nullptr
                       ? gv * FmPriorityFactor(v, *perturb_salt)
                       : gv);
    };
    const auto push_seed = [&](VertexIndex v) {
      const double gv = engine.gain(v);
      if (seed_all || gv > 1e-12 || gv + g.degree_weight(v) > 1e-12) {
        push(v, gv);
      }
    };
    if (seed_order != nullptr) {
      for (const auto v : *seed_order) push_seed(v);
    } else {
      for (VertexIndex v = 0; v < n; ++v) push_seed(v);
    }

    moved.assign(sn, 0);
    move_seq.clear();
    const double pass_cut = cut;
    const double pass_w0 = w0;
    double best_cut = cut;
    double best_violation = bounds.Violation(w0);
    std::size_t best_prefix = 0;
    int stall = 0;

    VertexIndex v;
    double priority;
    while (heap.Pop(&v, &priority)) {
      if (moved[static_cast<std::size_t>(v)]) continue;
      const double bw = g.balance_weight(v);
      const bool from0 = side[static_cast<std::size_t>(v)] == 0;
      const double new_w0 = from0 ? w0 - bw : w0 + bw;
      const double cur_violation = bounds.Violation(w0);
      const double new_violation = bounds.Violation(new_w0);
      // Permit the move if it stays feasible, or strictly improves an
      // infeasible balance (restoration mode).
      if (new_violation > 1e-12 && new_violation >= cur_violation) {
        ++*moves_rejected;
        continue;
      }

      moved[static_cast<std::size_t>(v)] = 1;
      move_seq.push_back(v);
      cut -= engine.gain(v);
      w0 = new_w0;
      engine.Flip(v);

      // Re-queue the unlocked neighbors at their updated gains; locked
      // neighbors keep exact gains too (Flip maintains them all) but stay
      // out of the heap for this pass.
      const auto to = g.arcs(v);
      for (std::size_t i = 0; i < to.size(); ++i) {
        if (!moved[static_cast<std::size_t>(to[i])]) {
          push(to[i], engine.gain(to[i]));
        }
      }

      const double violation = bounds.Violation(w0);
      const bool better =
          (violation < best_violation - 1e-12) ||
          (violation <= best_violation + 1e-12 && cut < best_cut - 1e-12);
      if (better) {
        best_cut = cut;
        best_violation = violation;
        best_prefix = move_seq.size();
        stall = 0;
      } else if (++stall > opts.fm_stall_limit ||
                 (violation <= best_violation + 1e-12 &&
                  cut > best_cut + (big ? 0.10 : 0.35) *
                                       (std::abs(best_cut) + 1.0))) {
        // Give up on a hill-climb that has either stalled or dug itself too
        // far above the best cut seen — prefixes that deep essentially never
        // recover within the stall budget, and every probe move costs a Flip
        // now and another at rollback. Small graphs get a looser leash
        // (their relative cut swings are larger and exploring them is
        // cheap); large graphs cut off at 10%.
        break;
      }
    }

    // Roll back everything after the best prefix; reverse-order Flips
    // restore the prefix gains, so the next pass needs no recompute.
    for (std::size_t i = move_seq.size(); i > best_prefix; --i) {
      const auto u = move_seq[i - 1];
      const double bw = g.balance_weight(u);
      w0 += side[static_cast<std::size_t>(u)] == 0 ? -bw : bw;
      engine.Flip(u);
    }
    cut = best_cut;
    const bool improved = best_cut < pass_cut - 1e-12 ||
                          best_violation < bounds.Violation(pass_w0) - 1e-12;
    if (!improved) break;
  }
}

void FmRefine(const CsrGraph& g, const BalanceBounds& bounds,
              const PartitionOptions& opts, std::vector<std::uint8_t>& side,
              double& cut, double& w0, PartitionScratch& s) {
  FmEngine engine;
  engine.Attach(g, &side, &s.gain);
  // The Attach scan prices the incoming assignment; the caller's stale (or
  // carried) value is replaced wholesale, which also re-canonicalizes any
  // accumulated rounding drift once per level.
  cut = engine.initial_cut();
  std::uint64_t moves_rejected = 0;
  FmPassLoop(g, bounds, opts, opts.refine_passes, engine, side, cut, w0,
             s.heap, s.moved, s.move_seq, /*seed_order=*/nullptr,
             /*perturb_salt=*/nullptr, &moves_rejected);
  CutEdgesCounter().Add(engine.arcs_scanned());
  FmRejectionsCounter().Add(moves_rejected);
}

// ---------------------------------------------------------------------------
// Multi-trial FM (DESIGN.md §16): on levels big enough to matter, run
// opts.fm_trials independent FM instances from the same projected
// assignment — trial t seeds its heap in an order shuffled by the keyed
// sub-stream Fork(t), with a tiny deterministic tie-perturbation on seed
// priorities — and adopt the canonical winner (graph/refine.h). Gains for
// the common starting point are computed once by a chunked scan whose
// per-chunk partial cuts fold in chunk order (one canonical summation order
// at every width); each trial then copies that state and maintains it
// incrementally. Trials are embarrassingly parallel: every mutable buffer is
// trial-owned, so the batch runs on the pool when one is available and
// back-to-back otherwise, with bit-identical results either way.
// ---------------------------------------------------------------------------
void FmRefineMultiTrial(const CsrGraph& g, const BalanceBounds& bounds,
                        const PartitionOptions& opts, ThreadPool* pool,
                        std::uint64_t level_salt,
                        std::vector<std::uint8_t>& side, double& cut,
                        double& w0, PartitionScratch& s) {
  const auto n = g.num_vertices();
  if (n < static_cast<VertexIndex>(opts.parallel_min_vertices) ||
      opts.fm_trials <= 1) {
    FmRefine(g, bounds, opts, side, cut, w0, s);
    return;
  }
  const auto sn = static_cast<std::size_t>(n);

  // Shared gain precompute over the projected assignment. Chunk c's partial
  // cross-weight lands in chunk_partials[c]; the serial fold below visits
  // chunks in index order, so the starting cut is the same double at every
  // thread width (DESIGN.md §9).
  s.gain.resize(sn);
  const std::size_t chunks =
      (sn + kPartitionChunkGrain - 1) / kPartitionChunkGrain;
  s.chunk_partials.assign(chunks, 0.0);
  ForPartitionChunks(
      pool, sn, [&](int, std::size_t begin, std::size_t end) {
        double cross = 0.0;
        for (std::size_t sv = begin; sv < end; ++sv) {
          GOLDILOCKS_CHECK(sv < sn);
          const auto v = static_cast<VertexIndex>(sv);
          const auto [to, ws] = g.arc_range(v);
          double gv = 0.0;
          for (std::size_t i = 0; i < to.size(); ++i) {
            const bool is_cross =
                side[sv] != side[static_cast<std::size_t>(to[i])];
            gv += is_cross ? ws[i] : -ws[i];
          }
          s.gain[sv] = gv;
          cross += gv + g.degree_weight(v);
        }
        s.chunk_partials[begin / kPartitionChunkGrain] = cross;
      });
  double cross_total = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) cross_total += s.chunk_partials[c];
  const double cut0 = cross_total / 4.0;

  const auto trials = static_cast<std::size_t>(opts.fm_trials);
  if (s.fm_trials.size() < trials) s.fm_trials.resize(trials);
  s.trial_outcomes.resize(trials);
  // Every trial gets the full pass budget: trials exist to buy quality with
  // width, and a trial cut short mid-climb is worth little. The extra work
  // runs on otherwise-idle workers — the level's critical path is still one
  // trial's pass loop — and at width 1 it is the price of the quality the
  // winner fold buys back.
  const int passes_per_trial = opts.refine_passes;
  const Rng trial_base(level_salt);

  const auto run_trial = [&](std::size_t t) {
    // Trials are parallel lanes whenever a pool is attached: the profiler
    // treats them as alternatives even when a narrow machine ran them
    // back-to-back on one worker.
    obs::TraceSpan trial_span("partition.refine.trial",
                              static_cast<std::int64_t>(t),
                              /*parallel_lane=*/pool != nullptr);
    FmTrialScratch& tr = s.fm_trials[t];
    tr.side.assign(side.begin(), side.end());
    tr.gain.assign(s.gain.begin(), s.gain.end());
    FmEngine engine;
    engine.AttachPrecomputed(g, &tr.side, &tr.gain, cut0);
    double trial_cut = cut0;
    double trial_w0 = w0;
    tr.rejections = 0;

    Rng rng = trial_base.Fork(static_cast<std::uint64_t>(t));
    tr.seed_order.resize(sn);
    std::iota(tr.seed_order.begin(), tr.seed_order.end(), 0);
    if (t > 0) {
      for (std::size_t i = sn; i > 1; --i) {
        std::swap(tr.seed_order[i - 1], tr.seed_order[rng.NextBelow(i)]);
      }
    }
    // Trial 0 is the un-perturbed stream (identity order, exact
    // priorities): the winner can only match or improve on classic FM.
    const std::uint64_t trial_salt = rng.NextU64();
    FmPassLoop(g, bounds, opts, passes_per_trial, engine, tr.side, trial_cut,
               trial_w0, tr.heap, tr.moved, tr.move_seq, &tr.seed_order,
               t > 0 ? &trial_salt : nullptr, &tr.rejections);
    tr.cut = trial_cut;
    tr.w0 = trial_w0;
    tr.arcs_scanned = engine.arcs_scanned();
  };
  if (pool != nullptr) {
    pool->ParallelFor(trials, run_trial);
  } else {
    for (std::size_t t = 0; t < trials; ++t) run_trial(t);
  }

  // Canonical serial fold over the trial outcomes; counters accumulate in
  // trial order, and the shared precompute scan is charged exactly once —
  // the deterministic totals never depend on scheduling or width.
  for (std::size_t t = 0; t < trials; ++t) {
    s.trial_outcomes[t] = {bounds.Violation(s.fm_trials[t].w0),
                           s.fm_trials[t].cut};
  }
  const std::size_t win = PickFmWinner(s.trial_outcomes);
  const FmTrialScratch& winner = s.fm_trials[win];
  side.assign(winner.side.begin(), winner.side.end());
  cut = winner.cut;
  w0 = winner.w0;
  std::uint64_t arcs = g.num_arcs();
  std::uint64_t rejections = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    arcs += s.fm_trials[t].arcs_scanned;
    rejections += s.fm_trials[t].rejections;
  }
  CutEdgesCounter().Add(arcs);
  FmRejectionsCounter().Add(rejections);
}

// ---------------------------------------------------------------------------
// Multilevel bisection on a CSR graph, entirely in arena storage: coarsen
// into s.levels, grow + refine on the coarsest, project back through the
// level maps refining at every level. Writes the finest-level sides into
// `side_out` (any scratch buffer other than s.side).
// ---------------------------------------------------------------------------

struct CsrBisection {
  double cut_weight = 0.0;
  double w0 = 0.0;
  bool balanced = false;
};

CsrBisection BisectCsr(const CsrGraph& g, const PartitionOptions& opts,
                       double target_fraction, ThreadPool* pool,
                       PartitionScratch& s,
                       std::vector<std::uint8_t>& side_out) {
  const auto n = g.num_vertices();
  CsrBisection out;
  side_out.assign(static_cast<std::size_t>(n), 0);
  if (n <= 1) {
    out.w0 = g.total_balance_weight();
    out.balanced = true;
    return out;
  }

  Rng rng(opts.seed);

  // Levels below the parallel threshold coarsen and refine without the
  // pool: the gate reads the problem size only, so gating changes nothing
  // but scheduling (DESIGN.md §9).
  const auto level_pool = [&](const CsrGraph& level) {
    return level.num_vertices() >=
                   static_cast<VertexIndex>(opts.parallel_min_vertices)
               ? pool
               : nullptr;
  };

  // Coarsen until the target size or the matching stalls (e.g. star graphs):
  // coarsening must shrink meaningfully or refinement costs outweigh the
  // benefit. Levels live in the arena deque, so pointers into it are stable
  // while it grows and storage is reused across calls.
  auto& levels = s.level_chain;
  levels.clear();
  levels.push_back(&g);
  std::size_t li = 0;
  while (levels.back()->num_vertices() > opts.coarsen_target) {
    // One span per level, stall checks included; arg = level index.
    obs::TraceSpan coarsen_span("partition.coarsen",
                                static_cast<std::int64_t>(li));
    if (s.levels.size() <= li) {
      s.levels.emplace_back();
      s.level_maps.emplace_back();
    }
    CsrGraph& coarse = s.levels[li];
    const CsrGraph& fine = *levels.back();
    HeavyEdgeMatch(fine, level_pool(fine), rng, s);
    ContractByMatching(fine, level_pool(fine), coarse, s.level_maps[li], s);
    if (coarse.num_vertices() >
        static_cast<VertexIndex>(0.95 * fine.num_vertices())) {
      break;
    }
    levels.push_back(&coarse);
    ++li;
  }

  // Several growing trials on the coarsest graph; keep the best after a
  // quick refinement.
  const CsrGraph& coarsest = *levels.back();
  const BalanceBounds coarse_bounds(coarsest.total_balance_weight(),
                                    target_fraction, opts.balance_tolerance);
  PartitionOptions quick = opts;
  quick.refine_passes = 2;
  // Trials only rank starting points — the projection sweep below does the
  // real refinement — so cap their hill-climb: on a coarsest graph of ~100
  // vertices a stall budget of 256 means every pass churns the whole graph
  // and rolls most of it back. Never raises the caller's limit.
  quick.fm_stall_limit = std::min(quick.fm_stall_limit, 16);
  double best_cut = 0.0;
  double best_w0 = 0.0;
  bool have_best = false;
  for (int t = 0; t < std::max(1, opts.initial_trials); ++t) {
    double w0 = 0.0;
    GrowInitialPartition(coarsest, coarse_bounds, rng, s, s.trial_side, &w0);
    double cut = 0.0;  // FmRefine derives it from the Attach scan
    FmRefine(coarsest, coarse_bounds, quick, s.trial_side, cut, w0, s);
    const bool better =
        !have_best ||
        coarse_bounds.Violation(w0) < coarse_bounds.Violation(best_w0) - 1e-12 ||
        (coarse_bounds.Violation(w0) <=
             coarse_bounds.Violation(best_w0) + 1e-12 &&
         cut < best_cut - 1e-12);
    if (better) {
      s.best_side.swap(s.trial_side);
      best_cut = cut;
      best_w0 = w0;
      have_best = true;
    }
  }

  // Project through the hierarchy, refining at every level. Each level
  // draws its refinement salt from the bisection's serial stream, so the
  // per-trial sub-streams are a pure function of (seed, level) — never of
  // scheduling.
  s.side.assign(s.best_side.begin(), s.best_side.end());
  double cut = best_cut;
  double w0 = best_w0;
  for (std::size_t lvl = levels.size() - 1; lvl > 0; --lvl) {
    const CsrGraph& fine = *levels[lvl - 1];
    const auto& map = s.level_maps[lvl - 1];
    const auto fn = static_cast<std::size_t>(fine.num_vertices());
    s.fine_side.resize(fn);
    for (std::size_t v = 0; v < fn; ++v) {
      s.fine_side[v] = s.side[static_cast<std::size_t>(map[v])];
    }
    s.side.swap(s.fine_side);
    // Projection preserves both tracked quantities algebraically (coarse
    // balance and arc weights are sums of fine ones), so carry them instead
    // of recomputing O(arcs) per level; the final per-bisection recompute
    // below re-canonicalizes the reported numbers.
    const BalanceBounds bounds(fine.total_balance_weight(), target_fraction,
                               opts.balance_tolerance);
    const std::uint64_t level_salt = rng.NextU64();
    obs::TraceSpan refine_span("partition.refine",
                               static_cast<std::int64_t>(lvl - 1));
    FmRefineMultiTrial(fine, bounds, opts, level_pool(fine), level_salt,
                       s.side, cut, w0, s);
  }

  const BalanceBounds bounds(g.total_balance_weight(), target_fraction,
                             opts.balance_tolerance);
  side_out.assign(s.side.begin(), s.side.end());
  // The tracked values are exact up to summation order: FM maintains both
  // incrementally and re-prices the cut from a full scan at every level's
  // Attach, so a final O(n + arcs) recompute would only reorder the same
  // sums. Tests compare against from-scratch recomputes with tolerances.
  out.cut_weight = cut;
  out.w0 = w0;
  out.balanced = bounds.Feasible(out.w0);
  return out;
}

}  // namespace

Bisection Bisect(const Graph& g, const PartitionOptions& opts,
                 double target_fraction) {
  GOLDILOCKS_CHECK(target_fraction > 0.0 && target_fraction < 1.0);
  Bisection result;
  const auto n = g.num_vertices();
  result.side.assign(static_cast<std::size_t>(n), 0);
  if (n <= 1) {
    result.side_weight[0] = g.total_balance_weight();
    result.balanced = true;
    return result;
  }

  CsrGraph csr;
  csr.BuildFrom(g);
  PartitionScratch scratch;
  CsrBisection bis;
  if (opts.threads > 1) {
    // A standalone bisection owns its pool; the recursive drivers thread
    // theirs through instead. Identical results either way — the pool only
    // changes scheduling, never output (DESIGN.md §9).
    ThreadPool pool(opts.threads);
    bis = BisectCsr(csr, opts, target_fraction, &pool, scratch, result.side);
    PublishPoolStats(pool.Stats());
  } else {
    bis = BisectCsr(csr, opts, target_fraction, nullptr, scratch,
                    result.side);
  }
  result.cut_weight = bis.cut_weight;
  result.side_weight[0] = bis.w0;
  result.side_weight[1] = g.total_balance_weight() - bis.w0;
  result.balanced = bis.balanced;
  return result;
}

namespace {

// ---------------------------------------------------------------------------
// Zero-copy recursion: one global permutation instead of subgraph copies.
//
// `perm` maps position → vertex id and `where` maps vertex id → position;
// a sub-problem is a contiguous position range [lo, hi). Splitting a range
// stable-partitions its slice of `perm` by bisection side, so a child range
// preserves its parent's relative order — the same vertex order the old
// InducedSubgraph chain produced. CSR views of a range are extracted into
// scratch only for the bisection itself and recycled immediately.
//
// `where` is the one array read across range boundaries (the membership
// test for neighbors), so under the parallel driver it is written by one
// task while others read it. The entries are relaxed atomics: concurrent
// writers only ever move a vertex within their own disjoint range, so a
// racing reader gets either the old or the new position — both on the same
// side of the membership test — and results stay bit-identical at every
// thread count (DESIGN.md §9).
// ---------------------------------------------------------------------------
struct RangeCtx {
  const Graph* g = nullptr;       // demands for leaf emission
  const CsrGraph* csr = nullptr;  // topology for everything else
  const PartitionOptions* opts = nullptr;
  const FitPredicate* fits = nullptr;
  const CapacityUnitsFn* units = nullptr;
  std::vector<VertexIndex> perm;
  std::vector<std::atomic<VertexIndex>> where;

  [[nodiscard]] VertexIndex PositionOf(VertexIndex v) const {
    return where[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
  }
  void Place(VertexIndex v, std::size_t pos) {
    GOLDILOCKS_CHECK(pos < perm.size());
    perm[pos] = v;
    where[static_cast<std::size_t>(v)].store(static_cast<VertexIndex>(pos),
                                             std::memory_order_relaxed);
  }
};

// CSR view of a position range, extracted into scratch. Local id = position
// - lo, so local order is the range's (stable) order. No Graph objects, no
// per-row allocations once the arena is warm.
void ExtractSub(const RangeCtx& ctx, std::size_t lo, std::size_t hi,
                CsrGraph& sub) {
  GOLDILOCKS_CHECK(lo <= hi && hi <= ctx.perm.size());
  sub.BeginBuild(static_cast<VertexIndex>(hi - lo), 0);
  for (std::size_t pos = lo; pos < hi; ++pos) {
    const auto v = ctx.perm[pos];
    sub.BeginRow(ctx.csr->balance_weight(v));
    const auto [to, ws] = ctx.csr->arc_range(v);
    for (std::size_t i = 0; i < to.size(); ++i) {
      const auto p = static_cast<std::size_t>(ctx.PositionOf(to[i]));
      if (p >= lo && p < hi) {
        sub.PushArc(static_cast<VertexIndex>(p - lo), ws[i]);
      }
    }
  }
  sub.EndBuild();
  SubgraphViewsCounter().Increment();
}

// Demand of a range, summed in position order — the same order the old
// induced-subgraph construction accumulated it in.
Resource RangeDemand(const RangeCtx& ctx, std::size_t lo, std::size_t hi) {
  Resource d;
  for (std::size_t pos = lo; pos < hi; ++pos) {
    d += ctx.g->demand(ctx.perm[pos]);
  }
  return d;
}

// A group may only become terminal if it contains no anti-affinity
// (negative) edge: replicas must end up in different groups (Sec. IV-C).
bool HasNegativeInternalEdge(const RangeCtx& ctx, std::size_t lo,
                             std::size_t hi) {
  for (std::size_t pos = lo; pos < hi; ++pos) {
    const auto v = ctx.perm[pos];
    const auto [to, ws] = ctx.csr->arc_range(v);
    for (std::size_t i = 0; i < to.size(); ++i) {
      if (ws[i] >= 0.0) continue;
      const auto p = static_cast<std::size_t>(ctx.PositionOf(to[i]));
      if (p >= lo && p < hi) return true;
    }
  }
  return false;
}

bool FitTerminal(const RangeCtx& ctx, std::size_t lo, std::size_t hi,
                 const Resource& demand) {
  const int count = static_cast<int>(hi - lo);
  return ((*ctx.fits)(demand, count) && !HasNegativeInternalEdge(ctx, lo, hi)) ||
         count == 1;
}

void RecordFitLeaf(const RangeCtx& ctx, std::size_t lo, std::size_t hi,
                   const Resource& demand, const std::string& path,
                   RecursivePartitionResult& out) {
  const int count = static_cast<int>(hi - lo);
  const int gid = out.num_groups++;
  for (std::size_t pos = lo; pos < hi; ++pos) {
    out.group_of[static_cast<std::size_t>(ctx.perm[pos])] = gid;
  }
  out.group_path.push_back(path);
  out.group_demand.push_back(demand);
  out.group_size.push_back(count);
  if (!(*ctx.fits)(demand, count)) out.oversized_groups.push_back(gid);
}

// Bisects a range in place: extracts its CSR view, bisects it, then
// stable-partitions the range's slice of `perm` by side. Returns the
// bisection's cut weight; `*mid` is the start of the side-1 child and
// `child_seeds` the children's seed chain (same chain as always).
double SplitRange(RangeCtx& ctx, std::size_t lo, std::size_t hi,
                  const Resource& demand, std::size_t depth,
                  std::uint64_t seed, ThreadPool* pool, PartitionScratch& s,
                  std::uint64_t child_seeds[2], std::size_t* mid) {
  // One span per recursion level; arg = depth in the recursion tree.
  obs::TraceSpan split_span("partition.split",
                            static_cast<std::int64_t>(depth));
  const std::size_t count = hi - lo;
  PartitionOptions sub = *ctx.opts;
  sub.seed = seed;
  // Proportional split target: carve off whole server-units so leaves fill
  // servers tightly instead of landing at ~50-70% from plain halving.
  double fraction = 0.5;
  if (*ctx.units) {
    const double u = std::max(1.0 + 1e-9, (*ctx.units)(demand));
    fraction = std::clamp(std::ceil(u / 2.0) / u, 0.25, 0.75);
  }
  ExtractSub(ctx, lo, hi, s.sub);
  const auto bis = BisectCsr(s.sub, sub, fraction, pool, s, s.node_side);

  s.split_zero.clear();
  s.split_one.clear();
  for (std::size_t i = 0; i < count; ++i) {
    (s.node_side[i] == 0 ? s.split_zero : s.split_one)
        .push_back(ctx.perm[lo + i]);
  }
  // Defensive: if the bisection degenerated (all vertices one side — can
  // happen with pathological weights), force an arbitrary split so the
  // recursion always terminates.
  if (s.split_zero.empty() || s.split_one.empty()) {
    DegenerateSplitsCounter().Increment();
    s.split_zero.clear();
    s.split_one.clear();
    for (std::size_t i = 0; i < count; ++i) {
      (i < count / 2 ? s.split_zero : s.split_one)
          .push_back(ctx.perm[lo + i]);
    }
  }

  std::size_t pos = lo;
  for (const auto v : s.split_zero) ctx.Place(v, pos++);
  for (const auto v : s.split_one) ctx.Place(v, pos++);
  *mid = lo + s.split_zero.size();

  Rng salt(seed);
  child_seeds[0] = salt.NextU64();
  child_seeds[1] = salt.NextU64();
  // Arena accounting once per split (coarse-grained: ~20 capacity sums per
  // bisection, invisible next to the bisection itself).
  if (s.NoteHighWater()) ScratchGrowthCounter().Increment();
  return bis.cut_weight;
}

// Serial recursion. Cut contributions are appended to `cuts` in preorder
// (node before its subtrees) instead of summed in place, so the final
// left-fold reproduces one canonical summation order no matter how the
// subtrees were scheduled across threads.
void FitRecurse(RangeCtx& ctx, std::size_t lo, std::size_t hi,
                const std::string& path, std::uint64_t seed,
                PartitionScratch& s, RecursivePartitionResult& out,
                std::vector<double>& cuts) {
  if (lo == hi) return;
  const Resource demand = RangeDemand(ctx, lo, hi);
  if (FitTerminal(ctx, lo, hi, demand)) {
    RecordFitLeaf(ctx, lo, hi, demand, path, out);
    return;
  }
  std::size_t mid = lo;
  std::uint64_t child_seeds[2];
  // Serial subtrees never see the pool: a worker task re-entering the pool
  // would deadlock, and the frontier already carries the parallelism.
  cuts.push_back(SplitRange(ctx, lo, hi, demand, path.size(), seed,
                            /*pool=*/nullptr, s, child_seeds, &mid));
  FitRecurse(ctx, lo, mid, path + '0', child_seeds[0], s, out, cuts);
  FitRecurse(ctx, mid, hi, path + '1', child_seeds[1], s, out, cuts);
}

// Parallel driver: expands the top of the recursion tree breadth-first —
// splitting every non-terminal frontier node, each level's splits running
// concurrently on disjoint position ranges — until the frontier carries at
// least opts.threads sub-problems, then solves each frontier subtree
// serially on the pool and merges the per-task results in preorder.
// Preorder merging reproduces the serial group numbering exactly, and the
// preorder cut fold reproduces the serial summation order, so the result is
// bit-identical at every thread count. Every concurrent unit gets its own
// scratch arena; results don't depend on arena history (DESIGN.md §11).
RecursivePartitionResult RecursivePartitionParallel(
    RangeCtx& ctx, const Resource& root_demand,
    RecursivePartitionResult out) {
  const auto n = static_cast<std::size_t>(ctx.csr->num_vertices());
  obs::TraceSpan span("partition.parallel", static_cast<std::int64_t>(n));
  const PartitionOptions& opts = *ctx.opts;
  struct ExpandNode {
    std::size_t lo = 0;
    std::size_t hi = 0;
    std::string path;
    std::uint64_t seed = 0;
    Resource demand;
    double cut = 0.0;
    int left = -1;  // < 0: unexpanded (frontier task or terminal)
    int right = -1;
  };

  ThreadPool pool(opts.threads);
  std::size_t scratch_peak = 0;  // max arena high-water over all arenas

  // Root is split in place on the calling thread, with the pool driving the
  // split's own coarsening and refinement — at depth 0 the whole-graph
  // bisection IS the serial wall, so this is where intra-bisection
  // parallelism pays the most.
  std::vector<ExpandNode> tree(3);
  {
    PartitionScratch s;
    std::size_t mid = 0;
    std::uint64_t child_seeds[2];
    tree[0].lo = 0;
    tree[0].hi = n;
    tree[0].seed = opts.seed;
    tree[0].demand = root_demand;
    tree[0].cut = SplitRange(ctx, 0, n, root_demand, 0, opts.seed, &pool, s,
                             child_seeds, &mid);
    scratch_peak = std::max(scratch_peak, s.peak_bytes);
    tree[0].left = 1;
    tree[0].right = 2;
    tree[1] = {0,   mid, "0", child_seeds[0], RangeDemand(ctx, 0, mid),
               0.0, -1,  -1};
    tree[2] = {mid, n,   "1", child_seeds[1], RangeDemand(ctx, mid, n),
               0.0, -1,  -1};
  }
  std::vector<int> frontier = {1, 2};

  // Oversubscribe the frontier 4×: worker subtrees differ wildly in cost,
  // and more, smaller subtrees let fast lanes keep absorbing work instead
  // of idling behind the largest one. Expansion depth is result-neutral —
  // per-node seeds derive from the recursion path and the merge below is
  // preorder — so the target only shapes scheduling.
  while (static_cast<int>(frontier.size()) < 4 * opts.threads) {
    std::vector<int> splittable;
    for (const int idx : frontier) {
      const auto& nd = tree[static_cast<std::size_t>(idx)];
      if (nd.hi - nd.lo > 1 && !FitTerminal(ctx, nd.lo, nd.hi, nd.demand)) {
        splittable.push_back(idx);
      }
    }
    if (splittable.empty()) break;

    struct SplitOut {
      double cut = 0.0;
      std::size_t mid = 0;
      std::uint64_t child_seeds[2] = {0, 0};
    };
    std::vector<SplitOut> splits(splittable.size());
    std::vector<PartitionScratch> scratch(splittable.size());
    if (splittable.size() == 1) {
      // A lone expansion split runs on the calling thread with the pool
      // inside the bisection (calling it from a pool task would re-enter
      // ParallelFor); with several, the splits themselves are the
      // parallelism.
      const auto& nd = tree[static_cast<std::size_t>(splittable[0])];
      splits[0].cut =
          SplitRange(ctx, nd.lo, nd.hi, nd.demand, nd.path.size(), nd.seed,
                     &pool, scratch[0], splits[0].child_seeds,
                     &splits[0].mid);
    } else {
      pool.ParallelFor(splittable.size(), [&](std::size_t k) {
        const auto& nd = tree[static_cast<std::size_t>(splittable[k])];
        splits[k].cut = SplitRange(ctx, nd.lo, nd.hi, nd.demand,
                                   nd.path.size(), nd.seed, /*pool=*/nullptr,
                                   scratch[k], splits[k].child_seeds,
                                   &splits[k].mid);
      });
    }
    for (const auto& s : scratch) {
      scratch_peak = std::max(scratch_peak, s.peak_bytes);
    }

    // Graft the children in, preserving the frontier's DFS order.
    std::vector<int> next_frontier;
    std::size_t k = 0;
    for (const int idx : frontier) {
      if (k < splittable.size() && splittable[k] == idx) {
        const int left = static_cast<int>(tree.size());
        const int right = left + 1;
        std::size_t lo = 0;
        std::size_t hi = 0;
        std::string path;
        {
          // Scoped: push_back below may reallocate and dangle this reference.
          auto& nd = tree[static_cast<std::size_t>(idx)];
          nd.cut = splits[k].cut;
          nd.left = left;
          nd.right = right;
          lo = nd.lo;
          hi = nd.hi;
          path = nd.path;
        }
        const std::size_t mid = splits[k].mid;
        tree.push_back({lo,  mid, path + '0', splits[k].child_seeds[0],
                        RangeDemand(ctx, lo, mid), 0.0, -1, -1});
        tree.push_back({mid, hi,  path + '1', splits[k].child_seeds[1],
                        RangeDemand(ctx, mid, hi), 0.0, -1, -1});
        next_frontier.push_back(left);
        next_frontier.push_back(right);
        ++k;
      } else {
        next_frontier.push_back(idx);
      }
    }
    frontier = std::move(next_frontier);
  }

  // Solve each frontier subtree serially, into task-local results.
  struct TaskResult {
    RecursivePartitionResult out;
    std::vector<double> cuts;
  };
  std::vector<TaskResult> results(frontier.size());
  std::vector<PartitionScratch> scratch(frontier.size());
  pool.ParallelFor(frontier.size(), [&](std::size_t k) {
    // Per-worker subtree span; arg = frontier slot (stable across runs).
    obs::TraceSpan worker_span("partition.worker",
                               static_cast<std::int64_t>(k));
    const auto& nd = tree[static_cast<std::size_t>(frontier[k])];
    results[k].out.group_of.assign(n, -1);
    FitRecurse(ctx, nd.lo, nd.hi, nd.path, nd.seed, scratch[k],
               results[k].out, results[k].cuts);
  });
  for (const auto& s : scratch) {
    scratch_peak = std::max(scratch_peak, s.peak_bytes);
  }
  PublishScratchPeak(scratch_peak);
  PublishPoolStats(pool.Stats());

  // Preorder merge on the calling thread: group ids, paths and cut terms
  // land in exactly the order the serial recursion would have produced.
  std::vector<int> task_of(tree.size(), -1);
  for (std::size_t k = 0; k < frontier.size(); ++k) {
    task_of[static_cast<std::size_t>(frontier[k])] = static_cast<int>(k);
  }
  double cut_weight = 0.0;
  // Explicit stack; the expansion tree is only ~log2(threads) deep but the
  // iterative form costs nothing.
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    const int idx = stack.back();
    stack.pop_back();
    const auto& nd = tree[static_cast<std::size_t>(idx)];
    if (nd.left < 0) {
      const auto& tr = results[static_cast<std::size_t>(
          task_of[static_cast<std::size_t>(idx)])];
      const int base = out.num_groups;
      for (std::size_t pos = nd.lo; pos < nd.hi; ++pos) {
        const auto id = static_cast<std::size_t>(ctx.perm[pos]);
        const int local = tr.out.group_of[id];
        if (local >= 0) out.group_of[id] = base + local;
      }
      out.num_groups += tr.out.num_groups;
      out.group_path.insert(out.group_path.end(), tr.out.group_path.begin(),
                            tr.out.group_path.end());
      out.group_demand.insert(out.group_demand.end(),
                              tr.out.group_demand.begin(),
                              tr.out.group_demand.end());
      out.group_size.insert(out.group_size.end(), tr.out.group_size.begin(),
                            tr.out.group_size.end());
      for (const int og : tr.out.oversized_groups) {
        out.oversized_groups.push_back(base + og);
      }
      for (const double c : tr.cuts) cut_weight += c;
      continue;
    }
    cut_weight += nd.cut;
    // Right pushed first so the left subtree is visited first (preorder).
    stack.push_back(nd.right);
    stack.push_back(nd.left);
  }
  out.cut_weight = cut_weight;
  return out;
}

void InitRangeCtx(RangeCtx& ctx, const Graph& g, const CsrGraph& csr,
                  const PartitionOptions& opts) {
  ctx.g = &g;
  ctx.csr = &csr;
  ctx.opts = &opts;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  ctx.perm.resize(n);
  std::iota(ctx.perm.begin(), ctx.perm.end(), 0);
  ctx.where = std::vector<std::atomic<VertexIndex>>(n);
  for (std::size_t v = 0; v < n; ++v) {
    ctx.where[v].store(static_cast<VertexIndex>(v),
                       std::memory_order_relaxed);
  }
}

void KWayRecurse(RangeCtx& ctx, std::size_t lo, std::size_t hi, int k,
                 int first_group, std::uint64_t seed, PartitionScratch& s,
                 KWayResult& out) {
  if (k == 1 || hi - lo <= 1) {
    for (std::size_t pos = lo; pos < hi; ++pos) {
      out.group_of[static_cast<std::size_t>(ctx.perm[pos])] = first_group;
    }
    return;
  }
  const int k0 = (k + 1) / 2;
  PartitionOptions sub = *ctx.opts;
  sub.seed = seed;
  ExtractSub(ctx, lo, hi, s.sub);
  const auto bis =
      BisectCsr(s.sub, sub, static_cast<double>(k0) / static_cast<double>(k),
                /*pool=*/nullptr, s, s.node_side);
  out.cut_weight += bis.cut_weight;

  s.split_zero.clear();
  s.split_one.clear();
  const std::size_t count = hi - lo;
  for (std::size_t i = 0; i < count; ++i) {
    (s.node_side[i] == 0 ? s.split_zero : s.split_one)
        .push_back(ctx.perm[lo + i]);
  }
  std::size_t pos = lo;
  for (const auto v : s.split_zero) ctx.Place(v, pos++);
  for (const auto v : s.split_one) ctx.Place(v, pos++);
  const std::size_t mid = lo + s.split_zero.size();

  Rng salt(seed);
  const auto s1 = salt.NextU64();
  const auto s2 = salt.NextU64();
  KWayRecurse(ctx, lo, mid, k0, first_group, s1, s, out);
  KWayRecurse(ctx, mid, hi, k - k0, first_group + k0, s2, s, out);
}

}  // namespace

KWayResult KWayPartition(const Graph& g, int k, const PartitionOptions& opts) {
  GOLDILOCKS_CHECK_GE(k, 1);
  KWayResult out;
  out.num_groups = k;
  out.group_of.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  CsrGraph csr;
  csr.BuildFrom(g);
  RangeCtx ctx;
  InitRangeCtx(ctx, g, csr, opts);
  PartitionScratch scratch;
  KWayRecurse(ctx, 0, static_cast<std::size_t>(g.num_vertices()), k, 0,
              opts.seed, scratch, out);
  if (opts.kway_refine_passes > 0 && k > 1) {
    RefineKWay(g, out.group_of, k, opts);
    out.cut_weight = g.CutWeightKWay(out.group_of);
  }
  return out;
}

double RefineKWay(const Graph& g, std::vector<int>& group_of, int k,
                  const PartitionOptions& opts) {
  GOLDILOCKS_CHECK(group_of.size() ==
                   static_cast<std::size_t>(g.num_vertices()));
  if (k <= 1 || g.num_vertices() == 0) return 0.0;

  CsrGraph csr;
  csr.BuildFrom(g);

  // Balance bookkeeping: each group may carry up to (1 + tol) of its
  // proportional share, and no move may empty a group.
  std::vector<double> weight(static_cast<std::size_t>(k), 0.0);
  std::vector<int> count(static_cast<std::size_t>(k), 0);
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    const int gid = group_of[static_cast<std::size_t>(v)];
    GOLDILOCKS_CHECK(gid >= 0 && gid < k);
    weight[static_cast<std::size_t>(gid)] += csr.balance_weight(v);
    ++count[static_cast<std::size_t>(gid)];
  }
  double max_bw = 0.0;
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    max_bw = std::max(max_bw, csr.balance_weight(v));
  }
  // One-vertex slack on top of the tolerance: without it, greedy single
  // moves can never perform the two-step swaps FM achieves via rollback.
  const double cap = csr.total_balance_weight() / k *
                         (1.0 + opts.balance_tolerance) +
                     max_bw;

  Rng rng(opts.seed ^ 0x4b57);
  std::vector<VertexIndex> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), 0);

  double improvement = 0.0;
  // Attachment of v to each adjacent group: flat timestamped accumulation,
  // visited in first-touch order — no clearing loop, no sort.
  GroupAccumulator attach;
  for (int pass = 0; pass < opts.kway_refine_passes; ++pass) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBelow(i)]);
    }
    bool moved_any = false;
    for (const auto v : order) {
      const int own = group_of[static_cast<std::size_t>(v)];
      if (count[static_cast<std::size_t>(own)] <= 1) continue;
      attach.Reset(static_cast<std::size_t>(k));
      const auto [to, ws] = csr.arc_range(v);
      for (std::size_t i = 0; i < to.size(); ++i) {
        attach.Add(group_of[static_cast<std::size_t>(to[i])], ws[i]);
      }
      const double own_w = attach.Get(own);
      int best = -1;
      double best_gain = 1e-9;
      for (const int ng : attach.touched()) {
        if (ng == own) continue;
        const double gain = attach.Get(ng) - own_w;
        if (gain > best_gain &&
            weight[static_cast<std::size_t>(ng)] + csr.balance_weight(v) <=
                cap) {
          best = ng;
          best_gain = gain;
        }
      }
      if (best >= 0) {
        group_of[static_cast<std::size_t>(v)] = best;
        weight[static_cast<std::size_t>(own)] -= csr.balance_weight(v);
        weight[static_cast<std::size_t>(best)] += csr.balance_weight(v);
        --count[static_cast<std::size_t>(own)];
        ++count[static_cast<std::size_t>(best)];
        improvement += best_gain;
        moved_any = true;
      }
    }
    if (!moved_any) break;
  }
  return improvement;
}

RecursivePartitionResult RecursivePartition(const Graph& g,
                                            const FitPredicate& fits,
                                            const PartitionOptions& opts,
                                            const CapacityUnitsFn& units) {
  obs::TraceSpan span("partition.recursive",
                      static_cast<std::int64_t>(g.num_vertices()));
  RecursivePartitionResult out;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  out.group_of.assign(n, -1);
  if (n == 0) return out;

  CsrGraph csr;
  csr.BuildFrom(g);
  RangeCtx ctx;
  InitRangeCtx(ctx, g, csr, opts);
  ctx.fits = &fits;
  ctx.units = &units;

  const Resource root_demand = RangeDemand(ctx, 0, n);
  if (opts.threads > 1 && n > 1 && !FitTerminal(ctx, 0, n, root_demand)) {
    return RecursivePartitionParallel(ctx, root_demand, std::move(out));
  }
  PartitionScratch scratch;
  std::vector<double> cuts;
  FitRecurse(ctx, 0, n, "", opts.seed, scratch, out, cuts);
  PublishScratchPeak(scratch.peak_bytes);
  double cut_weight = 0.0;
  for (const double c : cuts) cut_weight += c;
  out.cut_weight = cut_weight;
  return out;
}

std::vector<int> GroupsInLocalityOrder(const RecursivePartitionResult& r) {
  std::vector<int> order(static_cast<std::size_t>(r.num_groups));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return r.group_path[static_cast<std::size_t>(a)] <
           r.group_path[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace gl
