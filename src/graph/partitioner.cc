#include "graph/partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <limits>
#include <queue>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gl {
namespace {

// Deterministic decision counters (DESIGN.md §10). Totals are exact at any
// thread count — addition commutes — and hot loops batch into locals so the
// atomic is touched once per call, not per edge.
obs::Counter& CutEdgesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "partition.cut_edges_evaluated", obs::MetricKind::kDeterministic);
  return c;
}

obs::Counter& FmRejectionsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "partition.bisection_rejections", obs::MetricKind::kDeterministic);
  return c;
}

obs::Counter& DegenerateSplitsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "partition.degenerate_splits", obs::MetricKind::kDeterministic);
  return c;
}

// ---------------------------------------------------------------------------
// Lazy max-heap keyed by double priority. Entries are (priority, vertex);
// stale entries (whose priority no longer matches current[v]) are skipped on
// pop. Simple and fast enough for the graph sizes Goldilocks handles.
// ---------------------------------------------------------------------------
class LazyMaxHeap {
 public:
  explicit LazyMaxHeap(std::size_t n) : current_(n, kAbsent) {}

  void Push(VertexIndex v, double priority) {
    current_[static_cast<std::size_t>(v)] = priority;
    heap_.push({priority, v});
  }

  void Invalidate(VertexIndex v) {
    current_[static_cast<std::size_t>(v)] = kAbsent;
  }

  [[nodiscard]] bool Contains(VertexIndex v) const {
    return current_[static_cast<std::size_t>(v)] != kAbsent;
  }

  // Pops the highest-priority live entry; returns false if empty.
  bool Pop(VertexIndex& v_out, double& priority_out) {
    while (!heap_.empty()) {
      const auto [p, v] = heap_.top();
      heap_.pop();
      if (current_[static_cast<std::size_t>(v)] == p) {
        current_[static_cast<std::size_t>(v)] = kAbsent;
        v_out = v;
        priority_out = p;
        return true;
      }
    }
    return false;
  }

 private:
  static constexpr double kAbsent = -std::numeric_limits<double>::infinity();
  struct Entry {
    double priority;
    VertexIndex v;
    bool operator<(const Entry& o) const { return priority < o.priority; }
  };
  std::vector<double> current_;
  std::priority_queue<Entry> heap_;
};

// ---------------------------------------------------------------------------
// Coarsening: heavy-edge matching. Only positive edges are contracted —
// contracting an anti-affinity (negative) edge would glue replicas together
// and make them inseparable at finer levels.
// ---------------------------------------------------------------------------
struct Level {
  Graph graph;
  // Maps each vertex of the *finer* graph to its coarse vertex. Empty for
  // the finest (original) level.
  std::vector<VertexIndex> fine_to_coarse;
};

Graph CoarsenOnce(const Graph& g, Rng& rng,
                  std::vector<VertexIndex>& fine_to_coarse) {
  const auto n = g.num_vertices();
  std::vector<VertexIndex> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }

  std::vector<VertexIndex> match(static_cast<std::size_t>(n), -1);
  for (const auto v : order) {
    if (match[static_cast<std::size_t>(v)] >= 0) continue;
    VertexIndex best = -1;
    double best_w = 0.0;
    for (const auto& e : g.neighbors(v)) {
      if (e.weight > best_w && match[static_cast<std::size_t>(e.to)] < 0) {
        best = e.to;
        best_w = e.weight;
      }
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays a singleton
    }
  }

  fine_to_coarse.assign(static_cast<std::size_t>(n), -1);
  Graph coarse;
  for (VertexIndex v = 0; v < n; ++v) {
    const auto m = match[static_cast<std::size_t>(v)];
    if (fine_to_coarse[static_cast<std::size_t>(v)] >= 0) continue;
    Resource demand = g.demand(v);
    double bw = g.balance_weight(v);
    if (m != v) {
      demand += g.demand(m);
      bw += g.balance_weight(m);
    }
    const auto c = coarse.AddVertex(demand, bw);
    fine_to_coarse[static_cast<std::size_t>(v)] = c;
    if (m != v) fine_to_coarse[static_cast<std::size_t>(m)] = c;
  }
  for (VertexIndex v = 0; v < n; ++v) {
    const auto cv = fine_to_coarse[static_cast<std::size_t>(v)];
    for (const auto& e : g.neighbors(v)) {
      if (e.to <= v) continue;  // visit each fine edge once
      const auto cu = fine_to_coarse[static_cast<std::size_t>(e.to)];
      if (cu != cv) coarse.AddEdge(cv, cu, e.weight);
    }
  }
  return coarse;
}

std::vector<Level> BuildHierarchy(const Graph& g,
                                  const PartitionOptions& opts, Rng& rng) {
  std::vector<Level> levels;
  levels.push_back({g, {}});
  while (levels.back().graph.num_vertices() > opts.coarsen_target) {
    std::vector<VertexIndex> map;
    Graph coarse = CoarsenOnce(levels.back().graph, rng, map);
    // Stop if matching stalled (e.g. star graphs): coarsening must shrink
    // meaningfully or refinement costs outweigh the benefit.
    if (coarse.num_vertices() >
        static_cast<VertexIndex>(0.95 * levels.back().graph.num_vertices())) {
      break;
    }
    levels.push_back({std::move(coarse), std::move(map)});
  }
  return levels;
}

// ---------------------------------------------------------------------------
// Balance bookkeeping for an asymmetric split: side 0 should carry
// `target_fraction` of the total weight, within (1 + tolerance).
// ---------------------------------------------------------------------------
struct BalanceBounds {
  double total = 0.0;
  double target0 = 0.0;
  double lo0 = 0.0;
  double hi0 = 0.0;

  BalanceBounds(double total_weight, double target_fraction, double tol) {
    total = total_weight;
    target0 = total * target_fraction;
    const double hi1 = total * (1.0 - target_fraction) * (1.0 + tol);
    hi0 = std::min(total, total * target_fraction * (1.0 + tol));
    lo0 = std::max(0.0, total - hi1);
    if (lo0 > hi0) lo0 = hi0;  // degenerate tolerance; collapse to a point
  }

  [[nodiscard]] bool Feasible(double w0) const {
    return w0 >= lo0 - 1e-9 && w0 <= hi0 + 1e-9;
  }
  // Distance from the feasible interval (0 when inside).
  [[nodiscard]] double Violation(double w0) const {
    if (w0 < lo0) return lo0 - w0;
    if (w0 > hi0) return w0 - hi0;
    return 0.0;
  }
};

// ---------------------------------------------------------------------------
// Initial partition on the coarsest graph: greedy graph growing. Grows side 0
// from a random seed, always absorbing the frontier vertex that most reduces
// the eventual cut, until side 0 reaches its target weight.
// ---------------------------------------------------------------------------
std::vector<std::uint8_t> GrowInitialPartition(const Graph& g,
                                               const BalanceBounds& bounds,
                                               Rng& rng) {
  const auto n = g.num_vertices();
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 1);
  if (n == 0) return side;

  LazyMaxHeap frontier(static_cast<std::size_t>(n));
  std::vector<double> key(static_cast<std::size_t>(n), 0.0);
  std::vector<std::uint8_t> in_region(static_cast<std::size_t>(n), 0);
  double w0 = 0.0;

  auto absorb = [&](VertexIndex v) {
    in_region[static_cast<std::size_t>(v)] = 1;
    side[static_cast<std::size_t>(v)] = 0;
    w0 += g.balance_weight(v);
    frontier.Invalidate(v);
    for (const auto& e : g.neighbors(v)) {
      if (in_region[static_cast<std::size_t>(e.to)]) continue;
      // Edge e flips from region-external to region-internal for e.to.
      key[static_cast<std::size_t>(e.to)] += 2.0 * e.weight;
      frontier.Push(e.to, key[static_cast<std::size_t>(e.to)]);
    }
  };

  auto seed_new_component = [&]() -> bool {
    // All frontier exhausted: jump to a random vertex outside the region.
    std::vector<VertexIndex> outside;
    for (VertexIndex v = 0; v < n; ++v) {
      if (!in_region[static_cast<std::size_t>(v)]) outside.push_back(v);
    }
    if (outside.empty()) return false;
    absorb(outside[rng.NextBelow(outside.size())]);
    return true;
  };

  // Initial gain of v if absorbed = -(its total external weight); seed with
  // that so the heap ordering is correct from the start.
  for (VertexIndex v = 0; v < n; ++v) {
    key[static_cast<std::size_t>(v)] = -g.degree_weight(v);
  }

  if (!seed_new_component()) return side;
  while (w0 < bounds.target0) {
    VertexIndex v;
    double priority;
    if (frontier.Pop(v, priority)) {
      if (in_region[static_cast<std::size_t>(v)]) continue;
      absorb(v);
    } else if (!seed_new_component()) {
      break;
    }
  }
  return side;
}

// ---------------------------------------------------------------------------
// Fiduccia–Mattheyses refinement with rollback to the best prefix. Also
// restores balance when the incoming partition is infeasible (moves that
// reduce the balance violation are allowed regardless of gain).
// ---------------------------------------------------------------------------
struct FmState {
  std::vector<std::uint8_t> side;
  double cut = 0.0;
  double w0 = 0.0;
};

void FmRefine(const Graph& g, const BalanceBounds& bounds,
              const PartitionOptions& opts, FmState& state) {
  const auto n = g.num_vertices();
  std::vector<double> gain(static_cast<std::size_t>(n), 0.0);
  std::uint64_t edges_evaluated = 0;
  std::uint64_t moves_rejected = 0;

  for (int pass = 0; pass < opts.refine_passes; ++pass) {
    // (Re)compute all gains for this pass.
    for (VertexIndex v = 0; v < n; ++v) {
      double gv = 0.0;
      for (const auto& e : g.neighbors(v)) {
        const bool cross = state.side[static_cast<std::size_t>(v)] !=
                           state.side[static_cast<std::size_t>(e.to)];
        gv += cross ? e.weight : -e.weight;
        ++edges_evaluated;
      }
      gain[static_cast<std::size_t>(v)] = gv;
    }

    LazyMaxHeap heap(static_cast<std::size_t>(n));
    for (VertexIndex v = 0; v < n; ++v) {
      heap.Push(v, gain[static_cast<std::size_t>(v)]);
    }

    std::vector<std::uint8_t> moved(static_cast<std::size_t>(n), 0);
    std::vector<VertexIndex> move_seq;
    move_seq.reserve(static_cast<std::size_t>(n));
    double best_cut = state.cut;
    double best_violation = bounds.Violation(state.w0);
    std::size_t best_prefix = 0;
    int stall = 0;

    double cut = state.cut;
    double w0 = state.w0;

    VertexIndex v;
    double priority;
    while (heap.Pop(v, priority)) {
      if (moved[static_cast<std::size_t>(v)]) continue;
      const double bw = g.balance_weight(v);
      const bool from0 = state.side[static_cast<std::size_t>(v)] == 0;
      const double new_w0 = from0 ? w0 - bw : w0 + bw;
      const double cur_violation = bounds.Violation(w0);
      const double new_violation = bounds.Violation(new_w0);
      // Permit the move if it stays feasible, or strictly improves an
      // infeasible balance (restoration mode).
      if (new_violation > 1e-12 && new_violation >= cur_violation) {
        ++moves_rejected;
        continue;
      }

      moved[static_cast<std::size_t>(v)] = 1;
      move_seq.push_back(v);
      const double gv = gain[static_cast<std::size_t>(v)];
      cut -= gv;
      w0 = new_w0;
      state.side[static_cast<std::size_t>(v)] ^= 1;

      for (const auto& e : g.neighbors(v)) {
        if (moved[static_cast<std::size_t>(e.to)]) continue;
        const bool cross = state.side[static_cast<std::size_t>(v)] !=
                           state.side[static_cast<std::size_t>(e.to)];
        gain[static_cast<std::size_t>(e.to)] +=
            cross ? 2.0 * e.weight : -2.0 * e.weight;
        heap.Push(e.to, gain[static_cast<std::size_t>(e.to)]);
        ++edges_evaluated;
      }

      const double violation = bounds.Violation(w0);
      const bool better =
          (violation < best_violation - 1e-12) ||
          (violation <= best_violation + 1e-12 && cut < best_cut - 1e-12);
      if (better) {
        best_cut = cut;
        best_violation = violation;
        best_prefix = move_seq.size();
        stall = 0;
      } else if (++stall > opts.fm_stall_limit) {
        break;
      }
    }

    // Roll back everything after the best prefix.
    for (std::size_t i = move_seq.size(); i > best_prefix; --i) {
      const auto u = move_seq[i - 1];
      const double bw = g.balance_weight(u);
      w0 += state.side[static_cast<std::size_t>(u)] == 0 ? -bw : bw;
      state.side[static_cast<std::size_t>(u)] ^= 1;
    }
    // w0 after rollback equals the prefix value; recompute cut from scratch
    // is O(E) — instead track it: cut at best prefix is best_cut.
    const bool improved = best_cut < state.cut - 1e-12 ||
                          best_violation < bounds.Violation(state.w0) - 1e-12;
    state.cut = best_cut;
    state.w0 = w0;
    if (!improved) break;
  }
  CutEdgesCounter().Add(edges_evaluated);
  FmRejectionsCounter().Add(moves_rejected);
}

double SideWeight0(const Graph& g, std::span<const std::uint8_t> side) {
  double w0 = 0.0;
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    if (side[static_cast<std::size_t>(v)] == 0) w0 += g.balance_weight(v);
  }
  return w0;
}

}  // namespace

Bisection Bisect(const Graph& g, const PartitionOptions& opts,
                 double target_fraction) {
  GOLDILOCKS_CHECK(target_fraction > 0.0 && target_fraction < 1.0);
  Bisection result;
  const auto n = g.num_vertices();
  result.side.assign(static_cast<std::size_t>(n), 0);
  if (n <= 1) {
    result.side_weight[0] = g.total_balance_weight();
    result.balanced = true;
    return result;
  }

  Rng rng(opts.seed);
  const auto levels = BuildHierarchy(g, opts, rng);
  const Graph& coarsest = levels.back().graph;
  const BalanceBounds coarse_bounds(coarsest.total_balance_weight(),
                                    target_fraction, opts.balance_tolerance);

  // Several growing trials on the coarsest graph; keep the best after a
  // quick refinement.
  FmState best;
  bool have_best = false;
  for (int t = 0; t < std::max(1, opts.initial_trials); ++t) {
    FmState s;
    s.side = GrowInitialPartition(coarsest, coarse_bounds, rng);
    s.w0 = SideWeight0(coarsest, s.side);
    s.cut = coarsest.CutWeight(s.side);
    PartitionOptions quick = opts;
    quick.refine_passes = 2;
    FmRefine(coarsest, coarse_bounds, quick, s);
    const bool better =
        !have_best ||
        coarse_bounds.Violation(s.w0) <
            coarse_bounds.Violation(best.w0) - 1e-12 ||
        (coarse_bounds.Violation(s.w0) <=
             coarse_bounds.Violation(best.w0) + 1e-12 &&
         s.cut < best.cut - 1e-12);
    if (better) {
      best = std::move(s);
      have_best = true;
    }
  }

  // Project through the hierarchy, refining at every level.
  FmState state = std::move(best);
  for (std::size_t li = levels.size() - 1; li > 0; --li) {
    const Graph& fine = levels[li - 1].graph;
    const auto& map = levels[li].fine_to_coarse;
    std::vector<std::uint8_t> fine_side(
        static_cast<std::size_t>(fine.num_vertices()));
    for (VertexIndex v = 0; v < fine.num_vertices(); ++v) {
      fine_side[static_cast<std::size_t>(v)] =
          state.side[static_cast<std::size_t>(
              map[static_cast<std::size_t>(v)])];
    }
    state.side = std::move(fine_side);
    state.w0 = SideWeight0(fine, state.side);
    state.cut = fine.CutWeight(state.side);
    const BalanceBounds bounds(fine.total_balance_weight(), target_fraction,
                               opts.balance_tolerance);
    FmRefine(fine, bounds, opts, state);
  }

  const BalanceBounds bounds(g.total_balance_weight(), target_fraction,
                             opts.balance_tolerance);
  result.side = std::move(state.side);
  result.cut_weight = g.CutWeight(result.side);
  result.side_weight[0] = SideWeight0(g, result.side);
  result.side_weight[1] = g.total_balance_weight() - result.side_weight[0];
  result.balanced = bounds.Feasible(result.side_weight[0]);
  return result;
}

namespace {

void KWayRecurse(const Graph& g, std::span<const VertexIndex> global_ids,
                 int k, int first_group, const PartitionOptions& opts,
                 std::uint64_t seed, KWayResult& out) {
  if (k == 1 || g.num_vertices() <= 1) {
    for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
      out.group_of[static_cast<std::size_t>(
          global_ids[static_cast<std::size_t>(v)])] = first_group;
    }
    return;
  }
  const int k0 = (k + 1) / 2;
  PartitionOptions sub = opts;
  sub.seed = seed;
  const auto bis =
      Bisect(g, sub, static_cast<double>(k0) / static_cast<double>(k));
  out.cut_weight += bis.cut_weight;

  std::vector<VertexIndex> left, right;
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    (bis.side[static_cast<std::size_t>(v)] == 0 ? left : right).push_back(v);
  }
  auto globalize = [&](const std::vector<VertexIndex>& local) {
    std::vector<VertexIndex> ids;
    ids.reserve(local.size());
    for (const auto v : local) {
      ids.push_back(global_ids[static_cast<std::size_t>(v)]);
    }
    return ids;
  };
  const auto left_ids = globalize(left);
  const auto right_ids = globalize(right);
  const Graph gl_sub = g.InducedSubgraph(left);
  const Graph gr_sub = g.InducedSubgraph(right);
  Rng salt(seed);
  const auto s1 = salt.NextU64();
  const auto s2 = salt.NextU64();
  KWayRecurse(gl_sub, left_ids, k0, first_group, opts, s1, out);
  KWayRecurse(gr_sub, right_ids, k - k0, first_group + k0, opts, s2, out);
}

}  // namespace

KWayResult KWayPartition(const Graph& g, int k, const PartitionOptions& opts) {
  GOLDILOCKS_CHECK_GE(k, 1);
  KWayResult out;
  out.num_groups = k;
  out.group_of.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<VertexIndex> ids(static_cast<std::size_t>(g.num_vertices()));
  std::iota(ids.begin(), ids.end(), 0);
  KWayRecurse(g, ids, k, 0, opts, opts.seed, out);
  if (opts.kway_refine_passes > 0 && k > 1) {
    RefineKWay(g, out.group_of, k, opts);
    out.cut_weight = g.CutWeightKWay(out.group_of);
  }
  return out;
}

double RefineKWay(const Graph& g, std::vector<int>& group_of, int k,
                  const PartitionOptions& opts) {
  GOLDILOCKS_CHECK(group_of.size() ==
                   static_cast<std::size_t>(g.num_vertices()));
  if (k <= 1 || g.num_vertices() == 0) return 0.0;

  // Balance bookkeeping: each group may carry up to (1 + tol) of its
  // proportional share, and no move may empty a group.
  std::vector<double> weight(static_cast<std::size_t>(k), 0.0);
  std::vector<int> count(static_cast<std::size_t>(k), 0);
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    const int gid = group_of[static_cast<std::size_t>(v)];
    GOLDILOCKS_CHECK(gid >= 0 && gid < k);
    weight[static_cast<std::size_t>(gid)] += g.balance_weight(v);
    ++count[static_cast<std::size_t>(gid)];
  }
  double max_bw = 0.0;
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    max_bw = std::max(max_bw, g.balance_weight(v));
  }
  // One-vertex slack on top of the tolerance: without it, greedy single
  // moves can never perform the two-step swaps FM achieves via rollback.
  const double cap = g.total_balance_weight() / k *
                         (1.0 + opts.balance_tolerance) +
                     max_bw;

  Rng rng(opts.seed ^ 0x4b57);
  std::vector<VertexIndex> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), 0);

  double improvement = 0.0;
  std::vector<double> attach(static_cast<std::size_t>(k), 0.0);
  std::vector<int> touched;
  for (int pass = 0; pass < opts.kway_refine_passes; ++pass) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBelow(i)]);
    }
    bool moved_any = false;
    for (const auto v : order) {
      const int own = group_of[static_cast<std::size_t>(v)];
      if (count[static_cast<std::size_t>(own)] <= 1) continue;
      // Attachment of v to each adjacent group (sparse accumulation).
      touched.clear();
      for (const auto& e : g.neighbors(v)) {
        const int ng = group_of[static_cast<std::size_t>(e.to)];
        if (attach[static_cast<std::size_t>(ng)] == 0.0) {
          touched.push_back(ng);
        }
        attach[static_cast<std::size_t>(ng)] += e.weight;
      }
      const double own_w = attach[static_cast<std::size_t>(own)];
      int best = -1;
      double best_gain = 1e-9;
      for (const int ng : touched) {
        if (ng == own) continue;
        const double gain = attach[static_cast<std::size_t>(ng)] - own_w;
        if (gain > best_gain &&
            weight[static_cast<std::size_t>(ng)] + g.balance_weight(v) <=
                cap) {
          best = ng;
          best_gain = gain;
        }
      }
      for (const int ng : touched) {
        attach[static_cast<std::size_t>(ng)] = 0.0;
      }
      if (best >= 0) {
        group_of[static_cast<std::size_t>(v)] = best;
        weight[static_cast<std::size_t>(own)] -= g.balance_weight(v);
        weight[static_cast<std::size_t>(best)] += g.balance_weight(v);
        --count[static_cast<std::size_t>(own)];
        ++count[static_cast<std::size_t>(best)];
        improvement += best_gain;
        moved_any = true;
      }
    }
    if (!moved_any) break;
  }
  return improvement;
}

namespace {

// A group may only become terminal if it contains no anti-affinity
// (negative) edge: replicas must end up in different groups (Sec. IV-C).
bool HasNegativeInternalEdge(const Graph& g) {
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    for (const auto& e : g.neighbors(v)) {
      if (e.to > v && e.weight < 0.0) return true;
    }
  }
  return false;
}

// One pending sub-problem of the fit recursion: an induced subgraph, the
// global ids of its vertices, its recursion-tree path and the seed that
// steers its bisections. Nodes are self-contained, so disjoint subtrees can
// be solved on different threads and merged by position.
struct FitNode {
  Graph graph;
  std::vector<VertexIndex> ids;
  std::string path;
  std::uint64_t seed = 0;
};

bool FitTerminal(const Graph& g, const FitPredicate& fits) {
  const int count = g.num_vertices();
  return (fits(g.total_demand(), count) && !HasNegativeInternalEdge(g)) ||
         count == 1;
}

void RecordFitLeaf(const Graph& g, std::span<const VertexIndex> global_ids,
                   const std::string& path, const FitPredicate& fits,
                   RecursivePartitionResult& out) {
  const Resource demand = g.total_demand();
  const int count = g.num_vertices();
  const int gid = out.num_groups++;
  for (const auto id : global_ids) {
    out.group_of[static_cast<std::size_t>(id)] = gid;
  }
  out.group_path.push_back(path);
  out.group_demand.push_back(demand);
  out.group_size.push_back(count);
  if (!fits(demand, count)) out.oversized_groups.push_back(gid);
}

// Bisects a non-terminal node into its two children exactly as the serial
// recursion would (same seed chain, same degenerate-split fallback) and
// returns the bisection's cut weight.
double SplitFit(const Graph& g, std::span<const VertexIndex> global_ids,
                const std::string& path, std::uint64_t seed,
                const CapacityUnitsFn& units, const PartitionOptions& opts,
                FitNode& left_out, FitNode& right_out) {
  // One span per recursion level; arg = depth in the recursion tree.
  obs::TraceSpan split_span("partition.split",
                            static_cast<std::int64_t>(path.size()));
  const int count = g.num_vertices();
  PartitionOptions sub = opts;
  sub.seed = seed;
  // Proportional split target: carve off whole server-units so leaves fill
  // servers tightly instead of landing at ~50-70% from plain halving.
  double fraction = 0.5;
  if (units) {
    const double u = std::max(1.0 + 1e-9, units(g.total_demand()));
    fraction = std::clamp(std::ceil(u / 2.0) / u, 0.25, 0.75);
  }
  const auto bis = Bisect(g, sub, fraction);

  std::vector<VertexIndex> left, right;
  for (VertexIndex v = 0; v < count; ++v) {
    (bis.side[static_cast<std::size_t>(v)] == 0 ? left : right).push_back(v);
  }
  // Defensive: if the bisection degenerated (all vertices one side — can
  // happen with pathological weights), force an arbitrary split so the
  // recursion always terminates.
  if (left.empty() || right.empty()) {
    DegenerateSplitsCounter().Increment();
    left.clear();
    right.clear();
    for (VertexIndex v = 0; v < count; ++v) {
      (v < count / 2 ? left : right).push_back(v);
    }
  }

  auto globalize = [&](const std::vector<VertexIndex>& local) {
    std::vector<VertexIndex> ids;
    ids.reserve(local.size());
    for (const auto v : local) {
      ids.push_back(global_ids[static_cast<std::size_t>(v)]);
    }
    return ids;
  };
  left_out.ids = globalize(left);
  right_out.ids = globalize(right);
  left_out.graph = g.InducedSubgraph(left);
  right_out.graph = g.InducedSubgraph(right);
  left_out.path = path + '0';
  right_out.path = path + '1';
  Rng salt(seed);
  left_out.seed = salt.NextU64();
  right_out.seed = salt.NextU64();
  return bis.cut_weight;
}

// Serial recursion. Cut contributions are appended to `cuts` in preorder
// (node before its subtrees) instead of summed in place, so the final
// left-fold reproduces one canonical summation order no matter how the
// subtrees were scheduled across threads.
void FitRecurse(const Graph& g, std::span<const VertexIndex> global_ids,
                const std::string& path, const FitPredicate& fits,
                const CapacityUnitsFn& units, const PartitionOptions& opts,
                std::uint64_t seed, RecursivePartitionResult& out,
                std::vector<double>& cuts) {
  if (g.num_vertices() == 0) return;
  if (FitTerminal(g, fits)) {
    RecordFitLeaf(g, global_ids, path, fits, out);
    return;
  }
  FitNode l, r;
  cuts.push_back(SplitFit(g, global_ids, path, seed, units, opts, l, r));
  FitRecurse(l.graph, l.ids, l.path, fits, units, opts, l.seed, out, cuts);
  FitRecurse(r.graph, r.ids, r.path, fits, units, opts, r.seed, out, cuts);
}

// Parallel driver: expands the top of the recursion tree breadth-first —
// splitting every non-terminal frontier node, each level's splits running
// concurrently — until the frontier carries at least opts.threads
// sub-problems, then solves each frontier subtree serially on the pool and
// merges the per-task results in preorder. Preorder merging reproduces the
// serial group numbering exactly, and the preorder cut fold reproduces the
// serial summation order, so the result is bit-identical at every thread
// count.
RecursivePartitionResult RecursivePartitionParallel(
    const Graph& g, const FitPredicate& fits, const PartitionOptions& opts,
    const CapacityUnitsFn& units, RecursivePartitionResult out) {
  obs::TraceSpan span("partition.parallel",
                      static_cast<std::int64_t>(g.num_vertices()));
  struct ExpandNode {
    FitNode task;
    double cut = 0.0;
    int left = -1;  // < 0: unexpanded (frontier task or terminal)
    int right = -1;
  };

  ThreadPool pool(opts.threads);

  // Root is split in place from the caller's graph (no copy).
  std::vector<ExpandNode> tree(3);
  {
    std::vector<VertexIndex> ids(static_cast<std::size_t>(g.num_vertices()));
    std::iota(ids.begin(), ids.end(), 0);
    FitNode l, r;
    tree[0].cut = SplitFit(g, ids, "", opts.seed, units, opts, l, r);
    tree[0].left = 1;
    tree[0].right = 2;
    tree[1].task = std::move(l);
    tree[2].task = std::move(r);
  }
  std::vector<int> frontier = {1, 2};

  while (static_cast<int>(frontier.size()) < opts.threads) {
    std::vector<int> splittable;
    for (const int idx : frontier) {
      const auto& t = tree[static_cast<std::size_t>(idx)].task;
      if (t.graph.num_vertices() > 1 && !FitTerminal(t.graph, fits)) {
        splittable.push_back(idx);
      }
    }
    if (splittable.empty()) break;

    struct SplitOut {
      double cut = 0.0;
      FitNode l, r;
    };
    std::vector<SplitOut> splits(splittable.size());
    pool.ParallelFor(splittable.size(), [&](std::size_t k) {
      const auto& t = tree[static_cast<std::size_t>(splittable[k])].task;
      splits[k].cut = SplitFit(t.graph, t.ids, t.path, t.seed, units, opts,
                               splits[k].l, splits[k].r);
    });

    // Graft the children in, preserving the frontier's DFS order.
    std::vector<int> next_frontier;
    std::size_t k = 0;
    for (const int idx : frontier) {
      if (k < splittable.size() && splittable[k] == idx) {
        const int left = static_cast<int>(tree.size());
        const int right = left + 1;
        {
          // Scoped: push_back below may reallocate and dangle this reference.
          auto& nd = tree[static_cast<std::size_t>(idx)];
          nd.cut = splits[k].cut;
          nd.left = left;
          nd.right = right;
          nd.task = FitNode{};  // children own the data now
        }
        tree.push_back({std::move(splits[k].l), 0.0, -1, -1});
        tree.push_back({std::move(splits[k].r), 0.0, -1, -1});
        next_frontier.push_back(left);
        next_frontier.push_back(right);
        ++k;
      } else {
        next_frontier.push_back(idx);
      }
    }
    frontier = std::move(next_frontier);
  }

  // Solve each frontier subtree serially, into task-local results.
  struct TaskResult {
    RecursivePartitionResult out;
    std::vector<double> cuts;
  };
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<TaskResult> results(frontier.size());
  pool.ParallelFor(frontier.size(), [&](std::size_t k) {
    // Per-worker subtree span; arg = frontier slot (stable across runs).
    obs::TraceSpan worker_span("partition.worker",
                               static_cast<std::int64_t>(k));
    const auto& t = tree[static_cast<std::size_t>(frontier[k])].task;
    results[k].out.group_of.assign(n, -1);
    FitRecurse(t.graph, t.ids, t.path, fits, units, opts, t.seed,
               results[k].out, results[k].cuts);
  });

  // Preorder merge on the calling thread: group ids, paths and cut terms
  // land in exactly the order the serial recursion would have produced.
  std::vector<int> task_of(tree.size(), -1);
  for (std::size_t k = 0; k < frontier.size(); ++k) {
    task_of[static_cast<std::size_t>(frontier[k])] = static_cast<int>(k);
  }
  double cut_weight = 0.0;
  // Explicit stack; the expansion tree is only ~log2(threads) deep but the
  // iterative form costs nothing.
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    const int idx = stack.back();
    stack.pop_back();
    const auto& nd = tree[static_cast<std::size_t>(idx)];
    if (nd.left < 0) {
      const auto& tr =
          results[static_cast<std::size_t>(task_of[static_cast<std::size_t>(idx)])];
      const int base = out.num_groups;
      for (const auto id : nd.task.ids) {
        const int local = tr.out.group_of[static_cast<std::size_t>(id)];
        if (local >= 0) {
          out.group_of[static_cast<std::size_t>(id)] = base + local;
        }
      }
      out.num_groups += tr.out.num_groups;
      out.group_path.insert(out.group_path.end(), tr.out.group_path.begin(),
                            tr.out.group_path.end());
      out.group_demand.insert(out.group_demand.end(),
                              tr.out.group_demand.begin(),
                              tr.out.group_demand.end());
      out.group_size.insert(out.group_size.end(), tr.out.group_size.begin(),
                            tr.out.group_size.end());
      for (const int og : tr.out.oversized_groups) {
        out.oversized_groups.push_back(base + og);
      }
      for (const double c : tr.cuts) cut_weight += c;
      continue;
    }
    cut_weight += nd.cut;
    // Right pushed first so the left subtree is visited first (preorder).
    stack.push_back(nd.right);
    stack.push_back(nd.left);
  }
  out.cut_weight = cut_weight;
  return out;
}

}  // namespace

RecursivePartitionResult RecursivePartition(const Graph& g,
                                            const FitPredicate& fits,
                                            const PartitionOptions& opts,
                                            const CapacityUnitsFn& units) {
  obs::TraceSpan span("partition.recursive",
                      static_cast<std::int64_t>(g.num_vertices()));
  RecursivePartitionResult out;
  out.group_of.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  if (opts.threads > 1 && g.num_vertices() > 1 && !FitTerminal(g, fits)) {
    return RecursivePartitionParallel(g, fits, opts, units, std::move(out));
  }
  std::vector<VertexIndex> ids(static_cast<std::size_t>(g.num_vertices()));
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<double> cuts;
  FitRecurse(g, ids, "", fits, units, opts, opts.seed, out, cuts);
  double cut_weight = 0.0;
  for (const double c : cuts) cut_weight += c;
  out.cut_weight = cut_weight;
  return out;
}

std::vector<int> GroupsInLocalityOrder(const RecursivePartitionResult& r) {
  std::vector<int> order(static_cast<std::size_t>(r.num_groups));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return r.group_path[static_cast<std::size_t>(a)] <
           r.group_path[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace gl
