// Flat compressed-sparse-row graph kernel (DESIGN.md §11).
//
// The multilevel partitioner is the placement loop's hot path, and on
// `Graph`'s vector-of-vectors adjacency it is memory-bound: every neighbor
// scan chases a pointer per row and every coarsening level / recursion split
// used to materialize a fresh Graph (per-row heap allocations, per-edge
// merge scans). CsrGraph is the flat replacement: one offsets array, one
// target array, one weight array — neighbor scans are contiguous streams,
// and all storage is reusable, so a warm scratch arena (graph/scratch.h)
// rebuilds levels and subgraph views without touching the allocator.
//
// An "arc" is one direction of an undirected edge; every edge appears in
// both endpoint rows. BuildFrom(Graph) preserves the Graph's per-vertex
// neighbor order exactly, so iteration-order-sensitive tie-breaking behaves
// identically on either representation (verified by tests/csr_test.cc).
//
// CsrGraph carries what refinement needs — topology, arc weights, scalar
// balance weights. Resource demands stay on the originating Graph: the
// recursion sums them per index range only when emitting groups.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "graph/graph.h"
#include "obs/memory.h"

namespace gl {

class CsrGraph {
 public:
  CsrGraph() = default;

  // Drops the contents but keeps the capacity (arena reuse).
  void Clear() {
    row_.clear();
    col_.clear();
    w_.clear();
    balance_.clear();
    deg_.clear();
    total_balance_ = 0.0;
  }

  // Streaming build: BeginBuild, then one BeginRow per vertex in index
  // order with its PushArc calls, then EndBuild. The expected sizes are
  // reservation hints, not limits.
  void BeginBuild(VertexIndex expected_vertices, std::size_t expected_arcs) {
    Clear();
    const auto nv = static_cast<std::size_t>(
        expected_vertices > 0 ? expected_vertices : 0);
    row_.reserve(nv + 1);
    balance_.reserve(nv);
    col_.reserve(expected_arcs);
    w_.reserve(expected_arcs);
    row_.push_back(0);
  }

  VertexIndex BeginRow(double balance_weight) {
    if (!balance_.empty()) row_.push_back(col_.size());  // close previous row
    balance_.push_back(balance_weight);
    GOLDILOCKS_CHECK(balance_.size() <=
                     static_cast<std::size_t>(
                         std::numeric_limits<VertexIndex>::max()));
    total_balance_ += balance_weight;
    return static_cast<VertexIndex>(balance_.size()) - 1;
  }

  void PushArc(VertexIndex to, double weight) {
    col_.push_back(to);
    w_.push_back(weight);
  }

  void EndBuild() {
    if (!balance_.empty()) row_.push_back(col_.size());  // close last row
    GOLDILOCKS_CHECK_EQ(row_.size(), balance_.size() + 1);
    // Cache signed degrees once per build: refinement reads degree_weight
    // per vertex per pass, and summing here in row order gives the same
    // value an on-the-fly scan would.
    deg_.assign(balance_.size(), 0.0);
    for (std::size_t v = 0; v < balance_.size(); ++v) {
      double s = 0.0;
      for (std::size_t i = row_[v]; i < row_[v + 1]; ++i) s += w_[i];
      deg_[v] = s;
    }
  }

  // Indexed (random-access) build for parallel writers (graph/coarsen.cc):
  // size every array up front, let concurrent tasks fill disjoint rows, then
  // finalize. The caller supplies exact offsets (row v owns
  // [offset(v), offset(v+1)) of the arc arrays, with offset(n) = num_arcs
  // pre-set here) plus each row's balance weight and signed degree — the
  // degree is summed by the writer in its row's emission order, which is the
  // same order EndBuild's cache scan would visit. Rows are disjoint, so
  // concurrent fills need no synchronization; EndIndexedBuild re-derives the
  // total balance weight serially in row order (one canonical summation
  // order at every thread count, DESIGN.md §9).
  void BeginIndexedBuild(VertexIndex expected_vertices, std::size_t num_arcs) {
    Clear();
    const auto nv = static_cast<std::size_t>(
        expected_vertices > 0 ? expected_vertices : 0);
    GOLDILOCKS_CHECK(nv <= static_cast<std::size_t>(
                               std::numeric_limits<VertexIndex>::max()));
    row_.assign(nv + 1, num_arcs);
    col_.resize(num_arcs);
    w_.resize(num_arcs);
    balance_.assign(nv, 0.0);
    deg_.assign(nv, 0.0);
  }

  void SetRowOffset(VertexIndex v, std::size_t offset) {
    row_[Checked(v)] = offset;
  }

  void SetVertex(VertexIndex v, double balance_weight, double degree_weight) {
    const auto s = Checked(v);
    balance_[s] = balance_weight;
    deg_[s] = degree_weight;
  }

  void SetArc(std::size_t slot, VertexIndex to, double weight) {
    GOLDILOCKS_CHECK_LT(slot, col_.size());
    col_[slot] = to;
    w_[slot] = weight;
  }

  void EndIndexedBuild() {
    total_balance_ = 0.0;
    for (std::size_t v = 0; v < balance_.size(); ++v) {
      GOLDILOCKS_CHECK(row_[v] <= row_[v + 1]);  // offsets must be monotone
      total_balance_ += balance_[v];
    }
  }

  // Snapshot of `g`, preserving its adjacency-list neighbor order.
  void BuildFrom(const Graph& g) {
    BeginBuild(g.num_vertices(), 2 * g.num_edges());
    for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
      BeginRow(g.balance_weight(v));
      for (const auto& e : g.neighbors(v)) PushArc(e.to, e.weight);
    }
    EndBuild();
  }

  [[nodiscard]] VertexIndex num_vertices() const {
    return static_cast<VertexIndex>(balance_.size());
  }
  [[nodiscard]] std::size_t num_arcs() const { return col_.size(); }

  [[nodiscard]] std::span<const VertexIndex> arcs(VertexIndex v) const {
    const auto s = Checked(v);
    return {col_.data() + row_[s], row_[s + 1] - row_[s]};
  }
  [[nodiscard]] std::span<const double> arc_weights(VertexIndex v) const {
    const auto s = Checked(v);
    return {w_.data() + row_[s], row_[s + 1] - row_[s]};
  }

  // Both row views through a single bounds check, for inner loops that need
  // targets and weights together.
  struct ArcRange {
    std::span<const VertexIndex> to;
    std::span<const double> w;
  };
  [[nodiscard]] ArcRange arc_range(VertexIndex v) const {
    const auto s = Checked(v);
    const auto len = row_[s + 1] - row_[s];
    return {{col_.data() + row_[s], len}, {w_.data() + row_[s], len}};
  }

  [[nodiscard]] double balance_weight(VertexIndex v) const {
    return balance_[Checked(v)];
  }
  [[nodiscard]] double total_balance_weight() const { return total_balance_; }

  // Signed degree (sum of incident arc weights), cached at EndBuild.
  [[nodiscard]] double degree_weight(VertexIndex v) const {
    return deg_[Checked(v)];
  }

  // Cut weight of a 2-way assignment; iterates arcs with to > v so each
  // undirected edge contributes once, in the same order Graph::CutWeight
  // visits it.
  [[nodiscard]] double CutWeight(std::span<const std::uint8_t> side) const {
    GOLDILOCKS_CHECK_EQ(side.size(), balance_.size());
    double cut = 0.0;
    for (VertexIndex v = 0; v < num_vertices(); ++v) {
      const auto to = arcs(v);
      const auto ws = arc_weights(v);
      for (std::size_t i = 0; i < to.size(); ++i) {
        if (to[i] > v && side[static_cast<std::size_t>(v)] !=
                             side[static_cast<std::size_t>(to[i])]) {
          cut += ws[i];
        }
      }
    }
    return cut;
  }

  // Total balance weight on side 0, summed in vertex order.
  [[nodiscard]] double SideWeight0(std::span<const std::uint8_t> side) const {
    GOLDILOCKS_CHECK_EQ(side.size(), balance_.size());
    double w0 = 0.0;
    for (std::size_t v = 0; v < balance_.size(); ++v) {
      if (side[v] == 0) w0 += balance_[v];
    }
    return w0;
  }

  // Storage identity, for arena-reuse tests: the arc array's address only
  // changes when a rebuild outgrows the retained capacity.
  [[nodiscard]] const VertexIndex* arc_data() const { return col_.data(); }

  // Retained footprint in bytes (capacities, not sizes): monotone across
  // Clear()/rebuild reuse. Memory observability only (obs/memory.h) —
  // never a decision input.
  [[nodiscard]] std::size_t ApproxBytes() const {
    return obs::VectorFootprintBytes(row_) + obs::VectorFootprintBytes(col_) +
           obs::VectorFootprintBytes(w_) +
           obs::VectorFootprintBytes(balance_) +
           obs::VectorFootprintBytes(deg_);
  }

 private:
  [[nodiscard]] std::size_t Checked(VertexIndex v) const {
    GOLDILOCKS_CHECK_GE(v, 0);
    GOLDILOCKS_CHECK_LT(v, num_vertices());
    return static_cast<std::size_t>(v);
  }

  std::vector<std::size_t> row_;  // n+1 offsets into col_/w_ once built
  std::vector<VertexIndex> col_;
  std::vector<double> w_;
  std::vector<double> balance_;
  std::vector<double> deg_;  // per-vertex signed degree, filled by EndBuild
  double total_balance_ = 0.0;
};

}  // namespace gl
