#include "graph/coarsen.h"

#include <algorithm>

#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace gl {
namespace {

constexpr VertexIndex kNoMatch = -1;

// Propose/resolve rounds before the serial cleanup sweep. Each round
// matches a large fraction of the remaining vertices (mutual heaviest-edge
// proposals), so a small constant covers all but a tail the sweep absorbs;
// the count is part of the deterministic contract — changing it changes
// matchings — so it is fixed here, not an option.
constexpr int kProposeRounds = 4;

// Symmetric per-level preference jitter. Mutual-heaviest matching is fully
// determined by the edge weights, so every level and every sub-split of the
// recursion repeats the same pairings and the hierarchy compounds their
// cost — measured ~6% worse final cuts than the old random-order greedy
// sweep on the clustered bench graphs. Scaling each edge's preference by a
// hash of (level salt, endpoints) restores that decorrelation while keeping
// the propose/resolve rounds parallel: the factor is symmetric in (u, v),
// so both endpoints rank the edge identically and mutual resolution stays
// consistent. The true weight still dominates — the factor spans
// [0.75, 1.25), enough to re-shuffle near-equal heavy edges, never enough
// to prefer a far lighter one.
double JitteredWeight(double w, VertexIndex a, VertexIndex b,
                      std::uint64_t salt) {
  const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
  const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
  std::uint64_t x = salt ^ (lo * 0x9E3779B97F4A7C15ull + hi);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  const double u01 = static_cast<double>(x >> 11) * 0x1.0p-53;
  return w * (0.75 + 0.5 * u01);
}

// v's most-preferred positive-weight unmatched neighbor (jittered weight,
// ties to the smallest id); kNoMatch when every neighbor is matched or
// non-positive. `match` is the state frozen at round start (or live during
// the serial sweep — the caller guarantees no concurrent writes either
// way).
VertexIndex BestUnmatchedNeighbor(const CsrGraph& g, VertexIndex v,
                                  const std::vector<VertexIndex>& match,
                                  std::uint64_t salt) {
  VertexIndex best = kNoMatch;
  double best_w = 0.0;
  const auto [to, ws] = g.arc_range(v);
  for (std::size_t i = 0; i < to.size(); ++i) {
    const auto u = to[i];
    if (ws[i] <= 0.0 || u == v ||
        match[static_cast<std::size_t>(u)] != kNoMatch) {
      continue;
    }
    const double w = JitteredWeight(ws[i], v, u, salt);
    if (w > best_w || (w == best_w && (best == kNoMatch || u < best))) {
      best = u;
      best_w = w;
    }
  }
  return best;
}

}  // namespace

void ForPartitionChunks(
    ThreadPool* pool, std::size_t total,
    const std::function<void(int slot, std::size_t begin, std::size_t end)>&
        fn) {
  if (total == 0) return;
  // Every chunk runs under a partition.chunk span, in the serial branch
  // too: chunking is fixed-grain (DESIGN.md §9), so the span shape — names,
  // counts, args — is identical at every thread width, and the profiler
  // (obs/profile.h) sees the chunk-level fan-out instead of crediting a
  // whole chunked pass to the enclosing span as serial self-time.
  if (pool == nullptr) {
    for (std::size_t begin = 0; begin < total;
         begin += kPartitionChunkGrain) {
      obs::TraceSpan span(
          "partition.chunk",
          static_cast<std::int64_t>(begin / kPartitionChunkGrain));
      fn(0, begin, std::min(total, begin + kPartitionChunkGrain));
    }
    return;
  }
  pool->ParallelForChunked(
      total, kPartitionChunkGrain,
      [&fn](int slot, std::size_t begin, std::size_t end) {
        obs::TraceSpan span(
            "partition.chunk",
            static_cast<std::int64_t>(begin / kPartitionChunkGrain),
            /*parallel_lane=*/true);
        fn(slot, begin, end);
      });
}

void HeavyEdgeMatch(const CsrGraph& g, ThreadPool* pool, Rng& rng,
                    PartitionScratch& s) {
  obs::TraceSpan span("partition.coarsen.match",
                      static_cast<std::int64_t>(g.num_vertices()));
  const auto n = g.num_vertices();
  const auto sn = static_cast<std::size_t>(n);
  s.match.assign(sn, kNoMatch);
  s.propose.assign(sn, kNoMatch);
  // Deterministic per-level random sweep order for the serial cleanup.
  // Drawn from the bisection's own stream exactly once per level,
  // identically at every thread width.
  s.order.resize(sn);
  std::iota(s.order.begin(), s.order.end(), 0);
  for (std::size_t i = sn; i > 1; --i) {
    std::swap(s.order[i - 1], s.order[rng.NextBelow(i)]);
  }
  // One preference salt per level, drawn right after the shuffle — both come
  // from the bisection's own stream, identically at every thread width.
  const std::uint64_t salt = rng.NextU64();

  for (int round = 0; round < kProposeRounds; ++round) {
    // Propose: reads only the match state frozen at round start, writes only
    // the vertex's own propose slot — race-free by construction. A matched
    // vertex clears its slot so stale proposals from earlier rounds cannot
    // resolve against it.
    ForPartitionChunks(pool, sn,
                       [&](int, std::size_t begin, std::size_t end) {
                         for (std::size_t sv = begin; sv < end; ++sv) {
                           GOLDILOCKS_CHECK(sv < sn);
                           s.propose[sv] =
                               s.match[sv] != kNoMatch
                                   ? kNoMatch
                                   : BestUnmatchedNeighbor(
                                         g, static_cast<VertexIndex>(sv),
                                         s.match, salt);
                         }
                       });
    // Resolve: the propose array is immutable here and every vertex writes
    // only its own match slot, so mutual pairs lock in without contention.
    // Any vertex proposed to was unmatched at round start, hence recomputed
    // its own proposal this round — no stale cross-round pairing exists.
    // A vertex with nothing to propose retires as a singleton right here:
    // neighbors only ever become *more* matched, so a vertex that cannot
    // match now never will, and retiring it keeps hubs with fully-matched
    // neighborhoods from rescanning their whole row every round.
    ForPartitionChunks(
        pool, sn, [&](int, std::size_t begin, std::size_t end) {
          for (std::size_t sv = begin; sv < end; ++sv) {
            GOLDILOCKS_CHECK(sv < sn);
            if (s.match[sv] != kNoMatch) continue;
            const auto u = s.propose[sv];
            if (u == kNoMatch) {
              s.match[sv] = static_cast<VertexIndex>(sv);
            } else if (s.propose[static_cast<std::size_t>(u)] ==
                       static_cast<VertexIndex>(sv)) {
              s.match[sv] = u;
            }
          }
        });
  }

  // Serial cleanup: greedy over the unmatched tail (vertices whose
  // proposals never went mutual), visited in the level's random sweep
  // order. The randomized order de-correlates the tail pairings across
  // levels and sub-splits — with a fixed ascending sweep the same
  // systematic pairings recur at every level and the multilevel hierarchy
  // compounds their cost (measured ~6% worse final cuts on the clustered
  // bench graphs).
  for (const auto v : s.order) {
    const auto sv = static_cast<std::size_t>(v);
    if (s.match[sv] != kNoMatch) continue;
    const auto best = BestUnmatchedNeighbor(g, v, s.match, salt);
    if (best != kNoMatch) {
      s.match[sv] = best;
      s.match[static_cast<std::size_t>(best)] = v;
    } else {
      s.match[sv] = v;  // stays a singleton
    }
  }

  // Absorption: each remaining singleton joins the cluster of its heaviest
  // positively-adjacent *paired* neighbor (ties to the smallest id). On
  // star-like rows — common in service graphs, where pairwise matching
  // strands every leaf but one — this collapses the whole tail in a single
  // level instead of shedding one pair per hub per level, which is what let
  // coarsening stall thousands of vertices above the target. Two final
  // singletons are never adjacent (the cleanup sweep would have paired
  // them), so restricting targets to paired vertices rules out absorption
  // chains by construction; the pass reads only the settled match array and
  // writes each vertex's own absorb slot — deterministic and race-free at
  // any width.
  s.absorb.assign(sn, kNoMatch);
  ForPartitionChunks(pool, sn, [&](int, std::size_t begin, std::size_t end) {
    for (std::size_t sv = begin; sv < end; ++sv) {
      GOLDILOCKS_CHECK(sv < sn);
      if (s.match[sv] != static_cast<VertexIndex>(sv)) continue;
      const auto v = static_cast<VertexIndex>(sv);
      VertexIndex best = kNoMatch;
      double best_w = 0.0;
      const auto [to, ws] = g.arc_range(v);
      for (std::size_t i = 0; i < to.size(); ++i) {
        const auto u = to[i];
        if (ws[i] <= 0.0 || u == v) continue;
        if (s.match[static_cast<std::size_t>(u)] == u) continue;  // singleton
        const double w = JitteredWeight(ws[i], v, u, salt);
        if (w > best_w || (w == best_w && (best == kNoMatch || u < best))) {
          best = u;
          best_w = w;
        }
      }
      s.absorb[sv] = best;
    }
  });
}

void ContractByMatching(const CsrGraph& fine, ThreadPool* pool,
                        CsrGraph& coarse,
                        std::vector<VertexIndex>& fine_to_coarse,
                        PartitionScratch& s) {
  obs::TraceSpan span("partition.coarsen.contract",
                      static_cast<std::int64_t>(fine.num_vertices()));
  const auto n = fine.num_vertices();
  const auto sn = static_cast<std::size_t>(n);

  // Serial coarse numbering: clusters are numbered in the level's random
  // sweep order (s.order, fixed by HeavyEdgeMatch), one id per matched pair
  // / non-absorbed singleton; rep[c] is the first-visited endpoint. The
  // randomized numbering matters for quality, not just the cleanup sweep:
  // coarse ids feed the next level's seed growing and every min-id
  // tie-break, and numbering ascending by fine id keeps those choices
  // correlated across levels (measured ~6% worse final cuts on the
  // clustered bench graphs). Absorbed singletons create no id of their own;
  // a second sweep maps them onto their target's cluster — the target is
  // always paired, so its id already exists.
  fine_to_coarse.assign(sn, -1);
  s.rep.clear();
  for (const auto v : s.order) {
    const auto sv = static_cast<std::size_t>(v);
    if (fine_to_coarse[sv] >= 0 || s.absorb[sv] != -1) continue;
    const auto m = s.match[sv];
    GOLDILOCKS_CHECK(s.rep.size() < sn);
    const auto c = static_cast<VertexIndex>(s.rep.size());
    fine_to_coarse[sv] = c;
    if (m != v) fine_to_coarse[static_cast<std::size_t>(m)] = c;
    s.rep.push_back(v);
  }
  const std::size_t snc = s.rep.size();
  for (VertexIndex v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    if (s.absorb[sv] != -1) {
      fine_to_coarse[sv] =
          fine_to_coarse[static_cast<std::size_t>(s.absorb[sv])];
    }
  }

  // Absorbed members grouped by cluster via a counting sort keyed on the
  // coarse id; filling in ascending fine-id order makes each cluster's
  // member list ascending — one canonical emission order at every width.
  s.mem_off.assign(snc + 1, 0);
  for (std::size_t sv = 0; sv < sn; ++sv) {
    if (s.absorb[sv] != -1) {
      ++s.mem_off[static_cast<std::size_t>(fine_to_coarse[sv]) + 1];
    }
  }
  for (std::size_t c = 0; c < snc; ++c) s.mem_off[c + 1] += s.mem_off[c];
  s.mem.resize(s.mem_off[snc]);
  s.mem_fill.assign(snc, 0);
  for (VertexIndex v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    if (s.absorb[sv] == -1) continue;
    const auto c = static_cast<std::size_t>(fine_to_coarse[sv]);
    s.mem[s.mem_off[c] + s.mem_fill[c]++] = v;
  }

  // Padded staging offsets from per-row degree upper bounds (a cluster's
  // merged row can't exceed the sum of its members' fine degrees).
  s.pad_off.resize(snc + 1);
  s.pad_off[0] = 0;
  for (std::size_t c = 0; c < snc; ++c) {
    const auto v = s.rep[c];
    const auto m = s.match[static_cast<std::size_t>(v)];
    std::size_t ub = fine.arcs(v).size();
    if (m != v) ub += fine.arcs(m).size();
    for (std::size_t i = s.mem_off[c]; i < s.mem_off[c + 1]; ++i) {
      ub += fine.arcs(s.mem[i]).size();
    }
    s.pad_off[c + 1] = s.pad_off[c] + ub;
  }
  s.pad_col.resize(s.pad_off[snc]);
  s.pad_w.resize(s.pad_off[snc]);
  s.row_count.resize(snc);
  s.row_balance.resize(snc);
  s.row_deg.resize(snc);
  s.row_off.resize(snc + 1);

  const auto slots =
      static_cast<std::size_t>(pool != nullptr ? pool->num_threads() : 1);
  if (s.dedup.size() < slots) s.dedup.resize(slots);

  // Pass A: stage every coarse row into its padded span. Rows own disjoint
  // spans and each slot's merge accumulator is Reset per row, so concurrent
  // chunks never interact; first-touch order within a row depends only on
  // the members' fine CSR scan order — never on scheduling.
  ForPartitionChunks(pool, snc, [&](int slot, std::size_t begin,
                                    std::size_t end) {
    auto& acc = s.dedup[static_cast<std::size_t>(slot)];
    for (std::size_t c = begin; c < end; ++c) {
      const auto v = s.rep[c];
      const auto m = s.match[static_cast<std::size_t>(v)];
      acc.Reset(snc);
      const auto emit = [&](VertexIndex x) {
        const auto [to, ws] = fine.arc_range(x);
        for (std::size_t i = 0; i < to.size(); ++i) {
          const auto cu = fine_to_coarse[static_cast<std::size_t>(to[i])];
          if (cu != static_cast<VertexIndex>(c)) acc.Add(cu, ws[i]);
        }
      };
      emit(v);
      if (m != v) emit(m);
      double bw = fine.balance_weight(v);
      if (m != v) bw += fine.balance_weight(m);
      for (std::size_t i = s.mem_off[c]; i < s.mem_off[c + 1]; ++i) {
        emit(s.mem[i]);
        bw += fine.balance_weight(s.mem[i]);
      }
      std::size_t k = s.pad_off[c];
      double degree = 0.0;  // summed in emission order, as EndBuild would
      for (const int cu : acc.touched()) {
        const double w = acc.Get(cu);
        s.pad_col[k] = static_cast<VertexIndex>(cu);
        s.pad_w[k] = w;
        degree += w;
        ++k;
      }
      s.row_count[c] = k - s.pad_off[c];
      s.row_balance[c] = bw;
      s.row_deg[c] = degree;
    }
  });

  // Serial exact prefix sum over the staged row lengths, then pack.
  s.row_off[0] = 0;
  for (std::size_t c = 0; c < snc; ++c) {
    s.row_off[c + 1] = s.row_off[c] + s.row_count[c];
  }

  coarse.BeginIndexedBuild(static_cast<VertexIndex>(snc), s.row_off[snc]);
  // Pass B: disjoint-slot copies into the exact CSR arrays.
  ForPartitionChunks(pool, snc,
                     [&](int, std::size_t begin, std::size_t end) {
                       for (std::size_t c = begin; c < end; ++c) {
                         const auto cv = static_cast<VertexIndex>(c);
                         coarse.SetRowOffset(cv, s.row_off[c]);
                         coarse.SetVertex(cv, s.row_balance[c], s.row_deg[c]);
                         for (std::size_t i = 0; i < s.row_count[c]; ++i) {
                           coarse.SetArc(s.row_off[c] + i,
                                         s.pad_col[s.pad_off[c] + i],
                                         s.pad_w[s.pad_off[c] + i]);
                         }
                       }
                     });
  coarse.EndIndexedBuild();
}

}  // namespace gl
