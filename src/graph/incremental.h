// Incremental graph repartitioning (the paper's Sec. IV-C future work,
// after Ou & Ranka [53]).
//
// Epoch-based scheduling re-partitions the container graph as demands
// drift, but a fresh partition relabels everything and the diff against the
// old placement is a cluster-wide migration storm. Incremental
// repartitioning starts from the previous assignment and repairs it:
//
//   1. vertices new to the graph join the neighbouring group with the
//      highest attachment (or seed fresh groups);
//   2. groups that no longer satisfy the fit predicate shed boundary
//      vertices to fitting neighbour groups — best cut-gain first, smallest
//      demand first among ties — or, when shedding cannot fix them, split;
//   3. a bounded KL-style refinement pass then moves boundary vertices
//      between groups while it improves the cut, within a migration budget.
//
// The result trades a few percent of cut quality for an order of magnitude
// fewer container migrations (see bench_incremental).
#pragma once

#include <span>

#include "graph/partitioner.h"

namespace gl {

struct IncrementalOptions {
  // Fraction of vertices the repair is allowed to move (beyond what
  // feasibility itself forces). The cut-improvement pass stops here.
  double migration_budget_fraction = 0.15;
  // Refinement passes over the boundary after feasibility is restored.
  int refine_passes = 2;
  PartitionOptions partition;
};

struct IncrementalResult {
  std::vector<int> group_of;  // per-vertex group id, compacted to [0, n)
  int num_groups = 0;
  // Vertices whose group differs from `previous` (new vertices excluded).
  int moved_vertices = 0;
  double cut_weight = 0.0;
  // Groups that still violate the fit predicate (singletons too big).
  int infeasible_groups = 0;
};

// `previous[v]` is v's old group id, or -1 for vertices that did not exist
// last epoch. Group ids need not be dense. The fit predicate and capacity
// units follow RecursivePartition's semantics.
IncrementalResult IncrementalRepartition(const Graph& g,
                                         std::span<const int> previous,
                                         const FitPredicate& fits,
                                         const IncrementalOptions& opts);

}  // namespace gl
