// Reusable scratch arenas for the partitioning kernel (DESIGN.md §11).
//
// Every buffer the multilevel partitioner needs — matchings, coarse levels,
// gain arrays, heaps, move logs, subgraph views — lives in one
// PartitionScratch arena that is allocated once and reused across levels,
// recursion nodes, and epochs. Each helper re-initializes the portion it
// uses (assign/Reset) before reading it, so results never depend on what a
// previous subproblem left behind: a fresh arena and a warm arena produce
// bit-identical partitions. That property is what lets the parallel
// recursion driver hand each worker its own arena without changing results
// (DESIGN.md §9).
//
// Nothing here is thread-safe; an arena belongs to exactly one thread at a
// time. The parallel driver enforces that by construction (one arena per
// ParallelFor slot).
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "graph/csr.h"
#include "graph/refine.h"
#include "obs/memory.h"

namespace gl {

// Max-heap with lazy deletion and reusable storage. Push records the
// priority as current; stale entries (pushed before a later Push or
// Invalidate for the same vertex) are skipped at Pop. Priorities compare on
// value only, so ties pop in heap order — deterministic for a given push
// sequence, which is all the FM contract requires (DESIGN.md §8).
class LazyMaxHeap {
 public:
  // Prepares for a universe of n vertices; keeps capacity.
  void Reset(std::size_t n) {
    current_.assign(n, kAbsent);
    heap_.clear();
  }

  void Push(VertexIndex v, double priority) {
    current_[static_cast<std::size_t>(v)] = priority;
    heap_.push_back(Entry{priority, v});
    SiftUp(heap_.size() - 1);
  }

  void Invalidate(VertexIndex v) {
    current_[static_cast<std::size_t>(v)] = kAbsent;
  }

  [[nodiscard]] bool Contains(VertexIndex v) const {
    return !std::isnan(current_[static_cast<std::size_t>(v)]);
  }

  // Pops the highest-priority live entry; false when only stale entries (or
  // nothing) remain. Popping consumes the vertex: it reads as absent until
  // pushed again.
  bool Pop(VertexIndex* v, double* priority) {
    while (!heap_.empty()) {
      const Entry top = heap_.front();
      heap_.front() = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) SiftDown(0);
      if (current_[static_cast<std::size_t>(top.v)] == top.priority) {
        current_[static_cast<std::size_t>(top.v)] = kAbsent;
        *v = top.v;
        *priority = top.priority;
        return true;
      }
    }
    return false;
  }

  // Retained footprint in bytes (capacities). Observability only.
  [[nodiscard]] std::size_t ApproxBytes() const {
    return obs::VectorFootprintBytes(heap_) +
           obs::VectorFootprintBytes(current_);
  }

 private:
  struct Entry {
    double priority;
    VertexIndex v;
  };

  // NaN sentinel compares unequal to everything, including itself — no
  // finite priority can collide with it.
  static constexpr double kAbsent = std::numeric_limits<double>::quiet_NaN();

  void SiftUp(std::size_t i) {
    while (i > 0) {
      const std::size_t p = (i - 1) / 2;
      if (heap_[p].priority >= heap_[i].priority) break;
      std::swap(heap_[p], heap_[i]);
      i = p;
    }
  }

  void SiftDown(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t largest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && heap_[l].priority > heap_[largest].priority) largest = l;
      if (r < n && heap_[r].priority > heap_[largest].priority) largest = r;
      if (largest == i) break;
      std::swap(heap_[i], heap_[largest]);
      i = largest;
    }
  }

  std::vector<Entry> heap_;
  std::vector<double> current_;
};

// Flat timestamped accumulator keyed by small integer ids: Add() sums
// weights per id in O(1), touched() returns the ids in first-touch order —
// deterministic by construction when the caller's scan order is, so no sort
// is needed. Reset is O(1) (epoch bump); storage grows to the largest
// universe seen and is then reused.
class GroupAccumulator {
 public:
  void Reset(std::size_t num_ids) {
    if (num_ids > sum_.size()) {
      sum_.resize(num_ids, 0.0);
      stamp_.resize(num_ids, 0);
      ++grow_events_;
    }
    touched_.clear();
    if (++epoch_ == 0) {  // wrapped: stamps from the old era could collide
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  void Add(int id, double w) {
    const auto i = static_cast<std::size_t>(id);
    GOLDILOCKS_CHECK_LT(i, sum_.size());
    if (stamp_[i] != epoch_) {
      stamp_[i] = epoch_;
      sum_[i] = w;
      touched_.push_back(id);
    } else {
      sum_[i] += w;
    }
  }

  [[nodiscard]] double Get(int id) const {
    const auto i = static_cast<std::size_t>(id);
    GOLDILOCKS_CHECK_LT(i, sum_.size());
    return stamp_[i] == epoch_ ? sum_[i] : 0.0;
  }

  // Ids seen this epoch, in first-touch order.
  [[nodiscard]] std::span<const int> touched() const { return touched_; }

  // Test seam: forces the epoch counter so the wrap path is reachable
  // without 2^32 Resets.
  void set_epoch_for_test(std::uint32_t epoch) { epoch_ = epoch; }

  // Retained footprint in bytes (capacities, never released by Reset), and
  // how many Resets actually grew the universe — the arena's allocation
  // events. Observability only (DESIGN.md §10).
  [[nodiscard]] std::size_t ApproxBytes() const {
    return obs::VectorFootprintBytes(sum_) +
           obs::VectorFootprintBytes(stamp_) +
           obs::VectorFootprintBytes(touched_);
  }
  [[nodiscard]] std::uint64_t grow_events() const { return grow_events_; }

 private:
  std::vector<double> sum_;
  std::vector<std::uint32_t> stamp_;
  std::vector<int> touched_;
  std::uint32_t epoch_ = 0;
  std::uint64_t grow_events_ = 0;
};

// Per-trial working set for multi-trial FM (partitioner.cc). Each trial owns
// a full copy of the refinement state so trials can run concurrently on pool
// threads without sharing anything mutable; every buffer is re-initialized
// (assign/Reset) by the trial before use, so a warm trial slot and a fresh
// one behave identically.
struct FmTrialScratch {
  std::vector<std::uint8_t> side;
  std::vector<double> gain;
  LazyMaxHeap heap;
  std::vector<std::uint8_t> moved;
  std::vector<VertexIndex> move_seq;
  std::vector<VertexIndex> seed_order;  // boundary-seed push order

  // Trial outputs, read by the serial winner fold after the batch joins.
  double cut = 0.0;
  double w0 = 0.0;
  std::uint64_t arcs_scanned = 0;
  std::uint64_t rejections = 0;

  [[nodiscard]] std::size_t ApproxBytes() const {
    return obs::VectorFootprintBytes(side) + obs::VectorFootprintBytes(gain) +
           heap.ApproxBytes() + obs::VectorFootprintBytes(moved) +
           obs::VectorFootprintBytes(move_seq) +
           obs::VectorFootprintBytes(seed_order);
  }
};

// The partitioner's working memory. One arena serves a whole serial
// recursive partition; the parallel driver gives each concurrently-solved
// subtree its own. Buffers are grouped by the phase that owns them; phases
// never overlap, so none alias.
struct PartitionScratch {
  // Multilevel hierarchy: coarse level i lives in levels[i] and maps fine
  // vertex v of the level below to level_maps[i][v]. A deque so growing the
  // hierarchy never moves (and never invalidates pointers to) built levels.
  std::deque<CsrGraph> levels;
  std::deque<std::vector<VertexIndex>> level_maps;

  // Pointer chain from the finest graph through the built levels, rebuilt by
  // every bisection. Lives here (not as a BisectCsr local) so the steady
  // state allocates nothing: capacity from the deepest hierarchy seen is
  // reused by every later call (DESIGN.md §11).
  std::vector<const CsrGraph*> level_chain;

  // Coarsening (graph/coarsen.cc). `match` and `propose` are the two ping
  // buffers of the propose/resolve matching rounds; the contraction pass
  // owns the rest: `rep` marks each matched pair's representative (smaller
  // endpoint), `fine_to_coarse` numbers coarse vertices, the `row_*` arrays
  // hold per-coarse-row metadata, and `pad_col`/`pad_w` are the padded
  // arc staging buffers sized by upper-bound degrees before the exact
  // prefix sum packs them into the coarse CSR. `dedup` holds one
  // neighbor-merge accumulator per pool slot; concurrent chunks touch
  // disjoint slots and Reset per coarse row, so slot reuse is safe.
  std::vector<VertexIndex> order;     // per-level random sweep order
  std::vector<VertexIndex> match;
  std::vector<VertexIndex> propose;
  std::vector<VertexIndex> absorb;    // singleton → paired absorber, or -1
  std::vector<VertexIndex> rep;
  std::vector<std::size_t> mem_off;   // absorbed members grouped by cluster
  std::vector<VertexIndex> mem;
  std::vector<std::size_t> mem_fill;
  std::vector<std::size_t> pad_off;
  std::vector<std::size_t> row_off;
  std::vector<std::size_t> row_count;
  std::vector<double> row_balance;
  std::vector<double> row_deg;
  std::vector<VertexIndex> pad_col;
  std::vector<double> pad_w;
  std::vector<GroupAccumulator> dedup;

  // Initial partition growth + FM refinement.
  LazyMaxHeap heap;
  std::vector<double> gain;
  std::vector<double> grow_key;
  std::vector<std::uint8_t> side;
  std::vector<std::uint8_t> fine_side;
  std::vector<std::uint8_t> best_side;
  std::vector<std::uint8_t> trial_side;
  std::vector<std::uint8_t> in_region;
  std::vector<std::uint8_t> moved;
  std::vector<VertexIndex> move_seq;
  std::vector<VertexIndex> outside;

  // Multi-trial FM (partitioner.cc): per-trial working sets, the shared
  // chunked-precompute partial sums (folded in chunk order, one canonical
  // summation order at every width), and the per-trial outcomes the winner
  // fold reads. Sized to the trial count once and reused across levels.
  std::vector<FmTrialScratch> fm_trials;
  std::vector<double> chunk_partials;
  std::vector<FmTrialOutcome> trial_outcomes;

  // Zero-copy recursion over index ranges (partitioner.cc): the CSR view of
  // the current range plus the stable split buffers.
  CsrGraph sub;
  std::vector<VertexIndex> split_zero;
  std::vector<VertexIndex> split_one;
  std::vector<std::uint8_t> node_side;

  // ---- memory observability (DESIGN.md §10; informational only) ---------

  // Arena high-water mark in bytes; updated by NoteHighWater(), never
  // decreased — capacities survive every Reset()/Clear(), so the mark is
  // monotone over the arena's lifetime even as subproblems shrink.
  std::size_t peak_bytes = 0;

  // Retained footprint right now: the sum of every buffer's capacity.
  [[nodiscard]] std::size_t ApproxBytes() const {
    std::size_t bytes = 0;
    for (const auto& level : levels) bytes += level.ApproxBytes();
    for (const auto& map : level_maps) {
      bytes += obs::VectorFootprintBytes(map);
    }
    bytes += obs::VectorFootprintBytes(level_chain);
    bytes += obs::VectorFootprintBytes(match);
    bytes += obs::VectorFootprintBytes(order);
    bytes += obs::VectorFootprintBytes(propose);
    bytes += obs::VectorFootprintBytes(absorb);
    bytes += obs::VectorFootprintBytes(rep);
    bytes += obs::VectorFootprintBytes(mem_off);
    bytes += obs::VectorFootprintBytes(mem);
    bytes += obs::VectorFootprintBytes(mem_fill);
    bytes += obs::VectorFootprintBytes(pad_off);
    bytes += obs::VectorFootprintBytes(row_off);
    bytes += obs::VectorFootprintBytes(row_count);
    bytes += obs::VectorFootprintBytes(row_balance);
    bytes += obs::VectorFootprintBytes(row_deg);
    bytes += obs::VectorFootprintBytes(pad_col);
    bytes += obs::VectorFootprintBytes(pad_w);
    for (const auto& d : dedup) bytes += d.ApproxBytes();
    bytes += heap.ApproxBytes();
    bytes += obs::VectorFootprintBytes(gain);
    bytes += obs::VectorFootprintBytes(grow_key);
    bytes += obs::VectorFootprintBytes(side);
    bytes += obs::VectorFootprintBytes(fine_side);
    bytes += obs::VectorFootprintBytes(best_side);
    bytes += obs::VectorFootprintBytes(trial_side);
    bytes += obs::VectorFootprintBytes(in_region);
    bytes += obs::VectorFootprintBytes(moved);
    bytes += obs::VectorFootprintBytes(move_seq);
    bytes += obs::VectorFootprintBytes(outside);
    for (const auto& t : fm_trials) bytes += t.ApproxBytes();
    bytes += obs::VectorFootprintBytes(chunk_partials);
    bytes += obs::VectorFootprintBytes(trial_outcomes);
    bytes += sub.ApproxBytes();
    bytes += obs::VectorFootprintBytes(split_zero);
    bytes += obs::VectorFootprintBytes(split_one);
    bytes += obs::VectorFootprintBytes(node_side);
    return bytes;
  }

  // Folds the current footprint into the high-water mark; true when the
  // mark moved (i.e. some buffer actually grew since the last call).
  bool NoteHighWater() {
    const std::size_t bytes = ApproxBytes();
    if (bytes <= peak_bytes) return false;
    peak_bytes = bytes;
    return true;
  }
};

}  // namespace gl
