// Incremental-gain engine for Fiduccia–Mattheyses refinement
// (DESIGN.md §11).
//
// gain(v) = (cut weight removed by moving v to the other side) =
// sum over neighbors u of: +w(v,u) if u is across the cut, -w(v,u) if not.
// The engine computes all gains once at Attach (O(arcs)) and then maintains
// them under Flip with delta updates on the moved vertex's neighborhood
// only — the refiner stops paying an O(arcs) recompute per pass.
//
// Flip's updates are algebraically involutive: Flip(v); Flip(v) restores
// every gain exactly when the arc weights sum without rounding (integer
// weights — what the unit tests use), and to a deterministic
// ULP-neighborhood otherwise. Determinism is unaffected either way: the
// same move sequence always produces bit-identical gains
// (tests/csr_test.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "graph/csr.h"

namespace gl {

class FmEngine {
 public:
  // Binds to a graph, a side assignment, and a gain buffer (all owned by
  // the caller's scratch arena) and computes every gain in O(arcs).
  void Attach(const CsrGraph& g, std::vector<std::uint8_t>* side,
              std::vector<double>* gain) {
    g_ = &g;
    side_ = side;
    gain_ = gain;
    const auto n = static_cast<std::size_t>(g.num_vertices());
    GOLDILOCKS_CHECK_EQ(side->size(), n);
    gain->assign(n, 0.0);
    // gain(v) + degree(v) = 2 * (v's cross-cut weight), so the same scan
    // that fills the gains also yields the starting cut: half the summed
    // cross weight (each cut edge is seen from both endpoints). Callers
    // read it via initial_cut() instead of paying a separate O(arcs)
    // CutWeight pass.
    double cross_total = 0.0;
    for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
      const double gv = RecomputeGain(v);
      (*gain)[static_cast<std::size_t>(v)] = gv;
      cross_total += gv + g.degree_weight(v);
    }
    initial_cut_ = cross_total / 4.0;
    arcs_scanned_ += g.num_arcs();
  }

  // Binds to gains the caller already computed (the multi-trial driver runs
  // one shared chunked scan and hands each trial a copy), skipping Attach's
  // O(arcs) pass. `initial_cut` must price `side` exactly as Attach would
  // have. Adds nothing to arcs_scanned(): the shared scan is counted once by
  // the driver, not once per trial — the deterministic counter total must
  // not depend on the trial count.
  void AttachPrecomputed(const CsrGraph& g, std::vector<std::uint8_t>* side,
                         std::vector<double>* gain, double initial_cut) {
    g_ = &g;
    side_ = side;
    gain_ = gain;
    GOLDILOCKS_CHECK_EQ(side->size(),
                        static_cast<std::size_t>(g.num_vertices()));
    GOLDILOCKS_CHECK_EQ(gain->size(),
                        static_cast<std::size_t>(g.num_vertices()));
    initial_cut_ = initial_cut;
  }

  [[nodiscard]] double gain(VertexIndex v) const {
    return (*gain_)[static_cast<std::size_t>(v)];
  }

  // Cut weight of the side assignment as of the last Attach.
  [[nodiscard]] double initial_cut() const { return initial_cut_; }

  // Moves v to the other side and delta-updates the gains of v and its
  // unlocked-or-not neighbors (the caller decides which neighbors to
  // re-push into its heap; the gains themselves are always kept exact).
  void Flip(VertexIndex v) {
    const auto sv = static_cast<std::size_t>(v);
    (*gain_)[sv] = -(*gain_)[sv];
    const auto [to, ws] = g_->arc_range(v);
    const std::uint8_t v_side = (*side_)[sv];
    for (std::size_t i = 0; i < to.size(); ++i) {
      const auto su = static_cast<std::size_t>(to[i]);
      // The edge's cut status flips: if it was cross before the move it
      // becomes internal (u loses 2w of gain), else it becomes cross
      // (u gains 2w).
      (*gain_)[su] += (*side_)[su] != v_side ? -2.0 * ws[i] : 2.0 * ws[i];
    }
    (*side_)[sv] ^= 1;
    arcs_scanned_ += to.size();
  }

  // O(degree) from-scratch gain, for tests and audits.
  [[nodiscard]] double RecomputeGain(VertexIndex v) const {
    const auto [to, ws] = g_->arc_range(v);
    double gv = 0.0;
    for (std::size_t i = 0; i < to.size(); ++i) {
      const bool cross = (*side_)[static_cast<std::size_t>(v)] !=
                         (*side_)[static_cast<std::size_t>(to[i])];
      gv += cross ? ws[i] : -ws[i];
    }
    return gv;
  }

  // Arcs touched since construction — feeds the deterministic
  // partition.cut_edges_evaluated counter in one batched Add.
  [[nodiscard]] std::uint64_t arcs_scanned() const { return arcs_scanned_; }

 private:
  const CsrGraph* g_ = nullptr;
  std::vector<std::uint8_t>* side_ = nullptr;
  std::vector<double>* gain_ = nullptr;
  double initial_cut_ = 0.0;
  std::uint64_t arcs_scanned_ = 0;
};

}  // namespace gl
