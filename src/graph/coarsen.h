// Deterministic parallel coarsening: heavy-edge matching + contraction
// (DESIGN.md §16).
//
// Both kernels produce bit-identical output at every thread width. Matching
// runs bounded propose/resolve rounds — each round every unmatched vertex
// proposes to its most-preferred positive-weight unmatched neighbor
// (preference = weight scaled by a symmetric per-level hash jitter, ties to
// the smallest id) reading only the match state frozen at round start, then
// mutual proposals lock in, each vertex writing only its own match slot — so
// the fixpoint is a pure function of (graph, level salt). A serial greedy
// sweep in the level's random order pairs the leftovers, and an absorption
// pass folds stranded singletons into their preferred paired neighbor's
// cluster. Contraction numbers coarse vertices serially in the same random
// sweep order, stages each coarse row into a padded per-row span in parallel
// (first-touch neighbor merge per row, rows disjoint), then packs the exact
// coarse CSR through graph/csr.h's indexed build after one serial prefix
// sum.
//
// Only positive edges are contracted — contracting an anti-affinity
// (negative) edge would glue replicas together and make them inseparable at
// finer levels. Coarse levels carry only balance weights: refinement never
// reads Resource demands, and group demands are summed from the original
// graph at leaf emission.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/csr.h"
#include "graph/scratch.h"

namespace gl {

// Chunk size of every intra-bisection parallel loop. One fixed grain keeps
// chunk boundaries — and therefore every chunk-indexed partial fold — a pure
// function of the problem size, never of the worker count (DESIGN.md §9).
inline constexpr std::size_t kPartitionChunkGrain = 2048;

// Runs fn(slot, begin, end) over [0, total) in kPartitionChunkGrain-sized
// runs: on the pool when one is supplied, serially (slot 0, ascending chunk
// order) when `pool` is null. Both paths use the identical chunk
// decomposition, so per-chunk partials fold the same way either way.
void ForPartitionChunks(
    ThreadPool* pool, std::size_t total,
    const std::function<void(int slot, std::size_t begin, std::size_t end)>&
        fn);

// Heavy-edge matching over `g` into s.match (match[v] is v's partner, or v
// itself when it stays a singleton) and s.absorb (each remaining singleton's
// paired absorber, or -1). Parallel propose/resolve rounds settle the bulk;
// the serial cleanup sweeps the contested tail in a random order drawn from
// `rng` — consumed identically at every thread width, so the output is a
// pure function of (graph, rng state) with or without a pool.
void HeavyEdgeMatch(const CsrGraph& g, ThreadPool* pool, Rng& rng,
                    PartitionScratch& s);

// Contracts `fine` by s.match (as produced by HeavyEdgeMatch) into `coarse`,
// writing the fine→coarse vertex map. Matched pairs merge balance weights;
// parallel arcs between coarse vertices merge in first-seen order; internal
// arcs drop. Identical output with or without a pool.
void ContractByMatching(const CsrGraph& fine, ThreadPool* pool,
                        CsrGraph& coarse,
                        std::vector<VertexIndex>& fine_to_coarse,
                        PartitionScratch& s);

}  // namespace gl
