// Canonical winner fold for multi-trial FM refinement (DESIGN.md §16).
//
// Each uncoarsening level may run several independent FM trials from the
// same projected assignment (partitioner.cc); the fold below decides which
// trial's result the bisection adopts. It is a serial left-fold over
// ascending trial ids with the same (violation, cut) preference the
// initial-partition trials have always used, so the chosen trial is a pure
// function of the trial outcomes — invariant to completion order, thread
// count, and scheduling (DESIGN.md §9).
#pragma once

#include <cstddef>
#include <span>

namespace gl {

// Outcome of one FM trial, indexed by trial id.
struct FmTrialOutcome {
  double violation = 0.0;  // balance-bounds distance (0 = feasible)
  double cut = 0.0;
};

// Index of the canonical winner: a strictly smaller balance violation wins
// (1e-12 tolerance), then a strictly smaller cut (1e-12); ties keep the
// smallest trial id. `trials` must be non-empty.
[[nodiscard]] inline std::size_t PickFmWinner(
    std::span<const FmTrialOutcome> trials) {
  std::size_t best = 0;
  for (std::size_t t = 1; t < trials.size(); ++t) {
    const bool better =
        trials[t].violation < trials[best].violation - 1e-12 ||
        (trials[t].violation <= trials[best].violation + 1e-12 &&
         trials[t].cut < trials[best].cut - 1e-12);
    if (better) best = t;
  }
  return best;
}

}  // namespace gl
