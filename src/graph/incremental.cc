#include "graph/incremental.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "graph/scratch.h"

namespace gl {
namespace {

// Working state: group membership plus per-group aggregates.
struct State {
  std::vector<int> group_of;          // per vertex, -1 = unassigned
  std::vector<Resource> demand;       // per group
  std::vector<int> count;             // per group
  std::vector<std::uint8_t> retired;  // group ids freed by emptying

  int NewGroup() {
    demand.emplace_back();
    count.push_back(0);
    retired.push_back(0);
    return static_cast<int>(demand.size()) - 1;
  }

  void Assign(const Graph& g, VertexIndex v, int to) {
    const int from = group_of[static_cast<std::size_t>(v)];
    if (from == to) return;
    if (from >= 0) {
      demand[static_cast<std::size_t>(from)] -= g.demand(v);
      if (--count[static_cast<std::size_t>(from)] == 0) {
        retired[static_cast<std::size_t>(from)] = 1;
      }
    }
    group_of[static_cast<std::size_t>(v)] = to;
    demand[static_cast<std::size_t>(to)] += g.demand(v);
    ++count[static_cast<std::size_t>(to)];
    retired[static_cast<std::size_t>(to)] = 0;
  }
};

// Attachment weight of v to each neighbouring group (positive edges pull,
// negative anti-affinity edges push), accumulated into the caller's flat
// timestamped scratch (graph/scratch.h): O(deg) with an O(1) reset, no hash
// map, no sort. The best-group scans below break weight ties by taking the
// first candidate seen, so the iteration order is part of the algorithm —
// first-touch order follows the adjacency list, which is deterministic by
// construction.
void AccumulateNeighborGroups(const Graph& g, const State& s, VertexIndex v,
                              GroupAccumulator& acc) {
  acc.Reset(s.demand.size());
  for (const auto& e : g.neighbors(v)) {
    const int ng = s.group_of[static_cast<std::size_t>(e.to)];
    if (ng >= 0) acc.Add(ng, e.weight);
  }
}

}  // namespace

IncrementalResult IncrementalRepartition(const Graph& g,
                                         std::span<const int> previous,
                                         const FitPredicate& fits,
                                         const IncrementalOptions& opts) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  GOLDILOCKS_CHECK(previous.size() == n);
  Rng rng(opts.partition.seed ^ 0x12cULL);

  // --- adopt the previous assignment (remapping sparse old ids) -------------
  State s;
  s.group_of.assign(n, -1);
  std::unordered_map<int, int> old_to_new;
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    const int old = previous[static_cast<std::size_t>(v)];
    if (old < 0) continue;
    auto it = old_to_new.find(old);
    if (it == old_to_new.end()) {
      it = old_to_new.emplace(old, s.NewGroup()).first;
    }
    s.Assign(g, v, it->second);
  }

  // --- place vertices that are new this epoch --------------------------------
  GroupAccumulator acc;  // reused for every attachment scan below
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    if (s.group_of[static_cast<std::size_t>(v)] >= 0) continue;
    AccumulateNeighborGroups(g, s, v, acc);
    int best = -1;
    double best_w = 0.0;
    for (const int ng : acc.touched()) {
      const double w = acc.Get(ng);
      if (w <= best_w) continue;
      const Resource after = s.demand[static_cast<std::size_t>(ng)] +
                             g.demand(v);
      if (fits(after, s.count[static_cast<std::size_t>(ng)] + 1)) {
        best = ng;
        best_w = w;
      }
    }
    s.Assign(g, v, best >= 0 ? best : s.NewGroup());
  }

  // --- restore feasibility -----------------------------------------------------
  // Shed boundary vertices from overfull groups into fitting neighbours;
  // split what cannot be repaired by shedding.
  auto group_feasible = [&](int gid) {
    return fits(s.demand[static_cast<std::size_t>(gid)],
                s.count[static_cast<std::size_t>(gid)]) ||
           s.count[static_cast<std::size_t>(gid)] <= 1;
  };
  for (int pass = 0; pass < 3; ++pass) {
    bool any_infeasible = false;
    for (int gid = 0; gid < static_cast<int>(s.demand.size()); ++gid) {
      if (s.retired[static_cast<std::size_t>(gid)] || group_feasible(gid)) {
        continue;
      }
      any_infeasible = true;
      // Shed: vertices of gid with the best outward attachment first.
      struct Candidate {
        VertexIndex v;
        int target;
        double gain;
      };
      std::vector<Candidate> cands;
      for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
        if (s.group_of[static_cast<std::size_t>(v)] != gid) continue;
        AccumulateNeighborGroups(g, s, v, acc);
        const double own = acc.Get(gid);
        for (const int ng : acc.touched()) {
          if (ng == gid) continue;
          cands.push_back({v, ng, acc.Get(ng) - own});
        }
      }
      std::sort(cands.begin(), cands.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.gain > b.gain;
                });
      for (const auto& c : cands) {
        if (group_feasible(gid)) break;
        if (s.group_of[static_cast<std::size_t>(c.v)] != gid) continue;
        const Resource after =
            s.demand[static_cast<std::size_t>(c.target)] + g.demand(c.v);
        if (!fits(after, s.count[static_cast<std::size_t>(c.target)] + 1)) {
          continue;
        }
        s.Assign(g, c.v, c.target);
      }
      if (group_feasible(gid)) continue;

      // Shedding was not enough: carve the group in two with a min-cut
      // bisection; the smaller side becomes a new group.
      std::vector<VertexIndex> members;
      for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
        if (s.group_of[static_cast<std::size_t>(v)] == gid) {
          members.push_back(v);
        }
      }
      const Graph sub = g.InducedSubgraph(members);
      PartitionOptions popts = opts.partition;
      popts.seed = rng.NextU64();
      const Bisection bis = Bisect(sub, popts);
      const int fresh = s.NewGroup();
      const bool zero_smaller = bis.side_weight[0] <= bis.side_weight[1];
      for (std::size_t i = 0; i < members.size(); ++i) {
        if ((bis.side[i] == 0) == zero_smaller) {
          s.Assign(g, members[i], fresh);
        }
      }
    }
    if (!any_infeasible) break;
  }

  // --- bounded cut refinement ---------------------------------------------------
  const int budget =
      static_cast<int>(opts.migration_budget_fraction * static_cast<double>(n));
  int refinement_moves = 0;
  std::vector<VertexIndex> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (int pass = 0;
       pass < opts.refine_passes && refinement_moves < budget; ++pass) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBelow(i)]);
    }
    bool improved = false;
    for (const auto v : order) {
      if (refinement_moves >= budget) break;
      const int own = s.group_of[static_cast<std::size_t>(v)];
      if (s.count[static_cast<std::size_t>(own)] <= 1) continue;
      AccumulateNeighborGroups(g, s, v, acc);
      const double own_w = acc.Get(own);
      int best = -1;
      double best_gain = 1e-9;
      for (const int ng : acc.touched()) {
        if (ng == own) continue;
        const double gain = acc.Get(ng) - own_w;
        if (gain <= best_gain) continue;
        const Resource after =
            s.demand[static_cast<std::size_t>(ng)] + g.demand(v);
        if (fits(after, s.count[static_cast<std::size_t>(ng)] + 1)) {
          best = ng;
          best_gain = gain;
        }
      }
      if (best >= 0) {
        s.Assign(g, v, best);
        ++refinement_moves;
        improved = true;
      }
    }
    if (!improved) break;
  }

  // --- compact group ids and report ----------------------------------------------
  IncrementalResult result;
  result.group_of.assign(n, -1);
  std::unordered_map<int, int> compact;
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    const int gid = s.group_of[static_cast<std::size_t>(v)];
    auto it = compact.find(gid);
    if (it == compact.end()) {
      it = compact.emplace(gid, result.num_groups++).first;
    }
    result.group_of[static_cast<std::size_t>(v)] = it->second;
  }
  for (int gid = 0; gid < static_cast<int>(s.demand.size()); ++gid) {
    if (s.retired[static_cast<std::size_t>(gid)] ||
        s.count[static_cast<std::size_t>(gid)] == 0) {
      continue;
    }
    if (!group_feasible(gid)) ++result.infeasible_groups;
  }
  // Moves: compare against `previous` through the old→working remap.
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    const int old = previous[static_cast<std::size_t>(v)];
    if (old < 0) continue;
    const auto it = old_to_new.find(old);
    if (it == old_to_new.end() ||
        s.group_of[static_cast<std::size_t>(v)] != it->second) {
      ++result.moved_vertices;
    }
  }
  result.cut_weight = g.CutWeightKWay(result.group_of);
  return result;
}

}  // namespace gl
