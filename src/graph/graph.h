// Weighted undirected graph used for both the container graph and the
// capacity graph of Sec. III-A.
//
// Vertices carry a Resource demand vector (the multi-dimensional weight from
// the paper) plus a scalar balance weight used by the partitioner's balance
// constraint. Edges carry a double weight: flow counts for the container
// graph, path lengths for the capacity graph. Edge weights may be *negative*
// to express replica anti-affinity (Sec. IV-C): min-cut then prefers to
// separate the endpoints.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/resource.h"

namespace gl {

using VertexIndex = std::int32_t;

struct GraphEdge {
  VertexIndex to = -1;
  double weight = 0.0;
};

class Graph {
 public:
  Graph() = default;

  // Adds a vertex and returns its index. `balance_weight` defaults to 1
  // (uniform vertices); callers with multi-resource demands should pass a
  // normalized scalar (see NormalizedL1).
  VertexIndex AddVertex(const Resource& demand,
                        double balance_weight GL_UNITS(dimensionless) = 1.0);

  // Adds an undirected edge u–v with the given weight. Parallel edges are
  // merged (weights summed). Self-loops are ignored.
  void AddEdge(VertexIndex u, VertexIndex v, double weight);

  // Pre-sizes the per-vertex arrays for `expected_vertices` AddVertex calls
  // (the adjacency rows still grow per edge).
  void Reserve(VertexIndex expected_vertices);

  [[nodiscard]] VertexIndex num_vertices() const {
    return static_cast<VertexIndex>(demands_.size());
  }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  [[nodiscard]] const Resource& demand(VertexIndex v) const {
    return demands_[Checked(v)];
  }
  [[nodiscard]] double balance_weight(VertexIndex v) const {
    return balance_[Checked(v)];
  }
  [[nodiscard]] std::span<const GraphEdge> neighbors(VertexIndex v) const {
    const auto& a = adj_[Checked(v)];
    return {a.data(), a.size()};
  }
  [[nodiscard]] double degree_weight(VertexIndex v) const;

  [[nodiscard]] Resource total_demand() const { return total_demand_; }
  [[nodiscard]] double total_balance_weight() const { return total_balance_; }

  // Sum of positive edge weights; the min-cut objective upper bound.
  [[nodiscard]] double total_positive_edge_weight() const;

  // Cut weight of a 2-way assignment (side[v] in {0,1}).
  [[nodiscard]] double CutWeight(std::span<const std::uint8_t> side) const;

  // Cut weight of a k-way assignment (sum of weights of edges whose
  // endpoints are in different groups).
  [[nodiscard]] double CutWeightKWay(std::span<const int> group) const;

  // Induced subgraph over `vertices`; `old_to_new` (optional out) maps
  // original index → new index or -1.
  [[nodiscard]] Graph InducedSubgraph(
      std::span<const VertexIndex> vertices,
      std::vector<VertexIndex>* old_to_new = nullptr) const;

  // Connected components ignoring negative edges; returns per-vertex
  // component id and the component count.
  [[nodiscard]] std::pair<std::vector<int>, int> ConnectedComponents() const;

 private:
  [[nodiscard]] std::size_t Checked(VertexIndex v) const {
    GOLDILOCKS_CHECK_GE(v, 0);
    GOLDILOCKS_CHECK_LT(v, num_vertices());
    return static_cast<std::size_t>(v);
  }

  std::vector<Resource> demands_;
  std::vector<double> balance_;
  std::vector<std::vector<GraphEdge>> adj_;
  Resource total_demand_;
  double total_balance_ GL_UNITS(dimensionless) = 0.0;
  std::size_t num_edges_ = 0;
};

}  // namespace gl
