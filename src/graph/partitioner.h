// Multilevel balanced min-cut graph partitioning.
//
// This is the from-scratch replacement for METIS [23] used by the paper: the
// same multilevel scheme (heavy-edge-matching coarsening → greedy-graph-
// growing initial partition → Fiduccia–Mattheyses refinement during
// uncoarsening) with a balance constraint on scalar vertex weights.
//
// Three entry points:
//   * Bisect            — one balanced 2-way split (the paper's building
//                         block, Fig. 6).
//   * KWayPartition     — k balanced groups via recursive bisection with
//                         proportional targets (used for fault domains and
//                         the Fig. 7 visualisations).
//   * RecursivePartition— the paper's Sec. III-B loop: keep bisecting until
//                         every group's aggregate Resource demand satisfies a
//                         caller-provided fit predicate (e.g. "fits in one
//                         server at 70% utilization"). n comes out of the
//                         algorithm, not in.
//
// Negative edge weights (replica anti-affinity, Sec. IV-C) are supported:
// they are never contracted during coarsening and the min-cut objective
// actively prefers to separate their endpoints.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace gl {

struct PartitionOptions {
  // Allowed imbalance: a side may carry up to (1 + balance_tolerance) times
  // its proportional share of the total balance weight (METIS' ubfactor).
  double balance_tolerance = 0.10;
  // Coarsening stops when the graph has at most this many vertices.
  int coarsen_target = 96;
  // Independent greedy-graph-growing attempts on the coarsest graph.
  int initial_trials = 8;
  // Maximum FM passes per level (each pass ends early when it stalls).
  int refine_passes = 8;
  // Consecutive non-improving FM moves tolerated before ending a pass.
  int fm_stall_limit = 256;
  // Direct k-way refinement passes run after recursive bisection in
  // KWayPartition (0 = off).
  int kway_refine_passes = 2;
  // Independent FM trials per uncoarsening level on graphs of at least
  // parallel_min_vertices vertices (1 = classic single-stream FM). The
  // trials split the refine_passes budget, run from keyed per-trial
  // sub-streams, and fold to one canonical winner (graph/refine.h), so the
  // result is a pure function of the options — identical whether the trials
  // ran concurrently or back-to-back.
  int fm_trials = 4;
  // Below this vertex count a level is refined single-stream and coarsened
  // without the pool: tiny levels are cheaper serial than synchronized.
  // Part of the deterministic contract (the gate reads the problem size,
  // never the thread count), so changing it changes partitions.
  int parallel_min_vertices = 4096;
  std::uint64_t seed = 0x5eed;
  // Worker threads for RecursivePartition's fan-out (1 = serial). Results
  // are bit-identical for every value: sub-partitions are seeded from the
  // recursion path and merged in child-index (preorder) order.
  int threads = 1;
};

struct Bisection {
  std::vector<std::uint8_t> side;  // per-vertex: 0 or 1
  double cut_weight = 0.0;
  double side_weight[2] = {0.0, 0.0};  // balance weight per side
  bool balanced = false;               // within tolerance of the target
};

// Balanced 2-way partition. `target_fraction` is the share of the total
// balance weight that side 0 should receive (0.5 for an even split; other
// values drive non-power-of-two k-way splits).
Bisection Bisect(const Graph& g, const PartitionOptions& opts,
                 double target_fraction = 0.5);

struct KWayResult {
  std::vector<int> group_of;  // per-vertex group id in [0, k)
  int num_groups = 0;
  double cut_weight = 0.0;  // total weight of inter-group edges
};

// Exactly k groups with proportional balance. Recursive bisection plus,
// when `opts.kway_refine_passes > 0`, a direct k-way boundary refinement
// (greedy best-gain moves across any group pair — the kMETIS idea) that
// repairs the cuts recursive bisection cannot see across its sub-problems.
KWayResult KWayPartition(const Graph& g, int k, const PartitionOptions& opts);

// Direct k-way refinement: improves `group_of` in place by moving boundary
// vertices to the neighbouring group with the highest positive cut gain,
// subject to the balance tolerance. Returns the cut improvement (≥ 0).
double RefineKWay(const Graph& g, std::vector<int>& group_of, int k,
                  const PartitionOptions& opts);

// Predicate deciding whether a container group with the given aggregate
// demand and cardinality can stop splitting (equation (2) of the paper).
using FitPredicate = std::function<bool(const Resource& demand, int count)>;

struct RecursivePartitionResult {
  std::vector<int> group_of;  // per-vertex group id in [0, num_groups)
  int num_groups = 0;
  // Binary recursion-tree path per group ('0' = left, '1' = right). Groups
  // sharing a longer common prefix were split from each other later, so they
  // communicate more; placing them adjacently preserves locality (the paper
  // puts sibling groups in the same rack).
  std::vector<std::string> group_path;
  std::vector<Resource> group_demand;
  std::vector<int> group_size;
  // Groups of a single vertex that still fail the fit predicate (container
  // larger than any server); the caller must reject or special-case these.
  std::vector<int> oversized_groups;
  double cut_weight = 0.0;
};

// Optional sizing hint: how many server-capacity units a group's aggregate
// demand is worth (max over dimensions of demand/ceiling). When provided,
// an oversized group of U units is split at fraction ⌈U/2⌉/U instead of
// 1/2, so the recursion's leaves land close to 100% of a server's ceiling
// rather than the ~50–70% that plain halving produces.
using CapacityUnitsFn = std::function<double(const Resource& demand)>;

RecursivePartitionResult RecursivePartition(
    const Graph& g, const FitPredicate& fits, const PartitionOptions& opts,
    const CapacityUnitsFn& units = nullptr);

// Groups ordered by recursion path; adjacent entries are locality siblings.
std::vector<int> GroupsInLocalityOrder(const RecursivePartitionResult& r);

}  // namespace gl
