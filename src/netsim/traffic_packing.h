// Traffic packing: ElasticTree-style [5] network right-sizing.
//
// Given the per-uplink traffic a placement produces, decide how many
// physical uplinks and switches of each bundle must stay powered so that
// every link runs below a safety utilization, keep a few backup paths for
// bursts (Sec. I), and power the rest down. This is the Sec. II "Traffic
// Packing" column of Fig. 3 as an executable algorithm rather than a
// closed-form estimate — and the two are cross-checked in
// bench_fig3_dc_breakdown's topology validation.
//
// The plan is hierarchical: a subtree with active servers keeps its ToR on
// (ports gated to active downlinks); fabric bundles keep
// ceil(required / per-link capacity) + backup links, with the switch count
// scaled proportionally (fabric switches serve their bundle's links
// uniformly in a Clos).
#pragma once

#include <span>
#include <vector>

#include "power/server_power.h"
#include "netsim/traffic.h"
#include "topology/topology.h"

namespace gl {

struct TrafficPackingOptions {
  // Keep every powered link below this share of its capacity.
  double max_link_utilization = 0.90;
  // Extra links kept on, as a fraction of each bundle (backup paths).
  double backup_fraction = 0.10;
};

struct TrafficPackingPlan {
  // Physical uplinks kept powered per node (index = NodeId value).
  std::vector<int> active_uplinks;
  // Physical switches kept powered per node.
  std::vector<int> active_switches;
  int total_active_switches = 0;
  int total_switches = 0;
  int total_active_links = 0;
  int total_links = 0;
  // True if some bundle cannot carry its traffic even fully powered.
  bool overloaded = false;
  double watts = 0.0;
};

TrafficPackingPlan PackTraffic(const Topology& topo,
                               std::span<const std::uint8_t> server_active,
                               const TrafficEstimate& traffic,
                               std::span<const SwitchPowerModel> level_models,
                               const TrafficPackingOptions& opts = {});

}  // namespace gl
