#include "netsim/flowsim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gl {

FlowSimulator::FlowSimulator(const Topology& topo) : topo_(topo) {
  const auto n = static_cast<std::size_t>(topo.num_nodes());
  capacity_mbps_.resize(2 * n);
  peak_utilization_.assign(2 * n, 0.0);
  for (int i = 0; i < topo.num_nodes(); ++i) {
    const auto& node = topo.node(NodeId{i});
    capacity_mbps_[static_cast<std::size_t>(2 * i)] =
        node.uplink_capacity_mbps;
    capacity_mbps_[static_cast<std::size_t>(2 * i + 1)] =
        node.uplink_capacity_mbps;
  }
}

int FlowSimulator::AddFlow(ServerId src, ServerId dst, double size_bytes) {
  GOLDILOCKS_CHECK_GE(size_bytes, 0.0);
  flows_.push_back({src, dst, size_bytes, 0.0, -1.0});
  routes_.push_back(Route(src, dst));
  return num_flows() - 1;
}

void FlowSimulator::Clear() {
  flows_.clear();
  routes_.clear();
  std::fill(peak_utilization_.begin(), peak_utilization_.end(), 0.0);
}

std::vector<int> FlowSimulator::Route(ServerId src, ServerId dst) const {
  std::vector<int> route;
  if (src == dst) return route;
  NodeId a = topo_.server_node(src);
  NodeId b = topo_.server_node(dst);
  auto depth = [&](NodeId id) {
    int d = 0;
    for (NodeId cur = id; topo_.node(cur).parent.valid();
         cur = topo_.node(cur).parent) {
      ++d;
    }
    return d;
  };
  int da = depth(a), db = depth(b);
  std::vector<int> down;  // collected in reverse while walking b upward
  while (da > db) {
    route.push_back(UpIndex(a));
    a = topo_.node(a).parent;
    --da;
  }
  while (db > da) {
    down.push_back(DownIndex(b));
    b = topo_.node(b).parent;
    --db;
  }
  while (a != b) {
    route.push_back(UpIndex(a));
    down.push_back(DownIndex(b));
    a = topo_.node(a).parent;
    b = topo_.node(b).parent;
  }
  route.insert(route.end(), down.rbegin(), down.rend());
  return route;
}

void FlowSimulator::AllocateRates(const std::vector<int>& live) {
  // Progressive filling: repeatedly saturate the bottleneck link — the link
  // whose equal-share among its unfixed flows is smallest — and fix the
  // rates of the flows crossing it.
  std::vector<double> residual = capacity_mbps_;
  std::vector<int> unfixed_count(capacity_mbps_.size(), 0);
  std::vector<std::uint8_t> fixed(flows_.size(), 1);
  for (const int f : live) {
    fixed[static_cast<std::size_t>(f)] = 0;
    flows_[static_cast<std::size_t>(f)].rate_mbps = 0.0;
  }
  for (const int f : live) {
    if (routes_[static_cast<std::size_t>(f)].empty()) {
      // Intra-server flow: no network constraint.
      flows_[static_cast<std::size_t>(f)].rate_mbps =
          std::numeric_limits<double>::infinity();
      fixed[static_cast<std::size_t>(f)] = 1;
      continue;
    }
    for (const int l : routes_[static_cast<std::size_t>(f)]) {
      ++unfixed_count[static_cast<std::size_t>(l)];
    }
  }

  int remaining = 0;
  for (const int f : live) {
    if (!fixed[static_cast<std::size_t>(f)]) ++remaining;
  }

  while (remaining > 0) {
    // Find the bottleneck share.
    double best_share = std::numeric_limits<double>::infinity();
    int best_link = -1;
    for (std::size_t l = 0; l < capacity_mbps_.size(); ++l) {
      if (unfixed_count[l] == 0) continue;
      const double share = residual[l] / unfixed_count[l];
      if (share < best_share) {
        best_share = share;
        best_link = static_cast<int>(l);
      }
    }
    if (best_link < 0) break;  // no constrained flows remain

    // Fix every unfixed flow crossing the bottleneck at the fair share.
    for (const int f : live) {
      if (fixed[static_cast<std::size_t>(f)]) continue;
      const auto& route = routes_[static_cast<std::size_t>(f)];
      if (std::find(route.begin(), route.end(), best_link) == route.end()) {
        continue;
      }
      flows_[static_cast<std::size_t>(f)].rate_mbps = best_share;
      fixed[static_cast<std::size_t>(f)] = 1;
      --remaining;
      for (const int l : route) {
        residual[static_cast<std::size_t>(l)] -= best_share;
        --unfixed_count[static_cast<std::size_t>(l)];
      }
    }
    residual[static_cast<std::size_t>(best_link)] = 0.0;
    unfixed_count[static_cast<std::size_t>(best_link)] = 0;
  }

  // Record peak utilization.
  std::vector<double> used(capacity_mbps_.size(), 0.0);
  for (const int f : live) {
    const double r = flows_[static_cast<std::size_t>(f)].rate_mbps;
    if (!std::isfinite(r)) continue;
    for (const int l : routes_[static_cast<std::size_t>(f)]) {
      used[static_cast<std::size_t>(l)] += r;
    }
  }
  for (std::size_t l = 0; l < used.size(); ++l) {
    if (capacity_mbps_[l] > 0.0) {
      peak_utilization_[l] =
          std::max(peak_utilization_[l], used[l] / capacity_mbps_[l]);
    }
  }
}

void FlowSimulator::ComputeMaxMinRates() {
  std::vector<int> live(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    live[i] = static_cast<int>(i);
  }
  AllocateRates(live);
}

void FlowSimulator::RunToCompletion(double intra_server_ms) {
  obs::TraceSpan span("flowsim.run",
                      static_cast<std::int64_t>(flows_.size()));
  std::uint64_t rounds = 0;
  std::vector<double> remaining_bytes(flows_.size());
  std::vector<int> live;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    remaining_bytes[i] = flows_[i].size_bytes;
    if (routes_[i].empty()) {
      flows_[i].completion_ms = intra_server_ms;
    } else if (flows_[i].size_bytes <= 0.0) {
      flows_[i].completion_ms = 0.0;
    } else {
      live.push_back(static_cast<int>(i));
    }
  }

  double now_ms = 0.0;
  while (!live.empty()) {
    ++rounds;
    AllocateRates(live);
    // Time to the next completion.
    double dt_ms = std::numeric_limits<double>::infinity();
    for (const int f : live) {
      const double rate = flows_[static_cast<std::size_t>(f)].rate_mbps;
      GOLDILOCKS_CHECK_MSG(rate > 0.0, "live flow got zero rate");
      // rate Mbps = 125000 bytes/s per Mbps → bytes per ms = rate * 125.
      const double t = remaining_bytes[static_cast<std::size_t>(f)] /
                       (rate * 125.0);
      dt_ms = std::min(dt_ms, t);
    }
    now_ms += dt_ms;
    std::vector<int> still_live;
    for (const int f : live) {
      auto& rem = remaining_bytes[static_cast<std::size_t>(f)];
      rem -= flows_[static_cast<std::size_t>(f)].rate_mbps * 125.0 * dt_ms;
      if (rem <= 1e-6) {
        flows_[static_cast<std::size_t>(f)].completion_ms = now_ms;
      } else {
        still_live.push_back(f);
      }
    }
    live = std::move(still_live);
  }
  static obs::Counter& round_counter = obs::MetricsRegistry::Global().GetCounter(
      "flowsim.rounds", obs::MetricKind::kDeterministic);
  round_counter.Add(rounds);
}

double FlowSimulator::PeakUplinkUtilization(NodeId node) const {
  const auto up = static_cast<std::size_t>(UpIndex(node));
  const auto down = static_cast<std::size_t>(DownIndex(node));
  return std::max(peak_utilization_[up], peak_utilization_[down]);
}

double FlowSimulator::MeanFctMs() const {
  if (flows_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& f : flows_) sum += std::max(0.0, f.completion_ms);
  return sum / static_cast<double>(flows_.size());
}

}  // namespace gl
