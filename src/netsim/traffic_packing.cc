#include "netsim/traffic_packing.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gl {

TrafficPackingPlan PackTraffic(const Topology& topo,
                               std::span<const std::uint8_t> server_active,
                               const TrafficEstimate& traffic,
                               std::span<const SwitchPowerModel> level_models,
                               const TrafficPackingOptions& opts) {
  GOLDILOCKS_CHECK(server_active.size() ==
                   static_cast<std::size_t>(topo.num_servers()));
  GOLDILOCKS_CHECK_GE(static_cast<int>(level_models.size()),
                      topo.num_levels());

  const int n = topo.num_nodes();
  TrafficPackingPlan plan;
  plan.active_uplinks.assign(static_cast<std::size_t>(n), 0);
  plan.active_switches.assign(static_cast<std::size_t>(n), 0);

  // Subtree activity (reverse index order is post-order: factories append
  // parents before children).
  std::vector<std::uint8_t> subtree_active(static_cast<std::size_t>(n), 0);
  for (int i = n - 1; i >= 0; --i) {
    const auto& node = topo.node(NodeId{i});
    if (node.level == 0) {
      subtree_active[static_cast<std::size_t>(i)] =
          server_active[static_cast<std::size_t>(node.server.value())];
      continue;
    }
    for (const auto c : node.children) {
      if (subtree_active[static_cast<std::size_t>(c.value())]) {
        subtree_active[static_cast<std::size_t>(i)] = 1;
        break;
      }
    }
  }

  for (int i = 0; i < n; ++i) {
    const auto& node = topo.node(NodeId{i});
    plan.total_switches += node.physical_switches;
    plan.total_links += node.physical_uplinks;
    if (!subtree_active[static_cast<std::size_t>(i)]) continue;

    // --- uplink bundle sizing ------------------------------------------------
    if (node.physical_uplinks > 0 && node.uplink_capacity_mbps > 0.0) {
      const double per_link =
          node.uplink_capacity_mbps / node.physical_uplinks;
      const double demand =
          traffic.node_uplink_mbps[static_cast<std::size_t>(i)];
      int needed = static_cast<int>(
          std::ceil(demand / (per_link * opts.max_link_utilization)));
      needed += static_cast<int>(
          std::lround(node.physical_uplinks * opts.backup_fraction));
      needed = std::max(needed, 1);  // connectivity for an active subtree
      if (needed > node.physical_uplinks) {
        needed = node.physical_uplinks;
        plan.overloaded = true;
      }
      plan.active_uplinks[static_cast<std::size_t>(i)] = needed;
      plan.total_active_links += needed;
    }

    // --- switch activation ------------------------------------------------------
    if (node.physical_switches > 0) {
      const auto& model = level_models[static_cast<std::size_t>(node.level)];
      if (node.level == 1) {
        // The rack's ToR stays on; idle downlink ports are disabled.
        int live_children = 0;
        for (const auto c : node.children) {
          live_children +=
              subtree_active[static_cast<std::size_t>(c.value())];
        }
        const double port_fraction =
            node.children.empty()
                ? 0.0
                : static_cast<double>(live_children) /
                      static_cast<double>(node.children.size());
        plan.active_switches[static_cast<std::size_t>(i)] = 1;
        plan.watts += model.Power(port_fraction);
        plan.total_active_switches += 1;
        continue;
      }
      // Fabric tier: in a Clos, each fabric switch of a bundle carries an
      // equal slice; the switch count follows the live slice of the
      // *children's* uplinks into this node.
      int child_links_total = 0, child_links_live = 0;
      for (const auto c : node.children) {
        const auto& cn = topo.node(c);
        child_links_total += cn.physical_uplinks;
        child_links_live +=
            plan.active_uplinks[static_cast<std::size_t>(c.value())];
      }
      const double slice =
          child_links_total > 0
              ? static_cast<double>(child_links_live) / child_links_total
              : 1.0;
      const int live = std::clamp(
          static_cast<int>(std::ceil(node.physical_switches * slice)), 1,
          node.physical_switches);
      plan.active_switches[static_cast<std::size_t>(i)] = live;
      plan.watts += live * model.Power(1.0);
      plan.total_active_switches += live;
    }
  }
  return plan;
}

}  // namespace gl
