#include "netsim/traffic.h"

#include <algorithm>

#include "common/check.h"

namespace gl {

TrafficEstimate EstimateTraffic(const Workload& workload,
                                const Placement& placement,
                                std::span<const Resource> demands,
                                std::span<const std::uint8_t> active,
                                const Topology& topo) {
  TrafficEstimate out;
  out.edge_mbps.assign(workload.edges.size(), 0.0);
  out.node_uplink_mbps.assign(static_cast<std::size_t>(topo.num_nodes()),
                              0.0);

  // Total flow weight incident to each container (over live edges only).
  std::vector<double> total_flows(workload.containers.size(), 0.0);
  auto edge_live = [&](const CommunicationEdge& e) {
    const auto ia = static_cast<std::size_t>(e.a.value());
    const auto ib = static_cast<std::size_t>(e.b.value());
    return active[ia] && active[ib] && placement.server_of[ia].valid() &&
           placement.server_of[ib].valid();
  };
  for (const auto& e : workload.edges) {
    if (!edge_live(e)) continue;
    total_flows[static_cast<std::size_t>(e.a.value())] += std::abs(e.flows);
    total_flows[static_cast<std::size_t>(e.b.value())] += std::abs(e.flows);
  }

  for (std::size_t ei = 0; ei < workload.edges.size(); ++ei) {
    const auto& e = workload.edges[ei];
    if (!edge_live(e) || e.flows <= 0.0) continue;
    const auto ia = static_cast<std::size_t>(e.a.value());
    const auto ib = static_cast<std::size_t>(e.b.value());
    // Each endpoint pushes a share of its network demand over this edge.
    const double share_a =
        total_flows[ia] > 0.0
            ? demands[ia].net_mbps * (e.flows / total_flows[ia])
            : 0.0;
    const double share_b =
        total_flows[ib] > 0.0
            ? demands[ib].net_mbps * (e.flows / total_flows[ib])
            : 0.0;
    const double traffic = 0.5 * (share_a + share_b);
    out.edge_mbps[ei] = traffic;

    const ServerId sa = placement.server_of[ia];
    const ServerId sb = placement.server_of[ib];
    if (sa == sb) continue;  // intra-server traffic never leaves the host

    // Load every uplink bundle on the tree path (LCA walk).
    NodeId na = topo.server_node(sa);
    NodeId nb = topo.server_node(sb);
    auto depth = [&](NodeId id) {
      int d = 0;
      for (NodeId cur = id; topo.node(cur).parent.valid();
           cur = topo.node(cur).parent) {
        ++d;
      }
      return d;
    };
    int da = depth(na), db = depth(nb);
    while (da > db) {
      out.node_uplink_mbps[static_cast<std::size_t>(na.value())] += traffic;
      na = topo.node(na).parent;
      --da;
    }
    while (db > da) {
      out.node_uplink_mbps[static_cast<std::size_t>(nb.value())] += traffic;
      nb = topo.node(nb).parent;
      --db;
    }
    while (na != nb) {
      out.node_uplink_mbps[static_cast<std::size_t>(na.value())] += traffic;
      out.node_uplink_mbps[static_cast<std::size_t>(nb.value())] += traffic;
      na = topo.node(na).parent;
      nb = topo.node(nb).parent;
    }
  }
  return out;
}

}  // namespace gl
