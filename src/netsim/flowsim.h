// Flow-level network simulator.
//
// The paper's large-scale evaluation (Sec. VI-B) is a flow-level simulation:
// flows get max-min fair bandwidth shares over the links they traverse, and
// completion time follows from the evolving rate allocation. This module
// implements progressive-filling max-min fairness over the Topology's
// directed uplink/downlink bundles and an event-driven run-to-completion
// loop that yields per-flow FCTs and per-link peak utilization (which drives
// switch gating).
//
// Routing: the unique tree path src → LCA → dst. The upward traversal of a
// node consumes its uplink bundle's "up" direction; the downward traversal of
// a node consumes its "down" direction (full-duplex bundles).
#pragma once

#include <vector>

#include "common/ids.h"
#include "topology/topology.h"

namespace gl {

struct Flow {
  ServerId src;
  ServerId dst;
  double size_bytes = 0.0;

  // Outputs.
  double rate_mbps = 0.0;       // most recent max-min allocation
  double completion_ms = -1.0;  // set by RunToCompletion
};

class FlowSimulator {
 public:
  explicit FlowSimulator(const Topology& topo);

  // Adds a flow; returns its index.
  int AddFlow(ServerId src, ServerId dst, double size_bytes);
  void Clear();

  [[nodiscard]] int num_flows() const {
    return static_cast<int>(flows_.size());
  }
  [[nodiscard]] const Flow& flow(int i) const {
    return flows_[static_cast<std::size_t>(i)];
  }

  // One-shot max-min fair allocation for the current flow set (all flows
  // considered active). Updates each flow's rate_mbps.
  void ComputeMaxMinRates();

  // Event-driven run: repeatedly allocate max-min rates, advance to the next
  // flow completion, repeat. Fills completion_ms on every flow. Flows with
  // src == dst complete in `intra_server_ms`.
  void RunToCompletion(double intra_server_ms = 0.01);

  // Peak utilization seen on a node's uplink during the last run (fraction
  // of capacity; max of the two directions).
  [[nodiscard]] double PeakUplinkUtilization(NodeId node) const;

  // Mean/max completion time over all flows (after RunToCompletion).
  [[nodiscard]] double MeanFctMs() const;

 private:
  // Directed capacity index: 2*node for "up", 2*node+1 for "down".
  [[nodiscard]] int UpIndex(NodeId n) const { return 2 * n.value(); }
  [[nodiscard]] int DownIndex(NodeId n) const { return 2 * n.value() + 1; }

  // Links (directed indices) on the path of a flow.
  [[nodiscard]] std::vector<int> Route(ServerId src, ServerId dst) const;

  // Max-min allocation over a subset of live flows (by index).
  void AllocateRates(const std::vector<int>& live);

  const Topology& topo_;
  std::vector<Flow> flows_;
  std::vector<std::vector<int>> routes_;   // per flow
  std::vector<double> capacity_mbps_;      // per directed index
  std::vector<double> peak_utilization_;   // per directed index
};

}  // namespace gl
