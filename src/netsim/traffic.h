// Per-edge traffic estimation and tree-path link loading.
//
// Each container's network demand is apportioned across its active
// communication edges in proportion to flow counts; each edge's traffic is
// then routed along the unique tree path between its endpoints' servers,
// loading every traversed uplink bundle. The resulting per-node loads feed
// the latency model (per-hop congestion) and switch gating (how much fabric
// must stay powered).
#pragma once

#include <span>
#include <vector>

#include "schedulers/placement.h"
#include "topology/topology.h"
#include "workload/container.h"

namespace gl {

struct TrafficEstimate {
  // Traffic (Mbps) per workload edge index; 0 for edges with an inactive or
  // unplaced endpoint.
  std::vector<double> edge_mbps;
  // Aggregate traffic (Mbps) crossing each node's uplink bundle, per NodeId.
  std::vector<double> node_uplink_mbps;

  [[nodiscard]] double UplinkUtilization(const Topology& topo,
                                         NodeId n) const {
    const double cap = topo.uplink_capacity(n);
    return cap > 0.0
               ? node_uplink_mbps[static_cast<std::size_t>(n.value())] / cap
               : 0.0;
  }
};

TrafficEstimate EstimateTraffic(const Workload& workload,
                                const Placement& placement,
                                std::span<const Resource> demands,
                                std::span<const std::uint8_t> active,
                                const Topology& topo);

}  // namespace gl
