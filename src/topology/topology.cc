#include "topology/topology.h"

#include <algorithm>

namespace gl {

NodeId Topology::AddSwitchNode(NodeId parent, int level, double uplink_mbps,
                               int physical_switches, int physical_uplinks) {
  GOLDILOCKS_CHECK_GE(level, 1);
  const NodeId id{num_nodes()};
  Node n;
  n.id = id;
  n.parent = parent;
  n.level = level;
  n.uplink_capacity_mbps = uplink_mbps;
  n.physical_switches = physical_switches;
  n.physical_uplinks = physical_uplinks;
  if (parent.valid()) {
    nodes_[CheckedNode(parent)].children.push_back(id);
    GOLDILOCKS_CHECK_MSG(level < nodes_[CheckedNode(parent)].level,
                         "child level must be below parent level");
  } else {
    GOLDILOCKS_CHECK_MSG(!root_.valid(), "topology already has a root");
    root_ = id;
  }
  nodes_.push_back(std::move(n));
  num_levels_ = std::max(num_levels_, level + 1);
  return id;
}

ServerId Topology::AddServer(NodeId rack, const Resource& capacity) {
  GOLDILOCKS_CHECK(rack.valid());
  const NodeId node_id{num_nodes()};
  const ServerId sid{num_servers()};
  Node n;
  n.id = node_id;
  n.parent = rack;
  n.level = 0;
  n.uplink_capacity_mbps = capacity.net_mbps;
  n.physical_uplinks = 1;
  n.server = sid;
  nodes_[CheckedNode(rack)].children.push_back(node_id);
  nodes_.push_back(std::move(n));
  server_nodes_.push_back(node_id);
  server_capacity_.push_back(capacity);
  return sid;
}

Topology Topology::FatTree(int k, const Resource& server_capacity,
                           double link_mbps) {
  GOLDILOCKS_CHECK(k >= 2 && k % 2 == 0);
  Topology t;
  const int half = k / 2;
  // Root stands for the (k/2)^2 core switches.
  const NodeId root = t.AddSwitchNode(NodeId::invalid(), 3, 0.0,
                                      half * half, 0);
  for (int p = 0; p < k; ++p) {
    // A pod: k/2 aggregation switches; its outbound bundle is
    // (k/2)^2 links of `link_mbps` to the core.
    const NodeId pod = t.AddSwitchNode(root, 2, half * half * link_mbps,
                                       half, half * half);
    for (int r = 0; r < half; ++r) {
      // A rack: one edge switch with k/2 uplinks into the aggregation.
      const NodeId rack =
          t.AddSwitchNode(pod, 1, half * link_mbps, 1, half);
      for (int s = 0; s < half; ++s) {
        Resource cap = server_capacity;
        cap.net_mbps = link_mbps;
        t.AddServer(rack, cap);
      }
    }
  }
  return t;
}

Topology Topology::LeafSpine(int leaves, int servers_per_leaf, int spines,
                             const Resource& server_capacity,
                             double link_mbps) {
  GOLDILOCKS_CHECK(leaves >= 1 && servers_per_leaf >= 1 && spines >= 1);
  Topology t;
  const NodeId root = t.AddSwitchNode(NodeId::invalid(), 2, 0.0, spines, 0);
  for (int l = 0; l < leaves; ++l) {
    const NodeId leaf = t.AddSwitchNode(
        root, 1, static_cast<double>(spines) * link_mbps, 1, spines);
    for (int s = 0; s < servers_per_leaf; ++s) {
      Resource cap = server_capacity;
      cap.net_mbps = link_mbps;
      t.AddServer(leaf, cap);
    }
  }
  return t;
}

Topology Topology::ThreeTier(const ThreeTierSpec& spec) {
  GOLDILOCKS_CHECK(spec.pods >= 1 && spec.racks_per_pod >= 1 &&
                   spec.servers_per_rack >= 1);
  Topology t;
  const NodeId root =
      t.AddSwitchNode(NodeId::invalid(), 3, 0.0, spec.core_switches, 0);
  for (int p = 0; p < spec.pods; ++p) {
    const NodeId pod = t.AddSwitchNode(
        root, 2, spec.pod_uplinks * spec.fabric_link_mbps, spec.agg_per_pod,
        spec.pod_uplinks);
    for (int r = 0; r < spec.racks_per_pod; ++r) {
      const NodeId rack = t.AddSwitchNode(
          pod, 1, spec.rack_uplinks * spec.fabric_link_mbps, 1,
          spec.rack_uplinks);
      for (int s = 0; s < spec.servers_per_rack; ++s) {
        Resource cap = spec.server_capacity;
        cap.net_mbps = spec.server_link_mbps;
        t.AddServer(rack, cap);
      }
    }
  }
  return t;
}

Topology Topology::Vl2(int num_tors, const Resource& server_capacity,
                       double server_link_mbps) {
  GOLDILOCKS_CHECK_GE(num_tors, 2);
  // VL2: 20 servers per ToR, each ToR dual-homed (2×10G in the paper's
  // Table I row) into the aggregation; aggregation fully meshed to
  // intermediates. Modelled as pods of 8 ToRs under aggregation pairs.
  ThreeTierSpec spec;
  spec.racks_per_pod = 8;
  spec.pods = std::max(1, num_tors / spec.racks_per_pod);
  spec.servers_per_rack = 20;
  spec.rack_uplinks = 2;
  spec.agg_per_pod = 2;
  spec.pod_uplinks = 8;
  spec.core_switches = std::max(2, spec.pods / 2);
  spec.server_link_mbps = server_link_mbps;
  spec.fabric_link_mbps = 40000.0;
  spec.server_capacity = server_capacity;
  return ThreeTier(spec);
}

Topology Topology::Testbed16() {
  // Sec. V: 32-core AMD Opteron 6272, 64 GB, 1G NIC; 8 virtual leaf
  // switches × 2 servers, 2 spine switches.
  const Resource cap{.cpu = 3200.0, .mem_gb = 64.0, .net_mbps = 1000.0};
  return LeafSpine(/*leaves=*/8, /*servers_per_leaf=*/2, /*spines=*/2, cap,
                   /*link_mbps=*/1000.0);
}

int Topology::num_switches() const {
  int n = 0;
  for (const auto& node : nodes_) n += node.physical_switches;
  return n;
}

int Topology::num_links() const {
  int n = 0;
  for (const auto& node : nodes_) n += node.physical_uplinks;
  return n;
}

Resource Topology::total_server_capacity() const {
  Resource total;
  for (const auto& c : server_capacity_) total += c;
  return total;
}

Resource Topology::average_server_capacity() const {
  if (server_capacity_.empty()) return {};
  return total_server_capacity() * (1.0 / num_servers());
}

int Topology::HopDistance(ServerId a, ServerId b) const {
  if (a == b) return 0;
  NodeId na = server_node(a);
  NodeId nb = server_node(b);
  int da = 0, db = 0;
  // Levels are uniform per depth in our factories, but walk generically.
  auto depth = [&](NodeId id) {
    int d = 0;
    for (NodeId cur = id; node(cur).parent.valid(); cur = node(cur).parent) {
      ++d;
    }
    return d;
  };
  da = depth(na);
  db = depth(nb);
  int hops = 0;
  while (da > db) {
    na = node(na).parent;
    --da;
    ++hops;
  }
  while (db > da) {
    nb = node(nb).parent;
    --db;
    ++hops;
  }
  while (na != nb) {
    na = node(na).parent;
    nb = node(nb).parent;
    hops += 2;
  }
  return hops;
}

std::vector<ServerId> Topology::ServersUnder(NodeId subtree) const {
  std::vector<ServerId> out;
  std::vector<NodeId> stack{subtree};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    const auto& n = node(cur);
    if (n.level == 0) {
      out.push_back(n.server);
      continue;
    }
    // Push children in reverse so the left-most child is processed first.
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

std::vector<NodeId> Topology::NodesAtLevel(int level) const {
  std::vector<NodeId> out;
  if (!root_.valid()) return out;
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    const auto& n = node(cur);
    if (n.level == level) {
      out.push_back(cur);
      continue;  // do not descend past the requested level
    }
    if (n.level < level) continue;
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

NodeId Topology::AncestorAt(NodeId id, int level) const {
  NodeId cur = id;
  while (cur.valid() && node(cur).level < level) cur = node(cur).parent;
  if (cur.valid() && node(cur).level == level) return cur;
  return NodeId::invalid();
}

void Topology::Reserve(NodeId id, double mbps GL_UNITS(bits_per_sec)) {
  GOLDILOCKS_CHECK_GE(mbps, 0.0);
  auto& n = nodes_[CheckedNode(id)];
  n.uplink_reserved_mbps += mbps;
}

void Topology::Release(NodeId id, double mbps GL_UNITS(bits_per_sec)) {
  auto& n = nodes_[CheckedNode(id)];
  n.uplink_reserved_mbps = std::max(0.0, n.uplink_reserved_mbps - mbps);
}

void Topology::ClearReservations() {
  for (auto& n : nodes_) n.uplink_reserved_mbps = 0.0;
}

void Topology::DegradeUplink(NodeId id,
                             double factor GL_UNITS(dimensionless)) {
  GOLDILOCKS_CHECK(factor >= 0.0 && factor <= 1.0);
  auto& n = nodes_[CheckedNode(id)];
  n.uplink_capacity_mbps *= factor;
  n.physical_uplinks = static_cast<int>(n.physical_uplinks * factor);
}

}  // namespace gl
