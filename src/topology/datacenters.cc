#include "topology/datacenters.h"

namespace gl {

const std::array<DataCenterSpec, 5>& TableOneDataCenters() {
  static const std::array<DataCenterSpec, 5> kSpecs = {{
      {
          .name = "Google (Jupiter)",
          .servers = 98304,
          .server_nic_gbps = 40.0,
          .tor_switches = 2048,
          .fabric_switches = 3584,
          .links = 147456,
          .server_max_watts = 96.0,    // Facebook 1S SoC server [30]
          .tor_switch_watts = 630.0,   // 2x HPE Altoline 6940 [31]
          .fabric_switch_watts = 630.0,
          .server_model = "Facebook 1S (96W SoC)",
          .switch_model = "2x HPE Altoline 6940 (630W)",
      },
      {
          .name = "Facebook (fabric)",
          .servers = 184320,
          .server_nic_gbps = 10.0,
          .tor_switches = 4608,
          .fabric_switches = 576,
          .links = 36864,
          .server_max_watts = 96.0,
          .tor_switch_watts = 282.0,    // Facebook Wedge [33]
          .fabric_switch_watts = 1400.0,  // Facebook 6 Pack [33]
          .server_model = "Facebook 1S (96W SoC)",
          .switch_model = "Wedge ToR (282W), 6 Pack fabric (1400W)",
      },
      {
          .name = "VL2(96)",
          .servers = 46080,
          .server_nic_gbps = 10.0,
          .tor_switches = 2304,
          .fabric_switches = 144,
          .links = 9216,
          .server_max_watts = 250.0,  // Microsoft blade server [30]
          .tor_switch_watts = 282.0,
          .fabric_switch_watts = 1400.0,
          .server_model = "Microsoft blade (250W)",
          .switch_model = "Wedge ToR (282W), 6 Pack fabric (1400W)",
      },
      {
          .name = "Fat-tree(32)",
          .servers = 32768,
          .server_nic_gbps = 10.0,
          .tor_switches = 512,    // k^2/2 edge switches
          .fabric_switches = 768,  // k^2/2 aggregation + k^2/4 core
          .links = 2048,
          .server_max_watts = 250.0,
          .tor_switch_watts = 315.0,  // HPE Altoline 6940 [31]
          .fabric_switch_watts = 315.0,
          .server_model = "Microsoft blade (250W)",
          .switch_model = "HPE Altoline 6940 (315W)",
      },
      {
          .name = "Fat-tree(72)",
          .servers = 93312,
          .server_nic_gbps = 10.0,
          .tor_switches = 2592,    // k^2/2
          .fabric_switches = 3888,  // k^2/2 + k^2/4
          .links = 10368,
          .server_max_watts = 250.0,
          .tor_switch_watts = 315.0,  // HPE Altoline 6920 [36]
          .fabric_switch_watts = 315.0,
          .server_model = "Microsoft blade (250W)",
          .switch_model = "HPE Altoline 6920 (315W)",
      },
  }};
  return kSpecs;
}

}  // namespace gl
