// Hierarchical data-center network model.
//
// Goldilocks places container groups on *substructures* — a machine, a rack,
// a pod, a subtree (Sec. III-B) — so the topology is modelled as a rooted
// hierarchy whose leaves are servers. Multi-rooted Clos fabrics (fat-tree,
// leaf-spine, VL2) map onto this by aggregating the ECMP uplinks of a
// substructure into one logical uplink whose capacity equals the
// substructure's outbound bisection bandwidth — the same abstraction Oktopus
// [46] uses, and exactly the quantity equations (4)/(5) reserve against.
//
// Physical switch counts per hierarchy node are retained so the power module
// can account for and gate real switches, not logical ones.
//
// Asymmetry (Sec. IV) enters in two ways:
//   * heterogeneous servers — per-server capacity vectors are mutable;
//   * link/switch failures — uplink capacities can be degraded per node.
#pragma once

#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/resource.h"

namespace gl {

class Topology {
 public:
  struct Node {
    NodeId id;
    NodeId parent = NodeId::invalid();
    std::vector<NodeId> children;
    int level = 0;  // 0 = server; increases toward the root
    // Aggregate capacity of all physical uplinks toward the parent (Mbps).
    double uplink_capacity_mbps GL_UNITS(bits_per_sec) = 0.0;
    // Bandwidth currently reserved on that uplink by placed Virtual Clusters.
    double uplink_reserved_mbps GL_UNITS(bits_per_sec) = 0.0;
    // Physical switches this hierarchy node stands for (0 for servers).
    int physical_switches = 0;
    // Physical links the uplink bundle stands for.
    int physical_uplinks = 0;
    ServerId server = ServerId::invalid();  // valid iff level == 0
  };

  // --- construction -------------------------------------------------------

  // Adds an internal (switch) node. Parent must exist or be invalid() for
  // the root (only one root allowed).
  NodeId AddSwitchNode(NodeId parent, int level, double uplink_mbps,
                       int physical_switches, int physical_uplinks);

  // Adds a server leaf under `rack`. NIC bandwidth doubles as the uplink
  // capacity of the leaf node.
  ServerId AddServer(NodeId rack, const Resource& capacity);

  // Named factories.
  //
  // k-ary fat-tree [35]: k pods, k/2 edge + k/2 aggregation switches per
  // pod, (k/2)^2 core switches, k^3/4 servers. k must be even and >= 2.
  static Topology FatTree(int k, const Resource& server_capacity,
                          double link_mbps);

  // Leaf-spine: `leaves` ToR switches with `servers_per_leaf` servers each,
  // fully meshed to `spines` spine switches.
  static Topology LeafSpine(int leaves, int servers_per_leaf, int spines,
                            const Resource& server_capacity, double link_mbps);

  // The paper's 16-node testbed (Sec. V): 8 virtual leaf switches with 2
  // servers each, 2 spine switches, 1G links; 32-core / 64 GB servers.
  static Topology Testbed16();

  // Generic three-tier Clos: `pods` pods of `racks_per_pod` racks with
  // `servers_per_rack` servers; each rack has `rack_uplinks` links of
  // `fabric_link_mbps`; each pod has `agg_per_pod` aggregation switches
  // with `pod_uplinks` links to `core_switches` cores. Expresses the
  // VL2 [34] and Facebook-fabric [32] rows of Table I at any scale.
  struct ThreeTierSpec {
    int pods = 4;
    int racks_per_pod = 4;
    int servers_per_rack = 20;
    int rack_uplinks = 2;
    int agg_per_pod = 2;
    int pod_uplinks = 4;
    int core_switches = 4;
    double server_link_mbps GL_UNITS(bits_per_sec) = 10000.0;
    double fabric_link_mbps GL_UNITS(bits_per_sec) = 40000.0;
    Resource server_capacity{.cpu = 3200, .mem_gb = 64, .net_mbps = 10000};
  };
  static Topology ThreeTier(const ThreeTierSpec& spec);

  // VL2(d)-shaped instance [34]: 20 servers per ToR, ToRs dual-homed into
  // an aggregation mesh. `scale` divides the Table I row for laptop-sized
  // experiments while preserving the shape.
  static Topology Vl2(int num_tors, const Resource& server_capacity,
                      double server_link_mbps = 10000.0);

  // --- structural queries --------------------------------------------------

  [[nodiscard]] const Node& node(NodeId id) const {
    return nodes_[CheckedNode(id)];
  }
  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] int num_servers() const {
    return static_cast<int>(server_nodes_.size());
  }
  [[nodiscard]] int num_switches() const;  // physical switch count
  [[nodiscard]] int num_links() const;     // physical link count
  [[nodiscard]] int num_levels() const { return num_levels_; }

  [[nodiscard]] NodeId server_node(ServerId s) const {
    return server_nodes_[CheckedServer(s)];
  }
  [[nodiscard]] const Resource& server_capacity(ServerId s) const {
    return server_capacity_[CheckedServer(s)];
  }
  // Heterogeneity hook: replace one server's capacity (Sec. IV).
  void set_server_capacity(ServerId s, const Resource& c) {
    server_capacity_[CheckedServer(s)] = c;
  }
  [[nodiscard]] Resource total_server_capacity() const;
  [[nodiscard]] Resource average_server_capacity() const;

  // Number of links on the shortest path between two servers (0 if equal).
  [[nodiscard]] int HopDistance(ServerId a, ServerId b) const;

  // Servers under a subtree in left-to-right (locality) order.
  [[nodiscard]] std::vector<ServerId> ServersUnder(NodeId subtree) const;

  // All nodes at a given level, left-to-right.
  [[nodiscard]] std::vector<NodeId> NodesAtLevel(int level) const;

  // Walks up from `id`; returns the ancestor at `level` (or invalid()).
  [[nodiscard]] NodeId AncestorAt(NodeId id, int level) const;

  // --- bandwidth accounting (asymmetric placement) -------------------------

  [[nodiscard]] double uplink_capacity(NodeId id) const
      GL_UNITS(bits_per_sec) {
    return nodes_[CheckedNode(id)].uplink_capacity_mbps;
  }
  [[nodiscard]] double uplink_reserved(NodeId id) const
      GL_UNITS(bits_per_sec) {
    return nodes_[CheckedNode(id)].uplink_reserved_mbps;
  }
  [[nodiscard]] double uplink_residual(NodeId id) const
      GL_UNITS(bits_per_sec) {
    const auto& n = nodes_[CheckedNode(id)];
    return n.uplink_capacity_mbps - n.uplink_reserved_mbps;
  }
  void Reserve(NodeId id, double mbps GL_UNITS(bits_per_sec));
  void Release(NodeId id, double mbps GL_UNITS(bits_per_sec));
  void ClearReservations();

  // Failure injection: scales the uplink capacity of `id` by `factor`
  // (e.g. 0.5 = half the uplinks of this substructure failed).
  void DegradeUplink(NodeId id, double factor GL_UNITS(dimensionless));

 private:
  [[nodiscard]] std::size_t CheckedNode(NodeId id) const {
    GOLDILOCKS_CHECK(id.valid() && id.value() < num_nodes());
    return static_cast<std::size_t>(id.value());
  }
  [[nodiscard]] std::size_t CheckedServer(ServerId s) const {
    GOLDILOCKS_CHECK(s.valid() && s.value() < num_servers());
    return static_cast<std::size_t>(s.value());
  }

  std::vector<Node> nodes_;
  std::vector<NodeId> server_nodes_;    // ServerId → leaf node
  std::vector<Resource> server_capacity_;
  NodeId root_ = NodeId::invalid();
  int num_levels_ = 0;
};

}  // namespace gl
