// Table I of the paper: configurations of five production-scale data centers
// with matched Open Compute Project power models. These are pure data; the
// power analysis that turns them into the Fig. 3 breakdown lives in
// power/dc_power.h.
#pragma once

#include <array>
#include <string>

namespace gl {

struct DataCenterSpec {
  std::string name;
  long long servers = 0;
  double server_nic_gbps = 0.0;
  long long tor_switches = 0;
  long long fabric_switches = 0;  // aggregation + core combined
  long long links = 0;            // inter-switch links (ToR and above)
  // Peak (100%-load) power draws from the matched models.
  double server_max_watts = 0.0;
  double tor_switch_watts = 0.0;
  double fabric_switch_watts = 0.0;
  std::string server_model;
  std::string switch_model;
};

// The five rows of Table I: Google (Jupiter), Facebook (fabric), VL2(96),
// Fat-tree(32), Fat-tree(72).
const std::array<DataCenterSpec, 5>& TableOneDataCenters();

}  // namespace gl
