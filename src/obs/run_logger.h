// Structured run logs: one JSONL record per epoch ("gl.epoch.v1").
//
// The RunLogger is the third observability pillar: a streaming sink that the
// ExperimentRunner feeds one EpochRecord per epoch when RunnerOptions::obs
// points at a logger. Each record is a single JSON line with four sections:
//
//   top-level   — schema, scheduler, scenario, epoch  (deterministic)
//   "metrics"   — power / TCT / placement numbers     (deterministic)
//   "counters"  — per-epoch deltas of the deterministic counters
//   "hash"      — the §8 EpochStateHash subsystem digests (when recorded)
//   "timings"   — wall_ms and per-phase span times    (informational ONLY)
//
// Everything outside "timings" must be byte-identical across two same-seed
// runs — that is what `gl_report --check` and the replay gate diff. The
// "timings" section is excluded from every comparison and never hashed.
//
// Per-epoch counter deltas attribute to the right epoch only when epochs run
// serially (RunnerOptions::threads == 1); under a parallel RunMany the
// registry is shared across concurrent experiments, so the runner skips the
// counters section and only totals remain meaningful (DESIGN.md §10).
//
// The logger is thread-safe: each WriteEpoch serializes and appends one
// whole line under a mutex, so concurrent runs interleave *lines*, never
// bytes within a line.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace gl::obs {

// One phase's wall time within an epoch. Informational only.
struct PhaseTime {
  std::string name;
  double ms = 0.0;
};

// Flattened per-epoch record. Plain fields only — gl_obs sits below sim/ in
// the link order, so the runner copies from EpochMetrics/EpochStateHash
// rather than this header depending on them.
struct EpochRecord {
  static constexpr const char* kSchema = "gl.epoch.v1";

  std::string scheduler;
  std::string scenario;
  int epoch = 0;

  // Deterministic epoch metrics (a subset of sim EpochMetrics).
  int active_servers = 0;
  int active_switches = 0;
  double server_watts = 0.0;
  double network_watts = 0.0;
  double total_watts = 0.0;
  double mean_tct_ms = 0.0;
  double p99_tct_ms = 0.0;
  double energy_per_request_j = 0.0;
  int migrations = 0;
  int placed_containers = 0;
  int unplaced_containers = 0;
  int audit_findings = 0;

  // Deterministic-counter deltas for this epoch (empty when unavailable,
  // e.g. parallel RunMany).
  std::vector<CounterValue> counters;

  // §8 subsystem digests; present when the runner records state hashes.
  bool has_hash = false;
  std::uint64_t hash_placement = 0;
  std::uint64_t hash_loads = 0;
  std::uint64_t hash_power = 0;
  std::uint64_t hash_migration = 0;
  std::uint64_t hash_rng = 0;

  // ---- informational section ("timings") — never hashed, never diffed ----
  // Every informational field lives here and is serialized inside the
  // trailing "timings":{...} object (wall_ms included — it is strippable by
  // `gl_report check` like every other timing). Anything added later that
  // is timing- or environment-dependent must join this section, never the
  // deterministic prefix.
  double wall_ms = 0.0;
  std::vector<PhaseTime> phases;
  // Informational gauges at epoch end (pool utilization, arena peaks, peak
  // RSS, ... — MetricsRegistry::SnapshotGauges(kInformational)).
  std::vector<GaugeValue> info_gauges;
};

class RunLogger;

// Knob block embedded in sim RunnerOptions. A struct (not a bare pointer)
// so later PRs can add obs knobs without touching the runner's signature.
struct ObsOptions {
  RunLogger* logger = nullptr;  // per-epoch JSONL sink; nullptr = disabled
};

class RunLogger {
 public:
  // Streams lines to a file (created/truncated). ok() reports open failure.
  explicit RunLogger(const std::string& path);
  // Streams lines into a caller-owned string (tests, gl_report round-trip).
  explicit RunLogger(std::string* sink);
  ~RunLogger();
  RunLogger(const RunLogger&) = delete;
  RunLogger& operator=(const RunLogger&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr || sink_ != nullptr; }

  // Serializes the record and appends it as one line. Thread-safe.
  void WriteEpoch(const EpochRecord& rec);

  [[nodiscard]] std::uint64_t lines_written() const;

  // Pure serialization (no trailing newline) — what WriteEpoch emits, kept
  // separate so tests can assert on exact bytes.
  [[nodiscard]] static std::string EpochLine(const EpochRecord& rec);

 private:
  std::FILE* file_ = nullptr;  // owned when non-null
  std::string* sink_ = nullptr;

  mutable Mutex mu_;
  std::uint64_t lines_ GL_GUARDED_BY(mu_) = 0;
};

}  // namespace gl::obs
