#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gl::obs {
namespace {

// fetch_add on std::atomic<double> is C++20 but not yet universally shipped;
// a CAS loop is portable and this path is not hot (one call per Observe).
void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kDeterministic:
      return "deterministic";
    case MetricKind::kInformational:
      return "informational";
  }
  return "unknown";
}

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN samples pool in bucket 0
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp with m in [0.5, 1)
  const int idx = exp - 1 - kMinExp;
  return std::clamp(idx, 0, kNumBuckets - 1);
}

double Histogram::BucketLower(int i) { return std::ldexp(1.0, i + kMinExp); }

double Histogram::BucketUpper(int i) {
  return std::ldexp(1.0, i + 1 + kMinExp);
}

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  // First observation seeds min/max; the count_ increment is last so a
  // concurrent reader seeing count_ > 0 also sees a seeded min/max.
  if (count_.load(std::memory_order_acquire) == 0) {
    double expected = 0.0;
    min_.compare_exchange_strong(expected, v, std::memory_order_relaxed);
    expected = 0.0;
    max_.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  }
  AtomicMin(min_, v);
  AtomicMax(max_, v);
  count_.fetch_add(1, std::memory_order_release);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min();
  if (q == 1.0) return max();

  // Rank of the target sample (1-based), then walk buckets to find it and
  // interpolate linearly inside the bucket's [lower, upper) range.
  const double rank = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t in_bucket =
        buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      const double lo = std::max(BucketLower(i), min());
      const double hi = std::min(BucketUpper(i), max());
      return lo + frac * (hi - lo);
    }
    seen += in_bucket;
  }
  return max();  // counters raced mid-snapshot; clamp to the exact max
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;  // function-local: no namespace-scope state
  return registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, MetricKind kind) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name), kind))
             .first;
  }
  GOLDILOCKS_CHECK_MSG(it->second->kind() == kind,
                       "metric re-registered with a different kind");
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, MetricKind kind) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name), kind))
             .first;
  }
  GOLDILOCKS_CHECK_MSG(it->second->kind() == kind,
                       "metric re-registered with a different kind");
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         MetricKind kind) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name), kind))
             .first;
  }
  GOLDILOCKS_CHECK_MSG(it->second->kind() == kind,
                       "metric re-registered with a different kind");
  return *it->second;
}

std::vector<CounterValue> MetricsRegistry::SnapshotCounters(
    MetricKind kind) const {
  MutexLock lock(mu_);
  std::vector<CounterValue> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    if (counter->kind() != kind) continue;
    out.push_back({name, counter->value()});
  }
  return out;  // std::map iteration order is already name-sorted
}

std::vector<GaugeValue> MetricsRegistry::SnapshotGauges(
    MetricKind kind) const {
  MutexLock lock(mu_);
  std::vector<GaugeValue> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    if (gauge->kind() != kind) continue;
    out.push_back({name, gauge->value()});
  }
  return out;
}

std::vector<CounterValue> MetricsRegistry::DeltaCounters(
    const std::vector<CounterValue>& before,
    const std::vector<CounterValue>& now) {
  std::vector<CounterValue> out;
  out.reserve(now.size());
  for (const auto& cv : now) {
    const auto it = std::lower_bound(
        before.begin(), before.end(), cv.name,
        [](const CounterValue& a, const std::string& n) { return a.name < n; });
    const std::uint64_t prev =
        (it != before.end() && it->name == cv.name) ? it->value : 0;
    out.push_back({cv.name, cv.value - prev});
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace gl::obs
