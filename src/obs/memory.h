// Memory observability: container footprints and peak-RSS sampling.
//
// Companion to obs/clock.h under the same quarantine rules (DESIGN.md §8):
// just as wall-clock values may be logged but never steer the simulation,
// memory readings here are informational only — they may be printed,
// exported in the "timings" tail of the epoch stream, and tracked by
// benches, but must never feed simulation state, seeds, or the §8 state
// hashes. Peak RSS in particular depends on the allocator, the OS and every
// other thread in the process; it is an environment fact, not a decision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace gl::obs {

// Bytes a vector holds on to (capacity, not size) — the arena accounting
// unit for high-water marks: capacity never shrinks short of destruction,
// so per-buffer footprints are monotone across Reset()/clear() reuse.
template <typename T>
[[nodiscard]] std::size_t VectorFootprintBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

// Process peak resident set size in bytes; 0 where unavailable. Monotone
// over the process lifetime by definition (it is the high-water mark the
// kernel already keeps).
[[nodiscard]] inline std::uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace gl::obs
